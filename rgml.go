// Package rgml is a Go reproduction of "A Resilient Framework for
// Iterative Linear Algebra Applications in X10" (Hamouda, Milthorpe,
// Strazdins, Saraswat; IPDPS Workshops 2015): the X10 Global Matrix
// Library's resilience extension, rebuilt from scratch on an emulated
// APGAS runtime.
//
// The package is a facade re-exporting the public surface of the internal
// packages:
//
//   - the APGAS substrate (places, finish, failure injection) from
//     internal/apgas;
//   - single-place linear algebra from internal/la;
//   - the multi-place GML classes (DupVector, DistVector,
//     DistBlockMatrix, …) from internal/dist;
//   - snapshot/restore from internal/snapshot;
//   - the resilient iterative framework (AppResilientStore, Executor,
//     restoration modes) from internal/core;
//   - the three benchmark applications from internal/apps.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the paper-to-package mapping.
package rgml

import (
	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/snapshot"
)

// APGAS runtime surface.
type (
	// Runtime is the emulated APGAS runtime (a set of places plus the
	// finish machinery and failure injector).
	Runtime = apgas.Runtime
	// RuntimeConfig parameterizes NewRuntime.
	RuntimeConfig = apgas.Config
	// Place identifies one place (an emulated process).
	Place = apgas.Place
	// PlaceGroup is an ordered collection of places.
	PlaceGroup = apgas.PlaceGroup
	// Ctx is a task's execution context.
	Ctx = apgas.Ctx
	// NetModel charges simulated interconnect time.
	NetModel = apgas.NetModel
	// DeadPlaceError reports a failed place (x10.lang.DeadPlaceException).
	DeadPlaceError = apgas.DeadPlaceError
)

// NewRuntime creates an emulated APGAS runtime.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return apgas.NewRuntime(cfg) }

// IsDeadPlace reports whether err contains a DeadPlaceError.
func IsDeadPlace(err error) bool { return apgas.IsDeadPlace(err) }

// DeadPlaces extracts the places reported dead by err.
func DeadPlaces(err error) []Place { return apgas.DeadPlaces(err) }

// ForEachPlace runs fn concurrently at every place of g under a finish.
func ForEachPlace(rt *Runtime, g PlaceGroup, fn func(ctx *Ctx, idx int)) error {
	return apgas.ForEachPlace(rt, g, fn)
}

// Single-place linear algebra surface.
type (
	// Vector is a dense column vector.
	Vector = la.Vector
	// DenseMatrix is a column-major dense matrix.
	DenseMatrix = la.DenseMatrix
	// SparseCSC is a compressed-sparse-column matrix.
	SparseCSC = la.SparseCSC
	// SparseCSR is a compressed-sparse-row matrix.
	SparseCSR = la.SparseCSR
	// RNG is a deterministic random generator for workload synthesis.
	RNG = la.RNG
)

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return la.NewVector(n) }

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *DenseMatrix { return la.NewDense(rows, cols) }

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return la.NewRNG(seed) }

// BlockKind discriminates dense and sparse block storage.
type BlockKind = block.Kind

// Block storage kinds.
const (
	DenseBlocks  = block.Dense
	SparseBlocks = block.Sparse
)

// Multi-place GML classes (paper Table I).
type (
	// DupVector is a vector duplicated at every place of a group.
	DupVector = dist.DupVector
	// DistVector is a vector partitioned into per-place segments.
	DistVector = dist.DistVector
	// DupDenseMatrix is a dense matrix duplicated at every place.
	DupDenseMatrix = dist.DupDenseMatrix
	// DupSparseMatrix is a sparse matrix duplicated at every place.
	DupSparseMatrix = dist.DupSparseMatrix
	// DistDenseMatrix assigns one dense block to each place.
	DistDenseMatrix = dist.DistDenseMatrix
	// DistSparseMatrix assigns one sparse block to each place.
	DistSparseMatrix = dist.DistSparseMatrix
	// DistBlockMatrix assigns one or more blocks to each place.
	DistBlockMatrix = dist.DistBlockMatrix
)

// MakeDupVector creates a zeroed duplicated vector of length n over pg.
func MakeDupVector(rt *Runtime, n int, pg PlaceGroup) (*DupVector, error) {
	return dist.MakeDupVector(rt, n, pg)
}

// MakeDistVector creates a zeroed distributed vector of length n over pg.
func MakeDistVector(rt *Runtime, n int, pg PlaceGroup) (*DistVector, error) {
	return dist.MakeDistVector(rt, n, pg)
}

// MakeDistBlockMatrix creates a distributed block matrix (the factory of
// paper Listing 2, with an arbitrary place group).
func MakeDistBlockMatrix(rt *Runtime, kind BlockKind, rows, cols, rowBlocks, colBlocks, rowPlaces, colPlaces int, pg PlaceGroup) (*DistBlockMatrix, error) {
	return dist.MakeDistBlockMatrix(rt, kind, rows, cols, rowBlocks, colBlocks, rowPlaces, colPlaces, pg)
}

// MakeDistDenseMatrix creates a dense matrix with one block per place.
func MakeDistDenseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DistDenseMatrix, error) {
	return dist.MakeDistDenseMatrix(rt, rows, cols, pg)
}

// MakeDistSparseMatrix creates a sparse matrix with one block per place.
func MakeDistSparseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DistSparseMatrix, error) {
	return dist.MakeDistSparseMatrix(rt, rows, cols, pg)
}

// MakeDupDenseMatrix creates a duplicated dense matrix over pg.
func MakeDupDenseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DupDenseMatrix, error) {
	return dist.MakeDupDenseMatrix(rt, rows, cols, pg)
}

// MakeDupSparseMatrix creates a duplicated sparse matrix over pg.
func MakeDupSparseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DupSparseMatrix, error) {
	return dist.MakeDupSparseMatrix(rt, rows, cols, pg)
}

// Snapshot/restore surface (paper section IV-B).
type (
	// Snapshot is a resilient key/value capture of one object's state
	// with local + next-place double storage.
	Snapshot = snapshot.Snapshot
	// Snapshottable is implemented by every GML object that supports
	// snapshot/restore (paper Listing 3).
	Snapshottable = snapshot.Snapshottable
)

// Resilient iterative framework surface (paper section V).
type (
	// IterativeApp is the 4-method resilient programming model.
	IterativeApp = core.IterativeApp
	// AppResilientStore builds atomic application checkpoints.
	AppResilientStore = core.AppResilientStore
	// Executor drives an IterativeApp with checkpoint/restart.
	Executor = core.Executor
	// ExecutorConfig parameterizes NewExecutor.
	ExecutorConfig = core.Config
	// RestoreMode selects how the application adapts to place loss.
	RestoreMode = core.RestoreMode
)

// Restoration modes (paper section V-B, plus the future-work elastic mode).
const (
	Shrink           = core.Shrink
	ShrinkRebalance  = core.ShrinkRebalance
	ReplaceRedundant = core.ReplaceRedundant
	ReplaceElastic   = core.ReplaceElastic
)

// NewExecutor builds a resilient executor over rt's initial world.
func NewExecutor(rt *Runtime, cfg ExecutorConfig) (*Executor, error) {
	return core.NewExecutor(rt, cfg)
}

// Observability surface (internal/obs).
type (
	// MetricsRegistry is the named-instrument registry (counters, gauges,
	// duration histograms, trace events) that the runtime, the snapshot
	// layer and the executor report into. Share one registry between
	// RuntimeConfig.Obs and ExecutorConfig.Obs to get a single coherent
	// export for a run.
	MetricsRegistry = obs.Registry
	// TraceEvent is one entry of a registry's trace ring.
	TraceEvent = obs.Event
)

// NewMetricsRegistry returns an empty registry with the default trace
// capacity.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewAppResilientStore returns an empty application store.
func NewAppResilientStore() *AppResilientStore { return core.NewAppResilientStore() }

// Benchmark applications (paper section VII).
type (
	// LinRegConfig parameterizes the Linear Regression benchmark.
	LinRegConfig = apps.LinRegConfig
	// LinRegApp is the resilient Linear Regression application.
	LinRegApp = apps.LinReg
	// LogRegConfig parameterizes the Logistic Regression benchmark.
	LogRegConfig = apps.LogRegConfig
	// LogRegApp is the resilient Logistic Regression application.
	LogRegApp = apps.LogReg
	// PageRankConfig parameterizes the PageRank benchmark.
	PageRankConfig = apps.PageRankConfig
	// PageRankApp is the resilient PageRank application.
	PageRankApp = apps.PageRank
	// GNMFConfig parameterizes the non-negative matrix factorization
	// benchmark (an extension beyond the paper's three applications).
	GNMFConfig = apps.GNMFConfig
	// GNMFApp is the resilient GNMF application.
	GNMFApp = apps.GNMF
)

// NewLinReg builds the resilient Linear Regression application.
func NewLinReg(rt *Runtime, cfg LinRegConfig, pg PlaceGroup) (*LinRegApp, error) {
	return apps.NewLinReg(rt, cfg, pg)
}

// NewLogReg builds the resilient Logistic Regression application.
func NewLogReg(rt *Runtime, cfg LogRegConfig, pg PlaceGroup) (*LogRegApp, error) {
	return apps.NewLogReg(rt, cfg, pg)
}

// NewPageRank builds the resilient PageRank application.
func NewPageRank(rt *Runtime, cfg PageRankConfig, pg PlaceGroup) (*PageRankApp, error) {
	return apps.NewPageRank(rt, cfg, pg)
}

// NewGNMF builds the resilient non-negative matrix factorization
// application.
func NewGNMF(rt *Runtime, cfg GNMFConfig, pg PlaceGroup) (*GNMFApp, error) {
	return apps.NewGNMF(rt, cfg, pg)
}

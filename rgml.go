// Package rgml is a Go reproduction of "A Resilient Framework for
// Iterative Linear Algebra Applications in X10" (Hamouda, Milthorpe,
// Strazdins, Saraswat; IPDPS Workshops 2015): the X10 Global Matrix
// Library's resilience extension, rebuilt from scratch on an emulated
// APGAS runtime.
//
// The package is a facade re-exporting the public surface of the internal
// packages:
//
//   - the APGAS substrate (places, finish, failure injection) from
//     internal/apgas;
//   - single-place linear algebra from internal/la;
//   - the multi-place GML classes (DupVector, DistVector,
//     DistBlockMatrix, …) from internal/dist;
//   - snapshot/restore from internal/snapshot;
//   - the resilient iterative framework (AppResilientStore, Executor,
//     restoration modes) from internal/core;
//   - the three benchmark applications from internal/apps.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the paper-to-package mapping.
package rgml

import (
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/apgas/transport/tcp"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/snapshot"
)

// APGAS runtime surface.
type (
	// Runtime is the emulated APGAS runtime (a set of places plus the
	// finish machinery and failure injector).
	Runtime = apgas.Runtime
	// RuntimeConfig parameterizes NewRuntime.
	RuntimeConfig = apgas.Config
	// Place identifies one place (an emulated process).
	Place = apgas.Place
	// PlaceGroup is an ordered collection of places.
	PlaceGroup = apgas.PlaceGroup
	// Ctx is a task's execution context.
	Ctx = apgas.Ctx
	// NetModel charges simulated interconnect time.
	NetModel = apgas.NetModel
	// DeadPlaceError reports a failed place (x10.lang.DeadPlaceException).
	DeadPlaceError = apgas.DeadPlaceError
	// FinishMode selects the resilient-finish bookkeeping architecture.
	FinishMode = apgas.FinishMode
)

// The resilient-finish architectures.
const (
	// FinishCentral is the paper-faithful place-zero ledger (the default).
	FinishCentral = apgas.FinishCentral
	// FinishSharded bookkeeps each finish at its home place's ledger shard,
	// with a local fork/join fast path and batched event delivery.
	FinishSharded = apgas.FinishSharded
)

// DefaultLedgerQueue is the default capacity of each bookkeeping event
// channel.
const DefaultLedgerQueue = apgas.DefaultLedgerQueue

// ParseFinishMode maps "central" or "sharded" to its FinishMode.
func ParseFinishMode(s string) (FinishMode, error) { return apgas.ParseFinishMode(s) }

// Snapshot-store redundancy surface.
type (
	// StorePolicy is the snapshot store's redundancy configuration: how
	// many copies (or erasure shards) of each checkpoint entry exist, and
	// where. The zero value keeps the paper-faithful default (replicate,
	// k=2 — owner plus next place).
	StorePolicy = apgas.StorePolicy
	// StorePlacement selects replication vs Reed-Solomon erasure coding.
	StorePlacement = apgas.Placement
)

// The snapshot-store placements.
const (
	// PlacementReplicate stores k full copies at consecutive places.
	PlacementReplicate = apgas.PlacementReplicate
	// PlacementErasure Reed-Solomon-encodes each entry into d data + p
	// parity shards, tolerating p failures at (d+p)/d storage.
	PlacementErasure = apgas.PlacementErasure
)

// ReplicateStore returns a k-copy replication policy.
func ReplicateStore(k int) StorePolicy { return apgas.ReplicateStore(k) }

// ErasureStore returns a d-data, p-parity erasure policy.
func ErasureStore(d, p int) StorePolicy { return apgas.ErasureStore(d, p) }

// ParsePlacement maps "replicate" or "erasure" to its StorePlacement.
func ParsePlacement(s string) (StorePlacement, error) { return apgas.ParsePlacement(s) }

// WithStorePolicy sets the snapshot store's redundancy policy for every
// snapshot the runtime's objects create. Policies wider than a snapshot's
// place group clamp with a trace event rather than failing.
func WithStorePolicy(sp StorePolicy) RuntimeOption { return apgas.WithStorePolicy(sp) }

// Checkpoint-compression surface.
type (
	// CompressionMode selects the checkpoint compression codec: none,
	// lossless, or error-bounded lossy quantization.
	CompressionMode = codec.Compression
	// CompressionSpec pairs a CompressionMode with the lossy error bound.
	// The zero value means no compression (the bit-identical codec).
	CompressionSpec = codec.Spec
)

// The checkpoint compression modes.
const (
	// CompressNone writes the uncompressed fixed-width codec (default).
	CompressNone = codec.CompressNone
	// CompressLossless varint/delta-encodes index arrays and
	// byte-shuffle+flate-compresses float payloads; round-trips are exact.
	CompressLossless = codec.CompressLossless
	// CompressLossy quantizes float payloads relative to a per-object
	// error bound; every element restores within ±ErrorBound. Objects
	// opt in per instance (AllowLossyCheckpoint); everything else is
	// downgraded to lossless.
	CompressLossy = codec.CompressLossy
)

// ParseCompression maps "none", "lossless" or "lossy" to its mode.
func ParseCompression(s string) (CompressionMode, error) { return codec.ParseCompression(s) }

// LossyCompression returns a lossy spec with the given absolute
// per-element error bound.
func LossyCompression(errorBound float64) CompressionSpec {
	return codec.Spec{Mode: codec.CompressLossy, ErrorBound: errorBound}
}

// LosslessCompression returns the lossless spec.
func LosslessCompression() CompressionSpec { return codec.Spec{Mode: codec.CompressLossless} }

// WithCompression sets the runtime-wide checkpoint compression policy
// applied when the dist classes serialize snapshot payloads. Individual
// objects can override it with SetCompression; lossy mode additionally
// requires the object's AllowLossyCheckpoint opt-in.
func WithCompression(spec CompressionSpec) RuntimeOption { return apgas.WithCompression(spec) }

// RuntimeOption configures a runtime built with NewRuntimeWith.
type RuntimeOption = apgas.Option

// NewRuntimeWith creates an emulated APGAS runtime from functional
// options — the preferred constructor:
//
//	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(8), rgml.WithResilient(true))
//
// Zero options give a single non-resilient place.
func NewRuntimeWith(opts ...RuntimeOption) (*Runtime, error) { return apgas.New(opts...) }

// NewRuntime creates an emulated APGAS runtime from a Config literal.
//
// Deprecated: compatibility-only shim for external Config-literal
// callers. Use NewRuntimeWith with functional options.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return apgas.NewRuntime(cfg) }

// WithPlaces sets the number of places to create (at least 1).
func WithPlaces(n int) RuntimeOption { return apgas.WithPlaces(n) }

// WithResilient selects resilient finish semantics (required for failure
// injection, and therefore for chaos schedules).
func WithResilient(on bool) RuntimeOption { return apgas.WithResilient(on) }

// WithNet sets the simulated interconnect model.
func WithNet(m NetModel) RuntimeOption { return apgas.WithNet(m) }

// WithFinishMode selects the resilient-finish bookkeeping architecture:
// FinishCentral (the default) or FinishSharded. Both modes have identical
// semantics — failures surface as the same DeadPlaceError and seeded chaos
// schedules kill identically — only the bookkeeping cost distribution
// changes.
func WithFinishMode(m FinishMode) RuntimeOption { return apgas.WithFinishMode(m) }

// WithLedgerQueue sets the capacity of each resilient-finish bookkeeping
// event channel (default DefaultLedgerQueue). When a channel fills, event
// posting blocks and the apgas.ledger.queue_full counter increments.
func WithLedgerQueue(n int) RuntimeOption { return apgas.WithLedgerQueue(n) }

// WithRuntimeObs wires the runtime's instrumentation into reg. Pass the
// same registry to WithExecutorObs for a single coherent export per run.
func WithRuntimeObs(reg *MetricsRegistry) RuntimeOption { return apgas.WithObs(reg) }

// WithKernelWorkers sets the intra-place kernel worker pool size that the
// linear-algebra kernels and per-place block fans run on (default:
// RGML_WORKERS or the CPU count). Kernel results are bit-identical at
// every worker count — the deterministic chunking contract of
// internal/par — so the knob only affects throughput, never results.
func WithKernelWorkers(n int) RuntimeOption { return apgas.WithKernelWorkers(n) }

// Transport surface. The runtime's communication seam is pluggable: the
// default in-process backend preserves the emulator's deterministic
// single-process semantics, while the TCP backend runs one place per OS
// process so failures are real process deaths detected by heartbeat.
type (
	// Transport is the runtime's communication backend: message delivery
	// between places, administrative kills, and place-death reporting.
	Transport = transport.Transport
	// TransportClass tags each message with its traffic class (task,
	// control, data or snapshot) for per-class accounting.
	TransportClass = transport.Class
	// TCPOption configures NewTCPTransport.
	TCPOption = tcp.Option
)

// WithTransport plugs a communication backend into the runtime. The
// default (nil) is the in-process local backend, which keeps runs
// bit-identical to the pre-seam emulator.
func WithTransport(tp Transport) RuntimeOption { return apgas.WithTransport(tp) }

// NewTCPTransport returns the multi-process TCP backend: the coordinator
// listens on a loopback address, spawns (or accepts) one worker process
// per place, and declares places dead when their heartbeats stop or the
// connection drops. Pair with WithTransport.
func NewTCPTransport(opts ...TCPOption) Transport { return tcp.New(opts...) }

// WithTCPAddr sets the coordinator listen address (default "127.0.0.1:0").
func WithTCPAddr(addr string) TCPOption { return tcp.WithAddr(addr) }

// WithTCPHeartbeat sets the heartbeat interval and the silence threshold
// after which a place is declared dead.
func WithTCPHeartbeat(interval, timeout time.Duration) TCPOption {
	return tcp.WithHeartbeat(interval, timeout)
}

// WithTCPObs wires the TCP backend's wire-level instrumentation into reg.
func WithTCPObs(reg *MetricsRegistry) TCPOption { return tcp.WithObs(reg) }

// MaybeTCPWorker turns this process into a TCP transport worker place and
// never returns when the worker environment variable is set; it is a
// no-op otherwise. Call it first in main() of any binary that creates a
// runtime over NewTCPTransport, so the backend can re-exec the binary as
// its worker processes.
func MaybeTCPWorker() { tcp.MaybeWorker() }

// ServeTCPWorker joins a TCP transport coordinator at addr as the worker
// body for the given place and blocks until dismissed or killed — the
// explicit form of the worker side for externally managed processes.
func ServeTCPWorker(addr string, place int, interval, timeout time.Duration) error {
	return tcp.ServeWorker(addr, place, interval, timeout)
}

// IsDeadPlace reports whether err contains a DeadPlaceError.
func IsDeadPlace(err error) bool { return apgas.IsDeadPlace(err) }

// DeadPlaces extracts the places reported dead by err.
func DeadPlaces(err error) []Place { return apgas.DeadPlaces(err) }

// ForEachPlace runs fn concurrently at every place of g under a finish.
func ForEachPlace(rt *Runtime, g PlaceGroup, fn func(ctx *Ctx, idx int)) error {
	return apgas.ForEachPlace(rt, g, fn)
}

// Single-place linear algebra surface.
type (
	// Vector is a dense column vector.
	Vector = la.Vector
	// DenseMatrix is a column-major dense matrix.
	DenseMatrix = la.DenseMatrix
	// SparseCSC is a compressed-sparse-column matrix.
	SparseCSC = la.SparseCSC
	// SparseCSR is a compressed-sparse-row matrix.
	SparseCSR = la.SparseCSR
	// RNG is a deterministic random generator for workload synthesis.
	RNG = la.RNG
)

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return la.NewVector(n) }

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *DenseMatrix { return la.NewDense(rows, cols) }

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return la.NewRNG(seed) }

// BlockKind discriminates dense and sparse block storage.
type BlockKind = block.Kind

// Block storage kinds.
const (
	DenseBlocks  = block.Dense
	SparseBlocks = block.Sparse
)

// Multi-place GML classes (paper Table I).
type (
	// DupVector is a vector duplicated at every place of a group.
	DupVector = dist.DupVector
	// DistVector is a vector partitioned into per-place segments.
	DistVector = dist.DistVector
	// DupDenseMatrix is a dense matrix duplicated at every place.
	DupDenseMatrix = dist.DupDenseMatrix
	// DupSparseMatrix is a sparse matrix duplicated at every place.
	DupSparseMatrix = dist.DupSparseMatrix
	// DistDenseMatrix assigns one dense block to each place.
	DistDenseMatrix = dist.DistDenseMatrix
	// DistSparseMatrix assigns one sparse block to each place.
	DistSparseMatrix = dist.DistSparseMatrix
	// DistBlockMatrix assigns one or more blocks to each place.
	DistBlockMatrix = dist.DistBlockMatrix
)

// MakeDupVector creates a zeroed duplicated vector of length n over pg.
func MakeDupVector(rt *Runtime, n int, pg PlaceGroup) (*DupVector, error) {
	return dist.MakeDupVector(rt, n, pg)
}

// MakeDistVector creates a zeroed distributed vector of length n over pg.
func MakeDistVector(rt *Runtime, n int, pg PlaceGroup) (*DistVector, error) {
	return dist.MakeDistVector(rt, n, pg)
}

// MakeDistBlockMatrix creates a distributed block matrix (the factory of
// paper Listing 2, with an arbitrary place group).
func MakeDistBlockMatrix(rt *Runtime, kind BlockKind, rows, cols, rowBlocks, colBlocks, rowPlaces, colPlaces int, pg PlaceGroup) (*DistBlockMatrix, error) {
	return dist.MakeDistBlockMatrix(rt, kind, rows, cols, rowBlocks, colBlocks, rowPlaces, colPlaces, pg)
}

// MakeDistDenseMatrix creates a dense matrix with one block per place.
func MakeDistDenseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DistDenseMatrix, error) {
	return dist.MakeDistDenseMatrix(rt, rows, cols, pg)
}

// MakeDistSparseMatrix creates a sparse matrix with one block per place.
func MakeDistSparseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DistSparseMatrix, error) {
	return dist.MakeDistSparseMatrix(rt, rows, cols, pg)
}

// MakeDupDenseMatrix creates a duplicated dense matrix over pg.
func MakeDupDenseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DupDenseMatrix, error) {
	return dist.MakeDupDenseMatrix(rt, rows, cols, pg)
}

// MakeDupSparseMatrix creates a duplicated sparse matrix over pg.
func MakeDupSparseMatrix(rt *Runtime, rows, cols int, pg PlaceGroup) (*DupSparseMatrix, error) {
	return dist.MakeDupSparseMatrix(rt, rows, cols, pg)
}

// Snapshot/restore surface (paper section IV-B).
type (
	// Snapshot is a resilient key/value capture of one object's state
	// with local + next-place double storage.
	Snapshot = snapshot.Snapshot
	// Snapshottable is implemented by every GML object that supports
	// snapshot/restore (paper Listing 3).
	Snapshottable = snapshot.Snapshottable
	// DirtyTracker marks Snapshottables that can build delta snapshots
	// against the committed checkpoint (see WithDelta).
	DirtyTracker = snapshot.DirtyTracker
	// PartialRestorer marks Snapshottables that can restore only the
	// state lost with the dead places (see WithDelta).
	PartialRestorer = snapshot.PartialRestorer
)

// Resilient iterative framework surface (paper section V).
type (
	// IterativeApp is the 4-method resilient programming model.
	IterativeApp = core.IterativeApp
	// AppResilientStore builds atomic application checkpoints.
	AppResilientStore = core.AppResilientStore
	// Executor drives an IterativeApp with checkpoint/restart.
	Executor = core.Executor
	// ExecutorConfig parameterizes NewExecutor.
	ExecutorConfig = core.Config
	// RestoreMode selects how the application adapts to place loss.
	RestoreMode = core.RestoreMode
)

// Restoration modes (paper section V-B, plus the future-work elastic mode).
const (
	Shrink           = core.Shrink
	ShrinkRebalance  = core.ShrinkRebalance
	ReplaceRedundant = core.ReplaceRedundant
	ReplaceElastic   = core.ReplaceElastic
)

// ExecutorOption configures an executor built with NewExecutorWith.
type ExecutorOption = core.Option

// NewExecutorWith builds a resilient executor over rt's initial world from
// functional options — the preferred constructor:
//
//	exec, err := rgml.NewExecutorWith(rt,
//	    rgml.WithCheckpointInterval(10),
//	    rgml.WithRestoreMode(rgml.Shrink),
//	)
//
// Run it with Executor.Run, or Executor.RunContext to bound the run with a
// context (cancellation surfaces as ErrCanceled).
func NewExecutorWith(rt *Runtime, opts ...ExecutorOption) (*Executor, error) {
	return core.New(rt, opts...)
}

// NewExecutor builds a resilient executor from a Config literal.
//
// Deprecated: compatibility-only shim for external Config-literal
// callers. Use NewExecutorWith with functional options.
func NewExecutor(rt *Runtime, cfg ExecutorConfig) (*Executor, error) {
	return core.NewExecutor(rt, cfg)
}

// WithCheckpointInterval checkpoints before iterations 0, k, 2k, ….
func WithCheckpointInterval(k int) ExecutorOption { return core.WithCheckpointInterval(k) }

// WithMTTF enables automatic checkpoint intervals from Young's formula.
func WithMTTF(mttf time.Duration) ExecutorOption { return core.WithMTTF(mttf) }

// WithRestoreMode selects the restoration mode applied on failure.
func WithRestoreMode(m RestoreMode) ExecutorOption { return core.WithRestoreMode(m) }

// WithFallback selects the mode ReplaceRedundant degrades to when the
// spare pool is exhausted; it must be Shrink or ShrinkRebalance.
func WithFallback(m RestoreMode) ExecutorOption { return core.WithFallback(m) }

// WithSpares reserves the last n places of the runtime's initial world as
// replacements for ReplaceRedundant.
func WithSpares(n int) ExecutorOption { return core.WithSpares(n) }

// WithMaxRestores bounds recovery attempts per run.
func WithMaxRestores(n int) ExecutorOption { return core.WithMaxRestores(n) }

// WithDelta enables delta checkpointing: objects implementing
// DirtyTracker re-encode and re-ship only entries whose content changed
// since the committed checkpoint; unchanged entries are carried forward
// by reference. On recovery, objects implementing PartialRestorer keep
// CRC-validated surviving-place state and load only what the dead places
// owned.
func WithDelta(on bool) ExecutorOption { return core.WithDelta(on) }

// WithAfterStep installs a hook running after each successful iteration.
func WithAfterStep(fn func(iter int64)) ExecutorOption { return core.WithAfterStep(fn) }

// WithExecutorObs directs the executor's instruments into reg.
func WithExecutorObs(reg *MetricsRegistry) ExecutorOption { return core.WithObs(reg) }

// WithChaos attaches a fault-injection engine to the executor: armed for
// the duration of each run, driven by the executor's iteration clock.
func WithChaos(eng *ChaosEngine) ExecutorOption { return core.WithChaos(eng) }

// WithExecutorKernelWorkers sets the kernel worker pool size from the
// executor's side (see WithKernelWorkers; the pool is process-wide).
func WithExecutorKernelWorkers(n int) ExecutorOption { return core.WithKernelWorkers(n) }

// Chaos fault-injection surface (internal/chaos): deterministic,
// seed-reproducible failure schedules driving the runtime's Kill and
// transient-fault hooks from declarative rules.
type (
	// ChaosEngine evaluates a schedule against injection points while a
	// run is armed; same seed + schedule ⇒ identical kill sequence.
	ChaosEngine = chaos.Engine
	// ChaosSchedule is an ordered list of fault rules.
	ChaosSchedule = chaos.Schedule
	// ChaosRule is one declarative fault rule.
	ChaosRule = chaos.Rule
	// ChaosPoint names an injection point (step, commit, restore, spawn,
	// replica).
	ChaosPoint = chaos.Point
	// ChaosOption configures an engine built with NewChaosEngine.
	ChaosOption = chaos.Option
)

// Chaos injection points.
const (
	ChaosPointStep    = chaos.PointStep
	ChaosPointCommit  = chaos.PointCommit
	ChaosPointRestore = chaos.PointRestore
	ChaosPointSpawn   = chaos.PointSpawn
	ChaosPointReplica = chaos.PointReplica
)

// NewChaosEngine builds a fault-injection engine over rt (which must be
// resilient). Attach it to an executor with WithChaos.
func NewChaosEngine(rt *Runtime, sched ChaosSchedule, opts ...ChaosOption) (*ChaosEngine, error) {
	return chaos.New(rt, sched, opts...)
}

// WithChaosSeed seeds the engine's deterministic random draws.
func WithChaosSeed(seed uint64) ChaosOption { return chaos.WithSeed(seed) }

// ParseChaosSchedule parses the schedule DSL, e.g.
// "kill(point=commit,iter=2,place=1);flake(times=3)".
func ParseChaosSchedule(s string) (ChaosSchedule, error) { return chaos.Parse(s) }

// Typed framework errors, for errors.Is against results of Executor.Run,
// Executor.RunContext and the store operations.
var (
	// ErrNoSnapshot: recovery was needed but no checkpoint was ever
	// committed (checkpointing disabled or first interval not reached).
	ErrNoSnapshot = core.ErrNoSnapshot
	// ErrSnapshotInProgress: a new snapshot was started while one was
	// already open.
	ErrSnapshotInProgress = core.ErrSnapshotInProgress
	// ErrGroupExhausted: a failure left no usable surviving places.
	ErrGroupExhausted = core.ErrGroupExhausted
	// ErrRestoreBudget: recovery was abandoned after MaxRestores attempts.
	ErrRestoreBudget = core.ErrRestoreBudget
	// ErrCanceled: the run's context was canceled or timed out.
	ErrCanceled = core.ErrCanceled
	// ErrBadOption: a runtime option carried an invalid value (unknown
	// finish mode, non-positive ledger queue, malformed store policy).
	ErrBadOption = apgas.ErrBadOption
	// ErrDataLost: failures exceeded the store policy's tolerance — more
	// places died between checkpoints than there were surviving replicas
	// or parity shards for an entry. Loss is always loud, never silent.
	ErrDataLost = snapshot.ErrDataLost
)

// Observability surface (internal/obs).
type (
	// MetricsRegistry is the named-instrument registry (counters, gauges,
	// duration histograms, trace events) that the runtime, the snapshot
	// layer and the executor report into. Share one registry between
	// RuntimeConfig.Obs and ExecutorConfig.Obs to get a single coherent
	// export for a run.
	MetricsRegistry = obs.Registry
	// TraceEvent is one entry of a registry's trace ring.
	TraceEvent = obs.Event
)

// NewMetricsRegistry returns an empty registry with the default trace
// capacity.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewAppResilientStore returns an empty application store.
func NewAppResilientStore() *AppResilientStore { return core.NewAppResilientStore() }

// Benchmark applications (paper section VII).
type (
	// LinRegConfig parameterizes the Linear Regression benchmark.
	LinRegConfig = apps.LinRegConfig
	// LinRegApp is the resilient Linear Regression application.
	LinRegApp = apps.LinReg
	// LogRegConfig parameterizes the Logistic Regression benchmark.
	LogRegConfig = apps.LogRegConfig
	// LogRegApp is the resilient Logistic Regression application.
	LogRegApp = apps.LogReg
	// PageRankConfig parameterizes the PageRank benchmark.
	PageRankConfig = apps.PageRankConfig
	// PageRankApp is the resilient PageRank application.
	PageRankApp = apps.PageRank
	// GNMFConfig parameterizes the non-negative matrix factorization
	// benchmark (an extension beyond the paper's three applications).
	GNMFConfig = apps.GNMFConfig
	// GNMFApp is the resilient GNMF application.
	GNMFApp = apps.GNMF
)

// NewLinReg builds the resilient Linear Regression application.
func NewLinReg(rt *Runtime, cfg LinRegConfig, pg PlaceGroup) (*LinRegApp, error) {
	return apps.NewLinReg(rt, cfg, pg)
}

// NewLogReg builds the resilient Logistic Regression application.
func NewLogReg(rt *Runtime, cfg LogRegConfig, pg PlaceGroup) (*LogRegApp, error) {
	return apps.NewLogReg(rt, cfg, pg)
}

// NewPageRank builds the resilient PageRank application.
func NewPageRank(rt *Runtime, cfg PageRankConfig, pg PlaceGroup) (*PageRankApp, error) {
	return apps.NewPageRank(rt, cfg, pg)
}

// NewGNMF builds the resilient non-negative matrix factorization
// application.
func NewGNMF(rt *Runtime, cfg GNMFConfig, pg PlaceGroup) (*GNMFApp, error) {
	return apps.NewGNMF(rt, cfg, pg)
}

module github.com/rgml/rgml

go 1.22

package rgml_test

import (
	"context"
	"errors"
	"testing"

	"github.com/rgml/rgml"
)

// TestFacadeEndToEnd exercises the public API exactly as a downstream user
// would: build a runtime, distribute a matrix, compute, checkpoint through
// the executor, survive a failure, and check the result.
func TestFacadeEndToEnd(t *testing.T) {
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(4), rgml.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	killed := false
	exec, err := rgml.NewExecutorWith(rt,
		rgml.WithCheckpointInterval(3),
		rgml.WithRestoreMode(rgml.Shrink),
		rgml.WithAfterStep(func(iter int64) {
			if !killed && iter == 4 {
				killed = true
				if err := rt.Kill(rt.Place(2)); err != nil {
					t.Errorf("Kill: %v", err)
				}
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	app, err := rgml.NewPageRank(rt, rgml.PageRankConfig{
		Nodes: 80, OutDegree: 4, Iterations: 10, Seed: 3,
	}, exec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	ranks, err := app.Ranks()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 80 {
		t.Fatalf("ranks len = %d", len(ranks))
	}
	sum := 0.0
	for _, r := range ranks {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += r
	}
	if sum < 0.5 || sum > 1.5 {
		t.Fatalf("rank mass = %v", sum)
	}
	if exec.Metrics().Restores != 1 {
		t.Fatalf("Restores = %d", exec.Metrics().Restores)
	}
}

// TestFacadeGMLObjects covers the matrix/vector factory surface.
func TestFacadeGMLObjects(t *testing.T) {
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(3), rgml.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	pg := rt.World()

	m, err := rgml.MakeDistBlockMatrix(rt, rgml.DenseBlocks, 9, 4, 3, 1, 3, 1, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 { return float64(i - j) }); err != nil {
		t.Fatal(err)
	}
	x, err := rgml.MakeDupVector(rt, 4, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(func(int) float64 { return 2 }); err != nil {
		t.Fatal(err)
	}
	y, err := rgml.MakeDistVector(rt, 9, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := y.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	// Row i: sum over j of (i-j)*2 = 2*(4i - 6).
	for i, v := range got {
		want := 2 * float64(4*i-6)
		if v != want {
			t.Fatalf("y[%d] = %v, want %v", i, v, want)
		}
	}

	// The one-block-per-place and duplicated classes construct too.
	if _, err := rgml.MakeDistDenseMatrix(rt, 9, 4, pg); err != nil {
		t.Fatal(err)
	}
	if _, err := rgml.MakeDistSparseMatrix(rt, 9, 4, pg); err != nil {
		t.Fatal(err)
	}
	if _, err := rgml.MakeDupDenseMatrix(rt, 3, 3, pg); err != nil {
		t.Fatal(err)
	}
	if _, err := rgml.MakeDupSparseMatrix(rt, 3, 3, pg); err != nil {
		t.Fatal(err)
	}
	if v := rgml.NewVector(5); len(v) != 5 {
		t.Fatal("NewVector")
	}
	if d := rgml.NewDense(2, 3); d.Rows != 2 {
		t.Fatal("NewDense")
	}
	if rgml.NewRNG(1).Float64() < 0 {
		t.Fatal("NewRNG")
	}
}

// TestFacadeGNMF drives the extension application through the facade.
func TestFacadeGNMF(t *testing.T) {
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(3), rgml.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	exec, err := rgml.NewExecutorWith(rt, rgml.WithCheckpointInterval(3))
	if err != nil {
		t.Fatal(err)
	}
	app, err := rgml.NewGNMF(rt, rgml.GNMFConfig{
		Rows: 30, Cols: 12, NNZPerCol: 3, Rank: 2, Iterations: 6, Seed: 5,
	}, exec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	before, err := app.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	after, err := app.Objective()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("objective did not decrease: %v -> %v", before, after)
	}
}

// TestFacadeOptionsAndChaos exercises the functional-options constructors
// and the chaos surface end to end: a seeded schedule kills a place inside
// a checkpoint commit and the run recovers under RunContext.
func TestFacadeOptionsAndChaos(t *testing.T) {
	reg := rgml.NewMetricsRegistry()
	rt, err := rgml.NewRuntimeWith(
		rgml.WithPlaces(4),
		rgml.WithResilient(true),
		rgml.WithRuntimeObs(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	sched, err := rgml.ParseChaosSchedule("kill(point=commit,iter=2,place=1)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rgml.NewChaosEngine(rt, sched, rgml.WithChaosSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := rgml.NewExecutorWith(rt,
		rgml.WithCheckpointInterval(2),
		rgml.WithRestoreMode(rgml.Shrink),
		rgml.WithExecutorObs(reg),
		rgml.WithChaos(eng),
	)
	if err != nil {
		t.Fatal(err)
	}
	app, err := rgml.NewLinReg(rt, rgml.LinRegConfig{
		Examples: 64, Features: 8, Iterations: 6, Seed: 1,
	}, exec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RunContext(context.Background(), app); err != nil {
		t.Fatal(err)
	}
	if got := eng.Signature(); got != "2@commit:p1" {
		t.Errorf("chaos signature = %q, want 2@commit:p1", got)
	}
	if exec.Metrics().Restores != 1 {
		t.Errorf("Restores = %d, want 1", exec.Metrics().Restores)
	}
	if _, err := app.Weights(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeContextCancel checks that a canceled run surfaces the typed
// ErrCanceled through the facade.
func TestFacadeContextCancel(t *testing.T) {
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(2), rgml.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	exec, err := rgml.NewExecutorWith(rt, rgml.WithCheckpointInterval(2))
	if err != nil {
		t.Fatal(err)
	}
	app, err := rgml.NewLinReg(rt, rgml.LinRegConfig{
		Examples: 32, Features: 4, Iterations: 4, Seed: 1,
	}, exec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := exec.RunContext(ctx, app); !errors.Is(err, rgml.ErrCanceled) {
		t.Fatalf("RunContext = %v, want ErrCanceled", err)
	}
}

// TestFacadeErrors covers the error-inspection helpers.
func TestFacadeErrors(t *testing.T) {
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(3), rgml.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	err = rgml.ForEachPlace(rt, rgml.PlaceGroup{rt.Place(0), rt.Place(1)}, func(ctx *rgml.Ctx, idx int) {})
	if !rgml.IsDeadPlace(err) {
		t.Fatalf("IsDeadPlace = false for %v", err)
	}
	dead := rgml.DeadPlaces(err)
	if len(dead) != 1 || dead[0].ID != 1 {
		t.Fatalf("DeadPlaces = %v", dead)
	}
}

// TestFacadeFinishMode exercises the finish-architecture re-exports: mode
// parsing, the runtime options, and a sharded run reaching the same result.
func TestFacadeFinishMode(t *testing.T) {
	m, err := rgml.ParseFinishMode("sharded")
	if err != nil || m != rgml.FinishSharded {
		t.Fatalf("ParseFinishMode = %v, %v", m, err)
	}
	if _, err := rgml.ParseFinishMode("bogus"); err == nil {
		t.Fatal("ParseFinishMode accepted bogus mode")
	}
	rt, err := rgml.NewRuntimeWith(
		rgml.WithPlaces(3),
		rgml.WithResilient(true),
		rgml.WithFinishMode(rgml.FinishSharded),
		rgml.WithLedgerQueue(rgml.DefaultLedgerQueue/2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	err = rgml.ForEachPlace(rt, rgml.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(2)},
		func(ctx *rgml.Ctx, idx int) {})
	if !rgml.IsDeadPlace(err) {
		t.Fatalf("IsDeadPlace = false for %v", err)
	}
}

package apgas

import (
	"fmt"
	"strings"
)

// Placement selects how the resilient snapshot store places redundancy
// for each entry. It lives in apgas (rather than internal/snapshot)
// because it is runtime-level configuration: distributed objects create
// snapshots against the runtime, and the policy travels with it so every
// snapshot of a run uses the same placement without threading an option
// through each object constructor.
type Placement int

const (
	// PlacementReplicate stores Replicas full copies of each entry at
	// consecutive places of the snapshot group starting at the owner.
	// Replicas=2 is the paper's double in-memory storage (owner plus next
	// place); higher values tolerate Replicas-1 failures between
	// checkpoints at Replicas× storage.
	PlacementReplicate Placement = iota
	// PlacementErasure Reed-Solomon-encodes each entry into DataShards
	// data shards plus ParityShards parity shards at consecutive places
	// of the snapshot group, tolerating ParityShards failures at
	// (DataShards+ParityShards)/DataShards× storage (the ReStore-style
	// cost model).
	PlacementErasure
)

// String renders the placement's flag form.
func (p Placement) String() string {
	switch p {
	case PlacementReplicate:
		return "replicate"
	case PlacementErasure:
		return "erasure"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParsePlacement parses the -placement flag form.
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "replicate", "replica", "copies":
		return PlacementReplicate, nil
	case "erasure", "rs", "reed-solomon":
		return PlacementErasure, nil
	}
	return 0, fmt.Errorf("apgas: unknown placement %q (want replicate or erasure): %w", s, ErrBadOption)
}

// StorePolicy is the snapshot store's redundancy configuration. The zero
// value means "unset": the store applies its paper-faithful default
// (replicate, k=2). A policy wider than a snapshot's place group is
// clamped by the store with a trace event, never a panic, so one policy
// serves groups of every size.
type StorePolicy struct {
	// Placement selects replication vs erasure coding.
	Placement Placement
	// Replicas is the total number of full copies (owner included) under
	// PlacementReplicate. 0 means the default (2); 1 disables redundancy
	// (equivalent to the DisableBackup ablation).
	Replicas int
	// DataShards and ParityShards set the erasure geometry under
	// PlacementErasure. Zero values mean the defaults (4 and 1).
	DataShards, ParityShards int
}

// ReplicateStore returns a k-copy replication policy.
func ReplicateStore(k int) StorePolicy {
	return StorePolicy{Placement: PlacementReplicate, Replicas: k}
}

// ErasureStore returns a d-data, p-parity erasure policy.
func ErasureStore(d, p int) StorePolicy {
	return StorePolicy{Placement: PlacementErasure, DataShards: d, ParityShards: p}
}

// IsZero reports whether the policy is unset (every field zero), which
// the store reads as "use the default".
func (sp StorePolicy) IsZero() bool { return sp == StorePolicy{} }

// Normalized fills in the documented defaults.
func (sp StorePolicy) Normalized() StorePolicy {
	if sp.Placement == PlacementReplicate && sp.Replicas == 0 {
		sp.Replicas = 2
	}
	if sp.Placement == PlacementErasure {
		if sp.DataShards == 0 {
			sp.DataShards = 4
		}
		if sp.ParityShards == 0 {
			sp.ParityShards = 1
		}
	}
	return sp
}

// Validate reports structural problems: negative counts, erasure sets
// wider than the GF(2^8) code supports, unknown placements.
func (sp StorePolicy) Validate() error {
	switch sp.Placement {
	case PlacementReplicate:
		if sp.Replicas < 0 {
			return fmt.Errorf("apgas: store policy: replicas must be >= 0, got %d: %w", sp.Replicas, ErrBadOption)
		}
	case PlacementErasure:
		if sp.DataShards < 0 || sp.ParityShards < 0 {
			return fmt.Errorf("apgas: store policy: negative shard counts d=%d p=%d: %w", sp.DataShards, sp.ParityShards, ErrBadOption)
		}
		n := sp.Normalized()
		if n.DataShards+n.ParityShards > 255 {
			return fmt.Errorf("apgas: store policy: d+p=%d exceeds 255 (GF(2^8) limit): %w", n.DataShards+n.ParityShards, ErrBadOption)
		}
	default:
		return fmt.Errorf("apgas: store policy: unknown placement %d: %w", int(sp.Placement), ErrBadOption)
	}
	return nil
}

// Width is the number of group places one entry occupies (copies, or
// data+parity shards), after defaults.
func (sp StorePolicy) Width() int {
	n := sp.Normalized()
	if n.Placement == PlacementErasure {
		return n.DataShards + n.ParityShards
	}
	return n.Replicas
}

// Tolerance is the number of place failures an entry survives between
// checkpoints under the policy, after defaults.
func (sp StorePolicy) Tolerance() int {
	n := sp.Normalized()
	if n.Placement == PlacementErasure {
		return n.ParityShards
	}
	return n.Replicas - 1
}

// String renders the policy compactly ("replicate(k=2)", "erasure(d=4,p=1)").
func (sp StorePolicy) String() string {
	n := sp.Normalized()
	if n.Placement == PlacementErasure {
		return fmt.Sprintf("erasure(d=%d,p=%d)", n.DataShards, n.ParityShards)
	}
	return fmt.Sprintf("replicate(k=%d)", n.Replicas)
}

// StorePolicy returns the snapshot-store redundancy policy the runtime
// was configured with (the zero value when unset; the snapshot layer
// applies its default then).
func (rt *Runtime) StorePolicy() StorePolicy { return rt.cfg.Store }

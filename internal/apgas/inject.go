package apgas

import "sync/atomic"

// Fault-point names instrumented by the runtime and the layers above it.
// They are plain strings (not a closed enum) so higher layers can add
// points without touching the substrate; internal/chaos mirrors them as
// typed chaos.Point constants.
const (
	// FaultPointSpawn fires on every task spawn (AsyncAt), before the
	// task starts. The subject is the place the task targets.
	FaultPointSpawn = "spawn"
	// FaultPointReplica fires on every snapshot backup (replica) put. The
	// subject is the backup place. A non-nil injector return value is
	// treated by the snapshot layer as a transient write failure and
	// retried with bounded backoff.
	FaultPointReplica = "replica"
)

// FaultInjector receives fault-point notifications from the runtime and
// the layers built on it. An injector may act on a notification out of
// band (typically by calling Runtime.Kill, the fail-stop model) and/or
// return a non-nil error to inject a *transient* fault into the operation
// at that point. Which return values are honoured is up to the
// instrumented site: the task spawn path ignores them (only kills matter
// there), while the snapshot replica-write path retries the put.
//
// Implementations must be safe for concurrent use: spawn and replica
// points fire from many tasks at once.
type FaultInjector interface {
	Fault(point string, subject Place) error
}

// injectorHolder boxes the interface so it can live in an atomic.Pointer
// (interfaces are not directly atomically storable).
type injectorHolder struct{ inj FaultInjector }

// SetInjector installs (or, with nil, removes) the runtime's fault
// injector. The injector is consulted on every instrumented fault point;
// with none installed each point costs one atomic load. internal/chaos
// installs its engine here at construction.
func (rt *Runtime) SetInjector(inj FaultInjector) {
	if inj == nil {
		rt.injector.Store(nil)
		return
	}
	rt.injector.Store(&injectorHolder{inj: inj})
}

// InjectFault consults the installed fault injector at the named point,
// returning the transient fault it injected, if any. Instrumented sites
// in the runtime and in the layers above (snapshot replica writes) call
// this; it is exported because those layers live in other packages.
func (rt *Runtime) InjectFault(point string, subject Place) error {
	h := rt.injector.Load()
	if h == nil {
		return nil
	}
	return h.inj.Fault(point, subject)
}

// faultInjectorRef is the atomic slot Runtime carries (see runtime.go).
type faultInjectorRef = atomic.Pointer[injectorHolder]

package apgas

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func newTestRuntime(t *testing.T, places int, resilient bool) *Runtime {
	t.Helper()
	rt, err := New(WithPlaces(places), WithResilient(resilient))
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := New(WithPlaces(0)); err == nil {
		t.Fatal("expected error for 0 places")
	}
	if _, err := New(WithPlaces(-3)); err == nil {
		t.Fatal("expected error for negative places")
	}
}

func TestWorldAndPlaces(t *testing.T) {
	rt := newTestRuntime(t, 4, false)
	w := rt.World()
	if w.Size() != 4 {
		t.Fatalf("world size = %d, want 4", w.Size())
	}
	for i, p := range w {
		if p.ID != i {
			t.Errorf("world[%d].ID = %d", i, p.ID)
		}
	}
	if rt.NumPlaces() != 4 {
		t.Errorf("NumPlaces = %d", rt.NumPlaces())
	}
	if got := rt.Place(2); got.ID != 2 {
		t.Errorf("Place(2) = %v", got)
	}
}

func TestFinishRunsAllTasks(t *testing.T) {
	for _, resilient := range []bool{false, true} {
		t.Run(fmt.Sprintf("resilient=%v", resilient), func(t *testing.T) {
			rt := newTestRuntime(t, 6, resilient)
			var n atomic.Int64
			err := rt.Finish(func(ctx *Ctx) {
				for _, p := range rt.World() {
					p := p
					ctx.AsyncAt(p, func(c *Ctx) {
						if c.Here.ID != p.ID {
							t.Errorf("task at %v, want %v", c.Here, p)
						}
						n.Add(1)
					})
				}
			})
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if n.Load() != 6 {
				t.Fatalf("ran %d tasks, want 6", n.Load())
			}
		})
	}
}

func TestFinishNested(t *testing.T) {
	for _, resilient := range []bool{false, true} {
		t.Run(fmt.Sprintf("resilient=%v", resilient), func(t *testing.T) {
			rt := newTestRuntime(t, 4, resilient)
			var n atomic.Int64
			err := rt.Finish(func(ctx *Ctx) {
				ctx.AsyncAt(rt.Place(1), func(c *Ctx) {
					// Nested asyncs register with the same enclosing finish.
					c.AsyncAt(rt.Place(2), func(c2 *Ctx) {
						c2.AsyncAt(rt.Place(3), func(*Ctx) { n.Add(1) })
						n.Add(1)
					})
					n.Add(1)
				})
			})
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if n.Load() != 3 {
				t.Fatalf("ran %d tasks, want 3", n.Load())
			}
		})
	}
}

func TestNestedFinishScope(t *testing.T) {
	rt := newTestRuntime(t, 3, true)
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *Ctx) {
			var inner atomic.Int64
			// An inner finish must block until its own tasks are done.
			err := c.FinishFrom(func(ic *Ctx) {
				ic.AsyncAt(rt.Place(2), func(*Ctx) {
					time.Sleep(5 * time.Millisecond)
					inner.Add(1)
				})
			})
			if err != nil {
				Throw(err)
			}
			if inner.Load() != 1 {
				Throw(errors.New("inner finish returned before its task"))
			}
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestThrowCollectsErrors(t *testing.T) {
	for _, resilient := range []bool{false, true} {
		t.Run(fmt.Sprintf("resilient=%v", resilient), func(t *testing.T) {
			rt := newTestRuntime(t, 3, resilient)
			boom := errors.New("boom")
			err := rt.Finish(func(ctx *Ctx) {
				ctx.AsyncAt(rt.Place(1), func(*Ctx) { Throw(boom) })
				ctx.AsyncAt(rt.Place(2), func(*Ctx) { Throw(boom) })
			})
			if err == nil {
				t.Fatal("expected error")
			}
			var me *MultiError
			if !errors.As(err, &me) {
				t.Fatalf("want MultiError, got %T: %v", err, err)
			}
			if len(me.Errs) != 2 {
				t.Fatalf("want 2 errors, got %d", len(me.Errs))
			}
		})
	}
}

func TestBodyPanicBecomesError(t *testing.T) {
	rt := newTestRuntime(t, 2, true)
	err := rt.Finish(func(ctx *Ctx) { panic("kaboom") })
	if err == nil || !errors.Is(err, err) {
		t.Fatalf("expected error, got %v", err)
	}
}

func TestAtAndEval(t *testing.T) {
	rt := newTestRuntime(t, 4, false)
	err := rt.Finish(func(ctx *Ctx) {
		got := Eval(ctx, rt.Place(3), func(c *Ctx) int { return c.Here.ID * 10 })
		if got != 30 {
			t.Errorf("Eval = %d, want 30", got)
		}
		ctx.At(rt.Place(2), func(c *Ctx) {
			if c.Here.ID != 2 {
				t.Errorf("At ran at %v", c.Here)
			}
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestKillDeliversDeadPlaceError(t *testing.T) {
	rt := newTestRuntime(t, 4, true)
	victim := rt.Place(2)
	started := make(chan struct{})
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(victim, func(c *Ctx) {
			close(started)
			// Spin until the failure detector aborts us.
			for {
				c.CheckAlive()
				time.Sleep(time.Millisecond)
			}
		})
		<-started
		if err := rt.Kill(victim); err != nil {
			t.Errorf("Kill: %v", err)
		}
	})
	if !IsDeadPlace(err) {
		t.Fatalf("want DeadPlaceError, got %v", err)
	}
	dead := DeadPlaces(err)
	if len(dead) != 1 || dead[0].ID != victim.ID {
		t.Fatalf("DeadPlaces = %v, want [%v]", dead, victim)
	}
	if !rt.IsDead(victim) {
		t.Error("IsDead(victim) = false")
	}
}

func TestAsyncToDeadPlaceFailsFast(t *testing.T) {
	rt := newTestRuntime(t, 3, true)
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(1), func(*Ctx) {
			t.Error("task ran at a dead place")
		})
	})
	if !IsDeadPlace(err) {
		t.Fatalf("want DeadPlaceError, got %v", err)
	}
}

func TestAtDeadPlaceThrows(t *testing.T) {
	rt := newTestRuntime(t, 3, true)
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	err := rt.Finish(func(ctx *Ctx) {
		ctx.At(rt.Place(2), func(*Ctx) { t.Error("ran at dead place") })
	})
	if !IsDeadPlace(err) {
		t.Fatalf("want DeadPlaceError, got %v", err)
	}
}

func TestKillRestrictions(t *testing.T) {
	rt := newTestRuntime(t, 3, true)
	if err := rt.Kill(rt.Place(0)); !errors.Is(err, ErrPlaceZeroImmortal) {
		t.Errorf("Kill(0) = %v, want ErrPlaceZeroImmortal", err)
	}
	nrt := newTestRuntime(t, 3, false)
	if err := nrt.Kill(nrt.Place(1)); !errors.Is(err, ErrNotResilient) {
		t.Errorf("non-resilient Kill = %v, want ErrNotResilient", err)
	}
}

func TestKillIdempotent(t *testing.T) {
	rt := newTestRuntime(t, 3, true)
	p := rt.Place(1)
	if err := rt.Kill(p); err != nil {
		t.Fatal(err)
	}
	if err := rt.Kill(p); err != nil {
		t.Fatalf("second Kill: %v", err)
	}
	if got := rt.Stats().PlacesKilled; got != 1 {
		t.Errorf("PlacesKilled = %d, want 1", got)
	}
}

func TestWorldExcludesDead(t *testing.T) {
	rt := newTestRuntime(t, 5, true)
	_ = rt.Kill(rt.Place(3))
	w := rt.World()
	if w.Size() != 4 || w.Contains(Place{ID: 3}) {
		t.Fatalf("World = %v", w)
	}
	live := rt.Live(PlaceGroup{{0}, {3}, {4}})
	if live.Size() != 2 || live.Contains(Place{ID: 3}) {
		t.Fatalf("Live = %v", live)
	}
}

func TestPlaceLocalHandle(t *testing.T) {
	rt := newTestRuntime(t, 4, true)
	g := rt.World()
	h, err := NewPlaceLocalHandle(rt, g, func(ctx *Ctx, idx int) []int {
		return []int{ctx.Here.ID, idx}
	})
	if err != nil {
		t.Fatalf("NewPlaceLocalHandle: %v", err)
	}
	err = ForEachPlace(rt, g, func(ctx *Ctx, idx int) {
		v := h.Local(ctx)
		if v[0] != ctx.Here.ID || v[1] != idx {
			t.Errorf("Local at %v = %v", ctx.Here, v)
		}
	})
	if err != nil {
		t.Fatalf("ForEachPlace: %v", err)
	}
	// Access after kill throws DeadPlaceError.
	_ = rt.Kill(rt.Place(2))
	err = rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(2), func(c *Ctx) { _ = h.Local(c) })
	})
	if !IsDeadPlace(err) {
		t.Fatalf("want DeadPlaceError, got %v", err)
	}
	h.Destroy(g)
	err = rt.Finish(func(ctx *Ctx) {
		if _, ok := h.TryLocal(ctx); ok {
			t.Error("handle still present after Destroy")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlaceLocalHandleSetLocal(t *testing.T) {
	rt := newTestRuntime(t, 2, false)
	g := rt.World()
	h, err := NewPlaceLocalHandle(rt, g, func(ctx *Ctx, idx int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	err = ForEachPlace(rt, g, func(ctx *Ctx, idx int) { h.SetLocal(ctx, idx+100) })
	if err != nil {
		t.Fatal(err)
	}
	err = ForEachPlace(rt, g, func(ctx *Ctx, idx int) {
		if got := h.Local(ctx); got != idx+100 {
			t.Errorf("Local = %d, want %d", got, idx+100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGlobalRef(t *testing.T) {
	rt := newTestRuntime(t, 3, false)
	err := rt.Finish(func(ctx *Ctx) {
		var gr GlobalRef[string]
		ctx.At(rt.Place(1), func(c *Ctx) {
			gr = NewGlobalRef(c, "hello")
		})
		if gr.Home().ID != 1 {
			t.Errorf("Home = %v", gr.Home())
		}
		got := Eval(ctx, gr.Home(), func(c *Ctx) string { return gr.Get(c) })
		if got != "hello" {
			t.Errorf("Get = %q", got)
		}
		ctx.At(gr.Home(), func(c *Ctx) { gr.Set(c, "bye") })
		got = Eval(ctx, gr.Home(), func(c *Ctx) string { return gr.Get(c) })
		if got != "bye" {
			t.Errorf("Get after Set = %q", got)
		}
		gr.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGlobalRefWrongPlacePanics(t *testing.T) {
	rt := newTestRuntime(t, 2, false)
	err := rt.Finish(func(ctx *Ctx) {
		gr := NewGlobalRef(ctx, 42) // homed at place 0
		ctx.At(rt.Place(1), func(c *Ctx) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic dereferencing at wrong place")
				}
			}()
			_ = gr.Get(c)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddPlacesElastic(t *testing.T) {
	rt := newTestRuntime(t, 2, true)
	added, err := rt.AddPlaces(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 3 || added[0].ID != 2 || added[2].ID != 4 {
		t.Fatalf("added = %v", added)
	}
	if rt.World().Size() != 5 {
		t.Fatalf("world = %v", rt.World())
	}
	// New places are fully usable.
	err = ForEachPlace(rt, added, func(ctx *Ctx, idx int) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddPlaces(-1); err == nil {
		t.Error("expected error for negative AddPlaces")
	}
}

func TestStatsCounting(t *testing.T) {
	rt := newTestRuntime(t, 4, true)
	before := rt.Stats()
	err := ForEachPlace(rt, rt.World(), func(ctx *Ctx, idx int) {
		ctx.Transfer(rt.Place(0), 1000)
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rt.Stats().Sub(before)
	if d.TasksSpawned != 4 {
		t.Errorf("TasksSpawned = %d, want 4", d.TasksSpawned)
	}
	// 4 forks + 4 joins + 1 wait = 9 ledger events.
	if d.LedgerEvents != 9 {
		t.Errorf("LedgerEvents = %d, want 9", d.LedgerEvents)
	}
	// 3 transfers cross places (place 0's transfer to itself is free).
	if d.Bytes != 3000 {
		t.Errorf("Bytes = %d, want 3000", d.Bytes)
	}
}

func TestLedgerCostHookRuns(t *testing.T) {
	var calls atomic.Int64
	rt, err := New(
		WithPlaces(2),
		WithResilient(true),
		WithLedgerCost(func(live int) {
			if live < 0 {
				t.Errorf("negative live count %d", live)
			}
			calls.Add(1)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := ForEachPlace(rt, rt.World(), func(*Ctx, int) {}); err != nil {
		t.Fatal(err)
	}
	// 2 forks + 2 joins + 1 wait.
	if calls.Load() != 5 {
		t.Errorf("LedgerCost calls = %d, want 5", calls.Load())
	}
}

func TestNetModelDelay(t *testing.T) {
	n := NetModel{Latency: time.Millisecond, BytePeriod: time.Microsecond}
	if got := n.delay(100); got != time.Millisecond+100*time.Microsecond {
		t.Errorf("delay = %v", got)
	}
	var zero NetModel
	if zero.delay(1<<20) != 0 {
		t.Error("zero model should be free")
	}
}

func TestNetLatencyIsCharged(t *testing.T) {
	rt, err := New(
		WithPlaces(2),
		WithNet(NetModel{Latency: 20 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	start := time.Now()
	err = rt.Finish(func(ctx *Ctx) {
		ctx.At(rt.Place(1), func(*Ctx) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	// At = request hop + return hop = >= 40ms.
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Errorf("elapsed %v, want >= 40ms", el)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	rt, err := New(WithPlaces(2), WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	rt.Shutdown()
	if _, err := rt.AddPlaces(1); !errors.Is(err, ErrShutdown) {
		t.Errorf("AddPlaces after shutdown = %v, want ErrShutdown", err)
	}
}

func TestMultipleFailuresInOneFinish(t *testing.T) {
	rt := newTestRuntime(t, 5, true)
	started := make(chan struct{}, 2)
	err := rt.Finish(func(ctx *Ctx) {
		for _, id := range []int{2, 3} {
			p := rt.Place(id)
			ctx.AsyncAt(p, func(c *Ctx) {
				started <- struct{}{}
				for {
					c.CheckAlive()
					time.Sleep(time.Millisecond)
				}
			})
		}
		<-started
		<-started
		_ = rt.Kill(rt.Place(2))
		_ = rt.Kill(rt.Place(3))
	})
	dead := DeadPlaces(err)
	if len(dead) != 2 || dead[0].ID != 2 || dead[1].ID != 3 {
		t.Fatalf("DeadPlaces = %v, want [2 3]", dead)
	}
}

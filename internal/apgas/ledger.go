package apgas

// The resilient-finish ledger.
//
// Resilient X10 (Cunningham et al., PPoPP 2014) implements failure-aware
// finish by recording every task fork and join at place zero. The paper
// reproduced here measures that design's cost directly: "The increasing
// cost of resilient X10 with number of places is due to communication with
// place 0 for activity bookkeeping, which has previously been identified as
// a scalability bottleneck for place-zero-based resilient finish."
//
// This ledger reproduces the design faithfully at emulation scale: a single
// goroutine (logically at place zero) processes FORK / JOIN / WAIT /
// PLACE-DIED events one at a time. Because the processing is serialized,
// bookkeeping cost grows with the total number of spawned tasks — which
// under weak scaling grows with the number of places — and sits on the
// application's critical path at every finish barrier, just as in the
// measured system.

type ledgerEventKind uint8

const (
	evFork ledgerEventKind = iota
	evJoin
	evWait
	evPlaceDied
	evStop
)

type ledgerEvent struct {
	kind ledgerEventKind
	task *task
	fin  *Finish
	err  error
	from Place
	dead Place
}

type ledger struct {
	rt *Runtime
	ch chan ledgerEvent
	// finDone is closed when the ledger goroutine exits.
	done chan struct{}

	// All state below is owned by the ledger goroutine; no locking needed.

	// liveByFinish tracks, per finish, the tasks forked but not yet joined.
	liveByFinish map[uint64]map[uint64]*task
	// liveByPlace indexes the same live tasks by the place they run at, so
	// a place death can terminate exactly its orphans.
	liveByPlace map[int]map[uint64]*task
	// waiting holds the finishes whose main activity has reached wait().
	waiting map[uint64]*Finish
	// deadPlaces remembers failures so late FORKs to a dead place fail fast.
	deadPlaces map[int]bool
	// live is the total number of live tasks, passed to the LedgerCost
	// congestion model.
	live int
}

func newLedger(rt *Runtime) *ledger {
	l := &ledger{
		rt:           rt,
		ch:           make(chan ledgerEvent, 4096),
		done:         make(chan struct{}),
		liveByFinish: make(map[uint64]map[uint64]*task),
		liveByPlace:  make(map[int]map[uint64]*task),
		waiting:      make(map[uint64]*Finish),
		deadPlaces:   make(map[int]bool),
	}
	go l.run()
	return l
}

// send delivers a bookkeeping event to the ledger, charging the network
// model for the hop to place zero.
func (l *ledger) send(ev ledgerEvent) {
	l.rt.hop(ev.from, Place{ID: 0}, 0)
	l.ch <- ev
}

// placeDied notifies the ledger that p has failed (failure detection).
func (l *ledger) placeDied(p Place) {
	l.ch <- ledgerEvent{kind: evPlaceDied, dead: p, from: p}
}

func (l *ledger) stop() {
	l.ch <- ledgerEvent{kind: evStop}
	<-l.done
}

func (l *ledger) run() {
	defer close(l.done)
	for ev := range l.ch {
		if ev.kind == evStop {
			return
		}
		l.rt.stats.LedgerEvents.Add(1)
		l.rt.instr.ledgerEvents.Inc()
		if cost := l.rt.cfg.LedgerCost; cost != nil {
			cost(l.live)
		}
		switch ev.kind {
		case evFork:
			l.fork(ev.task)
		case evJoin:
			l.join(ev.task, ev.err)
		case evWait:
			l.waitReq(ev.fin)
		case evPlaceDied:
			l.died(ev.dead)
		}
	}
}

func (l *ledger) fork(t *task) {
	if l.deadPlaces[t.place.ID] || l.rt.placeState(t.place).isDead() {
		// The task will never run usefully; report it dead immediately.
		// Its eventual JOIN (the goroutine still executes and aborts on
		// first store access) is ignored because the task was never live.
		t.fin.record(&DeadPlaceError{Place: t.place})
		return
	}
	byFin := l.liveByFinish[t.fin.id]
	if byFin == nil {
		byFin = make(map[uint64]*task)
		l.liveByFinish[t.fin.id] = byFin
	}
	byFin[t.id] = t
	byPlace := l.liveByPlace[t.place.ID]
	if byPlace == nil {
		byPlace = make(map[uint64]*task)
		l.liveByPlace[t.place.ID] = byPlace
	}
	byPlace[t.id] = t
	l.live++
}

func (l *ledger) join(t *task, err error) {
	byFin := l.liveByFinish[t.fin.id]
	if byFin == nil || byFin[t.id] == nil {
		// Already terminated by a place death (or the fork was refused);
		// the forced termination's DeadPlaceError stands.
		return
	}
	t.fin.record(err)
	l.remove(t)
	l.maybeRelease(t.fin)
}

// died terminates every live task at p with a DeadPlaceError and releases
// any finish that was only waiting on p's orphans.
func (l *ledger) died(p Place) {
	l.deadPlaces[p.ID] = true
	orphans := l.liveByPlace[p.ID]
	delete(l.liveByPlace, p.ID)
	for _, t := range orphans {
		l.live--
		t.fin.record(&DeadPlaceError{Place: p})
		if byFin := l.liveByFinish[t.fin.id]; byFin != nil {
			delete(byFin, t.id)
			if len(byFin) == 0 {
				delete(l.liveByFinish, t.fin.id)
			}
		}
		l.maybeRelease(t.fin)
	}
}

func (l *ledger) waitReq(f *Finish) {
	l.waiting[f.id] = f
	l.maybeRelease(f)
}

func (l *ledger) remove(t *task) {
	l.live--
	if byFin := l.liveByFinish[t.fin.id]; byFin != nil {
		delete(byFin, t.id)
		if len(byFin) == 0 {
			delete(l.liveByFinish, t.fin.id)
		}
	}
	if byPlace := l.liveByPlace[t.place.ID]; byPlace != nil {
		delete(byPlace, t.id)
		if len(byPlace) == 0 {
			delete(l.liveByPlace, t.place.ID)
		}
	}
}

// maybeRelease releases a waiting finish whose live-task set has drained.
func (l *ledger) maybeRelease(f *Finish) {
	if _, ok := l.waiting[f.id]; !ok {
		return
	}
	if len(l.liveByFinish[f.id]) > 0 {
		return
	}
	delete(l.waiting, f.id)
	close(f.release)
}

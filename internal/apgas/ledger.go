package apgas

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas/transport"
)

// The resilient-finish ledger.
//
// Resilient X10 (Cunningham et al., PPoPP 2014) implements failure-aware
// finish by recording every task fork and join at place zero. The paper
// reproduced here measures that design's cost directly: "The increasing
// cost of resilient X10 with number of places is due to communication with
// place 0 for activity bookkeeping, which has previously been identified as
// a scalability bottleneck for place-zero-based resilient finish."
//
// Two bookkeeping architectures hide behind Config.FinishMode:
//
//   - FinishCentral reproduces the measured design faithfully at emulation
//     scale: a single goroutine (logically at place zero) processes FORK /
//     JOIN / WAIT / PLACE-DIED events one at a time. Because the processing
//     is serialized, bookkeeping cost grows with the total number of
//     spawned tasks — which under weak scaling grows with the number of
//     places — and sits on the application's critical path at every finish
//     barrier, just as in the measured system.
//
//   - FinishSharded (shard.go) is the optimization the paper's discussion
//     points at: per-finish home-based bookkeeping (one shard goroutine
//     per place, state partitioned by finish id), an atomic-counter fast
//     path for tasks that never leave the finish's home place, and batched
//     event delivery. Concurrent finishes no longer serialize against each
//     other and bookkeeping hops are charged to each finish's home rather
//     than always to place zero.

// FinishMode selects the resilient-finish bookkeeping architecture.
type FinishMode int

const (
	// FinishCentral is the paper-faithful default: every fork and join of
	// every finish is an event processed serially by one ledger goroutine
	// at place zero (the measured scalability bottleneck of Figures 2-4).
	FinishCentral FinishMode = iota
	// FinishSharded bookkeeps each finish at its home place's ledger
	// shard, tracks home-place tasks with an atomic fast-path counter,
	// and coalesces fork bursts into batched shard messages.
	FinishSharded
)

// String implements fmt.Stringer.
func (m FinishMode) String() string {
	switch m {
	case FinishCentral:
		return "central"
	case FinishSharded:
		return "sharded"
	}
	return fmt.Sprintf("FinishMode(%d)", int(m))
}

// ParseFinishMode maps the flag spellings "central" and "sharded" to their
// FinishMode.
func ParseFinishMode(s string) (FinishMode, error) {
	switch s {
	case "central":
		return FinishCentral, nil
	case "sharded":
		return FinishSharded, nil
	}
	return 0, fmt.Errorf("apgas: unknown finish mode %q (want central or sharded)", s)
}

// DefaultLedgerQueue is the event-channel capacity used when
// Config.LedgerQueue is zero. A saturated channel blocks forks; the
// apgas.ledger.queue_full counter records every send that found the
// channel full.
const DefaultLedgerQueue = 4096

type ledgerEventKind uint8

const (
	evFork ledgerEventKind = iota
	evForkBatch
	evJoin
	evWait
	evPlaceDied
	evStop
)

// ledgerEvent is one bookkeeping message, shared by the central ledger and
// the per-place shards (which additionally use the batch kind and the wait
// reply channel).
type ledgerEvent struct {
	kind  ledgerEventKind
	task  *task
	tasks []*task // evForkBatch: a burst of forks from one activity
	fin   *Finish
	err   error
	from  Place
	dead  Place
	// reply is the per-round release channel of a sharded evWait; the
	// central ledger uses the finish's own release channel instead.
	reply chan struct{}
}

type ledger struct {
	rt *Runtime
	ch chan ledgerEvent
	// finDone is closed when the ledger goroutine exits.
	done chan struct{}

	// All state below is owned by the ledger goroutine; no locking needed.

	// liveByFinish tracks, per finish, the tasks forked but not yet joined.
	liveByFinish map[uint64]map[uint64]*task
	// liveByPlace indexes the same live tasks by the place they run at, so
	// a place death can terminate exactly its orphans.
	liveByPlace map[int]map[uint64]*task
	// waiting holds the finishes whose main activity has reached wait().
	waiting map[uint64]*Finish
	// deadPlaces remembers failures so late FORKs to a dead place fail fast.
	deadPlaces map[int]bool
	// live is the total number of live tasks, passed to the LedgerCost
	// congestion model.
	live int
}

func newLedger(rt *Runtime) *ledger {
	l := &ledger{
		rt:           rt,
		ch:           make(chan ledgerEvent, rt.cfg.ledgerQueue()),
		done:         make(chan struct{}),
		liveByFinish: make(map[uint64]map[uint64]*task),
		liveByPlace:  make(map[int]map[uint64]*task),
		waiting:      make(map[uint64]*Finish),
		deadPlaces:   make(map[int]bool),
	}
	go l.run()
	return l
}

// send delivers a bookkeeping event to the ledger, charging the network
// model for the hop to place zero.
func (l *ledger) send(ev ledgerEvent) {
	l.rt.hop(ev.from, Place{ID: 0}, transport.ClassControl, 0, nil)
	l.post(ev)
}

// post enqueues without charging the network (failure detection and
// control events). A full channel is counted before blocking, so saturated
// bookkeeping shows up in apgas.ledger.queue_full instead of silently
// stalling forks.
func (l *ledger) post(ev ledgerEvent) {
	select {
	case l.ch <- ev:
	default:
		l.rt.instr.ledgerQueueFull.Inc()
		l.ch <- ev
	}
}

// placeDied notifies the ledger that p has failed (failure detection).
func (l *ledger) placeDied(p Place) {
	l.post(ledgerEvent{kind: evPlaceDied, dead: p, from: p})
}

func (l *ledger) stop() {
	l.post(ledgerEvent{kind: evStop})
	<-l.done
}

func (l *ledger) run() {
	defer close(l.done)
	for ev := range l.ch {
		if ev.kind == evStop {
			return
		}
		l.rt.stats.LedgerEvents.Add(1)
		l.rt.instr.ledgerEvents.Inc()
		if cost := l.rt.cfg.LedgerCost; cost != nil {
			cost(l.live)
		}
		switch ev.kind {
		case evFork:
			l.fork(ev.task)
		case evJoin:
			l.join(ev.task, ev.err)
		case evWait:
			l.waitReq(ev.fin)
		case evPlaceDied:
			l.died(ev.dead)
		}
	}
}

func (l *ledger) fork(t *task) {
	if l.deadPlaces[t.place.ID] || l.rt.placeState(t.place).isDead() {
		// The task will never run usefully; report it dead immediately.
		// Its eventual JOIN (the goroutine still executes and aborts on
		// first store access) is ignored because the task was never live.
		l.rt.noteRefusedFork(t.fin, t.place)
		t.fin.record(&DeadPlaceError{Place: t.place})
		return
	}
	byFin := l.liveByFinish[t.fin.id]
	if byFin == nil {
		byFin = make(map[uint64]*task)
		l.liveByFinish[t.fin.id] = byFin
	}
	byFin[t.id] = t
	byPlace := l.liveByPlace[t.place.ID]
	if byPlace == nil {
		byPlace = make(map[uint64]*task)
		l.liveByPlace[t.place.ID] = byPlace
	}
	byPlace[t.id] = t
	l.live++
}

func (l *ledger) join(t *task, err error) {
	byFin := l.liveByFinish[t.fin.id]
	if byFin == nil || byFin[t.id] == nil {
		// Already terminated by a place death (or the fork was refused);
		// the forced termination's DeadPlaceError stands.
		return
	}
	t.fin.record(err)
	l.remove(t)
	l.maybeRelease(t.fin)
}

// died terminates every live task at p with a DeadPlaceError and releases
// any finish that was only waiting on p's orphans.
func (l *ledger) died(p Place) {
	l.deadPlaces[p.ID] = true
	orphans := l.liveByPlace[p.ID]
	delete(l.liveByPlace, p.ID)
	for _, t := range orphans {
		l.live--
		t.fin.record(&DeadPlaceError{Place: p})
		if byFin := l.liveByFinish[t.fin.id]; byFin != nil {
			delete(byFin, t.id)
			if len(byFin) == 0 {
				delete(l.liveByFinish, t.fin.id)
			}
		}
		l.maybeRelease(t.fin)
	}
}

func (l *ledger) waitReq(f *Finish) {
	l.waiting[f.id] = f
	l.maybeRelease(f)
}

func (l *ledger) remove(t *task) {
	l.live--
	if byFin := l.liveByFinish[t.fin.id]; byFin != nil {
		delete(byFin, t.id)
		if len(byFin) == 0 {
			delete(l.liveByFinish, t.fin.id)
		}
	}
	if byPlace := l.liveByPlace[t.place.ID]; byPlace != nil {
		delete(byPlace, t.id)
		if len(byPlace) == 0 {
			delete(l.liveByPlace, t.place.ID)
		}
	}
}

// maybeRelease releases a waiting finish whose live-task set has drained.
func (l *ledger) maybeRelease(f *Finish) {
	if _, ok := l.waiting[f.id]; !ok {
		return
	}
	if len(l.liveByFinish[f.id]) > 0 {
		return
	}
	delete(l.waiting, f.id)
	close(f.release)
}

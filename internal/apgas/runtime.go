package apgas

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/apgas/transport/local"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/par"
)

// Config parameterizes a Runtime.
type Config struct {
	// Places is the number of places to create, at least 1. Place IDs are
	// 0..Places-1.
	Places int
	// Resilient selects resilient finish semantics: task forks and joins
	// are recorded by a ledger at place zero, place failures are detected,
	// and affected finishes observe DeadPlaceError. Without it, finishes are
	// plain local barriers and failure injection is rejected (matching
	// non-resilient X10, where a crash takes the whole application down).
	Resilient bool
	// Net is the simulated interconnect. The zero value is a free network.
	Net NetModel
	// FinishMode selects the resilient-finish bookkeeping architecture:
	// FinishCentral (the default) is the paper-faithful place-zero ledger;
	// FinishSharded bookkeeps each finish at its home place's shard with a
	// local fast path and batched event delivery (see ledger.go and
	// shard.go). Ignored unless Resilient is set.
	FinishMode FinishMode
	// LedgerCost is extra processing work performed by the place-zero
	// ledger for each bookkeeping event, on top of the real map
	// maintenance. It receives the ledger's current live-task count:
	// resilient X10's place-zero finish maintains per-finish, per-place
	// transit state whose upkeep grows with the amount of outstanding
	// activity, which is why the paper identifies place-zero bookkeeping
	// as the scalability bottleneck. Events are processed serially, so
	// this cost is not parallelizable. In FinishSharded mode each shard
	// pays the cost over its own event gulps (batches), which is exactly
	// how the sharded design escapes the bottleneck.
	LedgerCost func(liveTasks int)
	// LedgerQueue is the capacity of each bookkeeping event channel (the
	// central ledger's, or every shard's). Zero means DefaultLedgerQueue;
	// a saturated queue blocks the forking activity and increments the
	// apgas.ledger.queue_full counter.
	LedgerQueue int
	// Obs, when non-nil, receives runtime instrumentation: task spawns,
	// place-crossing messages and bytes, ledger events, observed kills,
	// simulated network time, and finish latencies. The same registry is
	// typically shared with the snapshot layer and the executor so one
	// run exports as a single document. Nil disables instrumentation at
	// the cost of one branch per event.
	Obs *obs.Registry
	// Store is the snapshot store's redundancy policy (replication factor
	// or erasure geometry); the snapshot layer reads it through
	// Runtime.StorePolicy so every snapshot of a run shares one policy.
	// The zero value leaves the store at its paper-faithful default
	// (replicate, k=2).
	Store StorePolicy
	// KernelWorkers, when positive, sets the size of the process-wide
	// intra-place kernel worker pool (internal/par) that the la kernels
	// and per-place block fans run on. Zero leaves the pool at its
	// current setting (default: RGML_WORKERS or runtime.NumCPU()). The
	// deterministic chunking contract makes kernel results bit-identical
	// at every worker count, so the knob only affects throughput.
	KernelWorkers int
	// Transport is the communication backend all place-crossing traffic
	// and liveness information flows through. Nil selects the default
	// in-process backend (transport/local) wired to Net's simulated
	// delay, which is bit-identical to the pre-seam runtime. A non-nil
	// backend (transport/tcp) owns place bodies: its failure detector
	// feeds the same dead-place broadcast path used by injected kills.
	Transport transport.Transport

	// Compress selects the checkpoint compression policy applied by the
	// dist layer when serializing snapshot payloads: none (the zero
	// value, bit-identical to the uncompressed codec), lossless, or
	// error-bounded lossy quantization with Compress.ErrorBound. Objects
	// opt in to lossy individually (AllowLossyCheckpoint); everything
	// else is transparently downgraded to lossless. Set via
	// WithCompression, read via Runtime.Compression.
	Compress codec.Spec

	// err carries the first validation failure recorded by a functional
	// option at apply time (see options.go); NewRuntime surfaces it. The
	// field is unexported so positional Config literals cannot set it.
	err error
}

// Runtime is the emulated APGAS runtime: a fixed-at-startup (but elastically
// growable) set of places, a failure injector, and the finish machinery.
type Runtime struct {
	cfg Config

	mu     sync.RWMutex
	places []*place // indexed by place ID; never shrinks
	down   bool

	ledger *ledger        // non-nil iff cfg.Resilient && FinishCentral
	shards *shardedLedger // non-nil iff cfg.Resilient && FinishSharded

	// tp is the communication backend (never nil after NewRuntime): the
	// in-process emulation by default, or a real multi-process transport.
	tp transport.Transport

	// injector, when set, is consulted at every instrumented fault point
	// (see inject.go); internal/chaos installs its engine here.
	injector faultInjectorRef

	nextHandle atomic.Uint64
	nextTask   atomic.Uint64
	nextFinish atomic.Uint64

	// kern is the registered-kernel dispatch state (see kerneldispatch.go);
	// kern.ex is non-nil iff the transport has a distributed data plane.
	kern kernDispatch

	stats Stats
	instr rtInstr
}

// rtInstr holds the runtime's observability handles, resolved once at
// NewRuntime so hot paths update them with single atomic operations. With
// no registry configured every handle is nil and each update is a no-op
// branch (see internal/obs).
type rtInstr struct {
	tasks           *obs.Counter   // apgas.tasks.spawned
	messages        *obs.Counter   // apgas.net.messages
	bytes           *obs.Counter   // apgas.net.bytes
	netTime         *obs.Counter   // apgas.net.simulated_ns
	ledgerEvents    *obs.Counter   // apgas.ledger.events
	ledgerQueueFull *obs.Counter   // apgas.ledger.queue_full
	ledgerLocal     *obs.Counter   // apgas.ledger.local_fast
	ledgerBatches   *obs.Counter   // apgas.ledger.batches
	refusedForks    *obs.Counter   // apgas.ledger.refused_forks
	kills           *obs.Counter   // apgas.kills.observed
	failures        *obs.Counter   // apgas.places.failed (transport-detected)
	placesAdded     *obs.Counter   // apgas.places.added
	livePlaces      *obs.Gauge     // apgas.places.live
	finishes        *obs.Histogram // apgas.finish.duration
	workerExec      *obs.Counter   // apgas.tasks.worker_executed (kernels run in worker bodies)
	kernelLocal     *obs.Counter   // apgas.tasks.kernel_local (kernels run coordinator-resident)
	kernelFallback  *obs.Counter   // apgas.tasks.kernel_fallback (remote dispatches degraded)

	// Per-class transport accounting: apgas.transport.<class>.messages and
	// apgas.transport.<class>.bytes, indexed by transport.Class. The legacy
	// aggregate counters above keep their exact pre-seam meaning.
	classMsgs  [transport.NumClasses]*obs.Counter
	classBytes [transport.NumClasses]*obs.Counter
}

func newRTInstr(reg *obs.Registry) rtInstr {
	in := rtInstr{
		tasks:           reg.Counter("apgas.tasks.spawned"),
		messages:        reg.Counter("apgas.net.messages"),
		bytes:           reg.Counter("apgas.net.bytes"),
		netTime:         reg.Counter("apgas.net.simulated_ns"),
		ledgerEvents:    reg.Counter("apgas.ledger.events"),
		ledgerQueueFull: reg.Counter("apgas.ledger.queue_full"),
		ledgerLocal:     reg.Counter("apgas.ledger.local_fast"),
		ledgerBatches:   reg.Counter("apgas.ledger.batches"),
		refusedForks:    reg.Counter("apgas.ledger.refused_forks"),
		kills:           reg.Counter("apgas.kills.observed"),
		failures:        reg.Counter("apgas.places.failed"),
		placesAdded:     reg.Counter("apgas.places.added"),
		livePlaces:      reg.Gauge("apgas.places.live"),
		finishes:        reg.Histogram("apgas.finish.duration"),
		workerExec:      reg.Counter("apgas.tasks.worker_executed"),
		kernelLocal:     reg.Counter("apgas.tasks.kernel_local"),
		kernelFallback:  reg.Counter("apgas.tasks.kernel_fallback"),
	}
	for c := 0; c < transport.NumClasses; c++ {
		name := transport.Class(c).String()
		in.classMsgs[c] = reg.Counter("apgas.transport." + name + ".messages")
		in.classBytes[c] = reg.Counter("apgas.transport." + name + ".bytes")
	}
	return in
}

// NewRuntime creates a runtime with cfg.Places live places.
//
// Deprecated: this is a compatibility-only shim for external
// positional-Config callers; nothing inside the repo uses it anymore.
// Use New with functional options (WithPlaces, WithResilient,
// WithTransport, …) — both constructors share the same validation.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.err != nil {
		return nil, cfg.err
	}
	if err := cfg.Store.Validate(); err != nil {
		return nil, err
	}
	if cfg.Places < 1 {
		return nil, fmt.Errorf("apgas: Config.Places must be >= 1, got %d", cfg.Places)
	}
	if cfg.FinishMode != FinishCentral && cfg.FinishMode != FinishSharded {
		return nil, fmt.Errorf("apgas: unknown Config.FinishMode %d", int(cfg.FinishMode))
	}
	if cfg.LedgerQueue < 0 {
		return nil, fmt.Errorf("apgas: Config.LedgerQueue must be >= 0, got %d", cfg.LedgerQueue)
	}
	rt := &Runtime{cfg: cfg, instr: newRTInstr(cfg.Obs)}
	rt.places = make([]*place, cfg.Places)
	for i := range rt.places {
		rt.places[i] = newPlace(i)
	}
	rt.instr.livePlaces.Set(int64(cfg.Places))
	if cfg.Resilient {
		switch cfg.FinishMode {
		case FinishSharded:
			rt.shards = newShardedLedger(rt)
		default:
			rt.ledger = newLedger(rt)
		}
	}
	rt.tp = cfg.Transport
	if rt.tp == nil {
		// Default backend: the in-process emulation, wired to the NetModel
		// so Send charges exactly what the pre-seam chargeNet did.
		net := cfg.Net
		rt.tp = local.New(local.WithDelay(net.delay))
	}
	if err := rt.tp.Start(cfg.Places, transport.Handler{PlaceDead: rt.transportDeath}); err != nil {
		if rt.ledger != nil {
			rt.ledger.stop()
		}
		if rt.shards != nil {
			rt.shards.stop()
		}
		return nil, fmt.Errorf("apgas: transport %q start: %w", rt.tp.Name(), err)
	}
	// Probe the backend's distributed-data-plane capability: Exec(nil) is
	// a pure capability check, answered (nil, nil) by a backend that
	// dispatches kernels into worker bodies and ErrNoDataPlane otherwise.
	var ex transport.Executor
	if cand, ok := rt.tp.(transport.Executor); ok {
		if _, err := cand.Exec(nil); err == nil {
			ex = cand
		}
	}
	rt.kern.init(ex)
	if cfg.KernelWorkers > 0 {
		par.SetWorkers(cfg.KernelWorkers)
	}
	if cfg.Obs != nil {
		par.SetObs(cfg.Obs)
		la.SetObs(cfg.Obs)
	}
	return rt, nil
}

// Obs returns the observability registry the runtime was configured with
// (nil when uninstrumented). The snapshot and executor layers pick it up
// from here so one registry covers a whole run.
func (rt *Runtime) Obs() *obs.Registry { return rt.cfg.Obs }

// Transport returns the runtime's communication backend.
func (rt *Runtime) Transport() transport.Transport { return rt.tp }

// TransportName returns the backend's identifier ("local", "tcp").
func (rt *Runtime) TransportName() string { return rt.tp.Name() }

// hop records one place-crossing message of the given class and payload
// size in the activity counters and moves it through the transport.
// Intra-place moves are free and uncounted, matching the emulation's cost
// model. payload, when non-nil, is the real bytes to carry (checkpoint
// replica traffic); declared-size traffic leaves it nil.
func (rt *Runtime) hop(from, to Place, class transport.Class, bytes int, payload []byte) {
	if from.ID == to.ID {
		return
	}
	rt.stats.countMessage(from, to, bytes)
	rt.instr.messages.Inc()
	rt.instr.classMsgs[class].Inc()
	if bytes > 0 {
		rt.instr.bytes.Add(int64(bytes))
		rt.instr.classBytes[class].Add(int64(bytes))
	}
	rt.charge(from, to, class, bytes, payload)
}

// charge moves a message through the transport, blocking for its transfer
// time and accounting it, without counting a message (used for the return
// leg of an "at", which the stats model treats as part of the same hop).
func (rt *Runtime) charge(from, to Place, class transport.Class, bytes int, payload []byte) {
	if from.ID == to.ID {
		return
	}
	// Send errors are not task-visible faults: a failed send to a dying
	// place is answered by the failure detector feeding transportDeath,
	// after which the dead-place machinery takes over.
	d, _ := rt.tp.Send(from.ID, to.ID, class, bytes, payload)
	if d > 0 {
		rt.instr.netTime.Add(int64(d))
	}
}

// ledgerQueue resolves the configured bookkeeping channel capacity.
func (c *Config) ledgerQueue() int {
	if c.LedgerQueue > 0 {
		return c.LedgerQueue
	}
	return DefaultLedgerQueue
}

// noteRefusedFork accounts a fork refused because its target place was
// already dead: the spawn is answered with DeadPlaceError without ever
// becoming live. The trace-ring event records (finish id, place id).
func (rt *Runtime) noteRefusedFork(f *Finish, p Place) {
	rt.stats.RefusedForks.Add(1)
	rt.instr.refusedForks.Inc()
	rt.cfg.Obs.Trace("apgas.ledger.refused_fork", int64(f.id), int64(p.ID))
}

// Resilient reports whether the runtime uses resilient finish semantics.
func (rt *Runtime) Resilient() bool { return rt.cfg.Resilient }

// FinishMode returns the resilient-finish bookkeeping architecture the
// runtime was configured with (meaningful only when Resilient).
func (rt *Runtime) FinishMode() FinishMode { return rt.cfg.FinishMode }

// Net returns the runtime's network model.
func (rt *Runtime) Net() NetModel { return rt.cfg.Net }

// Compression returns the runtime-wide checkpoint compression policy
// (see Config.Compress). The dist layer resolves it per object at
// snapshot time.
func (rt *Runtime) Compression() codec.Spec { return rt.cfg.Compress }

// Shutdown stops the runtime. Outstanding finishes must have completed.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	if rt.down {
		rt.mu.Unlock()
		return
	}
	rt.down = true
	rt.mu.Unlock()
	if rt.ledger != nil {
		rt.ledger.stop()
	}
	if rt.shards != nil {
		rt.shards.stop()
	}
	if rt.tp != nil {
		rt.tp.Close()
	}
}

// NumPlaces returns the total number of places ever created (live or dead).
func (rt *Runtime) NumPlaces() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.places)
}

// World returns the group of all currently live places, in ID order.
// At startup this is places 0..Places-1.
func (rt *Runtime) World() PlaceGroup {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	g := make(PlaceGroup, 0, len(rt.places))
	for _, pl := range rt.places {
		if !pl.isDead() {
			g = append(g, Place{ID: pl.id})
		}
	}
	return g
}

// Place returns the place with the given ID. It panics on an out-of-range
// ID; dead places are still returned (operations on them throw
// DeadPlaceError).
func (rt *Runtime) Place(id int) Place {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if id < 0 || id >= len(rt.places) {
		panic(fmt.Sprintf("apgas: no such place %d", id))
	}
	return Place{ID: id}
}

// IsDead reports whether place p has failed.
func (rt *Runtime) IsDead(p Place) bool {
	return rt.placeState(p).isDead()
}

// Live filters g down to its surviving members, preserving order.
func (rt *Runtime) Live(g PlaceGroup) PlaceGroup {
	out := make(PlaceGroup, 0, len(g))
	for _, p := range g {
		if !rt.IsDead(p) {
			out = append(out, p)
		}
	}
	return out
}

// placeState returns the internal state for p, panicking on bad IDs
// (a bad ID is a programming error, not a runtime failure).
func (rt *Runtime) placeState(p Place) *place {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if p.ID < 0 || p.ID >= len(rt.places) {
		panic(fmt.Sprintf("apgas: no such place %d", p.ID))
	}
	return rt.places[p.ID]
}

// AddPlaces elastically creates n new places and returns them. This is the
// "Elastic X10" capability (X10 2.5.1) that the paper's future-work
// Replace-Elastic restoration mode builds on.
func (rt *Runtime) AddPlaces(n int) (PlaceGroup, error) {
	if n < 0 {
		return nil, fmt.Errorf("apgas: AddPlaces(%d): negative count", n)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.down {
		return nil, ErrShutdown
	}
	// The backend must be able to conjure bodies for the new places before
	// the runtime advertises them (externally-joined transports cannot).
	if err := rt.tp.Grow(n); err != nil {
		return nil, fmt.Errorf("apgas: AddPlaces(%d): transport %q: %w", n, rt.tp.Name(), err)
	}
	added := make(PlaceGroup, 0, n)
	for i := 0; i < n; i++ {
		id := len(rt.places)
		rt.places = append(rt.places, newPlace(id))
		added = append(added, Place{ID: id})
	}
	rt.stats.PlacesAdded.Add(int64(n))
	rt.instr.placesAdded.Add(int64(n))
	rt.instr.livePlaces.Add(int64(n))
	rt.cfg.Obs.Trace("apgas.places.added", int64(n), int64(len(rt.places)))
	return added, nil
}

// Kill fail-stops place p: its store is dropped and the resilient-finish
// ledger terminates its orphaned tasks, delivering DeadPlaceError to their
// enclosing finishes. Place zero is immortal. Kill is rejected on a
// non-resilient runtime.
func (rt *Runtime) Kill(p Place) error {
	if !rt.cfg.Resilient {
		return ErrNotResilient
	}
	if p.ID == 0 {
		return ErrPlaceZeroImmortal
	}
	pl := rt.placeState(p)
	if !pl.kill() {
		return nil
	}
	rt.stats.PlacesKilled.Add(1)
	rt.instr.kills.Inc()
	rt.instr.livePlaces.Add(-1)
	rt.kern.placeDead(p.ID)
	rt.cfg.Obs.Trace("apgas.place.killed", int64(p.ID), 0)
	// The failure detector notifies the bookkeeping layer, which adopts
	// and terminates the dead place's tasks.
	if rt.shards != nil {
		rt.shards.placeDied(p)
	} else {
		rt.ledger.placeDied(p)
	}
	// Destroy the place's external body last: the runtime has already
	// marked and broadcast the death, so kill-driven recovery is identical
	// across backends regardless of how fast the body actually dies. The
	// backend suppresses the redundant detector report.
	if err := rt.tp.Kill(p.ID); err != nil {
		return fmt.Errorf("apgas: transport %q kill place %d: %w", rt.tp.Name(), p.ID, err)
	}
	return nil
}

// transportDeath is the handler the transport's failure detector reports
// real place deaths through (heartbeat timeout, connection loss). It
// feeds the exact dead-place broadcast path used by injected kills:
// store drop, ledger orphan termination, DeadPlaceError delivery.
// Administrative kills never arrive here — Runtime.Kill marks the place
// dead before destroying its body and the backend suppresses the report —
// so anything that does arrive is an unexpected (real) failure.
func (rt *Runtime) transportDeath(id int, cause transport.DeathCause) {
	rt.mu.RLock()
	down := rt.down
	var pl *place
	if id >= 0 && id < len(rt.places) {
		pl = rt.places[id]
	}
	rt.mu.RUnlock()
	if down || pl == nil || id == 0 {
		// Place zero is the coordinator itself; its death is process death.
		return
	}
	if !pl.kill() {
		return
	}
	rt.stats.PlacesFailed.Add(1)
	rt.instr.failures.Inc()
	rt.instr.livePlaces.Add(-1)
	rt.kern.placeDead(id)
	rt.cfg.Obs.Trace("apgas.place.failed", int64(id), int64(cause))
	if rt.shards != nil {
		rt.shards.placeDied(Place{ID: id})
	} else if rt.ledger != nil {
		rt.ledger.placeDied(Place{ID: id})
	}
}

// Ctx is the execution context of a task: where it runs and which finish
// governs it. Task bodies receive a Ctx and must do all place-local data
// access through it (via PlaceLocalHandle / GlobalRef), which is what
// enforces place isolation in the emulation.
type Ctx struct {
	rt *Runtime
	// Here is the place the task is executing at.
	Here Place
	// fin is the dynamically enclosing finish, used by nested AsyncAt.
	fin *Finish
	// pending buffers this activity's not-yet-flushed remote forks in
	// FinishSharded mode (see Ctx.flushForks); always nil otherwise.
	pending []*task
}

// Runtime returns the runtime the task is executing on.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Finish returns the dynamically enclosing finish of the task, which nested
// asyncs register with (X10 semantics: async registers with the innermost
// enclosing finish).
func (c *Ctx) Finish() *Finish { return c.fin }

// CheckAlive throws DeadPlaceError if the task's own place has died. Long
// compute loops call this at convenient points so that a task on a killed
// place aborts promptly instead of wasting work (real process failure would
// have stopped it instantly; cooperative abortion is the emulation's
// equivalent).
func (c *Ctx) CheckAlive() {
	c.rt.placeState(c.Here).checkAlive()
}

// Transfer charges the network model for moving a payload of the given size
// from the task's place to place to. GML collective operations call this
// around bulk data movement so the simulated interconnect sees realistic
// volumes.
func (c *Ctx) Transfer(to Place, bytes int) {
	c.rt.hop(c.Here, to, transport.ClassData, bytes, nil)
}

// TransferBytes moves a real payload from the task's place to place to,
// tagged as checkpoint redundancy traffic. The snapshot layer's replica
// and erasure-shard writes use it so a distributed backend carries the
// actual bytes while the local emulation charges their size exactly as
// Transfer would.
func (c *Ctx) TransferBytes(to Place, data []byte) {
	c.rt.hop(c.Here, to, transport.ClassSnapshot, len(data), data)
}

// TransferSnapshot charges checkpoint redundancy traffic by declared
// size without handing the transport a payload. The snapshot layer's
// kernel-dispatch save path uses it when the replica bytes ride a kernel
// task into the worker process instead of a data frame: the apgas-level
// accounting (message count, bytes, snapshot class) stays exactly what
// TransferBytes would have charged, so NetModel numbers are invariant to
// which wire the payload physically took.
func (c *Ctx) TransferSnapshot(to Place, bytes int) {
	c.rt.hop(c.Here, to, transport.ClassSnapshot, bytes, nil)
}

// At runs fn synchronously at place p, like X10's "at (p) S" executed from
// a task. The calling task blocks until fn returns. A DeadPlaceError is
// thrown (as a panic unwinding the calling task) if p is already dead or
// dies while fn runs; use Runtime.Finish to convert it into an error.
func (c *Ctx) At(p Place, fn func(ctx *Ctx)) {
	rt := c.rt
	pl := rt.placeState(p)
	rt.hop(c.Here, p, transport.ClassTask, 0, nil)
	pl.checkAlive()
	sub := &Ctx{rt: rt, Here: p, fin: c.fin}
	// The sub-activity's buffered forks must reach the shard even if fn
	// unwinds with a DeadPlaceError (their tasks are already running).
	defer sub.flushForks()
	fn(sub)
	// Returning from "at" is itself a message back to the origin.
	rt.charge(p, c.Here, transport.ClassTask, 0, nil)
	pl.checkAlive()
}

// Eval runs fn at place p and copies its result back, like
// "val v = at (p) expr".
func Eval[T any](c *Ctx, p Place, fn func(ctx *Ctx) T) T {
	var out T
	c.At(p, func(ctx *Ctx) { out = fn(ctx) })
	return out
}

// root returns a Ctx representing the main activity, which X10 defines to
// run at place zero.
func (rt *Runtime) root() *Ctx {
	return &Ctx{rt: rt, Here: Place{ID: 0}}
}

// Finish runs body as the main activity of a new finish scope at place zero
// and blocks until the finish quiesces: body has returned and every task
// spawned inside it (transitively) has terminated. It returns the combined
// exceptions of the scope, with place failures surfacing as DeadPlaceError
// values (possibly inside a MultiError).
func (rt *Runtime) Finish(body func(ctx *Ctx)) error {
	return rt.finishFrom(rt.root(), body)
}

// FinishContext is Finish with cancellation: when ctx is canceled (or its
// deadline passes) before the finish quiesces, it stops waiting and
// returns an error wrapping ErrCanceled instead of hanging. The finish
// scope itself cannot be revoked — its tasks keep draining on background
// goroutines and their results are discarded — so cancellation is a way
// for the *caller* to give up on a wedged or slow scope, not a way to
// abort the emulated computation mid-flight. A nil or never-canceled
// context degenerates to plain Finish.
func (rt *Runtime) FinishContext(ctx context.Context, body func(c *Ctx)) error {
	if ctx == nil || ctx.Done() == nil {
		return rt.Finish(body)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	done := make(chan error, 1)
	go func() { done <- rt.Finish(body) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
}

// FinishFrom is like Finish but runs body at an arbitrary place. It is the
// entry point used by nested finishes inside tasks.
func (c *Ctx) FinishFrom(body func(ctx *Ctx)) error {
	return c.rt.finishFrom(c, body)
}

func (rt *Runtime) finishFrom(parent *Ctx, body func(ctx *Ctx)) error {
	f := rt.newFinish(parent.Here)
	ctx := &Ctx{rt: rt, Here: parent.Here, fin: f}
	var t0 time.Time
	if rt.instr.finishes != nil {
		t0 = time.Now()
	}
	func() {
		defer func() {
			if err := recoverTaskError(recover()); err != nil {
				f.record(err)
			}
		}()
		body(ctx)
	}()
	// Flush the main activity's buffered forks before asking the ledger
	// for quiescence (sharded mode; no-op otherwise).
	ctx.flushForks()
	err := f.wait()
	if rt.instr.finishes != nil {
		rt.instr.finishes.Observe(time.Since(t0))
	}
	return err
}

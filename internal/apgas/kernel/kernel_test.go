package kernel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// The registry is process-global and Register panics on duplicates, so
// all test kernels register once at init — exactly the discipline
// production kernels follow (and the reason these tests survive
// -count=2, which reruns them in one process).
func init() {
	Register("kerneltest.a", func(ex *Exec, task *Task) (*Result, error) { return &Result{}, nil })
	Register("kerneltest.read", func(ex *Exec, task *Task) (*Result, error) {
		e, err := ex.Ref(task.Refs[0])
		if err != nil {
			return nil, err
		}
		return &Result{Payload: e.Bytes()}, nil
	})
	Register("kerneltest.panic", func(ex *Exec, task *Task) (*Result, error) { panic("boom") })
	Register("kerneltest.fail", func(ex *Exec, task *Task) (*Result, error) { return nil, errors.New("no luck") })
}

func TestRegistry(t *testing.T) {
	if _, ok := Lookup("kerneltest.a"); !ok {
		t.Fatal("registered kernel not found")
	}
	if _, ok := Lookup("kerneltest.nope"); ok {
		t.Fatal("unregistered kernel found")
	}
	found := false
	for _, n := range Names() {
		if n == "kerneltest.a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing kerneltest.a", Names())
	}
	for _, bad := range []string{"", "kerneltest.a"} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q) did not panic", bad)
				}
			}()
			Register(bad, func(ex *Exec, task *Task) (*Result, error) { return nil, nil })
		}()
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	s.Put(1, 0, 1, []byte("v1"))
	s.Put(1, 1, 1, []byte("other key"))
	s.Put(2, 0, 5, []byte("other handle"))
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
	e, ok := s.Get(1, 0)
	if !ok || string(e.Bytes()) != "v1" || e.Ver() != 1 {
		t.Fatalf("Get(1,0) = %v, %v", e, ok)
	}
	if !s.Holds(1, 0, 1) || s.Holds(1, 0, 2) || s.Holds(3, 0, 1) {
		t.Fatal("Holds version/handle discrimination broken")
	}
	// A new version replaces in place.
	s.Put(1, 0, 2, []byte("v2"))
	if e, _ := s.Get(1, 0); string(e.Bytes()) != "v2" || e.Ver() != 2 {
		t.Fatalf("after re-Put, Get(1,0) = %q ver %d", e.Bytes(), e.Ver())
	}
	if s.Len() != 3 {
		t.Fatalf("re-Put changed Len to %d", s.Len())
	}
	// Drop removes every key of a handle, other handles untouched.
	s.Drop(1)
	if s.Len() != 1 || s.Holds(1, 0, 2) || s.Holds(1, 1, 1) || !s.Holds(2, 0, 5) {
		t.Fatalf("after Drop(1): Len=%d", s.Len())
	}
}

func TestEntryObjDecodesOnce(t *testing.T) {
	s := NewStore()
	s.Put(1, 0, 1, []byte("abc"))
	e, _ := s.Get(1, 0)
	var calls atomic.Int32
	decode := func(data []byte) (any, error) {
		calls.Add(1)
		return strings.ToUpper(string(data)), nil
	}
	for i := 0; i < 3; i++ {
		v, err := e.Obj(decode)
		if err != nil || v.(string) != "ABC" {
			t.Fatalf("Obj = %v, %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("decode ran %d times, want 1 (memoized)", calls.Load())
	}
	wantErr := errors.New("bad bytes")
	if _, err := e.Obj(func([]byte) (any, error) { return nil, wantErr }); err != nil {
		t.Fatalf("memoized Obj re-decoded and failed: %v", err)
	}
}

func TestRunAppliesPutsAndResolvesRefs(t *testing.T) {
	ex := &Exec{Place: 3, Store: NewStore()}
	res := Run(ex, &Task{
		Name: "kerneltest.read",
		Refs: []Ref{{Handle: 9, Key: 2, Ver: 4}},
		Puts: []Blob{{Handle: 9, Key: 2, Ver: 4, Data: []byte("shipped")}},
	})
	if res.Err != "" || string(res.Payload) != "shipped" {
		t.Fatalf("Run = %+v", res)
	}
	// Version mismatch: the store now holds ver 4, a ref to ver 5 must
	// fail rather than serve stale bytes.
	res = Run(ex, &Task{Name: "kerneltest.read", Refs: []Ref{{Handle: 9, Key: 2, Ver: 5}}})
	if res.Err == "" {
		t.Fatal("stale-version ref resolved")
	}
}

func TestRunFoldsFailures(t *testing.T) {
	res := Run(&Exec{Store: NewStore()}, &Task{Name: "kerneltest.ghost"})
	if res.Err == "" || !strings.Contains(res.Err, "ghost") {
		t.Fatalf("unknown kernel Err = %q", res.Err)
	}
	res = Run(&Exec{Store: NewStore()}, &Task{Name: "kerneltest.panic"})
	if res.Err == "" || !strings.Contains(res.Err, "boom") {
		t.Fatalf("panicking kernel Err = %q", res.Err)
	}
	res = Run(&Exec{Store: NewStore()}, &Task{Name: "kerneltest.fail"})
	if res.Err != "no luck" {
		t.Fatalf("failing kernel Err = %q", res.Err)
	}
}

func TestBuiltinPut(t *testing.T) {
	ex := &Exec{Store: NewStore()}
	res := Run(ex, &Task{Name: PutName, Puts: []Blob{{Handle: 1, Key: 0, Ver: 2, Data: []byte("x")}}})
	if res.Err != "" {
		t.Fatalf("put kernel Err = %q", res.Err)
	}
	if !ex.Store.Holds(1, 0, 2) {
		t.Fatal("put kernel did not install the blob")
	}
}

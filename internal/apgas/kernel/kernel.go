// Package kernel is the task IR of the distributed data plane: a
// process-global registry of named compute kernels, a gob-encodable task
// descriptor that references them, and the per-place data store a kernel
// executes against.
//
// Go cannot serialize closures, so the transport seam's multi-process
// backend (transport/tcp) could historically only mirror traffic — every
// task body still ran in the coordinator process. A registered kernel is
// the serializable alternative: a function registered under a stable
// string name at package-init time, so the coordinator's re-exec'd worker
// binary (same executable, RGML_TCP_WORKER set) resolves the exact same
// name to the exact same code. A Task names a kernel and carries its
// inputs — scalars, one payload, and references into the executing
// place's Store (with the bytes to install when the place does not hold
// them yet) — and a Result carries its outputs back. Both are plain gob
// values; nothing in this package depends on the apgas runtime or the
// transport, so both can import it.
//
// Determinism contract: a kernel must be a pure function of its task and
// the store entries it references, and must perform bit-identical
// floating-point arithmetic wherever it executes. The runtime relies on
// this to fall back to coordinator-resident execution (local backend, or
// a worker dying mid-dispatch) without perturbing results.
package kernel

import (
	"fmt"
	"sort"
	"sync"
)

// Task describes one registered-kernel invocation. It is the unit the
// tcp backend ships to a worker process (an fTask frame) and the unit the
// coordinator-resident fallback executes directly.
type Task struct {
	// Name resolves the kernel in the process-global registry. Names must
	// be stable across re-exec: register at package init, never from
	// per-run state.
	Name string
	// Place is the place the task executes at (the runtime sets it at
	// dispatch).
	Place int32
	// I64 and F64 carry scalar arguments.
	I64 []int64
	F64 []float64
	// Payload carries one opaque per-call input.
	Payload []byte
	// Refs name the store entries the kernel reads, in the order the
	// kernel expects them. The dispatcher guarantees the executing store
	// holds every ref at exactly the referenced version, shipping Puts
	// for the ones it does not.
	Refs []Ref
	// Puts are store installs applied before the kernel runs: the subset
	// of Refs the target place did not already hold (plus any
	// unconditional installs a call site adds itself).
	Puts []Blob
}

// Ref identifies one store entry at an exact content version.
type Ref struct {
	Handle uint64
	Key    int64
	Ver    uint64
}

// Blob is a store install: the bytes backing a Ref.
type Blob struct {
	Handle uint64
	Key    int64
	Ver    uint64
	Data   []byte
}

// Result carries a kernel's outputs back to the dispatcher.
type Result struct {
	// F64 carries scalar results.
	F64 []float64
	// Payload carries one opaque output.
	Payload []byte
	// Frames carries one output per task ref for fan-shaped kernels
	// (e.g. one partial vector per matrix block).
	Frames [][]byte
	// Err, when non-empty, reports a kernel-level failure (unknown
	// kernel, missing store entry, kernel error or panic). The dispatcher
	// treats a remote Err as a data-plane fault and re-executes at the
	// coordinator; kernels must therefore be pure, so the re-execution is
	// equivalent.
	Err string
}

// Input is a call-site declaration of one store-resident kernel input:
// the identity and version the kernel needs, plus an Encode that
// materializes the bytes only when the target store does not hold that
// exact version. The dispatcher (apgas.Ctx.ExecKernel) turns Inputs into
// Refs and, for the stale or missing ones, Puts.
type Input struct {
	Handle uint64
	Key    int64
	Ver    uint64
	Encode func() []byte
}

// Func is a registered kernel body. It runs inside the executing place's
// body (worker process) or the coordinator (fallback); ex gives it the
// place's store, t its arguments. Returning an error — or panicking — is
// reported as Result.Err.
type Func func(ex *Exec, t *Task) (*Result, error)

// registry is the process-global kernel table. Registration happens at
// package init, before any runtime (or worker loop) starts, so no lock
// contention matters; the mutex only guards racy test registration.
var registry = struct {
	mu sync.RWMutex
	m  map[string]Func
}{m: make(map[string]Func)}

// Register adds fn under name. Call it from package init of the package
// owning the kernel, so every binary that links the package — including
// the re-exec'd worker — has an identical registry. Registering a
// duplicate name panics: silent replacement would let two packages fight
// over a name and diverge across processes.
func Register(name string, fn Func) {
	if name == "" || fn == nil {
		panic("kernel: Register with empty name or nil func")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("kernel: duplicate registration of %q", name))
	}
	registry.m[name] = fn
}

// Lookup resolves a registered kernel.
func Lookup(name string) (Func, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	fn, ok := registry.m[name]
	return fn, ok
}

// Names returns the registered kernel names, sorted (diagnostics).
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// storeKey identifies a store entry.
type storeKey struct {
	handle uint64
	key    int64
}

// Entry is one versioned store value: the installed bytes plus a
// decode-once cache for the kernel-side object decoded from them.
type Entry struct {
	ver  uint64
	data []byte

	mu  sync.Mutex
	obj any
}

// Ver returns the entry's content version.
func (e *Entry) Ver() uint64 { return e.ver }

// Bytes returns the installed bytes. Kernels must treat them as
// read-only.
func (e *Entry) Bytes() []byte { return e.data }

// Obj returns the decoded object for the entry, building it with decode
// on first use and caching it for subsequent kernels: a matrix block
// shipped once is decoded once, not once per task.
func (e *Entry) Obj(decode func(data []byte) (any, error)) (any, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.obj != nil {
		return e.obj, nil
	}
	obj, err := decode(e.data)
	if err != nil {
		return nil, err
	}
	e.obj = obj
	return obj, nil
}

// Store is one place's kernel-visible data: entries installed by task
// Puts, keyed by (handle, key). Worker processes own one per place;
// the coordinator keeps one per place for fallback execution. Safe for
// concurrent use (the coordinator executes fallbacks from many task
// goroutines).
type Store struct {
	mu sync.RWMutex
	m  map[storeKey]*Entry
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[storeKey]*Entry)} }

// Put installs data under (handle, key) at version ver, replacing any
// previous version (and its decoded object).
func (s *Store) Put(handle uint64, key int64, ver uint64, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[storeKey{handle, key}] = &Entry{ver: ver, data: data}
}

// Get returns the entry for (handle, key).
func (s *Store) Get(handle uint64, key int64) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[storeKey{handle, key}]
	return e, ok
}

// Holds reports whether the store has (handle, key) at exactly ver.
func (s *Store) Holds(handle uint64, key int64, ver uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[storeKey{handle, key}]
	return ok && e.ver == ver
}

// Drop removes every entry under handle (the owning object was destroyed
// or remade).
func (s *Store) Drop(handle uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.m {
		if k.handle == handle {
			delete(s.m, k)
		}
	}
}

// Len returns the number of installed entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Exec is the environment a kernel executes in: which place it embodies
// and that place's store.
type Exec struct {
	Place int
	Store *Store
}

// Ref resolves one of the task's refs against the executing store,
// failing loudly when the dispatcher's install contract was violated
// (missing entry, or an interleaved install moved the version).
func (ex *Exec) Ref(r Ref) (*Entry, error) {
	e, ok := ex.Store.Get(r.Handle, r.Key)
	if !ok {
		return nil, fmt.Errorf("kernel: store has no entry (handle %d, key %d)", r.Handle, r.Key)
	}
	if e.ver != r.Ver {
		return nil, fmt.Errorf("kernel: store entry (handle %d, key %d) at version %d, task needs %d",
			r.Handle, r.Key, e.ver, r.Ver)
	}
	return e, nil
}

// Run executes t against ex: install the task's Puts, resolve the
// kernel, run it, and fold every failure mode — unknown name, kernel
// error, kernel panic — into Result.Err so the caller has exactly one
// error channel whether the run was local or remote.
func Run(ex *Exec, t *Task) *Result {
	for _, b := range t.Puts {
		ex.Store.Put(b.Handle, b.Key, b.Ver, b.Data)
	}
	fn, ok := Lookup(t.Name)
	if !ok {
		return &Result{Err: fmt.Sprintf("unknown kernel %q (registered: %v)", t.Name, Names())}
	}
	res, err := runSafe(fn, ex, t)
	if err != nil {
		return &Result{Err: err.Error()}
	}
	if res == nil {
		res = &Result{}
	}
	return res
}

// runSafe converts a kernel panic into an error: a worker must survive a
// broken kernel and report it, not die and trigger failure detection.
func runSafe(fn Func, ex *Exec, t *Task) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("kernel %q panicked: %v", t.Name, r)
		}
	}()
	return fn(ex, t)
}

// PutName is the built-in cache-install kernel: it has no body of its
// own — the work is the task's Puts, which Run installs before any
// kernel executes — but it verifies its refs landed. Call sites use it
// to push data to a place's body ahead of need (a Sync'd model vector,
// a checkpoint replica) so later kernels find their inputs cached.
const PutName = "kernel.put"

func init() {
	Register(PutName, func(ex *Exec, t *Task) (*Result, error) {
		for _, r := range t.Refs {
			if _, err := ex.Ref(r); err != nil {
				return nil, err
			}
		}
		return &Result{}, nil
	})
}

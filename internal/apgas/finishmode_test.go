package apgas

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/rgml/rgml/internal/obs"
)

func newModeRuntime(t *testing.T, places int, mode FinishMode, opts ...Option) *Runtime {
	t.Helper()
	rt, err := New(append([]Option{
		WithPlaces(places),
		WithResilient(true),
		WithFinishMode(mode),
	}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

var bothModes = []FinishMode{FinishCentral, FinishSharded}

func TestParseFinishMode(t *testing.T) {
	for _, m := range bothModes {
		got, err := ParseFinishMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseFinishMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseFinishMode("bogus"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
	if got := FinishMode(42).String(); got != "FinishMode(42)" {
		t.Fatalf("String() on out-of-range mode = %q", got)
	}
}

func TestFinishModeConfigValidation(t *testing.T) {
	if _, err := New(WithPlaces(1), WithFinishMode(FinishMode(7))); err == nil {
		t.Fatal("expected error for unknown finish mode")
	}
	if _, err := New(WithPlaces(1), WithLedgerQueue(-1)); err == nil {
		t.Fatal("expected error for negative ledger queue")
	}
}

// TestFinishModesBasicEquivalence runs the same fan-out/fan-in program
// under both modes and checks the observable results agree.
func TestFinishModesBasicEquivalence(t *testing.T) {
	for _, mode := range bothModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rt := newModeRuntime(t, 4, mode)
			var mu sync.Mutex
			hits := make(map[int]int)
			err := rt.Finish(func(ctx *Ctx) {
				for _, p := range rt.World() {
					for k := 0; k < 8; k++ {
						p := p
						ctx.AsyncAt(p, func(c *Ctx) {
							// Nested remote and local spawns exercise the
							// batch and fast paths.
							c.AsyncAt(rt.Place(0), func(c2 *Ctx) {
								mu.Lock()
								hits[-1]++
								mu.Unlock()
							})
							mu.Lock()
							hits[c.Here.ID]++
							mu.Unlock()
						})
					}
				}
			})
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			for _, p := range rt.World() {
				if hits[p.ID] != 8 {
					t.Fatalf("place %d ran %d tasks, want 8", p.ID, hits[p.ID])
				}
			}
			if hits[-1] != 32 {
				t.Fatalf("nested tasks ran %d times, want 32", hits[-1])
			}
		})
	}
}

// TestFinishModesErrorCollection checks thrown errors surface identically.
func TestFinishModesErrorCollection(t *testing.T) {
	boom := errors.New("boom")
	for _, mode := range bothModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rt := newModeRuntime(t, 3, mode)
			err := rt.Finish(func(ctx *Ctx) {
				ctx.AsyncAt(rt.Place(1), func(c *Ctx) { Throw(boom) })
				ctx.AsyncAt(rt.Place(0), func(c *Ctx) { Throw(boom) })
			})
			if err == nil || !errors.Is(err, boom) {
				t.Fatalf("Finish err = %v, want boom", err)
			}
		})
	}
}

// TestShardedLargeFanOut spawns well past the fork batch cap from a single
// activity, at every place, with nested spawn-then-return patterns that
// provoke the early-join window.
func TestShardedLargeFanOut(t *testing.T) {
	rt := newModeRuntime(t, 5, FinishSharded)
	const perPlace = 3 * forkBatchCap // forces several flushes per activity
	var n sync.WaitGroup
	var count atomic64
	err := rt.Finish(func(ctx *Ctx) {
		for _, p := range rt.World() {
			p := p
			for k := 0; k < perPlace; k++ {
				ctx.AsyncAt(p, func(c *Ctx) {
					count.add(1)
				})
			}
		}
	})
	n.Wait()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := count.load(); got != int64(5*perPlace) {
		t.Fatalf("ran %d tasks, want %d", got, 5*perPlace)
	}
}

// atomic64 is a tiny helper avoiding an import cycle on sync/atomic naming.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestShardedLocalFastPath verifies home-place tasks bypass the shard (no
// ledger events) and are counted by the local-fast instrumentation.
func TestShardedLocalFastPath(t *testing.T) {
	reg := obs.NewRegistry()
	rt := newModeRuntime(t, 2, FinishSharded, WithObs(reg))
	before := rt.Stats()
	err := rt.Finish(func(ctx *Ctx) {
		for i := 0; i < 100; i++ {
			ctx.AsyncAt(rt.Place(0), func(c *Ctx) {})
		}
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	d := rt.Stats().Sub(before)
	if d.LocalTasks != 100 {
		t.Fatalf("LocalTasks = %d, want 100", d.LocalTasks)
	}
	// The only ledger traffic should be the wait round(s); the hundred
	// local tasks must not have produced fork/join events.
	if d.LedgerEvents > 10 {
		t.Fatalf("LedgerEvents = %d for an all-local finish, want only wait traffic", d.LedgerEvents)
	}
	if v := reg.Counter("apgas.ledger.local_fast").Value(); v != 100 {
		t.Fatalf("apgas.ledger.local_fast = %d, want 100", v)
	}
}

// TestLedgerQueueBackpressure drives a tiny bookkeeping queue hard enough
// to saturate it and checks the backpressure counter fires (satellite:
// queue_full observability) in both modes.
func TestLedgerQueueBackpressure(t *testing.T) {
	for _, mode := range bothModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			rt := newModeRuntime(t, 2, mode,
				WithObs(reg),
				WithLedgerQueue(1),
				WithLedgerCost(func(live int) {
					for i := 0; i < 2000; i++ {
						_ = i * i
					}
				}),
			)
			err := rt.Finish(func(ctx *Ctx) {
				for i := 0; i < 400; i++ {
					ctx.AsyncAt(rt.Place(1), func(c *Ctx) {})
				}
			})
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if reg.Counter("apgas.ledger.queue_full").Value() == 0 {
				t.Fatalf("queue_full counter never fired with capacity-1 queue")
			}
		})
	}
}

// TestRefusedForkCounter kills a place, then spawns at it: the fork must be
// refused, counted, and traced, and the finish must observe DeadPlaceError
// — identically in both modes, including a refused *home* spawn.
func TestRefusedForkCounter(t *testing.T) {
	for _, mode := range bothModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			rt := newModeRuntime(t, 3, mode, WithObs(reg))
			if err := rt.Kill(rt.Place(2)); err != nil {
				t.Fatalf("Kill: %v", err)
			}
			err := rt.Finish(func(ctx *Ctx) {
				ctx.AsyncAt(rt.Place(2), func(c *Ctx) {
					t.Error("task body ran at a dead place")
				})
			})
			if !IsDeadPlace(err) {
				t.Fatalf("Finish err = %v, want DeadPlaceError", err)
			}
			if got := rt.Stats().RefusedForks; got != 1 {
				t.Fatalf("RefusedForks = %d, want 1", got)
			}
			if v := reg.Counter("apgas.ledger.refused_forks").Value(); v != 1 {
				t.Fatalf("apgas.ledger.refused_forks = %d, want 1", v)
			}
			found := false
			for _, ev := range reg.TraceEvents() {
				if ev.Name == "apgas.ledger.refused_fork" {
					found = true
				}
			}
			if !found {
				t.Fatal("no apgas.ledger.refused_fork trace event")
			}
		})
	}
}

// TestRefusedLocalFork exercises the sharded fast path's refusal branch: a
// finish homed at a place that dies refuses later home spawns.
func TestRefusedLocalFork(t *testing.T) {
	rt := newModeRuntime(t, 3, FinishSharded)
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *Ctx) {
			// A finish homed at place 1.
			ferr := c.FinishFrom(func(inner *Ctx) {
				if kerr := rt.Kill(rt.Place(1)); kerr != nil {
					t.Errorf("Kill: %v", kerr)
				}
				inner.AsyncAt(rt.Place(1), func(*Ctx) {})
			})
			if !IsDeadPlace(ferr) {
				t.Errorf("inner finish err = %v, want DeadPlaceError", ferr)
			}
		})
	})
	if !IsDeadPlace(err) {
		t.Fatalf("outer finish err = %v, want DeadPlaceError (task at killed place)", err)
	}
	if rt.Stats().RefusedForks == 0 {
		t.Fatal("refused local fork was not counted")
	}
}

// TestFinishModeStress is the -race stress test of the satellite: many
// overlapping finishes homed at many places, nested local and remote
// spawns past the batch cap, with places dying concurrently mid-flight.
// The assertions are (a) every finish returns (no lost release / hang),
// and (b) failures surface only as DeadPlaceError.
func TestFinishModeStress(t *testing.T) {
	for _, mode := range bothModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const places = 8
			rt := newModeRuntime(t, places, mode)
			var wg sync.WaitGroup
			// Concurrent killers take down two places while the finishes
			// are in flight.
			for _, victim := range []int{3, 6} {
				victim := victim
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = rt.Kill(rt.Place(victim))
				}()
			}
			// Overlapping finishes homed at every place.
			for home := 0; home < places; home++ {
				home := home
				wg.Add(1)
				go func() {
					defer wg.Done()
					err := rt.Finish(func(ctx *Ctx) {
						ctx.AsyncAt(rt.Place(home), func(c *Ctx) {
							err := c.FinishFrom(func(inner *Ctx) {
								for k := 0; k < forkBatchCap+9; k++ {
									target := rt.Place((home + k) % places)
									inner.AsyncAt(target, func(g *Ctx) {
										// One more local hop at the target.
										g.AsyncAt(g.Here, func(*Ctx) {})
									})
								}
							})
							if err != nil && !IsDeadPlace(err) {
								t.Errorf("inner finish (home %d): unexpected error %v", home, err)
							}
						})
					})
					if err != nil && !IsDeadPlace(err) {
						t.Errorf("outer finish (home %d): unexpected error %v", home, err)
					}
				}()
			}
			wg.Wait()
			// The runtime must still be functional for survivors.
			if err := rt.Finish(func(ctx *Ctx) {
				for _, p := range rt.World() {
					ctx.AsyncAt(p, func(*Ctx) {})
				}
			}); err != nil {
				t.Fatalf("post-stress finish on survivors: %v", err)
			}
		})
	}
}

// TestShardedElasticPlaces checks shards grow for elastically added places
// and a finish homed at a new place works.
func TestShardedElasticPlaces(t *testing.T) {
	rt := newModeRuntime(t, 2, FinishSharded)
	added, err := rt.AddPlaces(2)
	if err != nil {
		t.Fatalf("AddPlaces: %v", err)
	}
	err = rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(added[1], func(c *Ctx) {
			if ferr := c.FinishFrom(func(inner *Ctx) {
				inner.AsyncAt(rt.Place(0), func(*Ctx) {})
				inner.AsyncAt(added[0], func(*Ctx) {})
				inner.AsyncAt(c.Here, func(*Ctx) {})
			}); ferr != nil {
				t.Errorf("finish homed at added place: %v", ferr)
			}
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// TestShardedNetAccounting checks home-based hop charging: a finish whose
// activities all stay at its home place must generate no bookkeeping
// messages at all, while the central ledger charges every fork and join to
// place zero.
func TestShardedNetAccounting(t *testing.T) {
	run := func(mode FinishMode) int64 {
		rt, err := New(WithPlaces(4), WithResilient(true), WithFinishMode(mode))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer rt.Shutdown()
		before := rt.Stats()
		err = rt.Finish(func(ctx *Ctx) {
			ctx.AsyncAt(rt.Place(3), func(c *Ctx) {
				if ferr := c.FinishFrom(func(inner *Ctx) {
					for i := 0; i < 16; i++ {
						inner.AsyncAt(c.Here, func(*Ctx) {})
					}
				}); ferr != nil {
					t.Errorf("inner finish: %v", ferr)
				}
			})
		})
		if err != nil {
			t.Fatalf("Finish (%v): %v", mode, err)
		}
		return rt.Stats().Sub(before).Messages
	}
	central := run(FinishCentral)
	sharded := run(FinishSharded)
	if sharded >= central {
		t.Fatalf("sharded messages = %d, want fewer than central's %d (home-charged bookkeeping)", sharded, central)
	}
}

func TestFinishModeString(t *testing.T) {
	for _, mode := range bothModes {
		rt := newModeRuntime(t, 1, mode)
		if rt.FinishMode() != mode {
			t.Fatalf("FinishMode() = %v, want %v", rt.FinishMode(), mode)
		}
	}
	_ = fmt.Sprintf("%v %v", FinishCentral, FinishSharded)
}

package apgas

import (
	"testing"

	"github.com/rgml/rgml/internal/obs"
)

// TestInstrumentationMatchesStats cross-checks the obs registry against the
// legacy Stats counters: both observe the same events, so after any
// workload they must agree exactly.
func TestInstrumentationMatchesStats(t *testing.T) {
	reg := obs.NewRegistry()
	rt, err := New(WithPlaces(4), WithResilient(true), WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}

	err = rt.Finish(func(ctx *Ctx) {
		for i := 1; i < 4; i++ {
			p := rt.Place(i)
			ctx.AsyncAt(p, func(c *Ctx) {
				c.Transfer(Place{ID: 0}, 1000)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	// Stop the ledger so its event counter is final.
	rt.Shutdown()

	st := rt.Stats()
	checks := []struct {
		name string
		want int64
	}{
		{"apgas.tasks.spawned", st.TasksSpawned},
		{"apgas.net.messages", st.Messages},
		{"apgas.net.bytes", st.Bytes},
		{"apgas.ledger.events", st.LedgerEvents},
		{"apgas.kills.observed", st.PlacesKilled},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d (stats)", c.name, got, c.want)
		}
	}
	if got := reg.Gauge("apgas.places.live").Value(); got != 3 {
		t.Errorf("apgas.places.live = %d, want 3", got)
	}
	if got := reg.Histogram("apgas.finish.duration").Count(); got != 1 {
		t.Errorf("apgas.finish.duration count = %d, want 1", got)
	}
	killTraces := 0
	for _, ev := range reg.TraceEvents() {
		if ev.Name == "apgas.place.killed" {
			killTraces++
			if ev.A != 2 {
				t.Errorf("kill trace names place %d, want 2", ev.A)
			}
		}
	}
	if killTraces != 1 {
		t.Errorf("apgas.place.killed events = %d, want 1", killTraces)
	}
}

// TestUninstrumentedRuntime checks that a runtime without a registry runs
// the same workload with every instrument call a no-op.
func TestUninstrumentedRuntime(t *testing.T) {
	rt, err := New(WithPlaces(2), WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if rt.Obs() != nil {
		t.Fatal("unexpected registry")
	}
	err = rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *Ctx) { c.Transfer(Place{ID: 0}, 10) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().TasksSpawned != 1 {
		t.Errorf("TasksSpawned = %d", rt.Stats().TasksSpawned)
	}
}

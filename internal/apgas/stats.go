package apgas

import "sync/atomic"

// Stats accumulates runtime activity counters. They power the benchmark
// harness's reporting (e.g. isolating how much of the resilient overhead is
// ledger traffic) and the ablation benches.
type Stats struct {
	// Messages counts place-crossing messages (task spawns, at-hops,
	// ledger events, data transfers).
	Messages atomic.Int64
	// Bytes counts payload bytes declared to Ctx.Transfer.
	Bytes atomic.Int64
	// LedgerEvents counts bookkeeping events processed by the resilient
	// finish ledger.
	LedgerEvents atomic.Int64
	// TasksSpawned counts AsyncAt invocations.
	TasksSpawned atomic.Int64
	// PlacesKilled counts injected failures.
	PlacesKilled atomic.Int64
	// PlacesFailed counts real failures reported by the transport's
	// failure detector (heartbeat timeout, connection loss) — always zero
	// on the local backend, where no external bodies exist.
	PlacesFailed atomic.Int64
	// PlacesAdded counts elastically created places.
	PlacesAdded atomic.Int64
	// RefusedForks counts forks refused because the target place was
	// already dead (answered with DeadPlaceError without becoming live).
	RefusedForks atomic.Int64
	// LocalTasks counts tasks that rode the sharded local fast path:
	// spawned at their finish's home place and tracked by the finish's
	// local counter instead of ledger events.
	LocalTasks atomic.Int64
	// WorkerTasks counts registered-kernel tasks that executed inside a
	// worker process body (distributed data plane) rather than at the
	// coordinator — always zero on the local backend.
	WorkerTasks atomic.Int64
}

func (s *Stats) countMessage(from, to Place, bytes int) {
	if from.ID == to.ID {
		return
	}
	s.Messages.Add(1)
	if bytes > 0 {
		s.Bytes.Add(int64(bytes))
	}
}

// StatsSnapshot is a point-in-time copy of the runtime counters.
type StatsSnapshot struct {
	Messages     int64
	Bytes        int64
	LedgerEvents int64
	TasksSpawned int64
	PlacesKilled int64
	PlacesFailed int64
	PlacesAdded  int64
	RefusedForks int64
	LocalTasks   int64
	WorkerTasks  int64
}

// Stats returns a snapshot of the runtime's activity counters.
func (rt *Runtime) Stats() StatsSnapshot {
	return StatsSnapshot{
		Messages:     rt.stats.Messages.Load(),
		Bytes:        rt.stats.Bytes.Load(),
		LedgerEvents: rt.stats.LedgerEvents.Load(),
		TasksSpawned: rt.stats.TasksSpawned.Load(),
		PlacesKilled: rt.stats.PlacesKilled.Load(),
		PlacesFailed: rt.stats.PlacesFailed.Load(),
		PlacesAdded:  rt.stats.PlacesAdded.Load(),
		RefusedForks: rt.stats.RefusedForks.Load(),
		LocalTasks:   rt.stats.LocalTasks.Load(),
		WorkerTasks:  rt.stats.WorkerTasks.Load(),
	}
}

// Sub returns the delta s - prev, for measuring an interval.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Messages:     s.Messages - prev.Messages,
		Bytes:        s.Bytes - prev.Bytes,
		LedgerEvents: s.LedgerEvents - prev.LedgerEvents,
		TasksSpawned: s.TasksSpawned - prev.TasksSpawned,
		PlacesKilled: s.PlacesKilled - prev.PlacesKilled,
		PlacesFailed: s.PlacesFailed - prev.PlacesFailed,
		PlacesAdded:  s.PlacesAdded - prev.PlacesAdded,
		RefusedForks: s.RefusedForks - prev.RefusedForks,
		LocalTasks:   s.LocalTasks - prev.LocalTasks,
		WorkerTasks:  s.WorkerTasks - prev.WorkerTasks,
	}
}

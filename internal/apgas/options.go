package apgas

import "github.com/rgml/rgml/internal/obs"

// Option configures a Runtime under construction. Options are the
// preferred construction surface; the positional Config literal accepted
// by NewRuntime remains as a compatibility shim.
type Option func(*Config)

// WithPlaces sets the number of places to create (at least 1).
func WithPlaces(n int) Option {
	return func(c *Config) { c.Places = n }
}

// WithResilient selects resilient finish semantics: task forks and joins
// are tracked by the place-zero ledger, place failures are detected, and
// affected finishes observe DeadPlaceError. Failure injection (Kill, and
// therefore the chaos engine) requires it.
func WithResilient(on bool) Option {
	return func(c *Config) { c.Resilient = on }
}

// WithNet sets the simulated interconnect model.
func WithNet(m NetModel) Option {
	return func(c *Config) { c.Net = m }
}

// WithFinishMode selects the resilient-finish bookkeeping architecture:
// FinishCentral (the default) is the paper-faithful place-zero ledger,
// FinishSharded the home-based sharded design with a local fast path and
// batched event delivery (see Config.FinishMode).
func WithFinishMode(m FinishMode) Option {
	return func(c *Config) { c.FinishMode = m }
}

// WithLedgerCost sets the modeled per-event bookkeeping work of the
// place-zero resilient-finish ledger (see Config.LedgerCost).
func WithLedgerCost(fn func(liveTasks int)) Option {
	return func(c *Config) { c.LedgerCost = fn }
}

// WithLedgerQueue sets the capacity of each bookkeeping event channel
// (see Config.LedgerQueue). Zero keeps DefaultLedgerQueue.
func WithLedgerQueue(n int) Option {
	return func(c *Config) { c.LedgerQueue = n }
}

// WithObs wires the runtime's instrumentation into reg (see Config.Obs).
func WithObs(reg *obs.Registry) Option {
	return func(c *Config) { c.Obs = reg }
}

// WithKernelWorkers sets the intra-place kernel worker pool size (see
// Config.KernelWorkers). n < 1 resets the pool to its default
// (RGML_WORKERS or runtime.NumCPU()). Kernel results are bit-identical
// at every worker count, so this is purely a throughput knob.
func WithKernelWorkers(n int) Option {
	return func(c *Config) { c.KernelWorkers = n }
}

// New creates an emulated APGAS runtime from functional options:
//
//	rt, err := apgas.New(apgas.WithPlaces(8), apgas.WithResilient(true))
//
// Unset options keep their zero defaults, except Places, which defaults
// to 1 (a runtime needs at least one place to exist).
func New(opts ...Option) (*Runtime, error) {
	cfg := Config{Places: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewRuntime(cfg)
}

package apgas

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/obs"
)

// Option configures a Runtime under construction. Options are the
// preferred construction surface; the positional Config literal accepted
// by NewRuntime remains as a compatibility shim.
type Option func(*Config)

// WithPlaces sets the number of places to create (at least 1).
func WithPlaces(n int) Option {
	return func(c *Config) { c.Places = n }
}

// WithResilient selects resilient finish semantics: task forks and joins
// are tracked by the place-zero ledger, place failures are detected, and
// affected finishes observe DeadPlaceError. Failure injection (Kill, and
// therefore the chaos engine) requires it.
func WithResilient(on bool) Option {
	return func(c *Config) { c.Resilient = on }
}

// WithNet sets the simulated interconnect model.
func WithNet(m NetModel) Option {
	return func(c *Config) { c.Net = m }
}

// WithFinishMode selects the resilient-finish bookkeeping architecture:
// FinishCentral (the default) is the paper-faithful place-zero ledger,
// FinishSharded the home-based sharded design with a local fast path and
// batched event delivery (see Config.FinishMode). An unknown mode is a
// construction error (wrapping ErrBadOption), recorded when the option
// applies.
func WithFinishMode(m FinishMode) Option {
	return func(c *Config) {
		if m != FinishCentral && m != FinishSharded {
			c.recordErr(fmt.Errorf("apgas: WithFinishMode(%d): unknown finish mode: %w", int(m), ErrBadOption))
			return
		}
		c.FinishMode = m
	}
}

// WithLedgerCost sets the modeled per-event bookkeeping work of the
// place-zero resilient-finish ledger (see Config.LedgerCost).
func WithLedgerCost(fn func(liveTasks int)) Option {
	return func(c *Config) { c.LedgerCost = fn }
}

// WithLedgerQueue sets the capacity of each bookkeeping event channel
// (see Config.LedgerQueue). The capacity must be positive — an
// unbuffered or negative queue would deadlock the fork path against the
// ledger goroutine — so a non-positive n is a construction error
// (wrapping ErrBadOption) rather than a silent fallback to
// DefaultLedgerQueue. Callers wanting the default simply omit the
// option.
func WithLedgerQueue(n int) Option {
	return func(c *Config) {
		if n <= 0 {
			c.recordErr(fmt.Errorf("apgas: WithLedgerQueue(%d): queue capacity must be positive: %w", n, ErrBadOption))
			return
		}
		c.LedgerQueue = n
	}
}

// WithStorePolicy sets the snapshot store's redundancy policy (see
// Config.Store): replication factor k via ReplicateStore(k), or
// Reed-Solomon erasure coding via ErasureStore(d, p). An invalid policy
// (negative counts, d+p > 255) is a construction error wrapping
// ErrBadOption; a policy merely wider than some snapshot's place group
// is fine — the store clamps it per group with a trace event.
func WithStorePolicy(sp StorePolicy) Option {
	return func(c *Config) {
		if err := sp.Validate(); err != nil {
			c.recordErr(err)
			return
		}
		c.Store = sp
	}
}

// WithTransport installs a communication backend (see Config.Transport):
// all place-crossing traffic and liveness information flows through it.
// Omitting the option selects the default in-process backend
// (transport/local) wired to the NetModel, which is bit-identical to the
// pre-seam runtime. A nil backend is a construction error (wrapping
// ErrBadOption) — callers wanting the default simply omit the option.
func WithTransport(tp transport.Transport) Option {
	return func(c *Config) {
		if tp == nil {
			c.recordErr(fmt.Errorf("apgas: WithTransport(nil): transport must be non-nil: %w", ErrBadOption))
			return
		}
		c.Transport = tp
	}
}

// WithCompression sets the checkpoint compression policy (see
// Config.Compress): codec.CompressNone (the default, bit-identical to
// the uncompressed codec), codec.CompressLossless, or
// codec.CompressLossy with a positive finite ErrorBound. An invalid
// spec (lossy without a usable bound, or a bound on a non-lossy mode)
// is a construction error wrapping ErrBadOption.
func WithCompression(spec codec.Spec) Option {
	return func(c *Config) {
		if err := spec.Validate(); err != nil {
			c.recordErr(fmt.Errorf("apgas: WithCompression: %w (%w)", err, ErrBadOption))
			return
		}
		c.Compress = spec
	}
}

// recordErr keeps the first option-validation failure for NewRuntime to
// surface.
func (c *Config) recordErr(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithObs wires the runtime's instrumentation into reg (see Config.Obs).
func WithObs(reg *obs.Registry) Option {
	return func(c *Config) { c.Obs = reg }
}

// WithKernelWorkers sets the intra-place kernel worker pool size (see
// Config.KernelWorkers). n < 1 resets the pool to its default
// (RGML_WORKERS or runtime.NumCPU()). Kernel results are bit-identical
// at every worker count, so this is purely a throughput knob.
func WithKernelWorkers(n int) Option {
	return func(c *Config) { c.KernelWorkers = n }
}

// New creates an emulated APGAS runtime from functional options:
//
//	rt, err := apgas.New(apgas.WithPlaces(8), apgas.WithResilient(true))
//
// Unset options keep their zero defaults, except Places, which defaults
// to 1 (a runtime needs at least one place to exist).
func New(opts ...Option) (*Runtime, error) {
	cfg := Config{Places: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewRuntime(cfg)
}

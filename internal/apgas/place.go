package apgas

import (
	"fmt"
	"sync"
)

// Place identifies a place in the partitioned global address space. It is a
// small value type, like x10.lang.Place; the runtime state backing it lives
// inside the Runtime.
type Place struct {
	// ID is the place's identifier. IDs are dense at startup (0..n-1) and
	// grow monotonically as elastic places are added; they are never reused.
	ID int
}

// String implements fmt.Stringer.
func (p Place) String() string { return fmt.Sprintf("place(%d)", p.ID) }

// place is the runtime-internal state of a place: an isolated object store.
// Task execution is carried by goroutines tagged with a Ctx; the store is
// the only channel through which multi-place data structures keep state at
// a place, so dropping it on failure makes the loss of data real.
type place struct {
	id   int
	mu   sync.RWMutex
	dead bool
	// store maps handle IDs (PlaceLocalHandle / GlobalRef) to this place's
	// fragment of the corresponding global object.
	store map[uint64]any
}

func newPlace(id int) *place {
	return &place{id: id, store: make(map[uint64]any)}
}

// get returns the stored value for handle id, throwing DeadPlaceError if the
// place has failed. ok is false when the handle has no value here.
func (pl *place) get(id uint64) (v any, ok bool) {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	if pl.dead {
		throwDead(Place{ID: pl.id})
	}
	v, ok = pl.store[id]
	return v, ok
}

// set stores a value for handle id, throwing DeadPlaceError if the place has
// failed.
func (pl *place) set(id uint64, v any) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.dead {
		throwDead(Place{ID: pl.id})
	}
	pl.store[id] = v
}

// remove deletes the value for handle id. Removing from a dead place is a
// no-op: the data is already gone.
func (pl *place) remove(id uint64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.dead {
		return
	}
	delete(pl.store, id)
}

// kill marks the place dead and drops its store, making every object
// fragment it held unreachable. It reports whether this call made the
// transition, so racing killers (an administrative Kill against a
// transport failure-detector report) account the death exactly once.
func (pl *place) kill() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.dead {
		return false
	}
	pl.dead = true
	pl.store = nil
	return true
}

// isDead reports whether the place has failed.
func (pl *place) isDead() bool {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.dead
}

// checkAlive throws DeadPlaceError if the place has failed.
func (pl *place) checkAlive() {
	if pl.isDead() {
		throwDead(Place{ID: pl.id})
	}
}

package apgas_test

import (
	"errors"
	"sync"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/obs"
)

func init() {
	apgas.RegisterKernel("apgastest.sum", func(ex *kernel.Exec, t *kernel.Task) (*kernel.Result, error) {
		var s float64
		for _, v := range t.F64 {
			s += v
		}
		return &kernel.Result{F64: []float64{s}}, nil
	})
	apgas.RegisterKernel("apgastest.read", func(ex *kernel.Exec, t *kernel.Task) (*kernel.Result, error) {
		e, err := ex.Ref(t.Refs[0])
		if err != nil {
			return nil, err
		}
		return &kernel.Result{Payload: append([]byte(nil), e.Bytes()...)}, nil
	})
}

// fakeExecutor is a fakeTransport with a data plane: it executes
// dispatched kernels against real per-place stores, the way a tcp worker
// does, while recording how many blobs each dispatch shipped — the
// observable the mirror's ship-once contract is asserted through.
type fakeExecutor struct {
	fakeTransport
	emu      sync.Mutex
	stores   map[int]*kernel.Store
	shipped  []int // len(t.Puts) per dispatch, in order
	failNext bool  // fail the next Exec with a transport error
}

func (f *fakeExecutor) Exec(t *kernel.Task) (*kernel.Result, error) {
	if t == nil {
		return nil, nil
	}
	f.emu.Lock()
	defer f.emu.Unlock()
	if f.failNext {
		f.failNext = false
		return nil, errors.New("fake: injected dispatch failure")
	}
	if f.stores == nil {
		f.stores = make(map[int]*kernel.Store)
	}
	place := int(t.Place)
	st := f.stores[place]
	if st == nil {
		st = kernel.NewStore()
		f.stores[place] = st
	}
	f.shipped = append(f.shipped, len(t.Puts))
	return kernel.Run(&kernel.Exec{Place: place, Store: st}, t), nil
}

func (f *fakeExecutor) shipCounts() []int {
	f.emu.Lock()
	defer f.emu.Unlock()
	return append([]int(nil), f.shipped...)
}

// TestKernelDispatchLocalBackend pins the no-data-plane path: the local
// backend answers the probe with ErrNoDataPlane, so KernelDispatch
// reports false and ExecKernel runs coordinator-resident — correct
// results, kernel_local counted, worker_executed zero.
func TestKernelDispatchLocalBackend(t *testing.T) {
	reg := obs.NewRegistry()
	rt, err := apgas.New(apgas.WithPlaces(3), apgas.WithObs(reg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *apgas.Ctx) {
			if c.KernelDispatch() {
				t.Error("local backend claims a data plane")
			}
			res, err := c.ExecKernel(&kernel.Task{Name: "apgastest.sum", F64: []float64{1, 2, 3}})
			if err != nil || res.F64[0] != 6 {
				t.Errorf("ExecKernel = %+v, %v", res, err)
			}
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := rt.Stats().WorkerTasks; got != 0 {
		t.Fatalf("WorkerTasks = %d on local backend, want 0", got)
	}
	if got := reg.CounterValue("apgas.tasks.kernel_local"); got != 1 {
		t.Fatalf("kernel_local = %d, want 1", got)
	}
	if got := reg.CounterValue("apgas.tasks.worker_executed"); got != 0 {
		t.Fatalf("worker_executed = %d, want 0", got)
	}
}

// TestKernelDispatchRemoteAndMirror drives the remote leg through a fake
// executor: results come from the worker-side store, worker_executed
// counts them, and the coordinator's shipped-version mirror sends each
// (handle, key, version) across exactly once — re-dispatching with the
// same version ships nothing, bumping the version re-ships.
func TestKernelDispatchRemoteAndMirror(t *testing.T) {
	fe := &fakeExecutor{}
	reg := obs.NewRegistry()
	rt, err := apgas.New(
		apgas.WithPlaces(3),
		apgas.WithResilient(true),
		apgas.WithTransport(fe),
		apgas.WithObs(reg),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	read := func(c *apgas.Ctx, ver uint64, payload string) {
		t.Helper()
		res, err := c.ExecKernel(
			&kernel.Task{Name: "apgastest.read"},
			kernel.Input{Handle: 5, Key: 1, Ver: ver, Encode: func() []byte { return []byte(payload) }},
		)
		if err != nil {
			t.Fatalf("ExecKernel(read): %v", err)
		}
		if string(res.Payload) != payload {
			t.Fatalf("read %q, want %q", res.Payload, payload)
		}
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *apgas.Ctx) {
			if !c.KernelDispatch() {
				t.Error("executor-capable backend reports no data plane")
			}
			read(c, 1, "v1") // cold: ships the blob
			read(c, 1, "v1") // warm: mirror hit, ships nothing
			read(c, 2, "v2") // new version: re-ships
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := fe.shipCounts(); len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("blobs shipped per dispatch = %v, want [1 0 1]", got)
	}
	if got := rt.Stats().WorkerTasks; got != 3 {
		t.Fatalf("WorkerTasks = %d, want 3", got)
	}
	if got := reg.CounterValue("apgas.tasks.worker_executed"); got != 3 {
		t.Fatalf("worker_executed = %d, want 3", got)
	}
	if got := reg.CounterValue("apgas.tasks.kernel_local"); got != 0 {
		t.Fatalf("kernel_local = %d, want 0", got)
	}
}

// TestKernelDispatchForcedPutsBypassMirror pins the Sync contract: puts
// the caller placed on the task are unconditional installs, shipped on
// every dispatch even when the mirror already holds that exact version —
// content can change under an unchanged version and must still propagate.
func TestKernelDispatchForcedPutsBypassMirror(t *testing.T) {
	fe := &fakeExecutor{}
	rt, err := apgas.New(apgas.WithPlaces(2), apgas.WithTransport(fe))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	force := func(c *apgas.Ctx, payload string) {
		t.Helper()
		tk := &kernel.Task{Name: kernel.PutName, Puts: []kernel.Blob{
			{Handle: 9, Key: 0, Ver: 1, Data: []byte(payload)},
		}}
		if _, err := c.ExecKernel(tk); err != nil {
			t.Fatalf("ExecKernel(forced put): %v", err)
		}
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *apgas.Ctx) {
			force(c, "first")
			force(c, "second") // same version, new content: must still ship
			res, err := c.ExecKernel(
				&kernel.Task{Name: "apgastest.read"},
				kernel.Input{Handle: 9, Key: 0, Ver: 1, Encode: func() []byte { return []byte("stale") }},
			)
			if err != nil {
				t.Errorf("ExecKernel(read): %v", err)
			} else if string(res.Payload) != "second" {
				t.Errorf("read %q after forced re-put, want %q", res.Payload, "second")
			}
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Dispatches: two forced puts (1 blob each) and a read whose input the
	// forced puts already landed — the mirror recorded them, so 0 blobs.
	if got := fe.shipCounts(); len(got) != 3 || got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("blobs shipped per dispatch = %v, want [1 1 0]", got)
	}
}

// TestKernelDispatchFallback injects a transport-level dispatch failure
// and verifies ExecKernel degrades to coordinator-resident execution with
// the same result — counted as a fallback, not a worker task.
func TestKernelDispatchFallback(t *testing.T) {
	fe := &fakeExecutor{}
	reg := obs.NewRegistry()
	rt, err := apgas.New(apgas.WithPlaces(2), apgas.WithTransport(fe), apgas.WithObs(reg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	fe.emu.Lock()
	fe.failNext = true
	fe.emu.Unlock()
	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *apgas.Ctx) {
			res, err := c.ExecKernel(&kernel.Task{Name: "apgastest.sum", F64: []float64{2, 3}})
			if err != nil || res.F64[0] != 5 {
				t.Errorf("ExecKernel under failure = %+v, %v", res, err)
			}
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := reg.CounterValue("apgas.tasks.kernel_fallback"); got != 1 {
		t.Fatalf("kernel_fallback = %d, want 1", got)
	}
	if got := reg.CounterValue("apgas.tasks.kernel_local"); got != 1 {
		t.Fatalf("kernel_local = %d, want 1 (the fallback execution)", got)
	}
	if got := rt.Stats().WorkerTasks; got != 0 {
		t.Fatalf("WorkerTasks = %d, want 0", got)
	}
}

// TestKernelDispatchPlaceZeroStaysLocal verifies the coordinator's own
// place never dispatches remotely — place zero IS the coordinator.
func TestKernelDispatchPlaceZeroStaysLocal(t *testing.T) {
	fe := &fakeExecutor{}
	rt, err := apgas.New(apgas.WithPlaces(2), apgas.WithTransport(fe))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	err = rt.Finish(func(ctx *apgas.Ctx) {
		res, err := ctx.ExecKernel(&kernel.Task{Name: "apgastest.sum", F64: []float64{4}})
		if err != nil || res.F64[0] != 4 {
			t.Errorf("ExecKernel at place 0 = %+v, %v", res, err)
		}
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := fe.shipCounts(); len(got) != 0 {
		t.Fatalf("place-zero kernel was dispatched remotely: %v", got)
	}
	if got := rt.Stats().WorkerTasks; got != 0 {
		t.Fatalf("WorkerTasks = %d, want 0", got)
	}
}

package apgas

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestThrowNilIsNoop(t *testing.T) {
	rt := newTestRuntime(t, 2, true)
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(1), func(*Ctx) {
			Throw(nil) // must not abort the task
		})
	})
	if err != nil {
		t.Fatalf("Finish = %v", err)
	}
}

func TestThrowCustomError(t *testing.T) {
	rt := newTestRuntime(t, 2, true)
	custom := errors.New("app-level failure")
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(1), func(*Ctx) { Throw(custom) })
	})
	if !errors.Is(err, custom) {
		t.Fatalf("Finish = %v, want custom error", err)
	}
	if IsDeadPlace(err) {
		t.Error("custom error misreported as dead place")
	}
}

func TestNestedEval(t *testing.T) {
	rt := newTestRuntime(t, 3, false)
	err := rt.Finish(func(ctx *Ctx) {
		got := Eval(ctx, rt.Place(1), func(c1 *Ctx) int {
			// Hop again from place 1 to place 2.
			return Eval(c1, rt.Place(2), func(c2 *Ctx) int {
				return c2.Here.ID * 100
			}) + c1.Here.ID
		})
		if got != 201 {
			Throw(errors.New("nested Eval result wrong"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFinishFromNonZeroPlace(t *testing.T) {
	rt := newTestRuntime(t, 3, true)
	var ran atomic.Bool
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(2), func(c *Ctx) {
			// A finish whose main activity runs at place 2.
			err := c.FinishFrom(func(ic *Ctx) {
				if ic.Here.ID != 2 {
					Throw(errors.New("inner finish not at place 2"))
				}
				ic.AsyncAt(rt.Place(1), func(*Ctx) { ran.Store(true) })
			})
			if err != nil {
				Throw(err)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("inner task never ran")
	}
}

func TestPlaceLocalHandleInitFailureCleansUp(t *testing.T) {
	rt := newTestRuntime(t, 3, true)
	boom := errors.New("init failed")
	_, err := NewPlaceLocalHandle(rt, rt.World(), func(ctx *Ctx, idx int) int {
		if idx == 1 {
			Throw(boom)
		}
		return idx
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestTaskPanicWithNonError(t *testing.T) {
	rt := newTestRuntime(t, 2, true)
	err := rt.Finish(func(ctx *Ctx) {
		ctx.AsyncAt(rt.Place(1), func(*Ctx) { panic(42) })
	})
	if err == nil {
		t.Fatal("panic swallowed")
	}
	if IsDeadPlace(err) {
		t.Error("plain panic misreported as dead place")
	}
}

func TestTransferSamePlaceFree(t *testing.T) {
	rt := newTestRuntime(t, 2, false)
	before := rt.Stats()
	err := rt.Finish(func(ctx *Ctx) {
		ctx.Transfer(ctx.Here, 1<<20) // local move: no message, no bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rt.Stats().Sub(before)
	if d.Messages != 0 || d.Bytes != 0 {
		t.Fatalf("local transfer counted: %+v", d)
	}
}

func TestGlobalRefFreeAndMissing(t *testing.T) {
	rt := newTestRuntime(t, 2, false)
	err := rt.Finish(func(ctx *Ctx) {
		gr := NewGlobalRef(ctx, "x")
		gr.Free()
		defer func() {
			if recover() == nil {
				Throw(errors.New("expected panic on freed ref"))
			}
		}()
		_ = gr.Get(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Freeing a zero ref is safe.
	var zero GlobalRef[int]
	zero.Free()
}

func TestRuntimeStringers(t *testing.T) {
	p := Place{ID: 5}
	if p.String() != "place(5)" {
		t.Errorf("Place.String = %q", p.String())
	}
}

func TestKillDuringAt(t *testing.T) {
	// A synchronous At to a place that dies mid-execution throws on the
	// post-execution liveness check.
	rt := newTestRuntime(t, 3, true)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- rt.Finish(func(ctx *Ctx) {
			ctx.At(rt.Place(1), func(c *Ctx) {
				close(started)
				<-release
			})
		})
	}()
	<-started
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; !IsDeadPlace(err) {
		t.Fatalf("Finish = %v, want DeadPlaceError", err)
	}
}

func TestManyConcurrentFinishes(t *testing.T) {
	// Stress the ledger with overlapping finishes.
	rt := newTestRuntime(t, 4, true)
	var total atomic.Int64
	outer := rt.Finish(func(ctx *Ctx) {
		for i := 0; i < 8; i++ {
			ctx.AsyncAt(rt.Place(i%4), func(c *Ctx) {
				err := c.FinishFrom(func(ic *Ctx) {
					for j := 0; j < 4; j++ {
						ic.AsyncAt(rt.Place(j), func(*Ctx) {
							total.Add(1)
							time.Sleep(time.Millisecond)
						})
					}
				})
				if err != nil {
					Throw(err)
				}
			})
		}
	})
	if outer != nil {
		t.Fatal(outer)
	}
	if total.Load() != 32 {
		t.Fatalf("ran %d tasks, want 32", total.Load())
	}
}

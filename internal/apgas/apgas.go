// Package apgas emulates the X10 Asynchronous Partitioned Global Address
// Space (APGAS) runtime inside a single Go process.
//
// The X10 concepts reproduced here, following "Resilient X10: efficient
// failure-aware programming" (PPoPP 2014) as used by the resilient GML
// paper, are:
//
//   - Place: an abstraction of an operating system process holding a
//     collection of data and tasks operating on that data. In this
//     emulation a place is an isolated in-memory object store plus the
//     set of goroutines currently executing tasks "at" it. Isolation is
//     enforced by the API: remote data is reachable only through
//     PlaceLocalHandle and GlobalRef values resolved at the owning place.
//
//   - PlaceGroup: an ordered collection of places over which multi-place
//     data structures are distributed.
//
//   - async / at / finish: Finish.AsyncAt spawns a task at a place;
//     Runtime.At runs a closure synchronously at a place; Runtime.Finish
//     blocks until every task spawned (transitively) inside it has
//     terminated, collecting exceptions.
//
//   - Resilient finish: with Config.Resilient, every task fork and join
//     is recorded by a centralized ledger at place zero (the "resilient
//     finish bookkeeping" whose cost the paper measures in Figures 2-4).
//     When a place dies, the ledger terminates the orphaned tasks and the
//     enclosing finishes observe a DeadPlaceError.
//
//   - Failure model: Runtime.Kill makes a place fail-stop — its store is
//     dropped, running tasks abort at their next store or network access,
//     and queued tasks never start. Place zero is immortal (killing it is
//     refused), matching the paper's assumption that resilient X10 cannot
//     survive the loss of place zero.
//
// A configurable NetModel charges latency and per-byte time for
// place-to-place messages so that experiments can model cluster
// interconnects; unit tests run with a zero-cost network.
package apgas

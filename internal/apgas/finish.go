package apgas

import (
	"sync"
)

// Finish is the synchronization scope created by Runtime.Finish. It collects
// the exceptions of the tasks spawned within it and blocks the creating
// activity until all of them (transitively) have terminated — X10's finish
// construct.
//
// Two implementations hide behind the one type, selected by Config.Resilient:
//
//   - non-resilient: a plain local barrier (WaitGroup semantics). This is
//     the cheap mode whose per-iteration times form the lower curves in the
//     paper's Figures 2-4.
//
//   - resilient: every task fork and join is an event processed serially by
//     the place-zero ledger, which detects place death, terminates orphan
//     tasks, and delivers DeadPlaceError to the affected finishes. The
//     bookkeeping traffic is the overhead measured in Figures 2-4.
type Finish struct {
	rt   *Runtime
	id   uint64
	home Place

	mu   sync.Mutex
	errs []error

	// Non-resilient barrier.
	wg sync.WaitGroup

	// Resilient release signal, closed by the ledger when the finish is
	// waiting and its last live task has joined.
	release chan struct{}
}

func (rt *Runtime) newFinish(home Place) *Finish {
	f := &Finish{
		rt:   rt,
		id:   rt.nextFinish.Add(1),
		home: home,
	}
	if rt.cfg.Resilient {
		f.release = make(chan struct{})
	}
	return f
}

// record appends an exception to the finish's collection.
func (f *Finish) record(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	f.errs = append(f.errs, err)
	f.mu.Unlock()
}

// wait blocks until the finish quiesces and returns its combined exceptions.
func (f *Finish) wait() error {
	if f.rt.cfg.Resilient {
		// Ask the ledger to release us once our live-task set drains. The
		// round trip through the serialized ledger is part of the resilient
		// finish cost.
		f.rt.ledger.send(ledgerEvent{kind: evWait, fin: f})
		<-f.release
	} else {
		f.wg.Wait()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return combineErrors(f.errs)
}

// task identifies one spawned activity for the resilient ledger.
type task struct {
	id    uint64
	fin   *Finish
	place Place
}

// AsyncAt spawns fn as a new task at place p, registered with the task's
// dynamically enclosing finish (X10: "at (p) async S"). It returns
// immediately; the enclosing finish waits for the task.
func (c *Ctx) AsyncAt(p Place, fn func(ctx *Ctx)) {
	f := c.fin
	if f == nil {
		panic("apgas: AsyncAt outside a finish scope")
	}
	rt := c.rt
	rt.stats.TasksSpawned.Add(1)
	rt.instr.tasks.Inc()
	// Spawn fault point: an installed injector may kill a place here (the
	// spawn itself then lands on a corpse and throws DeadPlaceError). Any
	// transient-fault return is ignored — spawns are not retryable.
	_ = rt.InjectFault(FaultPointSpawn, p)
	rt.hop(c.Here, p, 0)

	if !rt.cfg.Resilient {
		// Non-resilient places never fail (Kill is rejected), so no
		// liveness bookkeeping is needed: just a local barrier.
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			runTask(rt, p, f, fn)
		}()
		return
	}

	t := &task{id: rt.nextTask.Add(1), fin: f, place: p}
	// FORK is enqueued before the task starts, so the ledger always sees
	// FORK before the task's JOIN (the event channel is FIFO).
	rt.ledger.send(ledgerEvent{kind: evFork, task: t, from: c.Here})
	go func() {
		err := runTaskErr(rt, p, f, fn)
		rt.ledger.send(ledgerEvent{kind: evJoin, task: t, err: err, from: p})
	}()
}

// runTask executes fn at place p under panic-to-exception conversion and
// records any failure directly on the finish (non-resilient path).
func runTask(rt *Runtime, p Place, f *Finish, fn func(ctx *Ctx)) {
	if err := runTaskErr(rt, p, f, fn); err != nil {
		f.record(err)
	}
}

// runTaskErr executes fn at place p and returns its failure, if any.
func runTaskErr(rt *Runtime, p Place, f *Finish, fn func(ctx *Ctx)) (err error) {
	defer func() {
		if e := recoverTaskError(recover()); e != nil {
			err = e
		}
	}()
	pl := rt.placeState(p)
	pl.checkAlive()
	fn(&Ctx{rt: rt, Here: p, fin: f})
	return nil
}

// taskError carries an application error thrown by Throw through the panic
// unwinding machinery.
type taskError struct{ err error }

// Throw aborts the current task with err; the enclosing finish collects it.
// It is the emulation's equivalent of throwing an exception in X10.
func Throw(err error) {
	if err == nil {
		return
	}
	panic(taskError{err: err})
}

// ForEachPlace runs fn concurrently at every place of g under a fresh
// finish, passing each place's index within the group. It is the workhorse
// collective of the GML layer ("execute on all places of the group").
func ForEachPlace(rt *Runtime, g PlaceGroup, fn func(ctx *Ctx, idx int)) error {
	return rt.Finish(func(ctx *Ctx) {
		for i, p := range g {
			i, p := i, p
			ctx.AsyncAt(p, func(c *Ctx) { fn(c, i) })
		}
	})
}

package apgas

import (
	"sync"
	"sync/atomic"

	"github.com/rgml/rgml/internal/apgas/transport"
)

// Finish is the synchronization scope created by Runtime.Finish. It collects
// the exceptions of the tasks spawned within it and blocks the creating
// activity until all of them (transitively) have terminated — X10's finish
// construct.
//
// Three implementations hide behind the one type, selected by
// Config.Resilient and Config.FinishMode:
//
//   - non-resilient: a plain local barrier (WaitGroup semantics). This is
//     the cheap mode whose per-iteration times form the lower curves in the
//     paper's Figures 2-4.
//
//   - resilient central: every task fork and join is an event processed
//     serially by the place-zero ledger, which detects place death,
//     terminates orphan tasks, and delivers DeadPlaceError to the affected
//     finishes. The bookkeeping traffic is the overhead measured in
//     Figures 2-4.
//
//   - resilient sharded: bookkeeping lives at the finish's home place's
//     ledger shard, home-place tasks ride a local counter that never
//     touches the shard, and remote forks are batched (see shard.go).
type Finish struct {
	rt   *Runtime
	id   uint64
	home Place

	mu   sync.Mutex
	errs []error

	// Non-resilient barrier.
	wg sync.WaitGroup

	// Resilient (central) release signal, closed by the ledger when the
	// finish is waiting and its last live task has joined.
	release chan struct{}

	// Sharded local fast path: home-place tasks are counted here instead
	// of being registered with the shard. localDone, when armed by the
	// waiter, is closed by the join that drains the population.
	localMu   sync.Mutex
	localLive int
	localDone chan struct{}
	// spawns counts every fork of the finish (local and remote), bumped
	// after the fork is visible to its barrier; the waiter's fixpoint loop
	// (waitSharded) uses it to detect spawns racing the barriers.
	spawns atomic.Uint64
	// remote is set (before the spawn counter bump) by the first
	// place-crossing fork. While it is unset after a local drain, the
	// finish provably has no shard state, so wait skips the shard
	// round-trip entirely — the common all-local finish costs zero ledger
	// traffic.
	remote atomic.Bool
}

func (rt *Runtime) newFinish(home Place) *Finish {
	f := &Finish{
		rt:   rt,
		id:   rt.nextFinish.Add(1),
		home: home,
	}
	if rt.cfg.Resilient && rt.cfg.FinishMode == FinishCentral {
		f.release = make(chan struct{})
	}
	return f
}

// record appends an exception to the finish's collection.
func (f *Finish) record(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	f.errs = append(f.errs, err)
	f.mu.Unlock()
}

// wait blocks until the finish quiesces and returns its combined exceptions.
func (f *Finish) wait() error {
	switch {
	case !f.rt.cfg.Resilient:
		f.wg.Wait()
	case f.rt.cfg.FinishMode == FinishSharded:
		f.waitSharded()
	default:
		// Ask the ledger to release us once our live-task set drains. The
		// round trip through the serialized ledger is part of the resilient
		// finish cost.
		f.rt.ledger.send(ledgerEvent{kind: evWait, fin: f})
		<-f.release
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return combineErrors(f.errs)
}

// waitSharded is the sharded-mode quiescence fixpoint (see the protocol
// discussion in shard.go): drain the local fast-path population, then the
// shard's registered set, and accept only if no fork slipped in between.
//
// The all-local shortcut: every remote fork sets f.remote before its
// spawn-counter bump, and every fork made so far was made by the main
// activity (before wait) or by a local task (whose completion localDrain
// orders before the flag read). So an unset flag after the drain proves
// no remote fork ever happened, the shard holds no state for this
// finish, and the local fixpoint alone is quiescence.
func (f *Finish) waitSharded() {
	for {
		s := f.spawns.Load()
		f.localDrain()
		if !f.remote.Load() {
			if f.spawns.Load() == s {
				return
			}
			continue
		}
		reply := make(chan struct{})
		f.rt.shards.wait(f, reply)
		<-reply
		if f.spawns.Load() == s {
			return
		}
	}
}

// localFork admits one home-place task to the finish's local barrier.
func (f *Finish) localFork() {
	f.localMu.Lock()
	f.localLive++
	f.localMu.Unlock()
}

// localJoin retires one home-place task, recording its outcome and waking
// the waiter if it drained the population.
func (f *Finish) localJoin(err error) {
	f.record(err)
	f.localMu.Lock()
	f.localLive--
	if f.localLive == 0 && f.localDone != nil {
		close(f.localDone)
		f.localDone = nil
	}
	f.localMu.Unlock()
}

// localDrain blocks until the finish's local fast-path population is zero.
// Only the finish's own main activity calls it.
func (f *Finish) localDrain() {
	f.localMu.Lock()
	if f.localLive == 0 {
		f.localMu.Unlock()
		return
	}
	done := make(chan struct{})
	f.localDone = done
	f.localMu.Unlock()
	<-done
}

// task identifies one spawned activity for the resilient ledger.
type task struct {
	id    uint64
	fin   *Finish
	place Place
}

// AsyncAt spawns fn as a new task at place p, registered with the task's
// dynamically enclosing finish (X10: "at (p) async S"). It returns
// immediately; the enclosing finish waits for the task.
func (c *Ctx) AsyncAt(p Place, fn func(ctx *Ctx)) {
	f := c.fin
	if f == nil {
		panic("apgas: AsyncAt outside a finish scope")
	}
	rt := c.rt
	rt.stats.TasksSpawned.Add(1)
	rt.instr.tasks.Inc()
	// Spawn fault point: an installed injector may kill a place here (the
	// spawn itself then lands on a corpse and throws DeadPlaceError). Any
	// transient-fault return is ignored — spawns are not retryable.
	_ = rt.InjectFault(FaultPointSpawn, p)
	rt.hop(c.Here, p, transport.ClassTask, 0, nil)

	if !rt.cfg.Resilient {
		// Non-resilient places never fail (Kill is rejected), so no
		// liveness bookkeeping is needed: just a local barrier.
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			runTask(rt, p, f, fn)
		}()
		return
	}

	if rt.cfg.FinishMode == FinishSharded {
		c.asyncSharded(p, f, fn)
		return
	}

	t := &task{id: rt.nextTask.Add(1), fin: f, place: p}
	// FORK is enqueued before the task starts, so the ledger always sees
	// FORK before the task's JOIN (the event channel is FIFO).
	rt.ledger.send(ledgerEvent{kind: evFork, task: t, from: c.Here})
	go func() {
		err := runTaskErr(rt, p, f, fn)
		rt.ledger.send(ledgerEvent{kind: evJoin, task: t, err: err, from: p})
	}()
}

// asyncSharded is the FinishSharded spawn path: home-place tasks ride the
// finish's local counter and never touch a shard; place-crossing tasks are
// buffered into the spawning activity's fork batch for the finish's home
// shard.
func (c *Ctx) asyncSharded(p Place, f *Finish, fn func(ctx *Ctx)) {
	rt := c.rt
	if p.ID == f.home.ID {
		if rt.placeState(p).isDead() {
			// Mirror the central ledger's refusal: report the dead target
			// immediately, but still run the goroutine (it aborts on its
			// first liveness check) and ignore its outcome.
			rt.noteRefusedFork(f, p)
			f.record(&DeadPlaceError{Place: p})
			go func() { _ = runTaskErr(rt, p, f, fn) }()
			return
		}
		f.localFork()
		f.spawns.Add(1)
		rt.stats.LocalTasks.Add(1)
		rt.instr.ledgerLocal.Inc()
		go func() {
			f.localJoin(runTaskErr(rt, p, f, fn))
		}()
		return
	}

	t := &task{id: rt.nextTask.Add(1), fin: f, place: p}
	f.remote.Store(true)
	c.pending = append(c.pending, t)
	if len(c.pending) >= forkBatchCap {
		c.flushForks()
	}
	f.spawns.Add(1)
	go func() {
		err := runTaskErr(rt, p, f, fn)
		rt.shards.join(t, err, p)
	}()
}

// flushForks delivers the activity's buffered remote forks to the finish's
// home shard as one batched message (one NetModel hop for the whole
// burst). Every activity flushes before its own join is sent — the
// ordering invariant the sharded release protocol relies on — and at the
// batch-size cap. A no-op outside sharded mode, where nothing is buffered.
func (c *Ctx) flushForks() {
	if len(c.pending) == 0 {
		return
	}
	ts := c.pending
	c.pending = nil
	c.rt.shards.forkBatch(c.fin, ts, c.Here)
}

// runTask executes fn at place p under panic-to-exception conversion and
// records any failure directly on the finish (non-resilient path).
func runTask(rt *Runtime, p Place, f *Finish, fn func(ctx *Ctx)) {
	if err := runTaskErr(rt, p, f, fn); err != nil {
		f.record(err)
	}
}

// runTaskErr executes fn at place p and returns its failure, if any. The
// task's buffered remote forks are flushed on every exit path, before the
// caller can send the task's own join.
func runTaskErr(rt *Runtime, p Place, f *Finish, fn func(ctx *Ctx)) (err error) {
	ctx := &Ctx{rt: rt, Here: p, fin: f}
	defer ctx.flushForks()
	defer func() {
		if e := recoverTaskError(recover()); e != nil {
			err = e
		}
	}()
	pl := rt.placeState(p)
	pl.checkAlive()
	fn(ctx)
	return nil
}

// taskError carries an application error thrown by Throw through the panic
// unwinding machinery.
type taskError struct{ err error }

// Throw aborts the current task with err; the enclosing finish collects it.
// It is the emulation's equivalent of throwing an exception in X10.
func Throw(err error) {
	if err == nil {
		return
	}
	panic(taskError{err: err})
}

// ForEachPlace runs fn concurrently at every place of g under a fresh
// finish, passing each place's index within the group. It is the workhorse
// collective of the GML layer ("execute on all places of the group").
func ForEachPlace(rt *Runtime, g PlaceGroup, fn func(ctx *Ctx, idx int)) error {
	return rt.Finish(func(ctx *Ctx) {
		for i, p := range g {
			i, p := i, p
			ctx.AsyncAt(p, func(c *Ctx) { fn(c, i) })
		}
	})
}

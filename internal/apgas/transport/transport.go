// Package transport defines the runtime's communication seam: the narrow
// interface through which the emulated APGAS runtime moves place-crossing
// messages and learns about place failures.
//
// Everything the runtime knows about "the network" funnels through one
// Transport value:
//
//   - message send between places, tagged with a traffic Class so backends
//     and the observability layer can account task spawns, resilient-finish
//     bookkeeping, bulk data and checkpoint replica traffic separately;
//   - place liveness: a backend with a real failure detector (heartbeats,
//     connection loss) reports deaths through the Handler, which the
//     runtime feeds into the exact same dead-place broadcast path used by
//     injected (chaos) kills;
//   - administrative control: fail-stopping a place's external body (Kill)
//     and growing the place set elastically (Grow).
//
// Two backends implement the seam:
//
//   - transport/local is the default in-process emulation: every place
//     lives in the one OS process, Send charges the configured simulated
//     delay, and no external failures exist. It is bit-identical to the
//     pre-seam runtime: same NetModel accounting, same deterministic chaos
//     kill fingerprints.
//
//   - transport/tcp runs one place per OS process: place zero is the
//     coordinator, every other place is paired with a worker process
//     reached over a TCP connection carrying length-prefixed gob frames.
//     A heartbeat failure detector with configurable interval and timeout
//     turns real process death into Handler.PlaceDead events.
//
// The package deliberately speaks in plain ints for place IDs so that it
// has no dependency on package apgas (which imports it).
package transport

import (
	"errors"
	"time"

	"github.com/rgml/rgml/internal/apgas/kernel"
)

// Class tags the traffic crossing the seam so backends and counters can
// distinguish what kind of message a Send carries.
type Class uint8

const (
	// ClassTask is task-control traffic: spawns (AsyncAt), synchronous
	// at-hops and their return legs.
	ClassTask Class = iota
	// ClassControl is resilient-finish bookkeeping traffic: fork/join/wait
	// events bound for the central ledger or a home shard.
	ClassControl
	// ClassData is bulk application data movement declared by size
	// (Ctx.Transfer): collective gathers, broadcasts, reductions.
	ClassData
	// ClassSnapshot is checkpoint redundancy traffic: replica and erasure
	// shard payloads moving between a snapshot's owner and its backups.
	// Unlike the other classes it usually carries the real bytes.
	ClassSnapshot

	// NumClasses bounds the Class space for per-class counter arrays.
	NumClasses = 4
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassTask:
		return "task"
	case ClassControl:
		return "control"
	case ClassData:
		return "data"
	case ClassSnapshot:
		return "snapshot"
	}
	return "unknown"
}

// DeathCause says how a transport learned that a place died.
type DeathCause uint8

const (
	// CauseKill is an administrative fail-stop: Runtime.Kill (directly or
	// through the chaos engine) asked the transport to destroy the place's
	// body. The runtime marks the place dead before issuing it, so a
	// backend never reports CauseKill through the Handler.
	CauseKill DeathCause = iota
	// CauseTimeout is a heartbeat failure-detector timeout: the place's
	// body stopped heartbeating for longer than the configured timeout.
	CauseTimeout
	// CauseConn is a transport-level connection loss detected before any
	// heartbeat timeout (process exit resets the socket).
	CauseConn
)

// String implements fmt.Stringer.
func (c DeathCause) String() string {
	switch c {
	case CauseKill:
		return "kill"
	case CauseTimeout:
		return "timeout"
	case CauseConn:
		return "conn"
	}
	return "unknown"
}

// Handler receives the transport's upcalls into the runtime. The runtime
// installs it at Start, before any messages flow.
type Handler struct {
	// PlaceDead reports that the transport's failure detector declared a
	// place dead. It may be invoked from arbitrary transport goroutines,
	// concurrently with Sends; the runtime feeds it into the same
	// dead-place broadcast path (store drop + ledger orphan termination)
	// used by injected kills. Implementations dedupe: reporting an
	// already-dead place is a no-op.
	PlaceDead func(place int, cause DeathCause)
}

// Transport is the runtime's communication backend. The runtime owns
// exactly one; all place-crossing traffic and all liveness information
// flows through it.
//
// Implementations must be safe for concurrent use: Sends are issued from
// many task goroutines at once, racing Kill, Grow and detector upcalls.
type Transport interface {
	// Name identifies the backend ("local", "tcp") for logs and reports.
	Name() string

	// Start brings the backend up for the given initial place count and
	// installs the runtime's handler. For a distributed backend this is
	// where worker bodies are spawned or awaited; a Start error means the
	// runtime cannot be constructed.
	Start(places int, h Handler) error

	// Send moves one message of the given class from place from to place
	// to, blocking the caller for the transfer's duration, and returns
	// that duration (simulated for the local backend, measured wire time
	// for a real one). size declares the payload volume for accounting;
	// payload, when non-nil, is the real bytes to carry (checkpoint
	// replica traffic supplies it; declared-size traffic leaves it nil).
	// Intra-place sends (from == to) are free and return immediately.
	// A Send to a dead or unknown place returns an error; callers treat
	// that as "the failure detector will tell the runtime", not as a
	// task-visible fault.
	Send(from, to int, class Class, size int, payload []byte) (time.Duration, error)

	// Kill administratively fail-stops the place's external body (worker
	// process, connection). The runtime has already marked the place dead
	// when it calls Kill, so the backend must suppress the redundant
	// detector report. The local backend has no bodies and treats Kill as
	// a no-op.
	Kill(place int) error

	// Grow extends the backend by n new places (elastic growth), numbered
	// densely after the existing ones. Backends that cannot conjure new
	// bodies (externally-joined workers) return an error, which
	// Runtime.AddPlaces surfaces.
	Grow(n int) error

	// Close tears the backend down: stops detectors, closes connections,
	// reaps worker processes. Called once at Runtime.Shutdown.
	Close() error
}

// ErrNoDataPlane is an Executor's answer when it cannot execute kernels
// remotely: the runtime then keeps task bodies coordinator-resident,
// which is always correct (registered kernels are pure).
var ErrNoDataPlane = errors.New("transport: backend has no distributed data plane")

// Executor is the optional distributed-data-plane capability: a backend
// that can execute a registered kernel inside the place's own body
// (worker process) implements it alongside Transport. The runtime probes
// with Exec(nil) at construction — a nil task is a capability check,
// answered (nil, nil) by a backend that dispatches remotely and
// ErrNoDataPlane by one that does not — so the base Transport interface,
// and every existing fake implementing it, stays unchanged.
type Executor interface {
	// Exec runs t at the place t.Place names and blocks until the result
	// returns. A transport-level failure (dead place, broken wire,
	// backend closed) is the error; a kernel-level failure travels inside
	// Result.Err. Callers treat either as "re-execute at the
	// coordinator", never as a task-visible fault.
	Exec(t *kernel.Task) (*kernel.Result, error)
}

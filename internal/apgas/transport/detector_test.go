package transport

import (
	"sync"
	"testing"
	"time"
)

// deathRecorder collects detector callbacks thread-safely.
type deathRecorder struct {
	mu     sync.Mutex
	deaths []int
	causes []DeathCause
}

func (r *deathRecorder) record(place int, cause DeathCause) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deaths = append(r.deaths, place)
	r.causes = append(r.causes, cause)
}

func (r *deathRecorder) snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.deaths...)
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(0, 0, nil)
	if d.Interval() != DefaultHeartbeatInterval {
		t.Fatalf("Interval() = %v, want default %v", d.Interval(), DefaultHeartbeatInterval)
	}
	if d.Timeout() != DefaultHeartbeatTimeout {
		t.Fatalf("Timeout() = %v, want default %v", d.Timeout(), DefaultHeartbeatTimeout)
	}
	// A sub-interval timeout is widened to the interval.
	d2 := NewDetector(100*time.Millisecond, 10*time.Millisecond, nil)
	if d2.Timeout() != 100*time.Millisecond {
		t.Fatalf("Timeout() = %v, want widened to interval", d2.Timeout())
	}
}

func TestDetectorMarkDeadSuppressesAndSticks(t *testing.T) {
	var rec deathRecorder
	d := NewDetector(time.Hour, time.Hour, rec.record) // sweeps never fire
	d.Watch(1)
	d.Watch(2)

	if !d.MarkDead(1) {
		t.Fatal("first MarkDead(1) = false, want true")
	}
	if d.MarkDead(1) {
		t.Fatal("second MarkDead(1) = true, want false (already dead)")
	}
	if !d.Dead(1) {
		t.Fatal("Dead(1) = false after MarkDead")
	}
	if d.Beat(1) {
		t.Fatal("Beat on a dead place = true, want suppressed")
	}
	if !d.Beat(2) {
		t.Fatal("Beat on a live watched place = false")
	}
	if d.Beat(99) {
		t.Fatal("Beat on an unwatched place = true, want false")
	}
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("MarkDead leaked callbacks: %v", got)
	}
}

func TestDetectorTimeoutFiresOnce(t *testing.T) {
	var rec deathRecorder
	d := NewDetector(5*time.Millisecond, 25*time.Millisecond, rec.record)
	d.Watch(7)
	d.Start()
	defer d.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for len(rec.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent place never declared dead")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Let several more sweeps pass; the report must not repeat.
	time.Sleep(60 * time.Millisecond)
	got := rec.snapshot()
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("deaths = %v, want exactly [7]", got)
	}
	if !d.Dead(7) {
		t.Fatal("Dead(7) = false after timeout declaration")
	}
}

func TestDetectorStopIsIdempotent(t *testing.T) {
	d := NewDetector(time.Millisecond, time.Millisecond, nil)
	d.Start()
	d.Stop()
	d.Stop()
}

// Package local is the default in-process transport backend: every place
// lives in the one OS process, so a Send has no wire to cross — it only
// charges the simulated network delay the runtime's NetModel prescribes.
//
// The backend is deliberately trivial. It exists so that the runtime's
// communication path is the same code whether the backend is this
// emulation or a real multi-process transport, and it is bit-identical to
// the pre-seam runtime: the delay function it sleeps on is exactly the
// old chargeNet computation, there are no external place bodies to kill,
// and no failure detector that could perturb deterministic chaos
// schedules.
package local

import (
	"time"

	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/apgas/transport"
)

// Transport is the in-process backend. The zero value is usable (no
// simulated delay); New applies options.
type Transport struct {
	delay func(bytes int) time.Duration
}

// Option configures the local backend.
type Option func(*Transport)

// WithDelay installs the simulated-network delay function: Send sleeps
// delay(size) for every place-crossing message. The runtime passes its
// NetModel's delay here so accounting stays identical to the pre-seam
// chargeNet path.
func WithDelay(delay func(bytes int) time.Duration) Option {
	return func(t *Transport) { t.delay = delay }
}

// New builds the in-process backend.
func New(opts ...Option) *Transport {
	t := &Transport{}
	for _, o := range opts {
		if o != nil {
			o(t)
		}
	}
	return t
}

// Name implements transport.Transport.
func (t *Transport) Name() string { return "local" }

// Start implements transport.Transport. The local backend has no bodies
// to spawn and never reports deaths, so it only accepts the handler.
func (t *Transport) Start(places int, h transport.Handler) error { return nil }

// Send implements transport.Transport: it charges the simulated delay
// for place-crossing traffic by sleeping, exactly as the pre-seam
// runtime did, and returns the duration charged.
func (t *Transport) Send(from, to int, class transport.Class, size int, payload []byte) (time.Duration, error) {
	if from == to || t.delay == nil {
		return 0, nil
	}
	if d := t.delay(size); d > 0 {
		time.Sleep(d)
		return d, nil
	}
	return 0, nil
}

// Exec implements transport.Executor by declining: every place lives in
// the coordinator process, so there is no "remote body" to run a kernel
// in, and the runtime's coordinator-resident execution IS the place's
// execution. Declining (rather than omitting the interface) pins the
// decision in code: the local backend must keep the exact pre-dispatch
// closure path, bit-identical and with zero kernel-encode overhead.
func (t *Transport) Exec(task *kernel.Task) (*kernel.Result, error) {
	return nil, transport.ErrNoDataPlane
}

// Kill implements transport.Transport. Places have no external bodies in
// this backend; the runtime's own bookkeeping is the whole kill.
func (t *Transport) Kill(place int) error { return nil }

// Grow implements transport.Transport. New in-process places need no
// backend support.
func (t *Transport) Grow(n int) error { return nil }

// Close implements transport.Transport.
func (t *Transport) Close() error { return nil }

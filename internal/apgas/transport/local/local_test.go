package local

import (
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas/transport"
)

func TestSendChargesDelay(t *testing.T) {
	var charged []int
	tr := New(WithDelay(func(bytes int) time.Duration {
		charged = append(charged, bytes)
		return time.Microsecond
	}))
	if tr.Name() != "local" {
		t.Fatalf("Name() = %q", tr.Name())
	}
	if err := tr.Start(4, transport.Handler{}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	d, err := tr.Send(0, 1, transport.ClassData, 128, nil)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if d != time.Microsecond {
		t.Fatalf("Send returned %v, want the charged delay", d)
	}
	if len(charged) != 1 || charged[0] != 128 {
		t.Fatalf("delay consulted with %v, want [128]", charged)
	}
}

func TestIntraPlaceSendFree(t *testing.T) {
	tr := New(WithDelay(func(int) time.Duration {
		t.Fatal("delay consulted for an intra-place send")
		return 0
	}))
	if d, err := tr.Send(2, 2, transport.ClassTask, 1<<20, nil); err != nil || d != 0 {
		t.Fatalf("Send(2,2) = %v, %v; want 0, nil", d, err)
	}
}

func TestZeroValueAndNoOps(t *testing.T) {
	tr := New()
	if d, err := tr.Send(0, 1, transport.ClassControl, 64, nil); err != nil || d != 0 {
		t.Fatalf("free-network Send = %v, %v; want 0, nil", d, err)
	}
	if err := tr.Kill(1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if err := tr.Grow(3); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

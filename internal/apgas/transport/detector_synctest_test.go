//go:build goexperiment.synctest

package transport

import (
	"testing"
	"testing/synctest"
	"time"
)

// The synctest suite pins the Detector's timing contract under a paused
// clock: sleeps advance virtual time instantly and deterministically, so
// the bounds below are exact, not statistical. Run with:
//
//	GOEXPERIMENT=synctest GODEBUG=asynctimerchan=0 \
//	    go test -run Synctest ./internal/apgas/transport/
//
// (the Makefile's race-transport leg includes it; asynctimerchan=0 is
// needed because the module's go directive predates the new timer
// semantics synctest requires).

const (
	sInterval = 50 * time.Millisecond
	sTimeout  = 250 * time.Millisecond
)

// TestSynctestDetectionLatencyBounds verifies a silent place is declared
// dead no earlier than timeout after its last beat and no later than
// timeout + interval (one sweep of slack).
func TestSynctestDetectionLatencyBounds(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		declared := make(chan time.Time, 1)
		d := NewDetector(sInterval, sTimeout, func(p int, c DeathCause) {
			rec.record(p, c)
			declared <- time.Now()
		})
		d.Watch(1)
		start := time.Now()
		d.Start()
		defer d.Stop()

		// The place never beats after Watch. Advance past the upper bound.
		time.Sleep(sTimeout + 2*sInterval)
		synctest.Wait()

		select {
		case at := <-declared:
			latency := at.Sub(start)
			if latency <= sTimeout {
				t.Fatalf("declared dead after %v, before the %v timeout elapsed", latency, sTimeout)
			}
			if latency > sTimeout+sInterval {
				t.Fatalf("declared dead after %v, beyond timeout+interval = %v", latency, sTimeout+sInterval)
			}
		default:
			t.Fatal("silent place was never declared dead")
		}
		got := rec.snapshot()
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("deaths = %v, want exactly [1]", got)
		}
	})
}

// TestSynctestNoFalsePositives verifies a place beating at a regular
// interval is never declared dead, across many timeout windows of paused
// time.
func TestSynctestNoFalsePositives(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		d := NewDetector(sInterval, sTimeout, rec.record)
		d.Watch(1)
		d.Start()

		// Beat every interval for 40 windows' worth of virtual time.
		for i := 0; i < 200; i++ {
			time.Sleep(sInterval)
			if !d.Beat(1) {
				t.Fatalf("Beat rejected at iteration %d: place declared dead", i)
			}
		}
		synctest.Wait()
		if got := rec.snapshot(); len(got) != 0 {
			t.Fatalf("false positives: %v", got)
		}
		d.Stop()
	})
}

// TestSynctestFlappingSuppression verifies irregular (flapping) beats
// that always stay within the timeout window never trigger a death, and
// that a single beat just inside the window resets it fully.
func TestSynctestFlappingSuppression(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		d := NewDetector(sInterval, sTimeout, rec.record)
		d.Watch(1)
		d.Start()

		// Irregular gaps, each below the timeout: bursts then near-misses.
		gaps := []time.Duration{
			sInterval / 5, sInterval / 5, sTimeout - sInterval/2, // near miss
			sInterval, sTimeout - sInterval/2, // another near miss
			sInterval / 10, sInterval / 10, sInterval / 10,
			sTimeout - sInterval/2,
		}
		for round := 0; round < 20; round++ {
			for i, g := range gaps {
				time.Sleep(g)
				if !d.Beat(1) {
					t.Fatalf("flapping beat rejected (round %d, gap %d): place declared dead", round, i)
				}
			}
		}
		synctest.Wait()
		if got := rec.snapshot(); len(got) != 0 {
			t.Fatalf("flapping within the window produced deaths: %v", got)
		}

		// Now actually go silent: the suppression must not have weakened
		// real detection.
		time.Sleep(sTimeout + 2*sInterval)
		synctest.Wait()
		got := rec.snapshot()
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("after real silence, deaths = %v, want [1]", got)
		}
		d.Stop()
	})
}

// TestSynctestGrownPlaceFullWindow verifies the Grow interaction: a place
// Watch-ed long after Start — mid-sweep-schedule, the way tcp.Grow admits
// a freshly spawned worker — gets its own full timeout window measured
// from the Watch, not from Start or from any sweep boundary. The worker's
// process may take most of the window to re-exec and send its hello, so a
// detector that aged grown places from an earlier epoch would kill every
// slow join.
func TestSynctestGrownPlaceFullWindow(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		declared := make(chan time.Time, 1)
		d := NewDetector(sInterval, sTimeout, func(p int, c DeathCause) {
			rec.record(p, c)
			declared <- time.Now()
		})
		d.Start()
		defer d.Stop()

		// Sweeps have been running for a while, deliberately offset from
		// any window boundary, before the place is grown.
		time.Sleep(3*sTimeout + sInterval/3)
		watched := time.Now()
		d.Watch(7)

		// Just shy of the timeout after Watch: still alive, even though
		// many sweeps have fired since Start.
		time.Sleep(sTimeout - sInterval/2)
		synctest.Wait()
		if d.Dead(7) {
			t.Fatal("grown place declared dead before its own timeout window elapsed")
		}

		// It never beats (died between Grow and its first heartbeat). It
		// must be declared dead within (timeout, timeout+interval] of the
		// Watch — detection is not deferred to some later epoch either.
		time.Sleep(3 * sInterval)
		synctest.Wait()
		select {
		case at := <-declared:
			latency := at.Sub(watched)
			if latency <= sTimeout {
				t.Fatalf("declared dead %v after Watch, before the %v timeout", latency, sTimeout)
			}
			if latency > sTimeout+sInterval {
				t.Fatalf("declared dead %v after Watch, beyond timeout+interval = %v", latency, sTimeout+sInterval)
			}
		default:
			t.Fatal("grown place that never beat was not declared dead")
		}
		if got := rec.snapshot(); len(got) != 1 || got[0] != 7 {
			t.Fatalf("deaths = %v, want exactly [7]", got)
		}
	})
}

// TestSynctestGrownPlaceBeatsSurvive verifies the complementary Grow
// interaction: a place Watch-ed mid-run whose first beat arrives late in
// its window (a slow process spawn) survives, and keeps surviving on a
// normal beat cadence afterwards, while an established silent place dies
// on schedule — growth must not mask unrelated detections.
func TestSynctestGrownPlaceBeatsSurvive(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		d := NewDetector(sInterval, sTimeout, rec.record)
		d.Watch(1) // established place, will go silent
		d.Start()
		defer d.Stop()

		time.Sleep(2 * sInterval)
		d.Watch(2) // grown place
		// Its hello/first beat lands only just inside its window...
		time.Sleep(sTimeout - sInterval/2)
		if !d.Beat(2) {
			t.Fatal("first beat of grown place rejected: declared dead inside its window")
		}
		// ...and it beats normally from then on, across several windows.
		for i := 0; i < 40; i++ {
			time.Sleep(sInterval)
			if !d.Beat(2) {
				t.Fatalf("grown place declared dead at steady-state beat %d", i)
			}
		}
		synctest.Wait()
		// Place 1 went silent at Start and must have died on its own
		// schedule; the grown place must not appear.
		got := rec.snapshot()
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("deaths = %v, want exactly [1]", got)
		}
	})
}

// TestSynctestLateBeatAfterDeclaration verifies the fail-stop contract
// under paused time: a beat arriving after the declaration is suppressed
// and does not resurrect the place.
func TestSynctestLateBeatAfterDeclaration(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		d := NewDetector(sInterval, sTimeout, rec.record)
		d.Watch(1)
		d.Start()

		time.Sleep(sTimeout + 2*sInterval)
		synctest.Wait()
		if !d.Dead(1) {
			t.Fatal("place not declared dead after silence")
		}
		if d.Beat(1) {
			t.Fatal("late beat accepted after death declaration")
		}
		time.Sleep(10 * sTimeout)
		synctest.Wait()
		if got := rec.snapshot(); len(got) != 1 {
			t.Fatalf("deaths = %v, want exactly one", got)
		}
		d.Stop()
	})
}

//go:build goexperiment.synctest

package transport

import (
	"testing"
	"testing/synctest"
	"time"
)

// The synctest suite pins the Detector's timing contract under a paused
// clock: sleeps advance virtual time instantly and deterministically, so
// the bounds below are exact, not statistical. Run with:
//
//	GOEXPERIMENT=synctest GODEBUG=asynctimerchan=0 \
//	    go test -run Synctest ./internal/apgas/transport/
//
// (the Makefile's race-transport leg includes it; asynctimerchan=0 is
// needed because the module's go directive predates the new timer
// semantics synctest requires).

const (
	sInterval = 50 * time.Millisecond
	sTimeout  = 250 * time.Millisecond
)

// TestSynctestDetectionLatencyBounds verifies a silent place is declared
// dead no earlier than timeout after its last beat and no later than
// timeout + interval (one sweep of slack).
func TestSynctestDetectionLatencyBounds(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		declared := make(chan time.Time, 1)
		d := NewDetector(sInterval, sTimeout, func(p int, c DeathCause) {
			rec.record(p, c)
			declared <- time.Now()
		})
		d.Watch(1)
		start := time.Now()
		d.Start()
		defer d.Stop()

		// The place never beats after Watch. Advance past the upper bound.
		time.Sleep(sTimeout + 2*sInterval)
		synctest.Wait()

		select {
		case at := <-declared:
			latency := at.Sub(start)
			if latency <= sTimeout {
				t.Fatalf("declared dead after %v, before the %v timeout elapsed", latency, sTimeout)
			}
			if latency > sTimeout+sInterval {
				t.Fatalf("declared dead after %v, beyond timeout+interval = %v", latency, sTimeout+sInterval)
			}
		default:
			t.Fatal("silent place was never declared dead")
		}
		got := rec.snapshot()
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("deaths = %v, want exactly [1]", got)
		}
	})
}

// TestSynctestNoFalsePositives verifies a place beating at a regular
// interval is never declared dead, across many timeout windows of paused
// time.
func TestSynctestNoFalsePositives(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		d := NewDetector(sInterval, sTimeout, rec.record)
		d.Watch(1)
		d.Start()

		// Beat every interval for 40 windows' worth of virtual time.
		for i := 0; i < 200; i++ {
			time.Sleep(sInterval)
			if !d.Beat(1) {
				t.Fatalf("Beat rejected at iteration %d: place declared dead", i)
			}
		}
		synctest.Wait()
		if got := rec.snapshot(); len(got) != 0 {
			t.Fatalf("false positives: %v", got)
		}
		d.Stop()
	})
}

// TestSynctestFlappingSuppression verifies irregular (flapping) beats
// that always stay within the timeout window never trigger a death, and
// that a single beat just inside the window resets it fully.
func TestSynctestFlappingSuppression(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		d := NewDetector(sInterval, sTimeout, rec.record)
		d.Watch(1)
		d.Start()

		// Irregular gaps, each below the timeout: bursts then near-misses.
		gaps := []time.Duration{
			sInterval / 5, sInterval / 5, sTimeout - sInterval/2, // near miss
			sInterval, sTimeout - sInterval/2, // another near miss
			sInterval / 10, sInterval / 10, sInterval / 10,
			sTimeout - sInterval/2,
		}
		for round := 0; round < 20; round++ {
			for i, g := range gaps {
				time.Sleep(g)
				if !d.Beat(1) {
					t.Fatalf("flapping beat rejected (round %d, gap %d): place declared dead", round, i)
				}
			}
		}
		synctest.Wait()
		if got := rec.snapshot(); len(got) != 0 {
			t.Fatalf("flapping within the window produced deaths: %v", got)
		}

		// Now actually go silent: the suppression must not have weakened
		// real detection.
		time.Sleep(sTimeout + 2*sInterval)
		synctest.Wait()
		got := rec.snapshot()
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("after real silence, deaths = %v, want [1]", got)
		}
		d.Stop()
	})
}

// TestSynctestLateBeatAfterDeclaration verifies the fail-stop contract
// under paused time: a beat arriving after the declaration is suppressed
// and does not resurrect the place.
func TestSynctestLateBeatAfterDeclaration(t *testing.T) {
	synctest.Run(func() {
		var rec deathRecorder
		d := NewDetector(sInterval, sTimeout, rec.record)
		d.Watch(1)
		d.Start()

		time.Sleep(sTimeout + 2*sInterval)
		synctest.Wait()
		if !d.Dead(1) {
			t.Fatal("place not declared dead after silence")
		}
		if d.Beat(1) {
			t.Fatal("late beat accepted after death declaration")
		}
		time.Sleep(10 * sTimeout)
		synctest.Wait()
		if got := rec.snapshot(); len(got) != 1 {
			t.Fatalf("deaths = %v, want exactly one", got)
		}
		d.Stop()
	})
}

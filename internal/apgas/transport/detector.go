package transport

import (
	"sync"
	"time"
)

// Detector default timing: a worker heartbeats every DefaultHeartbeatInterval
// and is declared dead after DefaultHeartbeatTimeout without one. The
// timeout is several intervals wide so that a single delayed beat (GC
// pause, scheduler hiccup) never produces a false positive — the classic
// flapping-suppression margin of timeout-based failure detectors.
const (
	DefaultHeartbeatInterval = 50 * time.Millisecond
	DefaultHeartbeatTimeout  = 250 * time.Millisecond
)

// Detector is a timeout-based failure detector over heartbeats: each
// watched place must call Beat at least once per timeout window or it is
// declared dead, once, through the onDead callback.
//
// Semantics (pinned by the synctest suite in detector_synctest_test.go):
//
//   - No false positives: a place that beats at least once per timeout
//     window is never declared dead, no matter how irregular (flapping)
//     its beats are within the window.
//   - Detection latency: a place that stops beating is declared dead no
//     earlier than timeout after its last beat and no later than
//     timeout + interval (one sweep period of slack).
//   - Fail-stop: once declared dead a place stays dead. Late beats are
//     suppressed (Beat reports them) and never resurrect it.
//
// MarkDead administratively declares a place dead without the callback,
// which is how an intentional kill suppresses the redundant timeout
// report that would otherwise follow.
type Detector struct {
	interval time.Duration
	timeout  time.Duration
	onDead   func(place int, cause DeathCause)

	mu   sync.Mutex
	last map[int]time.Time
	dead map[int]bool
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewDetector builds a detector sweeping every interval and declaring a
// watched place dead after timeout without a beat. Non-positive durations
// fall back to the defaults; a timeout smaller than the interval is
// widened to it (a sub-sweep timeout could only ever fire late anyway).
// The callback fires at most once per place, from the detector's own
// sweep goroutine.
func NewDetector(interval, timeout time.Duration, onDead func(place int, cause DeathCause)) *Detector {
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	if timeout <= 0 {
		timeout = DefaultHeartbeatTimeout
	}
	if timeout < interval {
		timeout = interval
	}
	return &Detector{
		interval: interval,
		timeout:  timeout,
		onDead:   onDead,
		last:     make(map[int]time.Time),
		dead:     make(map[int]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sweep period.
func (d *Detector) Interval() time.Duration { return d.interval }

// Timeout returns the declare-dead window.
func (d *Detector) Timeout() time.Duration { return d.timeout }

// Start launches the sweep goroutine. Watch/Beat before Start are
// remembered; the first sweep runs one interval after Start.
func (d *Detector) Start() {
	go d.run()
}

// Stop terminates the sweep goroutine. Idempotent; no callbacks fire
// after Stop returns.
func (d *Detector) Stop() {
	d.once.Do(func() { close(d.stop) })
	<-d.done
}

// Watch begins monitoring a place, treating "now" as its first beat so a
// slow-starting body gets a full timeout window before suspicion.
func (d *Detector) Watch(place int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[place] {
		return
	}
	d.last[place] = time.Now()
}

// Beat records a heartbeat from a place. It reports false — and has no
// effect — when the place was already declared dead: late beats from a
// zombie are suppressed, never a resurrection.
func (d *Detector) Beat(place int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[place] {
		return false
	}
	if _, watched := d.last[place]; !watched {
		return false
	}
	d.last[place] = time.Now()
	return true
}

// MarkDead administratively declares a place dead without invoking the
// callback, reporting whether this call changed its state. Used for
// intentional kills (the runtime already broadcast the death) and for
// connection-loss reports (the caller invokes the handler itself, and
// MarkDead's return dedupes against a racing timeout sweep).
func (d *Detector) MarkDead(place int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[place] {
		return false
	}
	d.dead[place] = true
	delete(d.last, place)
	return true
}

// Dead reports whether the place has been declared dead.
func (d *Detector) Dead(place int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead[place]
}

// run sweeps every interval, declaring dead the watched places whose last
// beat is older than the timeout. Callbacks are invoked outside the lock.
func (d *Detector) run() {
	defer close(d.done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		var expired []int
		d.mu.Lock()
		for place, last := range d.last {
			if now.Sub(last) > d.timeout {
				d.dead[place] = true
				delete(d.last, place)
				expired = append(expired, place)
			}
		}
		d.mu.Unlock()
		if d.onDead != nil {
			for _, place := range expired {
				d.onDead(place, CauseTimeout)
			}
		}
	}
}

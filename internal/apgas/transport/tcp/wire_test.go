package tcp

import (
	"net"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/obs"
)

// pipePair returns two frameConns joined by an in-memory duplex pipe, the
// way a coordinator and a worker see one TCP connection.
func pipePair(t *testing.T) (*frameConn, *frameConn) {
	t.Helper()
	a, b := net.Pipe()
	fa, fb := newFrameConn(a), newFrameConn(b)
	t.Cleanup(func() { fa.close(); fb.close() })
	return fa, fb
}

// testFrames is a representative mixed sequence: handshake, beats, data
// with and without payload, a kernel task with puts, and its result.
func testFrames() []*frame {
	task := &kernel.Task{
		Name: "wiretest.noop",
		I64:  []int64{1, 2, 3},
		F64:  []float64{0.5, 0.25},
		Refs: []kernel.Ref{{Handle: 7, Key: 0, Ver: 3}},
		Puts: []kernel.Blob{{Handle: 7, Key: 0, Ver: 3, Data: []byte("payload")}},
	}
	return []*frame{
		{Type: fHello, From: 1, Ver: wireVersion},
		{Type: fHeartbeat, From: 1},
		{Type: fData, From: 0, To: 1, Class: 2, Size: 4096},
		{Type: fData, From: 1, To: 2, Class: 3, Size: 11, Payload: []byte("hello world")},
		{Type: fTask, To: 1, Seq: 1, Task: task},
		{Type: fResult, From: 1, Seq: 1, Result: &kernel.Result{F64: []float64{1, 2}}},
		{Type: fHeartbeat, From: 1},
		{Type: fTask, To: 1, Seq: 2, Task: task},
		{Type: fResult, From: 1, Seq: 2, Result: &kernel.Result{F64: []float64{3, 4}}},
	}
}

// TestWireFootprintSenderEqualsReceiver pins the wire-accounting contract
// behind the transport.tcp.wire_bytes counter: the footprint write
// reports for a frame is exactly the footprint read reports on the other
// side, so the sender-side counter equals the bytes a receiver would sum
// — no double count of the length prefix, no missed gob descriptor
// bytes.
func TestWireFootprintSenderEqualsReceiver(t *testing.T) {
	sender, receiver := pipePair(t)
	frames := testFrames()

	sent := make(chan []int, 1)
	go func() {
		var ns []int
		for _, f := range frames {
			n, err := sender.write(f)
			if err != nil {
				t.Errorf("write %v: %v", f.Type, err)
				break
			}
			ns = append(ns, n)
		}
		sent <- ns
	}()

	var got []int
	for range frames {
		var f frame
		n, err := receiver.read(&f)
		if err != nil {
			t.Fatalf("read frame %d: %v", len(got), err)
		}
		got = append(got, n)
	}
	wrote := <-sent
	if len(wrote) != len(got) {
		t.Fatalf("wrote %d frames, read %d", len(wrote), len(got))
	}
	var sumW, sumR int
	for i := range wrote {
		if wrote[i] != got[i] {
			t.Errorf("frame %d (%v): sender counted %d bytes, receiver %d", i, frames[i].Type, wrote[i], got[i])
		}
		sumW += wrote[i]
		sumR += got[i]
	}
	if sumW != sumR {
		t.Fatalf("total sender footprint %d != receiver footprint %d", sumW, sumR)
	}
}

// TestWireRoundTripPreservesFrames verifies the persistent codec decodes
// every frame of a mixed stream back to its written content — including
// the nested task and result structures — with no state bleed between
// frames.
func TestWireRoundTripPreservesFrames(t *testing.T) {
	sender, receiver := pipePair(t)
	frames := testFrames()

	go func() {
		for _, f := range frames {
			if _, err := sender.write(f); err != nil {
				t.Errorf("write %v: %v", f.Type, err)
				return
			}
		}
	}()

	for i, want := range frames {
		var f frame
		if _, err := receiver.read(&f); err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if f.Type != want.Type || f.From != want.From || f.To != want.To || f.Size != want.Size || f.Seq != want.Seq {
			t.Fatalf("frame %d decoded as %+v, want header of %+v", i, f, want)
		}
		if string(f.Payload) != string(want.Payload) {
			t.Fatalf("frame %d payload %q, want %q", i, f.Payload, want.Payload)
		}
		if want.Task != nil {
			if f.Task == nil || f.Task.Name != want.Task.Name || len(f.Task.Puts) != len(want.Task.Puts) {
				t.Fatalf("frame %d task decoded as %+v, want %+v", i, f.Task, want.Task)
			}
			if string(f.Task.Puts[0].Data) != string(want.Task.Puts[0].Data) {
				t.Fatalf("frame %d put data %q, want %q", i, f.Task.Puts[0].Data, want.Task.Puts[0].Data)
			}
		}
		if want.Result != nil && (f.Result == nil || len(f.Result.F64) != len(want.Result.F64)) {
			t.Fatalf("frame %d result decoded as %+v, want %+v", i, f.Result, want.Result)
		}
	}
}

// TestPersistentCodecAmortizesDescriptors pins the reason wireVersion 2
// exists: with a persistent per-connection codec, gob ships the frame
// struct's transitive type descriptors (frame, kernel.Task, Ref, Blob,
// Result) exactly once — on the connection's first frame — so every
// later frame, whatever its shape, is descriptor-free and strictly
// smaller. A regression to a fresh-encoder-per-frame scheme re-ships
// descriptors every frame and makes all the sizes equal to the first,
// which this test rejects.
func TestPersistentCodecAmortizesDescriptors(t *testing.T) {
	sender, receiver := pipePair(t)
	task := &kernel.Task{Name: "wiretest.noop", I64: []int64{9}}
	seq := []*frame{
		{Type: fHeartbeat, From: 1},
		{Type: fHeartbeat, From: 1},
		{Type: fTask, To: 1, Seq: 1, Task: task},
		{Type: fTask, To: 1, Seq: 2, Task: task},
	}
	sent := make(chan []int, 1)
	go func() {
		var ns []int
		for i, f := range seq {
			n, err := sender.write(f)
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				break
			}
			ns = append(ns, n)
		}
		sent <- ns
	}()
	for i := range seq {
		var f frame
		if _, err := receiver.read(&f); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	sizes := <-sent
	if len(sizes) != len(seq) {
		t.Fatalf("wrote %d frames, want %d", len(sizes), len(seq))
	}
	if sizes[1] >= sizes[0] {
		t.Fatalf("second heartbeat %d bytes, first %d: descriptors not amortized", sizes[1], sizes[0])
	}
	if sizes[0]-sizes[1] < 30 {
		t.Fatalf("heartbeat shrank only %d bytes (first %d, second %d); expected the ~full descriptor overhead", sizes[0]-sizes[1], sizes[0], sizes[1])
	}
	// The first frame paid for ALL descriptors: even the first fTask —
	// a shape never sent before on this connection — rides descriptor-free
	// and identical to its repeat, and far below the first frame.
	if sizes[2] != sizes[3] {
		t.Fatalf("identical task frames differ: %d vs %d bytes — descriptors re-shipped", sizes[2], sizes[3])
	}
	if sizes[2] >= sizes[0] {
		t.Fatalf("task frame (%d bytes) not below the descriptor-bearing first frame (%d)", sizes[2], sizes[0])
	}
}

// TestHelloVersionRejected verifies the coordinator refuses a worker
// speaking a different wire version at the handshake — closing the
// connection and counting the rejection — instead of admitting a peer
// whose codec state would desync on the first post-hello frame.
func TestHelloVersionRejected(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(WithExternalWorkers(), WithObs(reg), WithHeartbeat(10*time.Millisecond, 2*time.Second))
	started := make(chan error, 1)
	go func() { started <- tr.Start(2, transport.Handler{}) }()
	deadline := time.Now().Add(5 * time.Second)
	for tr.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never started listening")
		}
		time.Sleep(time.Millisecond)
	}

	// A version-1 peer: its hello decodes fine (first frames are
	// byte-identical across schemes) but must be turned away.
	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	fc := newFrameConn(conn)
	if _, err := fc.write(&frame{Type: fHello, From: 1, Ver: 1}); err != nil {
		t.Fatalf("write stale hello: %v", err)
	}
	var f frame
	if _, err := fc.read(&f); err == nil {
		t.Fatalf("coordinator answered a stale-version hello with a %v frame; want closed connection", f.Type)
	}
	fc.close()
	for reg.CounterValue("transport.tcp.hello_rejected") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hello rejection never counted")
		}
		time.Sleep(time.Millisecond)
	}

	// A current-version peer joins fine and completes the expected set.
	conn2, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	fc2 := newFrameConn(conn2)
	defer fc2.close()
	if _, err := fc2.write(&frame{Type: fHello, From: 1, Ver: wireVersion}); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	select {
	case err := <-started:
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Start never returned after a valid join")
	}
	tr.Close()
}

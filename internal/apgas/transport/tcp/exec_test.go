package tcp_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/apgas/transport/tcp"
)

// The test kernels are registered at package init, which runs in the
// coordinator AND in every re-exec'd worker copy of this test binary
// before MaybeWorker takes over — the same property production kernels
// get from their package init.
func init() {
	apgas.RegisterKernel("tcptest.sum", func(ex *kernel.Exec, t *kernel.Task) (*kernel.Result, error) {
		var s float64
		for _, v := range t.F64 {
			s += v
		}
		for _, v := range t.I64 {
			s += float64(v)
		}
		return &kernel.Result{F64: []float64{s}}, nil
	})
	apgas.RegisterKernel("tcptest.echo", func(ex *kernel.Exec, t *kernel.Task) (*kernel.Result, error) {
		e, err := ex.Ref(t.Refs[0])
		if err != nil {
			return nil, err
		}
		return &kernel.Result{Payload: e.Bytes()}, nil
	})
}

// TestExecProbe pins the capability handshake: a started tcp transport
// answers the nil probe with (nil, nil) — it has a data plane.
func TestExecProbe(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	if err := tr.Start(2, transport.Handler{}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()
	res, err := tr.Exec(nil)
	if res != nil || err != nil {
		t.Fatalf("Exec(nil) = %v, %v; want nil, nil", res, err)
	}
}

// TestExecRunsInWorker dispatches kernels to real worker processes: a
// pure computation, then a put + a later task referencing the put —
// proving the worker's store retains entries across tasks on one
// connection.
func TestExecRunsInWorker(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	if err := tr.Start(3, transport.Handler{}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	res, err := tr.Exec(&kernel.Task{
		Name: "tcptest.sum", Place: 1,
		F64: []float64{0.5, 1.5}, I64: []int64{3},
	})
	if err != nil {
		t.Fatalf("Exec(sum): %v", err)
	}
	if res.Err != "" || len(res.F64) != 1 || res.F64[0] != 5 {
		t.Fatalf("Exec(sum) = %+v, want F64=[5]", res)
	}

	// Install a blob at place 2 via the built-in put kernel...
	res, err = tr.Exec(&kernel.Task{
		Name: kernel.PutName, Place: 2,
		Puts: []kernel.Blob{{Handle: 42, Key: 7, Ver: 1, Data: []byte("cached bytes")}},
	})
	if err != nil || res.Err != "" {
		t.Fatalf("Exec(put) = %+v, %v", res, err)
	}
	// ...and read it back from a later task shipping no bytes at all.
	res, err = tr.Exec(&kernel.Task{
		Name: "tcptest.echo", Place: 2,
		Refs: []kernel.Ref{{Handle: 42, Key: 7, Ver: 1}},
	})
	if err != nil || res.Err != "" {
		t.Fatalf("Exec(echo) = %+v, %v", res, err)
	}
	if string(res.Payload) != "cached bytes" {
		t.Fatalf("echo payload %q, want %q", res.Payload, "cached bytes")
	}

	// Stores are per-place: place 1 never saw the blob.
	res, err = tr.Exec(&kernel.Task{
		Name: "tcptest.echo", Place: 1,
		Refs: []kernel.Ref{{Handle: 42, Key: 7, Ver: 1}},
	})
	if err != nil {
		t.Fatalf("Exec(echo at 1): %v", err)
	}
	if res.Err == "" {
		t.Fatal("echo at place 1 found a blob only place 2 holds")
	}
}

// TestExecErrors pins the failure taxonomy: unknown kernels and kernel
// panics come back as Result.Err (the dispatch itself succeeded); a dead
// place fails the dispatch with a transport error.
func TestExecErrors(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	if err := tr.Start(3, transport.Handler{}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	res, err := tr.Exec(&kernel.Task{Name: "tcptest.unregistered", Place: 1})
	if err != nil {
		t.Fatalf("Exec(unregistered): transport error %v, want Result.Err", err)
	}
	if res.Err == "" || !strings.Contains(res.Err, "unregistered") {
		t.Fatalf("Exec(unregistered) Result.Err = %q, want mention of the kernel", res.Err)
	}

	if err := tr.Kill(2); err != nil {
		t.Fatalf("Kill(2): %v", err)
	}
	if _, err := tr.Exec(&kernel.Task{Name: "tcptest.sum", Place: 2}); err == nil {
		t.Fatal("Exec at killed place succeeded; want error")
	}
}

// TestExecDuringRealDeath dispatches a stream of kernels while the worker
// process is SIGKILLed under it: every Exec must return — a result or an
// error, never a hang — and once the death is reported, fail fast.
func TestExecDuringRealDeath(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	deaths := make(chan int, 4)
	if err := tr.Start(2, transport.Handler{
		PlaceDead: func(p int, c transport.DeathCause) { deaths <- p },
	}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			_, err := tr.Exec(&kernel.Task{Name: "tcptest.sum", Place: 1, I64: []int64{int64(i)}})
			if err != nil {
				return // place died; every later Exec fails too
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := tr.KillWorkerProcess(1); err != nil {
		t.Fatalf("KillWorkerProcess: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Exec stream hung across a real worker death")
	}
	select {
	case p := <-deaths:
		if p != 1 {
			t.Fatalf("death reported for place %d, want 1", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker death never reported")
	}
}

// TestSendAndExecRaceGrow grows the place set while hammering the new
// places with Sends and Execs from many goroutines: messages racing the
// hello handshake must fail cleanly (place not yet joined) or succeed,
// and every new place must become fully operative — sendable and
// executing kernels — with no spurious death reports.
func TestSendAndExecRaceGrow(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	deaths := make(chan int, 8)
	if err := tr.Start(2, transport.Handler{
		PlaceDead: func(p int, c transport.DeathCause) { deaths <- p },
	}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	if err := tr.Grow(2); err != nil {
		t.Fatalf("Grow(2): %v", err)
	}
	var wg sync.WaitGroup
	for _, place := range []int{2, 3} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(place int) {
				defer wg.Done()
				deadline := time.Now().Add(10 * time.Second)
				for {
					if time.Now().After(deadline) {
						t.Errorf("grown place %d never became operative", place)
						return
					}
					// Both planes must come up; errors before the join are
					// fine, hangs and panics are not.
					if _, err := tr.Send(0, place, transport.ClassTask, 8, nil); err != nil {
						continue
					}
					res, err := tr.Exec(&kernel.Task{Name: "tcptest.sum", Place: int32(place), I64: []int64{int64(place)}})
					if err == nil && res.Err == "" && len(res.F64) == 1 && res.F64[0] == float64(place) {
						return
					}
				}
			}(place)
		}
	}
	wg.Wait()
	select {
	case p := <-deaths:
		t.Fatalf("spurious death report for place %d during grow", p)
	default:
	}
}

package tcp

import (
	"fmt"
	"net"
	"os"
	"time"

	"github.com/rgml/rgml/internal/apgas/transport"
)

// The worker side of the backend: the process embodying one non-zero
// place. A worker's job is narrow — be a real failure domain. It dials
// the coordinator, announces its place (fHello), heartbeats on the
// configured interval, and drains inbound frames; it exits when told
// (fKill, fBye) or when the coordinator disappears. Killing the process
// is a genuine fail-stop that the coordinator's detector discovers the
// hard way.

// MaybeWorker turns the current process into a transport worker when the
// RGML_TCP_WORKER environment variable is set, never returning in that
// case (it serves, then os.Exits). Call it first thing in main() — and in
// TestMain of any test binary that constructs a tcp-backed runtime —
// so the coordinator can self-spawn the running binary as its workers:
//
//	func main() {
//	    tcp.MaybeWorker()
//	    // normal program
//	}
//
// With the variable unset it is a no-op, so the call is free for every
// other invocation of the binary.
func MaybeWorker() {
	spec := os.Getenv(workerEnv)
	if spec == "" {
		return
	}
	addr, place, interval, timeout, err := parseWorkerSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := ServeWorker(addr, place, interval, timeout); err != nil {
		fmt.Fprintf(os.Stderr, "rgml tcp worker (place %d): %v\n", place, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker runs the worker protocol for one place against the
// coordinator at addr: handshake, heartbeat every interval, drain frames
// until dismissed. It returns nil on a clean dismissal (fBye, fKill, or
// coordinator EOF) and an error for anything unexpected. `rgmlrun
// -serve-place` calls it directly for externally-joined deployments.
func ServeWorker(addr string, place int, interval, timeout time.Duration) error {
	if place <= 0 {
		return fmt.Errorf("tcp: worker place must be positive, got %d", place)
	}
	if interval <= 0 {
		interval = DefaultDialInterval(timeout)
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout(timeout))
	if err != nil {
		return fmt.Errorf("tcp: dial coordinator %s: %w", addr, err)
	}
	fc := newFrameConn(conn)
	if err := fc.write(&frame{Type: fHello, From: int32(place)}); err != nil {
		return fmt.Errorf("tcp: hello: %w", err)
	}

	// Heartbeat writer: its own goroutine, so a long inbound read never
	// starves the liveness beacon.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if err := fc.write(&frame{Type: fHeartbeat, From: int32(place)}); err != nil {
				return // coordinator gone; the read loop is exiting too
			}
		}
	}()

	for {
		var f frame
		if _, err := fc.read(&f); err != nil {
			// Coordinator closed the wire: for a worker that is a
			// dismissal, not an error — the run is simply over.
			return nil
		}
		switch f.Type {
		case fKill, fBye:
			return nil
		case fData:
			// The data plane is coordinator-resident: inbound frames are
			// the wire realization of traffic addressed to this place.
			// Draining them is the whole contract.
		}
	}
}

// DefaultDialInterval derives a sane heartbeat interval when none was
// configured: a quarter of the timeout, floored at a millisecond, or the
// package default when no timeout is known either.
func DefaultDialInterval(timeout time.Duration) time.Duration {
	if timeout <= 0 {
		return transport.DefaultHeartbeatInterval
	}
	iv := timeout / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// dialTimeout bounds the coordinator dial: workers that cannot reach the
// coordinator promptly should fail fast and loudly.
func dialTimeout(hbTimeout time.Duration) time.Duration {
	d := 5 * time.Second
	if hbTimeout > d {
		d = hbTimeout
	}
	return d
}

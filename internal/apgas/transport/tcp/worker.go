package tcp

import (
	"fmt"
	"net"
	"os"
	"time"

	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/apgas/transport"
)

// The worker side of the backend: the process embodying one non-zero
// place. A worker is a real failure domain and — since the registered-
// kernel data plane — a real compute server. It dials the coordinator,
// announces its place and wire version (fHello), heartbeats on the
// configured interval, executes inbound kernel tasks (fTask) against its
// place-local kernel.Store and answers with fResult frames, and exits
// when told (fKill, fBye) or when the coordinator disappears. Killing
// the process is a genuine fail-stop that the coordinator's detector
// discovers the hard way.

// MaybeWorker turns the current process into a transport worker when the
// RGML_TCP_WORKER environment variable is set, never returning in that
// case (it serves, then os.Exits). Call it first thing in main() — and in
// TestMain of any test binary that constructs a tcp-backed runtime —
// so the coordinator can self-spawn the running binary as its workers:
//
//	func main() {
//	    tcp.MaybeWorker()
//	    // normal program
//	}
//
// With the variable unset it is a no-op, so the call is free for every
// other invocation of the binary. Kernel registration happens at package
// init, which runs before main — so by the time MaybeWorker serves, the
// worker resolves exactly the names the coordinator registered.
func MaybeWorker() {
	spec := os.Getenv(workerEnv)
	if spec == "" {
		return
	}
	addr, place, interval, timeout, err := parseWorkerSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := ServeWorker(addr, place, interval, timeout); err != nil {
		fmt.Fprintf(os.Stderr, "rgml tcp worker (place %d): %v\n", place, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker runs the worker protocol for one place against the
// coordinator at addr: handshake, heartbeat every interval, execute
// kernel tasks and drain other frames until dismissed. It returns nil on
// a clean dismissal (fBye, fKill, or coordinator EOF) and an error for
// anything unexpected. `rgmlrun -serve-place` calls it directly for
// externally-joined deployments.
func ServeWorker(addr string, place int, interval, timeout time.Duration) error {
	if place <= 0 {
		return fmt.Errorf("tcp: worker place must be positive, got %d", place)
	}
	if interval <= 0 {
		interval = DefaultDialInterval(timeout)
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout(timeout))
	if err != nil {
		return fmt.Errorf("tcp: dial coordinator %s: %w", addr, err)
	}
	fc := newFrameConn(conn)
	if _, err := fc.write(&frame{Type: fHello, From: int32(place), Ver: wireVersion}); err != nil {
		return fmt.Errorf("tcp: hello: %w", err)
	}

	// Heartbeat writer: its own goroutine, so a long inbound read — or a
	// long-running kernel — never starves the liveness beacon.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if _, err := fc.write(&frame{Type: fHeartbeat, From: int32(place)}); err != nil {
				return // coordinator gone; the read loop is exiting too
			}
		}
	}()

	// Kernel executor: ONE goroutine owning the place's store, consuming
	// tasks in arrival order — the serial-per-place execution the
	// coordinator's dispatch contract assumes (a task's Refs name exact
	// store versions; concurrent execution could interleave installs).
	// It is separate from the read loop so a long kernel never blocks
	// frame draining (an fKill must get through mid-GEMV).
	tasks := make(chan *frame, 256)
	defer close(tasks)
	go runKernels(fc, place, tasks)

	for {
		f := new(frame)
		if _, err := fc.read(f); err != nil {
			// Coordinator closed the wire: for a worker that is a
			// dismissal, not an error — the run is simply over.
			return nil
		}
		switch f.Type {
		case fKill, fBye:
			return nil
		case fTask:
			tasks <- f
		case fData:
			// Traffic addressed to this place that carries no kernel:
			// the wire realization of coordinator-resident task bodies.
			// Draining it is the whole contract.
		}
	}
}

// runKernels executes inbound tasks against the worker's place-local
// store and writes their results back. Every outcome — including a
// kernel panic, folded into Result.Err by kernel.Run — produces exactly
// one fResult for its fTask's Seq; write errors end the loop early
// (coordinator gone, and the read loop is tearing everything down).
func runKernels(fc *frameConn, place int, tasks <-chan *frame) {
	ex := &kernel.Exec{Place: place, Store: kernel.NewStore()}
	for f := range tasks {
		res := kernel.Run(ex, f.Task)
		if _, err := fc.write(&frame{Type: fResult, From: int32(place), Seq: f.Seq, Result: res}); err != nil {
			// Coordinator unreachable. Keep draining (without executing)
			// until the read loop closes the channel, so it never blocks
			// on a full buffer while trying to reach its own exit.
			for range tasks {
			}
			return
		}
	}
}

// DefaultDialInterval derives a sane heartbeat interval when none was
// configured: a quarter of the timeout, floored at a millisecond, or the
// package default when no timeout is known either.
func DefaultDialInterval(timeout time.Duration) time.Duration {
	if timeout <= 0 {
		return transport.DefaultHeartbeatInterval
	}
	iv := timeout / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// dialTimeout bounds the coordinator dial: workers that cannot reach the
// coordinator promptly should fail fast and loudly.
func dialTimeout(hbTimeout time.Duration) time.Duration {
	d := 5 * time.Second
	if hbTimeout > d {
		d = hbTimeout
	}
	return d
}

package tcp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"github.com/rgml/rgml/internal/apgas/kernel"
)

// Wire format: every message is one frame — a 4-byte big-endian length
// prefix followed by that many bytes of gob-encoded frame struct. The
// gob encoder and decoder are persistent per connection, so type
// descriptors cross the wire once per connection instead of once per
// frame (a heartbeat shrinks from ~80 bytes of body to ~15); the length
// prefix keeps framing independent of the codec, preserves per-frame
// footprint accounting, and lets a reader fail loudly on a frame whose
// gob run does not match its declared length. maxFrameLen bounds a
// single frame (a corrupt or hostile length prefix must not allocate
// gigabytes).
const maxFrameLen = 1 << 28 // 256 MiB

// wireVersion is the frame-stream format version, carried in the hello
// handshake. Version 2 introduced the persistent per-connection gob
// codec: after the first frame the byte stream is meaningless to a
// fresh-decoder peer, so the coordinator rejects a hello that does not
// declare the same version instead of desyncing mid-run. (The hello
// itself decodes under either scheme — a persistent encoder's first
// message and a fresh encoder's only message are byte-identical.)
const wireVersion = 2

// frameType discriminates the messages crossing a coordinator-worker
// connection.
type frameType uint8

const (
	// fHello is the handshake: the worker's first frame, announcing which
	// place it embodies and which wire version it speaks.
	fHello frameType = iota + 1
	// fHeartbeat is the worker's periodic liveness beacon.
	fHeartbeat
	// fData carries one runtime message: class-tagged, with a declared
	// size and (for checkpoint redundancy traffic) the real payload.
	fData
	// fKill tells a worker to fail-stop immediately (administrative kill).
	fKill
	// fBye tells a worker the run is over; it exits cleanly.
	fBye
	// fTask dispatches one registered-kernel task to the worker for
	// execution (coordinator → worker only).
	fTask
	// fResult returns a task's result, matched to its fTask by Seq
	// (worker → coordinator only).
	fResult
)

// String implements fmt.Stringer.
func (t frameType) String() string {
	switch t {
	case fHello:
		return "hello"
	case fHeartbeat:
		return "heartbeat"
	case fData:
		return "data"
	case fKill:
		return "kill"
	case fBye:
		return "bye"
	case fTask:
		return "task"
	case fResult:
		return "result"
	}
	return "unknown"
}

// frame is the unit of exchange on a coordinator-worker connection.
type frame struct {
	Type  frameType
	From  int32
	To    int32
	Class uint8
	// Ver is the wire-format version, meaningful only on fHello.
	Ver uint32
	// Size is the declared payload volume of a data frame; most runtime
	// traffic declares size without carrying bytes, so Size is
	// accounting, not len(Payload).
	Size int64
	// Seq pairs an fResult with the fTask it answers; unique per
	// coordinator run.
	Seq uint64
	// Payload is the real bytes, when the message carries them
	// (checkpoint replica traffic).
	Payload []byte
	// Task is the kernel invocation of an fTask frame.
	Task *kernel.Task
	// Result is the kernel outcome of an fResult frame.
	Result *kernel.Result
}

// chunkReader feeds one frame body at a time to the persistent gob
// decoder. It implements io.ByteReader so gob reads exact message
// lengths itself instead of wrapping the reader in a read-ahead bufio
// that would cross frame boundaries.
type chunkReader struct {
	buf []byte
}

func (cr *chunkReader) Read(p []byte) (int, error) {
	if len(cr.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, cr.buf)
	cr.buf = cr.buf[n:]
	return n, nil
}

func (cr *chunkReader) ReadByte() (byte, error) {
	if len(cr.buf) == 0 {
		return 0, io.EOF
	}
	b := cr.buf[0]
	cr.buf = cr.buf[1:]
	return b, nil
}

// frameConn wraps one side of a connection with buffered, length-prefixed
// framing over a persistent gob codec. Writes are serialized by a mutex
// so heartbeats, data, task and control frames from different goroutines
// interleave at frame granularity; reads are single-goroutine by
// construction (one reader per connection). Because the codec state is
// per-connection, frames are only decodable by the connection's own
// decoder, in order — which the transport guarantees anyway.
type frameConn struct {
	wmu    sync.Mutex
	w      *bufio.Writer
	encBuf bytes.Buffer
	enc    *gob.Encoder

	r   *bufio.Reader
	dr  chunkReader
	dec *gob.Decoder

	c    io.Closer
	once sync.Once
}

func newFrameConn(rwc io.ReadWriteCloser) *frameConn {
	fc := &frameConn{
		w: bufio.NewWriter(rwc),
		r: bufio.NewReader(rwc),
		c: rwc,
	}
	fc.enc = gob.NewEncoder(&fc.encBuf)
	fc.dec = gob.NewDecoder(&fc.dr)
	return fc
}

// write encodes and sends one frame, flushing it onto the wire before
// returning; a frame is either fully sent or the connection is broken.
// It returns the frame's wire footprint (prefix + gob body) so senders
// can account the bytes that actually crossed the wire, mirroring read.
func (fc *frameConn) write(f *frame) (int, error) {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	fc.encBuf.Reset()
	if err := fc.enc.Encode(f); err != nil {
		return 0, fmt.Errorf("tcp: encode %v frame: %w", f.Type, err)
	}
	body := fc.encBuf.Bytes()
	if len(body) > maxFrameLen {
		return 0, fmt.Errorf("tcp: %v frame of %d bytes exceeds limit %d", f.Type, len(body), maxFrameLen)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := fc.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := fc.w.Write(body); err != nil {
		return 0, err
	}
	if err := fc.w.Flush(); err != nil {
		return 0, err
	}
	return 4 + len(body), nil
}

// read decodes the next frame, blocking until one arrives or the
// connection breaks. It returns the frame's wire footprint (prefix +
// body) for byte accounting.
func (fc *frameConn) read(f *frame) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return 0, fmt.Errorf("tcp: frame length %d exceeds limit %d", n, maxFrameLen)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return 0, err
	}
	*f = frame{}
	fc.dr.buf = body
	if err := fc.dec.Decode(f); err != nil {
		return 0, fmt.Errorf("tcp: decode frame: %w", err)
	}
	if len(fc.dr.buf) != 0 {
		// One Encode call produces exactly the byte run one Decode call
		// consumes; leftovers mean the peer's codec state and ours have
		// diverged, and every later frame would misdecode.
		return 0, fmt.Errorf("tcp: frame decode left %d undecoded bytes (codec desync)", len(fc.dr.buf))
	}
	return 4 + int(n), nil
}

// close tears the connection down. Idempotent; concurrent with reads and
// writes (which then fail, which is the point).
func (fc *frameConn) close() {
	fc.once.Do(func() { fc.c.Close() })
}

package tcp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
)

// Wire format: every message is one frame — a 4-byte big-endian length
// prefix followed by that many bytes of gob-encoded frame struct. gob is
// self-describing, so the format survives field additions; the length
// prefix keeps framing independent of the codec and lets a reader skip a
// frame it cannot decode. maxFrameLen bounds a single frame (a corrupt
// or hostile length prefix must not allocate gigabytes).
const maxFrameLen = 1 << 28 // 256 MiB

// frameType discriminates the messages crossing a coordinator-worker
// connection.
type frameType uint8

const (
	// fHello is the handshake: the worker's first frame, announcing which
	// place it embodies.
	fHello frameType = iota + 1
	// fHeartbeat is the worker's periodic liveness beacon.
	fHeartbeat
	// fData carries one runtime message: class-tagged, with a declared
	// size and (for checkpoint redundancy traffic) the real payload.
	fData
	// fKill tells a worker to fail-stop immediately (administrative kill).
	fKill
	// fBye tells a worker the run is over; it exits cleanly.
	fBye
)

// String implements fmt.Stringer.
func (t frameType) String() string {
	switch t {
	case fHello:
		return "hello"
	case fHeartbeat:
		return "heartbeat"
	case fData:
		return "data"
	case fKill:
		return "kill"
	case fBye:
		return "bye"
	}
	return "unknown"
}

// frame is the unit of exchange on a coordinator-worker connection.
type frame struct {
	Type  frameType
	From  int32
	To    int32
	Class uint8
	// Size is the declared payload volume of a data frame; most runtime
	// traffic declares size without carrying bytes (the emulated data
	// plane is coordinator-resident), so Size is accounting, not
	// len(Payload).
	Size int64
	// Payload is the real bytes, when the message carries them
	// (checkpoint replica traffic).
	Payload []byte
}

// frameConn wraps one side of a connection with buffered, length-prefixed
// gob framing. Writes are serialized by a mutex so heartbeats, data and
// control frames from different goroutines interleave at frame
// granularity; reads are single-goroutine by construction (one reader per
// connection).
type frameConn struct {
	wmu  sync.Mutex
	w    *bufio.Writer
	r    *bufio.Reader
	c    io.Closer
	once sync.Once
}

func newFrameConn(rwc io.ReadWriteCloser) *frameConn {
	return &frameConn{
		w: bufio.NewWriter(rwc),
		r: bufio.NewReader(rwc),
		c: rwc,
	}
}

// write encodes and sends one frame, flushing it onto the wire before
// returning; a frame is either fully sent or the connection is broken.
func (fc *frameConn) write(f *frame) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(f); err != nil {
		return fmt.Errorf("tcp: encode %v frame: %w", f.Type, err)
	}
	if body.Len() > maxFrameLen {
		return fmt.Errorf("tcp: %v frame of %d bytes exceeds limit %d", f.Type, body.Len(), maxFrameLen)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
	if _, err := fc.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fc.w.Write(body.Bytes()); err != nil {
		return err
	}
	return fc.w.Flush()
}

// read decodes the next frame, blocking until one arrives or the
// connection breaks. It returns the frame's wire footprint (prefix +
// body) for byte accounting.
func (fc *frameConn) read(f *frame) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return 0, fmt.Errorf("tcp: frame length %d exceeds limit %d", n, maxFrameLen)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return 0, err
	}
	*f = frame{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(f); err != nil {
		return 0, fmt.Errorf("tcp: decode frame: %w", err)
	}
	return 4 + int(n), nil
}

// close tears the connection down. Idempotent; concurrent with reads and
// writes (which then fail, which is the point).
func (fc *frameConn) close() {
	fc.once.Do(func() { fc.c.Close() })
}

// Package tcp is the multi-process transport backend: one place per OS
// process, connected by loopback-default TCP carrying length-prefixed gob
// frames (wire.go).
//
// Topology: place zero is the coordinator — the process that constructed
// the runtime. It listens, and every other place is embodied by a worker
// process holding one connection to it. Workers are either self-spawned
// (the default: the coordinator re-executes its own binary with the
// RGML_TCP_WORKER environment set, and tcp.MaybeWorker at the top of main
// turns that invocation into a worker; see worker.go) or externally
// joined (`rgmlrun -serve-place` dials in, and the coordinator waits for
// all expected places before starting).
//
// Data plane: workers compute. Go cannot serialize closures, but named
// registered kernels (apgas.RegisterKernel + internal/apgas/kernel)
// travel as gob task descriptors: Exec ships a TASK frame to the worker
// owning the place, the worker's executor loop runs the kernel against
// its per-place blob store, and a RESULT frame carries the answer back.
// Operand blobs cross once per version (the coordinator mirrors what
// each worker holds); any dispatch failure — unregistered kernel, dead
// worker, mid-flight connection loss — falls back silently to
// coordinator-resident execution, which is bit-identical because
// kernels are pure. Closure-based tasks that never registered a kernel
// still execute at the coordinator with a footprint-only DATA frame on
// the wire. DESIGN.md §14 spells out this boundary.
//
// The workers also provide the real failure domain: a worker process
// dying (killed, crashed, unplugged) is a genuine fail-stop detected by
// heartbeat timeout or connection reset and fed into the runtime's
// dead-place broadcast path — the exact machinery the local backend
// exercises only through injected kills (DESIGN.md §12).
//
// Failure detection: each worker heartbeats on a configurable interval;
// the coordinator's transport.Detector declares a place dead after a
// configurable timeout without a beat, or immediately on connection
// error, whichever first (deduped). Administrative kills (Runtime.Kill,
// chaos) mark the place dead in the detector before destroying the
// worker, so no redundant report reaches the runtime and kill-driven
// recovery stays identical to the local backend's.
package tcp

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/obs"
)

// workerEnv is the environment variable that turns a process into a
// worker: "addr|place|intervalNs|timeoutNs" (see MaybeWorker).
const workerEnv = "RGML_TCP_WORKER"

// Transport is the coordinator side of the multi-process backend.
type Transport struct {
	addr     string
	interval time.Duration
	timeout  time.Duration
	external int // expected externally-joined workers (0 = self-spawn)
	reg      *obs.Registry

	handler  transport.Handler
	detector *transport.Detector
	ln       net.Listener

	mu       sync.Mutex
	started  bool
	closed   bool
	places   int
	workers  map[int]*worker // keyed by place ID; place 0 has no worker
	joined   chan struct{}   // closed when all expected places have joined
	joinOnce sync.Once

	wg sync.WaitGroup // acceptor + per-connection readers

	// In-flight kernel dispatches awaiting fResult frames, keyed by Seq.
	// Failing a pending entry (worker death, shutdown) sends nil.
	pmu     sync.Mutex
	pending map[uint64]*pendingTask
	nextSeq atomic.Uint64

	instr tcpInstr
}

// pendingTask is one dispatched kernel awaiting its result.
type pendingTask struct {
	place int
	ch    chan *kernel.Result // buffered(1): resolver never blocks
}

// worker is the coordinator's record of one remote place body.
type worker struct {
	place int
	fc    *frameConn
	proc  *os.Process // nil for externally-joined workers
}

// tcpInstr holds the backend's observability handles (nil-safe).
type tcpInstr struct {
	frames        *obs.Counter // transport.tcp.frames
	wireBytes     *obs.Counter // transport.tcp.wire_bytes (real footprint: prefix + gob body)
	logicalBytes  *obs.Counter // transport.tcp.logical_bytes (declared size, NetModel-comparable)
	heartbeats    *obs.Counter // transport.tcp.heartbeats
	deaths        *obs.Counter // transport.tcp.deaths
	tasks         *obs.Counter // transport.tcp.tasks (kernel dispatches put on a wire)
	taskFailures  *obs.Counter // transport.tcp.task_failures (dispatches failed by death/shutdown)
	helloRejected *obs.Counter // transport.tcp.hello_rejected (wire-version mismatches)
	killWriteErrs *obs.Counter // transport.tcp.kill_write_errors (best-effort fKill writes that failed)
}

// Option configures the backend.
type Option func(*Transport)

// WithAddr sets the coordinator's listen address. The default,
// "127.0.0.1:0", binds an ephemeral loopback port — right for
// self-spawned workers, which learn the real address from their
// environment. Externally-joined deployments need a fixed address the
// workers can be pointed at.
func WithAddr(addr string) Option {
	return func(t *Transport) { t.addr = addr }
}

// WithHeartbeat sets the failure detector's beat interval and
// declare-dead timeout. Non-positive values keep the defaults
// (transport.DefaultHeartbeatInterval / transport.DefaultHeartbeatTimeout).
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(t *Transport) {
		t.interval = interval
		t.timeout = timeout
	}
}

// WithExternalWorkers switches the backend to external-join mode: instead
// of self-spawning worker processes, Start blocks until places 1..places-1
// have dialed in (each a separate `rgmlrun -serve-place` invocation).
// Grow is unavailable in this mode.
func WithExternalWorkers() Option {
	return func(t *Transport) { t.external = 1 }
}

// WithObs wires the backend's wire-level instrumentation into reg.
func WithObs(reg *obs.Registry) Option {
	return func(t *Transport) { t.reg = reg }
}

// New builds a multi-process backend. Nothing starts until
// transport.Transport.Start.
func New(opts ...Option) *Transport {
	t := &Transport{
		addr:     "127.0.0.1:0",
		interval: transport.DefaultHeartbeatInterval,
		timeout:  transport.DefaultHeartbeatTimeout,
		workers:  make(map[int]*worker),
		joined:   make(chan struct{}),
		pending:  make(map[uint64]*pendingTask),
	}
	for _, o := range opts {
		if o != nil {
			o(t)
		}
	}
	return t
}

// Name implements transport.Transport.
func (t *Transport) Name() string { return "tcp" }

// Addr returns the coordinator's actual listen address (useful with the
// ephemeral default). Empty before Start.
func (t *Transport) Addr() string {
	t.mu.Lock()
	ln := t.ln
	t.mu.Unlock()
	if ln == nil {
		return ""
	}
	return ln.Addr().String()
}

// Start implements transport.Transport: listen, bring up one worker body
// per non-zero place (spawning or awaiting joins), and start the failure
// detector.
func (t *Transport) Start(places int, h transport.Handler) error {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return errors.New("tcp: Start called twice")
	}
	t.started = true
	t.places = places
	t.handler = h
	t.mu.Unlock()

	t.instr = tcpInstr{
		frames:        t.reg.Counter("transport.tcp.frames"),
		wireBytes:     t.reg.Counter("transport.tcp.wire_bytes"),
		logicalBytes:  t.reg.Counter("transport.tcp.logical_bytes"),
		heartbeats:    t.reg.Counter("transport.tcp.heartbeats"),
		deaths:        t.reg.Counter("transport.tcp.deaths"),
		tasks:         t.reg.Counter("transport.tcp.tasks"),
		taskFailures:  t.reg.Counter("transport.tcp.task_failures"),
		helloRejected: t.reg.Counter("transport.tcp.hello_rejected"),
		killWriteErrs: t.reg.Counter("transport.tcp.kill_write_errors"),
	}

	ln, err := net.Listen("tcp", t.addr)
	if err != nil {
		return fmt.Errorf("tcp: listen %s: %w", t.addr, err)
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()

	t.detector = transport.NewDetector(t.interval, t.timeout, t.placeDead)

	t.wg.Add(1)
	go t.acceptLoop()

	if t.external == 0 {
		for p := 1; p < places; p++ {
			if err := t.spawnWorker(p); err != nil {
				ln.Close()
				return err
			}
		}
	}

	// Wait for every expected place to complete its HELLO handshake, so
	// the runtime never sees a place whose body is not yet reachable.
	if places > 1 {
		timeout := time.NewTimer(joinTimeout(places))
		defer timeout.Stop()
		select {
		case <-t.joined:
		case <-timeout.C:
			ln.Close()
			return fmt.Errorf("tcp: timed out waiting for %d worker(s) to join", places-1)
		}
	}

	t.detector.Start()
	return nil
}

// joinTimeout bounds how long Start waits for worker handshakes:
// generous enough for process spawn under load, far from interactive
// annoyance when a worker binary is broken.
func joinTimeout(places int) time.Duration {
	d := 10*time.Second + time.Duration(places)*100*time.Millisecond
	return d
}

// spawnWorker re-executes the current binary as the body of place p.
// The child's RGML_TCP_WORKER environment routes it into MaybeWorker
// before any of its own main logic runs.
func (t *Transport) spawnWorker(p int) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("tcp: resolve own executable: %w", err)
	}
	spec := fmt.Sprintf("%s|%d|%d|%d", t.ln.Addr().String(), p, int64(t.interval), int64(t.timeout))
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerEnv+"="+spec)
	cmd.Stdout = os.Stderr // worker noise must not corrupt coordinator stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("tcp: spawn worker for place %d: %w", p, err)
	}
	t.mu.Lock()
	if w := t.workers[p]; w != nil {
		// Handshake already landed; just attach the process handle.
		w.proc = cmd.Process
	} else {
		t.workers[p] = &worker{place: p, proc: cmd.Process}
	}
	t.mu.Unlock()
	// Reap on exit so dead workers never linger as zombies.
	go cmd.Wait()
	return nil
}

// acceptLoop admits worker connections and performs the HELLO handshake.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		t.wg.Add(1)
		go t.admit(conn)
	}
}

// admit handshakes one inbound connection and, on success, registers the
// worker and starts its read loop.
func (t *Transport) admit(conn net.Conn) {
	defer t.wg.Done()
	fc := newFrameConn(conn)
	var hello frame
	if _, err := fc.read(&hello); err != nil || hello.Type != fHello {
		fc.close()
		return
	}
	if hello.Ver != wireVersion {
		// A peer speaking another stream format would desync the
		// persistent codec after this very frame; reject it loudly rather
		// than misdecode later.
		t.instr.helloRejected.Inc()
		t.reg.Trace("tcp.hello_rejected", int64(hello.From), int64(hello.Ver))
		fc.close()
		return
	}
	p := int(hello.From)
	t.mu.Lock()
	if t.closed || p <= 0 {
		t.mu.Unlock()
		fc.close()
		return
	}
	w := t.workers[p]
	if w == nil {
		w = &worker{place: p}
		t.workers[p] = w
	}
	if w.fc != nil {
		// Duplicate claim for a place that already has a live body.
		t.mu.Unlock()
		fc.close()
		return
	}
	w.fc = fc
	t.detector.Watch(p)
	joined := t.allJoinedLocked()
	t.mu.Unlock()
	if joined {
		t.signalJoined()
	}
	t.wg.Add(1)
	go t.readLoop(w)
}

// body snapshots a place's worker handles under the lock: fc and proc
// are each assigned once (by admit and spawnWorker, both lock-holding),
// so a snapshot stays valid, but reading the fields without the lock
// would race those assignments.
func (t *Transport) body(place int) (fc *frameConn, proc *os.Process) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.workers[place]; w != nil {
		fc, proc = w.fc, w.proc
	}
	return fc, proc
}

// allJoinedLocked reports whether every place below the initial count has
// a connected body. Caller holds t.mu.
func (t *Transport) allJoinedLocked() bool {
	for p := 1; p < t.places; p++ {
		w := t.workers[p]
		if w == nil || w.fc == nil {
			return false
		}
	}
	return true
}

// signalJoined closes the joined gate exactly once (a late re-join must
// not close it twice).
func (t *Transport) signalJoined() {
	t.joinOnce.Do(func() { close(t.joined) })
}

// readLoop drains one worker's frames: heartbeats feed the detector,
// connection errors are failure reports.
func (t *Transport) readLoop(w *worker) {
	defer t.wg.Done()
	for {
		var f frame
		n, err := w.fc.read(&f)
		if err != nil {
			t.connLost(w.place)
			return
		}
		t.instr.frames.Inc()
		t.instr.wireBytes.Add(int64(n))
		switch f.Type {
		case fHeartbeat:
			t.instr.heartbeats.Inc()
			t.detector.Beat(w.place)
		case fResult:
			t.resolve(f.Seq, f.Result)
		default:
			// No other worker-originated traffic exists; ignore
			// forward-compatible frames.
		}
	}
}

// resolve delivers a result (nil = dispatch failed) to the pending
// kernel dispatch it answers. Unknown seqs are ignored: the dispatch may
// already have been failed by a death racing the result.
func (t *Transport) resolve(seq uint64, res *kernel.Result) {
	t.pmu.Lock()
	p := t.pending[seq]
	delete(t.pending, seq)
	t.pmu.Unlock()
	if p != nil {
		p.ch <- res
	}
}

// failPending fails every in-flight kernel dispatch, or — when place is
// non-negative — only those targeting that place. Exec's waiters observe
// a nil result and surface a transport error, which the runtime answers
// with coordinator-resident re-execution.
func (t *Transport) failPending(place int) {
	t.pmu.Lock()
	var victims []*pendingTask
	for seq, p := range t.pending {
		if place < 0 || p.place == place {
			victims = append(victims, p)
			delete(t.pending, seq)
		}
	}
	t.pmu.Unlock()
	for _, p := range victims {
		t.instr.taskFailures.Inc()
		p.ch <- nil
	}
}

// connLost handles a broken worker connection: faster than any heartbeat
// timeout, and deduped against it (and against administrative kills)
// through the detector's dead set.
func (t *Transport) connLost(place int) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	t.failPending(place)
	if t.detector.MarkDead(place) {
		t.instr.deaths.Inc()
		if t.handler.PlaceDead != nil {
			t.handler.PlaceDead(place, transport.CauseConn)
		}
	}
}

// placeDead is the detector's timeout callback.
func (t *Transport) placeDead(place int, cause transport.DeathCause) {
	t.instr.deaths.Inc()
	t.failPending(place)
	if fc, _ := t.body(place); fc != nil {
		fc.close()
	}
	if t.handler.PlaceDead != nil {
		t.handler.PlaceDead(place, cause)
	}
}

// Send implements transport.Transport. With the data plane
// coordinator-resident, every logical hop between places a and b is
// realized as one frame on the wire of the non-coordinator endpoint
// (a↔0 traffic rides a's own wire; a↔b traffic rides b's), so wire
// volume tracks the logical traffic a fully distributed backend would
// carry. Sends are fire-and-forget: TCP's per-connection FIFO provides
// the ordering guarantee for control messages, and delivery to a dying
// place is reported by the failure detector, not the send path.
func (t *Transport) Send(from, to int, class transport.Class, size int, payload []byte) (time.Duration, error) {
	if from == to {
		return 0, nil
	}
	ep := to
	if ep == 0 {
		ep = from
	}
	t.mu.Lock()
	closed := t.closed
	var fc *frameConn
	if w := t.workers[ep]; w != nil {
		fc = w.fc
	}
	t.mu.Unlock()
	if closed {
		return 0, errors.New("tcp: transport closed")
	}
	if fc == nil || t.detector.Dead(ep) {
		return 0, fmt.Errorf("tcp: place %d has no live body", ep)
	}
	start := time.Now()
	f := frame{
		Type:    fData,
		From:    int32(from),
		To:      int32(to),
		Class:   uint8(class),
		Size:    int64(size),
		Payload: payload,
	}
	n, err := fc.write(&f)
	if err != nil {
		t.connLost(ep)
		return 0, fmt.Errorf("tcp: send to place %d: %w", ep, err)
	}
	t.instr.frames.Inc()
	// wireBytes is the frame's real footprint (prefix + gob body, which
	// also carries From/To/Class/Size and any payload) as reported by
	// write; the declared logical size — what the NetModel accounts —
	// lands in its own counter so the two stay comparable but distinct.
	t.instr.wireBytes.Add(int64(n))
	t.instr.logicalBytes.Add(int64(4 + size))
	return time.Since(start), nil
}

// Exec implements transport.Executor: ship t to the worker process
// embodying t.Place as an fTask frame and block until its fResult (or
// the place's death) resolves it. Exec(nil) is the runtime's capability
// probe and succeeds without touching any wire.
func (t *Transport) Exec(task *kernel.Task) (*kernel.Result, error) {
	if task == nil {
		return nil, nil
	}
	place := int(task.Place)
	t.mu.Lock()
	closed := t.closed
	var fc *frameConn
	if w := t.workers[place]; w != nil {
		fc = w.fc
	}
	t.mu.Unlock()
	if closed {
		return nil, errors.New("tcp: transport closed")
	}
	if place <= 0 || fc == nil || t.detector.Dead(place) {
		return nil, fmt.Errorf("tcp: place %d has no live body", place)
	}
	seq := t.nextSeq.Add(1)
	p := &pendingTask{place: place, ch: make(chan *kernel.Result, 1)}
	// Register before writing: the result (or a death report) may land
	// before write even returns.
	t.pmu.Lock()
	t.pending[seq] = p
	t.pmu.Unlock()
	n, err := fc.write(&frame{Type: fTask, To: int32(place), Seq: seq, Task: task})
	if err != nil {
		t.pmu.Lock()
		delete(t.pending, seq)
		t.pmu.Unlock()
		t.connLost(place)
		return nil, fmt.Errorf("tcp: dispatch to place %d: %w", place, err)
	}
	t.instr.frames.Inc()
	t.instr.wireBytes.Add(int64(n))
	t.instr.tasks.Inc()
	res := <-p.ch
	if res == nil {
		return nil, fmt.Errorf("tcp: place %d died before returning kernel %q", place, task.Name)
	}
	return res, nil
}

// Kill implements transport.Transport: administratively fail-stop the
// worker body of a place the runtime has already marked dead. The
// detector is told first so neither the closing connection nor the
// stopping heartbeats produce a redundant death report.
func (t *Transport) Kill(place int) error {
	if place == 0 {
		return errors.New("tcp: cannot kill the coordinator (place 0)")
	}
	t.detector.MarkDead(place)
	t.failPending(place)
	fc, proc := t.body(place)
	if fc != nil {
		// Best effort: ask the worker to exit, then cut the wire. A
		// failed ask still ends in proc.Kill, but record it — a run whose
		// kills all degrade to SIGKILL is telling us something.
		if _, err := fc.write(&frame{Type: fKill, To: int32(place)}); err != nil {
			t.instr.killWriteErrs.Inc()
			t.reg.Trace("tcp.kill_write_error", int64(place), 0)
		}
		fc.close()
	}
	if proc != nil {
		proc.Kill()
	}
	return nil
}

// KillWorkerProcess SIGKILLs the OS process embodying a place WITHOUT
// telling the detector — simulating a real crash that the heartbeat
// timeout or connection reset must discover. Only meaningful for
// self-spawned workers; tests and the tcp-smoke gate use it.
func (t *Transport) KillWorkerProcess(place int) error {
	_, proc := t.body(place)
	if proc == nil {
		return fmt.Errorf("tcp: place %d has no spawned worker process", place)
	}
	return proc.Kill()
}

// Grow implements transport.Transport: spawn bodies for n new places,
// numbered densely after the existing ones. External-join mode cannot
// conjure processes and returns an error.
func (t *Transport) Grow(n int) error {
	if n <= 0 {
		return nil
	}
	if t.external != 0 {
		return errors.New("tcp: cannot grow with externally-joined workers")
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("tcp: transport closed")
	}
	base := t.places
	t.places += n
	t.mu.Unlock()
	for p := base; p < base+n; p++ {
		if err := t.spawnWorker(p); err != nil {
			return err
		}
	}
	// Watch begins at handshake (admit); new workers join asynchronously.
	// The runtime's view of the place is live immediately, matching the
	// local backend; a worker that never manages to join is eventually
	// reported dead by the detector once its handshake lands — or stays
	// unwatched, in which case Sends to it fail loudly.
	return nil
}

// Close implements transport.Transport: stop detection, dismiss workers,
// tear down the listener, and reap.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	type handles struct {
		place int
		fc    *frameConn
		proc  *os.Process
	}
	workers := make([]handles, 0, len(t.workers))
	for _, w := range t.workers {
		workers = append(workers, handles{w.place, w.fc, w.proc})
	}
	t.mu.Unlock()
	if t.detector != nil {
		t.detector.Stop()
	}
	t.failPending(-1)
	for _, w := range workers {
		if w.fc != nil {
			w.fc.write(&frame{Type: fBye, To: int32(w.place)})
			w.fc.close()
		}
	}
	if t.ln != nil {
		t.ln.Close()
	}
	// Give workers a moment to exit on fBye, then force the stragglers.
	deadline := time.Now().Add(2 * time.Second)
	for _, w := range workers {
		if w.proc == nil {
			continue
		}
		for time.Now().Before(deadline) {
			if err := w.proc.Signal(syscall.Signal(0)); err != nil {
				break // already gone
			}
			time.Sleep(10 * time.Millisecond)
		}
		w.proc.Kill()
	}
	t.wg.Wait()
	return nil
}

// parseWorkerSpec decodes the RGML_TCP_WORKER value:
// "addr|place|intervalNs|timeoutNs".
func parseWorkerSpec(spec string) (addr string, place int, interval, timeout time.Duration, err error) {
	parts := strings.Split(spec, "|")
	if len(parts) != 4 {
		return "", 0, 0, 0, fmt.Errorf("tcp: malformed %s=%q", workerEnv, spec)
	}
	addr = parts[0]
	place, err = strconv.Atoi(parts[1])
	if err != nil || place <= 0 {
		return "", 0, 0, 0, fmt.Errorf("tcp: bad place in %s=%q", workerEnv, spec)
	}
	iv, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("tcp: bad interval in %s=%q", workerEnv, spec)
	}
	to, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("tcp: bad timeout in %s=%q", workerEnv, spec)
	}
	return addr, place, time.Duration(iv), time.Duration(to), nil
}

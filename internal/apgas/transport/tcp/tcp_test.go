package tcp_test

import (
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/apgas/transport/tcp"
)

// TestMain routes self-spawned invocations of this test binary into the
// worker protocol: the coordinator under test re-executes os.Executable()
// — which is the test binary — with RGML_TCP_WORKER set, and MaybeWorker
// turns that copy into a place body instead of a second test run.
func TestMain(m *testing.M) {
	tcp.MaybeWorker()
	os.Exit(m.Run())
}

// fastHeartbeat keeps multi-process tests snappy without flaking: the
// timeout is 10x the interval, far above scheduler jitter.
func fastHeartbeat() tcp.Option {
	// A short interval keeps real-death detection snappy (SIGKILL is
	// usually reported by connection reset anyway), while the generous
	// timeout absorbs scheduler stalls under -race so a slow beat never
	// becomes a spurious death.
	return tcp.WithHeartbeat(10*time.Millisecond, 2*time.Second)
}

func TestStartSendClose(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	deaths := make(chan int, 8)
	err := tr.Start(4, transport.Handler{
		PlaceDead: func(p int, c transport.DeathCause) { deaths <- p },
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	if tr.Name() != "tcp" {
		t.Fatalf("Name() = %q", tr.Name())
	}
	// Declared-size traffic to every worker, and the return direction.
	for p := 1; p < 4; p++ {
		if _, err := tr.Send(0, p, transport.ClassTask, 0, nil); err != nil {
			t.Fatalf("Send(0->%d): %v", p, err)
		}
		if _, err := tr.Send(p, 0, transport.ClassControl, 64, nil); err != nil {
			t.Fatalf("Send(%d->0): %v", p, err)
		}
	}
	// Worker-to-worker traffic rides the non-coordinator endpoint's wire.
	if _, err := tr.Send(1, 2, transport.ClassSnapshot, 5, []byte("hello")); err != nil {
		t.Fatalf("Send(1->2): %v", err)
	}
	// Intra-place is free.
	if d, err := tr.Send(2, 2, transport.ClassData, 1<<20, nil); err != nil || d != 0 {
		t.Fatalf("Send(2->2) = %v, %v; want 0, nil", d, err)
	}
	select {
	case p := <-deaths:
		t.Fatalf("unexpected death report for place %d", p)
	default:
	}
}

func TestAdministrativeKillSuppressed(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	deaths := make(chan int, 8)
	if err := tr.Start(3, transport.Handler{
		PlaceDead: func(p int, c transport.DeathCause) { deaths <- p },
	}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	if err := tr.Kill(2); err != nil {
		t.Fatalf("Kill(2): %v", err)
	}
	// An administrative kill must never produce a detector report — the
	// runtime already knows. Wait out several timeout windows.
	select {
	case p := <-deaths:
		t.Fatalf("administrative kill of place 2 leaked a death report for place %d", p)
	case <-time.After(400 * time.Millisecond):
	}
	if _, err := tr.Send(0, 2, transport.ClassTask, 0, nil); err == nil {
		t.Fatal("Send to killed place succeeded; want error")
	}
	// The surviving worker is untouched.
	if _, err := tr.Send(0, 1, transport.ClassTask, 0, nil); err != nil {
		t.Fatalf("Send to surviving place 1: %v", err)
	}
}

func TestRealProcessKillDetected(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	type death struct {
		place int
		cause transport.DeathCause
	}
	deaths := make(chan death, 8)
	if err := tr.Start(3, transport.Handler{
		PlaceDead: func(p int, c transport.DeathCause) { deaths <- death{p, c} },
	}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()

	if err := tr.KillWorkerProcess(1); err != nil {
		t.Fatalf("KillWorkerProcess(1): %v", err)
	}
	select {
	case d := <-deaths:
		if d.place != 1 {
			t.Fatalf("death reported for place %d, want 1", d.place)
		}
		if d.cause != transport.CauseConn && d.cause != transport.CauseTimeout {
			t.Fatalf("death cause = %v, want conn or timeout", d.cause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("real process kill never detected")
	}
	// Exactly one report.
	select {
	case d := <-deaths:
		t.Fatalf("duplicate death report: %+v", d)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestGrow(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	if err := tr.Start(2, transport.Handler{}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close()
	if err := tr.Grow(2); err != nil {
		t.Fatalf("Grow(2): %v", err)
	}
	// New workers join asynchronously; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := tr.Send(0, 3, transport.ClassTask, 0, nil)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grown place 3 never became sendable: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExternalWorkersJoin covers the externally-managed worker mode (the
// rgmlrun -serve-place path): the coordinator spawns nothing and waits
// for ServeWorker joins; growth is impossible because the transport
// cannot conjure external processes.
func TestExternalWorkersJoin(t *testing.T) {
	tr := tcp.New(fastHeartbeat(), tcp.WithExternalWorkers())
	started := make(chan error, 1)
	go func() { started <- tr.Start(3, transport.Handler{}) }()
	// The listener is up before Start blocks on the join gate.
	deadline := time.Now().Add(5 * time.Second)
	for tr.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	for p := 1; p < 3; p++ {
		p := p
		go func() {
			if err := tcp.ServeWorker(tr.Addr(), p, 10*time.Millisecond, 2*time.Second); err != nil {
				t.Errorf("ServeWorker(%d): %v", p, err)
			}
		}()
	}
	select {
	case err := <-started:
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Start never returned after workers joined")
	}
	defer tr.Close()
	for p := 1; p < 3; p++ {
		if _, err := tr.Send(0, p, transport.ClassTask, 0, nil); err != nil {
			t.Fatalf("Send(0->%d): %v", p, err)
		}
	}
	if err := tr.Grow(1); err == nil {
		t.Fatal("Grow succeeded in external-workers mode; want error")
	}
}

// TestRuntimeOverTCP drives the full apgas runtime over the tcp backend:
// finish/async across places, an administrative kill surfacing
// DeadPlaceError, and clean shutdown.
func TestRuntimeOverTCP(t *testing.T) {
	rt, err := apgas.New(
		apgas.WithPlaces(4),
		apgas.WithResilient(true),
		apgas.WithTransport(tcp.New(fastHeartbeat())),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	if rt.TransportName() != "tcp" {
		t.Fatalf("TransportName() = %q", rt.TransportName())
	}
	var ran [4]bool
	var mu sync.Mutex
	err = rt.Finish(func(ctx *apgas.Ctx) {
		for _, p := range rt.World() {
			p := p
			ctx.AsyncAt(p, func(c *apgas.Ctx) {
				mu.Lock()
				ran[c.Here.ID] = true
				mu.Unlock()
			})
		}
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("task never ran at place %d", i)
		}
	}

	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(2), func(c *apgas.Ctx) {})
	})
	var dpe *apgas.DeadPlaceError
	if !errors.As(err, &dpe) || dpe.Place.ID != 2 {
		t.Fatalf("Finish after kill = %v, want DeadPlaceError{place 2}", err)
	}
}

// TestRuntimeDetectsRealDeath kills a worker process behind the runtime's
// back and verifies the failure detector feeds the dead-place broadcast
// path: IsDead flips and tasks at the corpse observe DeadPlaceError.
func TestRuntimeDetectsRealDeath(t *testing.T) {
	tr := tcp.New(fastHeartbeat())
	rt, err := apgas.New(
		apgas.WithPlaces(3),
		apgas.WithResilient(true),
		apgas.WithTransport(tr),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	if err := tr.KillWorkerProcess(1); err != nil {
		t.Fatalf("KillWorkerProcess: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for !rt.IsDead(rt.Place(1)) {
		if time.Now().After(deadline) {
			t.Fatal("runtime never observed the real worker death")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := rt.Stats().PlacesFailed; got != 1 {
		t.Fatalf("Stats().PlacesFailed = %d, want 1", got)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *apgas.Ctx) {})
	})
	var dpe *apgas.DeadPlaceError
	if !errors.As(err, &dpe) || dpe.Place.ID != 1 {
		t.Fatalf("Finish at corpse = %v, want DeadPlaceError{place 1}", err)
	}
}

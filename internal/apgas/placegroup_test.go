package apgas

import (
	"testing"
	"testing/quick"
)

func pg(ids ...int) PlaceGroup {
	g := make(PlaceGroup, len(ids))
	for i, id := range ids {
		g[i] = Place{ID: id}
	}
	return g
}

func TestPlaceGroupBasics(t *testing.T) {
	g := pg(0, 1, 2, 3)
	if g.Size() != 4 {
		t.Errorf("Size = %d", g.Size())
	}
	if !g.Contains(Place{ID: 2}) || g.Contains(Place{ID: 9}) {
		t.Error("Contains wrong")
	}
	if g.IndexOf(Place{ID: 3}) != 3 || g.IndexOf(Place{ID: 7}) != -1 {
		t.Error("IndexOf wrong")
	}
	c := g.Clone()
	c[0] = Place{ID: 99}
	if g[0].ID == 99 {
		t.Error("Clone is not independent")
	}
	if g.String() != "places[0,1,2,3]" {
		t.Errorf("String = %q", g.String())
	}
}

func TestPlaceGroupWithout(t *testing.T) {
	g := pg(0, 1, 2, 3, 4)
	got := g.Without(Place{ID: 1}, Place{ID: 3})
	if !got.Equal(pg(0, 2, 4)) {
		t.Errorf("Without = %v", got)
	}
	// Removing an absent place is a no-op.
	if !g.Without(Place{ID: 42}).Equal(g) {
		t.Error("Without(absent) changed the group")
	}
	// Original untouched.
	if !g.Equal(pg(0, 1, 2, 3, 4)) {
		t.Error("Without mutated receiver")
	}
}

func TestPlaceGroupReplace(t *testing.T) {
	g := pg(0, 1, 2, 3)
	got, err := g.Replace([]Place{{ID: 1}, {ID: 3}}, []Place{{ID: 8}, {ID: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(pg(0, 8, 2, 9)) {
		t.Errorf("Replace = %v", got)
	}
	// Not enough spares.
	if _, err := g.Replace([]Place{{ID: 1}, {ID: 2}}, []Place{{ID: 8}}); err == nil {
		t.Error("expected error for insufficient spares")
	}
	// Dead place not in group.
	if _, err := g.Replace([]Place{{ID: 42}}, []Place{{ID: 8}}); err == nil {
		t.Error("expected error for non-member dead place")
	}
}

func TestPlaceGroupEqual(t *testing.T) {
	if !pg(1, 2).Equal(pg(1, 2)) {
		t.Error("equal groups reported unequal")
	}
	if pg(1, 2).Equal(pg(2, 1)) {
		t.Error("order must matter")
	}
	if pg(1).Equal(pg(1, 2)) {
		t.Error("length must matter")
	}
}

// Property: for any subset of members removed, Without yields a group that
// excludes exactly those members and preserves relative order.
func TestPlaceGroupWithoutProperty(t *testing.T) {
	f := func(n uint8, mask uint16) bool {
		size := int(n%12) + 1
		g := make(PlaceGroup, size)
		for i := range g {
			g[i] = Place{ID: i}
		}
		var dead []Place
		for i := 0; i < size; i++ {
			if mask&(1<<i) != 0 {
				dead = append(dead, Place{ID: i})
			}
		}
		got := g.Without(dead...)
		if got.Size() != size-len(dead) {
			return false
		}
		prev := -1
		for _, p := range got {
			for _, d := range dead {
				if p.ID == d.ID {
					return false
				}
			}
			if p.ID <= prev {
				return false
			}
			prev = p.ID
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Replace preserves group size and replaces dead members
// in-position with spares, in order.
func TestPlaceGroupReplaceProperty(t *testing.T) {
	f := func(n uint8, mask uint16) bool {
		size := int(n%12) + 1
		g := make(PlaceGroup, size)
		for i := range g {
			g[i] = Place{ID: i}
		}
		var dead []Place
		for i := 0; i < size; i++ {
			if mask&(1<<i) != 0 {
				dead = append(dead, Place{ID: i})
			}
		}
		spares := make([]Place, len(dead))
		for i := range spares {
			spares[i] = Place{ID: 100 + i}
		}
		got, err := g.Replace(dead, spares)
		if err != nil {
			return false
		}
		if got.Size() != size {
			return false
		}
		next := 0
		for i, p := range g {
			isDead := false
			for _, d := range dead {
				if p.ID == d.ID {
					isDead = true
				}
			}
			if isDead {
				if got[i].ID != 100+next {
					return false
				}
				next++
			} else if got[i].ID != p.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeadPlacesExtraction(t *testing.T) {
	err := combineErrors([]error{
		&DeadPlaceError{Place: Place{ID: 3}},
		&DeadPlaceError{Place: Place{ID: 1}},
		&DeadPlaceError{Place: Place{ID: 3}},
	})
	got := DeadPlaces(err)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("DeadPlaces = %v, want [1 3]", got)
	}
	if DeadPlaces(nil) != nil && len(DeadPlaces(nil)) != 0 {
		t.Error("DeadPlaces(nil) should be empty")
	}
	if len(DeadPlaces(ErrShutdown)) != 0 {
		t.Error("unrelated error should yield no dead places")
	}
}

func TestCombineErrors(t *testing.T) {
	if combineErrors(nil) != nil {
		t.Error("empty combine should be nil")
	}
	e := &DeadPlaceError{Place: Place{ID: 1}}
	if combineErrors([]error{e}) != e {
		t.Error("single error should pass through")
	}
	m := combineErrors([]error{e, e})
	if _, ok := m.(*MultiError); !ok {
		t.Errorf("want MultiError, got %T", m)
	}
	if m.Error() == "" {
		t.Error("empty message")
	}
}

func TestDeadPlaceErrorMessage(t *testing.T) {
	e := &DeadPlaceError{Place: Place{ID: 7}}
	if e.Error() != "apgas: dead place 7" {
		t.Errorf("Error = %q", e.Error())
	}
	if !IsDeadPlace(e) {
		t.Error("IsDeadPlace(e) = false")
	}
}

package apgas_test

import (
	"context"
	"errors"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
)

// TestNewOptionsConstruction checks the functional-options constructor
// against the Config shim's behaviour.
func TestNewOptionsConstruction(t *testing.T) {
	rt, err := apgas.New(apgas.WithPlaces(3), apgas.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if rt.NumPlaces() != 3 {
		t.Errorf("NumPlaces = %d, want 3", rt.NumPlaces())
	}
	if !rt.Resilient() {
		t.Error("WithResilient(true) not applied")
	}
	// Zero options: a single non-resilient place, same as Config{Places: 1}.
	rt2, err := apgas.New()
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Shutdown()
	if rt2.NumPlaces() != 1 || rt2.Resilient() {
		t.Errorf("zero-option runtime: places=%d resilient=%v", rt2.NumPlaces(), rt2.Resilient())
	}
}

// TestFinishContextBackground checks that a context that can never be
// canceled takes the plain Finish path.
func TestFinishContextBackground(t *testing.T) {
	rt, err := apgas.New(apgas.WithPlaces(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	ran := false
	if err := rt.FinishContext(context.Background(), func(c *apgas.Ctx) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
}

// TestFinishContextCancel checks that cancellation surfaces as a typed
// ErrCanceled instead of a hang, while the finish itself drains in the
// background.
func TestFinishContextCancel(t *testing.T) {
	rt, err := apgas.New(apgas.WithPlaces(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- rt.FinishContext(ctx, func(c *apgas.Ctx) {
			c.AsyncAt(rt.Place(1), func(c2 *apgas.Ctx) { <-release })
		})
	}()
	cancel()
	err = <-errc
	if !errors.Is(err, apgas.ErrCanceled) {
		t.Fatalf("FinishContext = %v, want ErrCanceled", err)
	}
	close(release) // let the abandoned finish drain before Shutdown
}

// TestFinishContextPreCanceled checks the dead-on-arrival fast path.
func TestFinishContextPreCanceled(t *testing.T) {
	rt, err := apgas.New(apgas.WithPlaces(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err = rt.FinishContext(ctx, func(c *apgas.Ctx) { ran = true })
	if !errors.Is(err, apgas.ErrCanceled) {
		t.Fatalf("FinishContext = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("body ran despite pre-canceled context")
	}
}

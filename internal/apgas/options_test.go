package apgas

import (
	"errors"
	"testing"
)

func TestWithLedgerQueueRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		rt, err := New(WithPlaces(2), WithResilient(true), WithLedgerQueue(n))
		if err == nil {
			rt.Shutdown()
			t.Fatalf("WithLedgerQueue(%d) accepted", n)
		}
		if !errors.Is(err, ErrBadOption) {
			t.Fatalf("WithLedgerQueue(%d): error %v does not wrap ErrBadOption", n, err)
		}
	}
}

func TestWithLedgerQueueAcceptsPositive(t *testing.T) {
	rt, err := New(WithPlaces(2), WithResilient(true), WithLedgerQueue(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if got := rt.cfg.LedgerQueue; got != 8 {
		t.Fatalf("LedgerQueue = %d, want 8", got)
	}
}

func TestWithFinishModeRejectsUnknown(t *testing.T) {
	rt, err := New(WithPlaces(2), WithResilient(true), WithFinishMode(FinishMode(42)))
	if err == nil {
		rt.Shutdown()
		t.Fatal("unknown finish mode accepted")
	}
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("error %v does not wrap ErrBadOption", err)
	}
}

func TestFirstOptionErrorWins(t *testing.T) {
	// Two bad options: the surfaced error is the first one recorded, and
	// later valid options do not launder it away.
	_, err := New(
		WithPlaces(2),
		WithLedgerQueue(-1),
		WithFinishMode(FinishMode(9)),
		WithResilient(true),
	)
	if err == nil {
		t.Fatal("construction with bad options succeeded")
	}
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("error %v does not wrap ErrBadOption", err)
	}
}

func TestWithStorePolicyValidation(t *testing.T) {
	if _, err := New(WithPlaces(2), WithStorePolicy(StorePolicy{Placement: PlacementReplicate, Replicas: -1})); !errors.Is(err, ErrBadOption) {
		t.Fatalf("negative replicas: err=%v, want ErrBadOption", err)
	}
	if _, err := New(WithPlaces(2), WithStorePolicy(ErasureStore(200, 100))); !errors.Is(err, ErrBadOption) {
		t.Fatalf("d+p>255: err=%v, want ErrBadOption", err)
	}
	if _, err := New(WithPlaces(2), WithStorePolicy(StorePolicy{Placement: Placement(7)})); !errors.Is(err, ErrBadOption) {
		t.Fatalf("unknown placement: err=%v, want ErrBadOption", err)
	}
	rt, err := New(WithPlaces(2), WithStorePolicy(ReplicateStore(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if got := rt.StorePolicy(); got.Replicas != 3 || got.Placement != PlacementReplicate {
		t.Fatalf("StorePolicy() = %+v", got)
	}
}

func TestStorePolicyDefaultsAndStrings(t *testing.T) {
	var zero StorePolicy
	if !zero.IsZero() {
		t.Fatal("zero policy not IsZero")
	}
	if got := zero.Normalized(); got.Replicas != 2 {
		t.Fatalf("zero policy normalizes to k=%d, want 2", got.Replicas)
	}
	if got := ErasureStore(0, 0).Normalized(); got.DataShards != 4 || got.ParityShards != 1 {
		t.Fatalf("erasure defaults = d%d p%d, want d4 p1", got.DataShards, got.ParityShards)
	}
	if s := ReplicateStore(3).String(); s != "replicate(k=3)" {
		t.Fatalf("String() = %q", s)
	}
	if s := ErasureStore(2, 2).String(); s != "erasure(d=2,p=2)" {
		t.Fatalf("String() = %q", s)
	}
	if got := ErasureStore(2, 2).Tolerance(); got != 2 {
		t.Fatalf("Tolerance() = %d, want 2", got)
	}
	if got := ReplicateStore(3).Width(); got != 3 {
		t.Fatalf("Width() = %d, want 3", got)
	}
	if p, err := ParsePlacement("erasure"); err != nil || p != PlacementErasure {
		t.Fatalf("ParsePlacement(erasure) = %v, %v", p, err)
	}
	if _, err := ParsePlacement("bogus"); !errors.Is(err, ErrBadOption) {
		t.Fatalf("ParsePlacement(bogus): err=%v, want ErrBadOption", err)
	}
}

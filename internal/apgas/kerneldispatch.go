package apgas

import (
	"fmt"
	"sync"

	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/apgas/transport"
)

// The registered-kernel data plane. Closures cannot cross process
// boundaries, so task bodies that should execute inside a worker process
// are expressed as registered kernels (internal/apgas/kernel): named pure
// functions over a task descriptor and a per-place data store. A Ctx
// dispatches them with ExecKernel; on a backend with a distributed data
// plane (transport/tcp) the kernel runs inside the place's worker
// process, and on any other backend — or whenever the remote side fails
// mid-dispatch — it runs at the coordinator against an equivalent store,
// which the kernel purity contract makes bit-identical.
//
// ExecKernel deliberately performs NO hop/NetModel accounting: the call
// sites that adopt it (dist.MultVec, DupVector.Sync, snapshot replica
// puts) already charge their logical traffic exactly as the closure path
// does, so apgas-level counters — and with them chaos fingerprints and
// cross-backend NetModel invariance — are unchanged by where the kernel
// physically ran. Only transport-level wire counters may differ.

// RegisterKernel registers a named kernel in the process-global registry
// (see kernel.Register). Call it from package init so the re-exec'd
// worker binary resolves the same names the coordinator dispatches.
func RegisterKernel(name string, fn kernel.Func) { kernel.Register(name, fn) }

// mirrorKey identifies one store entry in the coordinator's per-place
// shipped-version mirror.
type mirrorKey struct {
	handle uint64
	key    int64
}

// kernDispatch is the runtime's dispatch state: the transport's executor
// capability (nil without a distributed data plane), a per-place mirror
// of which entry versions have been shipped to each worker body (so an
// unchanged matrix block crosses the wire once, not once per iteration),
// and per-place coordinator-resident stores for fallback execution.
type kernDispatch struct {
	ex transport.Executor

	mu     sync.Mutex
	mirror map[int]map[mirrorKey]uint64
	stores map[int]*kernel.Store
}

func (k *kernDispatch) init(ex transport.Executor) {
	k.ex = ex
	k.mirror = make(map[int]map[mirrorKey]uint64)
	k.stores = make(map[int]*kernel.Store)
}

// shipped reports whether place's worker body is known to hold
// (handle, key) at exactly ver.
func (k *kernDispatch) shipped(place int, handle uint64, key int64, ver uint64) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.mirror[place][mirrorKey{handle, key}]
	return ok && v == ver
}

// commit records that the blobs have landed in place's worker body (its
// executor applied them before answering, so a successful Exec is the
// acknowledgement).
func (k *kernDispatch) commit(place int, puts []kernel.Blob) {
	if len(puts) == 0 {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	m := k.mirror[place]
	if m == nil {
		m = make(map[mirrorKey]uint64)
		k.mirror[place] = m
	}
	for _, b := range puts {
		m[mirrorKey{b.Handle, b.Key}] = b.Ver
	}
}

// store returns place's coordinator-resident kernel store, creating it
// on first use.
func (k *kernDispatch) store(place int) *kernel.Store {
	k.mu.Lock()
	defer k.mu.Unlock()
	s := k.stores[place]
	if s == nil {
		s = kernel.NewStore()
		k.stores[place] = s
	}
	return s
}

// placeDead drops everything known about a dead place: its worker body's
// cache is gone with the process, and the place's coordinator store dies
// with the place exactly as its apgas store does.
func (k *kernDispatch) placeDead(place int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.mirror, place)
	delete(k.stores, place)
}

// KernelDispatch reports whether the runtime's backend executes
// registered kernels inside worker processes. Call sites use it to keep
// the plain-closure path — zero encode overhead, bit-identical by
// construction — on backends without a data plane.
func (c *Ctx) KernelDispatch() bool { return c.rt.kern.ex != nil }

// ExecKernel runs registered kernel task t at the task's current place,
// resolving inputs into task refs and shipping only the blobs the
// executing store does not already hold at the declared version. Puts
// already present on t are unconditional installs: they ship (and apply)
// regardless of what the mirror believes, which is how call sites push
// content that changed under an unchanged version (DupVector.Sync
// republishes the root value without bumping it). On a
// data-plane backend the kernel runs inside the place's worker process;
// on any other backend, or when the remote dispatch fails for any reason
// (worker death, broken wire, kernel-level error), it re-executes at the
// coordinator against an equivalent per-place store. The error return is
// therefore rare: it means even coordinator-resident execution failed,
// and callers should fall back to their closure path.
//
// Like every Ctx operation it throws DeadPlaceError when the place has
// died; unlike At/Transfer it charges no hops or bytes — its call sites
// keep their existing logical accounting, so NetModel numbers and chaos
// fingerprints are invariant to where the kernel ran.
func (c *Ctx) ExecKernel(t *kernel.Task, inputs ...kernel.Input) (*kernel.Result, error) {
	rt := c.rt
	rt.placeState(c.Here).checkAlive()
	place := c.Here.ID
	t.Place = int32(place)
	t.Refs = make([]kernel.Ref, len(inputs))
	for i, in := range inputs {
		t.Refs[i] = kernel.Ref{Handle: in.Handle, Key: in.Key, Ver: in.Ver}
	}
	k := &rt.kern
	forced := t.Puts

	// Remote leg: place zero IS the coordinator, so only non-zero places
	// have a worker body to dispatch into.
	if k.ex != nil && place != 0 {
		t.Puts = forced
		for _, in := range inputs {
			if !k.shipped(place, in.Handle, in.Key, in.Ver) {
				t.Puts = append(t.Puts, kernel.Blob{Handle: in.Handle, Key: in.Key, Ver: in.Ver, Data: in.Encode()})
			}
		}
		res, err := k.ex.Exec(t)
		if err == nil && res != nil && res.Err == "" {
			k.commit(place, t.Puts)
			rt.stats.WorkerTasks.Add(1)
			rt.instr.workerExec.Inc()
			return res, nil
		}
		// Any remote failure — transport or kernel-level — degrades to
		// coordinator execution. Kernels are pure, so the re-execution is
		// equivalent; the detector handles the death independently.
		rt.instr.kernelFallback.Inc()
		rt.cfg.Obs.Trace("apgas.kernel.fallback", int64(place), 0)
	}

	// Coordinator-resident leg. Forced puts are left on t for kernel.Run
	// to apply; versioned inputs install directly when the store lacks
	// them.
	st := k.store(place)
	t.Puts = forced
	for _, in := range inputs {
		if !st.Holds(in.Handle, in.Key, in.Ver) {
			st.Put(in.Handle, in.Key, in.Ver, in.Encode())
		}
	}
	res := kernel.Run(&kernel.Exec{Place: place, Store: st}, t)
	if res.Err != "" {
		return nil, fmt.Errorf("apgas: kernel %q at place %d: %s", t.Name, place, res.Err)
	}
	rt.instr.kernelLocal.Inc()
	return res, nil
}

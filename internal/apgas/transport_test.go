package apgas_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/obs"
)

// fakeTransport records traffic and hands the runtime's Handler back to
// the test, so transport-detected deaths can be injected directly.
type fakeTransport struct {
	mu      sync.Mutex
	handler transport.Handler
	sends   []fakeSend
	kills   []int
	grown   int
	closed  bool
}

type fakeSend struct {
	from, to int
	class    transport.Class
	size     int
	payload  []byte
}

func (f *fakeTransport) Name() string { return "fake" }

func (f *fakeTransport) Start(places int, h transport.Handler) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handler = h
	return nil
}

func (f *fakeTransport) Send(from, to int, class transport.Class, size int, payload []byte) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sends = append(f.sends, fakeSend{from, to, class, size, payload})
	return 0, nil
}

func (f *fakeTransport) Kill(place int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kills = append(f.kills, place)
	return nil
}

func (f *fakeTransport) Grow(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.grown += n
	return nil
}

func (f *fakeTransport) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *fakeTransport) placeDead(place int, cause transport.DeathCause) {
	f.mu.Lock()
	h := f.handler
	f.mu.Unlock()
	h.PlaceDead(place, cause)
}

func TestWithTransportNilRejected(t *testing.T) {
	_, err := apgas.New(apgas.WithTransport(nil))
	if !errors.Is(err, apgas.ErrBadOption) {
		t.Fatalf("New(WithTransport(nil)) = %v, want ErrBadOption", err)
	}
}

func TestTransportSeamTrafficAndLifecycle(t *testing.T) {
	ft := &fakeTransport{}
	reg := obs.NewRegistry()
	rt, err := apgas.New(
		apgas.WithPlaces(3),
		apgas.WithResilient(true),
		apgas.WithTransport(ft),
		apgas.WithObs(reg),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rt.TransportName() != "fake" {
		t.Fatalf("TransportName() = %q", rt.TransportName())
	}

	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(1), func(c *apgas.Ctx) {
			c.Transfer(rt.Place(2), 512)
			c.TransferBytes(rt.Place(2), []byte("snap"))
		})
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	ft.mu.Lock()
	var byClass [transport.NumClasses]int
	var sawPayload bool
	for _, s := range ft.sends {
		byClass[s.class]++
		if s.class == transport.ClassSnapshot && string(s.payload) == "snap" && s.size == 4 {
			sawPayload = true
		}
	}
	ft.mu.Unlock()
	if byClass[transport.ClassTask] == 0 {
		t.Fatal("no ClassTask traffic crossed the seam")
	}
	if byClass[transport.ClassControl] == 0 {
		t.Fatal("no ClassControl (ledger) traffic crossed the seam")
	}
	if byClass[transport.ClassData] != 1 {
		t.Fatalf("ClassData sends = %d, want 1", byClass[transport.ClassData])
	}
	if !sawPayload {
		t.Fatal("TransferBytes payload did not reach the transport")
	}
	// Per-class obs counters mirror what crossed.
	if got := reg.Counter("apgas.transport.data.bytes").Value(); got != 512 {
		t.Fatalf("apgas.transport.data.bytes = %d, want 512", got)
	}
	if got := reg.Counter("apgas.transport.snapshot.bytes").Value(); got != 4 {
		t.Fatalf("apgas.transport.snapshot.bytes = %d, want 4", got)
	}

	// Administrative kill reaches the backend after the runtime marked
	// the place dead.
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	ft.mu.Lock()
	kills := append([]int(nil), ft.kills...)
	ft.mu.Unlock()
	if len(kills) != 1 || kills[0] != 2 {
		t.Fatalf("transport kills = %v, want [2]", kills)
	}

	// AddPlaces grows the backend.
	if _, err := rt.AddPlaces(2); err != nil {
		t.Fatalf("AddPlaces: %v", err)
	}
	ft.mu.Lock()
	grown := ft.grown
	ft.mu.Unlock()
	if grown != 2 {
		t.Fatalf("transport grown = %d, want 2", grown)
	}

	rt.Shutdown()
	ft.mu.Lock()
	closed := ft.closed
	ft.mu.Unlock()
	if !closed {
		t.Fatal("Shutdown did not close the transport")
	}
}

// TestTransportDeathFeedsBroadcastPath injects detector-style death
// reports and verifies they ride the same dead-place machinery as kills:
// IsDead flips, orphan tasks observe DeadPlaceError, stats are counted
// once, and place zero plus duplicates are ignored.
func TestTransportDeathFeedsBroadcastPath(t *testing.T) {
	ft := &fakeTransport{}
	rt, err := apgas.New(
		apgas.WithPlaces(4),
		apgas.WithResilient(true),
		apgas.WithTransport(ft),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()

	ft.placeDead(3, transport.CauseTimeout)
	if !rt.IsDead(rt.Place(3)) {
		t.Fatal("transport-reported death did not mark the place dead")
	}
	s := rt.Stats()
	if s.PlacesFailed != 1 {
		t.Fatalf("PlacesFailed = %d, want 1", s.PlacesFailed)
	}
	if s.PlacesKilled != 0 {
		t.Fatalf("PlacesKilled = %d, want 0 (real failure, not a kill)", s.PlacesKilled)
	}

	// Duplicate and bogus reports are no-ops.
	ft.placeDead(3, transport.CauseConn)
	ft.placeDead(0, transport.CauseTimeout)
	ft.placeDead(99, transport.CauseTimeout)
	s = rt.Stats()
	if s.PlacesFailed != 1 {
		t.Fatalf("after duplicates, PlacesFailed = %d, want 1", s.PlacesFailed)
	}
	if rt.IsDead(rt.Place(0)) {
		t.Fatal("place zero marked dead by a transport report")
	}

	// The corpse delivers DeadPlaceError exactly like a killed place.
	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(rt.Place(3), func(c *apgas.Ctx) {})
	})
	var dpe *apgas.DeadPlaceError
	if !errors.As(err, &dpe) || dpe.Place.ID != 3 {
		t.Fatalf("Finish at failed place = %v, want DeadPlaceError{place 3}", err)
	}
}

// TestTransportDeathRacesKill drives a concurrent administrative kill and
// detector report at the same place: exactly one of the two accounting
// paths must win.
func TestTransportDeathRacesKill(t *testing.T) {
	for i := 0; i < 50; i++ {
		ft := &fakeTransport{}
		rt, err := apgas.New(
			apgas.WithPlaces(3),
			apgas.WithResilient(true),
			apgas.WithTransport(ft),
		)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); rt.Kill(rt.Place(1)) }()
		go func() { defer wg.Done(); ft.placeDead(1, transport.CauseConn) }()
		wg.Wait()
		s := rt.Stats()
		if s.PlacesKilled+s.PlacesFailed != 1 {
			t.Fatalf("iteration %d: PlacesKilled=%d PlacesFailed=%d, want exactly one death accounted",
				i, s.PlacesKilled, s.PlacesFailed)
		}
		rt.Shutdown()
	}
}

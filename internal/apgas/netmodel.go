package apgas

import "time"

// NetModel charges simulated interconnect time for place-to-place traffic.
// Intra-place operations are free. The model is deliberately simple — a
// fixed per-message latency plus a per-byte transfer time — because the
// paper's measured effects (resilient-finish bookkeeping traffic to place
// zero, checkpoint data movement to the backup place) depend only on message
// counts and payload volumes.
//
// The zero NetModel is a free network, which is what unit tests use.
type NetModel struct {
	// Latency is charged once per message crossing places.
	Latency time.Duration
	// BytePeriod is charged per payload byte crossing places
	// (1 / bandwidth). Zero means infinitely fast transfers.
	BytePeriod time.Duration
}

// delay returns the simulated time for a message of the given payload size.
func (n NetModel) delay(bytes int) time.Duration {
	return n.Latency + time.Duration(bytes)*n.BytePeriod
}

// charge blocks the calling task for the cost of sending bytes from one
// place to another. It is a no-op for a zero model or an intra-place move.
func (n NetModel) charge(from, to Place, bytes int) {
	if from.ID == to.ID {
		return
	}
	if d := n.delay(bytes); d > 0 {
		time.Sleep(d)
	}
}

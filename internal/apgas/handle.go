package apgas

import "fmt"

// PlaceLocalHandle references a family of objects, one per place of a
// PlaceGroup, like x10.lang.PlaceLocalHandle. The handle itself is a small
// copyable value; the per-place objects live in each place's store and can
// only be reached by a task executing at that place, which is what keeps
// the emulation honest about data placement: when a place dies its fragment
// is gone.
type PlaceLocalHandle[T any] struct {
	rt *Runtime
	id uint64
}

// NewPlaceLocalHandle allocates a handle and initializes it at every place
// of g by running init there (in parallel, under a finish). A failure
// during initialization is returned and the partially initialized handle is
// destroyed.
func NewPlaceLocalHandle[T any](rt *Runtime, g PlaceGroup, init func(ctx *Ctx, idx int) T) (PlaceLocalHandle[T], error) {
	h := PlaceLocalHandle[T]{rt: rt, id: rt.nextHandle.Add(1)}
	err := ForEachPlace(rt, g, func(ctx *Ctx, idx int) {
		v := init(ctx, idx)
		rt.placeState(ctx.Here).set(h.id, v)
	})
	if err != nil {
		h.Destroy(g)
		return PlaceLocalHandle[T]{}, err
	}
	return h, nil
}

// Valid reports whether the handle has been initialized.
func (h PlaceLocalHandle[T]) Valid() bool { return h.rt != nil }

// Handle returns the handle's runtime-unique numeric identity. The
// registered-kernel data plane uses it as the store namespace for the
// object's per-place kernel-visible data (kernel.Input.Handle): handle
// IDs are never reused within a runtime, so a remade object — new
// PlaceLocalHandle — can never collide with stale cached entries of the
// one it replaced.
func (h PlaceLocalHandle[T]) Handle() uint64 { return h.id }

// Local resolves the handle at the task's current place, like applying the
// () operator on a PlaceLocalHandle in X10. It throws DeadPlaceError if the
// place has failed and panics if the handle was never initialized there
// (a programming error).
func (h PlaceLocalHandle[T]) Local(ctx *Ctx) T {
	v, ok := ctx.rt.placeState(ctx.Here).get(h.id)
	if !ok {
		panic(fmt.Sprintf("apgas: PlaceLocalHandle %d not initialized at %v", h.id, ctx.Here))
	}
	return v.(T)
}

// TryLocal resolves the handle at the current place, reporting ok=false if
// no value is stored there rather than panicking.
func (h PlaceLocalHandle[T]) TryLocal(ctx *Ctx) (T, bool) {
	v, ok := ctx.rt.placeState(ctx.Here).get(h.id)
	if !ok {
		var zero T
		return zero, false
	}
	return v.(T), true
}

// SetLocal replaces the handle's value at the task's current place. It is
// used by remake() paths that rebuild an object over a new place group.
func (h PlaceLocalHandle[T]) SetLocal(ctx *Ctx, v T) {
	ctx.rt.placeState(ctx.Here).set(h.id, v)
}

// Destroy removes the handle's per-place objects from every live place of
// g, releasing the memory. Dead places are skipped (their stores are
// already gone).
func (h PlaceLocalHandle[T]) Destroy(g PlaceGroup) {
	if h.rt == nil {
		return
	}
	for _, p := range g {
		h.rt.placeState(p).remove(h.id)
	}
}

// GlobalRef is a reference to a single object homed at one place, like
// x10.lang.GlobalRef. Only a task executing at the home place may
// dereference it.
type GlobalRef[T any] struct {
	rt   *Runtime
	id   uint64
	home Place
}

// NewGlobalRef stores v at the home place identified by ctx and returns a
// reference to it.
func NewGlobalRef[T any](ctx *Ctx, v T) GlobalRef[T] {
	r := GlobalRef[T]{rt: ctx.rt, id: ctx.rt.nextHandle.Add(1), home: ctx.Here}
	ctx.rt.placeState(ctx.Here).set(r.id, v)
	return r
}

// Home returns the place the referenced object lives at.
func (r GlobalRef[T]) Home() Place { return r.home }

// Get dereferences the GlobalRef; the calling task must be executing at the
// home place (X10 requires "at (gr) gr()").
func (r GlobalRef[T]) Get(ctx *Ctx) T {
	if ctx.Here.ID != r.home.ID {
		panic(fmt.Sprintf("apgas: GlobalRef homed at %v dereferenced at %v", r.home, ctx.Here))
	}
	v, ok := ctx.rt.placeState(ctx.Here).get(r.id)
	if !ok {
		panic(fmt.Sprintf("apgas: GlobalRef %d has no value at %v", r.id, r.home))
	}
	return v.(T)
}

// Set replaces the referenced value; the calling task must be at home.
func (r GlobalRef[T]) Set(ctx *Ctx, v T) {
	if ctx.Here.ID != r.home.ID {
		panic(fmt.Sprintf("apgas: GlobalRef homed at %v written at %v", r.home, ctx.Here))
	}
	ctx.rt.placeState(ctx.Here).set(r.id, v)
}

// Free releases the referenced object at the home place.
func (r GlobalRef[T]) Free() {
	if r.rt == nil {
		return
	}
	r.rt.placeState(r.home).remove(r.id)
}

package apgas

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// DeadPlaceError is the Go rendering of x10.lang.DeadPlaceException: it is
// delivered to a finish when a task could not run, or could not be confirmed
// to have completed, because the place it targeted has failed.
type DeadPlaceError struct {
	// Place is the failed place.
	Place Place
}

// Error implements the error interface.
func (e *DeadPlaceError) Error() string {
	return fmt.Sprintf("apgas: dead place %d", e.Place.ID)
}

// MultiError aggregates the exceptions collected by a finish. A finish may
// observe several failures (for example one DeadPlaceError per orphaned
// task); X10 delivers them as a MultipleExceptions value and so do we.
type MultiError struct {
	Errs []error
}

// Error implements the error interface.
func (m *MultiError) Error() string {
	if len(m.Errs) == 1 {
		return m.Errs[0].Error()
	}
	parts := make([]string, 0, len(m.Errs))
	for _, e := range m.Errs {
		parts = append(parts, e.Error())
	}
	return fmt.Sprintf("apgas: %d exceptions: %s", len(m.Errs), strings.Join(parts, "; "))
}

// Unwrap exposes the aggregated errors to errors.Is / errors.As.
func (m *MultiError) Unwrap() []error { return m.Errs }

// combineErrors returns nil, the single error, or a MultiError.
func combineErrors(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	default:
		return &MultiError{Errs: errs}
	}
}

// IsDeadPlace reports whether err contains a DeadPlaceError.
func IsDeadPlace(err error) bool {
	var dpe *DeadPlaceError
	return errors.As(err, &dpe)
}

// DeadPlaces extracts the distinct places reported dead by err, in
// ascending ID order. It understands MultiError aggregation.
func DeadPlaces(err error) []Place {
	seen := map[int]bool{}
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		var dpe *DeadPlaceError
		if errors.As(e, &dpe) {
			// errors.As finds only the first; handle aggregates explicitly.
		}
		switch v := e.(type) {
		case *DeadPlaceError:
			seen[v.Place.ID] = true
		case *MultiError:
			for _, sub := range v.Errs {
				walk(sub)
			}
		default:
			if u, ok := e.(interface{ Unwrap() error }); ok {
				walk(u.Unwrap())
			}
		}
	}
	walk(err)
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	places := make([]Place, len(ids))
	for i, id := range ids {
		places[i] = Place{ID: id}
	}
	return places
}

// ErrShutdown is returned by operations on a runtime that has been shut down.
var ErrShutdown = errors.New("apgas: runtime is shut down")

// ErrBadOption is the typed error wrapped by every functional-option
// validation failure (WithLedgerQueue with a non-positive capacity,
// WithFinishMode with an unknown mode, WithStorePolicy with an invalid
// geometry, ...). The failure is recorded at option-apply time and
// surfaced by New/NewRuntime, so a bad value fails construction loudly
// instead of deadlocking or silently falling back to a default; callers
// classify with errors.Is(err, apgas.ErrBadOption).
var ErrBadOption = errors.New("apgas: invalid option")

// ErrCanceled is the typed cancellation error: FinishContext (and, one
// layer up, Executor.RunContext) wrap it when the caller's context is
// canceled or times out, so callers distinguish "you asked me to stop"
// from a real failure with errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("apgas: canceled by context")

// ErrPlaceZeroImmortal is returned by Runtime.Kill(place 0): the paper's
// resilient X10 assumes place zero never fails (its failure would be fatal
// to the whole application), so the failure injector refuses to kill it.
var ErrPlaceZeroImmortal = errors.New("apgas: place zero is immortal and cannot be killed")

// ErrNotResilient is returned by Runtime.Kill when the runtime was built
// without Config.Resilient. Non-resilient X10 cannot survive any place
// failure, so injecting one would only hang the emulation.
var ErrNotResilient = errors.New("apgas: cannot inject failures into a non-resilient runtime")

// dpePanic is the panic payload used to unwind a task that touched a dead
// place; the task wrapper converts it back into a *DeadPlaceError.
type dpePanic struct{ place Place }

// throwDead unwinds the current task with a DeadPlaceError for p.
func throwDead(p Place) {
	panic(dpePanic{place: p})
}

// recoverTaskError converts a recovered panic value into a task error.
// DeadPlaceError panics become *DeadPlaceError values; any other panic is
// wrapped so the finish surfaces it rather than crashing the process.
func recoverTaskError(r any) error {
	if r == nil {
		return nil
	}
	if d, ok := r.(dpePanic); ok {
		return &DeadPlaceError{Place: d.place}
	}
	if t, ok := r.(taskError); ok {
		return t.err
	}
	if err, ok := r.(error); ok {
		return fmt.Errorf("apgas: task panic: %w", err)
	}
	return fmt.Errorf("apgas: task panic: %v", r)
}

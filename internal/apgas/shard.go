package apgas

import (
	"sync"

	"github.com/rgml/rgml/internal/apgas/transport"
)

// Sharded home-based resilient finish (Config.FinishMode ==
// FinishSharded).
//
// Instead of funnelling every fork/join in the system through one place-zero
// goroutine, each Finish is bookkept at its *home* place's ledger shard:
// one shard goroutine per place, with state partitioned by finish id. This
// is the decentralization the paper's place-zero discussion motivates (and
// what HPX-style task-local resilience and GASPI-style decentralized
// failure notification implement in real systems):
//
//   - Concurrent finishes with different homes no longer serialize against
//     each other; each shard applies the LedgerCost congestion model to its
//     own live-task population only.
//   - Bookkeeping hops are charged from the event's origin to the finish's
//     home, not always to place zero. A finish whose activities all run at
//     its home pays no simulated network at all.
//   - Local fast path: tasks spawned at the finish's own home place are
//     tracked by a counter on the Finish itself (finish.go) and never
//     become shard events — the classic X10/HPX optimization where only
//     place-crossing activities pay resilient bookkeeping.
//   - Batched delivery: an activity's burst of remote forks is coalesced
//     into one shard message (Ctx.flushForks), charging the NetModel once
//     per batch, and the shard drains bursts from its channel in gulps,
//     charging the modeled per-message protocol cost once per gulp.
//
// # Ordering and the early-join window
//
// Sender-side fork batching means a task can start — and even join — before
// its buffered FORK reaches the shard. The protocol stays correct through
// two invariants:
//
//  1. Flush-before-join: every activity flushes its pending fork batch
//     before its own JOIN is sent (runTaskErr / At / finishFrom), and a
//     channel send that happens-before another is dequeued first. So a
//     remote task's children are always registered before its own join is
//     processed: the registered set cannot transiently drain while a
//     registered task has unflushed children.
//  2. Early joins: a JOIN for a not-yet-registered task is parked in
//     earlyJoins; when its FORK arrives the parked outcome is recorded and
//     the task never becomes live. Refused forks and force-terminated
//     orphans leave a tombstone in doneTasks so their eventual JOIN is
//     ignored, exactly like the central ledger. Both maps are bounded:
//     every task resolves each entry it creates.
//
// # Quiescence
//
// A shard releases a waiting finish when the finish's registered set is
// empty. That alone is not quiescence: home-place tasks bypass the shard
// entirely (their liveness is the finish's local counter, not channel
// events), so "registered set empty" and "local counter zero" are two
// barriers observed at different times, and a local task can flush a batch
// of remote forks that the shard has not yet processed when the local
// counter hits zero. Finish.waitSharded therefore runs a fixpoint loop:
//
//	for {
//	  s := spawns.Load()       // every spawn bumps this counter, last
//	  localDrain()             // 1. local fast-path population is zero
//	  shard wait; <-reply      // 2. then the registered set drained
//	  if spawns.Load() == s    // 3. and nothing spawned in between
//	    return
//	}
//
// If no spawn happened across both barriers, every task of the finish was
// spawned before the round began, and an induction over the spawn ancestry
// (grounded at the main activity, which flushed before waiting) shows each
// one was either visible to the local barrier or registered at the shard
// before the set drained. A spawn that slips between the barriers —
// a remote task forking at home, or a local task flushing remote children —
// bumps the counter and the loop simply runs another round; finishes
// quiesce, so the loop terminates.
//
// # Shard state vs place death
//
// Shards are bookkeeping infrastructure, not place-resident data: a shard
// keeps running when its place dies, and place death is *broadcast* to all
// shards, each terminating the registered orphans it tracks. (In a real
// home-based protocol the home's finish state must itself be replicated or
// adopted — the reason resilient X10 chose immortal place zero; the
// emulation models the cost distribution of the optimized protocol.)
// Home-place tasks of a finish whose home died are not force-terminated by
// the shard: they abort cooperatively (checkAlive) and drain the local
// counter themselves, which the emulation's task bodies always do.

// forkBatchCap is the sender-side fork batch size: an activity's burst of
// remote spawns is delivered to the home shard in messages of at most this
// many forks, each charged one NetModel hop.
const forkBatchCap = 32

// ledgerGulp bounds how many queued events one shard drain processes under
// a single modeled protocol-cost charge.
const ledgerGulp = 256

// shardedLedger routes bookkeeping to per-place shards by finish home.
type shardedLedger struct {
	rt *Runtime

	mu     sync.RWMutex
	shards []*ledgerShard // indexed by home place ID; grows lazily
}

func newShardedLedger(rt *Runtime) *shardedLedger {
	s := &shardedLedger{rt: rt}
	s.shards = make([]*ledgerShard, rt.cfg.Places)
	for i := range s.shards {
		s.shards[i] = newLedgerShard(rt, i)
	}
	return s
}

// shard returns the shard bookkeeping finishes homed at place id, creating
// shards for elastically added places on first use.
func (s *shardedLedger) shard(home int) *ledgerShard {
	s.mu.RLock()
	if home < len(s.shards) {
		sh := s.shards[home]
		s.mu.RUnlock()
		return sh
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.shards) <= home {
		s.shards = append(s.shards, newLedgerShard(s.rt, len(s.shards)))
	}
	return s.shards[home]
}

// forkBatch delivers one activity's burst of remote forks (all for the
// same finish) to the finish's home shard, charging the network model once
// for the whole batch.
func (s *shardedLedger) forkBatch(f *Finish, ts []*task, from Place) {
	s.shard(f.home.ID).send(ledgerEvent{kind: evForkBatch, fin: f, tasks: ts, from: from})
}

// join reports a remote task's termination to its finish's home shard.
func (s *shardedLedger) join(t *task, err error, from Place) {
	s.shard(t.fin.home.ID).send(ledgerEvent{kind: evJoin, task: t, err: err, from: from})
}

// wait asks the home shard to close reply once f's registered set is
// empty. The waiter runs at f.home, so the hop is intra-place and free.
func (s *shardedLedger) wait(f *Finish, reply chan struct{}) {
	s.shard(f.home.ID).send(ledgerEvent{kind: evWait, fin: f, reply: reply, from: f.home})
}

// placeDied broadcasts a failure to every shard; each terminates the
// registered orphans it tracks at p.
func (s *shardedLedger) placeDied(p Place) {
	for _, sh := range s.snapshot() {
		sh.post(ledgerEvent{kind: evPlaceDied, dead: p, from: p})
	}
}

func (s *shardedLedger) stop() {
	shards := s.snapshot()
	for _, sh := range shards {
		sh.post(ledgerEvent{kind: evStop})
	}
	for _, sh := range shards {
		<-sh.done
	}
}

func (s *shardedLedger) snapshot() []*ledgerShard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*ledgerShard(nil), s.shards...)
}

// ledgerShard bookkeeps the finishes homed at one place. Its state mirrors
// the central ledger's, restricted to its own finishes, plus the
// out-of-order maps the batched protocol needs.
type ledgerShard struct {
	rt   *Runtime
	home int
	ch   chan ledgerEvent
	done chan struct{}

	// All state below is owned by the shard goroutine.

	liveByFinish map[uint64]map[uint64]*task
	liveByPlace  map[int]map[uint64]*task
	// waiting maps a finish id to the reply channel of its pending wait
	// round, closed when the finish's registered set drains.
	waiting    map[uint64]chan struct{}
	deadPlaces map[int]bool
	// earlyJoins parks outcomes of tasks whose JOIN overtook their batched
	// FORK; consumed when the fork arrives.
	earlyJoins map[uint64]error
	// doneTasks tombstones tasks whose fork was refused or that a place
	// death force-terminated, so their eventual JOIN is ignored.
	doneTasks map[uint64]struct{}
	live      int
}

func newLedgerShard(rt *Runtime, home int) *ledgerShard {
	sh := &ledgerShard{
		rt:           rt,
		home:         home,
		ch:           make(chan ledgerEvent, rt.cfg.ledgerQueue()),
		done:         make(chan struct{}),
		liveByFinish: make(map[uint64]map[uint64]*task),
		liveByPlace:  make(map[int]map[uint64]*task),
		waiting:      make(map[uint64]chan struct{}),
		deadPlaces:   make(map[int]bool),
		earlyJoins:   make(map[uint64]error),
		doneTasks:    make(map[uint64]struct{}),
	}
	// A shard created after a failure (elastic growth) must still refuse
	// forks to the places already known dead. Kill marks the place dead
	// before notifying the ledger, so seeding from place state can only
	// learn of a death early, never miss one.
	for i := 0; i < rt.NumPlaces(); i++ {
		if rt.IsDead(Place{ID: i}) {
			sh.deadPlaces[i] = true
		}
	}
	go sh.run()
	return sh
}

// send charges the network model for the hop to the shard's home place and
// enqueues the event, counting (then waiting out) a saturated queue.
func (sh *ledgerShard) send(ev ledgerEvent) {
	sh.rt.hop(ev.from, Place{ID: sh.home}, transport.ClassControl, 0, nil)
	sh.post(ev)
}

// post enqueues without charging the network.
func (sh *ledgerShard) post(ev ledgerEvent) {
	select {
	case sh.ch <- ev:
	default:
		sh.rt.instr.ledgerQueueFull.Inc()
		sh.ch <- ev
	}
}

// run drains the shard's channel in gulps: each blocking receive pulls
// whatever burst is immediately behind it (up to ledgerGulp events) and the
// modeled protocol cost is charged once for the gulp — the amortization a
// batching protocol buys — while the real map upkeep still happens per
// event.
func (sh *ledgerShard) run() {
	defer close(sh.done)
	batch := make([]ledgerEvent, 0, ledgerGulp)
	for {
		ev, ok := <-sh.ch
		if !ok {
			return
		}
		batch = append(batch[:0], ev)
	drain:
		for len(batch) < ledgerGulp {
			select {
			case next := <-sh.ch:
				batch = append(batch, next)
			default:
				break drain
			}
		}
		if cost := sh.rt.cfg.LedgerCost; cost != nil {
			cost(sh.live)
		}
		sh.rt.instr.ledgerBatches.Inc()
		for _, ev := range batch {
			if ev.kind == evStop {
				return
			}
			sh.process(ev)
		}
	}
}

func (sh *ledgerShard) process(ev ledgerEvent) {
	switch ev.kind {
	case evForkBatch:
		sh.countEvents(int64(len(ev.tasks)))
		for _, t := range ev.tasks {
			sh.fork(t)
		}
	case evJoin:
		sh.countEvents(1)
		sh.join(ev.task, ev.err)
	case evWait:
		sh.countEvents(1)
		sh.waiting[ev.fin.id] = ev.reply
		sh.tryRelease(ev.fin.id)
	case evPlaceDied:
		sh.countEvents(1)
		sh.died(ev.dead)
	}
}

func (sh *ledgerShard) countEvents(n int64) {
	sh.rt.stats.LedgerEvents.Add(n)
	sh.rt.instr.ledgerEvents.Add(n)
}

func (sh *ledgerShard) fork(t *task) {
	if err, early := sh.earlyJoins[t.id]; early {
		// The task already ran to completion before its batched fork
		// arrived; its actual outcome stands and it is never live.
		delete(sh.earlyJoins, t.id)
		t.fin.record(err)
		return
	}
	if sh.deadPlaces[t.place.ID] || sh.rt.placeState(t.place).isDead() {
		sh.rt.noteRefusedFork(t.fin, t.place)
		t.fin.record(&DeadPlaceError{Place: t.place})
		sh.doneTasks[t.id] = struct{}{}
		return
	}
	byFin := sh.liveByFinish[t.fin.id]
	if byFin == nil {
		byFin = make(map[uint64]*task)
		sh.liveByFinish[t.fin.id] = byFin
	}
	byFin[t.id] = t
	byPlace := sh.liveByPlace[t.place.ID]
	if byPlace == nil {
		byPlace = make(map[uint64]*task)
		sh.liveByPlace[t.place.ID] = byPlace
	}
	byPlace[t.id] = t
	sh.live++
}

func (sh *ledgerShard) join(t *task, err error) {
	if _, tomb := sh.doneTasks[t.id]; tomb {
		// Refused fork or force-terminated orphan: the DeadPlaceError
		// recorded then stands; this join is the tombstone's resolution.
		delete(sh.doneTasks, t.id)
		return
	}
	byFin := sh.liveByFinish[t.fin.id]
	if byFin == nil || byFin[t.id] == nil {
		// The batched fork is still in flight behind us; park the outcome.
		sh.earlyJoins[t.id] = err
		return
	}
	t.fin.record(err)
	sh.remove(t)
	sh.tryRelease(t.fin.id)
}

// died terminates every registered task at p with a DeadPlaceError and
// releases any wait round that was only blocked on p's orphans.
func (sh *ledgerShard) died(p Place) {
	sh.deadPlaces[p.ID] = true
	orphans := sh.liveByPlace[p.ID]
	delete(sh.liveByPlace, p.ID)
	for _, t := range orphans {
		sh.live--
		t.fin.record(&DeadPlaceError{Place: p})
		sh.doneTasks[t.id] = struct{}{}
		if byFin := sh.liveByFinish[t.fin.id]; byFin != nil {
			delete(byFin, t.id)
			if len(byFin) == 0 {
				delete(sh.liveByFinish, t.fin.id)
			}
		}
		sh.tryRelease(t.fin.id)
	}
}

func (sh *ledgerShard) remove(t *task) {
	sh.live--
	if byFin := sh.liveByFinish[t.fin.id]; byFin != nil {
		delete(byFin, t.id)
		if len(byFin) == 0 {
			delete(sh.liveByFinish, t.fin.id)
		}
	}
	if byPlace := sh.liveByPlace[t.place.ID]; byPlace != nil {
		delete(byPlace, t.id)
		if len(byPlace) == 0 {
			delete(sh.liveByPlace, t.place.ID)
		}
	}
}

// tryRelease answers a pending wait round once the finish's registered set
// has drained. The flush-before-join invariant guarantees the set is never
// transiently empty while a registered task has unflushed children; the
// waiter's fixpoint loop (Finish.waitSharded) covers home-place tasks and
// spawns that race the barriers.
func (sh *ledgerShard) tryRelease(fin uint64) {
	reply, ok := sh.waiting[fin]
	if !ok {
		return
	}
	if len(sh.liveByFinish[fin]) > 0 {
		return
	}
	delete(sh.waiting, fin)
	close(reply)
}

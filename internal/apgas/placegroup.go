package apgas

import (
	"fmt"
	"strings"
)

// PlaceGroup is an ordered collection of places, mirroring
// x10.lang.PlaceGroup. Multi-place GML objects are distributed over a
// PlaceGroup; the *index* of a place within the group (not its ID) is the
// key used for data placement and for snapshot storage, which is what lets
// an object be restored onto a different group after a failure (paper
// section IV-B1: "the identifiers of the remaining places will remain
// unchanged, but the index of some places will be shifted").
type PlaceGroup []Place

// Size returns the number of places in the group.
func (g PlaceGroup) Size() int { return len(g) }

// Contains reports whether p is a member of the group.
func (g PlaceGroup) Contains(p Place) bool { return g.IndexOf(p) >= 0 }

// IndexOf returns the index of p within the group, or -1.
func (g PlaceGroup) IndexOf(p Place) int {
	for i, q := range g {
		if q.ID == p.ID {
			return i
		}
	}
	return -1
}

// Clone returns an independent copy of the group.
func (g PlaceGroup) Clone() PlaceGroup {
	out := make(PlaceGroup, len(g))
	copy(out, g)
	return out
}

// Without returns a new group with every place in dead filtered out,
// preserving the order of the survivors. This is the "shrink" group
// computation used by the restoration modes.
func (g PlaceGroup) Without(dead ...Place) PlaceGroup {
	isDead := make(map[int]bool, len(dead))
	for _, d := range dead {
		isDead[d.ID] = true
	}
	out := make(PlaceGroup, 0, len(g))
	for _, p := range g {
		if !isDead[p.ID] {
			out = append(out, p)
		}
	}
	return out
}

// Replace returns a new group where each place in dead has been substituted
// in-position by the corresponding place in spares. It returns an error if
// fewer spares than dead places are supplied. This is the "replace-redundant"
// group computation: the group keeps its size, so the data distribution is
// unchanged after the failure.
func (g PlaceGroup) Replace(dead []Place, spares []Place) (PlaceGroup, error) {
	if len(spares) < len(dead) {
		return nil, fmt.Errorf("apgas: %d dead places but only %d spares", len(dead), len(spares))
	}
	isDead := make(map[int]bool, len(dead))
	for _, d := range dead {
		isDead[d.ID] = true
	}
	out := g.Clone()
	next := 0
	for i, p := range out {
		if isDead[p.ID] {
			out[i] = spares[next]
			next++
		}
	}
	if next < len(dead) {
		return nil, fmt.Errorf("apgas: %d dead places are not members of the group", len(dead)-next)
	}
	return out, nil
}

// Equal reports whether g and h contain the same places in the same order.
func (g PlaceGroup) Equal(h PlaceGroup) bool {
	if len(g) != len(h) {
		return false
	}
	for i := range g {
		if g[i].ID != h[i].ID {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (g PlaceGroup) String() string {
	ids := make([]string, len(g))
	for i, p := range g {
		ids[i] = fmt.Sprint(p.ID)
	}
	return "places[" + strings.Join(ids, ",") + "]"
}

package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/snapshot"
)

// AblationRow is one measured variant of an ablation experiment.
type AblationRow struct {
	Experiment string
	Variant    string
	MS         float64
}

// Ablations measures the design-choice experiments of DESIGN.md section 9
// at the largest configured place count:
//
//   - ledger-cost: a bare task fan-out under non-resilient finish,
//     resilient finish with free bookkeeping, and resilient finish with
//     the modeled place-zero congestion — isolating what Figures 2-4's
//     gap is made of;
//   - backup-copy: checkpointing a distributed vector with double storage
//     vs local-only storage — the price of surviving a failure;
//   - read-only: three consecutive checkpoints of a LinReg-sized input
//     matrix with Save vs SaveReadOnly — why Table III stays flat;
//   - regrid-sparse: restoring a PageRank-sized sparse matrix onto fewer
//     places with the same grid vs a recalculated grid — the section
//     IV-B2 overlap-and-count cost behind Table IV's rebalance column.
func (c Config) Ablations() ([]AblationRow, error) {
	places := c.Scale.PlaceCounts[len(c.Scale.PlaceCounts)-1]
	var rows []AblationRow
	add := func(exp, variant string, d time.Duration, err error) error {
		if err != nil {
			return fmt.Errorf("bench: ablation %s/%s: %w", exp, variant, err)
		}
		rows = append(rows, AblationRow{Experiment: exp, Variant: variant, MS: float64(d.Microseconds()) / 1000})
		c.progressf("ablation %s/%s: %.2f ms", exp, variant, float64(d.Microseconds())/1000)
		return nil
	}

	// --- ledger-cost ---
	fanout := func(resilient bool, work int, mode apgas.FinishMode) (time.Duration, error) {
		cfg := c
		cfg.LedgerWork = work
		cfg.FinishMode = mode
		rt, err := cfg.newRuntime(places, resilient, nil)
		if err != nil {
			return 0, err
		}
		defer rt.Shutdown()
		const rounds = 50
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := apgas.ForEachPlace(rt, rt.World(), func(*apgas.Ctx, int) {}); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / rounds, nil
	}
	d, err := fanout(false, 0, apgas.FinishCentral)
	if err := add("ledger-cost", "non-resilient", d, err); err != nil {
		return nil, err
	}
	d, err = fanout(true, 0, apgas.FinishCentral)
	if err := add("ledger-cost", "resilient/free-bookkeeping", d, err); err != nil {
		return nil, err
	}
	d, err = fanout(true, c.LedgerWork, apgas.FinishCentral)
	if err := add("ledger-cost", "resilient/congested-ledger", d, err); err != nil {
		return nil, err
	}
	// The sharded variants isolate what home-based bookkeeping buys at the
	// same modeled congestion: batched delivery amortizes the per-event
	// cost, so the congested sharded row should sit near the free one
	// instead of climbing with it.
	d, err = fanout(true, 0, apgas.FinishSharded)
	if err := add("ledger-cost", "resilient/sharded-free", d, err); err != nil {
		return nil, err
	}
	d, err = fanout(true, c.LedgerWork, apgas.FinishSharded)
	if err := add("ledger-cost", "resilient/sharded-congested", d, err); err != nil {
		return nil, err
	}

	// --- backup-copy ---
	saveVec := func(backup bool) (time.Duration, error) {
		rt, err := c.newRuntime(places, true, nil)
		if err != nil {
			return 0, err
		}
		defer rt.Shutdown()
		pg := rt.World()
		v, err := dist.MakeDistVector(rt, c.Scale.LinRegExamplesPerPlace*places, pg)
		if err != nil {
			return 0, err
		}
		if err := v.Init(func(i int) float64 { return float64(i) }); err != nil {
			return 0, err
		}
		start := time.Now()
		s, err := snapshot.NewWithOptions(rt, pg, snapshot.Options{DisableBackup: !backup})
		if err != nil {
			return 0, err
		}
		err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
			seg := v.Local(ctx)
			buf := make([]byte, 8*len(seg))
			s.Save(ctx, idx, buf)
		})
		elapsed := time.Since(start)
		s.Destroy()
		return elapsed, err
	}
	d, err = saveVec(true)
	if err := add("backup-copy", "double-storage", d, err); err != nil {
		return nil, err
	}
	d, err = saveVec(false)
	if err := add("backup-copy", "local-only", d, err); err != nil {
		return nil, err
	}

	// --- read-only ---
	checkpoint3 := func(readOnly bool) (time.Duration, error) {
		rt, err := c.newRuntime(places, true, nil)
		if err != nil {
			return 0, err
		}
		defer rt.Shutdown()
		pg := rt.World()
		m, err := dist.MakeDistBlockMatrix(rt, block.Dense,
			c.Scale.LinRegExamplesPerPlace*places, c.Scale.LinRegFeatures,
			places, 1, places, 1, pg)
		if err != nil {
			return 0, err
		}
		if err := m.InitDense(func(i, j int) float64 { return float64(i ^ j) }); err != nil {
			return 0, err
		}
		store := core.NewAppResilientStore()
		start := time.Now()
		for k := 0; k < 3; k++ {
			if err := store.StartNewSnapshot(); err != nil {
				return 0, err
			}
			if readOnly {
				err = store.SaveReadOnly(m)
			} else {
				err = store.Save(m)
			}
			if err != nil {
				return 0, err
			}
			if err := store.Commit(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / 3, nil
	}
	d, err = checkpoint3(true)
	if err := add("read-only", "saveReadOnly×3", d, err); err != nil {
		return nil, err
	}
	d, err = checkpoint3(false)
	if err := add("read-only", "save×3", d, err); err != nil {
		return nil, err
	}

	// --- regrid-sparse ---
	restoreSparse := func(regrid bool) (time.Duration, error) {
		rt, err := c.newRuntime(places, true, nil)
		if err != nil {
			return 0, err
		}
		defer rt.Shutdown()
		pg := rt.World()
		n := c.Scale.PageRankNodesPerPlace * places
		m, err := dist.MakeDistBlockMatrix(rt, block.Sparse, n, n, places, 1, places, 1, pg)
		if err != nil {
			return 0, err
		}
		link := apps.LinkData{Seed: c.Scale.Seed, Nodes: n, OutDegree: c.Scale.PageRankOutDegree}
		if err := m.InitSparseColumns(link.Column); err != nil {
			return 0, err
		}
		s, err := m.MakeSnapshot()
		if err != nil {
			return 0, err
		}
		defer s.Destroy()
		if err := rt.Kill(rt.Place(places / 2)); err != nil {
			return 0, err
		}
		if err := m.Remake(rt.World(), !regrid); err != nil {
			return 0, err
		}
		start := time.Now()
		if err := m.RestoreSnapshot(s); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	d, err = restoreSparse(false)
	if err := add("regrid-sparse", "same-grid", d, err); err != nil {
		return nil, err
	}
	d, err = restoreSparse(true)
	if err := add("regrid-sparse", "re-grid", d, err); err != nil {
		return nil, err
	}

	return rows, nil
}

// WriteAblations renders the ablation measurements.
func WriteAblations(w io.Writer, rows []AblationRow) error {
	fmt.Fprintln(w, "# ablations: design-choice costs (DESIGN.md section 9)")
	fmt.Fprintln(w, "experiment\tvariant\tms")
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%.3f\n", r.Experiment, r.Variant, r.MS); err != nil {
			return err
		}
	}
	return nil
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationsSmoke(t *testing.T) {
	c := smokeConfig()
	c.LedgerWork = 10
	rows, err := c.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	// 5 + 2 + 2 + 2 variants.
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		if r.MS < 0 {
			t.Fatalf("negative measurement: %+v", r)
		}
		byKey[r.Experiment+"/"+r.Variant] = r.MS
	}
	// Structural expectations that hold even at smoke scale: the re-grid
	// restore does strictly more work than the same-grid restore.
	if byKey["regrid-sparse/re-grid"] < byKey["regrid-sparse/same-grid"] {
		t.Log("warning: re-grid measured cheaper than same-grid (noise at smoke scale)")
	}
	var buf bytes.Buffer
	if err := WriteAblations(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ledger-cost") {
		t.Error("render missing experiment names")
	}
}

package bench

import (
	"math"
	"runtime"
	"testing"

	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/par"
)

// TestChaosWorkerInvariance runs the acceptance chaos schedule — a kill
// inside a checkpoint commit plus a kill mid-restore — under several
// kernel worker counts and requires the engine's kill fingerprint AND the
// final iterate to be bit-identical to the workers=1 run. This is the
// end-to-end form of the kernel engine's determinism contract: parallel
// kernels must not perturb recovery paths or floating-point results.
func TestChaosWorkerInvariance(t *testing.T) {
	c := smokeConfig()
	one := func() (string, la.Vector) {
		rt, err := c.newRuntime(4, true, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Shutdown()
		eng, err := chaos.New(rt, chaos.MustParse(acceptanceSchedule), chaos.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		exec, err := core.New(rt,
			core.WithCheckpointInterval(c.Scale.CheckpointInterval),
			core.WithChaos(eng),
		)
		if err != nil {
			t.Fatal(err)
		}
		app, err := apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: 64, Features: 8, Iterations: 6, Seed: 1,
		}, exec.ActiveGroup())
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(app); err != nil {
			t.Fatal(err)
		}
		w, err := app.Weights()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Signature(), append(la.Vector(nil), w...)
	}

	old := par.Workers()
	defer par.SetWorkers(old)

	par.SetWorkers(1)
	sigRef, wRef := one()
	if sigRef != "2@commit:p1,2@restore:p3" {
		t.Fatalf("workers=1 signature = %q", sigRef)
	}
	for _, workers := range []int{2, 7, runtime.NumCPU()} {
		par.SetWorkers(workers)
		sig, w := one()
		if sig != sigRef {
			t.Errorf("workers=%d kill fingerprint diverged: %q vs %q", workers, sig, sigRef)
		}
		if len(w) != len(wRef) {
			t.Fatalf("workers=%d weight length diverged: %d vs %d", workers, len(w), len(wRef))
		}
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(wRef[i]) {
				t.Errorf("workers=%d weights[%d] diverged: %v vs %v", workers, i, w[i], wRef[i])
				break
			}
		}
	}
}

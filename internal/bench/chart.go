package bench

import (
	"fmt"
	"io"
	"strings"
)

// seriesMarks are the plot symbols, in series order.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// WriteFigureChart renders the figure as an ASCII line chart — a quick
// visual check of the curve shapes against the paper's plots.
func WriteFigureChart(w io.Writer, f *Figure) error {
	const width, height = 60, 18
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
		return nil
	}
	maxY := 0.0
	maxX := 0
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Mean > maxY {
				maxY = p.Mean
			}
			if p.Places > maxX {
				maxX = p.Places
			}
		}
	}
	if maxY <= 0 || maxX <= 0 {
		return nil
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for _, p := range s.Points {
			x := int(float64(p.Places) / float64(maxX) * float64(width-1))
			y := height - 1 - int(p.Mean/maxY*float64(height-1))
			if y < 0 {
				y = 0
			}
			if grid[y][x] == ' ' {
				grid[y][x] = mark
			} else if grid[y][x] != mark {
				grid[y][x] = '%' // overlapping series
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# %s — %s (x: places 0..%d)\n", f.ID, f.YLabel, maxX); err != nil {
		return err
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		if _, err := fmt.Fprintf(w, "        %c %s\n", mark, s.Name); err != nil {
			return err
		}
	}
	return nil
}

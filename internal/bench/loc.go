package bench

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"

	"github.com/rgml/rgml/internal/apps"
)

// LOCRow is one row of Table II: the lines-of-code comparison between the
// non-resilient and resilient versions of a benchmark application,
// including the size of the resilience-specific methods.
type LOCRow struct {
	App               AppName
	NonResilientTotal int
	ResilientTotal    int
	CheckpointLOC     int
	RestoreLOC        int
	IsFinishedLOC     int
}

// locSources maps each application to its source files inside
// internal/apps.
var locSources = map[AppName][2]string{
	// [non-resilient file, resilient file]
	LinReg:   {"linreg_nonresilient.go", "linreg.go"},
	LogReg:   {"logreg_nonresilient.go", "logreg.go"},
	PageRank: {"pagerank_nonresilient.go", "pagerank.go"},
}

// LOCTable regenerates Table II by static analysis of the embedded
// application sources: total code lines (excluding comments and blanks) of
// each variant, plus the lines of the Checkpoint, Restore and IsFinished
// methods that resilience adds.
func LOCTable() ([]LOCRow, error) {
	var rows []LOCRow
	for _, app := range Apps {
		files := locSources[app]
		nonRes, err := countFileLOC(files[0])
		if err != nil {
			return nil, err
		}
		res, err := countFileLOC(files[1])
		if err != nil {
			return nil, err
		}
		ckpt, err := countMethodLOC(files[1], "Checkpoint")
		if err != nil {
			return nil, err
		}
		restore, err := countMethodLOC(files[1], "Restore")
		if err != nil {
			return nil, err
		}
		fin, err := countMethodLOC(files[1], "IsFinished")
		if err != nil {
			return nil, err
		}
		rows = append(rows, LOCRow{
			App:               app,
			NonResilientTotal: nonRes,
			ResilientTotal:    res,
			CheckpointLOC:     ckpt,
			RestoreLOC:        restore,
			IsFinishedLOC:     fin,
		})
	}
	return rows, nil
}

// codeLines returns the set of 1-based line numbers of src that carry at
// least one non-comment token.
func codeLines(name string, src []byte) (map[int]bool, *token.File, error) {
	fset := token.NewFileSet()
	file := fset.AddFile(name, -1, len(src))
	var sc scanner.Scanner
	var scanErr error
	sc.Init(file, src, func(pos token.Position, msg string) {
		scanErr = fmt.Errorf("bench: scanning %s: %s at %v", name, msg, pos)
	}, 0)
	lines := make(map[int]bool)
	for {
		pos, tok, lit := sc.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.SEMICOLON && lit == "\n" {
			// Auto-inserted semicolon: not a source token.
			continue
		}
		lines[file.Line(pos)] = true
	}
	if scanErr != nil {
		return nil, nil, scanErr
	}
	return lines, file, nil
}

// countFileLOC counts the code lines of one embedded apps source file.
func countFileLOC(name string) (int, error) {
	src, err := apps.Sources.ReadFile(name)
	if err != nil {
		return 0, fmt.Errorf("bench: reading %s: %w", name, err)
	}
	lines, _, err := codeLines(name, src)
	if err != nil {
		return 0, err
	}
	return len(lines), nil
}

// countMethodLOC counts the code lines of the named method (including its
// signature and braces) in one embedded apps source file.
func countMethodLOC(name, method string) (int, error) {
	src, err := apps.Sources.ReadFile(name)
	if err != nil {
		return 0, fmt.Errorf("bench: reading %s: %w", name, err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		return 0, fmt.Errorf("bench: parsing %s: %w", name, err)
	}
	var startLine, endLine int
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Name.Name != method {
			continue
		}
		startLine = fset.Position(fd.Pos()).Line
		endLine = fset.Position(fd.End()).Line
		break
	}
	if startLine == 0 {
		return 0, fmt.Errorf("bench: method %s not found in %s", method, name)
	}
	lines, _, err := codeLines(name, src)
	if err != nil {
		return 0, err
	}
	count := 0
	for l := startLine; l <= endLine; l++ {
		if lines[l] {
			count++
		}
	}
	return count, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// The resilient-finish architecture benchmark (BENCH_finish.json): the
// central place-zero ledger (the paper's measured design and its
// scalability bottleneck) against the sharded home-based design with the
// local fast path and batched delivery. Three measurements plus one
// oracle:
//
//   - fork/join bookkeeping throughput for concurrent finishes (the
//     hierarchical SPMD pattern every GML collective boils down to);
//   - finish-barrier latency (one fan-out/fan-in round trip);
//   - per-iteration resilient overhead vs place count, for both
//     architectures, against the same non-resilient baseline — the
//     sharded curve must flatten where the central one keeps climbing;
//   - a chaos seed sweep at odd place counts proving kill fingerprints
//     and final model weights are bit-identical across the two
//     architectures (semantics unchanged, only the cost distribution).

// finishFanTasks is the inner fan-out width of the synthetic SPMD round:
// each place's activity runs a nested finish spawning this many tasks at
// its own place (the sharded local fast path; central ledger traffic).
const finishFanTasks = 16

// FinishThroughputRow is one (mode, places) cell of the bookkeeping
// throughput measurement.
type FinishThroughputRow struct {
	Mode   string `json:"mode"`
	Places int    `json:"places"`
	Tasks  int64  `json:"tasks"`
	// Bookkeeping traffic observed by the registry: serialized ledger
	// events, cost-charged event batches (gulps), and tasks that rode the
	// sharded local fast path without any event at all.
	LedgerEvents  int64   `json:"ledger_events"`
	LedgerBatches int64   `json:"ledger_batches"`
	LocalFast     int64   `json:"local_fast_tasks"`
	Messages      int64   `json:"messages"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	TasksPerSec   float64 `json:"tasks_per_sec"`
}

// FinishLatencyRow is one (mode, places) cell of the finish-barrier
// latency measurement: the mean wall time of a single fan-out/fan-in
// finish over all places.
type FinishLatencyRow struct {
	Mode    string  `json:"mode"`
	Places  int     `json:"places"`
	Reps    int     `json:"reps"`
	MeanUS  float64 `json:"mean_us"`
	TotalMS float64 `json:"total_ms"`
}

// FinishOverheadRow is one (mode, places) cell of the weak-scaling
// overhead measurement: per-iteration time of the synthetic SPMD round
// and its overhead above the non-resilient baseline at the same place
// count.
type FinishOverheadRow struct {
	Mode      string  `json:"mode"` // "nonresilient", "central", "sharded"
	Places    int     `json:"places"`
	PerIterMS float64 `json:"per_iter_ms"`
	// OverheadMS is PerIterMS minus the non-resilient PerIterMS at the
	// same place count (zero for the baseline rows).
	OverheadMS float64 `json:"overhead_ms"`
}

// FinishInvarianceRow is one (places, seed) cell of the semantics oracle:
// the same chaos campaign run under both architectures.
type FinishInvarianceRow struct {
	Places          int    `json:"places"`
	Seed            uint64 `json:"seed"`
	Signature       string `json:"kill_fingerprint"`
	SignaturesMatch bool   `json:"fingerprints_match"`
	WeightsMatch    bool   `json:"weights_bitwise_equal"`
}

// FinishSummary condenses the acceptance criteria.
type FinishSummary struct {
	// ThroughputGain is sharded tasks/sec over central tasks/sec at the
	// largest measured place count.
	ThroughputGain float64 `json:"sharded_throughput_gain"`
	// CentralOverheadGrowth and ShardedOverheadGrowth are each mode's
	// per-iteration overhead at the largest place count divided by its
	// overhead at the smallest, to compare against PlacesGrowth (the
	// place ratio itself) and RemoteTaskGrowth (the ratio of tasks that
	// actually need bookkeeping, which grows faster than the place ratio
	// because the outer fan-out has places-1 remote spawns). Central far
	// exceeds both (the congested ledger's live-proportional cost makes
	// it superlinear); sharded stays near PlacesGrowth and below
	// RemoteTaskGrowth — constant overhead per place, shrinking overhead
	// per bookkept task as batches fill.
	CentralOverheadGrowth float64 `json:"central_overhead_growth"`
	ShardedOverheadGrowth float64 `json:"sharded_overhead_growth"`
	PlacesGrowth          float64 `json:"places_growth"`
	RemoteTaskGrowth      float64 `json:"remote_task_growth"`
	// CentralOverheadExponent and ShardedOverheadExponent restate the
	// growths as powers of the place ratio (log growth / log places):
	// 2 is quadratic, 1 is linear (flat per-place overhead), below 1 is
	// sublinear in places.
	CentralOverheadExponent float64 `json:"central_overhead_exponent"`
	ShardedOverheadExponent float64 `json:"sharded_overhead_exponent"`
	// Invariant is true when every chaos sweep cell had matching
	// fingerprints and bit-identical weights.
	Invariant bool `json:"semantics_invariant"`
}

// FinishReport is the BENCH_finish.json document.
type FinishReport struct {
	Description string                `json:"description"`
	Environment map[string]string     `json:"environment"`
	Workload    string                `json:"workload"`
	Throughput  []FinishThroughputRow `json:"throughput"`
	Latency     []FinishLatencyRow    `json:"barrier_latency"`
	Overhead    []FinishOverheadRow   `json:"overhead_vs_places"`
	Invariance  []FinishInvarianceRow `json:"chaos_invariance"`
	Summary     FinishSummary         `json:"summary"`
}

// finishModes are the two architectures under test, central first.
var finishModes = []apgas.FinishMode{apgas.FinishCentral, apgas.FinishSharded}

// invariancePlaces are the odd place counts of the semantics oracle (odd
// on purpose: uneven partitions exercise remainder-block paths).
var invariancePlaces = []int{3, 5}

// invarianceSeeds drive the chaos engine's victim and probability draws.
var invarianceSeeds = []uint64{1, 2, 3}

// invarianceSchedule is a probabilistic commit-time kill at a serialized
// point, so each seed's kill sequence is exactly reproducible. A single
// kill keeps every cell recoverable at the smallest odd place count
// (two kills could take a snapshot entry's owner and backup together).
const invarianceSchedule = "kill(point=commit,prob=0.6,times=1)"

// FinishBench runs the whole comparison and assembles the report.
func (c Config) FinishBench() (*FinishReport, error) {
	rep := &FinishReport{
		Description: "Resilient-finish architecture comparison: central place-zero ledger " +
			"(the paper's measured design) vs sharded home-based bookkeeping with a local " +
			"fork/join fast path and batched event delivery. Reproduce with `make bench-finish`.",
		Environment: c.runMeta(),
		Workload: fmt.Sprintf(
			"hierarchical SPMD rounds: an outer finish fans one activity out to every "+
				"place; each activity runs a nested finish spawning %d tasks at its own "+
				"place. %d rounds per cell, ledger work %d. Chaos oracle: LinReg under "+
				"schedule %q at odd place counts %v, seeds %v.",
			finishFanTasks, c.Scale.Iterations, c.LedgerWork,
			invarianceSchedule, invariancePlaces, invarianceSeeds),
	}

	for _, places := range c.throughputPlaces() {
		for _, mode := range finishModes {
			row, err := c.finishThroughput(places, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: finish throughput places=%d mode=%v: %w", places, mode, err)
			}
			rep.Throughput = append(rep.Throughput, row)
			c.progressf("finish throughput places=%d mode=%s: %.0f tasks/s (%d events, %d batches, %d local)",
				places, row.Mode, row.TasksPerSec, row.LedgerEvents, row.LedgerBatches, row.LocalFast)

			lat, err := c.finishLatency(places, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: finish latency places=%d mode=%v: %w", places, mode, err)
			}
			rep.Latency = append(rep.Latency, lat)
		}
	}

	for _, places := range c.throughputPlaces() {
		rows, err := c.finishOverhead(places)
		if err != nil {
			return nil, fmt.Errorf("bench: finish overhead places=%d: %w", places, err)
		}
		rep.Overhead = append(rep.Overhead, rows...)
		for _, row := range rows {
			c.progressf("finish overhead places=%d mode=%s: %.3f ms/iter (+%.3f)",
				places, row.Mode, row.PerIterMS, row.OverheadMS)
		}
	}

	for _, places := range invariancePlaces {
		for _, seed := range invarianceSeeds {
			row, err := c.finishInvariance(places, seed)
			if err != nil {
				return nil, fmt.Errorf("bench: finish invariance places=%d seed=%d: %w", places, seed, err)
			}
			rep.Invariance = append(rep.Invariance, row)
			c.progressf("finish invariance places=%d seed=%d: %q match=%v weights=%v",
				places, seed, row.Signature, row.SignaturesMatch, row.WeightsMatch)
		}
	}

	rep.Summary = c.finishSummary(rep)
	return rep, nil
}

// throughputPlaces caps the sweep: the synthetic rounds are pure
// bookkeeping, so a handful of counts shows the scaling shape.
func (c Config) throughputPlaces() []int {
	pcs := c.Scale.PlaceCounts
	if len(pcs) <= 4 {
		return pcs
	}
	// First, a third in, two thirds in, last: enough for a growth curve.
	return []int{pcs[0], pcs[len(pcs)/3], pcs[2*len(pcs)/3], pcs[len(pcs)-1]}
}

// finishRuntime builds a runtime for one cell.
func (c Config) finishRuntime(places int, resilient bool, mode apgas.FinishMode, reg *obs.Registry) (*apgas.Runtime, error) {
	cfg := c
	cfg.FinishMode = mode
	return cfg.newRuntime(places, resilient, reg)
}

// spmdRound is the workload unit: an outer fan-out to every place, each
// activity running a nested all-local finish — the shape of one GML
// iteration (a collective over places whose per-place work is itself
// task-parallel).
func spmdRound(rt *apgas.Runtime) error {
	return apgas.ForEachPlace(rt, rt.World(), func(ctx *apgas.Ctx, _ int) {
		_ = ctx.FinishFrom(func(inner *apgas.Ctx) {
			for i := 0; i < finishFanTasks; i++ {
				inner.AsyncAt(inner.Here, func(*apgas.Ctx) {})
			}
		})
	})
}

// finishThroughput measures fork/join bookkeeping throughput for
// concurrent finishes under one architecture.
func (c Config) finishThroughput(places int, mode apgas.FinishMode) (FinishThroughputRow, error) {
	reg := obs.NewRegistry()
	rt, err := c.finishRuntime(places, true, mode, reg)
	if err != nil {
		return FinishThroughputRow{}, err
	}
	defer rt.Shutdown()
	before := rt.Stats()
	start := time.Now()
	for r := 0; r < c.Scale.Iterations; r++ {
		if err := spmdRound(rt); err != nil {
			return FinishThroughputRow{}, err
		}
	}
	elapsed := time.Since(start)
	d := rt.Stats().Sub(before)
	row := FinishThroughputRow{
		Mode:          mode.String(),
		Places:        places,
		Tasks:         d.TasksSpawned,
		LedgerEvents:  d.LedgerEvents,
		LocalFast:     d.LocalTasks,
		Messages:      d.Messages,
		LedgerBatches: reg.Counter("apgas.ledger.batches").Value(),
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
	}
	if elapsed > 0 {
		row.TasksPerSec = float64(d.TasksSpawned) / elapsed.Seconds()
	}
	return row, nil
}

// finishLatency measures the round-trip latency of a single fan-out
// finish barrier.
func (c Config) finishLatency(places int, mode apgas.FinishMode) (FinishLatencyRow, error) {
	rt, err := c.finishRuntime(places, true, mode, obs.NewRegistry())
	if err != nil {
		return FinishLatencyRow{}, err
	}
	defer rt.Shutdown()
	reps := 20 * c.Scale.Iterations
	start := time.Now()
	for r := 0; r < reps; r++ {
		if err := apgas.ForEachPlace(rt, rt.World(), func(*apgas.Ctx, int) {}); err != nil {
			return FinishLatencyRow{}, err
		}
	}
	elapsed := time.Since(start)
	return FinishLatencyRow{
		Mode:    mode.String(),
		Places:  places,
		Reps:    reps,
		MeanUS:  float64(elapsed.Microseconds()) / float64(reps),
		TotalMS: float64(elapsed.Microseconds()) / 1000,
	}, nil
}

// finishOverhead measures the per-iteration time of the synthetic SPMD
// round for the non-resilient baseline and both resilient architectures
// at one place count. The three configurations run interleaved passes
// (warm-up, then timed, taking each configuration's minimum), so slow
// host drift — GC state, scheduler warm-up — hits all three alike
// instead of skewing the differences; the small-place cells are tens of
// microseconds, where the drift would otherwise dominate. Small place
// counts run proportionally more rounds per pass so every pass is long
// enough to time.
func (c Config) finishOverhead(places int) ([]FinishOverheadRow, error) {
	maxPlaces := c.Scale.PlaceCounts[len(c.Scale.PlaceCounts)-1]
	iters := c.Scale.Iterations * maxPlaces / places
	configs := []struct {
		name      string
		resilient bool
		mode      apgas.FinishMode
	}{
		{"nonresilient", false, apgas.FinishCentral},
		{apgas.FinishCentral.String(), true, apgas.FinishCentral},
		{apgas.FinishSharded.String(), true, apgas.FinishSharded},
	}
	rts := make([]*apgas.Runtime, len(configs))
	for i, cc := range configs {
		rt, err := c.finishRuntime(places, cc.resilient, cc.mode, obs.NewRegistry())
		if err != nil {
			return nil, err
		}
		defer rt.Shutdown()
		rts[i] = rt
	}
	best := make([]float64, len(configs))
	for pass := 0; pass < 4; pass++ {
		for i := range configs {
			start := time.Now()
			for r := 0; r < iters; r++ {
				if err := spmdRound(rts[i]); err != nil {
					return nil, err
				}
			}
			perIter := float64(time.Since(start).Microseconds()) / 1000 / float64(iters)
			// The first pass is an untimed warm-up.
			if pass > 0 && (best[i] == 0 || perIter < best[i]) {
				best[i] = perIter
			}
		}
	}
	rows := make([]FinishOverheadRow, len(configs))
	for i, cc := range configs {
		rows[i] = FinishOverheadRow{Mode: cc.name, Places: places, PerIterMS: best[i]}
		if i > 0 {
			rows[i].OverheadMS = best[i] - best[0]
			if rows[i].OverheadMS < 0 {
				rows[i].OverheadMS = 0
			}
		}
	}
	return rows, nil
}

// finishInvariance runs the same seeded chaos campaign (LinReg with
// checkpoint/restore) under both architectures and compares the kill
// fingerprints and the final weights bit for bit.
func (c Config) finishInvariance(places int, seed uint64) (FinishInvarianceRow, error) {
	run := func(mode apgas.FinishMode) (string, la.Vector, error) {
		reg := obs.NewRegistry()
		rt, err := c.finishRuntime(places, true, mode, reg)
		if err != nil {
			return "", nil, err
		}
		defer rt.Shutdown()
		eng, err := chaos.New(rt, chaos.MustParse(invarianceSchedule), chaos.WithSeed(seed))
		if err != nil {
			return "", nil, err
		}
		exec, err := core.New(rt,
			core.WithCheckpointInterval(c.Scale.CheckpointInterval),
			core.WithChaos(eng),
		)
		if err != nil {
			return "", nil, err
		}
		s := c.Scale
		app, err := apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: s.LinRegExamplesPerPlace * places, Features: s.LinRegFeatures,
			Iterations: s.Iterations, Seed: s.Seed,
		}, exec.ActiveGroup())
		if err != nil {
			return "", nil, err
		}
		if err := exec.Run(app); err != nil {
			return "", nil, err
		}
		w, err := app.Weights()
		if err != nil {
			return "", nil, err
		}
		return eng.Signature(), append(la.Vector(nil), w...), nil
	}
	sigC, wC, err := run(apgas.FinishCentral)
	if err != nil {
		return FinishInvarianceRow{}, fmt.Errorf("central: %w", err)
	}
	sigS, wS, err := run(apgas.FinishSharded)
	if err != nil {
		return FinishInvarianceRow{}, fmt.Errorf("sharded: %w", err)
	}
	return FinishInvarianceRow{
		Places:          places,
		Seed:            seed,
		Signature:       sigC,
		SignaturesMatch: sigC == sigS,
		WeightsMatch:    vectorsBitEqual(wC, wS),
	}, nil
}

// finishSummary condenses the report against the acceptance criteria.
func (c Config) finishSummary(rep *FinishReport) FinishSummary {
	sum := FinishSummary{Invariant: len(rep.Invariance) > 0}
	for _, row := range rep.Invariance {
		if !row.SignaturesMatch || !row.WeightsMatch {
			sum.Invariant = false
		}
	}
	// Throughput gain at the largest place count.
	perMode := func(rows []FinishThroughputRow, mode string) *FinishThroughputRow {
		var best *FinishThroughputRow
		for i := range rows {
			if rows[i].Mode == mode && (best == nil || rows[i].Places > best.Places) {
				best = &rows[i]
			}
		}
		return best
	}
	cRow := perMode(rep.Throughput, apgas.FinishCentral.String())
	sRow := perMode(rep.Throughput, apgas.FinishSharded.String())
	if cRow != nil && sRow != nil && cRow.TasksPerSec > 0 {
		sum.ThroughputGain = sRow.TasksPerSec / cRow.TasksPerSec
	}
	// Overhead growth: largest-places overhead over smallest-places
	// overhead, per mode, against the place ratio.
	growth := func(mode string) (float64, float64) {
		var lo, hi *FinishOverheadRow
		for i := range rep.Overhead {
			r := &rep.Overhead[i]
			if r.Mode != mode {
				continue
			}
			if lo == nil || r.Places < lo.Places {
				lo = r
			}
			if hi == nil || r.Places > hi.Places {
				hi = r
			}
		}
		if lo == nil || hi == nil || lo == hi || lo.OverheadMS <= 0 {
			return 0, 0
		}
		return hi.OverheadMS / lo.OverheadMS, float64(hi.Places) / float64(lo.Places)
	}
	var placesGrowth float64
	sum.CentralOverheadGrowth, placesGrowth = growth(apgas.FinishCentral.String())
	sum.ShardedOverheadGrowth, _ = growth(apgas.FinishSharded.String())
	sum.PlacesGrowth = placesGrowth
	if placesGrowth > 1 {
		pcs := c.throughputPlaces()
		lo, hi := pcs[0], pcs[len(pcs)-1]
		if lo > 1 {
			sum.RemoteTaskGrowth = float64(hi-1) / float64(lo-1)
		}
		if sum.CentralOverheadGrowth > 0 {
			sum.CentralOverheadExponent = math.Log(sum.CentralOverheadGrowth) / math.Log(placesGrowth)
		}
		if sum.ShardedOverheadGrowth > 0 {
			sum.ShardedOverheadExponent = math.Log(sum.ShardedOverheadGrowth) / math.Log(placesGrowth)
		}
	}
	return sum
}

// WriteFinishReport writes the report as the BENCH_finish.json document.
func WriteFinishReport(w io.Writer, rep *FinishReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

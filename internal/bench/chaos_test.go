package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// acceptanceSchedule kills one place inside a checkpoint commit and a
// second, non-adjacent place mid-restore — the two historically fragile
// windows — on a 4-place group. Victims 1 and 3 are non-adjacent, so the
// double in-memory storage keeps every snapshot entry recoverable.
const acceptanceSchedule = "kill(point=commit,iter=2,place=1);kill(point=restore,place=3)"

func acceptanceSpec(app AppName) ChaosSpec {
	return ChaosSpec{
		App:      app,
		Places:   4,
		Schedule: acceptanceSchedule,
		Seeds:    []uint64{7},
		Mode:     core.Shrink,
	}
}

// TestChaosCampaignDeterminism is the acceptance criterion: a fixed-seed
// campaign that kills a place during commit and another during restore
// completes with the correct final iterate, and a second execution of the
// same campaign reproduces the first exactly.
func TestChaosCampaignDeterminism(t *testing.T) {
	c := smokeConfig()
	first, err := c.ChaosCampaign(acceptanceSpec(LinReg))
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.ChaosCampaign(acceptanceSpec(LinReg))
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]ChaosReport{"first": first, "second": second} {
		if rep.Failed() {
			t.Fatalf("%s campaign failed: %+v", name, rep.Runs)
		}
		run := rep.Runs[0]
		if run.Signature != "2@commit:p1,2@restore:p3" {
			t.Errorf("%s signature = %q", name, run.Signature)
		}
		if run.Restores != 1 || run.RestoreAttempts != 2 {
			t.Errorf("%s restores = %d, attempts = %d, want 1, 2", name, run.Restores, run.RestoreAttempts)
		}
	}
	// Bit-for-bit reproducibility of the whole report, wall time aside.
	a, b := first.Runs[0], second.Runs[0]
	a.DurationMS, b.DurationMS = 0, 0
	if a != b {
		t.Errorf("campaign not reproducible:\n first %+v\nsecond %+v", a, b)
	}
}

// TestChaosRunsBitIdenticalIterates runs the acceptance schedule twice at
// the executor level and compares the final weights element-for-element:
// same seed + schedule must give the same kill sequence AND the same
// floating-point result, not merely one within tolerance.
func TestChaosRunsBitIdenticalIterates(t *testing.T) {
	c := smokeConfig()
	one := func() (string, la.Vector) {
		rt, err := c.newRuntime(4, true, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Shutdown()
		eng, err := chaos.New(rt, chaos.MustParse(acceptanceSchedule), chaos.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		exec, err := core.New(rt,
			core.WithCheckpointInterval(c.Scale.CheckpointInterval),
			core.WithChaos(eng),
		)
		if err != nil {
			t.Fatal(err)
		}
		app, err := apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: 64, Features: 8, Iterations: 6, Seed: 1,
		}, exec.ActiveGroup())
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(app); err != nil {
			t.Fatal(err)
		}
		w, err := app.Weights()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Signature(), append(la.Vector(nil), w...)
	}
	sigA, wA := one()
	sigB, wB := one()
	if sigA != sigB {
		t.Fatalf("kill sequences diverged: %q vs %q", sigA, sigB)
	}
	if len(wA) != len(wB) {
		t.Fatalf("weight lengths diverged: %d vs %d", len(wA), len(wB))
	}
	for i := range wA {
		if wA[i] != wB[i] {
			t.Fatalf("weights[%d] diverged: %v vs %v", i, wA[i], wB[i])
		}
	}
}

// TestChaosBurstCampaign drives a burst kill (two places in one window)
// through the campaign runner under every seed of a small sweep and
// checks each run either survives with a verified iterate or failed for
// the one legitimate reason: the random burst hit adjacent places, whose
// shared snapshot entries are a documented double-failure data loss.
func TestChaosBurstCampaign(t *testing.T) {
	c := smokeConfig()
	rep, err := c.ChaosCampaign(ChaosSpec{
		App:      LinReg,
		Places:   6,
		Schedule: "burst(k=2,iter=3)",
		Seeds:    []uint64{1, 2, 3},
		Mode:     core.Shrink,
	})
	if err != nil {
		t.Fatal(err)
	}
	survived := 0
	for _, run := range rep.Runs {
		if run.Kills != 2 {
			t.Errorf("seed %d: kills = %d, want 2 (%s)", run.Seed, run.Kills, run.Signature)
		}
		if run.Survived {
			survived++
			if !run.Verified {
				t.Errorf("seed %d survived but diverged: %+v", run.Seed, run)
			}
		} else if !strings.Contains(run.Error, "lost") {
			t.Errorf("seed %d died for a non-data-loss reason: %s", run.Seed, run.Error)
		}
	}
	if survived == 0 {
		t.Error("no burst run survived; expected at least one non-adjacent draw")
	}

	// Reproducibility of the whole sweep.
	rep2, err := c.ChaosCampaign(ChaosSpec{
		App:      LinReg,
		Places:   6,
		Schedule: "burst(k=2,iter=3)",
		Seeds:    []uint64{1, 2, 3},
		Mode:     core.Shrink,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Runs {
		a, b := rep.Runs[i], rep2.Runs[i]
		if a.Signature != b.Signature || a.Survived != b.Survived {
			t.Errorf("seed %d not reproducible: %q/%v vs %q/%v",
				a.Seed, a.Signature, a.Survived, b.Signature, b.Survived)
		}
	}
}

// TestChaosCampaignFlakeRetries checks the transient-failure path through
// the campaign: replica flakes are retried (visible in the report) and the
// run still survives and verifies.
func TestChaosCampaignFlakeRetries(t *testing.T) {
	c := smokeConfig()
	rep, err := c.ChaosCampaign(ChaosSpec{
		App:      LinReg,
		Places:   3,
		Schedule: "flake(times=3)",
		Seeds:    []uint64{1},
		Mode:     core.Shrink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("campaign failed: %+v", rep.Runs)
	}
	run := rep.Runs[0]
	if run.Flakes != 3 {
		t.Errorf("flakes = %d, want 3", run.Flakes)
	}
	if run.ReplicaRetries != 3 {
		t.Errorf("replicaRetries = %d, want 3", run.ReplicaRetries)
	}
	if run.ReplicaDropped != 0 {
		t.Errorf("replicaDropped = %d, want 0", run.ReplicaDropped)
	}
}

// TestChaosReportJSON pins the report's wire shape.
func TestChaosReportJSON(t *testing.T) {
	rep := ChaosReport{App: "LinReg", Places: 4, Mode: "shrink", Schedule: "kill(point=step)", Total: 1}
	rep.Runs = []ChaosRun{{Seed: 7, Survived: true, Verified: true, Signature: "0@step:p2"}}
	var buf bytes.Buffer
	if err := WriteChaosReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back ChaosReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Runs[0].Seed != 7 || back.App != "LinReg" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// The checkpoint-compression benchmark (BENCH_compress.json): what each
// codec buys in shipped checkpoint bytes and what error-bounded lossy
// quantization costs in iterations-to-converge.
//
// Every run uses delta checkpointing, so the "none" rows are the
// delta-only baseline the compressed rows are judged against: lossless
// must ship fewer bytes than delta carry-forward alone on a dense app
// (LinReg: all-float CG state) and a sparse one (PageRank: the link
// matrix's index arrays are the big varint win), while converging to
// bit-identical weights. The lossy rows sweep the error bound and record
// the bytes-vs-iterations tradeoff curve; the codec's recorded maximum
// per-element error must stay within the configured bound.
//
// Each run also kills one place mid-run and repairs it from a redundant
// spare, so the compressed restore path — including the survivors'
// partial-restore re-encode validation — is exercised, not just save.

// compressPlaces is the fixed place count of the sweep (the comparison is
// across codecs, not places).
const compressPlaces = 4

// compressIterCap bounds the tolerance-driven runs; it is a multiple of
// the paper's fixed 30 so non-converging configurations fail visibly
// (Iterations == cap) instead of hanging.
const compressIterCap = 200

// compressTolerance is the per-app convergence threshold: LinReg stops at
// residual norm ‖r‖ ≤ tol, PageRank at L1 rank change ≤ tol. Chosen so
// convergence lands after the failure iteration (PageRank's synthetic
// network mixes at ~0.15x per iteration, far faster than the damping
// factor, so its threshold sits near the float64 accumulation floor).
var compressTolerance = map[AppName]float64{
	LinReg:   1e-12,
	PageRank: 1e-14,
}

// compressSpecs is the per-app codec sweep: the delta-only baseline,
// lossless, and the lossy error-bound curve from tight to loose. The
// bounds are scaled to each app's value range: PageRank's rank entries
// are ~1/N and LinReg's CG residual entries are ~1e-6 near the failure
// iteration, so each app's loosest bound stays below its smallest live
// signal. A bound above that scale quantizes the whole frame to zero —
// for LinReg that silently zeroes the restored residual, so the
// tolerance check reads √(r·r) = 0 and declares false convergence with
// bound-sized error still in the model (the classic lossy-checkpointing
// hazard; see DESIGN.md).
func compressSpecs(app AppName) []codec.Spec {
	bounds := []float64{1e-10, 1e-8, 1e-6}
	if app == PageRank {
		bounds = []float64{1e-12, 1e-9, 1e-6}
	}
	specs := []codec.Spec{{}, {Mode: codec.CompressLossless}}
	for _, eps := range bounds {
		specs = append(specs, codec.Spec{Mode: codec.CompressLossy, ErrorBound: eps})
	}
	return specs
}

// CompressRow is one (app, codec) cell of the sweep.
type CompressRow struct {
	App   string `json:"app"`
	Codec string `json:"codec"` // "none", "lossless" or "lossy(eps=...)"
	// ErrorBound is the lossy quantization bound (zero otherwise).
	ErrorBound float64 `json:"error_bound,omitempty"`
	Places     int     `json:"places"`
	// Iterations is the tolerance-driven iterations-to-converge count —
	// the quantity lossy checkpointing trades bytes against.
	Iterations int64 `json:"iterations_to_converge"`
	// ShippedBytes is what actually reached the snapshot stores
	// (post-compression, post-carry-forward).
	ShippedBytes int64 `json:"checkpoint_bytes_shipped"`
	// RawBytes/CompressedBytes/Ratio describe the compressor's own view:
	// frame bytes in vs out (zero for the "none" rows, which never enter
	// the compressor).
	RawBytes        int64   `json:"compress_bytes_in,omitempty"`
	CompressedBytes int64   `json:"compress_bytes_out,omitempty"`
	Ratio           float64 `json:"compress_ratio,omitempty"`
	CompressTimeUS  int64   `json:"compress_time_us,omitempty"`
	// CheckpointMS and RestoreMS are the executor's save/restore wall
	// time over the whole run.
	CheckpointMS float64 `json:"checkpoint_ms"`
	RestoreMS    float64 `json:"restore_ms"`
	// LossyMaxErr is the codec's recorded maximum per-element error;
	// WithinBound asserts it against ErrorBound.
	LossyMaxErr float64 `json:"lossy_max_err,omitempty"`
	WithinBound bool    `json:"within_bound,omitempty"`
	// BitwiseEqualToNone compares the final iterate against the
	// delta-only baseline run (required for lossless, diagnostic for
	// lossy); FinalMaxDiff is the L∞ distance for the lossy rows.
	BitwiseEqualToNone bool    `json:"weights_bitwise_equal_to_none"`
	FinalMaxDiff       float64 `json:"final_max_abs_diff_vs_none,omitempty"`
	TotalMS            float64 `json:"total_ms"`
}

// CompressSweep runs the codec × error-bound sweep for one dense and one
// sparse application. It fails when lossless does not strictly reduce
// shipped bytes below the delta-only baseline, when lossless does not
// converge bit-identically to it, or when a lossy run's recorded error
// exceeds its configured bound.
func (c Config) CompressSweep() ([]CompressRow, error) {
	var rows []CompressRow
	for _, app := range []AppName{LinReg, PageRank} {
		var ref la.Vector
		var baseBytes int64
		for _, spec := range compressSpecs(app) {
			row, w, err := c.compressRun(app, spec)
			if err != nil {
				return nil, fmt.Errorf("bench: compress %s %v: %w", app, spec, err)
			}
			switch {
			case spec.IsZero():
				ref, baseBytes = w, row.ShippedBytes
				row.BitwiseEqualToNone = true
			default:
				row.BitwiseEqualToNone = vectorsBitEqual(ref, w)
				row.FinalMaxDiff = maxAbsDiff(ref, w)
			}
			if spec.Mode == codec.CompressLossless {
				if !row.BitwiseEqualToNone {
					return nil, fmt.Errorf("bench: compress %s: lossless weights diverge from the delta-only baseline", app)
				}
				if row.ShippedBytes >= baseBytes {
					return nil, fmt.Errorf("bench: compress %s: lossless shipped %d bytes, baseline %d — no reduction",
						app, row.ShippedBytes, baseBytes)
				}
			}
			if spec.Mode == codec.CompressLossy {
				if row.LossyMaxErr > spec.ErrorBound {
					return nil, fmt.Errorf("bench: compress %s: lossy max error %g exceeds bound %g",
						app, row.LossyMaxErr, spec.ErrorBound)
				}
				row.WithinBound = true
			}
			rows = append(rows, row)
			c.progressf("compress %s codec=%s: shipped=%d iters=%d maxerr=%.3g eq=%v",
				app, row.Codec, row.ShippedBytes, row.Iterations, row.LossyMaxErr, row.BitwiseEqualToNone)
		}
	}
	return rows, nil
}

// compressRun executes one tolerance-driven failure-and-recovery run of
// app under spec (delta checkpointing on) and returns the row plus the
// final iterate.
func (c Config) compressRun(app AppName, spec codec.Spec) (CompressRow, la.Vector, error) {
	s := c.Scale
	cc := c
	cc.Compress = spec
	reg := obs.NewRegistry()
	rt, err := cc.newRuntime(compressPlaces+1, true, reg) // one redundant spare
	if err != nil {
		return CompressRow{}, nil, err
	}
	defer rt.Shutdown()
	killed := false
	victim := rt.Place(compressPlaces / 2)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(s.CheckpointInterval),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithSpares(1),
		core.WithObs(reg),
		core.WithDelta(true),
		core.WithAfterStep(func(iter int64) {
			if !killed && iter == int64(s.FailureIteration) {
				killed = true
				_ = rt.Kill(victim)
			}
		}),
	)
	if err != nil {
		return CompressRow{}, nil, err
	}
	var (
		iterate func() (la.Vector, error)
		a       core.IterativeApp
	)
	switch app {
	case LinReg:
		lr, err := apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: s.LinRegExamplesPerPlace * compressPlaces, Features: s.LinRegFeatures,
			Iterations: compressIterCap, Tolerance: compressTolerance[app], Seed: s.Seed,
		}, exec.ActiveGroup())
		if err != nil {
			return CompressRow{}, nil, err
		}
		a, iterate = lr, lr.Weights
	case PageRank:
		pr, err := apps.NewPageRank(rt, apps.PageRankConfig{
			Nodes: s.PageRankNodesPerPlace * compressPlaces, OutDegree: s.PageRankOutDegree,
			Iterations: compressIterCap, Tolerance: compressTolerance[app], Seed: s.Seed,
		}, exec.ActiveGroup())
		if err != nil {
			return CompressRow{}, nil, err
		}
		a, iterate = pr, pr.Ranks
	default:
		return CompressRow{}, nil, fmt.Errorf("bench: compress sweep has no %q workload", app)
	}
	start := time.Now()
	if err := exec.Run(a); err != nil {
		return CompressRow{}, nil, err
	}
	totalMS := float64(time.Since(start).Microseconds()) / 1000
	m := exec.Metrics()
	if m.Restores == 0 {
		return CompressRow{}, nil, fmt.Errorf("bench: no restore happened (converged before the kill at iteration %d?)", s.FailureIteration)
	}
	w, err := iterate()
	if err != nil {
		return CompressRow{}, nil, err
	}
	bytesIn := reg.Counter("snapshot.compress.bytes_in").Value()
	bytesOut := reg.Counter("snapshot.compress.bytes_out").Value()
	row := CompressRow{
		App:             string(app),
		Codec:           spec.String(),
		ErrorBound:      spec.ErrorBound,
		Places:          compressPlaces,
		Iterations:      m.Steps - m.ReplayedSteps,
		ShippedBytes:    reg.Counter("snapshot.save.bytes").Value(),
		RawBytes:        bytesIn,
		CompressedBytes: bytesOut,
		CompressTimeUS:  reg.Counter("snapshot.compress.time_us").Value(),
		CheckpointMS:    float64(m.CheckpointTime.Microseconds()) / 1000,
		RestoreMS:       float64(m.RestoreTime.Microseconds()) / 1000,
		LossyMaxErr:     float64(reg.Gauge("snapshot.lossy.max_err").Value()) * 1e-15,
		TotalMS:         totalMS,
	}
	if bytesIn > 0 {
		row.Ratio = float64(bytesOut) / float64(bytesIn)
	}
	return row, w, nil
}

// maxAbsDiff returns the L∞ distance between two iterates (infinity on a
// length mismatch).
func maxAbsDiff(a, b la.Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// compressReport is the BENCH_compress.json document.
type compressReport struct {
	Description string            `json:"description"`
	Environment map[string]string `json:"environment"`
	Workload    string            `json:"workload"`
	Rows        []CompressRow     `json:"rows"`
}

// WriteCompressReport writes the sweep as the BENCH_compress.json document.
func WriteCompressReport(w io.Writer, c Config, rows []CompressRow) error {
	s := c.Scale
	rep := compressReport{
		Description: "Checkpoint compression: shipped bytes and iterations-to-converge per codec, " +
			"against the delta-only baseline (every run checkpoints with delta carry-forward on). " +
			"Lossless (varint/delta indices + byte-shuffled flate floats) must reduce shipped " +
			"bytes and converge bit-identically; the lossy rows sweep the quantization error " +
			"bound and trade further byte reduction against extra iterations, with the codec's " +
			"recorded max per-element error held within the bound. One place is killed mid-run " +
			"and repaired from a redundant spare, so every row's restore decodes compressed " +
			"frames (survivors re-validate by re-encoding through the same codec). " +
			"Reproduce with `make bench-compress`.",
		Environment: c.runMeta(),
		Workload: fmt.Sprintf(
			"LinReg CG (dense float state), %d examples/place x %d features, tol %g; "+
				"PageRank (sparse link matrix), %d nodes/place x out-degree %d, tol %g; "+
				"%d places + 1 spare, checkpoint every %d, kill at iteration %d, "+
				"iteration cap %d",
			s.LinRegExamplesPerPlace, s.LinRegFeatures, compressTolerance[LinReg],
			s.PageRankNodesPerPlace, s.PageRankOutDegree, compressTolerance[PageRank],
			compressPlaces, s.CheckpointInterval, s.FailureIteration, compressIterCap),
		Rows: rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
)

// exportMetrics writes reg as JSON into Config.MetricsDir under name, or
// does nothing when no directory is configured.
func (c Config) exportMetrics(reg *obs.Registry, name string) error {
	if c.MetricsDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.MetricsDir, 0o755); err != nil {
		return fmt.Errorf("bench: metrics dir: %w", err)
	}
	f, err := os.Create(filepath.Join(c.MetricsDir, name))
	if err != nil {
		return fmt.Errorf("bench: metrics export: %w", err)
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		return fmt.Errorf("bench: metrics export: %w", err)
	}
	return nil
}

// Point is one measurement of a series.
type Point struct {
	Places int
	// Mean, Min, Max are in milliseconds (the paper reports mean, min and
	// max across runs).
	Mean, Min, Max float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is the regenerated data behind one of the paper's figures.
type Figure struct {
	ID     string // e.g. "fig2"
	Title  string
	YLabel string
	Series []Series
}

// timeRuns runs fn Runs times and reduces the millisecond measurements.
func (c Config) timeRuns(fn func(run int) (float64, error)) (Point, error) {
	var p Point
	for run := 0; run < c.Scale.Runs; run++ {
		ms, err := fn(run)
		if err != nil {
			return Point{}, err
		}
		if run == 0 || ms < p.Min {
			p.Min = ms
		}
		if run == 0 || ms > p.Max {
			p.Max = ms
		}
		p.Mean += ms
	}
	p.Mean /= float64(c.Scale.Runs)
	return p, nil
}

// FinishOverheadFigure regenerates Figures 2, 3 or 4: time per iteration
// of app under non-resilient vs resilient finish, weak scaling over
// Scale.PlaceCounts. No checkpointing is involved — the gap between the
// two curves is purely resilient X10's bookkeeping cost.
func (c Config) FinishOverheadFigure(app AppName) (*Figure, error) {
	fig := &Figure{
		Title:  fmt.Sprintf("%s: resilient X10 overhead", app),
		YLabel: "time per iteration (ms)",
		Series: []Series{{Name: "resilient finish"}, {Name: "non-resilient finish"}},
	}
	switch app {
	case LinReg:
		fig.ID = "fig2"
	case LogReg:
		fig.ID = "fig3"
	case PageRank:
		fig.ID = "fig4"
	}
	for _, places := range c.Scale.PlaceCounts {
		for si, resilient := range []bool{true, false} {
			pt, err := c.timeRuns(func(run int) (float64, error) {
				rt, err := c.newRuntime(places, resilient, nil)
				if err != nil {
					return 0, err
				}
				defer rt.Shutdown()
				a, err := c.newNonResilient(app, rt, rt.World(), places)
				if err != nil {
					return 0, err
				}
				start := time.Now()
				for !a.IsFinished() {
					if err := a.Step(); err != nil {
						return 0, err
					}
				}
				total := time.Since(start)
				return float64(total.Microseconds()) / 1000 / float64(c.Scale.Iterations), nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s places=%d resilient=%v: %w", app, places, resilient, err)
			}
			pt.Places = places
			fig.Series[si].Points = append(fig.Series[si].Points, pt)
			c.progressf("%s %s places=%d resilient=%v: %.2f ms/iter", fig.ID, app, places, resilient, pt.Mean)
		}
	}
	return fig, nil
}

// RestoreRun is one measured execution of the restore experiments.
type RestoreRun struct {
	Places  int
	Mode    string
	TotalMS float64
	// CheckpointPct and RestorePct are the share of total time spent in
	// checkpointing and restoration (Table IV).
	CheckpointPct, RestorePct float64
}

// restoreModes are the three curves of Figures 5-7, in paper legend order.
var restoreModes = []core.RestoreMode{core.ShrinkRebalance, core.Shrink, core.ReplaceRedundant}

// RestoreFigure regenerates Figures 5, 6 or 7: total runtime of app for
// Scale.Iterations iterations with checkpoints every CheckpointInterval
// iterations and a single place failure injected after FailureIteration,
// for each restoration mode, plus the non-resilient no-failure baseline.
// The per-run details are returned alongside for Table IV.
func (c Config) RestoreFigure(app AppName) (*Figure, []RestoreRun, error) {
	fig := &Figure{
		Title:  fmt.Sprintf("%s: total runtime with a single failure", app),
		YLabel: "total time (ms)",
	}
	switch app {
	case LinReg:
		fig.ID = "fig5"
	case LogReg:
		fig.ID = "fig6"
	case PageRank:
		fig.ID = "fig7"
	}
	var details []RestoreRun
	for _, mode := range restoreModes {
		fig.Series = append(fig.Series, Series{Name: mode.String()})
	}
	fig.Series = append(fig.Series, Series{Name: "non-resilient (no failure)"})

	for _, places := range c.Scale.PlaceCounts {
		for si, mode := range restoreModes {
			var lastRun RestoreRun
			pt, err := c.timeRuns(func(run int) (float64, error) {
				r, err := c.restoreRun(app, places, mode)
				if err != nil {
					return 0, err
				}
				lastRun = r
				return r.TotalMS, nil
			})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s places=%d mode=%v: %w", app, places, mode, err)
			}
			pt.Places = places
			fig.Series[si].Points = append(fig.Series[si].Points, pt)
			lastRun.TotalMS = pt.Mean
			details = append(details, lastRun)
			c.progressf("%s %s places=%d mode=%v: %.0f ms total", fig.ID, app, places, mode, pt.Mean)
		}
		// Baseline: non-resilient runtime, plain loop, no failure.
		pt, err := c.timeRuns(func(run int) (float64, error) {
			rt, err := c.newRuntime(places, false, nil)
			if err != nil {
				return 0, err
			}
			defer rt.Shutdown()
			a, err := c.newNonResilient(app, rt, rt.World(), places)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			for !a.IsFinished() {
				if err := a.Step(); err != nil {
					return 0, err
				}
			}
			return float64(time.Since(start).Microseconds()) / 1000, nil
		})
		if err != nil {
			return nil, nil, err
		}
		pt.Places = places
		fig.Series[len(fig.Series)-1].Points = append(fig.Series[len(fig.Series)-1].Points, pt)
		c.progressf("%s %s places=%d baseline: %.0f ms total", fig.ID, app, places, pt.Mean)
	}
	return fig, details, nil
}

// restoreRun executes one failure-and-recovery run and returns its
// timings. The weak-scaled problem size is determined by the active place
// count, which is `places` for every mode; replace-redundant allocates one
// extra place as the spare so the computation is comparable across modes.
func (c Config) restoreRun(app AppName, places int, mode core.RestoreMode) (RestoreRun, error) {
	total := places
	spares := 0
	if mode == core.ReplaceRedundant {
		total = places + 1
		spares = 1
	}
	// One registry instruments the runtime, the snapshot layer and the
	// executor, so the Table IV percentages and the optional JSON export
	// come from a single coherent document.
	reg := obs.NewRegistry()
	rt, err := c.newRuntime(total, true, reg)
	if err != nil {
		return RestoreRun{}, err
	}
	defer rt.Shutdown()
	killed := false
	var exec *core.Executor
	victim := rt.Place(places / 2) // a mid-group active place
	exec, err = core.New(rt,
		core.WithCheckpointInterval(c.Scale.CheckpointInterval),
		core.WithRestoreMode(mode),
		core.WithSpares(spares),
		core.WithObs(reg),
		core.WithAfterStep(func(iter int64) {
			if !killed && iter == int64(c.Scale.FailureIteration) {
				killed = true
				_ = rt.Kill(victim)
			}
		}),
	)
	if err != nil {
		return RestoreRun{}, err
	}
	a, err := c.newResilient(app, rt, exec.ActiveGroup(), places)
	if err != nil {
		return RestoreRun{}, err
	}
	if err := exec.Run(a); err != nil {
		return RestoreRun{}, err
	}
	m := exec.Metrics()
	if m.Restores == 0 {
		return RestoreRun{}, fmt.Errorf("bench: no restore happened (places=%d mode=%v)", places, mode)
	}
	if err := c.exportMetrics(reg, fmt.Sprintf("%s_%s_p%d.json", app, mode, places)); err != nil {
		return RestoreRun{}, err
	}
	totalMS := float64(m.Total.Microseconds()) / 1000
	return RestoreRun{
		Places:        places,
		Mode:          mode.String(),
		TotalMS:       totalMS,
		CheckpointPct: 100 * m.CheckpointTime.Seconds() / m.Total.Seconds(),
		RestorePct:    100 * m.RestoreTime.Seconds() / m.Total.Seconds(),
	}, nil
}

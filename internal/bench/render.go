package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteFigure renders a figure's series as an aligned text table (one row
// per place count, one column per series), comparable at a glance to the
// paper's plots.
func WriteFigure(w io.Writer, f *Figure) error {
	if _, err := fmt.Fprintf(w, "# %s: %s (%s)\n", f.ID, f.Title, f.YLabel); err != nil {
		return err
	}
	header := []string{"places"}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Join(header, "\t")); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i, pt := range f.Series[0].Points {
		cols := []string{fmt.Sprintf("%d", pt.Places)}
		for _, s := range f.Series {
			cols = append(cols, fmt.Sprintf("%.2f", s.Points[i].Mean))
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(cols, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteLOCTable renders Table II.
func WriteLOCTable(w io.Writer, rows []LOCRow) error {
	fmt.Fprintln(w, "# table2: Lines of code, non-resilient vs resilient (isFinished/checkpoint/restore are the resilience additions)")
	fmt.Fprintln(w, "application\tnon-resilient total\tresilient total\tisFinished\tcheckpoint\trestore")
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.App, r.NonResilientTotal, r.ResilientTotal, r.IsFinishedLOC, r.CheckpointLOC, r.RestoreLOC)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteCheckpointTable renders Table III.
func WriteCheckpointTable(w io.Writer, rows []CheckpointRow) error {
	fmt.Fprintln(w, "# table3: Mean time per checkpoint (ms)")
	fmt.Fprintf(w, "places")
	for _, app := range Apps {
		fmt.Fprintf(w, "\t%s", app)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%d", r.Places)
		for _, app := range Apps {
			fmt.Fprintf(w, "\t%.1f", r.MeanMS[app])
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WritePercentTable renders Table IV.
func WritePercentTable(w io.Writer, rows []PercentRow, places int) error {
	fmt.Fprintf(w, "# table4: %% of total time in checkpoint (C%%) and restore (R%%) at %d places\n", places)
	fmt.Fprintln(w, "application\tshrink C%\tshrink R%\tshrink-rebalance C%\tshrink-rebalance R%\treplace-redundant C%\treplace-redundant R%")
	for _, r := range rows {
		s := r.Pct["shrink"]
		sr := r.Pct["shrink-rebalance"]
		rr := r.Pct["replace-redundant"]
		_, err := fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.App, s[0], s[1], sr[0], sr[1], rr[0], rr[1])
		if err != nil {
			return err
		}
	}
	return nil
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

// smokeConfig is a fast harness configuration for tests (no simulated
// latency, tiny workloads).
func smokeConfig() Config {
	return Config{Scale: SmokeScale()}
}

func TestFinishOverheadFigureSmoke(t *testing.T) {
	for _, app := range Apps {
		app := app
		t.Run(string(app), func(t *testing.T) {
			fig, err := smokeConfig().FinishOverheadFigure(app)
			if err != nil {
				t.Fatal(err)
			}
			if len(fig.Series) != 2 {
				t.Fatalf("series = %d", len(fig.Series))
			}
			for _, s := range fig.Series {
				if len(s.Points) != 2 {
					t.Fatalf("points = %d", len(s.Points))
				}
				for _, p := range s.Points {
					if p.Mean <= 0 || p.Min > p.Mean || p.Max < p.Mean {
						t.Fatalf("bad point %+v", p)
					}
				}
			}
			var buf bytes.Buffer
			if err := WriteFigure(&buf, fig); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "places") {
				t.Error("render missing header")
			}
		})
	}
}

func TestRestoreFigureSmoke(t *testing.T) {
	fig, details, err := smokeConfig().RestoreFigure(PageRank)
	if err != nil {
		t.Fatal(err)
	}
	// 3 modes + baseline.
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	if len(details) != 2*3 { // 2 place counts × 3 modes
		t.Fatalf("details = %d", len(details))
	}
	for _, d := range details {
		if d.TotalMS <= 0 {
			t.Fatalf("bad detail %+v", d)
		}
		if d.CheckpointPct < 0 || d.CheckpointPct > 100 || d.RestorePct < 0 || d.RestorePct > 100 {
			t.Fatalf("bad percentages %+v", d)
		}
	}
	// The failure runs must cost at least as much as... they include
	// checkpoint+restore, so they should exceed the baseline.
	base := fig.Series[3].Points[0].Mean
	for si := 0; si < 3; si++ {
		if fig.Series[si].Points[0].Mean < base {
			t.Logf("warning: mode %s cheaper than baseline (noise at smoke scale)", fig.Series[si].Name)
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, fig); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTableSmoke(t *testing.T) {
	rows, err := smokeConfig().CheckpointTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, app := range Apps {
			if r.MeanMS[app] <= 0 {
				t.Fatalf("places %d app %s: zero checkpoint time", r.Places, app)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteCheckpointTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestPercentTableSmoke(t *testing.T) {
	rows, err := smokeConfig().PercentTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Pct) != 3 {
			t.Fatalf("modes = %d", len(r.Pct))
		}
	}
	var buf bytes.Buffer
	if err := WritePercentTable(&buf, rows, 4); err != nil {
		t.Fatal(err)
	}
}

func TestLOCTable(t *testing.T) {
	rows, err := LOCTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's Table II core claim: the resilient version adds only
		// a modest amount of code — the checkpoint and restore methods —
		// on top of the non-resilient program.
		if r.ResilientTotal <= r.NonResilientTotal {
			t.Errorf("%s: resilient (%d) should exceed non-resilient (%d)",
				r.App, r.ResilientTotal, r.NonResilientTotal)
		}
		if r.CheckpointLOC <= 0 || r.RestoreLOC <= 0 || r.IsFinishedLOC <= 0 {
			t.Errorf("%s: zero method LOC: %+v", r.App, r)
		}
		added := r.ResilientTotal - r.NonResilientTotal
		if added > r.NonResilientTotal {
			t.Errorf("%s: resilience added %d lines, more than the whole program", r.App, added)
		}
	}
	var buf bytes.Buffer
	if err := WriteLOCTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LinReg") {
		t.Error("render missing app names")
	}
}

func TestLedgerCostHook(t *testing.T) {
	c := Config{LedgerWork: 10}
	fn := c.ledgerCost()
	if fn == nil {
		t.Fatal("ledgerCost nil with work set")
	}
	fn(3) // must not panic
	c.LedgerWork = 0
	if c.ledgerCost() != nil {
		t.Fatal("ledgerCost should be nil with zero work")
	}
}

func TestNewRuntimeRespectsResilience(t *testing.T) {
	c := smokeConfig()
	rt, err := c.newRuntime(2, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if !rt.Resilient() {
		t.Error("expected resilient runtime")
	}
	nrt, err := c.newRuntime(2, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nrt.Shutdown()
	if nrt.Resilient() {
		t.Error("expected non-resilient runtime")
	}
}

package bench

import (
	"fmt"

	"github.com/rgml/rgml/internal/core"
)

// CheckpointRow is one row of Table III: mean checkpoint time per
// application at one place count.
type CheckpointRow struct {
	Places int
	// MeanMS maps application name to mean checkpoint time in ms.
	MeanMS map[AppName]float64
}

// CheckpointTable regenerates Table III: the mean time per checkpoint for
// the three resilient applications, checkpointing every
// Scale.CheckpointInterval iterations with no failures. All three
// applications checkpoint their big input matrix with SaveReadOnly, so
// only the first checkpoint pays for it; the mean reflects the paper's
// measurement protocol.
func (c Config) CheckpointTable() ([]CheckpointRow, error) {
	var rows []CheckpointRow
	for _, places := range c.Scale.PlaceCounts {
		row := CheckpointRow{Places: places, MeanMS: make(map[AppName]float64)}
		for _, app := range Apps {
			var meanMS float64
			_, err := c.timeRuns(func(run int) (float64, error) {
				rt, err := c.newRuntime(places, true, nil)
				if err != nil {
					return 0, err
				}
				defer rt.Shutdown()
				exec, err := core.New(rt,
					core.WithCheckpointInterval(c.Scale.CheckpointInterval))
				if err != nil {
					return 0, err
				}
				a, err := c.newResilient(app, rt, exec.ActiveGroup(), places)
				if err != nil {
					return 0, err
				}
				if err := exec.Run(a); err != nil {
					return 0, err
				}
				m := exec.Metrics()
				if m.Checkpoints == 0 {
					return 0, fmt.Errorf("bench: no checkpoints taken")
				}
				ms := float64(m.CheckpointTime.Microseconds()) / 1000 / float64(m.Checkpoints)
				meanMS += ms / float64(c.Scale.Runs)
				return ms, nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: table3 %s places=%d: %w", app, places, err)
			}
			row.MeanMS[app] = meanMS
			c.progressf("table3 %s places=%d: %.1f ms/checkpoint", app, places, meanMS)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PercentRow is one row of Table IV: the share of total time consumed by
// checkpoint (C%) and restore (R%) operations for one application, per
// restoration mode, at the largest measured place count.
type PercentRow struct {
	App AppName
	// Pct maps mode name to [C%, R%].
	Pct map[string][2]float64
}

// PercentTable regenerates Table IV from the restore experiments at the
// largest configured place count.
func (c Config) PercentTable() ([]PercentRow, error) {
	places := c.Scale.PlaceCounts[len(c.Scale.PlaceCounts)-1]
	var rows []PercentRow
	for _, app := range Apps {
		row := PercentRow{App: app, Pct: make(map[string][2]float64)}
		for _, mode := range restoreModes {
			r, err := c.restoreRun(app, places, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: table4 %s mode=%v: %w", app, mode, err)
			}
			row.Pct[mode.String()] = [2]float64{r.CheckpointPct, r.RestorePct}
			c.progressf("table4 %s %v: C=%.0f%% R=%.0f%%", app, mode, r.CheckpointPct, r.RestorePct)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestFinishBenchSmoke runs the finish-architecture comparison at smoke
// scale and pins the report's structure plus the semantics oracle: every
// chaos cell must have matching kill fingerprints and bit-identical final
// weights across the central and sharded architectures, including at the
// odd place counts where partitions are uneven.
func TestFinishBenchSmoke(t *testing.T) {
	cfg := smokeConfig()
	cfg.LedgerWork = 50 // exercise the cost-charging path in both modes
	rep, err := cfg.FinishBench()
	if err != nil {
		t.Fatal(err)
	}
	places := cfg.throughputPlaces()
	if want := 2 * len(places); len(rep.Throughput) != want {
		t.Fatalf("throughput rows = %d, want %d", len(rep.Throughput), want)
	}
	if want := 2 * len(places); len(rep.Latency) != want {
		t.Fatalf("latency rows = %d, want %d", len(rep.Latency), want)
	}
	if want := 3 * len(places); len(rep.Overhead) != want {
		t.Fatalf("overhead rows = %d, want %d", len(rep.Overhead), want)
	}
	for _, row := range rep.Throughput {
		if row.Tasks <= 0 || row.TasksPerSec <= 0 {
			t.Errorf("throughput %s/p%d: tasks=%d rate=%.0f, want both > 0",
				row.Mode, row.Places, row.Tasks, row.TasksPerSec)
		}
		switch row.Mode {
		case "central":
			if row.LocalFast != 0 {
				t.Errorf("central/p%d: local fast-path tasks = %d, want 0", row.Places, row.LocalFast)
			}
		case "sharded":
			if row.LocalFast <= 0 {
				t.Errorf("sharded/p%d: local fast-path tasks = %d, want > 0", row.Places, row.LocalFast)
			}
			if row.LedgerBatches <= 0 {
				t.Errorf("sharded/p%d: ledger batches = %d, want > 0", row.Places, row.LedgerBatches)
			}
		default:
			t.Errorf("unknown throughput mode %q", row.Mode)
		}
	}
	if want := len(invariancePlaces) * len(invarianceSeeds); len(rep.Invariance) != want {
		t.Fatalf("invariance rows = %d, want %d", len(rep.Invariance), want)
	}
	for _, row := range rep.Invariance {
		if row.Places%2 == 0 {
			t.Errorf("invariance cell at even place count %d, want odd", row.Places)
		}
		if !row.SignaturesMatch {
			t.Errorf("places=%d seed=%d: kill fingerprints differ across finish modes", row.Places, row.Seed)
		}
		if !row.WeightsMatch {
			t.Errorf("places=%d seed=%d: final weights not bitwise equal across finish modes", row.Places, row.Seed)
		}
	}
	if !rep.Summary.Invariant {
		t.Error("summary reports semantics not invariant across finish modes")
	}

	var buf bytes.Buffer
	if err := WriteFinishReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"throughput\"", "\"chaos_invariance\"", "\"summary\"", "sharded"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

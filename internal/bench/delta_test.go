package bench

import "testing"

// TestDeltaSweepSmoke runs the delta-vs-full comparison at smoke scale and
// pins its headline claims: delta mode ships strictly fewer checkpoint
// bytes by carrying unchanged entries forward, both modes recover through
// the partial path with survivors kept, and the final weights are
// bit-identical across modes.
func TestDeltaSweepSmoke(t *testing.T) {
	cfg := smokeConfig()
	rows, err := cfg.DeltaSweep()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.Scale.PlaceCounts); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for i := 0; i < len(rows); i += 2 {
		full, delta := rows[i], rows[i+1]
		if full.Mode != "full" || delta.Mode != "delta" || full.Places != delta.Places {
			t.Fatalf("row pair %d mismatched: %+v / %+v", i/2, full, delta)
		}
		if !full.WeightsMatch || !delta.WeightsMatch {
			t.Errorf("places=%d: weights not bitwise equal across modes", full.Places)
		}
		if delta.SaveBytes >= full.SaveBytes {
			t.Errorf("places=%d: delta shipped %d checkpoint bytes, full %d: want a reduction",
				full.Places, delta.SaveBytes, full.SaveBytes)
		}
		if delta.Carried <= 0 || delta.SkippedBytes <= 0 {
			t.Errorf("places=%d: delta carried %d entries / skipped %d bytes, want both > 0",
				full.Places, delta.Carried, delta.SkippedBytes)
		}
		if full.Carried != 0 || full.SkippedBytes != 0 {
			t.Errorf("places=%d: full mode carried %d entries / skipped %d bytes, want 0",
				full.Places, full.Carried, full.SkippedBytes)
		}
		// Partial restore is independent of the checkpoint mode: survivors
		// keep validated state in both, and the load traffic is identical.
		for _, r := range []DeltaRow{full, delta} {
			if r.PartialKept <= 0 || r.PartialLoaded <= 0 {
				t.Errorf("places=%d mode=%s: partial kept=%d loaded=%d, want both > 0",
					r.Places, r.Mode, r.PartialKept, r.PartialLoaded)
			}
		}
		if full.LoadBytes != delta.LoadBytes {
			t.Errorf("places=%d: restore load bytes differ across modes: full %d, delta %d",
				full.Places, full.LoadBytes, delta.LoadBytes)
		}
	}
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteFigureChart(t *testing.T) {
	fig := &Figure{
		ID:     "figX",
		YLabel: "ms",
		Series: []Series{
			{Name: "up", Points: []Point{{Places: 2, Mean: 1}, {Places: 44, Mean: 10}}},
			{Name: "flat", Points: []Point{{Places: 2, Mean: 5}, {Places: 44, Mean: 5}}},
		},
	}
	var buf bytes.Buffer
	if err := WriteFigureChart(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "* up", "+ flat", "10.0", "0.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Both marks appear somewhere on the canvas.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("marks missing from canvas")
	}
}

func TestWriteFigureChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureChart(&buf, &Figure{ID: "e"}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("empty figure should render nothing")
	}
	zero := &Figure{ID: "z", Series: []Series{{Name: "s", Points: []Point{{Places: 0, Mean: 0}}}}}
	buf.Reset()
	if err := WriteFigureChart(&buf, zero); err != nil {
		t.Fatal(err)
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// DeltaRow is one (mode, places) cell of the delta-checkpoint sweep: a
// LinReg run that checkpoints its (immutable) training inputs with plain
// Save on every interval — the worst case for full checkpointing and the
// best case for delta carry-forward — with one failure injected and
// repaired by a redundant spare, so the restore exercises the partial
// (surviving-place) path.
type DeltaRow struct {
	Mode   string `json:"mode"` // "full" or "delta"
	Places int    `json:"places"`
	// Checkpoint traffic: bytes actually encoded and shipped to the
	// snapshot stores vs bytes avoided by carry-forward, and the
	// per-entry outcome split.
	SaveBytes    int64 `json:"checkpoint_bytes_shipped"`
	SkippedBytes int64 `json:"checkpoint_bytes_skipped"`
	Carried      int64 `json:"entries_carried"`
	Saved        int64 `json:"entries_saved"`
	// Restore traffic: bytes loaded from the stores, and the partial
	// path's kept/loaded split (zero for full mode, which reloads
	// everything everywhere).
	LoadBytes        int64 `json:"restore_bytes_loaded"`
	PartialKept      int64 `json:"restore_entries_kept"`
	PartialKeptBytes int64 `json:"restore_bytes_kept"`
	PartialLoaded    int64 `json:"restore_entries_loaded"`
	// WeightsMatch reports that the final model is bit-identical to the
	// full-checkpoint run at the same place count.
	WeightsMatch bool    `json:"weights_bitwise_equal"`
	TotalMS      float64 `json:"total_ms"`
}

// DeltaSweep runs the delta-checkpointing comparison over the configured
// place counts: for each count, one full-checkpoint run and one
// delta-checkpoint run of the same failure-and-recovery workload. It
// fails if the two modes do not converge to bit-identical weights.
func (c Config) DeltaSweep() ([]DeltaRow, error) {
	var rows []DeltaRow
	for _, places := range c.Scale.PlaceCounts {
		var ref la.Vector
		for _, delta := range []bool{false, true} {
			row, w, err := c.deltaRun(places, delta)
			if err != nil {
				return nil, fmt.Errorf("bench: delta places=%d delta=%v: %w", places, delta, err)
			}
			if ref == nil {
				ref = w
				row.WeightsMatch = true
			} else {
				row.WeightsMatch = vectorsBitEqual(ref, w)
				if !row.WeightsMatch {
					return nil, fmt.Errorf("bench: delta places=%d: delta-mode weights diverge from full-mode weights", places)
				}
			}
			rows = append(rows, row)
			c.progressf("delta places=%d mode=%s: shipped=%d skipped=%d loaded=%d kept=%d",
				places, row.Mode, row.SaveBytes, row.SkippedBytes, row.LoadBytes, row.PartialKeptBytes)
		}
	}
	return rows, nil
}

// deltaRun executes one LinReg failure-and-recovery run with inputs
// checkpointed via plain Save, under full or delta checkpointing, and
// returns the traffic counters plus the final weights.
func (c Config) deltaRun(places int, delta bool) (DeltaRow, la.Vector, error) {
	s := c.Scale
	reg := obs.NewRegistry()
	rt, err := c.newRuntime(places+1, true, reg) // one redundant spare
	if err != nil {
		return DeltaRow{}, nil, err
	}
	defer rt.Shutdown()
	killed := false
	victim := rt.Place(places / 2)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(s.CheckpointInterval),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithSpares(1),
		core.WithObs(reg),
		core.WithDelta(delta),
		core.WithAfterStep(func(iter int64) {
			if !killed && iter == int64(s.FailureIteration) {
				killed = true
				_ = rt.Kill(victim)
			}
		}),
	)
	if err != nil {
		return DeltaRow{}, nil, err
	}
	a, err := apps.NewLinReg(rt, apps.LinRegConfig{
		Examples: s.LinRegExamplesPerPlace * places, Features: s.LinRegFeatures,
		Iterations: s.Iterations, Seed: s.Seed,
		CheckpointInputs: true,
	}, exec.ActiveGroup())
	if err != nil {
		return DeltaRow{}, nil, err
	}
	start := time.Now()
	if err := exec.Run(a); err != nil {
		return DeltaRow{}, nil, err
	}
	totalMS := float64(time.Since(start).Microseconds()) / 1000
	if exec.Metrics().Restores == 0 {
		return DeltaRow{}, nil, fmt.Errorf("bench: no restore happened")
	}
	w, err := a.Weights()
	if err != nil {
		return DeltaRow{}, nil, err
	}
	mode := "full"
	if delta {
		mode = "delta"
	}
	return DeltaRow{
		Mode:             mode,
		Places:           places,
		SaveBytes:        reg.Counter("snapshot.save.bytes").Value(),
		SkippedBytes:     reg.Counter("snapshot.delta.bytes.skipped").Value(),
		Carried:          reg.Counter("snapshot.delta.carried").Value(),
		Saved:            reg.Counter("snapshot.delta.saved").Value(),
		LoadBytes:        reg.Counter("snapshot.load.bytes").Value(),
		PartialKept:      reg.Counter("dist.restore.partial.kept").Value(),
		PartialKeptBytes: reg.Counter("dist.restore.partial.bytes.kept").Value(),
		PartialLoaded:    reg.Counter("dist.restore.partial.loaded").Value(),
		TotalMS:          totalMS,
	}, w, nil
}

// vectorsBitEqual reports bitwise equality (NaN-safe, -0 ≠ +0 — exact
// replay is the contract, not numeric closeness).
func vectorsBitEqual(a, b la.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// deltaReport is the BENCH_delta.json document.
type deltaReport struct {
	Description string            `json:"description"`
	Environment map[string]string `json:"environment"`
	Workload    string            `json:"workload"`
	Rows        []DeltaRow        `json:"rows"`
}

// WriteDeltaReport writes the sweep as the BENCH_delta.json document.
func WriteDeltaReport(w io.Writer, c Config, rows []DeltaRow) error {
	s := c.Scale
	rep := deltaReport{
		Description: "Delta checkpointing vs full checkpointing: steady-state checkpoint " +
			"bytes shipped (unchanged entries are carried forward by reference) and " +
			"partial-restore traffic (surviving places keep CRC-validated state; only " +
			"dead-owner entries are loaded). Reproduce with `make bench-delta`.",
		Environment: c.runMeta(),
		Workload: fmt.Sprintf(
			"LinReg CG, %d examples/place x %d features, %d iterations, checkpoint every %d, "+
				"inputs checkpointed via plain Save each interval; one place killed at iteration %d "+
				"and replaced by a redundant spare (partial restore on the survivors)",
			s.LinRegExamplesPerPlace, s.LinRegFeatures, s.Iterations, s.CheckpointInterval,
			s.FailureIteration),
		Rows: rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

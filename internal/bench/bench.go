// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (section VII):
//
//	Table II  — lines-of-code comparison (static analysis of internal/apps)
//	Fig. 2-4  — per-iteration time, resilient vs non-resilient finish,
//	            weak scaling over place counts (LinReg, LogReg, PageRank)
//	Table III — mean checkpoint time vs places
//	Fig. 5-7  — total runtime with one injected failure under the three
//	            restoration modes, plus the non-resilient baseline
//	Table IV  — % of total time in checkpoint and restore at the largest
//	            place count, per mode
//
// Absolute numbers depend on the host (the emulation multiplexes places
// onto one process); the harness is tuned so the paper's *shapes* — who
// wins, how overheads scale — reproduce. EXPERIMENTS.md records both.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
)

// Scale sets the workload sizes. The paper's sizes (50 000 examples/place
// × 500 features; 2M edges/place) target an 11-node cluster; DefaultScale
// shrinks them to laptop size while preserving weak scaling (per-place
// work constant as places grow).
type Scale struct {
	// LinRegExamplesPerPlace and Features size the LinReg training set
	// (paper: 50 000 and 500).
	LinRegExamplesPerPlace, LinRegFeatures int
	// LogRegExamplesPerPlace and Features size the LogReg training set.
	LogRegExamplesPerPlace, LogRegFeatures int
	// PageRankNodesPerPlace and OutDegree size the network:
	// edges/place = nodes/place × out-degree (paper: 2M edges per place).
	PageRankNodesPerPlace, PageRankOutDegree int
	// Iterations per run (paper: 30).
	Iterations int
	// Runs to average per configuration (paper: 30).
	Runs int
	// CheckpointInterval in iterations (paper: 10).
	CheckpointInterval int
	// FailureIteration is when the failure is injected in the restore
	// experiments (paper: 15).
	FailureIteration int
	// PlaceCounts is the weak-scaling sweep (paper: 2..44 on 11 nodes).
	PlaceCounts []int
	// Seed selects all synthetic datasets.
	Seed uint64
}

// DefaultScale returns the laptop-sized configuration used by the checked
// in experiment outputs.
func DefaultScale() Scale {
	return Scale{
		LinRegExamplesPerPlace: 1500,
		LinRegFeatures:         64,
		LogRegExamplesPerPlace: 1500,
		LogRegFeatures:         64,
		PageRankNodesPerPlace:  4000,
		PageRankOutDegree:      32,
		Iterations:             30,
		Runs:                   3,
		CheckpointInterval:     10,
		FailureIteration:       15,
		PlaceCounts:            []int{2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44},
		Seed:                   20150525, // IPDPS workshops 2015
	}
}

// SmokeScale returns a tiny configuration for tests.
func SmokeScale() Scale {
	return Scale{
		LinRegExamplesPerPlace: 40,
		LinRegFeatures:         8,
		LogRegExamplesPerPlace: 40,
		LogRegFeatures:         8,
		PageRankNodesPerPlace:  40,
		PageRankOutDegree:      4,
		Iterations:             6,
		Runs:                   1,
		CheckpointInterval:     2,
		FailureIteration:       3,
		PlaceCounts:            []int{2, 4},
		Seed:                   1,
	}
}

// Config drives the harness.
type Config struct {
	Scale Scale
	// Latency and BytePeriod parameterize the simulated interconnect.
	// They default to zero: this host's sleep granularity (~1 ms) is far
	// coarser than a cluster fabric, so injecting sleep-based latency
	// would distort rather than model it. All modeled costs are real CPU
	// work instead (bookkeeping, serialization, copies).
	Latency    time.Duration
	BytePeriod time.Duration
	// LedgerWork scales the busy work the place-zero ledger performs per
	// bookkeeping event. The work grows with the ledger's live-task count
	// (per-finish, per-place transit state upkeep — the congestion that
	// makes place-zero resilient finish the paper's scalability
	// bottleneck). Zero disables the modeled work (the ablation).
	LedgerWork int
	// FinishMode selects the resilient-finish bookkeeping architecture for
	// every resilient runtime the harness builds: apgas.FinishCentral (the
	// paper-faithful place-zero ledger, the default) or
	// apgas.FinishSharded (home-based shards with a local fast path).
	FinishMode apgas.FinishMode
	// Store is the snapshot store's redundancy policy for every resilient
	// runtime the harness builds. The zero value keeps the paper-faithful
	// default (replicate, k=2); the store experiment overrides it per run.
	Store apgas.StorePolicy
	// Compress is the checkpoint compression policy for every resilient
	// runtime the harness builds. The zero value keeps the bit-identical
	// uncompressed codec; the compress experiment sweeps its own specs
	// and ignores it.
	Compress codec.Spec
	// Transport, when non-nil, builds a fresh communication backend for
	// each runtime the harness constructs (a transport is single-use: one
	// Start/Close lifecycle per runtime). Nil keeps the default in-process
	// backend. The CLIs wire the -transport flag here.
	Transport func() (transport.Transport, error)
	// TransportName records which backend Transport builds ("local" when
	// nil), so report metadata can name it without starting one.
	TransportName string
	// Progress, when non-nil, receives progress lines.
	Progress io.Writer
	// MetricsDir, when non-empty, receives one JSON metrics export per
	// restore run (the obs registry shared by the runtime and the
	// executor), named <app>_<mode>_p<places>.json. Table IV's percentages
	// derive from the same registry, so the exports let the dropped detail
	// (per-attempt traces, network bytes, pool hit rates) be inspected
	// after the fact.
	MetricsDir string
}

// DefaultConfig returns the configuration used for the checked-in outputs.
func DefaultConfig() Config {
	return Config{
		Scale:      DefaultScale(),
		LedgerWork: 250,
	}
}

// LedgerCostFunc returns the ledger's per-event work function (nil when
// LedgerWork is zero), for callers wiring a runtime by hand.
func (c Config) LedgerCostFunc() func(live int) { return c.ledgerCost() }

// ledgerCost returns the ledger's per-event work function.
func (c Config) ledgerCost() func(live int) {
	n := c.LedgerWork
	if n <= 0 {
		return nil
	}
	return func(live int) {
		// Real serialized work (not a sleep): the ledger is a bottleneck
		// precisely because its processing cannot overlap. The cost grows
		// with outstanding activity, as the protocol's per-finish
		// per-place state does.
		z := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < n*(live+1); i++ {
			z ^= z >> 30
			z *= 0xbf58476d1ce4e5b9
		}
		ledgerSink.Store(z)
	}
}

// ledgerSink defeats dead-code elimination of the busy work. Atomic
// because sharded-mode runtimes charge the cost from one goroutine per
// shard, not a single ledger goroutine.
var ledgerSink atomic.Uint64

// newRuntime builds a runtime for one experiment run. reg, when non-nil,
// instruments the runtime; restore runs share it with the executor so one
// export describes the whole run.
func (c Config) newRuntime(places int, resilient bool, reg *obs.Registry) (*apgas.Runtime, error) {
	opts := []apgas.Option{
		apgas.WithPlaces(places),
		apgas.WithResilient(resilient),
		apgas.WithFinishMode(c.FinishMode),
		apgas.WithStorePolicy(c.Store),
		apgas.WithNet(apgas.NetModel{Latency: c.Latency, BytePeriod: c.BytePeriod}),
		apgas.WithObs(reg),
	}
	if !c.Compress.IsZero() {
		opts = append(opts, apgas.WithCompression(c.Compress))
	}
	if resilient {
		if cost := c.ledgerCost(); cost != nil {
			opts = append(opts, apgas.WithLedgerCost(cost))
		}
	}
	if c.Transport != nil {
		tp, err := c.Transport()
		if err != nil {
			return nil, err
		}
		opts = append(opts, apgas.WithTransport(tp))
	}
	return apgas.New(opts...)
}

// runMeta describes the host and the active runtime configuration —
// finish architecture, store redundancy policy, transport backend and
// checkpoint compression — so every BENCH_* document is self-describing:
// two reports generated under different flags are distinguishable from
// their metadata alone.
func (c Config) runMeta() map[string]string {
	tname := c.TransportName
	if tname == "" {
		tname = "local"
	}
	store := "replicate(k=2) [default]"
	if !c.Store.IsZero() {
		store = c.Store.String()
	}
	return map[string]string{
		"goos":        runtime.GOOS,
		"goarch":      runtime.GOARCH,
		"go":          runtime.Version(),
		"date":        time.Now().UTC().Format("2006-01-02"),
		"finish":      c.FinishMode.String(),
		"store":       store,
		"transport":   tname,
		"compression": c.Compress.String(),
	}
}

// progressf writes a progress line if configured.
func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// AppName identifies one of the three benchmark applications.
type AppName string

// The three benchmark applications.
const (
	LinReg   AppName = "LinReg"
	LogReg   AppName = "LogReg"
	PageRank AppName = "PageRank"
)

// Apps lists the benchmark applications in paper order.
var Apps = []AppName{LinReg, LogReg, PageRank}

// stepper is the common surface of the non-resilient app variants.
type stepper interface {
	IsFinished() bool
	Step() error
}

// newNonResilient builds the plain (step-loop) variant of app for p places.
func (c Config) newNonResilient(app AppName, rt *apgas.Runtime, pg apgas.PlaceGroup, places int) (stepper, error) {
	s := c.Scale
	switch app {
	case LinReg:
		return apps.NewLinRegNonResilient(rt, apps.LinRegConfig{
			Examples: s.LinRegExamplesPerPlace * places, Features: s.LinRegFeatures,
			Iterations: s.Iterations, Seed: s.Seed,
		}, pg)
	case LogReg:
		return apps.NewLogRegNonResilient(rt, apps.LogRegConfig{
			Examples: s.LogRegExamplesPerPlace * places, Features: s.LogRegFeatures,
			Iterations: s.Iterations, Seed: s.Seed,
		}, pg)
	case PageRank:
		return apps.NewPageRankNonResilient(rt, apps.PageRankConfig{
			Nodes: s.PageRankNodesPerPlace * places, OutDegree: s.PageRankOutDegree,
			Iterations: s.Iterations, Seed: s.Seed,
		}, pg)
	}
	return nil, fmt.Errorf("bench: unknown app %q", app)
}

// newResilient builds the framework (IterativeApp) variant of app.
func (c Config) newResilient(app AppName, rt *apgas.Runtime, pg apgas.PlaceGroup, places int) (core.IterativeApp, error) {
	s := c.Scale
	switch app {
	case LinReg:
		return apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: s.LinRegExamplesPerPlace * places, Features: s.LinRegFeatures,
			Iterations: s.Iterations, Seed: s.Seed,
		}, pg)
	case LogReg:
		return apps.NewLogReg(rt, apps.LogRegConfig{
			Examples: s.LogRegExamplesPerPlace * places, Features: s.LogRegFeatures,
			Iterations: s.Iterations, Seed: s.Seed,
		}, pg)
	case PageRank:
		return apps.NewPageRank(rt, apps.PageRankConfig{
			Nodes: s.PageRankNodesPerPlace * places, OutDegree: s.PageRankOutDegree,
			Iterations: s.Iterations, Seed: s.Seed,
		}, pg)
	}
	return nil, fmt.Errorf("bench: unknown app %q", app)
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// ChaosSpec configures one chaos campaign: an application run repeatedly
// under a declarative fault schedule, once per seed, each run verified
// against a failure-free reference.
type ChaosSpec struct {
	// App is the benchmark application under test.
	App AppName
	// Places is the active place count; the problem is weak-scaled to it.
	Places int
	// Schedule is the fault schedule in the chaos DSL (chaos.Parse).
	Schedule string
	// Seeds are the engine seeds to sweep; each seed is one run. Empty
	// means {1}.
	Seeds []uint64
	// Mode is the restoration mode (default Shrink).
	Mode core.RestoreMode
	// Spares reserves extra places (beyond Places) for ReplaceRedundant.
	Spares int
	// Timeout bounds each run (0 means 30s); a run that exceeds it is
	// canceled through the executor's context and reported as unsurvived.
	Timeout time.Duration
}

// ChaosRun is the outcome of one seeded run of a campaign.
type ChaosRun struct {
	Seed uint64 `json:"seed"`
	// Survived is true when the run completed all its iterations despite
	// the schedule (recovering as needed).
	Survived bool   `json:"survived"`
	Error    string `json:"error,omitempty"`
	// Verified is true when the final iterate matched the failure-free
	// reference run.
	Verified bool `json:"verified"`
	// Signature is the injected kill log ("2@commit:p1,5@restore:p3") —
	// identical across runs with the same seed and schedule.
	Signature       string  `json:"signature"`
	Kills           int     `json:"kills"`
	Flakes          int64   `json:"flakes"`
	Restores        int64   `json:"restores"`
	RestoreAttempts int64   `json:"restoreAttempts"`
	ReplayedSteps   int64   `json:"replayedSteps"`
	ReplicaRetries  int64   `json:"replicaRetries"`
	ReplicaDropped  int64   `json:"replicaDropped"`
	DurationMS      float64 `json:"durationMS"`
}

// ChaosReport is the per-campaign JSON document rgmlbench emits.
type ChaosReport struct {
	// Environment names the host and the runtime configuration the
	// campaign ran under (finish, store, transport, compression).
	Environment map[string]string `json:"environment"`

	App      string     `json:"app"`
	Places   int        `json:"places"`
	Spares   int        `json:"spares,omitempty"`
	Mode     string     `json:"mode"`
	Schedule string     `json:"schedule"`
	Runs     []ChaosRun `json:"runs"`
	Survived int        `json:"survivedRuns"`
	Verified int        `json:"verifiedRuns"`
	Total    int        `json:"totalRuns"`
}

// Failed reports whether any run of the campaign ended unsurvived or with
// a wrong final iterate.
func (r ChaosReport) Failed() bool {
	return r.Survived != r.Total || r.Verified != r.Total
}

// ChaosCampaign executes spec: a failure-free reference run first, then
// one schedule-driven run per seed, each compared against the reference.
func (c Config) ChaosCampaign(spec ChaosSpec) (ChaosReport, error) {
	if spec.Places < 2 {
		return ChaosReport{}, fmt.Errorf("bench: chaos campaign needs at least 2 places, got %d", spec.Places)
	}
	sched, err := chaos.Parse(spec.Schedule)
	if err != nil {
		return ChaosReport{}, err
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ref, err := c.chaosReference(spec)
	if err != nil {
		return ChaosReport{}, fmt.Errorf("bench: reference run: %w", err)
	}
	rep := ChaosReport{
		Environment: c.runMeta(),

		App:      string(spec.App),
		Places:   spec.Places,
		Spares:   spec.Spares,
		Mode:     spec.Mode.String(),
		Schedule: sched.String(),
		Total:    len(seeds),
	}
	for _, seed := range seeds {
		run := c.chaosRun(spec, sched, seed, timeout, ref)
		if run.Survived {
			rep.Survived++
		}
		if run.Verified {
			rep.Verified++
		}
		rep.Runs = append(rep.Runs, run)
		c.progressf("chaos %s seed=%d survived=%v verified=%v kills=[%s]",
			spec.App, seed, run.Survived, run.Verified, run.Signature)
	}
	return rep, nil
}

// chaosReference runs the application failure-free and returns its final
// iterate.
func (c Config) chaosReference(spec ChaosSpec) (la.Vector, error) {
	rt, err := c.newRuntime(spec.Places, true, nil)
	if err != nil {
		return nil, err
	}
	defer rt.Shutdown()
	exec, err := core.New(rt, core.WithCheckpointInterval(c.Scale.CheckpointInterval))
	if err != nil {
		return nil, err
	}
	app, err := c.newResilient(spec.App, rt, exec.ActiveGroup(), spec.Places)
	if err != nil {
		return nil, err
	}
	if err := exec.Run(app); err != nil {
		return nil, err
	}
	v, err := finalIterate(app)
	if err != nil {
		return nil, err
	}
	return append(la.Vector(nil), v...), nil
}

// chaosRun executes one seeded schedule-driven run.
func (c Config) chaosRun(spec ChaosSpec, sched chaos.Schedule, seed uint64, timeout time.Duration, ref la.Vector) ChaosRun {
	run := ChaosRun{Seed: seed}
	fail := func(err error) ChaosRun {
		run.Error = err.Error()
		return run
	}
	reg := obs.NewRegistry()
	rt, err := c.newRuntime(spec.Places+spec.Spares, true, reg)
	if err != nil {
		return fail(err)
	}
	defer rt.Shutdown()
	eng, err := chaos.New(rt, sched, chaos.WithSeed(seed))
	if err != nil {
		return fail(err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(c.Scale.CheckpointInterval),
		core.WithRestoreMode(spec.Mode),
		core.WithSpares(spec.Spares),
		core.WithObs(reg),
		core.WithChaos(eng),
	)
	if err != nil {
		return fail(err)
	}
	app, err := c.newResilient(spec.App, rt, exec.ActiveGroup(), spec.Places)
	if err != nil {
		return fail(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	t0 := time.Now()
	runErr := exec.RunContext(ctx, app)
	run.DurationMS = float64(time.Since(t0).Microseconds()) / 1000

	kills := eng.Kills()
	run.Kills = len(kills)
	run.Signature = eng.Signature()
	run.Flakes = eng.Flakes()
	m := exec.Metrics()
	run.Restores = m.Restores
	run.RestoreAttempts = m.RestoreAttempts
	run.ReplayedSteps = m.ReplayedSteps
	run.ReplicaRetries = reg.Counter("snapshot.replicas.retries").Value()
	run.ReplicaDropped = reg.Counter("snapshot.replicas.dropped").Value()
	if runErr != nil {
		return fail(runErr)
	}
	run.Survived = true
	got, err := finalIterate(app)
	if err != nil {
		return fail(err)
	}
	run.Verified = iteratesMatch(ref, got)
	if !run.Verified {
		run.Error = "final iterate diverged from failure-free reference"
	}
	return run
}

// finalIterate extracts the application's converged state: the model
// weights for the regressions, the rank vector for PageRank.
func finalIterate(app core.IterativeApp) (la.Vector, error) {
	switch a := app.(type) {
	case *apps.LinReg:
		return a.Weights()
	case *apps.LogReg:
		return a.Weights()
	case *apps.PageRank:
		return a.Ranks()
	}
	return nil, fmt.Errorf("bench: no final-iterate accessor for %T", app)
}

// iteratesMatch compares a run's final iterate against the reference. The
// reductions all evaluate at the duplicated vectors' root place, so
// recovery paths reproduce the reference essentially exactly; the epsilon
// only absorbs repartitioned segment sums after a rebalance.
func iteratesMatch(ref, got la.Vector) bool {
	if len(ref) != len(got) {
		return false
	}
	for i := range ref {
		if diff := math.Abs(ref[i] - got[i]); diff > 1e-9*(1+math.Abs(ref[i])) {
			return false
		}
	}
	return true
}

// WriteChaosReport renders the campaign report as indented JSON.
func WriteChaosReport(w io.Writer, rep ChaosReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// chaosWeights runs the acceptance chaos schedule (kill at commit, kill
// mid-restore) against LinReg with the given compression policy and
// returns the final weights.
func chaosWeights(t *testing.T, c Config, spec codec.Spec) la.Vector {
	t.Helper()
	cc := c
	cc.Compress = spec
	rt, err := cc.newRuntime(4, true, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	eng, err := chaos.New(rt, chaos.MustParse(acceptanceSchedule), chaos.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(c.Scale.CheckpointInterval),
		core.WithChaos(eng),
	)
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.NewLinReg(rt, apps.LinRegConfig{
		Examples: 64, Features: 8, Iterations: 6, Seed: 1,
	}, exec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	if got := exec.Metrics().Restores; got == 0 {
		t.Fatalf("chaos run with %v finished without a restore", spec)
	}
	w, err := app.Weights()
	if err != nil {
		t.Fatal(err)
	}
	return append(la.Vector(nil), w...)
}

// TestChaosLosslessBitwiseEqualToNone is the cross-feature acceptance
// check: a chaos run that kills one place inside a checkpoint commit and
// another mid-restore produces bit-identical final weights whether
// checkpoints ship raw or lossless-compressed — compression changes the
// wire bytes, never the restored state.
func TestChaosLosslessBitwiseEqualToNone(t *testing.T) {
	c := smokeConfig()
	none := chaosWeights(t, c, codec.Spec{})
	lossless := chaosWeights(t, c, codec.Spec{Mode: codec.CompressLossless})
	if len(none) != len(lossless) {
		t.Fatalf("weight lengths diverged: %d vs %d", len(none), len(lossless))
	}
	for i := range none {
		if none[i] != lossless[i] {
			t.Fatalf("weights[%d] diverged: %v (none) vs %v (lossless)", i, none[i], lossless[i])
		}
	}
}

// TestChaosCampaignWithCompression: the full campaign runner under a
// lossless policy still passes its bitwise verification against the
// failure-free reference. Under a lossy policy that verification MUST
// fail — a restore passes through the quantized checkpoint, so the
// replayed trajectory legitimately differs from the reference by up to
// the error bound — but the run survives, restores, and two executions
// of the same campaign reproduce each other exactly.
func TestChaosCampaignWithCompression(t *testing.T) {
	c := smokeConfig()
	c.Compress = codec.Spec{Mode: codec.CompressLossless}
	rep, err := c.ChaosCampaign(acceptanceSpec(LinReg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("lossless campaign failed: %+v", rep.Runs)
	}
	if got := rep.Environment["compression"]; got != "lossless" {
		t.Fatalf("report compression = %q", got)
	}

	c.Compress = codec.Spec{Mode: codec.CompressLossy, ErrorBound: 1e-9}
	first, err := c.ChaosCampaign(acceptanceSpec(LinReg))
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.ChaosCampaign(acceptanceSpec(LinReg))
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]ChaosReport{"first": first, "second": second} {
		if got := rep.Environment["compression"]; got != "lossy(eps=1e-09)" {
			t.Fatalf("%s report compression = %q", name, got)
		}
		run := rep.Runs[0]
		if !run.Survived || run.Restores == 0 {
			t.Fatalf("%s lossy run did not survive a restore: %+v", name, run)
		}
		if run.Verified {
			t.Fatalf("%s lossy run passed bitwise verification — restore did not roll back to the quantized checkpoint", name)
		}
	}
	a, b := first.Runs[0], second.Runs[0]
	a.DurationMS, b.DurationMS = 0, 0
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("lossy campaign not reproducible:\n%s\n%s", aj, bj)
	}
}

// TestRunMetaRecordsConfiguration: every report's environment block
// carries the active finish/store/transport/compression configuration,
// so a BENCH_*.json is self-describing.
func TestRunMetaRecordsConfiguration(t *testing.T) {
	c := smokeConfig()
	meta := c.runMeta()
	for k, want := range map[string]string{
		"finish":      "central",
		"store":       "replicate(k=2) [default]",
		"transport":   "local",
		"compression": "none",
	} {
		if got := meta[k]; got != want {
			t.Errorf("runMeta[%q] = %q, want %q", k, got, want)
		}
	}
	c.Compress = codec.Spec{Mode: codec.CompressLossless}
	c.TransportName = "tcp"
	meta = c.runMeta()
	if meta["compression"] != "lossless" || meta["transport"] != "tcp" {
		t.Errorf("runMeta did not pick up overrides: %v", meta)
	}
	if !strings.Contains(meta["go"], "go") {
		t.Errorf("runMeta go version missing: %v", meta["go"])
	}
}

package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/snapshot"
)

// The resilient-store redundancy benchmark (BENCH_store.json): what each
// placement policy costs in storage and reconstruction time, and which
// correlated failures it actually survives.
//
// Two parts:
//
//   - Overhead sweep: for each policy, save a fixed payload at every
//     place, measure the bytes resident across the group against the raw
//     payload (k× for replication, (d+p)/d× plus shard-padding slack for
//     erasure), then kill as many places as the policy tolerates and time
//     the full reconstruction of every entry.
//
//   - Survival matrix: a LinReg run under a correlated double kill — an
//     entry's owner and its adjacent backup in the same inter-checkpoint
//     window. k=2 (the paper's scheme) must fail loudly with ErrDataLost;
//     k=3 and erasure recover and converge bit-identically to the
//     failure-free reference.

// StoreOverheadRow is one policy's storage/reconstruction measurement.
type StoreOverheadRow struct {
	Policy    string `json:"policy"`
	Places    int    `json:"places"`
	Tolerance int    `json:"tolerance"`
	RawBytes  int64  `json:"rawBytes"`
	// StoredBytes counts every resident byte across the group: payloads
	// plus replicas (or shards).
	StoredBytes int64   `json:"storedBytes"`
	Overhead    float64 `json:"overhead"`
	// Reconstruction: with Tolerance places killed, time to load every
	// entry (replica fallback or shard rebuild).
	RebuildMS   float64 `json:"rebuildMS,omitempty"`
	RebuildMBps float64 `json:"rebuildMBps,omitempty"`
	Rebuilds    int64   `json:"shardRebuilds,omitempty"`
}

// StoreSurvivalRow is one policy's outcome under the double-kill schedule.
type StoreSurvivalRow struct {
	Policy   string `json:"policy"`
	Schedule string `json:"schedule"`
	// Survived is true when the run completed despite the schedule.
	Survived bool `json:"survived"`
	// LoudLoss is true when an unsurvivable run failed with ErrDataLost —
	// the contract for unrecoverable state (never silent corruption).
	LoudLoss bool `json:"loudLoss,omitempty"`
	// Verified is true for survivors whose final weights are bit-identical
	// to the failure-free reference.
	Verified bool    `json:"verified,omitempty"`
	Restores int64   `json:"restores"`
	Repairs  int64   `json:"repairs"`
	Error    string  `json:"error,omitempty"`
	TotalMS  float64 `json:"totalMS"`
}

// StoreReport is the BENCH_store.json document.
type StoreReport struct {
	Description string             `json:"description"`
	Environment map[string]string  `json:"environment"`
	Workload    string             `json:"workload"`
	Overhead    []StoreOverheadRow `json:"overhead"`
	Survival    []StoreSurvivalRow `json:"survival"`
}

// storePolicies is the sweep: the ablation (k=1), the paper default
// (k=2), the double-failure-tolerant replica count (k=3) and two erasure
// geometries with tolerance 1 and 2 at sub-replication storage cost.
func storePolicies() []apgas.StorePolicy {
	return []apgas.StorePolicy{
		apgas.ReplicateStore(1),
		apgas.ReplicateStore(2),
		apgas.ReplicateStore(3),
		apgas.ErasureStore(4, 1),
		apgas.ErasureStore(3, 2),
	}
}

// StoreBench runs both parts at laptop scale.
func (c Config) StoreBench() (StoreReport, error) {
	const (
		places  = 8
		payload = 64 << 10 // per-place bytes
	)
	rep := StoreReport{
		Description: "Resilient-store redundancy policies: storage overhead and reconstruction " +
			"throughput per policy (replicate k copies vs Reed-Solomon d+p erasure shards), " +
			"plus a correlated double-kill survival matrix. Tolerating f failures costs " +
			"(k=f+1)x storage under replication but only (d+f)/d under erasure; k=2 (the " +
			"paper's double in-memory storage) fails loudly with ErrDataLost when an entry's " +
			"owner and backup die in one inter-checkpoint window. Reproduce with `make bench-store`.",
		Environment: c.runMeta(),
		Workload: fmt.Sprintf(
			"overhead: %d places x %d KiB/place, kill <tolerance> adjacent places, reload all; "+
				"survival: LinReg CG, %d examples/place x %d features, %d iterations, checkpoint "+
				"every %d, kill(iter=%d,place=1,span=2)",
			places, payload>>10, c.Scale.LinRegExamplesPerPlace, c.Scale.LinRegFeatures,
			c.Scale.Iterations, c.Scale.CheckpointInterval, c.Scale.FailureIteration),
	}
	for _, sp := range storePolicies() {
		row, err := c.storeOverheadRun(sp, places, payload)
		if err != nil {
			return rep, err
		}
		rep.Overhead = append(rep.Overhead, row)
		c.progressf("store %s: stored=%d raw=%d overhead=%.3f rebuild=%.1fMB/s",
			row.Policy, row.StoredBytes, row.RawBytes, row.Overhead, row.RebuildMBps)
	}
	sched := fmt.Sprintf("kill(iter=%d,place=1,span=2)", c.Scale.FailureIteration)
	for _, sp := range []apgas.StorePolicy{
		apgas.ReplicateStore(2),
		apgas.ReplicateStore(3),
		apgas.ErasureStore(3, 2),
	} {
		row := c.storeSurvivalRun(sp, sched)
		rep.Survival = append(rep.Survival, row)
		c.progressf("store %s under %s: survived=%v loudLoss=%v verified=%v",
			row.Policy, sched, row.Survived, row.LoudLoss, row.Verified)
	}
	return rep, nil
}

// storeOverheadRun measures one policy's resident bytes and, when it
// tolerates failures, its reconstruction throughput after killing that
// many adjacent places.
func (c Config) storeOverheadRun(sp apgas.StorePolicy, places, payload int) (StoreOverheadRow, error) {
	cc := c
	cc.Store = sp
	reg := obs.NewRegistry()
	rt, err := cc.newRuntime(places, true, reg)
	if err != nil {
		return StoreOverheadRow{}, err
	}
	defer rt.Shutdown()
	pg := rt.World()
	s, err := snapshot.New(rt, pg)
	if err != nil {
		return StoreOverheadRow{}, err
	}
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		data := make([]byte, payload)
		for i := range data {
			data[i] = byte(idx*131 + i)
		}
		s.Save(ctx, idx, data)
	})
	if err != nil {
		return StoreOverheadRow{}, err
	}
	stored, err := s.Bytes()
	if err != nil {
		return StoreOverheadRow{}, err
	}
	row := StoreOverheadRow{
		Policy:      sp.String(),
		Places:      places,
		Tolerance:   sp.Tolerance(),
		RawBytes:    int64(places * payload),
		StoredBytes: int64(stored),
	}
	row.Overhead = float64(row.StoredBytes) / float64(row.RawBytes)
	if row.Tolerance == 0 {
		return row, nil
	}
	// Kill the worst case for adjacent placement: `tolerance` consecutive
	// places starting at 1, then reload every entry from place zero.
	for i := 1; i <= row.Tolerance; i++ {
		if err := rt.Kill(rt.Place(i)); err != nil {
			return row, err
		}
	}
	start := time.Now()
	err = rt.Finish(func(ctx *apgas.Ctx) {
		for key := 0; key < places; key++ {
			if _, lerr := s.Load(ctx, key, key); lerr != nil {
				apgas.Throw(fmt.Errorf("bench: store %s: load %d after %d kills: %w",
					row.Policy, key, row.Tolerance, lerr))
			}
		}
	})
	if err != nil {
		return row, err
	}
	elapsed := time.Since(start)
	row.RebuildMS = float64(elapsed.Microseconds()) / 1000
	if secs := elapsed.Seconds(); secs > 0 {
		row.RebuildMBps = float64(row.RawBytes) / (1 << 20) / secs
	}
	row.Rebuilds = reg.Counter("snapshot.shards.rebuilt").Value()
	return row, nil
}

// storeSurvivalRun executes one LinReg run under the correlated
// double-kill schedule and records whether the policy survived it —
// and, when it could not, whether the loss was loud (ErrDataLost).
func (c Config) storeSurvivalRun(sp apgas.StorePolicy, schedule string) StoreSurvivalRow {
	row := StoreSurvivalRow{Policy: sp.String(), Schedule: schedule}
	const places = 6
	cc := c
	cc.Store = sp

	ref, err := cc.chaosReference(ChaosSpec{App: LinReg, Places: places})
	if err != nil {
		row.Error = err.Error()
		return row
	}
	reg := obs.NewRegistry()
	rt, err := cc.newRuntime(places, true, reg)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	defer rt.Shutdown()
	eng, err := chaos.New(rt, chaos.MustParse(schedule))
	if err != nil {
		row.Error = err.Error()
		return row
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(cc.Scale.CheckpointInterval),
		core.WithRestoreMode(core.Shrink),
		core.WithObs(reg),
		core.WithChaos(eng),
	)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	app, err := cc.newResilient(LinReg, rt, exec.ActiveGroup(), places)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	start := time.Now()
	runErr := exec.Run(app)
	row.TotalMS = float64(time.Since(start).Microseconds()) / 1000
	row.Restores = exec.Metrics().Restores
	row.Repairs = reg.Counter("core.store.repairs").Value()
	if runErr != nil {
		row.Error = runErr.Error()
		row.LoudLoss = errors.Is(runErr, snapshot.ErrDataLost)
		return row
	}
	row.Survived = true
	got, err := finalIterate(app)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	row.Verified = iteratesMatch(ref, got)
	if !row.Verified {
		row.Error = "final weights diverged from failure-free reference"
	}
	return row
}

// WriteStoreReport writes the report as the BENCH_store.json document.
func WriteStoreReport(w io.Writer, rep StoreReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
)

func TestStoreBenchSmoke(t *testing.T) {
	cfg := smokeConfig()
	rep, err := cfg.StoreBench()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(storePolicies()); len(rep.Overhead) != want {
		t.Fatalf("overhead rows = %d, want %d", len(rep.Overhead), want)
	}
	for _, row := range rep.Overhead {
		if row.StoredBytes < row.RawBytes {
			t.Errorf("%s: stored %d < raw %d", row.Policy, row.StoredBytes, row.RawBytes)
		}
		sp, bound := storeBound(t, row.Policy)
		// The acceptance bound: stored bytes within the policy's nominal
		// redundancy factor plus 1% slack (shard padding).
		if limit := float64(row.RawBytes) * bound * 1.01; float64(row.StoredBytes) > limit {
			t.Errorf("%s: stored %d exceeds %.2fx bound (limit %.0f)", row.Policy, row.StoredBytes, bound, limit)
		}
		if row.Tolerance != sp.Tolerance() {
			t.Errorf("%s: tolerance = %d, want %d", row.Policy, row.Tolerance, sp.Tolerance())
		}
		if row.Tolerance > 0 && row.RebuildMBps <= 0 {
			t.Errorf("%s: reconstruction throughput not measured", row.Policy)
		}
	}
	if len(rep.Survival) != 3 {
		t.Fatalf("survival rows = %d, want 3", len(rep.Survival))
	}
	for _, row := range rep.Survival {
		switch row.Policy {
		case "replicate(k=2)":
			if row.Survived || !row.LoudLoss {
				t.Errorf("k=2 under double kill: survived=%v loudLoss=%v, want loud ErrDataLost", row.Survived, row.LoudLoss)
			}
		default:
			if !row.Survived || !row.Verified {
				t.Errorf("%s under double kill: survived=%v verified=%v (err=%q), want recovery with verified weights",
					row.Policy, row.Survived, row.Verified, row.Error)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteStoreReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded StoreReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}

// storeBound maps a report policy label back to its policy and nominal
// storage factor (k for replication, (d+p)/d for erasure).
func storeBound(t *testing.T, label string) (apgas.StorePolicy, float64) {
	t.Helper()
	for _, sp := range storePolicies() {
		if sp.String() != label {
			continue
		}
		n := sp.Normalized()
		if n.Placement == apgas.PlacementErasure {
			return sp, float64(n.DataShards+n.ParityShards) / float64(n.DataShards)
		}
		return sp, float64(n.Replicas)
	}
	t.Fatalf("unknown policy label %q", label)
	return apgas.StorePolicy{}, 0
}

package bench

import (
	"math"
	"os"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/apgas/transport/tcp"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
)

// TestMain lets the tcp transport re-exec this test binary as its worker
// processes: a worker serves its place inside MaybeWorker and never
// reaches m.Run.
func TestMain(m *testing.M) {
	tcp.MaybeWorker()
	os.Exit(m.Run())
}

// tcpFactory builds fresh tcp backends. The timeout is generous because
// these runs execute under -race with worker processes spawning
// concurrently — a tight timeout turns scheduler stalls into spurious
// deaths. SIGKILL detection stays fast regardless: the connection reset
// reports it long before the heartbeat deadline.
func tcpFactory() (transport.Transport, error) {
	return tcp.New(tcp.WithHeartbeat(25*time.Millisecond, 2*time.Second)), nil
}

// backendRun captures what a run must reproduce across backends: the
// chaos engine's kill fingerprint and the bit pattern of the final
// iterate.
type backendRun struct {
	signature string
	bits      []uint64
	killed    int64
	failed    int64
	// workerTasks counts registered kernels executed inside worker
	// processes: zero by definition on the local backend, nonzero on a
	// data-plane backend — the invariance contract is that this is the
	// ONLY place the backends may differ.
	workerTasks int64
	// workerTasksAtKill is the count captured right after the mid-run
	// kill, for asserting dispatch re-establishes itself on the shrunken
	// group (runWithKill only).
	workerTasksAtKill int64
}

// runChaosSchedule executes one seeded chaos run of LinReg at the given
// place count over the given backend (nil factory: the default local
// backend) and returns its fingerprint.
func runChaosSchedule(t *testing.T, factory func() (transport.Transport, error), places int) backendRun {
	t.Helper()
	cfg := Config{Scale: SmokeScale()}
	cfg.Transport = factory
	rt, err := cfg.newRuntime(places, true, nil)
	if err != nil {
		t.Fatalf("newRuntime: %v", err)
	}
	defer rt.Shutdown()
	sched, err := chaos.Parse("kill(point=commit,iter=2,place=1)")
	if err != nil {
		t.Fatalf("chaos.Parse: %v", err)
	}
	eng, err := chaos.New(rt, sched, chaos.WithSeed(1))
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(cfg.Scale.CheckpointInterval),
		core.WithRestoreMode(core.Shrink),
		core.WithChaos(eng),
	)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	app, err := cfg.newResilient(LinReg, rt, exec.ActiveGroup(), places)
	if err != nil {
		t.Fatalf("newResilient: %v", err)
	}
	if err := exec.Run(app); err != nil {
		t.Fatalf("run (transport %s): %v", rt.TransportName(), err)
	}
	w, err := finalIterate(app)
	if err != nil {
		t.Fatalf("finalIterate: %v", err)
	}
	st := rt.Stats()
	return backendRun{
		signature:   eng.Signature(),
		bits:        vectorBits(w),
		killed:      st.PlacesKilled,
		failed:      st.PlacesFailed,
		workerTasks: st.WorkerTasks,
	}
}

// vectorBits is the exact bit pattern of a vector — cross-backend
// invariance is bitwise, not epsilon-close.
func vectorBits(v la.Vector) []uint64 {
	bits := make([]uint64, len(v))
	for i, x := range v {
		bits[i] = math.Float64bits(x)
	}
	return bits
}

// TestCrossBackendChaosInvariance runs the same seeded chaos schedule over
// the local and tcp backends at several place counts: the kill
// fingerprints must be identical and the final iterates bitwise equal —
// the transport seam must not perturb the emulator's determinism.
func TestCrossBackendChaosInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, places := range []int{3, 5} {
		local := runChaosSchedule(t, nil, places)
		over := runChaosSchedule(t, tcpFactory, places)
		if local.signature != over.signature {
			t.Errorf("places=%d: kill fingerprints diverge: local %q, tcp %q",
				places, local.signature, over.signature)
		}
		if local.killed != over.killed || over.failed != 0 {
			t.Errorf("places=%d: death accounting diverges: local killed=%d, tcp killed=%d failed=%d",
				places, local.killed, over.killed, over.failed)
		}
		// The one permitted difference: where the kernels physically ran.
		if local.workerTasks != 0 {
			t.Errorf("places=%d: local backend executed %d worker tasks, want 0", places, local.workerTasks)
		}
		if over.workerTasks == 0 {
			t.Errorf("places=%d: tcp backend executed no worker-side kernels — the data plane never engaged", places)
		}
		if len(local.bits) != len(over.bits) {
			t.Fatalf("places=%d: iterate lengths diverge: %d vs %d", places, len(local.bits), len(over.bits))
		}
		for i := range local.bits {
			if local.bits[i] != over.bits[i] {
				t.Fatalf("places=%d: final iterate diverges at [%d]: %#x vs %#x",
					places, i, local.bits[i], over.bits[i])
			}
		}
	}
}

// runWithKill executes one LinReg run at 4 places, killing place 1 after
// iteration 3 with the given kill function, and returns the final
// iterate's bits. The kill function must not return until the runtime has
// registered the death, so both variants observe it at the same point of
// the iteration schedule.
func runWithKill(t *testing.T, factory func() (transport.Transport, error), kill func(rt *apgas.Runtime, victim apgas.Place)) backendRun {
	t.Helper()
	const places = 4
	cfg := Config{Scale: SmokeScale()}
	cfg.Transport = factory
	rt, err := cfg.newRuntime(places, true, nil)
	if err != nil {
		t.Fatalf("newRuntime: %v", err)
	}
	defer rt.Shutdown()
	killed := false
	victim := rt.Place(1)
	var atKill int64
	exec, err := core.New(rt,
		core.WithCheckpointInterval(cfg.Scale.CheckpointInterval),
		core.WithRestoreMode(core.Shrink),
		core.WithAfterStep(func(iter int64) {
			if !killed && iter == 3 {
				killed = true
				kill(rt, victim)
				atKill = rt.Stats().WorkerTasks
			}
		}),
	)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	app, err := cfg.newResilient(LinReg, rt, exec.ActiveGroup(), places)
	if err != nil {
		t.Fatalf("newResilient: %v", err)
	}
	if err := exec.Run(app); err != nil {
		t.Fatalf("run (transport %s): %v", rt.TransportName(), err)
	}
	if exec.Metrics().Restores == 0 {
		t.Fatalf("no restore happened (transport %s)", rt.TransportName())
	}
	w, err := finalIterate(app)
	if err != nil {
		t.Fatalf("finalIterate: %v", err)
	}
	st := rt.Stats()
	return backendRun{
		bits:              vectorBits(w),
		killed:            st.PlacesKilled,
		failed:            st.PlacesFailed,
		workerTasks:       st.WorkerTasks,
		workerTasksAtKill: atKill,
	}
}

// TestRealProcessKillMatchesLocalChaosKill is the acceptance check for
// transport fidelity: SIGKILLing a real worker process under the tcp
// backend — death discovered by the heartbeat failure detector, not an
// administrative mark — must recover to the same final weights as an
// equivalent administrative kill under the local backend.
func TestRealProcessKillMatchesLocalChaosKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs worker processes")
	}
	local := runWithKill(t, nil, func(rt *apgas.Runtime, victim apgas.Place) {
		if err := rt.Kill(victim); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	if local.killed != 1 || local.failed != 0 {
		t.Fatalf("local run: killed=%d failed=%d, want 1/0", local.killed, local.failed)
	}

	over := runWithKill(t, tcpFactory, func(rt *apgas.Runtime, victim apgas.Place) {
		tp, ok := rt.Transport().(*tcp.Transport)
		if !ok {
			t.Fatalf("transport is %T, want *tcp.Transport", rt.Transport())
		}
		if err := tp.KillWorkerProcess(victim.ID); err != nil {
			t.Fatalf("KillWorkerProcess: %v", err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for !rt.IsDead(victim) {
			if time.Now().After(deadline) {
				t.Fatalf("place %v not declared dead within 10s of its process dying", victim)
			}
			time.Sleep(time.Millisecond)
		}
	})
	// The death must have come through the failure detector, not Kill.
	if over.killed != 0 || over.failed != 1 {
		t.Fatalf("tcp run: killed=%d failed=%d, want 0/1", over.killed, over.failed)
	}
	// Worker-side execution must have been live before the SIGKILL and
	// re-established on the shrunken group after the restore — the
	// replacement workers' cold caches refill and dispatch resumes.
	if over.workerTasksAtKill == 0 {
		t.Fatal("tcp run: no worker-side kernels before the kill")
	}
	if over.workerTasks <= over.workerTasksAtKill {
		t.Fatalf("tcp run: worker tasks stuck at %d after the kill (total %d) — dispatch never recovered",
			over.workerTasksAtKill, over.workerTasks)
	}
	if local.workerTasks != 0 {
		t.Fatalf("local run executed %d worker tasks, want 0", local.workerTasks)
	}
	if len(local.bits) != len(over.bits) {
		t.Fatalf("iterate lengths diverge: %d vs %d", len(local.bits), len(over.bits))
	}
	for i := range local.bits {
		if local.bits[i] != over.bits[i] {
			t.Fatalf("final iterate diverges at [%d]: %#x vs %#x", i, local.bits[i], over.bits[i])
		}
	}
}

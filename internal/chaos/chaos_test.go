package chaos

import (
	"errors"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/obs"
)

func newTestRuntime(t *testing.T, places int) *apgas.Runtime {
	t.Helper()
	rt, err := apgas.New(
		apgas.WithPlaces(places),
		apgas.WithResilient(true),
		apgas.WithObs(obs.NewRegistry()),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestEngineRequiresResilientRuntime(t *testing.T) {
	rt, err := apgas.New(apgas.WithPlaces(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if _, err := New(rt, MustParse("kill(place=1)")); err == nil {
		t.Fatal("expected error on non-resilient runtime")
	}
}

func TestPinnedKillFiresOnceAtIteration(t *testing.T) {
	rt := newTestRuntime(t, 4)
	e, err := New(rt, MustParse("kill(place=2,iter=3)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	for iter := int64(0); iter < 6; iter++ {
		e.Advance(iter)
		if err := e.At(PointStep); err != nil {
			t.Fatal(err)
		}
	}
	kills := e.Kills()
	if len(kills) != 1 {
		t.Fatalf("got %d kills, want 1 (%v)", len(kills), kills)
	}
	if kills[0].Iteration != 3 || kills[0].Place.ID != 2 || kills[0].Point != PointStep {
		t.Fatalf("unexpected kill %+v", kills[0])
	}
	if !rt.IsDead(apgas.Place{ID: 2}) {
		t.Fatal("place 2 should be dead")
	}
	if got := e.Signature(); got != "3@step:p2" {
		t.Fatalf("signature %q", got)
	}
}

func TestDisarmedEngineIsInert(t *testing.T) {
	rt := newTestRuntime(t, 3)
	e, err := New(rt, MustParse("kill(place=1)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Advance(0)
	if err := e.At(PointStep); err != nil {
		t.Fatal(err)
	}
	if len(e.Kills()) != 0 {
		t.Fatal("disarmed engine killed a place")
	}
	// Runtime-level points are equally inert while disarmed.
	if err := rt.InjectFault(apgas.FaultPointSpawn, rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	if len(e.Kills()) != 0 || e.Fired() != 0 {
		t.Fatal("disarmed engine fired via runtime point")
	}
}

func TestBurstKillsKPlaces(t *testing.T) {
	rt := newTestRuntime(t, 6)
	e, err := New(rt, MustParse("burst(k=3,iter=2)"), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	e.Advance(2)
	if err := e.At(PointStep); err != nil {
		t.Fatal(err)
	}
	kills := e.Kills()
	if len(kills) != 3 {
		t.Fatalf("got %d kills, want 3", len(kills))
	}
	seen := map[int]bool{}
	for _, k := range kills {
		if k.Place.ID == 0 {
			t.Fatal("burst killed place zero")
		}
		seen[k.Place.ID] = true
	}
	if len(seen) != 3 {
		t.Fatalf("burst revisited a victim: %v", kills)
	}
}

func TestBurstClampsToLivePopulation(t *testing.T) {
	rt := newTestRuntime(t, 3)
	e, err := New(rt, MustParse("burst(k=10,iter=0)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	e.Advance(0)
	if err := e.At(PointStep); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Kills()); got != 2 {
		t.Fatalf("got %d kills, want 2 (all non-zero places)", got)
	}
}

func TestRandomVictimDeterministicAcrossEngines(t *testing.T) {
	sig := func() string {
		rt := newTestRuntime(t, 8)
		e, err := New(rt, MustParse("kill(iter=1);kill(iter=3);kill(iter=5)"), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		e.Arm()
		for iter := int64(0); iter < 8; iter++ {
			e.Advance(iter)
			_ = e.At(PointStep)
		}
		return e.Signature()
	}
	a, b := sig(), sig()
	if a != b || a == "" {
		t.Fatalf("kill sequences diverged: %q vs %q", a, b)
	}
}

func TestSeedChangesRandomVictims(t *testing.T) {
	sig := func(seed uint64) string {
		rt := newTestRuntime(t, 16)
		e, err := New(rt, MustParse("burst(k=4,iter=0)"), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		e.Arm()
		e.Advance(0)
		_ = e.At(PointStep)
		return e.Signature()
	}
	if sig(1) == sig(99) {
		t.Log("warning: two seeds drew the same burst; retrying with a third")
		if sig(1) == sig(12345) {
			t.Fatal("victim selection ignores the seed")
		}
	}
}

func TestFlakeInjectsTransientFault(t *testing.T) {
	rt := newTestRuntime(t, 2)
	e, err := New(rt, MustParse("flake(times=2)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	for i := 0; i < 2; i++ {
		err := rt.InjectFault(apgas.FaultPointReplica, rt.Place(1))
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fault %d: got %v, want ErrInjected", i, err)
		}
	}
	// Budget of 2 exhausted: the third replica write is clean.
	if err := rt.InjectFault(apgas.FaultPointReplica, rt.Place(1)); err != nil {
		t.Fatalf("after budget: %v", err)
	}
	if e.Flakes() != 2 {
		t.Fatalf("Flakes() = %d, want 2", e.Flakes())
	}
	if len(e.Kills()) != 0 {
		t.Fatal("flake rule killed a place")
	}
}

func TestProbabilisticRuleRespectsBudgetAndSeed(t *testing.T) {
	fires := func(seed uint64) int {
		rt := newTestRuntime(t, 4)
		e, err := New(rt, MustParse("flake(prob=0.5,times=-1)"), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		e.Arm()
		n := 0
		for i := 0; i < 64; i++ {
			if rt.InjectFault(apgas.FaultPointReplica, rt.Place(1)) != nil {
				n++
			}
		}
		return n
	}
	a, b := fires(5), fires(5)
	if a != b {
		t.Fatalf("same seed, different firing counts: %d vs %d", a, b)
	}
	if a == 0 || a == 64 {
		t.Fatalf("prob=0.5 fired %d/64 times; decision stream looks broken", a)
	}
}

func TestIterationPinnedRuleNeverFiresOutsideRun(t *testing.T) {
	rt := newTestRuntime(t, 3)
	e, err := New(rt, MustParse("kill(place=1,iter=0,point=spawn)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	// The engine's clock is -1 until an executor advances it, so spawns
	// during application construction cannot match iteration-pinned rules.
	if err := rt.InjectFault(apgas.FaultPointSpawn, rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	if len(e.Kills()) != 0 {
		t.Fatal("iteration-pinned rule fired before the run started")
	}
	e.Advance(0)
	_ = rt.InjectFault(apgas.FaultPointSpawn, rt.Place(1))
	if len(e.Kills()) != 1 {
		t.Fatal("rule did not fire once the clock matched")
	}
}

// TestKillFingerprintFinishModeInvariance drives the same schedule through
// a sequential spawn pattern under both resilient-finish architectures and
// requires identical kill fingerprints: the spawn fault point fires in
// AsyncAt *before* the bookkeeping mode branches, so sharding the ledger
// must not perturb when or whom a schedule kills.
func TestKillFingerprintFinishModeInvariance(t *testing.T) {
	run := func(mode apgas.FinishMode) string {
		rt, err := apgas.New(
			apgas.WithPlaces(5),
			apgas.WithResilient(true),
			apgas.WithFinishMode(mode),
			apgas.WithObs(obs.NewRegistry()),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Shutdown()
		e, err := New(rt, MustParse("kill(point=spawn,prob=0.3,times=2)"), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		e.Arm()
		e.Advance(0)
		// Sequential spawns: each finish waits before the next spawn, so
		// the spawn-point evaluation order is deterministic.
		for i := 0; i < 12; i++ {
			target := rt.Place(1 + i%4)
			_ = rt.Finish(func(ctx *apgas.Ctx) {
				ctx.AsyncAt(target, func(*apgas.Ctx) {})
			})
		}
		return e.Signature()
	}
	central := run(apgas.FinishCentral)
	sharded := run(apgas.FinishSharded)
	if central == "" {
		t.Fatal("schedule never fired; test is vacuous")
	}
	if central != sharded {
		t.Fatalf("kill fingerprint diverged across finish modes:\n central: %q\n sharded: %q", central, sharded)
	}
}

func TestSpanKillsAdjacentPlaces(t *testing.T) {
	rt := newTestRuntime(t, 5)
	e, err := New(rt, MustParse("kill(place=2,iter=1,span=3)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	e.Advance(1)
	if err := e.At(PointStep); err != nil {
		t.Fatal(err)
	}
	// The victim plus the next two live non-zero places by ascending ID.
	if got := e.Signature(); got != "1@step:p2,1@step:p3,1@step:p4" {
		t.Fatalf("signature %q", got)
	}
}

func TestSpanWrapsPastHighestPlace(t *testing.T) {
	rt := newTestRuntime(t, 4)
	e, err := New(rt, MustParse("kill(place=3,iter=0,span=2)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	e.Advance(0)
	if err := e.At(PointStep); err != nil {
		t.Fatal(err)
	}
	// Place 3 is the highest; the span wraps around to place 1 (never 0).
	if got := e.Signature(); got != "0@step:p3,0@step:p1" {
		t.Fatalf("signature %q", got)
	}
}

func TestSpanSkipsDeadPlacesAndClamps(t *testing.T) {
	rt := newTestRuntime(t, 5)
	if err := rt.Kill(rt.Place(3)); err != nil {
		t.Fatal(err)
	}
	e, err := New(rt, MustParse("kill(place=2,iter=0,span=10)"))
	if err != nil {
		t.Fatal(err)
	}
	e.Arm()
	e.Advance(0)
	if err := e.At(PointStep); err != nil {
		t.Fatal(err)
	}
	// Place 3 is already dead, so the span takes 2, 4 and wraps to 1 —
	// clamped to the live non-zero population.
	if got := e.Signature(); got != "0@step:p2,0@step:p4,0@step:p1" {
		t.Fatalf("signature %q", got)
	}
}

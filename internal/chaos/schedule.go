package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// Point identifies an instrumented location in the framework where the
// engine can act. The executor fires Step/Commit/Restore from its
// single-threaded drive loop (deterministic evaluation order); Spawn and
// Replica fire concurrently from tasks (see the determinism notes on
// Engine).
type Point string

// The instrumented fault points.
const (
	// PointStep fires immediately before each iteration's Step call.
	PointStep Point = "step"
	// PointCommit fires inside AppResilientStore.Commit, after every
	// object of the checkpoint has been saved but before the pending
	// snapshot is promoted to the recovery point — the window where
	// ReStore-style systems historically break.
	PointCommit Point = "commit"
	// PointRestore fires during recovery, after the restoration mode has
	// planned the new place group but before the application's Restore
	// runs — a kill here aborts the attempt mid-restore and forces a
	// further attempt.
	PointRestore Point = "restore"
	// PointSpawn fires on every apgas task spawn (AsyncAt).
	PointSpawn Point = Point("spawn")
	// PointReplica fires on every snapshot backup put. Flake rules at
	// this point inject transient write failures that exercise the
	// snapshot layer's bounded retry-with-backoff.
	PointReplica Point = Point("replica")
)

func validPoint(p Point) bool {
	switch p {
	case PointStep, PointCommit, PointRestore, PointSpawn, PointReplica:
		return true
	}
	return false
}

// Kind discriminates what a matched rule does.
type Kind int

const (
	// KindKill fail-stops the victim place(s) via Runtime.Kill.
	KindKill Kind = iota
	// KindFlake injects a transient fault into the operation at the
	// point (honoured by retryable sites, i.e. replica writes); no place
	// dies.
	KindFlake
)

// AnyIteration makes a rule eligible at every iteration.
const AnyIteration int64 = -1

// RandomVictim selects a pseudo-random live non-zero place per firing,
// drawn from the rule's private deterministic stream.
const RandomVictim = -1

// Rule is one clause of a Schedule. The zero value is not valid; build
// rules through Parse or fill in at least Point.
type Rule struct {
	// Point is where the rule is evaluated.
	Point Point
	// Kind selects kill vs transient-fault behaviour.
	Kind Kind
	// Iteration restricts the rule to the executor iteration it names;
	// AnyIteration (-1) matches every iteration. Points that fire before
	// the executor starts (e.g. spawns during application construction)
	// see iteration -1 and therefore only match AnyIteration rules.
	Iteration int64
	// Place is the victim's place ID, or RandomVictim (-1) to draw a
	// live non-zero place from the rule's deterministic stream.
	Place int
	// Prob is the firing probability in (0,1]; 0 means 1 (always fire
	// when the rule matches).
	Prob float64
	// Count is the burst size: how many places one firing kills
	// (clamped to the live non-zero population). 0 means 1.
	Count int
	// Span widens each kill into a correlated failure: the victim plus
	// the next Span-1 live non-zero places by ascending ID (wrapping) die
	// in the same firing. Adjacent places are exactly where a k-replicated
	// or erasure-coded entry keeps its redundancy, so span kills model the
	// rack-level correlated failures that defeat naive placement. 0 means
	// 1 (just the victim).
	Span int
	// MaxFires bounds how many times the rule fires; 0 means 1 and
	// negative means unlimited.
	MaxFires int
}

// normalize applies the documented defaults.
func (r Rule) normalize() Rule {
	if r.Point == "" {
		if r.Kind == KindFlake {
			r.Point = PointReplica
		} else {
			r.Point = PointStep
		}
	}
	if r.Count <= 0 {
		r.Count = 1
	}
	if r.Span <= 0 {
		r.Span = 1
	}
	if r.MaxFires == 0 {
		r.MaxFires = 1
	}
	if r.Prob < 0 || r.Prob > 1 {
		r.Prob = 1
	}
	return r
}

// validate reports structural problems Parse and NewEngine reject.
func (r Rule) validate() error {
	if !validPoint(r.Point) {
		return fmt.Errorf("chaos: unknown point %q", r.Point)
	}
	if r.Kind == KindFlake && r.Point != PointReplica {
		return fmt.Errorf("chaos: flake rules only apply to the replica point, got %q", r.Point)
	}
	if r.Kind == KindFlake && r.Span > 1 {
		return fmt.Errorf("chaos: span only applies to kill rules")
	}
	if r.Place == 0 {
		return fmt.Errorf("chaos: place zero is immortal and cannot be a victim")
	}
	if r.Place < RandomVictim {
		return fmt.Errorf("chaos: invalid victim place %d", r.Place)
	}
	if r.Iteration < AnyIteration {
		return fmt.Errorf("chaos: invalid iteration %d", r.Iteration)
	}
	return nil
}

// String renders the rule in the Parse grammar, so a Schedule round-trips
// through its textual form (campaign reports embed it).
func (r Rule) String() string {
	verb := "kill"
	if r.Kind == KindFlake {
		verb = "flake"
	} else if r.Count > 1 {
		verb = "burst"
	}
	var args []string
	args = append(args, "point="+string(r.Point))
	if r.Iteration != AnyIteration {
		args = append(args, "iter="+strconv.FormatInt(r.Iteration, 10))
	}
	if r.Place != RandomVictim {
		args = append(args, "place="+strconv.Itoa(r.Place))
	}
	if r.Prob > 0 && r.Prob < 1 {
		args = append(args, "prob="+strconv.FormatFloat(r.Prob, 'g', -1, 64))
	}
	if r.Count > 1 {
		args = append(args, "k="+strconv.Itoa(r.Count))
	}
	if r.Span > 1 {
		args = append(args, "span="+strconv.Itoa(r.Span))
	}
	if r.MaxFires != 1 {
		args = append(args, "times="+strconv.Itoa(r.MaxFires))
	}
	return verb + "(" + strings.Join(args, ",") + ")"
}

// Schedule is an ordered list of rules; every matched rule of a point is
// evaluated at each firing, in declaration order.
type Schedule []Rule

// String renders the schedule in the Parse grammar.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// Parse builds a Schedule from its compact textual form: semicolon-
// separated clauses `verb(key=value,...)`.
//
//	kill(place=3,iter=7)              kill place 3 at iteration 7
//	kill(point=commit,prob=0.5)       kill a random live non-zero place at
//	                                  a checkpoint commit, with prob 0.5
//	kill(point=restore)               kill a random place mid-restore
//	burst(k=3,iter=5)                 kill 3 random places at iteration 5
//	kill(iter=3,place=1,span=2)       correlated failure: place 1 and the
//	                                  next live place die together
//	flake(prob=0.3,times=5)           up to 5 transient replica-write faults
//
// Verbs: kill, burst (kill with k>1), flake (transient replica fault).
// Keys: point (step|commit|restore|spawn|replica), iter, place, prob,
// k (burst size), span (correlated adjacent kills per victim), times
// (max fires, -1 unlimited). Defaults: point=step (flake: replica),
// iter=any, place=random, prob=1, k=1, span=1, times=1.
func Parse(text string) (Schedule, error) {
	var sched Schedule
	for _, clause := range strings.Split(text, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		open := strings.IndexByte(clause, '(')
		if open < 0 || !strings.HasSuffix(clause, ")") {
			return nil, fmt.Errorf("chaos: malformed clause %q (want verb(k=v,...))", clause)
		}
		verb := strings.TrimSpace(clause[:open])
		r := Rule{Iteration: AnyIteration, Place: RandomVictim}
		switch verb {
		case "kill", "burst":
			r.Kind = KindKill
		case "flake":
			r.Kind = KindFlake
		default:
			return nil, fmt.Errorf("chaos: unknown verb %q (want kill, burst or flake)", verb)
		}
		body := clause[open+1 : len(clause)-1]
		for _, kv := range strings.Split(body, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: malformed argument %q in %q", kv, clause)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "point":
				r.Point = Point(val)
			case "iter":
				r.Iteration, err = strconv.ParseInt(val, 10, 64)
			case "place":
				r.Place, err = strconv.Atoi(val)
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob <= 0 || r.Prob > 1) {
					err = fmt.Errorf("probability %v outside (0,1]", r.Prob)
				}
			case "k", "count":
				r.Count, err = strconv.Atoi(val)
			case "span":
				r.Span, err = strconv.Atoi(val)
			case "times":
				r.MaxFires, err = strconv.Atoi(val)
			default:
				return nil, fmt.Errorf("chaos: unknown key %q in %q", key, clause)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: bad %s in %q: %v", key, clause, err)
			}
		}
		if verb == "burst" && r.Count <= 1 {
			return nil, fmt.Errorf("chaos: burst clause %q needs k>1", clause)
		}
		r = r.normalize()
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("%w (in %q)", err, clause)
		}
		sched = append(sched, r)
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("chaos: empty schedule")
	}
	return sched, nil
}

// MustParse is Parse for tests and compiled-in schedules; it panics on
// error.
func MustParse(text string) Schedule {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Package chaos is the framework's deterministic fault-injection engine:
// it drives apgas.Runtime.Kill (and transient replica-write faults) from
// declarative, seed-reproducible schedules, at injection points woven into
// the executor's step/checkpoint/restore phases, the snapshot replica-write
// path and the apgas task spawn path.
//
// The engine turns the hand-placed `rt.Kill(p)` calls of the evaluation
// harness into replayable experiments: "kill place 3 at iteration 7",
// "kill a random non-zero place during a checkpoint commit with
// probability p", "burst-kill k places in one window", "make replica
// writes flake". Same seed + same schedule ⇒ the same kill sequence, which
// is what makes recovery bugs found by a chaos campaign reproducible.
//
// # Determinism
//
// Every rule owns a private PRNG stream seeded from (engine seed, rule
// index), and rule evaluation is serialized under the engine's lock, so a
// schedule's decisions do not depend on how many unrelated rules exist or
// on scheduling noise at *serialized* points: Step, Commit and Restore all
// fire from the executor's single drive loop. Spawn and Replica fire
// concurrently from many tasks; for those points the set of fired rules
// and the victims drawn remain seed-deterministic, but which concurrent
// operation observes the injected fault can vary run to run. Campaigns
// that must reproduce bit-identical final states therefore pin their kill
// rules to serialized points (see TestChaosCampaignDeterminism).
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/obs"
)

// ErrInjected is the transient fault a flake rule injects into the
// operation at its point; retryable sites (snapshot replica puts) treat
// any non-nil injection as ErrInjected.
var ErrInjected = errors.New("chaos: injected transient fault")

// Kill records one injected fail-stop.
type Kill struct {
	// Iteration is the executor iteration current when the kill fired
	// (-1 when the executor was not running yet).
	Iteration int64
	// Place is the victim.
	Place apgas.Place
	// Point is where the kill fired.
	Point Point
}

// String renders the kill as "iter@point:pID".
func (k Kill) String() string {
	return fmt.Sprintf("%d@%s:p%d", k.Iteration, k.Point, k.Place.ID)
}

// Engine evaluates a Schedule against a runtime. It implements
// apgas.FaultInjector and installs itself on the runtime at construction;
// the executor drives the serialized points and the iteration clock.
//
// The engine starts disarmed: no rule fires until Arm is called. The
// executor arms it for the duration of RunContext, so schedules cannot
// shoot down application construction unless a caller arms the engine by
// hand.
type Engine struct {
	rt   *apgas.Runtime
	seed uint64

	mu     sync.Mutex
	armed  bool
	iter   int64 // executor iteration; -1 outside a run
	rules  []*ruleState
	kills  []Kill
	flakes int64

	// Observability ("chaos.*" namespace; nil-safe).
	killCtr  *obs.Counter // chaos.kills
	flakeCtr *obs.Counter // chaos.flakes
	fireCtr  *obs.Counter // chaos.rules.fired
	reg      *obs.Registry
}

// ruleState is a rule plus its mutable evaluation state.
type ruleState struct {
	Rule
	rng   *rand.Rand
	fired int
}

// Option configures an Engine.
type Option func(*Engine)

// WithSeed sets the seed of the engine's deterministic decision streams
// (victim selection and probabilistic firing). The default seed is 1.
func WithSeed(seed uint64) Option {
	return func(e *Engine) { e.seed = seed }
}

// New builds an engine for sched over rt and installs it as the runtime's
// fault injector. The engine is disarmed until Arm (the executor arms it
// around RunContext). New fails on an empty or invalid schedule and on a
// non-resilient runtime, where Kill would be rejected anyway.
func New(rt *apgas.Runtime, sched Schedule, opts ...Option) (*Engine, error) {
	if len(sched) == 0 {
		return nil, errors.New("chaos: empty schedule")
	}
	if !rt.Resilient() {
		return nil, errors.New("chaos: runtime is not resilient; failures cannot be injected")
	}
	e := &Engine{rt: rt, seed: 1, iter: -1}
	for _, opt := range opts {
		opt(e)
	}
	reg := rt.Obs()
	e.reg = reg
	e.killCtr = reg.Counter("chaos.kills")
	e.flakeCtr = reg.Counter("chaos.flakes")
	e.fireCtr = reg.Counter("chaos.rules.fired")
	for i, r := range sched {
		r = r.normalize()
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("%w (rule %d)", err, i)
		}
		// Each rule owns a private stream so its decisions are a pure
		// function of (seed, rule index, firing count) — adding a rule
		// never perturbs another rule's draws.
		src := rand.NewSource(int64(e.seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15))
		e.rules = append(e.rules, &ruleState{Rule: r, rng: rand.New(src)})
	}
	rt.SetInjector(e)
	return e, nil
}

// Seed returns the engine's seed.
func (e *Engine) Seed() uint64 { return e.seed }

// Schedule returns the engine's rules (normalized).
func (e *Engine) Schedule() Schedule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(Schedule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.Rule
	}
	return out
}

// Arm enables rule evaluation. The executor arms the engine when a run
// starts; tests may arm it directly.
func (e *Engine) Arm() {
	e.mu.Lock()
	e.armed = true
	e.mu.Unlock()
}

// Disarm stops all rule evaluation (fault points become no-ops) without
// resetting fired counts or the kill log.
func (e *Engine) Disarm() {
	e.mu.Lock()
	e.armed = false
	e.iter = -1
	e.mu.Unlock()
}

// Advance moves the engine's iteration clock; the executor calls it once
// per drive-loop pass with its completed-iteration count.
func (e *Engine) Advance(iter int64) {
	e.mu.Lock()
	e.iter = iter
	e.mu.Unlock()
}

// At evaluates the serialized framework points (step, commit, restore).
// It returns the transient fault injected by a matched flake rule, if
// any (none of the serialized points are retryable today, but the
// signature is uniform with Fault).
func (e *Engine) At(p Point) error {
	return e.at(p, apgas.Place{ID: -1})
}

// Fault implements apgas.FaultInjector for the runtime-level points
// (spawn, replica).
func (e *Engine) Fault(point string, subject apgas.Place) error {
	return e.at(Point(point), subject)
}

// at is the single evaluation path. It holds the engine lock across rule
// evaluation AND the Kill calls so that the log order matches the
// decision order exactly.
func (e *Engine) at(p Point, subject apgas.Place) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.armed {
		return nil
	}
	var transient error
	for _, rs := range e.rules {
		if rs.Point != p {
			continue
		}
		if rs.MaxFires >= 0 && rs.fired >= rs.MaxFires {
			continue
		}
		if rs.Iteration != AnyIteration && rs.Iteration != e.iter {
			continue
		}
		if rs.Prob > 0 && rs.Prob < 1 && rs.rng.Float64() >= rs.Prob {
			continue
		}
		rs.fired++
		e.fireCtr.Inc()
		if rs.Kind == KindFlake {
			e.flakes++
			e.flakeCtr.Inc()
			e.reg.Trace("chaos.flake", e.iter, int64(subject.ID))
			transient = ErrInjected
			continue
		}
		for i := 0; i < rs.Count; i++ {
			victim, ok := e.pickVictim(rs)
			if !ok {
				break // live non-zero population exhausted
			}
			for _, v := range e.spanVictims(victim, rs.Span) {
				if err := e.rt.Kill(v); err != nil {
					// Races with shutdown or an already-dead victim; skip.
					continue
				}
				e.kills = append(e.kills, Kill{Iteration: e.iter, Place: v, Point: p})
				e.killCtr.Inc()
				e.reg.Trace("chaos.kill", e.iter, int64(v.ID))
			}
		}
	}
	return transient
}

// pickVictim resolves a rule's victim: the pinned place when set and still
// alive, else a draw from the live non-zero population using the rule's
// stream. Callers hold e.mu.
func (e *Engine) pickVictim(rs *ruleState) (apgas.Place, bool) {
	if rs.Place != RandomVictim {
		if rs.Place >= e.rt.NumPlaces() {
			return apgas.Place{}, false
		}
		p := apgas.Place{ID: rs.Place}
		if e.rt.IsDead(p) {
			return apgas.Place{}, false
		}
		return p, true
	}
	world := e.rt.World()
	live := make([]apgas.Place, 0, len(world))
	for _, p := range world {
		if p.ID != 0 {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return apgas.Place{}, false
	}
	return live[rs.rng.Intn(len(live))], true
}

// spanVictims widens one kill into a correlated failure: the victim plus
// the next span-1 live non-zero places by ascending ID, wrapping past the
// highest place. Consecutive places are exactly where the snapshot store
// keeps an entry's replicas or shards, so a span >= the policy's
// tolerance+1 defeats it — the schedule shape behind the double-failure
// acceptance tests. Callers hold e.mu.
func (e *Engine) spanVictims(victim apgas.Place, span int) []apgas.Place {
	out := []apgas.Place{victim}
	n := e.rt.NumPlaces()
	if span <= 1 || n <= 2 {
		return out
	}
	// Walk IDs 1..n-1 starting just after the victim, wrapping; each
	// non-zero place is visited at most once.
	for off := 1; off < n-1 && len(out) < span; off++ {
		id := (victim.ID+off-1)%(n-1) + 1
		p := apgas.Place{ID: id}
		if id == victim.ID || e.rt.IsDead(p) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Kills returns a copy of the injected-kill log, in firing order.
func (e *Engine) Kills() []Kill {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Kill(nil), e.kills...)
}

// Flakes returns how many transient faults have been injected.
func (e *Engine) Flakes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flakes
}

// Fired returns the total number of rule firings (kills and flakes).
func (e *Engine) Fired() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, rs := range e.rules {
		n += rs.fired
	}
	return n
}

// Signature renders the kill log compactly ("7@commit:p3,9@restore:p1"),
// the form campaign reports and determinism tests compare.
func (e *Engine) Signature() string {
	kills := e.Kills()
	parts := make([]string, len(kills))
	for i, k := range kills {
		parts[i] = k.String()
	}
	return strings.Join(parts, ",")
}

package chaos

import (
	"strings"
	"testing"
)

func TestParseDefaults(t *testing.T) {
	s, err := Parse("kill(place=3,iter=7)")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 {
		t.Fatalf("got %d rules", len(s))
	}
	r := s[0]
	if r.Point != PointStep || r.Kind != KindKill || r.Place != 3 || r.Iteration != 7 {
		t.Fatalf("unexpected rule %+v", r)
	}
	if r.Count != 1 || r.MaxFires != 1 || r.Prob != 0 {
		t.Fatalf("defaults not applied: %+v", r)
	}
}

func TestParseFlakeDefaultsToReplica(t *testing.T) {
	s, err := Parse("flake(prob=0.5,times=3)")
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Point != PointReplica || s[0].Kind != KindFlake || s[0].MaxFires != 3 {
		t.Fatalf("unexpected rule %+v", s[0])
	}
}

func TestParseMultiClause(t *testing.T) {
	s, err := Parse("kill(point=commit,iter=4,place=1); kill(point=restore); burst(k=2,iter=5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("got %d rules", len(s))
	}
	if s[1].Point != PointRestore || s[1].Place != RandomVictim {
		t.Fatalf("rule 1: %+v", s[1])
	}
	if s[2].Count != 2 {
		t.Fatalf("rule 2: %+v", s[2])
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"",                         // empty
		"kill",                     // no parens
		"explode(place=1)",         // unknown verb
		"kill(place=0)",            // immortal victim
		"kill(point=nowhere)",      // unknown point
		"kill(prob=1.5)",           // probability out of range
		"kill(prob=0)",             // probability out of range
		"burst(k=1)",               // burst without a burst
		"flake(point=step)",        // flake off the replica point
		"kill(place=1,iter=-5)",    // bad iteration
		"kill(place=one)",          // unparsable value
		"kill(place)",              // malformed kv
		"kill(weird=1)",            // unknown key
		"kill(place=1);;explode()", // error in later clause
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	in := "kill(point=commit,iter=4,place=1);kill(point=restore);burst(iter=5,k=2);flake(prob=0.25,times=-1)"
	s := MustParse(in)
	out := s.String()
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", out, err)
	}
	if s2.String() != out {
		t.Fatalf("round trip diverged:\n first %q\nsecond %q", out, s2.String())
	}
	for _, want := range []string{"point=commit", "iter=4", "k=2", "prob=0.25", "times=-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered schedule %q missing %q", out, want)
		}
	}
}

func TestParseSpan(t *testing.T) {
	s := MustParse("kill(iter=3,place=1,span=2)")
	if s[0].Span != 2 {
		t.Fatalf("Span = %d, want 2", s[0].Span)
	}
	got := s.String()
	if got != "kill(point=step,iter=3,place=1,span=2)" {
		t.Fatalf("String() = %q", got)
	}
	back := MustParse(got)
	if back[0] != s[0] {
		t.Fatalf("round trip changed rule: %+v vs %+v", back[0], s[0])
	}
	if _, err := Parse("flake(span=2)"); err == nil {
		t.Fatal("flake with span accepted")
	}
}

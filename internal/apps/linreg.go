package apps

import (
	"fmt"
	"math"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// LinRegConfig parameterizes the Linear Regression benchmark (the paper
// trains 500 features over 50 000 examples per place, weak scaling).
type LinRegConfig struct {
	// Examples (N) and Features (D) size the dense design matrix.
	Examples, Features int
	// Lambda is the L2 regularization weight.
	Lambda float64
	// Iterations is the fixed CG iteration count (the paper runs 30).
	Iterations int
	// Tolerance, when positive, stops CG as soon as the residual norm
	// ‖r‖ drops below it (in addition to the Iterations cap), turning
	// the run into an iterations-to-converge measurement — the quantity
	// lossy checkpointing trades checkpoint bytes against.
	Tolerance float64
	// Seed selects the synthetic training set.
	Seed uint64
	// RowBlocksPerPlace sets the data-grid granularity.
	RowBlocksPerPlace int
	// CheckpointInputs saves the (immutable) training data X and y with
	// plain Save on every checkpoint instead of the one-time SaveReadOnly.
	// Pointless in production, but it is how the delta-checkpoint
	// benchmark exposes the cost of redundantly re-shipping unchanged
	// state: with delta checkpointing on, those saves collapse to
	// carry-forwards.
	CheckpointInputs bool
}

func (c *LinRegConfig) setDefaults() {
	if c.Lambda == 0 {
		c.Lambda = 1e-6
	}
	if c.RowBlocksPerPlace == 0 {
		c.RowBlocksPerPlace = 1
	}
}

// LinReg trains a linear regression model by conjugate gradient on the
// normal equations (XᵀX + λI)·w = Xᵀy, the GML LinReg benchmark. The
// training examples X (a dense DistBlockMatrix) and the labels y are
// read-only; the CG state — the model w, the residual r and the search
// direction p, all duplicated vectors — is the mutable checkpoint state.
// The scalar rsOld is recomputed from r after a restore.
type LinReg struct {
	rt   *apgas.Runtime
	cfg  LinRegConfig
	pg   apgas.PlaceGroup
	iter int64

	x *dist.DistBlockMatrix // N×D training examples (read-only)
	y *dist.DistVector      // N labels (read-only)
	w *dist.DupVector       // model (mutable)
	r *dist.DupVector       // CG residual (mutable)
	p *dist.DupVector       // CG direction (mutable)

	xp    *dist.DistVector // temporary: X·p
	q     *dist.DupVector  // temporary: Xᵀ(X·p) + λp
	rsOld float64
}

// NewLinReg builds the LinReg application over pg, generating the training
// set deterministically from cfg.Seed and initializing the CG state.
func NewLinReg(rt *apgas.Runtime, cfg LinRegConfig, pg apgas.PlaceGroup) (*LinReg, error) {
	cfg.setDefaults()
	a := &LinReg{rt: rt, cfg: cfg, pg: pg.Clone()}
	n, d := cfg.Examples, cfg.Features
	data := RegressionData{Seed: cfg.Seed, Examples: n, Features: d}
	var err error
	rowBlocks := cfg.RowBlocksPerPlace * pg.Size()
	if a.x, err = dist.MakeDistBlockMatrix(rt, block.Dense, n, d, rowBlocks, 1, pg.Size(), 1, pg); err != nil {
		return nil, fmt.Errorf("apps: linreg X: %w", err)
	}
	if err = a.x.InitDense(data.Feature); err != nil {
		return nil, err
	}
	if a.y, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.y.Init(data.Label); err != nil {
		return nil, err
	}
	for _, dv := range []**dist.DupVector{&a.w, &a.r, &a.p, &a.q} {
		if *dv, err = dist.MakeDupVector(rt, d, pg); err != nil {
			return nil, err
		}
		// The CG state is mutable model state the solver re-converges
		// from, so it tolerates error-bounded lossy checkpoints; the
		// read-only inputs X and y stay lossless under any policy.
		(*dv).AllowLossyCheckpoint(true)
	}
	if a.xp, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	// CG start: w = 0, r = Xᵀy (the initial residual), p = r.
	if err = a.x.TransMultVec(a.y, a.r); err != nil {
		return nil, err
	}
	if err = a.p.ZipAll(a.r, func(p, r la.Vector) { p.CopyFrom(r) }); err != nil {
		return nil, err
	}
	if a.rsOld, err = a.r.Dot(a.r); err != nil {
		return nil, err
	}
	return a, nil
}

// IsFinished implements core.IterativeApp: the fixed iteration cap, or
// residual convergence when cfg.Tolerance is set.
func (a *LinReg) IsFinished() bool {
	if a.iter >= int64(a.cfg.Iterations) {
		return true
	}
	return a.cfg.Tolerance > 0 && math.Sqrt(a.rsOld) <= a.cfg.Tolerance
}

// Iteration returns the number of completed iterations.
func (a *LinReg) Iteration() int64 { return a.iter }

// Step implements core.IterativeApp: one CG iteration.
func (a *LinReg) Step() error {
	// q = Xᵀ(X·p) + λp.
	if err := a.x.MultVec(a.p, a.xp); err != nil {
		return err
	}
	if err := a.x.TransMultVec(a.xp, a.q); err != nil {
		return err
	}
	lambda := a.cfg.Lambda
	err := a.q.ZipAll(a.p, func(q, p la.Vector) { q.Axpy(lambda, p) })
	if err != nil {
		return err
	}
	pq, err := a.p.Dot(a.q)
	if err != nil {
		return err
	}
	alpha := a.rsOld / pq
	if err := a.w.ZipAll(a.p, func(w, p la.Vector) { w.Axpy(alpha, p) }); err != nil {
		return err
	}
	if err := a.r.ZipAll(a.q, func(r, q la.Vector) { r.Axpy(-alpha, q) }); err != nil {
		return err
	}
	rsNew, err := a.r.Dot(a.r)
	if err != nil {
		return err
	}
	beta := rsNew / a.rsOld
	err = a.p.ZipAll(a.r, func(p, r la.Vector) {
		p.Scale(beta).Add(r)
	})
	if err != nil {
		return err
	}
	a.rsOld = rsNew
	a.iter++
	return nil
}

// Checkpoint implements core.IterativeApp.
func (a *LinReg) Checkpoint(store *core.AppResilientStore) error {
	if err := store.StartNewSnapshot(); err != nil {
		return err
	}
	if a.cfg.CheckpointInputs {
		if err := store.Save(a.x); err != nil {
			return err
		}
		if err := store.Save(a.y); err != nil {
			return err
		}
	} else {
		if err := store.SaveReadOnly(a.x); err != nil {
			return err
		}
		if err := store.SaveReadOnly(a.y); err != nil {
			return err
		}
	}
	for _, obj := range []*dist.DupVector{a.w, a.r, a.p} {
		if err := store.Save(obj); err != nil {
			return err
		}
	}
	return store.Commit()
}

// Restore implements core.IterativeApp.
func (a *LinReg) Restore(newPG apgas.PlaceGroup, store *core.AppResilientStore, snapshotIter int64, rebalance bool) error {
	if err := a.x.Remake(newPG, !rebalance); err != nil {
		return err
	}
	if err := a.y.Remake(newPG); err != nil {
		return err
	}
	for _, dv := range []*dist.DupVector{a.w, a.r, a.p, a.q} {
		if err := dv.Remake(newPG); err != nil {
			return err
		}
	}
	if err := a.xp.Remake(newPG); err != nil {
		return err
	}
	if err := store.Restore(); err != nil {
		return err
	}
	// rsOld is derived state: recompute it from the restored residual.
	var err error
	if a.rsOld, err = a.r.Dot(a.r); err != nil {
		return err
	}
	a.pg = newPG.Clone()
	a.iter = snapshotIter
	return nil
}

// Weights returns the current model.
func (a *LinReg) Weights() (la.Vector, error) { return a.w.Root() }

// Group returns the application's current place group.
func (a *LinReg) Group() apgas.PlaceGroup { return a.pg.Clone() }

package apps

import (
	"math"
	"testing"

	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
)

func lrCfg(iters int) LinRegConfig {
	return LinRegConfig{Examples: 120, Features: 8, Iterations: iters, Seed: 7}
}

func TestLinRegConverges(t *testing.T) {
	rt := newRT(t, 4)
	app, err := NewLinReg(rt, lrCfg(25), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
	}
	w, err := app.Weights()
	if err != nil {
		t.Fatal(err)
	}
	// With tiny label noise, CG on the normal equations should recover the
	// planted weights closely.
	data := RegressionData{Seed: 7, Examples: 120, Features: 8}
	var maxErr float64
	for j := 0; j < 8; j++ {
		maxErr = math.Max(maxErr, math.Abs(w[j]-data.TrueWeight(j)))
	}
	if maxErr > 0.05 {
		t.Fatalf("weight error %v too large; w=%v", maxErr, w)
	}
}

func TestLinRegResidualDecreases(t *testing.T) {
	rt := newRT(t, 3)
	app, err := NewLinReg(rt, lrCfg(10), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	prev := app.rsOld
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if app.rsOld >= prev {
		t.Fatalf("residual did not decrease: %v -> %v", prev, app.rsOld)
	}
}

func TestLinRegNonResilientMatchesResilient(t *testing.T) {
	rt := newRT(t, 3)
	res, err := NewLinReg(rt, lrCfg(8), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	non, err := NewLinRegNonResilient(rt, lrCfg(8), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !res.IsFinished() {
		if err := res.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := non.Run(); err != nil {
		t.Fatal(err)
	}
	a, _ := res.Weights()
	b, _ := non.Weights()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs bitwise", i)
		}
	}
}

// failureFreeLinRegWeights runs LinReg to completion without failures.
func failureFreeLinRegWeights(t *testing.T, places, iters int) la.Vector {
	t.Helper()
	rt := newRT(t, places)
	app, err := NewLinReg(rt, lrCfg(iters), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
	}
	w, err := app.Weights()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLinRegRecoveryGridPreservingModesBitwise(t *testing.T) {
	want := failureFreeLinRegWeights(t, 4, 12)
	for _, mode := range []core.RestoreMode{core.Shrink, core.ReplaceRedundant, core.ReplaceElastic} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRT(t, 5)
			spares := 1
			if mode != core.ReplaceRedundant {
				spares = 1 // keep the active group at 4 places in all runs
			}
			exec, err := core.New(rt,
				core.WithCheckpointInterval(4),
				core.WithRestoreMode(mode),
				core.WithSpares(spares),
				core.WithAfterStep(killOnceAt(t, rt, rt.Place(2), 6)),
			)
			if err != nil {
				t.Fatal(err)
			}
			app, err := NewLinReg(rt, lrCfg(12), exec.ActiveGroup())
			if err != nil {
				t.Fatal(err)
			}
			if err := exec.Run(app); err != nil {
				t.Fatal(err)
			}
			got, err := app.Weights()
			if err != nil {
				t.Fatal(err)
			}
			// Grid-preserving recovery keeps the reduction tree, so the
			// recovered run reproduces the failure-free weights bit for
			// bit.
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mode %v: weight %d differs (%v vs %v)", mode, i, got[i], want[i])
				}
			}
			if exec.Metrics().Restores == 0 {
				t.Fatal("no restore happened")
			}
		})
	}
}

func TestLinRegRecoveryRebalanceApprox(t *testing.T) {
	want := failureFreeLinRegWeights(t, 4, 12)
	rt := newRT(t, 5)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(4),
		core.WithRestoreMode(core.ShrinkRebalance),
		core.WithSpares(1),
		// active group of 4, matching the reference run
		core.WithAfterStep(killOnceAt(t, rt, rt.Place(2), 6)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewLinReg(rt, lrCfg(12), exec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	got, err := app.Weights()
	if err != nil {
		t.Fatal(err)
	}
	// Rebalancing changes the row-block decomposition, so the Xᵀv
	// reduction order differs: results agree to rounding, not bitwise.
	if !got.EqualApprox(want, 1e-6) {
		t.Fatalf("rebalanced weights diverge: %v vs %v", got, want)
	}
}

package apps

import "embed"

// Sources embeds this package's own source files so the benchmark harness
// can regenerate the paper's Table II (lines-of-code comparison between
// the non-resilient and resilient application variants) by static
// analysis, without depending on a source checkout at run time.
//
//go:embed *.go
var Sources embed.FS

package apps

import (
	"fmt"
	"math"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// PageRankConfig parameterizes the PageRank benchmark.
type PageRankConfig struct {
	// Nodes is the network size; OutDegree the out-links per node (so the
	// network has Nodes×OutDegree edges).
	Nodes, OutDegree int
	// Alpha is the damping factor (paper pseudocode: P = αGP + (1−α)EuᵀP).
	Alpha float64
	// Iterations is the fixed iteration count (the paper runs 30).
	Iterations int
	// Tolerance, when positive, stops the power iteration as soon as the
	// L1 change of the rank vector between iterations drops below it (in
	// addition to the Iterations cap) — the iterations-to-converge
	// measurement used by the compression benchmark.
	Tolerance float64
	// Seed selects the synthetic network.
	Seed uint64
	// RowBlocksPerPlace sets the data-grid granularity (1 gives one
	// row-stripe block per place).
	RowBlocksPerPlace int
}

func (c *PageRankConfig) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.85
	}
	if c.RowBlocksPerPlace == 0 {
		c.RowBlocksPerPlace = 1
	}
}

// PageRank is the resilient PageRank application (paper Listing 2 plus the
// checkpoint/restore methods of Listing 5). Its mutable state is the rank
// vector P; the link matrix G and the personalization vector U never
// change and are checkpointed with SaveReadOnly.
type PageRank struct {
	rt   *apgas.Runtime
	cfg  PageRankConfig
	pg   apgas.PlaceGroup
	iter int64

	g  *dist.DistBlockMatrix // sparse N×N link matrix (read-only)
	p  *dist.DupVector       // rank vector (mutable)
	u  *dist.DistVector      // personalization vector (read-only)
	gp *dist.DistVector      // temporary: G·P

	// lastDelta is the L1 change of the rank vector over the most recent
	// iteration, tracked only when cfg.Tolerance is set (the extra
	// root-copy collectives would otherwise perturb the default run's
	// network accounting).
	lastDelta float64
}

// NewPageRank builds the PageRank application over pg, generating the
// network deterministically from cfg.Seed.
func NewPageRank(rt *apgas.Runtime, cfg PageRankConfig, pg apgas.PlaceGroup) (*PageRank, error) {
	cfg.setDefaults()
	a := &PageRank{rt: rt, cfg: cfg, pg: pg.Clone(), lastDelta: math.Inf(1)}
	n := cfg.Nodes
	var err error
	rowBlocks := cfg.RowBlocksPerPlace * pg.Size()
	if a.g, err = dist.MakeDistBlockMatrix(rt, block.Sparse, n, n, rowBlocks, 1, pg.Size(), 1, pg); err != nil {
		return nil, fmt.Errorf("apps: pagerank G: %w", err)
	}
	link := LinkData{Seed: cfg.Seed, Nodes: n, OutDegree: cfg.OutDegree}
	if err = a.g.InitSparseColumns(link.Column); err != nil {
		return nil, err
	}
	if a.p, err = dist.MakeDupVector(rt, n, pg); err != nil {
		return nil, err
	}
	// The rank vector is mutable state the power iteration re-converges
	// from, so it tolerates error-bounded lossy checkpoints; G and U
	// stay lossless under any policy.
	a.p.AllowLossyCheckpoint(true)
	if err = a.p.Init(func(int) float64 { return 1 / float64(n) }); err != nil {
		return nil, err
	}
	if a.u, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.u.Init(func(int) float64 { return 1 / float64(n) }); err != nil {
		return nil, err
	}
	if a.gp, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	return a, nil
}

// IsFinished implements core.IterativeApp: the fixed iteration cap, or
// rank-vector convergence when cfg.Tolerance is set.
func (a *PageRank) IsFinished() bool {
	if a.iter >= int64(a.cfg.Iterations) {
		return true
	}
	return a.cfg.Tolerance > 0 && a.lastDelta <= a.cfg.Tolerance
}

// Iteration returns the number of completed iterations.
func (a *PageRank) Iteration() int64 { return a.iter }

// Step implements core.IterativeApp: one power iteration
// P = αG·P + (1−α)·E·uᵀP (paper Listing 2, lines 13-17).
func (a *PageRank) Step() error {
	var prev la.Vector
	if a.cfg.Tolerance > 0 {
		var err error
		if prev, err = a.p.Root(); err != nil {
			return err
		}
	}
	if err := a.g.MultVec(a.p, a.gp); err != nil { // GP = G·P
		return err
	}
	if err := a.gp.Scale(a.cfg.Alpha); err != nil { // GP *= α
		return err
	}
	utp, err := a.u.DotDup(a.p) // uᵀP
	if err != nil {
		return err
	}
	utp1a := utp * (1 - a.cfg.Alpha)
	if err := a.gp.GatherTo(a.p); err != nil { // gather
		return err
	}
	err = a.p.RootApply(func(local la.Vector) { local.CellAdd(utp1a) })
	if err != nil {
		return err
	}
	if err := a.p.Sync(); err != nil { // broadcast
		return err
	}
	if prev != nil {
		cur, err := a.p.Root()
		if err != nil {
			return err
		}
		var delta float64
		for i := range cur {
			delta += math.Abs(cur[i] - prev[i])
		}
		a.lastDelta = delta
	}
	a.iter++
	return nil
}

// Checkpoint implements core.IterativeApp (paper Listing 5, lines 3-7).
func (a *PageRank) Checkpoint(store *core.AppResilientStore) error {
	if err := store.StartNewSnapshot(); err != nil {
		return err
	}
	if err := store.SaveReadOnly(a.g); err != nil {
		return err
	}
	if err := store.SaveReadOnly(a.u); err != nil {
		return err
	}
	if err := store.Save(a.p); err != nil {
		return err
	}
	return store.Commit()
}

// Restore implements core.IterativeApp (paper Listing 5, lines 9-14).
func (a *PageRank) Restore(newPG apgas.PlaceGroup, store *core.AppResilientStore, snapshotIter int64, rebalance bool) error {
	if err := a.g.Remake(newPG, !rebalance); err != nil {
		return err
	}
	if err := a.u.Remake(newPG); err != nil {
		return err
	}
	if err := a.p.Remake(newPG); err != nil {
		return err
	}
	if err := a.gp.Remake(newPG); err != nil {
		return err
	}
	if err := store.Restore(); err != nil {
		return err
	}
	// lastDelta described the pre-failure trajectory; replay recomputes it.
	a.lastDelta = math.Inf(1)
	a.pg = newPG.Clone()
	a.iter = snapshotIter
	return nil
}

// Ranks returns the current rank vector.
func (a *PageRank) Ranks() (la.Vector, error) { return a.p.Root() }

// Group returns the application's current place group.
func (a *PageRank) Group() apgas.PlaceGroup { return a.pg.Clone() }

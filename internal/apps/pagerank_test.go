package apps

import (
	"sync"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
)

func newRT(t *testing.T, places int) *apgas.Runtime {
	t.Helper()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

// referencePageRank runs the same power iteration single-place.
func referencePageRank(cfg PageRankConfig) la.Vector {
	cfg.setDefaults()
	n := cfg.Nodes
	link := LinkData{Seed: cfg.Seed, Nodes: n, OutDegree: cfg.OutDegree}
	var ts []la.Triplet
	for j := 0; j < n; j++ {
		rows, vals := link.Column(j)
		for k, i := range rows {
			ts = append(ts, la.Triplet{Row: i, Col: j, Val: vals[k]})
		}
	}
	g := la.NewSparseCSCFromTriplets(n, n, ts)
	p := la.NewVector(n).Fill(1 / float64(n))
	u := la.NewVector(n).Fill(1 / float64(n))
	gp := la.NewVector(n)
	for it := 0; it < cfg.Iterations; it++ {
		g.MultVec(p, gp)
		gp.Scale(cfg.Alpha)
		utp1a := u.Dot(p) * (1 - cfg.Alpha)
		p.CopyFrom(gp).CellAdd(utp1a)
	}
	return p
}

func prCfg(iters int) PageRankConfig {
	return PageRankConfig{Nodes: 60, OutDegree: 4, Iterations: iters, Seed: 42}
}

func TestPageRankMatchesReference(t *testing.T) {
	rt := newRT(t, 4)
	app, err := NewPageRank(rt, prCfg(12), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := app.Ranks()
	if err != nil {
		t.Fatal(err)
	}
	want := referencePageRank(prCfg(12))
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("distributed PageRank diverges from reference")
	}
	// Ranks are a probability-ish distribution: positive, sums near 1.
	if got.Sum() < 0.5 || got.Sum() > 1.5 {
		t.Errorf("rank sum = %v", got.Sum())
	}
}

func TestPageRankNonResilientMatchesResilient(t *testing.T) {
	rt := newRT(t, 3)
	res, err := NewPageRank(rt, prCfg(8), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	non, err := NewPageRankNonResilient(rt, prCfg(8), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !res.IsFinished() {
		if err := res.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := non.Run(); err != nil {
		t.Fatal(err)
	}
	a, _ := res.Ranks()
	b, _ := non.Ranks()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs bitwise", i)
		}
	}
}

// killOnceAt returns an executor hook killing victim after iteration k.
func killOnceAt(t *testing.T, rt *apgas.Runtime, victim apgas.Place, k int64) func(int64) {
	t.Helper()
	var once sync.Once
	return func(iter int64) {
		if iter == k {
			once.Do(func() {
				if err := rt.Kill(victim); err != nil {
					t.Errorf("Kill: %v", err)
				}
			})
		}
	}
}

func TestPageRankRecoversInEveryMode(t *testing.T) {
	want := referencePageRank(prCfg(12))
	for _, mode := range []core.RestoreMode{
		core.Shrink, core.ShrinkRebalance, core.ReplaceRedundant, core.ReplaceElastic,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRT(t, 5)
			spares := 0
			if mode == core.ReplaceRedundant {
				spares = 1
			}
			victimID := 2
			exec, err := core.New(rt,
				core.WithCheckpointInterval(4),
				core.WithRestoreMode(mode),
				core.WithSpares(spares),
				core.WithAfterStep(killOnceAt(t, rt, rt.Place(victimID), 6)),
			)
			if err != nil {
				t.Fatal(err)
			}
			app, err := NewPageRank(rt, prCfg(12), exec.ActiveGroup())
			if err != nil {
				t.Fatal(err)
			}
			if err := exec.Run(app); err != nil {
				t.Fatal(err)
			}
			got, err := app.Ranks()
			if err != nil {
				t.Fatal(err)
			}
			// The uᵀP reduction is segmented, so runs on different group
			// sizes can differ in the last ulps; recovery must still agree
			// with the single-place reference to fp tolerance.
			if !got.EqualApprox(want, 1e-12) {
				t.Fatalf("mode %v: recovered ranks diverge from reference", mode)
			}
			if exec.Metrics().Restores == 0 {
				t.Fatal("no restore happened — failure injection broken")
			}
		})
	}
}

// Replace modes keep the group size and segmentation, so a recovered run
// must reproduce a failure-free executor run bit for bit.
func TestPageRankReplaceModesBitwise(t *testing.T) {
	// Failure-free run on a 4-place active group.
	refRT := newRT(t, 4)
	refExec, err := core.New(refRT, core.WithCheckpointInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	refApp, err := NewPageRank(refRT, prCfg(12), refExec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	if err := refExec.Run(refApp); err != nil {
		t.Fatal(err)
	}
	want, _ := refApp.Ranks()

	for _, mode := range []core.RestoreMode{core.ReplaceRedundant, core.ReplaceElastic} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRT(t, 5)
			spares := 1
			exec, err := core.New(rt,
				core.WithCheckpointInterval(4),
				core.WithRestoreMode(mode),
				core.WithSpares(spares),
				core.WithAfterStep(killOnceAt(t, rt, rt.Place(2), 6)),
			)
			if err != nil {
				t.Fatal(err)
			}
			app, err := NewPageRank(rt, prCfg(12), exec.ActiveGroup())
			if err != nil {
				t.Fatal(err)
			}
			if err := exec.Run(app); err != nil {
				t.Fatal(err)
			}
			got, _ := app.Ranks()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mode %v: rank %d differs bitwise after recovery", mode, i)
				}
			}
		})
	}
}

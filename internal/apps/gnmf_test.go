package apps

import (
	"testing"

	"github.com/rgml/rgml/internal/core"
)

func gnmfCfg(iters int) GNMFConfig {
	return GNMFConfig{
		Rows: 40, Cols: 24, NNZPerCol: 4, Rank: 3,
		Iterations: iters, Seed: 17,
	}
}

func TestGNMFObjectiveDecreases(t *testing.T) {
	rt := newRT(t, 4)
	app, err := NewGNMF(rt, gnmfCfg(20), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	first, err := app.Objective()
	if err != nil {
		t.Fatal(err)
	}
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
	}
	last, err := app.Objective()
	if err != nil {
		t.Fatal(err)
	}
	// Lee-Seung multiplicative updates are monotonically non-increasing
	// in the Frobenius objective.
	if last >= first {
		t.Fatalf("objective did not decrease: %v -> %v", first, last)
	}
}

func TestGNMFFactorsStayNonNegative(t *testing.T) {
	rt := newRT(t, 3)
	app, err := NewGNMF(rt, gnmfCfg(10), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
	}
	w, h, err := app.Factors()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w.Data {
		if v < 0 {
			t.Fatal("negative entry in W")
		}
	}
	for _, v := range h.Data {
		if v < 0 {
			t.Fatal("negative entry in H")
		}
	}
}

func TestGNMFRecoversInShrinkAndReplaceModes(t *testing.T) {
	// Failure-free reference on 4 places.
	refRT := newRT(t, 4)
	ref, err := NewGNMF(refRT, gnmfCfg(12), refRT.World())
	if err != nil {
		t.Fatal(err)
	}
	for !ref.IsFinished() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	refW, refH, err := ref.Factors()
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []core.RestoreMode{core.Shrink, core.ShrinkRebalance, core.ReplaceRedundant} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRT(t, 5)
			spares := 0
			if mode == core.ReplaceRedundant {
				spares = 1
			}
			plan := core.NewFailurePlan(core.FailureEvent{AfterIteration: 6, Place: rt.Place(2)})
			exec, err := core.New(rt,
				core.WithCheckpointInterval(4),
				core.WithRestoreMode(mode),
				core.WithSpares(spares),
				core.WithAfterStep(plan.AfterStep(rt)),
			)
			if err != nil {
				t.Fatal(err)
			}
			app, err := NewGNMF(rt, gnmfCfg(12), exec.ActiveGroup())
			if err != nil {
				t.Fatal(err)
			}
			if err := exec.Run(app); err != nil {
				t.Fatal(err)
			}
			if plan.Fired() != 1 || exec.Metrics().Restores == 0 {
				t.Fatal("failure injection or recovery missing")
			}
			w, h, err := app.Factors()
			if err != nil {
				t.Fatal(err)
			}
			// Replace mode keeps the 4-place group, grid and reduction
			// shape of the reference run; shrink modes change the
			// reduction segmentation, so compare to fp tolerance.
			tol := 1e-9
			if mode == core.ReplaceRedundant {
				tol = 0
			}
			if !w.EqualApprox(refW, tol) {
				t.Fatalf("W diverges after %v recovery", mode)
			}
			if !h.EqualApprox(refH, tol) {
				t.Fatalf("H diverges after %v recovery", mode)
			}
		})
	}
}

func TestGNMFValidation(t *testing.T) {
	rt := newRT(t, 2)
	cfg := gnmfCfg(3)
	cfg.Rank = 0
	if _, err := NewGNMF(rt, cfg, rt.World()); err == nil {
		t.Fatal("zero rank accepted")
	}
}

package apps

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// PageRankNonResilient is the plain PageRank program without
// checkpoint/restore support — the "non-resilient" column of the paper's
// Table II and the baseline curve of Figures 4 and 7. Its step body is
// identical to the resilient variant's.
type PageRankNonResilient struct {
	rt   *apgas.Runtime
	cfg  PageRankConfig
	pg   apgas.PlaceGroup
	iter int64

	g  *dist.DistBlockMatrix
	p  *dist.DupVector
	u  *dist.DistVector
	gp *dist.DistVector
}

// NewPageRankNonResilient builds the non-resilient PageRank program.
func NewPageRankNonResilient(rt *apgas.Runtime, cfg PageRankConfig, pg apgas.PlaceGroup) (*PageRankNonResilient, error) {
	cfg.setDefaults()
	a := &PageRankNonResilient{rt: rt, cfg: cfg, pg: pg.Clone()}
	n := cfg.Nodes
	var err error
	rowBlocks := cfg.RowBlocksPerPlace * pg.Size()
	if a.g, err = dist.MakeDistBlockMatrix(rt, block.Sparse, n, n, rowBlocks, 1, pg.Size(), 1, pg); err != nil {
		return nil, fmt.Errorf("apps: pagerank G: %w", err)
	}
	link := LinkData{Seed: cfg.Seed, Nodes: n, OutDegree: cfg.OutDegree}
	if err = a.g.InitSparseColumns(link.Column); err != nil {
		return nil, err
	}
	if a.p, err = dist.MakeDupVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.p.Init(func(int) float64 { return 1 / float64(n) }); err != nil {
		return nil, err
	}
	if a.u, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.u.Init(func(int) float64 { return 1 / float64(n) }); err != nil {
		return nil, err
	}
	if a.gp, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	return a, nil
}

// IsFinished reports whether all iterations have completed.
func (a *PageRankNonResilient) IsFinished() bool { return a.iter >= int64(a.cfg.Iterations) }

// Step performs one power iteration (identical to the resilient Step).
func (a *PageRankNonResilient) Step() error {
	if err := a.g.MultVec(a.p, a.gp); err != nil {
		return err
	}
	if err := a.gp.Scale(a.cfg.Alpha); err != nil {
		return err
	}
	utp, err := a.u.DotDup(a.p)
	if err != nil {
		return err
	}
	utp1a := utp * (1 - a.cfg.Alpha)
	if err := a.gp.GatherTo(a.p); err != nil {
		return err
	}
	err = a.p.RootApply(func(local la.Vector) { local.CellAdd(utp1a) })
	if err != nil {
		return err
	}
	if err := a.p.Sync(); err != nil {
		return err
	}
	a.iter++
	return nil
}

// Run executes the full iteration loop.
func (a *PageRankNonResilient) Run() error {
	for !a.IsFinished() {
		if err := a.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Ranks returns the current rank vector.
func (a *PageRankNonResilient) Ranks() (la.Vector, error) { return a.p.Root() }

package apps

import (
	"testing"

	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/la"
)

func lgCfg(iters int) LogRegConfig {
	return LogRegConfig{Examples: 100, Features: 6, Iterations: iters, Seed: 13}
}

func TestLogRegLossDecreases(t *testing.T) {
	rt := newRT(t, 3)
	app, err := NewLogReg(rt, lgCfg(15), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
		losses = append(losses, app.Loss())
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestLogRegTrainsAccurateModel(t *testing.T) {
	rt := newRT(t, 4)
	cfg := lgCfg(60)
	app, err := NewLogReg(rt, cfg, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !app.IsFinished() {
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
	}
	w, err := app.Weights()
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate training accuracy against the generator.
	data := RegressionData{Seed: cfg.Seed, Examples: cfg.Examples, Features: cfg.Features}
	correct := 0
	for i := 0; i < cfg.Examples; i++ {
		var score float64
		for j := 0; j < cfg.Features; j++ {
			score += data.Feature(i, j) * w[j]
		}
		pred := 0.0
		if la.Sigmoid(score) > 0.5 {
			pred = 1
		}
		if pred == data.BinaryLabel(i) {
			correct++
		}
	}
	if acc := float64(correct) / float64(cfg.Examples); acc < 0.8 {
		t.Fatalf("training accuracy %.2f too low", acc)
	}
}

func TestLogRegNonResilientMatchesResilient(t *testing.T) {
	rt := newRT(t, 3)
	res, err := NewLogReg(rt, lgCfg(6), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	non, err := NewLogRegNonResilient(rt, lgCfg(6), rt.World())
	if err != nil {
		t.Fatal(err)
	}
	for !res.IsFinished() {
		if err := res.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := non.Run(); err != nil {
		t.Fatal(err)
	}
	a, _ := res.Weights()
	b, _ := non.Weights()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs bitwise", i)
		}
	}
	if res.Loss() != non.Loss() {
		t.Fatal("losses differ")
	}
}

func TestLogRegRecoveryShrinkBitwise(t *testing.T) {
	// Failure-free reference on 4 places.
	refRT := newRT(t, 4)
	ref, err := NewLogReg(refRT, lgCfg(10), refRT.World())
	if err != nil {
		t.Fatal(err)
	}
	for !ref.IsFinished() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := ref.Weights()

	rt := newRT(t, 5)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(3),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithSpares(1),
		core.WithAfterStep(killOnceAt(t, rt, rt.Place(1), 5)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewLogReg(rt, lgCfg(10), exec.ActiveGroup())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	got, _ := app.Weights()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weight %d differs after recovery", i)
		}
	}
	if exec.Metrics().Restores != 1 {
		t.Fatalf("Restores = %d", exec.Metrics().Restores)
	}
}

func TestSourcesEmbedded(t *testing.T) {
	entries, err := Sources.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, e := range entries {
		found[e.Name()] = true
	}
	for _, want := range []string{
		"linreg.go", "linreg_nonresilient.go",
		"logreg.go", "logreg_nonresilient.go",
		"pagerank.go", "pagerank_nonresilient.go",
	} {
		if !found[want] {
			t.Errorf("source %s not embedded", want)
		}
	}
}

package apps

import (
	"fmt"
	"math"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// LogRegConfig parameterizes the Logistic Regression benchmark.
type LogRegConfig struct {
	// Examples (N) and Features (D) size the dense design matrix.
	Examples, Features int
	// Eta is the gradient-descent learning rate.
	Eta float64
	// Lambda is the L2 regularization weight.
	Lambda float64
	// Iterations is the fixed iteration count (the paper runs 30).
	Iterations int
	// Seed selects the synthetic training set.
	Seed uint64
	// RowBlocksPerPlace sets the data-grid granularity.
	RowBlocksPerPlace int
}

func (c *LogRegConfig) setDefaults() {
	if c.Eta == 0 {
		c.Eta = 0.5
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-6
	}
	if c.RowBlocksPerPlace == 0 {
		c.RowBlocksPerPlace = 1
	}
}

// LogReg trains a binary classifier on the logistic loss by gradient
// descent with per-iteration objective evaluation. Each iteration performs
// two passes over the design matrix (scores for the gradient, scores for
// the objective) plus the reductions, giving it more finish-scoped
// collectives and roughly twice the per-iteration cost of LinReg — the
// relative weight the paper's Figures 2-3 show. X and the labels are
// read-only; the model w is the mutable checkpoint state.
type LogReg struct {
	rt   *apgas.Runtime
	cfg  LogRegConfig
	pg   apgas.PlaceGroup
	iter int64
	loss float64

	x  *dist.DistBlockMatrix // N×D training examples (read-only)
	yb *dist.DistVector      // N binary labels (read-only)
	w  *dist.DupVector       // model (mutable)

	s    *dist.DistVector // temporary: scores X·w
	grad *dist.DupVector  // temporary: gradient
}

// NewLogReg builds the LogReg application over pg, generating the training
// set deterministically from cfg.Seed.
func NewLogReg(rt *apgas.Runtime, cfg LogRegConfig, pg apgas.PlaceGroup) (*LogReg, error) {
	cfg.setDefaults()
	a := &LogReg{rt: rt, cfg: cfg, pg: pg.Clone()}
	n, d := cfg.Examples, cfg.Features
	data := RegressionData{Seed: cfg.Seed, Examples: n, Features: d}
	var err error
	rowBlocks := cfg.RowBlocksPerPlace * pg.Size()
	if a.x, err = dist.MakeDistBlockMatrix(rt, block.Dense, n, d, rowBlocks, 1, pg.Size(), 1, pg); err != nil {
		return nil, fmt.Errorf("apps: logreg X: %w", err)
	}
	if err = a.x.InitDense(data.Feature); err != nil {
		return nil, err
	}
	if a.yb, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.yb.Init(data.BinaryLabel); err != nil {
		return nil, err
	}
	if a.w, err = dist.MakeDupVector(rt, d, pg); err != nil {
		return nil, err
	}
	// The model is mutable state gradient descent re-converges from, so
	// it tolerates error-bounded lossy checkpoints; the read-only inputs
	// X and y stay lossless under any policy.
	a.w.AllowLossyCheckpoint(true)
	if a.grad, err = dist.MakeDupVector(rt, d, pg); err != nil {
		return nil, err
	}
	if a.s, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	return a, nil
}

// IsFinished implements core.IterativeApp.
func (a *LogReg) IsFinished() bool { return a.iter >= int64(a.cfg.Iterations) }

// Iteration returns the number of completed iterations.
func (a *LogReg) Iteration() int64 { return a.iter }

// Loss returns the logistic objective computed by the last Step.
func (a *LogReg) Loss() float64 { return a.loss }

// Step implements core.IterativeApp: one gradient step plus an objective
// evaluation.
func (a *LogReg) Step() error {
	// Gradient pass: s = X·w, s := σ(s) − y, grad = Xᵀ·s.
	if err := a.x.MultVec(a.w, a.s); err != nil {
		return err
	}
	err := a.s.ZipApplyLocal(a.yb, func(s, y la.Vector, _ int) {
		for i := range s {
			s[i] = la.Sigmoid(s[i]) - y[i]
		}
	})
	if err != nil {
		return err
	}
	if err := a.x.TransMultVec(a.s, a.grad); err != nil {
		return err
	}
	// Model update: w -= η(grad/N + λw), identically at every place.
	eta, lambda, invN := a.cfg.Eta, a.cfg.Lambda, 1/float64(a.cfg.Examples)
	err = a.w.ZipAll(a.grad, func(w, g la.Vector) {
		for i := range w {
			w[i] -= eta * (g[i]*invN + lambda*w[i])
		}
	})
	if err != nil {
		return err
	}
	// Objective pass: loss = Σ log(1+e^s) − y·s over fresh scores.
	if err := a.x.MultVec(a.w, a.s); err != nil {
		return err
	}
	loss, err := a.s.FoldZip(a.yb, func(s, y la.Vector, _ int) float64 {
		var l float64
		for i := range s {
			l += math.Log1p(math.Exp(-math.Abs(s[i]))) + math.Max(s[i], 0) - y[i]*s[i]
		}
		return l
	})
	if err != nil {
		return err
	}
	a.loss = loss * invN
	a.iter++
	return nil
}

// Checkpoint implements core.IterativeApp.
func (a *LogReg) Checkpoint(store *core.AppResilientStore) error {
	if err := store.StartNewSnapshot(); err != nil {
		return err
	}
	if err := store.SaveReadOnly(a.x); err != nil {
		return err
	}
	if err := store.SaveReadOnly(a.yb); err != nil {
		return err
	}
	if err := store.Save(a.w); err != nil {
		return err
	}
	return store.Commit()
}

// Restore implements core.IterativeApp.
func (a *LogReg) Restore(newPG apgas.PlaceGroup, store *core.AppResilientStore, snapshotIter int64, rebalance bool) error {
	if err := a.x.Remake(newPG, !rebalance); err != nil {
		return err
	}
	if err := a.yb.Remake(newPG); err != nil {
		return err
	}
	if err := a.w.Remake(newPG); err != nil {
		return err
	}
	if err := a.grad.Remake(newPG); err != nil {
		return err
	}
	if err := a.s.Remake(newPG); err != nil {
		return err
	}
	if err := store.Restore(); err != nil {
		return err
	}
	a.pg = newPG.Clone()
	a.iter = snapshotIter
	return nil
}

// Weights returns the current model.
func (a *LogReg) Weights() (la.Vector, error) { return a.w.Root() }

// Group returns the application's current place group.
func (a *LogReg) Group() apgas.PlaceGroup { return a.pg.Clone() }

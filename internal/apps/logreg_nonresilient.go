package apps

import (
	"fmt"
	"math"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// LogRegNonResilient is the plain logistic regression program without
// checkpoint/restore support — the "non-resilient" column of Table II and
// the baseline of Figures 3 and 6.
type LogRegNonResilient struct {
	rt   *apgas.Runtime
	cfg  LogRegConfig
	pg   apgas.PlaceGroup
	iter int64
	loss float64

	x  *dist.DistBlockMatrix
	yb *dist.DistVector
	w  *dist.DupVector

	s    *dist.DistVector
	grad *dist.DupVector
}

// NewLogRegNonResilient builds the non-resilient LogReg program.
func NewLogRegNonResilient(rt *apgas.Runtime, cfg LogRegConfig, pg apgas.PlaceGroup) (*LogRegNonResilient, error) {
	cfg.setDefaults()
	a := &LogRegNonResilient{rt: rt, cfg: cfg, pg: pg.Clone()}
	n, d := cfg.Examples, cfg.Features
	data := RegressionData{Seed: cfg.Seed, Examples: n, Features: d}
	var err error
	rowBlocks := cfg.RowBlocksPerPlace * pg.Size()
	if a.x, err = dist.MakeDistBlockMatrix(rt, block.Dense, n, d, rowBlocks, 1, pg.Size(), 1, pg); err != nil {
		return nil, fmt.Errorf("apps: logreg X: %w", err)
	}
	if err = a.x.InitDense(data.Feature); err != nil {
		return nil, err
	}
	if a.yb, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.yb.Init(data.BinaryLabel); err != nil {
		return nil, err
	}
	if a.w, err = dist.MakeDupVector(rt, d, pg); err != nil {
		return nil, err
	}
	if a.grad, err = dist.MakeDupVector(rt, d, pg); err != nil {
		return nil, err
	}
	if a.s, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	return a, nil
}

// IsFinished reports whether all iterations have completed.
func (a *LogRegNonResilient) IsFinished() bool { return a.iter >= int64(a.cfg.Iterations) }

// Loss returns the logistic objective computed by the last Step.
func (a *LogRegNonResilient) Loss() float64 { return a.loss }

// Step performs one gradient step plus an objective evaluation (identical
// to the resilient Step).
func (a *LogRegNonResilient) Step() error {
	if err := a.x.MultVec(a.w, a.s); err != nil {
		return err
	}
	err := a.s.ZipApplyLocal(a.yb, func(s, y la.Vector, _ int) {
		for i := range s {
			s[i] = la.Sigmoid(s[i]) - y[i]
		}
	})
	if err != nil {
		return err
	}
	if err := a.x.TransMultVec(a.s, a.grad); err != nil {
		return err
	}
	eta, lambda, invN := a.cfg.Eta, a.cfg.Lambda, 1/float64(a.cfg.Examples)
	err = a.w.ZipAll(a.grad, func(w, g la.Vector) {
		for i := range w {
			w[i] -= eta * (g[i]*invN + lambda*w[i])
		}
	})
	if err != nil {
		return err
	}
	if err := a.x.MultVec(a.w, a.s); err != nil {
		return err
	}
	loss, err := a.s.FoldZip(a.yb, func(s, y la.Vector, _ int) float64 {
		var l float64
		for i := range s {
			l += math.Log1p(math.Exp(-math.Abs(s[i]))) + math.Max(s[i], 0) - y[i]*s[i]
		}
		return l
	})
	if err != nil {
		return err
	}
	a.loss = loss * invN
	a.iter++
	return nil
}

// Run executes the full iteration loop.
func (a *LogRegNonResilient) Run() error {
	for !a.IsFinished() {
		if err := a.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Weights returns the current model.
func (a *LogRegNonResilient) Weights() (la.Vector, error) { return a.w.Root() }

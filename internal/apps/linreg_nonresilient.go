package apps

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// LinRegNonResilient is the plain CG linear regression program without
// checkpoint/restore support — the "non-resilient" column of Table II and
// the baseline of Figures 2 and 5.
type LinRegNonResilient struct {
	rt   *apgas.Runtime
	cfg  LinRegConfig
	pg   apgas.PlaceGroup
	iter int64

	x *dist.DistBlockMatrix
	y *dist.DistVector
	w *dist.DupVector
	r *dist.DupVector
	p *dist.DupVector

	xp    *dist.DistVector
	q     *dist.DupVector
	rsOld float64
}

// NewLinRegNonResilient builds the non-resilient LinReg program.
func NewLinRegNonResilient(rt *apgas.Runtime, cfg LinRegConfig, pg apgas.PlaceGroup) (*LinRegNonResilient, error) {
	cfg.setDefaults()
	a := &LinRegNonResilient{rt: rt, cfg: cfg, pg: pg.Clone()}
	n, d := cfg.Examples, cfg.Features
	data := RegressionData{Seed: cfg.Seed, Examples: n, Features: d}
	var err error
	rowBlocks := cfg.RowBlocksPerPlace * pg.Size()
	if a.x, err = dist.MakeDistBlockMatrix(rt, block.Dense, n, d, rowBlocks, 1, pg.Size(), 1, pg); err != nil {
		return nil, fmt.Errorf("apps: linreg X: %w", err)
	}
	if err = a.x.InitDense(data.Feature); err != nil {
		return nil, err
	}
	if a.y, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.y.Init(data.Label); err != nil {
		return nil, err
	}
	for _, dv := range []**dist.DupVector{&a.w, &a.r, &a.p, &a.q} {
		if *dv, err = dist.MakeDupVector(rt, d, pg); err != nil {
			return nil, err
		}
	}
	if a.xp, err = dist.MakeDistVector(rt, n, pg); err != nil {
		return nil, err
	}
	if err = a.x.TransMultVec(a.y, a.r); err != nil {
		return nil, err
	}
	if err = a.p.ZipAll(a.r, func(p, r la.Vector) { p.CopyFrom(r) }); err != nil {
		return nil, err
	}
	if a.rsOld, err = a.r.Dot(a.r); err != nil {
		return nil, err
	}
	return a, nil
}

// IsFinished reports whether all iterations have completed.
func (a *LinRegNonResilient) IsFinished() bool { return a.iter >= int64(a.cfg.Iterations) }

// Step performs one CG iteration (identical to the resilient Step).
func (a *LinRegNonResilient) Step() error {
	if err := a.x.MultVec(a.p, a.xp); err != nil {
		return err
	}
	if err := a.x.TransMultVec(a.xp, a.q); err != nil {
		return err
	}
	lambda := a.cfg.Lambda
	err := a.q.ZipAll(a.p, func(q, p la.Vector) { q.Axpy(lambda, p) })
	if err != nil {
		return err
	}
	pq, err := a.p.Dot(a.q)
	if err != nil {
		return err
	}
	alpha := a.rsOld / pq
	if err := a.w.ZipAll(a.p, func(w, p la.Vector) { w.Axpy(alpha, p) }); err != nil {
		return err
	}
	if err := a.r.ZipAll(a.q, func(r, q la.Vector) { r.Axpy(-alpha, q) }); err != nil {
		return err
	}
	rsNew, err := a.r.Dot(a.r)
	if err != nil {
		return err
	}
	beta := rsNew / a.rsOld
	err = a.p.ZipAll(a.r, func(p, r la.Vector) {
		p.Scale(beta).Add(r)
	})
	if err != nil {
		return err
	}
	a.rsOld = rsNew
	a.iter++
	return nil
}

// Run executes the full iteration loop.
func (a *LinRegNonResilient) Run() error {
	for !a.IsFinished() {
		if err := a.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Weights returns the current model.
func (a *LinRegNonResilient) Weights() (la.Vector, error) { return a.w.Root() }

package apps

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// GNMFConfig parameterizes the Gaussian non-negative matrix factorization
// benchmark — a fourth GML-style application beyond the paper's three,
// exercising the distributed matrix-matrix operations (GML ships GNMF in
// the same benchmark family; see DESIGN.md, extensions).
type GNMFConfig struct {
	// Rows (documents) × Cols (terms) size the sparse data matrix V;
	// NNZPerCol sets its density.
	Rows, Cols, NNZPerCol int
	// Rank is the factorization rank K: V ≈ W(Rows×K) · H(K×Cols).
	Rank int
	// Iterations is the fixed multiplicative-update count.
	Iterations int
	// Seed selects the synthetic data.
	Seed uint64
	// RowBlocksPerPlace sets the data-grid granularity.
	RowBlocksPerPlace int
	// Epsilon guards the divisions of the multiplicative updates.
	Epsilon float64
}

func (c *GNMFConfig) setDefaults() {
	if c.RowBlocksPerPlace == 0 {
		c.RowBlocksPerPlace = 1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
}

// GNMF factorizes a sparse matrix V into non-negative factors W·H by
// Lee-Seung multiplicative updates:
//
//	H ← H ∘ (WᵀV)  ⊘ (WᵀW·H + ε)
//	W ← W ∘ (V·Hᵀ) ⊘ (W·(H·Hᵀ) + ε)
//
// V is read-only and row-striped; W is a conformal distributed dense
// matrix; H is duplicated. Checkpoints save V once (SaveReadOnly) and the
// two factors every time.
type GNMF struct {
	rt   *apgas.Runtime
	cfg  GNMFConfig
	pg   apgas.PlaceGroup
	iter int64

	v *dist.DistBlockMatrix // data (read-only, sparse)
	w *dist.DistBlockMatrix // left factor (mutable, dense, conformal with V)
	h *dist.DupDenseMatrix  // right factor (mutable, duplicated)

	// Temporaries, rebuilt on Restore.
	wtv, wtw, hht *dist.DupDenseMatrix
	vht, wgram    *dist.DistBlockMatrix
}

// NewGNMF builds the GNMF application over pg with deterministic synthetic
// data and strictly positive factor initialization.
func NewGNMF(rt *apgas.Runtime, cfg GNMFConfig, pg apgas.PlaceGroup) (*GNMF, error) {
	cfg.setDefaults()
	if cfg.Rank < 1 {
		return nil, fmt.Errorf("apps: gnmf rank %d", cfg.Rank)
	}
	a := &GNMF{rt: rt, cfg: cfg, pg: pg.Clone()}
	if err := a.build(pg); err != nil {
		return nil, err
	}
	if err := a.initData(); err != nil {
		return nil, err
	}
	return a, nil
}

// build allocates every distributed object over pg.
func (a *GNMF) build(pg apgas.PlaceGroup) error {
	cfg := a.cfg
	p := pg.Size()
	rowBlocks := cfg.RowBlocksPerPlace * p
	var err error
	if a.v, err = dist.MakeDistBlockMatrix(a.rt, block.Sparse, cfg.Rows, cfg.Cols, rowBlocks, 1, p, 1, pg); err != nil {
		return fmt.Errorf("apps: gnmf V: %w", err)
	}
	if a.w, err = dist.MakeDistBlockMatrix(a.rt, block.Dense, cfg.Rows, cfg.Rank, rowBlocks, 1, p, 1, pg); err != nil {
		return err
	}
	// The factors W and H are mutable state the multiplicative updates
	// re-converge from, so they tolerate error-bounded lossy checkpoints;
	// the read-only input V stays lossless under any policy.
	a.w.AllowLossyCheckpoint(true)
	if a.vht, err = dist.MakeDistBlockMatrix(a.rt, block.Dense, cfg.Rows, cfg.Rank, rowBlocks, 1, p, 1, pg); err != nil {
		return err
	}
	if a.wgram, err = dist.MakeDistBlockMatrix(a.rt, block.Dense, cfg.Rows, cfg.Rank, rowBlocks, 1, p, 1, pg); err != nil {
		return err
	}
	if a.h, err = dist.MakeDupDenseMatrix(a.rt, cfg.Rank, cfg.Cols, pg); err != nil {
		return err
	}
	a.h.AllowLossyCheckpoint(true)
	if a.wtv, err = dist.MakeDupDenseMatrix(a.rt, cfg.Rank, cfg.Cols, pg); err != nil {
		return err
	}
	if a.wtw, err = dist.MakeDupDenseMatrix(a.rt, cfg.Rank, cfg.Rank, pg); err != nil {
		return err
	}
	if a.hht, err = dist.MakeDupDenseMatrix(a.rt, cfg.Rank, cfg.Rank, pg); err != nil {
		return err
	}
	return nil
}

// initData fills V, W and H deterministically (factors strictly positive,
// as multiplicative updates preserve signs).
func (a *GNMF) initData() error {
	cfg := a.cfg
	gen := func(j int) ([]int, []float64) {
		rng := la.NewRNG(mix64(cfg.Seed, j, 0xfac7))
		d := cfg.NNZPerCol
		rows := make([]int, d)
		vals := make([]float64, d)
		for k := range rows {
			rows[k] = rng.Intn(cfg.Rows)
			vals[k] = rng.Float64() + 0.05
		}
		return rows, vals
	}
	if err := a.v.InitSparseColumns(gen); err != nil {
		return err
	}
	if err := a.w.InitDense(func(i, j int) float64 {
		return uniform01(mix64(cfg.Seed^0x57, i, j)) + 0.1
	}); err != nil {
		return err
	}
	return a.h.Init(func(i, j int) float64 {
		return uniform01(mix64(cfg.Seed^0x58, i, j)) + 0.1
	})
}

// IsFinished implements core.IterativeApp.
func (a *GNMF) IsFinished() bool { return a.iter >= int64(a.cfg.Iterations) }

// Iteration returns the number of completed iterations.
func (a *GNMF) Iteration() int64 { return a.iter }

// Step implements core.IterativeApp: one pair of multiplicative updates.
func (a *GNMF) Step() error {
	eps := a.cfg.Epsilon
	// H update: H ← H ∘ (WᵀV) ⊘ (WᵀW·H + ε).
	if err := a.w.TransMultMatrix(a.v, a.wtv); err != nil {
		return err
	}
	if err := a.w.TransMultMatrix(a.w, a.wtw); err != nil {
		return err
	}
	err := a.h.ZipAll2(a.wtv, a.wtw, func(h, wtv, wtw *la.DenseMatrix) {
		denom := la.NewDense(h.Rows, h.Cols)
		wtw.Mult(h, denom)
		for i := range h.Data {
			h.Data[i] *= wtv.Data[i] / (denom.Data[i] + eps)
		}
	})
	if err != nil {
		return err
	}
	// W update: W ← W ∘ (V·Hᵀ) ⊘ (W·(H·Hᵀ) + ε).
	if err := a.v.MultDupTranspose(a.h, a.vht); err != nil {
		return err
	}
	err = a.hht.ZipAll(a.h, func(hht, h *la.DenseMatrix) {
		hht.Zero()
		la.AccumTransDenseDense(transposeOf(h), transposeOf(h), hht)
	})
	if err != nil {
		return err
	}
	if err := a.w.MultDupMatrix(a.hht, a.wgram); err != nil {
		return err
	}
	err = dist.ZipBlocks(a.w, a.vht, a.wgram, func(w, num, den *block.MatrixBlock) {
		for i := range w.Dense.Data {
			w.Dense.Data[i] *= num.Dense.Data[i] / (den.Dense.Data[i] + eps)
		}
	})
	if err != nil {
		return err
	}
	a.iter++
	return nil
}

// transposeOf materializes hᵀ (K×M → M×K) so H·Hᵀ can reuse the AᵀB
// kernel as (Hᵀ)ᵀ·Hᵀ. K is small, so the copy is cheap.
func transposeOf(h *la.DenseMatrix) *la.DenseMatrix {
	t := la.NewDense(h.Cols, h.Rows)
	for j := 0; j < h.Cols; j++ {
		for i := 0; i < h.Rows; i++ {
			t.Set(j, i, h.At(i, j))
		}
	}
	return t
}

// Objective returns ‖V − W·H‖²_F, computed against gathered copies (test
// and demo sizes only; not a scalable operation).
func (a *GNMF) Objective() (float64, error) {
	vd, err := a.v.ToDense()
	if err != nil {
		return 0, err
	}
	wd, err := a.w.ToDense()
	if err != nil {
		return 0, err
	}
	hd, err := a.h.Root()
	if err != nil {
		return 0, err
	}
	prod := la.NewDense(vd.Rows, vd.Cols)
	wd.Mult(hd, prod)
	var sum float64
	for i := range prod.Data {
		d := vd.Data[i] - prod.Data[i]
		sum += d * d
	}
	return sum, nil
}

// Checkpoint implements core.IterativeApp.
func (a *GNMF) Checkpoint(store *core.AppResilientStore) error {
	if err := store.StartNewSnapshot(); err != nil {
		return err
	}
	if err := store.SaveReadOnly(a.v); err != nil {
		return err
	}
	if err := store.Save(a.w); err != nil {
		return err
	}
	if err := store.Save(a.h); err != nil {
		return err
	}
	return store.Commit()
}

// Restore implements core.IterativeApp.
func (a *GNMF) Restore(newPG apgas.PlaceGroup, store *core.AppResilientStore, snapshotIter int64, rebalance bool) error {
	if err := a.v.Remake(newPG, !rebalance); err != nil {
		return err
	}
	if err := a.w.Remake(newPG, !rebalance); err != nil {
		return err
	}
	if err := a.vht.Remake(newPG, !rebalance); err != nil {
		return err
	}
	if err := a.wgram.Remake(newPG, !rebalance); err != nil {
		return err
	}
	for _, d := range []*dist.DupDenseMatrix{a.h, a.wtv, a.wtw, a.hht} {
		if err := d.Remake(newPG); err != nil {
			return err
		}
	}
	if err := store.Restore(); err != nil {
		return err
	}
	a.pg = newPG.Clone()
	a.iter = snapshotIter
	return nil
}

// Factors returns gathered copies of W and H.
func (a *GNMF) Factors() (*la.DenseMatrix, *la.DenseMatrix, error) {
	w, err := a.w.ToDense()
	if err != nil {
		return nil, nil, err
	}
	h, err := a.h.Root()
	if err != nil {
		return nil, nil, err
	}
	return w, h, nil
}

// Group returns the application's current place group.
func (a *GNMF) Group() apgas.PlaceGroup { return a.pg.Clone() }

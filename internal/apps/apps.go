// Package apps implements the paper's three benchmark applications —
// Linear Regression, Logistic Regression, and PageRank — each in a
// resilient variant (following the framework's IterativeApp programming
// model, paper section V-A2) and a non-resilient variant (a plain step
// loop). The pairs also regenerate Table II: the lines-of-code comparison
// between the two styles is computed from this package's sources.
//
// Algorithm notes (substitutions are recorded in DESIGN.md):
//
//   - LinReg trains a linear model by conjugate gradient on the normal
//     equations, matching the GML LinReg benchmark: each iteration costs
//     one X·p and one Xᵀ·(X·p) against the dense DistBlockMatrix of
//     training examples, plus a handful of duplicated-vector updates.
//   - LogReg trains a binary classifier by gradient descent with a fixed
//     step and per-iteration objective evaluation. The paper's LogReg (a
//     SystemML-style trust-region solver) performs more finish-scoped
//     collectives per iteration than LinReg; the gradient + objective pair
//     reproduces that relative weight.
//   - PageRank iterates P = αG·P + (1−α)·E·uᵀP over a sparse
//     column-stochastic link matrix (paper Listings 1-2).
//
// All datasets are synthesized deterministically from a seed with
// distribution-independent element generators, so any redistribution of
// the matrices reproduces identical data — the recovery tests rely on
// this to compare failure runs with failure-free runs bit for bit.
package apps

import (
	"github.com/rgml/rgml/internal/la"
)

// mix64 hashes a seed with coordinates into 64 well-distributed bits
// (splitmix64 finalizer over a simple combine).
func mix64(seed uint64, a, b int) uint64 {
	z := seed ^ uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform01 maps 64 random bits to [0, 1).
func uniform01(bits uint64) float64 {
	return float64(bits>>11) / (1 << 53)
}

// RegressionData deterministically generates the synthetic labeled
// training set used by LinReg and LogReg: features are uniform in [0, 1),
// a planted weight vector defines the labels, and every value depends only
// on (Seed, coordinates) — never on the data distribution.
type RegressionData struct {
	// Seed selects the dataset.
	Seed uint64
	// Examples is the number of rows (N), Features the number of columns
	// (D) of the design matrix.
	Examples, Features int
}

// Feature returns design-matrix element (i, j).
func (d RegressionData) Feature(i, j int) float64 {
	return uniform01(mix64(d.Seed, i, j))
}

// TrueWeight returns the planted model weight for feature j, roughly
// standard-normal via a sum of four uniforms.
func (d RegressionData) TrueWeight(j int) float64 {
	var s float64
	for k := 0; k < 4; k++ {
		s += uniform01(mix64(d.Seed^0xabcdef, j, k))
	}
	return (s - 2) * 1.7320508075688772 // variance-normalized
}

// Label returns the continuous regression target for example i:
// x_i · w* plus small deterministic noise.
func (d RegressionData) Label(i int) float64 {
	var s float64
	for j := 0; j < d.Features; j++ {
		s += d.Feature(i, j) * d.TrueWeight(j)
	}
	noise := uniform01(mix64(d.Seed^0x123457, i, -1)) - 0.5
	return s + 0.01*noise
}

// BinaryLabel returns the 0/1 classification target for example i.
func (d RegressionData) BinaryLabel(i int) float64 {
	if la.Sigmoid(d.Label(i)) > 0.5 {
		return 1
	}
	return 0
}

// LinkData deterministically generates the PageRank network: node j's
// out-links (paper: "a network of 2M edges per place"). Every column is a
// function of (Seed, j) only.
type LinkData struct {
	// Seed selects the network.
	Seed uint64
	// Nodes is the network size, OutDegree the out-links per node.
	Nodes, OutDegree int
}

// Column returns the row indices and (column-stochastic) values of column
// j of the link matrix G. Targets are drawn independently (a node may link
// to the same target twice, in which case the weights sum during assembly),
// keeping generation stateless and cheap: every place scans all columns
// when building its row stripe, so column cost dominates setup time.
func (d LinkData) Column(j int) ([]int, []float64) {
	rows := make([]int, d.OutDegree)
	vals := make([]float64, d.OutDegree)
	w := 1 / float64(d.OutDegree)
	for k := range rows {
		rows[k] = int(mix64(d.Seed, j, k) % uint64(d.Nodes))
		vals[k] = w
	}
	return rows, vals
}

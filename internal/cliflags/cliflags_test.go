package cliflags

import (
	"flag"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/core"
)

// parse registers a Runtime on a fresh FlagSet and parses args into it.
func parse(t *testing.T, args ...string) *Runtime {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var rf Runtime
	rf.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &rf
}

func TestDefaultsAreLocalCentralZeroPolicy(t *testing.T) {
	rf := parse(t)
	mode, err := rf.FinishMode()
	if err != nil || mode != apgas.FinishCentral {
		t.Fatalf("FinishMode() = %v, %v; want central", mode, err)
	}
	pol, err := rf.StorePolicy()
	if err != nil || !pol.IsZero() {
		t.Fatalf("StorePolicy() = %v, %v; want zero policy", pol, err)
	}
	factory, err := rf.TransportFactory(nil)
	if err != nil || factory != nil {
		t.Fatalf("TransportFactory() err=%v, factory non-nil=%v; want nil factory (local default)", err, factory != nil)
	}
}

func TestFinishModeSharded(t *testing.T) {
	rf := parse(t, "-finish", "sharded")
	mode, err := rf.FinishMode()
	if err != nil || mode != apgas.FinishSharded {
		t.Fatalf("FinishMode() = %v, %v; want sharded", mode, err)
	}
	if _, err := parse(t, "-finish", "nonsense").FinishMode(); err == nil {
		t.Fatal("unknown finish mode accepted")
	}
}

func TestStorePolicyAssembly(t *testing.T) {
	pol, err := parse(t, "-redundancy", "3").StorePolicy()
	if err != nil || pol.Placement != apgas.PlacementReplicate || pol.Replicas != 3 {
		t.Fatalf("replicate k=3: got %v, %v", pol, err)
	}
	pol, err = parse(t, "-shards", "3,2").StorePolicy()
	if err != nil || pol.Placement != apgas.PlacementErasure || pol.DataShards != 3 || pol.ParityShards != 2 {
		t.Fatalf("-shards alone should imply erasure 3+2: got %v, %v", pol, err)
	}
	if _, err := parse(t, "-placement", "erasure", "-redundancy", "2").StorePolicy(); err == nil {
		t.Fatal("-redundancy with erasure accepted")
	}
	if _, err := parse(t, "-placement", "replicate", "-shards", "3,2").StorePolicy(); err == nil {
		t.Fatal("-shards with replicate accepted")
	}
}

func TestTransportFactoryTCP(t *testing.T) {
	rf := parse(t, "-transport", "tcp", "-hb-interval", "10ms", "-hb-timeout", "100ms")
	factory, err := rf.TransportFactory(nil)
	if err != nil || factory == nil {
		t.Fatalf("TransportFactory() err=%v, factory non-nil=%v; want tcp factory", err, factory != nil)
	}
	tp, err := factory()
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if tp.Name() != "tcp" {
		t.Fatalf("factory built %q, want tcp", tp.Name())
	}
	// Never started; Close must still be clean (single-use lifecycle).
	if err := tp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := parse(t, "-transport", "carrier-pigeon").TransportFactory(nil); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	ints, err := ParseInts(" 2, 4,8 ")
	if err != nil || len(ints) != 3 || ints[0] != 2 || ints[2] != 8 {
		t.Fatalf("ParseInts: %v, %v", ints, err)
	}
	if _, err := ParseInts("0"); err == nil {
		t.Fatal("ParseInts accepted 0")
	}
	seeds, err := ParseSeeds("1, 2,3")
	if err != nil || len(seeds) != 3 || seeds[2] != 3 {
		t.Fatalf("ParseSeeds: %v, %v", seeds, err)
	}
	mode, err := ParseRestoreMode("replace-redundant")
	if err != nil || mode != core.ReplaceRedundant {
		t.Fatalf("ParseRestoreMode: %v, %v", mode, err)
	}
	if _, err := ParseRestoreMode("nope"); err == nil {
		t.Fatal("unknown restore mode accepted")
	}
}

func TestHeartbeatFlagsAreDurations(t *testing.T) {
	rf := parse(t, "-hb-interval", "25ms", "-hb-timeout", "125ms")
	if rf.HBInterval != 25*time.Millisecond || rf.HBTimeout != 125*time.Millisecond {
		t.Fatalf("heartbeat flags: %v/%v", rf.HBInterval, rf.HBTimeout)
	}
}

// Package cliflags defines the runtime-construction flags shared by the
// rgml commands (rgmlrun, rgmlbench), so a new runtime option — finish
// architecture, snapshot-store redundancy, kernel workers, transport
// backend — is declared and parsed in exactly one place.
//
// Usage:
//
//	var rf cliflags.Runtime
//	rf.Register(fs)
//	fs.Parse(args)
//	mode, err := rf.FinishMode()
//	pol, err := rf.StorePolicy()
//	factory, err := rf.TransportFactory(reg)
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/apgas/transport/tcp"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
)

// Runtime collects the flag values that configure runtime construction.
// Register binds them to a FlagSet; the accessor methods validate and
// translate them into runtime types.
type Runtime struct {
	// Finish is the resilient-finish architecture: "central" or "sharded".
	Finish string
	// Placement, Redundancy and Shards assemble the snapshot store's
	// redundancy policy (see StorePolicy).
	Placement  string
	Redundancy int
	Shards     string
	// Workers is the intra-place kernel worker pool size (0: RGML_WORKERS
	// or the CPU count).
	Workers int
	// Transport selects the communication backend: "local" (in-process,
	// deterministic — the default) or "tcp" (one place per OS process).
	Transport string
	// HBInterval and HBTimeout parameterize the tcp backend's heartbeat
	// failure detector. Zero keeps the transport defaults.
	HBInterval time.Duration
	HBTimeout  time.Duration
	// Compress selects the checkpoint compression policy ("none",
	// "lossless" or "lossy"); ErrorBound is the per-element quantization
	// bound required by "lossy" (see Compression).
	Compress   string
	ErrorBound float64
}

// Register declares the shared flags on fs. Command-specific flags (such
// as -places, whose shape differs between the commands) stay with their
// command.
func (r *Runtime) Register(fs *flag.FlagSet) {
	fs.StringVar(&r.Finish, "finish", "central",
		"resilient-finish architecture: central (place-zero ledger) or sharded (home-based shards with a local fast path)")
	fs.StringVar(&r.Placement, "placement", "",
		"snapshot store placement: replicate or erasure (default replicate)")
	fs.IntVar(&r.Redundancy, "redundancy", 0,
		"replica count k for the replicate placement (default 2; 1 disables backups)")
	fs.StringVar(&r.Shards, "shards", "",
		"erasure geometry as d,p data/parity shards (default 4,1)")
	fs.IntVar(&r.Workers, "workers", 0,
		"intra-place kernel worker pool size (0: RGML_WORKERS or CPU count)")
	fs.StringVar(&r.Transport, "transport", "local",
		"communication backend: local (in-process, deterministic) or tcp (one place per OS process, heartbeat failure detection)")
	fs.DurationVar(&r.HBInterval, "hb-interval", 0,
		"tcp transport heartbeat interval (0: transport default)")
	fs.DurationVar(&r.HBTimeout, "hb-timeout", 0,
		"tcp transport heartbeat silence threshold before a place is declared dead (0: transport default)")
	fs.StringVar(&r.Compress, "compress", "none",
		"checkpoint compression: none (bit-identical codec), lossless (varint indices + shuffled flate floats), or lossy (error-bounded quantization; objects opt in, others stay lossless)")
	fs.Float64Var(&r.ErrorBound, "error-bound", 0,
		"per-element absolute error bound for -compress lossy (required with lossy, rejected otherwise)")
}

// FinishMode translates the -finish flag.
func (r *Runtime) FinishMode() (apgas.FinishMode, error) {
	m, err := apgas.ParseFinishMode(r.Finish)
	if err != nil {
		return m, fmt.Errorf("-finish: %w", err)
	}
	return m, nil
}

// StorePolicy assembles the snapshot-store redundancy policy from the
// -placement/-redundancy/-shards flags. All unset keeps the zero policy —
// the store's paper-faithful default (replicate, k=2).
func (r *Runtime) StorePolicy() (apgas.StorePolicy, error) {
	var sp apgas.StorePolicy
	if r.Placement == "" && r.Redundancy == 0 && r.Shards == "" {
		return sp, nil
	}
	if r.Placement != "" {
		p, err := apgas.ParsePlacement(r.Placement)
		if err != nil {
			return sp, fmt.Errorf("-placement: %w", err)
		}
		sp.Placement = p
	} else if r.Shards != "" {
		// -shards alone implies erasure.
		sp.Placement = apgas.PlacementErasure
	}
	if r.Redundancy > 0 {
		if sp.Placement == apgas.PlacementErasure {
			return sp, fmt.Errorf("-redundancy applies to the replicate placement; size erasure with -shards d,p")
		}
		sp.Replicas = r.Redundancy
	}
	if r.Shards != "" {
		if sp.Placement != apgas.PlacementErasure {
			return sp, fmt.Errorf("-shards applies to the erasure placement (add -placement erasure)")
		}
		dp, err := ParseInts(r.Shards)
		if err != nil || len(dp) != 2 {
			return sp, fmt.Errorf("-shards: want d,p (e.g. 4,1), got %q", r.Shards)
		}
		sp.DataShards, sp.ParityShards = dp[0], dp[1]
	}
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// Compression assembles the checkpoint compression policy from the
// -compress/-error-bound flags. The default ("none", bound 0) yields
// the zero Spec — the bit-identical uncompressed codec.
func (r *Runtime) Compression() (codec.Spec, error) {
	var spec codec.Spec
	mode, err := codec.ParseCompression(r.Compress)
	if err != nil {
		return spec, fmt.Errorf("-compress: %w", err)
	}
	spec.Mode = mode
	spec.ErrorBound = r.ErrorBound
	if err := spec.Validate(); err != nil {
		if mode != codec.CompressLossy && r.ErrorBound != 0 {
			return spec, fmt.Errorf("-error-bound applies to -compress lossy only")
		}
		return spec, err
	}
	return spec, nil
}

// TransportFactory translates the -transport flag into a constructor for
// fresh backend instances (a transport is single-use: one runtime, one
// Start/Close lifecycle). It returns nil for "local" — the runtime's
// default backend — and an error for unknown names. The tcp backend's
// wire instrumentation lands in reg (which may be nil).
func (r *Runtime) TransportFactory(reg *obs.Registry) (func() (transport.Transport, error), error) {
	switch r.Transport {
	case "", "local":
		return nil, nil
	case "tcp":
		interval, timeout := r.HBInterval, r.HBTimeout
		return func() (transport.Transport, error) {
			return tcp.New(tcp.WithHeartbeat(interval, timeout), tcp.WithObs(reg)), nil
		}, nil
	default:
		return nil, fmt.Errorf("-transport: unknown backend %q (want local or tcp)", r.Transport)
	}
}

// MaybeWorker turns this process into a transport worker place and never
// returns when a worker environment variable is set; it is a no-op
// otherwise. Call it first in main() of every command that can create a
// runtime over a multi-process transport.
func MaybeWorker() { tcp.MaybeWorker() }

// ParseRestoreMode maps a mode flag value to its RestoreMode.
func ParseRestoreMode(name string) (core.RestoreMode, error) {
	switch name {
	case "shrink":
		return core.Shrink, nil
	case "shrink-rebalance":
		return core.ShrinkRebalance, nil
	case "replace-redundant":
		return core.ReplaceRedundant, nil
	case "replace-elastic":
		return core.ReplaceElastic, nil
	}
	return 0, fmt.Errorf("unknown restore mode %q", name)
}

// ParseInts parses a comma-separated list of positive ints (place counts,
// shard geometries).
func ParseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("value %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseSeeds parses a comma-separated seed list.
func ParseSeeds(csv string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

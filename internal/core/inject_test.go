package core_test

import (
	"errors"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/core"
)

func TestFailurePlanInjectsOnceEach(t *testing.T) {
	rt := newRT(t, 6)
	plan := core.NewFailurePlan(
		core.FailureEvent{AfterIteration: 4, Place: rt.Place(2)},
		core.FailureEvent{AfterIteration: 9, Place: rt.Place(4)},
	)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(3),
		core.WithRestoreMode(core.Shrink),
		core.WithAfterStep(plan.AfterStep(rt)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 18, 14)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	if plan.Fired() != 2 {
		t.Fatalf("Fired = %d", plan.Fired())
	}
	if err := plan.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if exec.Metrics().Restores != 2 {
		t.Fatalf("Restores = %d", exec.Metrics().Restores)
	}
	if app.pg.Size() != 4 {
		t.Fatalf("final group = %v", app.pg)
	}
}

func TestFailurePlanRecordsKillErrors(t *testing.T) {
	rt := newRT(t, 2)
	plan := core.NewFailurePlan(
		core.FailureEvent{AfterIteration: 1, Place: rt.Place(0)}, // immortal
	)
	hook := plan.AfterStep(rt)
	hook(1)
	if plan.Fired() != 1 {
		t.Fatalf("Fired = %d", plan.Fired())
	}
	if !errors.Is(plan.Err(), apgas.ErrPlaceZeroImmortal) {
		t.Fatalf("Err = %v", plan.Err())
	}
}

func TestFailurePlanSortsEvents(t *testing.T) {
	rt := newRT(t, 4)
	plan := core.NewFailurePlan(
		core.FailureEvent{AfterIteration: 9, Place: rt.Place(2)},
		core.FailureEvent{AfterIteration: 3, Place: rt.Place(1)},
	)
	hook := plan.AfterStep(rt)
	hook(3)
	if plan.Fired() != 1 {
		t.Fatalf("after iter 3 Fired = %d", plan.Fired())
	}
	if rt.IsDead(rt.Place(2)) || !rt.IsDead(rt.Place(1)) {
		t.Fatal("wrong victim killed first")
	}
}

func TestYoungAutoInterval(t *testing.T) {
	rt := newRT(t, 4)
	plan := core.NewFailurePlan(core.FailureEvent{AfterIteration: 10, Place: rt.Place(3)})
	exec, err := core.New(rt,
		// No fixed interval: Young's formula drives the schedule. A short
		// MTTF forces frequent checkpoints so the run exercises the
		// recalibration path.
		core.WithMTTF(50*time.Millisecond),
		core.WithRestoreMode(core.Shrink),
		core.WithAfterStep(plan.AfterStep(rt)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 16, 20)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	m := exec.Metrics()
	if m.Checkpoints < 1 {
		t.Fatal("no checkpoints taken in auto mode")
	}
	if m.Restores != 1 {
		t.Fatalf("Restores = %d", m.Restores)
	}
	if exec.AutoInterval() < 1 {
		t.Fatalf("AutoInterval = %d", exec.AutoInterval())
	}
}

func TestYoungAutoIntervalGrowsWithMTTF(t *testing.T) {
	// With an enormous MTTF the optimal interval is huge: after the
	// initial checkpoint the executor should not checkpoint again.
	rt := newRT(t, 3)
	exec, err := core.New(rt, core.WithMTTF(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 9, 25)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	if got := exec.Metrics().Checkpoints; got != 1 {
		t.Fatalf("Checkpoints = %d, want only the initial one", got)
	}
	if exec.AutoInterval() <= 25 {
		t.Fatalf("AutoInterval = %d, expected far beyond the run length", exec.AutoInterval())
	}
}

// Package core implements the paper's primary contribution: the resilient
// iterative application framework (section V). It consists of
//
//   - AppResilientStore: atomic, coordinated application checkpoints built
//     from per-object Snapshots (Listing 4) with saveReadOnly reuse;
//   - the IterativeApp programming model: IsFinished / Step / Checkpoint /
//     Restore (section V-A2);
//   - the resilient Executor that drives the step loop, takes periodic
//     checkpoints, detects place failures through resilient finish, and
//     restores the application under one of the restoration modes
//     (section V-B): Shrink, ShrinkRebalance, ReplaceRedundant, and the
//     future-work ReplaceElastic mode built on dynamic place creation;
//   - Young's checkpoint-interval formula (section V).
package core

import (
	"math"
	"time"

	"github.com/rgml/rgml/internal/apgas"
)

// IterativeApp is the programming model a resilient iterative application
// implements (paper section V-A2). The framework calls Step in a loop until
// IsFinished reports true, takes checkpoints through Checkpoint at the
// configured interval, and rolls the application back through Restore when
// a place failure is detected.
type IterativeApp interface {
	// IsFinished evaluates the algorithm's termination condition (e.g. a
	// completed-iterations count or a convergence test).
	IsFinished() bool
	// Step executes one iteration of the algorithm. A place failure during
	// the step surfaces as an error containing apgas.DeadPlaceError.
	Step() error
	// Checkpoint saves the states of the application's GML objects into
	// store: StartNewSnapshot, then Save/SaveReadOnly per object, then
	// Commit (paper Listing 5, lines 3-7).
	Checkpoint(store *AppResilientStore) error
	// Restore rolls the application back to the state of the snapshot
	// iteration: Remake every GML object over newPG (repartitioning when
	// rebalance is set, keeping the partitioning otherwise), then call
	// store.Restore, and reset the application's own iteration counter to
	// snapshotIter (paper Listing 5, lines 9-14).
	Restore(newPG apgas.PlaceGroup, store *AppResilientStore, snapshotIter int64, rebalance bool) error
}

// YoungInterval returns the checkpoint interval suggested by Young's
// first-order approximation, sqrt(2 · checkpointCost · MTTF) (paper
// section V, citing Young 1974).
func YoungInterval(checkpointCost, mttf time.Duration) time.Duration {
	if checkpointCost <= 0 || mttf <= 0 {
		return 0
	}
	prod := 2 * checkpointCost.Seconds() * mttf.Seconds()
	return time.Duration(math.Sqrt(prod) * float64(time.Second))
}

package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/rgml/rgml/internal/apgas"
)

// FailurePlan schedules fail-stop place failures against an executor run —
// the structured form of the ad-hoc kill-at-iteration hooks used
// throughout the paper's experiments ("a single place failure occurs at
// iteration 15"). A plan is attached with Executor Config.AfterStep =
// plan.AfterStep(rt).
type FailurePlan struct {
	mu     sync.Mutex
	events []FailureEvent
	killed int
	errs   []error
}

// FailureEvent kills one place after the given completed iteration.
type FailureEvent struct {
	// AfterIteration triggers the kill when this many iterations have
	// completed (1-based, matching Executor.Config.AfterStep).
	AfterIteration int64
	// Place is the victim.
	Place apgas.Place
}

// NewFailurePlan builds a plan from events; they are sorted by iteration.
func NewFailurePlan(events ...FailureEvent) *FailurePlan {
	sorted := append([]FailureEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].AfterIteration < sorted[j].AfterIteration
	})
	return &FailurePlan{events: sorted}
}

// AfterStep returns the hook to install as Config.AfterStep. Each event
// fires exactly once, even though the iteration counter rolls back past
// its trigger point during recovery (otherwise a restored run would kill
// the same place count again on replay).
func (p *FailurePlan) AfterStep(rt *apgas.Runtime) func(iter int64) {
	return func(iter int64) {
		p.mu.Lock()
		defer p.mu.Unlock()
		for p.killed < len(p.events) && p.events[p.killed].AfterIteration <= iter {
			ev := p.events[p.killed]
			p.killed++
			if err := rt.Kill(ev.Place); err != nil {
				p.errs = append(p.errs, fmt.Errorf("core: failure plan at iteration %d: %w", iter, err))
			}
		}
	}
}

// Fired returns how many scheduled failures have been injected.
func (p *FailurePlan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// Err returns the injection errors, if any (e.g. a plan that targets
// place zero).
func (p *FailurePlan) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch len(p.errs) {
	case 0:
		return nil
	case 1:
		return p.errs[0]
	default:
		return fmt.Errorf("core: %d injection errors, first: %w", len(p.errs), p.errs[0])
	}
}

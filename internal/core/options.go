package core

import (
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/obs"
)

// Option configures an Executor built with New. Options replace positional
// Config literal construction: zero options give the same executor as a
// zero Config, and every Config knob has a corresponding With* option.
type Option func(*Config)

// WithCheckpointInterval checkpoints before iterations 0, k, 2k, ….
func WithCheckpointInterval(k int) Option {
	return func(c *Config) { c.CheckpointInterval = k }
}

// WithMTTF enables automatic checkpoint intervals from Young's formula for
// the given mean time to failure (used when no fixed interval is set).
func WithMTTF(mttf time.Duration) Option {
	return func(c *Config) { c.MTTF = mttf }
}

// WithRestoreMode selects the restoration mode applied on failure.
func WithRestoreMode(m RestoreMode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithFallback selects the mode ReplaceRedundant degrades to when the
// spare pool is exhausted; it must be Shrink or ShrinkRebalance.
func WithFallback(m RestoreMode) Option {
	return func(c *Config) { c.Fallback = m }
}

// WithSpares reserves the last n places of the runtime's initial world as
// replacements for ReplaceRedundant.
func WithSpares(n int) Option {
	return func(c *Config) { c.Spares = n }
}

// WithMaxRestores bounds recovery attempts per run.
func WithMaxRestores(n int) Option {
	return func(c *Config) { c.MaxRestores = n }
}

// WithAfterStep installs a hook running after each successful iteration
// with the 1-based count of completed iterations.
func WithAfterStep(fn func(iter int64)) Option {
	return func(c *Config) { c.AfterStep = fn }
}

// WithObs directs the executor's instruments into reg instead of the
// runtime's (or a private) registry.
func WithObs(reg *obs.Registry) Option {
	return func(c *Config) { c.Obs = reg }
}

// WithChaos attaches a fault-injection engine: the executor arms it for
// the duration of each run, drives its iteration clock, and fires the
// step/commit/restore points the engine's schedule can match.
func WithChaos(eng *chaos.Engine) Option {
	return func(c *Config) { c.Chaos = eng }
}

// WithKernelWorkers sets the intra-place kernel worker pool size (see
// Config.KernelWorkers); n < 1 leaves the pool unchanged.
func WithKernelWorkers(n int) Option {
	return func(c *Config) { c.KernelWorkers = n }
}

// WithDelta enables incremental (delta) checkpointing: objects that
// implement snapshot.DirtyTracker re-encode and re-ship only the
// fragments that changed since the committed checkpoint, carrying the
// unchanged ones forward by reference (see Config.Delta).
func WithDelta(on bool) Option {
	return func(c *Config) { c.Delta = on }
}

// New builds an executor over rt's initial world from functional options.
// It is the preferred constructor; NewExecutor remains as the Config-based
// shim for existing callers.
func New(rt *apgas.Runtime, opts ...Option) (*Executor, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewExecutor(rt, cfg)
}

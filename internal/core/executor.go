package core

import (
	"context"
	"fmt"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/par"
)

// RestoreMode selects how the executor adapts the application to the loss
// of places (paper section V-B).
type RestoreMode int

const (
	// Shrink restores onto the surviving places, keeping the existing
	// data partitioning: the fast block-by-block restore, at the cost of
	// possible load imbalance (Fig. 1-b).
	Shrink RestoreMode = iota
	// ShrinkRebalance restores onto the surviving places and repartitions
	// for even load, paying the sub-block overlap restore (Fig. 1-c).
	ShrinkRebalance
	// ReplaceRedundant substitutes each failed place with a spare place
	// reserved at start time, keeping both the group size and the data
	// distribution unchanged. When failures exceed the spares, the
	// executor falls back to Shrink or ShrinkRebalance per
	// Config.Fallback.
	ReplaceRedundant
	// ReplaceElastic substitutes each failed place with a freshly created
	// place (Elastic X10) — the paper's future-work fourth mode.
	ReplaceElastic
)

// String implements fmt.Stringer.
func (m RestoreMode) String() string {
	switch m {
	case Shrink:
		return "shrink"
	case ShrinkRebalance:
		return "shrink-rebalance"
	case ReplaceRedundant:
		return "replace-redundant"
	case ReplaceElastic:
		return "replace-elastic"
	default:
		return fmt.Sprintf("RestoreMode(%d)", int(m))
	}
}

// Config parameterizes an Executor.
type Config struct {
	// CheckpointInterval is the number of iterations between checkpoints;
	// a checkpoint is taken before iterations 0, k, 2k, …. When zero and
	// MTTF is set, the interval is derived automatically; when both are
	// zero, checkpointing is disabled (the application then cannot
	// recover from failures).
	CheckpointInterval int
	// MTTF, when set (and CheckpointInterval is zero), enables automatic
	// checkpoint intervals from Young's formula: after each checkpoint
	// the executor recomputes sqrt(2·checkpointCost·MTTF) from the
	// measured mean checkpoint and step times and converts it to an
	// iteration count (paper section V: "Young's formula may be used to
	// determine the checkpointing interval").
	MTTF time.Duration
	// Mode is the restoration mode applied on failure.
	Mode RestoreMode
	// Fallback is applied by ReplaceRedundant when the spare pool is
	// exhausted; it must be Shrink or ShrinkRebalance.
	Fallback RestoreMode
	// Spares reserves the last Spares places of the runtime's initial
	// world as replacements for ReplaceRedundant; they are excluded from
	// the active group the application starts on.
	Spares int
	// MaxRestores bounds recovery attempts per Run (guarding against
	// failure storms); 0 means 16.
	MaxRestores int
	// AfterStep, when non-nil, runs after each successful iteration with
	// the 1-based count of completed iterations. Benchmarks use it to
	// inject failures at a chosen iteration.
	AfterStep func(iter int64)
	// Obs, when non-nil, is the observability registry the executor
	// records into. When nil, the executor uses the runtime's registry
	// (apgas.Config.Obs) if one was configured, and otherwise creates a
	// private registry — Metrics is always a live view over a registry.
	Obs *obs.Registry
	// Chaos, when non-nil, is the fault-injection engine the executor
	// drives: armed for the duration of each run (and disarmed again when
	// the run returns), advanced to the executor's iteration once per loop
	// pass, and consulted at the step, commit and restore fault points.
	Chaos *chaos.Engine
	// Delta enables incremental checkpointing: objects implementing
	// snapshot.DirtyTracker re-encode and re-ship only the fragments that
	// changed since the committed checkpoint, carrying the rest forward
	// by reference (see AppResilientStore.Save and Snapshot.SaveDelta).
	Delta bool
	// KernelWorkers, when positive, sets the intra-place kernel worker
	// pool size (see apgas.Config.KernelWorkers); zero leaves the pool
	// unchanged. Kernel results are bit-identical at every worker count.
	KernelWorkers int
}

// Metrics reports where the executor spent its time; the benchmark
// harness derives Table IV's checkpoint/restore percentages from it. It is
// a point-in-time view over the executor's observability registry (the
// "core.*" instruments), not an independent set of fields.
//
// Accounting semantics:
//
//   - StepTime, CheckpointTime and RestoreTime are wall-clock time spent
//     in the three phases and are mutually non-overlapping; their sum is
//     at most Total. A recovery that needs several attempts (failures
//     during restore) charges RestoreTime once for the whole recovery —
//     nested attempts are never double-counted.
//   - Restores counts recoveries that succeeded; RestoreAttempts counts
//     every attempt, including ones aborted by a further failure, so
//     RestoreAttempts ≥ Restores. Each attempt also emits one
//     "core.restore.attempt" trace event.
//   - StepTime includes the partial time of steps aborted by a failure;
//     Steps counts only completed steps.
type Metrics struct {
	Steps       int64
	Checkpoints int64
	// Restores counts recoveries that completed successfully.
	Restores int64
	// RestoreAttempts counts individual restore attempts, including those
	// interrupted by further failures and retried.
	RestoreAttempts int64
	// ReplayedSteps counts iterations re-executed after rollbacks.
	ReplayedSteps  int64
	StepTime       time.Duration
	CheckpointTime time.Duration
	RestoreTime    time.Duration
	Total          time.Duration
}

// Executor runs an IterativeApp under the resilient framework (paper
// section V-A3): it executes Step in a loop, takes periodic checkpoints,
// and restores from the latest checkpoint when a place failure is
// detected.
type Executor struct {
	rt     *apgas.Runtime
	cfg    Config
	store  *AppResilientStore
	active apgas.PlaceGroup
	spares apgas.PlaceGroup
	iter   int64
	reg    *obs.Registry
	in     execInstr
	// lastCkpt and autoIters drive the Young-formula automatic interval.
	lastCkpt  int64
	autoIters int64
}

// execInstr holds the executor's observability handles (the "core.*"
// namespace), resolved once at construction.
type execInstr struct {
	steps           *obs.Counter   // core.steps
	replayed        *obs.Counter   // core.steps.replayed
	checkpoints     *obs.Counter   // core.checkpoints
	ckptFailures    *obs.Counter   // core.checkpoints.failed
	restores        *obs.Counter   // core.restores
	restoreAttempts *obs.Counter   // core.restore.attempts
	failedAttempts  *obs.Counter   // core.restore.attempts.failed
	stepDur         *obs.Histogram // core.step.duration
	ckptDur         *obs.Histogram // core.checkpoint.duration
	restoreDur      *obs.Histogram // core.restore.duration
	runNS           *obs.Counter   // core.run.ns
	youngRecals     *obs.Counter   // core.young.recalibrations
	youngIters      *obs.Gauge     // core.young.interval_iters
	sparesFree      *obs.Gauge     // core.spares.available
	activeSize      *obs.Gauge     // core.places.active
}

func newExecInstr(reg *obs.Registry) execInstr {
	return execInstr{
		steps:           reg.Counter("core.steps"),
		replayed:        reg.Counter("core.steps.replayed"),
		checkpoints:     reg.Counter("core.checkpoints"),
		ckptFailures:    reg.Counter("core.checkpoints.failed"),
		restores:        reg.Counter("core.restores"),
		restoreAttempts: reg.Counter("core.restore.attempts"),
		failedAttempts:  reg.Counter("core.restore.attempts.failed"),
		stepDur:         reg.Histogram("core.step.duration"),
		ckptDur:         reg.Histogram("core.checkpoint.duration"),
		restoreDur:      reg.Histogram("core.restore.duration"),
		runNS:           reg.Counter("core.run.ns"),
		youngRecals:     reg.Counter("core.young.recalibrations"),
		youngIters:      reg.Gauge("core.young.interval_iters"),
		sparesFree:      reg.Gauge("core.spares.available"),
		activeSize:      reg.Gauge("core.places.active"),
	}
}

// NewExecutor builds an executor over rt's initial world, reserving
// cfg.Spares places for ReplaceRedundant.
//
// Deprecated: this is a compatibility-only shim for external
// Config-literal callers; nothing inside the repo uses it anymore. Use
// New with functional options (WithCheckpointInterval, WithRestoreMode,
// WithSpares, WithChaos, …).
func NewExecutor(rt *apgas.Runtime, cfg Config) (*Executor, error) {
	world := rt.World()
	if cfg.Spares < 0 || cfg.Spares >= world.Size() {
		return nil, fmt.Errorf("core: %d spares of %d places", cfg.Spares, world.Size())
	}
	if cfg.CheckpointInterval < 0 {
		return nil, fmt.Errorf("core: negative checkpoint interval")
	}
	switch cfg.Fallback {
	case Shrink, ShrinkRebalance:
	default:
		return nil, fmt.Errorf("core: fallback mode must be shrink or shrink-rebalance, got %v", cfg.Fallback)
	}
	if cfg.MaxRestores == 0 {
		cfg.MaxRestores = 16
	}
	if cfg.KernelWorkers > 0 {
		par.SetWorkers(cfg.KernelWorkers)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = rt.Obs()
	}
	if reg == nil {
		// Metrics is a view over the registry, so the executor always has
		// one, even when the caller did not ask for instrumentation.
		reg = obs.NewRegistry()
	}
	split := world.Size() - cfg.Spares
	e := &Executor{
		rt:     rt,
		cfg:    cfg,
		store:  NewAppResilientStore(),
		active: apgas.PlaceGroup(world[:split]).Clone(),
		spares: apgas.PlaceGroup(world[split:]).Clone(),
		reg:    reg,
		in:     newExecInstr(reg),
	}
	e.store.instrument(reg)
	e.store.SetDelta(cfg.Delta)
	if eng := cfg.Chaos; eng != nil {
		e.store.setCommitHook(func() { _ = eng.At(chaos.PointCommit) })
	}
	e.in.sparesFree.Set(int64(cfg.Spares))
	e.in.activeSize.Set(int64(split))
	return e, nil
}

// ActiveGroup returns the places the application currently runs on.
// Applications call this at construction time to build their GML objects.
func (e *Executor) ActiveGroup() apgas.PlaceGroup { return e.active.Clone() }

// Store returns the executor's application resilient store.
func (e *Executor) Store() *AppResilientStore { return e.store }

// Registry returns the observability registry the executor records into:
// the one from Config.Obs, else the runtime's, else a private registry.
// The benchmark harness derives Table IV's percentages from it and the
// -metrics flag of rgmlrun/rgmlbench exports it.
func (e *Executor) Registry() *obs.Registry { return e.reg }

// Metrics returns a point-in-time view over the executor's registry (see
// the Metrics type for the accounting semantics).
func (e *Executor) Metrics() Metrics {
	return Metrics{
		Steps:           e.in.steps.Value(),
		Checkpoints:     e.in.checkpoints.Value(),
		Restores:        e.in.restores.Value(),
		RestoreAttempts: e.in.restoreAttempts.Value(),
		ReplayedSteps:   e.in.replayed.Value(),
		StepTime:        e.in.stepDur.Sum(),
		CheckpointTime:  e.in.ckptDur.Sum(),
		RestoreTime:     e.in.restoreDur.Sum(),
		Total:           time.Duration(e.in.runNS.Value()),
	}
}

// Run drives app until IsFinished, surviving place failures when
// checkpointing is enabled. It returns the first unrecoverable error. It
// is RunContext with a background context.
func (e *Executor) Run(app IterativeApp) error {
	return e.RunContext(context.Background(), app)
}

// RunContext is Run under a context: cancellation is observed between
// iterations (a step in flight completes first — the framework never
// abandons a distributed operation halfway) and surfaces as an error
// wrapping ErrCanceled. When a chaos engine is configured it is armed for
// exactly the duration of this call, so schedules cannot shoot down
// application construction or post-run teardown.
func (e *Executor) RunContext(ctx context.Context, app IterativeApp) error {
	start := time.Now()
	defer func() { e.in.runNS.Add(int64(time.Since(start))) }()
	if eng := e.cfg.Chaos; eng != nil {
		eng.Arm()
		defer eng.Disarm()
	}
	attempts := 0
	for !app.IsFinished() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: run canceled at iteration %d: %w", e.iter, ErrCanceled)
		}
		e.chaosAdvance()
		if e.shouldCheckpoint() {
			if err := e.checkpoint(app); err != nil {
				if !apgas.IsDeadPlace(err) {
					return fmt.Errorf("core: checkpoint at iteration %d: %w", e.iter, err)
				}
				if err := e.recover(app, &attempts); err != nil {
					return err
				}
				continue
			}
		}
		e.chaosAt(chaos.PointStep)
		t0 := time.Now()
		err := app.Step()
		e.in.stepDur.Observe(time.Since(t0))
		if err != nil {
			if !apgas.IsDeadPlace(err) {
				return fmt.Errorf("core: step at iteration %d: %w", e.iter, err)
			}
			if err := e.recover(app, &attempts); err != nil {
				return err
			}
			continue
		}
		e.iter++
		e.in.steps.Inc()
		if e.cfg.AfterStep != nil {
			e.cfg.AfterStep(e.iter)
		}
	}
	return nil
}

// chaosAdvance moves the configured chaos engine's iteration clock to the
// executor's; a no-op without an engine.
func (e *Executor) chaosAdvance() {
	if eng := e.cfg.Chaos; eng != nil {
		eng.Advance(e.iter)
	}
}

// chaosAt fires one of the executor-serialized chaos points. The injected
// transient error (flake rules) is deliberately dropped: at these points a
// fault only matters if it kills a place, which the next distributed
// operation detects on its own.
func (e *Executor) chaosAt(p chaos.Point) {
	if eng := e.cfg.Chaos; eng != nil {
		_ = eng.At(p)
	}
}

// shouldCheckpoint decides whether to checkpoint before the next step:
// the fixed schedule when CheckpointInterval is set, the Young-derived
// schedule when MTTF is set, no checkpoints otherwise.
func (e *Executor) shouldCheckpoint() bool {
	if k := int64(e.cfg.CheckpointInterval); k > 0 {
		return e.iter%k == 0
	}
	if e.cfg.MTTF <= 0 {
		return false
	}
	if e.in.checkpoints.Value() == 0 {
		return true // always secure an initial recovery point
	}
	// Recalibrate at decision time, once step timings exist.
	e.updateAutoInterval()
	return e.iter-e.lastCkpt >= e.autoIters
}

// AutoInterval reports the current Young-derived checkpoint interval in
// iterations (0 when the automatic mode is off or not yet calibrated).
func (e *Executor) AutoInterval() int64 { return e.autoIters }

// updateAutoInterval recalibrates the Young interval from the measured
// mean checkpoint and step costs.
func (e *Executor) updateAutoInterval() {
	prev := e.autoIters
	defer func() {
		e.in.youngIters.Set(e.autoIters)
		if e.autoIters != prev {
			e.in.youngRecals.Inc()
			e.reg.Trace("core.young.recalibrated", e.autoIters, prev)
		}
	}()
	steps, ckpts := e.in.steps.Value(), e.in.checkpoints.Value()
	if e.cfg.MTTF <= 0 || steps == 0 || ckpts == 0 {
		e.autoIters = 1
		return
	}
	avgStep := e.in.stepDur.Sum() / time.Duration(steps)
	avgCkpt := e.in.ckptDur.Sum() / time.Duration(ckpts)
	opt := YoungInterval(avgCkpt, e.cfg.MTTF)
	if avgStep <= 0 {
		e.autoIters = 1
		return
	}
	iters := int64(opt / avgStep)
	if iters < 1 {
		iters = 1
	}
	e.autoIters = iters
}

// checkpoint takes one application checkpoint, cancelling it on failure.
func (e *Executor) checkpoint(app IterativeApp) error {
	t0 := time.Now()
	defer func() { e.in.ckptDur.Observe(time.Since(t0)) }()
	e.store.SetIteration(e.iter)
	if err := app.Checkpoint(e.store); err != nil {
		e.store.CancelSnapshot()
		e.in.ckptFailures.Inc()
		e.reg.Trace("core.checkpoint.failed", e.iter, 0)
		return err
	}
	e.in.checkpoints.Inc()
	e.lastCkpt = e.iter
	e.reg.Trace("core.checkpoint", e.iter, e.in.checkpoints.Value())
	return nil
}

// recover rolls the application back to the committed checkpoint on a new
// place group chosen by the restoration mode. Additional failures during
// recovery trigger further attempts, iteratively, up to MaxRestores across
// the whole run (attempts is shared with Run). The recovery's wall time is
// charged to RestoreTime exactly once, no matter how many attempts it
// takes; every attempt increments RestoreAttempts and emits one
// "core.restore.attempt" trace event.
func (e *Executor) recover(app IterativeApp, attempts *int) error {
	if !e.store.HasSnapshot() {
		return ErrNoSnapshot
	}
	t0 := time.Now()
	defer func() { e.in.restoreDur.Observe(time.Since(t0)) }()

	snapIter := e.store.SnapshotIter()
	for {
		*attempts++
		if *attempts > e.cfg.MaxRestores {
			return fmt.Errorf("core: giving up after %d restore attempts: %w", e.cfg.MaxRestores, ErrRestoreBudget)
		}
		e.in.restoreAttempts.Inc()
		e.reg.Trace("core.restore.attempt", int64(*attempts), snapIter)
		plan, err := e.nextGroup()
		if err != nil {
			return err
		}
		// Restore fault point: the plan is final but the application has
		// not restored yet, so a kill here lands on a group member
		// mid-restore and forces a further attempt.
		e.chaosAt(chaos.PointRestore)
		// Stash the failure's dead-place set so the store can hand it to
		// PartialRestorer objects: survivors then keep their in-memory
		// state and only the fragments lost with plan.dead are re-loaded.
		e.store.setDead(plan.dead)
		if err := app.Restore(plan.active, e.store, snapIter, plan.rebalance); err != nil {
			e.store.setDead(nil)
			if apgas.IsDeadPlace(err) {
				// Another place died during recovery: try again. The plan
				// is discarded without being committed, so any spares it
				// would have consumed stay in the pool for the retry
				// (minus those that themselves died, which the next
				// nextGroup filters out).
				e.in.failedAttempts.Inc()
				e.reg.Trace("core.restore.attempt.failed", int64(*attempts), snapIter)
				continue
			}
			return fmt.Errorf("core: restore at iteration %d: %w", snapIter, err)
		}
		e.active = plan.active
		e.spares = plan.spares
		e.in.sparesFree.Set(int64(e.rt.Live(e.spares).Size()))
		e.in.activeSize.Set(int64(e.active.Size()))
		e.in.replayed.Add(e.iter - snapIter)
		e.iter = snapIter
		e.lastCkpt = snapIter
		e.in.restores.Inc()
		e.reg.Trace("core.restore.success", int64(*attempts), snapIter)
		return nil
	}
}

// groupPlan is the outcome of one restoration-mode decision: the group to
// restore onto, the spare pool as it should look if the restore succeeds,
// and whether the application should repartition. Nothing in the plan is
// applied to the executor until the restore attempt actually succeeds —
// in particular, spares named in active are not removed from the pool by
// planning alone, so a failed attempt cannot leak them.
type groupPlan struct {
	active    apgas.PlaceGroup
	spares    apgas.PlaceGroup
	rebalance bool
	// dead lists the active-group places lost in the failure this plan
	// recovers from; the executor stashes it in the store so partial
	// restore knows which owners need their data re-loaded.
	dead []apgas.Place
}

// nextGroup computes the new active group per the restoration mode.
func (e *Executor) nextGroup() (groupPlan, error) {
	dead := make([]apgas.Place, 0, 1)
	for _, p := range e.active {
		if e.rt.IsDead(p) {
			dead = append(dead, p)
		}
	}
	if len(dead) == 0 {
		// The failure hit a place outside the active group (e.g. a spare):
		// the data distribution is unaffected; restore in place.
		return groupPlan{active: e.active.Clone(), spares: e.spares}, nil
	}
	mode := e.cfg.Mode
	switch mode {
	case ReplaceRedundant:
		alive := e.rt.Live(e.spares)
		if len(alive) >= len(dead) {
			taken := alive[:len(dead)]
			newPG, err := e.active.Replace(dead, taken)
			return groupPlan{active: newPG, spares: alive[len(dead):], dead: dead}, err
		}
		if len(alive) > 0 {
			// Partial coverage: the schedule killed more places than spares
			// remain. Degrade gracefully instead of abandoning the spares —
			// replace as many dead places as the pool covers (preserving
			// those data positions) and shrink away the rest, repartitioning
			// per the configured fallback.
			part, err := e.active.Replace(dead[:len(alive)], alive)
			if err != nil {
				return groupPlan{}, err
			}
			survivors := part.Without(dead[len(alive):]...)
			if survivors.Size() == 0 {
				return groupPlan{}, ErrGroupExhausted
			}
			return groupPlan{
				active:    survivors,
				spares:    nil,
				rebalance: e.cfg.Fallback == ShrinkRebalance,
				dead:      dead,
			}, nil
		}
		// Spare pool fully exhausted: fall back (paper section V-B3).
		mode = e.cfg.Fallback
	case ReplaceElastic:
		added, err := e.rt.AddPlaces(len(dead))
		if err != nil {
			return groupPlan{}, fmt.Errorf("core: elastic place creation: %w", err)
		}
		newPG, err := e.active.Replace(dead, added)
		return groupPlan{active: newPG, spares: e.spares, dead: dead}, err
	}
	survivors := e.active.Without(dead...)
	if survivors.Size() == 0 {
		return groupPlan{}, ErrGroupExhausted
	}
	return groupPlan{active: survivors, spares: e.spares, rebalance: mode == ShrinkRebalance, dead: dead}, nil
}

package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/rgml/rgml/internal/apgas"
)

// RestoreMode selects how the executor adapts the application to the loss
// of places (paper section V-B).
type RestoreMode int

const (
	// Shrink restores onto the surviving places, keeping the existing
	// data partitioning: the fast block-by-block restore, at the cost of
	// possible load imbalance (Fig. 1-b).
	Shrink RestoreMode = iota
	// ShrinkRebalance restores onto the surviving places and repartitions
	// for even load, paying the sub-block overlap restore (Fig. 1-c).
	ShrinkRebalance
	// ReplaceRedundant substitutes each failed place with a spare place
	// reserved at start time, keeping both the group size and the data
	// distribution unchanged. When failures exceed the spares, the
	// executor falls back to Shrink or ShrinkRebalance per
	// Config.Fallback.
	ReplaceRedundant
	// ReplaceElastic substitutes each failed place with a freshly created
	// place (Elastic X10) — the paper's future-work fourth mode.
	ReplaceElastic
)

// String implements fmt.Stringer.
func (m RestoreMode) String() string {
	switch m {
	case Shrink:
		return "shrink"
	case ShrinkRebalance:
		return "shrink-rebalance"
	case ReplaceRedundant:
		return "replace-redundant"
	case ReplaceElastic:
		return "replace-elastic"
	default:
		return fmt.Sprintf("RestoreMode(%d)", int(m))
	}
}

// Config parameterizes an Executor.
type Config struct {
	// CheckpointInterval is the number of iterations between checkpoints;
	// a checkpoint is taken before iterations 0, k, 2k, …. When zero and
	// MTTF is set, the interval is derived automatically; when both are
	// zero, checkpointing is disabled (the application then cannot
	// recover from failures).
	CheckpointInterval int
	// MTTF, when set (and CheckpointInterval is zero), enables automatic
	// checkpoint intervals from Young's formula: after each checkpoint
	// the executor recomputes sqrt(2·checkpointCost·MTTF) from the
	// measured mean checkpoint and step times and converts it to an
	// iteration count (paper section V: "Young's formula may be used to
	// determine the checkpointing interval").
	MTTF time.Duration
	// Mode is the restoration mode applied on failure.
	Mode RestoreMode
	// Fallback is applied by ReplaceRedundant when the spare pool is
	// exhausted; it must be Shrink or ShrinkRebalance.
	Fallback RestoreMode
	// Spares reserves the last Spares places of the runtime's initial
	// world as replacements for ReplaceRedundant; they are excluded from
	// the active group the application starts on.
	Spares int
	// MaxRestores bounds recovery attempts per Run (guarding against
	// failure storms); 0 means 16.
	MaxRestores int
	// AfterStep, when non-nil, runs after each successful iteration with
	// the 1-based count of completed iterations. Benchmarks use it to
	// inject failures at a chosen iteration.
	AfterStep func(iter int64)
}

// Metrics accumulates where the executor spent its time; the benchmark
// harness derives Table IV's checkpoint/restore percentages from it.
type Metrics struct {
	Steps       int64
	Checkpoints int64
	Restores    int64
	// ReplayedSteps counts iterations re-executed after rollbacks.
	ReplayedSteps  int64
	StepTime       time.Duration
	CheckpointTime time.Duration
	RestoreTime    time.Duration
	Total          time.Duration
}

// Executor runs an IterativeApp under the resilient framework (paper
// section V-A3): it executes Step in a loop, takes periodic checkpoints,
// and restores from the latest checkpoint when a place failure is
// detected.
type Executor struct {
	rt      *apgas.Runtime
	cfg     Config
	store   *AppResilientStore
	active  apgas.PlaceGroup
	spares  apgas.PlaceGroup
	iter    int64
	metrics Metrics
	// lastCkpt and autoIters drive the Young-formula automatic interval.
	lastCkpt  int64
	autoIters int64
}

// NewExecutor builds an executor over rt's initial world, reserving
// cfg.Spares places for ReplaceRedundant.
func NewExecutor(rt *apgas.Runtime, cfg Config) (*Executor, error) {
	world := rt.World()
	if cfg.Spares < 0 || cfg.Spares >= world.Size() {
		return nil, fmt.Errorf("core: %d spares of %d places", cfg.Spares, world.Size())
	}
	if cfg.CheckpointInterval < 0 {
		return nil, fmt.Errorf("core: negative checkpoint interval")
	}
	switch cfg.Fallback {
	case Shrink, ShrinkRebalance:
	default:
		return nil, fmt.Errorf("core: fallback mode must be shrink or shrink-rebalance, got %v", cfg.Fallback)
	}
	if cfg.MaxRestores == 0 {
		cfg.MaxRestores = 16
	}
	split := world.Size() - cfg.Spares
	return &Executor{
		rt:     rt,
		cfg:    cfg,
		store:  NewAppResilientStore(),
		active: apgas.PlaceGroup(world[:split]).Clone(),
		spares: apgas.PlaceGroup(world[split:]).Clone(),
	}, nil
}

// ActiveGroup returns the places the application currently runs on.
// Applications call this at construction time to build their GML objects.
func (e *Executor) ActiveGroup() apgas.PlaceGroup { return e.active.Clone() }

// Store returns the executor's application resilient store.
func (e *Executor) Store() *AppResilientStore { return e.store }

// Metrics returns a copy of the executor's accumulated timings.
func (e *Executor) Metrics() Metrics { return e.metrics }

// Run drives app until IsFinished, surviving place failures when
// checkpointing is enabled. It returns the first unrecoverable error.
func (e *Executor) Run(app IterativeApp) error {
	start := time.Now()
	defer func() { e.metrics.Total = time.Since(start) }()
	restores := 0
	for !app.IsFinished() {
		if e.shouldCheckpoint() {
			if err := e.checkpoint(app); err != nil {
				if !apgas.IsDeadPlace(err) {
					return fmt.Errorf("core: checkpoint at iteration %d: %w", e.iter, err)
				}
				restores++
				if err := e.recover(app, restores); err != nil {
					return err
				}
				continue
			}
		}
		t0 := time.Now()
		err := app.Step()
		e.metrics.StepTime += time.Since(t0)
		if err != nil {
			if !apgas.IsDeadPlace(err) {
				return fmt.Errorf("core: step at iteration %d: %w", e.iter, err)
			}
			restores++
			if err := e.recover(app, restores); err != nil {
				return err
			}
			continue
		}
		e.iter++
		e.metrics.Steps++
		if e.cfg.AfterStep != nil {
			e.cfg.AfterStep(e.iter)
		}
	}
	return nil
}

// shouldCheckpoint decides whether to checkpoint before the next step:
// the fixed schedule when CheckpointInterval is set, the Young-derived
// schedule when MTTF is set, no checkpoints otherwise.
func (e *Executor) shouldCheckpoint() bool {
	if k := int64(e.cfg.CheckpointInterval); k > 0 {
		return e.iter%k == 0
	}
	if e.cfg.MTTF <= 0 {
		return false
	}
	if e.metrics.Checkpoints == 0 {
		return true // always secure an initial recovery point
	}
	// Recalibrate at decision time, once step timings exist.
	e.updateAutoInterval()
	return e.iter-e.lastCkpt >= e.autoIters
}

// AutoInterval reports the current Young-derived checkpoint interval in
// iterations (0 when the automatic mode is off or not yet calibrated).
func (e *Executor) AutoInterval() int64 { return e.autoIters }

// updateAutoInterval recalibrates the Young interval from the measured
// mean checkpoint and step costs.
func (e *Executor) updateAutoInterval() {
	if e.cfg.MTTF <= 0 || e.metrics.Steps == 0 || e.metrics.Checkpoints == 0 {
		e.autoIters = 1
		return
	}
	avgStep := e.metrics.StepTime / time.Duration(e.metrics.Steps)
	avgCkpt := e.metrics.CheckpointTime / time.Duration(e.metrics.Checkpoints)
	opt := YoungInterval(avgCkpt, e.cfg.MTTF)
	if avgStep <= 0 {
		e.autoIters = 1
		return
	}
	iters := int64(opt / avgStep)
	if iters < 1 {
		iters = 1
	}
	e.autoIters = iters
}

// checkpoint takes one application checkpoint, cancelling it on failure.
func (e *Executor) checkpoint(app IterativeApp) error {
	t0 := time.Now()
	defer func() { e.metrics.CheckpointTime += time.Since(t0) }()
	e.store.SetIteration(e.iter)
	if err := app.Checkpoint(e.store); err != nil {
		e.store.CancelSnapshot()
		return err
	}
	e.metrics.Checkpoints++
	e.lastCkpt = e.iter
	return nil
}

// recover rolls the application back to the committed checkpoint on a new
// place group chosen by the restoration mode. Additional failures during
// recovery trigger further attempts up to MaxRestores.
func (e *Executor) recover(app IterativeApp, attempt int) error {
	if attempt > e.cfg.MaxRestores {
		return fmt.Errorf("core: giving up after %d restore attempts", e.cfg.MaxRestores)
	}
	if !e.store.HasSnapshot() {
		return ErrNoSnapshot
	}
	t0 := time.Now()
	defer func() { e.metrics.RestoreTime += time.Since(t0) }()

	newPG, rebalance, err := e.nextGroup()
	if err != nil {
		return err
	}
	snapIter := e.store.SnapshotIter()
	if err := app.Restore(newPG, e.store, snapIter, rebalance); err != nil {
		if apgas.IsDeadPlace(err) {
			// Another place died during recovery: try again.
			return e.recover(app, attempt+1)
		}
		return fmt.Errorf("core: restore at iteration %d: %w", snapIter, err)
	}
	e.active = newPG
	e.metrics.ReplayedSteps += e.iter - snapIter
	e.iter = snapIter
	e.lastCkpt = snapIter
	e.metrics.Restores++
	return nil
}

// nextGroup computes the new active group per the restoration mode and
// reports whether the application should repartition for even load.
func (e *Executor) nextGroup() (apgas.PlaceGroup, bool, error) {
	dead := make([]apgas.Place, 0, 1)
	for _, p := range e.active {
		if e.rt.IsDead(p) {
			dead = append(dead, p)
		}
	}
	if len(dead) == 0 {
		// The failure hit a place outside the active group (e.g. a spare):
		// the data distribution is unaffected; restore in place.
		return e.active.Clone(), false, nil
	}
	mode := e.cfg.Mode
	switch mode {
	case ReplaceRedundant:
		alive := e.rt.Live(e.spares)
		if len(alive) >= len(dead) {
			taken := alive[:len(dead)]
			e.spares = alive[len(dead):]
			newPG, err := e.active.Replace(dead, taken)
			return newPG, false, err
		}
		// Spare pool exhausted: fall back (paper section V-B3).
		mode = e.cfg.Fallback
	case ReplaceElastic:
		added, err := e.rt.AddPlaces(len(dead))
		if err != nil {
			return nil, false, fmt.Errorf("core: elastic place creation: %w", err)
		}
		newPG, err := e.active.Replace(dead, added)
		return newPG, false, err
	}
	survivors := e.active.Without(dead...)
	if survivors.Size() == 0 {
		return nil, false, errors.New("core: no surviving places")
	}
	return survivors, mode == ShrinkRebalance, nil
}

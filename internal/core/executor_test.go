package core_test

import (
	"errors"
	"sync"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
)

// counterApp is a minimal IterativeApp with real distributed state: each
// step adds 1 to every element of a distributed vector, so after k
// successful iterations every element equals k — easy to verify after any
// sequence of failures and rollbacks.
type counterApp struct {
	rt       *apgas.Runtime
	pg       apgas.PlaceGroup
	n        int
	iter     int64
	maxIters int64
	v        *dist.DistVector
}

func newCounterApp(t *testing.T, rt *apgas.Runtime, pg apgas.PlaceGroup, n int, iters int64) *counterApp {
	t.Helper()
	v, err := dist.MakeDistVector(rt, n, pg)
	if err != nil {
		t.Fatal(err)
	}
	return &counterApp{rt: rt, pg: pg.Clone(), n: n, maxIters: iters, v: v}
}

func (a *counterApp) IsFinished() bool { return a.iter >= a.maxIters }

func (a *counterApp) Step() error {
	err := a.v.ApplyLocal(func(seg la.Vector, off int) { seg.CellAdd(1) })
	if err != nil {
		return err
	}
	a.iter++
	return nil
}

func (a *counterApp) Checkpoint(store *core.AppResilientStore) error {
	if err := store.StartNewSnapshot(); err != nil {
		return err
	}
	if err := store.Save(a.v); err != nil {
		return err
	}
	return store.Commit()
}

func (a *counterApp) Restore(newPG apgas.PlaceGroup, store *core.AppResilientStore, snapshotIter int64, rebalance bool) error {
	if err := a.v.Remake(newPG); err != nil {
		return err
	}
	if err := store.Restore(); err != nil {
		return err
	}
	a.pg = newPG.Clone()
	a.iter = snapshotIter
	return nil
}

func newRT(t *testing.T, places int) *apgas.Runtime {
	t.Helper()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

// verify checks that every element of the app's vector equals maxIters.
func verify(t *testing.T, a *counterApp) {
	t.Helper()
	got, err := a.v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range got {
		if x != float64(a.maxIters) {
			t.Fatalf("element %d = %v, want %v", i, x, a.maxIters)
		}
	}
}

func TestExecutorNoFailure(t *testing.T) {
	rt := newRT(t, 4)
	exec, err := core.New(rt, core.WithCheckpointInterval(10))
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 20, 30)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	m := exec.Metrics()
	if m.Steps != 30 {
		t.Errorf("Steps = %d", m.Steps)
	}
	// Checkpoints before iterations 0, 10, 20 = 3 (paper: "three
	// checkpoints per run" for 30 iterations every 10).
	if m.Checkpoints != 3 {
		t.Errorf("Checkpoints = %d, want 3", m.Checkpoints)
	}
	if m.Restores != 0 || m.ReplayedSteps != 0 {
		t.Errorf("unexpected recovery: %+v", m)
	}
}

// killAt returns an AfterStep hook killing victim once after iteration k.
func killAt(t *testing.T, rt *apgas.Runtime, victim apgas.Place, k int64) func(int64) {
	t.Helper()
	var once sync.Once
	return func(iter int64) {
		if iter == k {
			once.Do(func() {
				if err := rt.Kill(victim); err != nil {
					t.Errorf("Kill: %v", err)
				}
			})
		}
	}
}

func TestExecutorShrinkRecovery(t *testing.T) {
	for _, mode := range []core.RestoreMode{core.Shrink, core.ShrinkRebalance} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRT(t, 4)
			victim := rt.Place(2)
			exec, err := core.New(rt,
				core.WithCheckpointInterval(10),
				core.WithRestoreMode(mode),
				core.WithAfterStep(killAt(t, rt, victim, 15)),
			)
			if err != nil {
				t.Fatal(err)
			}
			app := newCounterApp(t, rt, exec.ActiveGroup(), 22, 30)
			if err := exec.Run(app); err != nil {
				t.Fatal(err)
			}
			verify(t, app)
			m := exec.Metrics()
			if m.Restores != 1 {
				t.Errorf("Restores = %d", m.Restores)
			}
			// Killed after iteration 15 completed (the failure surfaces
			// during step 16, which never finishes), rolled back to the
			// checkpoint at 10: iterations 11-15 are replayed.
			if m.ReplayedSteps != 5 {
				t.Errorf("ReplayedSteps = %d, want 5", m.ReplayedSteps)
			}
			if app.pg.Size() != 3 || app.pg.Contains(victim) {
				t.Errorf("final group = %v", app.pg)
			}
		})
	}
}

func TestExecutorReplaceRedundant(t *testing.T) {
	rt := newRT(t, 5)
	victim := rt.Place(1)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(5),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithSpares(1),
		core.WithAfterStep(killAt(t, rt, victim, 7)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if exec.ActiveGroup().Size() != 4 {
		t.Fatalf("active group = %v", exec.ActiveGroup())
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 16, 20)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	// Group size unchanged: the spare (place 4) replaced the victim
	// in-position.
	if app.pg.Size() != 4 {
		t.Fatalf("final group = %v", app.pg)
	}
	if app.pg[1].ID != 4 {
		t.Errorf("victim not replaced by spare: %v", app.pg)
	}
}

func TestExecutorReplaceRedundantFallback(t *testing.T) {
	rt := newRT(t, 5)
	var once sync.Once
	killed := false
	// Kill two active places at once: one spare cannot cover both, so the
	// executor degrades gracefully — the spare replaces one victim
	// in-position and the uncoverable one is shrunk away. The victims are
	// non-adjacent in the group (1 and 3) so the double in-memory storage
	// still covers every snapshot entry — adjacent double failures are a
	// genuine data-loss case, tested separately in the snapshot package.
	hook := func(iter int64) {
		if iter == 6 {
			once.Do(func() {
				_ = rt.Kill(rt.Place(1))
				_ = rt.Kill(rt.Place(3))
				killed = true
			})
		}
	}
	exec2, err := core.New(rt,
		core.WithCheckpointInterval(5),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithFallback(core.Shrink),
		core.WithSpares(1),
		core.WithAfterStep(hook),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec2.ActiveGroup(), 16, 12)
	if err := exec2.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	if !killed {
		t.Fatal("failure was never injected")
	}
	// 4 active - 2 dead + 1 spare = 3 places: the spare (4) takes the
	// first victim's slot, the second victim is shrunk away.
	if app.pg.Size() != 3 {
		t.Fatalf("final group = %v", app.pg)
	}
	if app.pg.IndexOf(rt.Place(4)) < 0 {
		t.Fatalf("spare place 4 not drafted into %v", app.pg)
	}
	for _, dead := range []int{1, 3} {
		if app.pg.IndexOf(rt.Place(dead)) >= 0 {
			t.Fatalf("dead place %d still in %v", dead, app.pg)
		}
	}
}

func TestExecutorReplaceElastic(t *testing.T) {
	rt := newRT(t, 4)
	victim := rt.Place(3)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(5),
		core.WithRestoreMode(core.ReplaceElastic),
		core.WithAfterStep(killAt(t, rt, victim, 6)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 16, 12)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	if app.pg.Size() != 4 {
		t.Fatalf("final group = %v", app.pg)
	}
	// The replacement is a freshly created place with a new ID.
	if app.pg[3].ID != 4 {
		t.Errorf("expected elastic place 4 in position 3, got %v", app.pg)
	}
	if rt.Stats().PlacesAdded != 1 {
		t.Errorf("PlacesAdded = %d", rt.Stats().PlacesAdded)
	}
}

func TestExecutorFailureWithoutCheckpointing(t *testing.T) {
	rt := newRT(t, 3)
	exec, err := core.New(rt,
		// No checkpoints: a failure is unrecoverable.
		core.WithCheckpointInterval(0),
		core.WithAfterStep(killAt(t, rt, rt.Place(1), 2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 9, 10)
	err = exec.Run(app)
	if !errors.Is(err, core.ErrNoSnapshot) {
		t.Fatalf("Run = %v, want ErrNoSnapshot", err)
	}
}

func TestExecutorMultipleSequentialFailures(t *testing.T) {
	rt := newRT(t, 5)
	var once1, once2 sync.Once
	hook := func(iter int64) {
		if iter == 4 {
			once1.Do(func() { _ = rt.Kill(rt.Place(1)) })
		}
		if iter == 9 {
			once2.Do(func() { _ = rt.Kill(rt.Place(2)) })
		}
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(3),
		core.WithRestoreMode(core.ShrinkRebalance),
		core.WithAfterStep(hook),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 18, 12)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	if exec.Metrics().Restores != 2 {
		t.Errorf("Restores = %d", exec.Metrics().Restores)
	}
	if app.pg.Size() != 3 {
		t.Errorf("final group = %v", app.pg)
	}
}

func TestNewExecutorValidation(t *testing.T) {
	rt := newRT(t, 3)
	if _, err := core.New(rt, core.WithSpares(3)); err == nil {
		t.Error("all-spare config accepted")
	}
	if _, err := core.New(rt, core.WithSpares(-1)); err == nil {
		t.Error("negative spares accepted")
	}
	if _, err := core.New(rt, core.WithCheckpointInterval(-1)); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := core.New(rt, core.WithFallback(core.ReplaceRedundant)); err == nil {
		t.Error("invalid fallback accepted")
	}
}

package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
)

// failDuringRestore wraps an IterativeApp and kills one place the first
// time Restore is called, emulating a failure that strikes mid-recovery.
type failDuringRestore struct {
	*counterApp
	rt     *apgas.Runtime
	victim apgas.Place
	once   sync.Once
	fired  bool
}

func (a *failDuringRestore) Restore(newPG apgas.PlaceGroup, store *core.AppResilientStore, snapshotIter int64, rebalance bool) error {
	a.once.Do(func() {
		a.fired = true
		if err := a.rt.Kill(a.victim); err != nil {
			panic(err)
		}
	})
	return a.counterApp.Restore(newPG, store, snapshotIter, rebalance)
}

// traceCount counts the trace events of reg named name.
func traceCount(reg *obs.Registry, name string) int {
	n := 0
	for _, ev := range reg.TraceEvents() {
		if ev.Name == name {
			n++
		}
	}
	return n
}

// TestExecutorFailureDuringRestore drives the paper's worst case: a place
// dies, and while the framework is restoring onto the spare, a second
// place dies too. The first attempt must not consume the spare pool — the
// retry needs both spares to replace both victims.
func TestExecutorFailureDuringRestore(t *testing.T) {
	rt := newRT(t, 6)
	plan := core.NewFailurePlan(core.FailureEvent{AfterIteration: 6, Place: rt.Place(1)})
	exec, err := core.New(rt,
		core.WithCheckpointInterval(5),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithSpares(2),
		core.WithAfterStep(plan.AfterStep(rt)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if exec.ActiveGroup().Size() != 4 {
		t.Fatalf("active group = %v", exec.ActiveGroup())
	}
	// The second victim (place 3) is non-adjacent to the first (place 1)
	// in the active group, so the double in-memory snapshot storage still
	// covers every entry — adjacent double failures are genuine data loss.
	app := &failDuringRestore{
		counterApp: newCounterApp(t, rt, exec.ActiveGroup(), 16, 12),
		rt:         rt,
		victim:     rt.Place(3),
	}
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app.counterApp)
	if plan.Fired() != 1 {
		t.Errorf("plan fired %d times", plan.Fired())
	}
	if err := plan.Err(); err != nil {
		t.Errorf("plan error: %v", err)
	}
	if !app.fired {
		t.Fatal("mid-restore failure was never injected")
	}

	// Both victims replaced by the two spares, group size preserved. With
	// the old spare-consuming nextGroup the first (doomed) attempt ate a
	// spare, and the retry could only shrink.
	if app.pg.Size() != 4 {
		t.Fatalf("final group = %v, want size 4", app.pg)
	}
	for _, dead := range []apgas.Place{rt.Place(1), rt.Place(3)} {
		if app.pg.Contains(dead) {
			t.Errorf("dead %v still in final group %v", dead, app.pg)
		}
	}
	for _, spare := range []apgas.Place{rt.Place(4), rt.Place(5)} {
		if !app.pg.Contains(spare) {
			t.Errorf("spare %v missing from final group %v", spare, app.pg)
		}
	}

	m := exec.Metrics()
	if m.Restores != 1 {
		t.Errorf("Restores = %d, want 1", m.Restores)
	}
	if m.RestoreAttempts != 2 {
		t.Errorf("RestoreAttempts = %d, want 2", m.RestoreAttempts)
	}

	// Accounting: the phases are non-overlapping, so their sum is bounded
	// by the run's wall time even though the recovery took two attempts.
	// (The recursive recover charged the retry's wall time twice, breaking
	// this bound.)
	if sum := m.StepTime + m.CheckpointTime + m.RestoreTime; sum > m.Total {
		t.Errorf("StepTime+CheckpointTime+RestoreTime = %v > Total = %v", sum, m.Total)
	}
	if m.RestoreTime <= 0 {
		t.Errorf("RestoreTime = %v", m.RestoreTime)
	}

	// One trace event per attempt, one failed, one success.
	reg := exec.Registry()
	if n := traceCount(reg, "core.restore.attempt"); n != 2 {
		t.Errorf("core.restore.attempt events = %d, want 2", n)
	}
	if n := traceCount(reg, "core.restore.attempt.failed"); n != 1 {
		t.Errorf("core.restore.attempt.failed events = %d, want 1", n)
	}
	if n := traceCount(reg, "core.restore.success"); n != 1 {
		t.Errorf("core.restore.success events = %d, want 1", n)
	}
}

// TestExecutorSpareExhaustionDuringRestore kills the only spare while it is
// being drafted in: the retry finds the pool empty and falls back to
// shrink.
func TestExecutorSpareExhaustionDuringRestore(t *testing.T) {
	rt := newRT(t, 5)
	victim := rt.Place(1)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(5),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithFallback(core.Shrink),
		core.WithSpares(1),
		core.WithAfterStep(killAt(t, rt, victim, 6)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := &failDuringRestore{
		counterApp: newCounterApp(t, rt, exec.ActiveGroup(), 16, 12),
		rt:         rt,
		victim:     rt.Place(4), // the spare being drafted in
	}
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app.counterApp)
	m := exec.Metrics()
	if m.RestoreAttempts != 2 || m.Restores != 1 {
		t.Errorf("RestoreAttempts = %d, Restores = %d, want 2, 1", m.RestoreAttempts, m.Restores)
	}
	// 4 active - 1 dead = 3 survivors; the dead spare covers nobody.
	if app.pg.Size() != 3 || app.pg.Contains(victim) || app.pg.Contains(rt.Place(4)) {
		t.Errorf("final group = %v, want the 3 survivors", app.pg)
	}
}

// TestExecutorRestoreAttemptExhaustion makes every restore attempt fail
// and checks the executor gives up after MaxRestores attempts instead of
// spinning.
func TestExecutorRestoreAttemptExhaustion(t *testing.T) {
	rt := newRT(t, 4)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(2),
		core.WithRestoreMode(core.Shrink),
		core.WithMaxRestores(3),
		core.WithAfterStep(killAt(t, rt, rt.Place(2), 3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := &alwaysDeadRestore{counterApp: newCounterApp(t, rt, exec.ActiveGroup(), 8, 10)}
	err = exec.Run(app)
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 restore attempts") {
		t.Fatalf("Run = %v, want attempt exhaustion", err)
	}
	if !errors.Is(err, core.ErrRestoreBudget) {
		t.Fatalf("Run = %v, want errors.Is ErrRestoreBudget", err)
	}
	m := exec.Metrics()
	if m.RestoreAttempts != 3 || m.Restores != 0 {
		t.Errorf("RestoreAttempts = %d, Restores = %d, want 3, 0", m.RestoreAttempts, m.Restores)
	}
}

// alwaysDeadRestore fails every Restore with a DeadPlaceError, as if a
// place died during each attempt.
type alwaysDeadRestore struct {
	*counterApp
}

func (a *alwaysDeadRestore) Restore(apgas.PlaceGroup, *core.AppResilientStore, int64, bool) error {
	return &apgas.DeadPlaceError{Place: apgas.Place{ID: 99}}
}

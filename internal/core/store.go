package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/snapshot"
)

// AppResilientStore creates consistent application-level checkpoints out of
// per-object Snapshots (paper Listing 4). A checkpoint is atomic: the
// snapshots taken between StartNewSnapshot and Commit only become the
// application's recovery point when Commit succeeds; a failure in between
// is discarded by CancelSnapshot and the previous checkpoint remains valid.
// Coordinated checkpointing needs only one live checkpoint, so Commit
// destroys the storage of the superseded one (except snapshots shared via
// SaveReadOnly).
type AppResilientStore struct {
	mu sync.Mutex

	// committed is the application's current recovery point.
	committed map[snapshot.Snapshottable]*snapshot.Snapshot
	// committedIter is the iteration the committed checkpoint captured.
	committedIter int64

	// pending accumulates the snapshot under construction.
	pending     map[snapshot.Snapshottable]*snapshot.Snapshot
	pendingIter int64
	inProgress  bool

	// readOnly caches SaveReadOnly snapshots for reuse across checkpoints
	// ("if there is an existing snapshot for a read-only object,
	// saveReadOnly will reuse this snapshot").
	readOnly map[snapshot.Snapshottable]*snapshot.Snapshot

	// delta enables incremental checkpointing: Save asks DirtyTracker
	// objects for a delta snapshot against the committed one, carrying
	// unchanged entries forward by reference. The executor sets it from
	// its Delta config knob.
	delta bool

	// dead is the set of places lost in the failure the executor is
	// currently recovering from, stashed by the executor before the
	// application's Restore runs. Restore hands it to PartialRestorer
	// objects so survivors keep their in-memory state; it is cleared when
	// the restore finishes.
	dead []apgas.Place

	// Observability handles (nil-safe; see instrument).
	saves      *obs.Counter // core.store.saves
	roReuses   *obs.Counter // core.store.readonly_reuses
	roRefresh  *obs.Counter // core.store.readonly_refreshes
	commits    *obs.Counter // core.store.commits
	cancels    *obs.Counter // core.store.cancels
	deltaSaves *obs.Counter // core.store.delta_saves
	repairs    *obs.Counter // core.store.repairs (entries healed by commit-time repair)

	// commitHook, when set, runs at the start of every Commit, after the
	// pending checkpoint's objects have all been saved but before the
	// checkpoint is promoted to the recovery point. The executor points it
	// at the chaos engine's commit fault point, which is how schedules kill
	// places inside the commit window.
	commitHook func()
}

// instrument wires the store's counters into reg. The executor calls it
// for the store it owns; stand-alone stores stay uninstrumented.
func (s *AppResilientStore) instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves = reg.Counter("core.store.saves")
	s.roReuses = reg.Counter("core.store.readonly_reuses")
	s.roRefresh = reg.Counter("core.store.readonly_refreshes")
	s.commits = reg.Counter("core.store.commits")
	s.cancels = reg.Counter("core.store.cancels")
	s.deltaSaves = reg.Counter("core.store.delta_saves")
	s.repairs = reg.Counter("core.store.repairs")
}

// SetDelta toggles incremental checkpointing for DirtyTracker objects
// (see Save). Safe to call between checkpoints; the executor sets it
// once from its configuration.
func (s *AppResilientStore) SetDelta(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delta = on
}

// setDead stashes the places lost in the failure being recovered from;
// the executor calls it before the application's Restore. Restore
// consumes and clears it.
func (s *AppResilientStore) setDead(dead []apgas.Place) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = dead
}

// DeadPlaces returns the places lost in the failure currently being
// recovered from (empty outside a restore).
func (s *AppResilientStore) DeadPlaces() []apgas.Place {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// setCommitHook installs the function Commit runs at its entry (see the
// commitHook field). The executor owns this; nil clears it.
func (s *AppResilientStore) setCommitHook(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitHook = fn
}

// NewAppResilientStore returns an empty store.
func NewAppResilientStore() *AppResilientStore {
	return &AppResilientStore{
		readOnly: make(map[snapshot.Snapshottable]*snapshot.Snapshot),
	}
}

// SetIteration records the application iteration the next checkpoint will
// capture. The executor calls it before invoking the application's
// Checkpoint method.
func (s *AppResilientStore) SetIteration(iter int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingIter = iter
}

// SnapshotIter returns the iteration of the committed checkpoint.
func (s *AppResilientStore) SnapshotIter() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committedIter
}

// StartNewSnapshot begins a new application checkpoint.
func (s *AppResilientStore) StartNewSnapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inProgress {
		return ErrSnapshotInProgress
	}
	s.inProgress = true
	s.pending = make(map[snapshot.Snapshottable]*snapshot.Snapshot)
	return nil
}

// Save captures obj's state into the pending checkpoint. The snapshot is
// taken outside the store's lock (it is a distributed operation), so a
// concurrent Commit or CancelSnapshot can end the checkpoint window while
// the snapshot is in flight; Save then destroys the orphaned snapshot and
// reports ErrNoSnapshotStarted instead of writing into a closed window.
func (s *AppResilientStore) Save(obj snapshot.Snapshottable) error {
	s.mu.Lock()
	if !s.inProgress {
		s.mu.Unlock()
		return ErrNoSnapshotStarted
	}
	// With delta checkpointing on, a DirtyTracker object snapshots
	// incrementally against its committed predecessor: unchanged entries
	// carry forward by reference instead of being re-encoded and
	// re-shipped. The predecessor stays alive until Commit destroys the
	// superseded checkpoint, so reading it here without pinning is safe.
	var prev *snapshot.Snapshot
	dt, tracks := obj.(snapshot.DirtyTracker)
	if s.delta && tracks && s.committed != nil {
		prev = s.committed[obj]
	}
	s.mu.Unlock()
	var (
		snap *snapshot.Snapshot
		err  error
	)
	if prev != nil {
		snap, err = dt.MakeDeltaSnapshot(prev)
		s.deltaSaves.Inc()
	} else {
		snap, err = obj.MakeSnapshot()
	}
	if err != nil {
		return fmt.Errorf("core: saving object: %w", err)
	}
	s.mu.Lock()
	if !s.inProgress {
		// The window closed while the snapshot was being taken (e.g. the
		// executor cancelled the checkpoint after a failure). The pending
		// map is gone; destroy the snapshot we can no longer hand over.
		s.mu.Unlock()
		snap.Destroy()
		return ErrNoSnapshotStarted
	}
	s.pending[obj] = snap
	s.saves.Inc()
	s.mu.Unlock()
	return nil
}

// SaveReadOnly captures obj's state once and reuses the same snapshot in
// every later checkpoint, avoiding repeated serialization of inputs that
// never change (the optimization behind Table III's flat checkpoint
// times).
func (s *AppResilientStore) SaveReadOnly(obj snapshot.Snapshottable) error {
	s.mu.Lock()
	if !s.inProgress {
		s.mu.Unlock()
		return ErrNoSnapshotStarted
	}
	cached := s.readOnly[obj]
	s.mu.Unlock()
	if cached != nil {
		s.roReuses.Inc()
	}
	if cached == nil {
		snap, err := obj.MakeSnapshot()
		if err != nil {
			return fmt.Errorf("core: saving read-only object: %w", err)
		}
		s.mu.Lock()
		if existing := s.readOnly[obj]; existing != nil {
			// Another goroutine raced us; keep the first snapshot.
			s.mu.Unlock()
			snap.Destroy()
			cached = existing
		} else {
			s.readOnly[obj] = snap
			s.mu.Unlock()
			cached = snap
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inProgress {
		return ErrNoSnapshotStarted
	}
	s.pending[obj] = cached
	return nil
}

// Commit atomically promotes the pending checkpoint to the recovery point
// and destroys the storage of the superseded one (read-only snapshots are
// shared between checkpoints and survive). Destroying the superseded
// snapshot also returns its payload buffers to the codec buffer pool, so
// the cycle is double-buffered in storage terms: from the second Commit on,
// each Save re-encodes into the buffers the previous Commit released and
// steady-state checkpoints allocate nothing for block payloads (see
// TestCheckpointCycleReusesBuffers).
func (s *AppResilientStore) Commit() error {
	s.mu.Lock()
	hook := s.commitHook
	active := s.inProgress
	s.mu.Unlock()
	if hook != nil && active {
		// Fire the commit fault point outside the lock: the hook may kill a
		// place, and the resulting ledger activity must not run under the
		// store's mutex. The commit itself is a place-zero-local promotion,
		// so it still succeeds; the next distributed operation observes the
		// death and triggers recovery from the just-committed checkpoint.
		hook()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inProgress {
		return ErrNoSnapshotStarted
	}
	old := s.committed
	s.committed = s.pending
	s.committedIter = s.pendingIter
	s.pending = nil
	s.inProgress = false
	s.commits.Inc()
	s.destroyUnshared(old)
	committed := make([]*snapshot.Snapshot, 0, len(s.committed))
	for _, snap := range s.committed {
		committed = append(committed, snap)
	}
	s.mu.Unlock()
	// Replica repair runs outside the lock (it is a distributed
	// operation): any entry of the just-promoted checkpoint that is below
	// its target redundancy — a dropped replica put, a holder place lost
	// since the snapshot was taken — is re-replicated now, so the recovery
	// point regains its full failure tolerance at every commit. Repair
	// failure is non-fatal: the checkpoint is already committed, the entry
	// stays tracked as degraded, and the next commit retries.
	s.repairCommitted(committed)
	s.mu.Lock()
	return nil
}

// repairCommitted runs snapshot.Repair over the given snapshots, counting
// healed entries and tracing repair errors. Callers must not hold s.mu.
func (s *AppResilientStore) repairCommitted(snaps []*snapshot.Snapshot) {
	for _, snap := range snaps {
		healed, err := snap.Repair()
		if healed > 0 {
			s.repairs.Add(int64(healed))
		}
		if err != nil {
			// Non-fatal (see Commit); the degraded gauge keeps the entry
			// visible until a later repair succeeds.
			continue
		}
	}
}

// CancelSnapshot discards a failed in-progress checkpoint, releasing its
// storage; the previous recovery point remains valid.
func (s *AppResilientStore) CancelSnapshot() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inProgress {
		return
	}
	s.destroyUnshared(s.pending)
	s.pending = nil
	s.inProgress = false
	s.cancels.Inc()
}

// destroyUnshared releases the snapshots of set that are not read-only
// caches and not part of the committed checkpoint, recycling their pooled
// payload buffers for the next checkpoint. Callers hold s.mu.
func (s *AppResilientStore) destroyUnshared(set map[snapshot.Snapshottable]*snapshot.Snapshot) {
	for obj, snap := range set {
		if s.readOnly[obj] == snap {
			continue
		}
		if s.committed != nil && s.committed[obj] == snap {
			continue
		}
		snap.Destroy()
	}
}

// Restore restores every object of the committed checkpoint in parallel
// (paper Listing 5, line 14: one restore() call recovers all saved
// objects). Each object must already have been remade over the new place
// group by the application's Restore method. When the executor has
// stashed the failure's dead-place set (setDead), objects implementing
// snapshot.PartialRestorer restore only the fragments whose owner died;
// surviving places keep their in-memory state. After a successful
// restore, cached read-only snapshots whose replica placement degraded
// (their group names a dead place) are re-taken from the just-restored
// objects and swapped into both the cache and the committed checkpoint,
// so a second failure cannot hit a half-replicated input that is alive
// and re-snapshottable.
func (s *AppResilientStore) Restore() error {
	s.mu.Lock()
	committed := s.committed
	dead := s.dead
	s.mu.Unlock()
	if committed == nil {
		return ErrNoSnapshot
	}
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []error
	)
	for obj, snap := range committed {
		obj, snap := obj, snap
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			if pr, ok := obj.(snapshot.PartialRestorer); ok && len(dead) > 0 {
				err = pr.RestoreSnapshotPartial(snap, dead)
			} else {
				err = obj.RestoreSnapshot(snap)
			}
			if err != nil {
				emu.Lock()
				errs = append(errs, err)
				emu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return fmt.Errorf("core: restore: %w", errors.Join(errs...))
	}
	if err := s.refreshDegradedReadOnly(); err != nil {
		return err
	}
	// The restore may have left committed snapshots degraded — most
	// visibly after a partial-spare replacement, where the group keeps a
	// dead member and every entry it held is down one copy. Re-replicate
	// from the survivors now rather than waiting for the next commit; one
	// more failure before that commit must not lose the recovery point.
	s.mu.Lock()
	snaps := make([]*snapshot.Snapshot, 0, len(committed))
	for _, snap := range committed {
		snaps = append(snaps, snap)
	}
	s.mu.Unlock()
	s.repairCommitted(snaps)
	s.setDead(nil)
	return nil
}

// refreshDegradedReadOnly re-replicates cached read-only snapshots whose
// snapshot-time group now names a dead place. The cached snapshot was
// taken once and reused in every checkpoint, so after a group shrink it
// would otherwise keep serving (and keep being committed) with a replica
// set that is one failure away from data loss — for an object whose
// state was just restored and can simply be snapshotted again. The fresh
// snapshot replaces the stale one in the read-only cache and in the
// committed checkpoint before the old one is destroyed.
func (s *AppResilientStore) refreshDegradedReadOnly() error {
	s.mu.Lock()
	type stale struct {
		obj  snapshot.Snapshottable
		snap *snapshot.Snapshot
	}
	var degraded []stale
	for obj, snap := range s.readOnly {
		if snap.Degraded() {
			degraded = append(degraded, stale{obj, snap})
		}
	}
	s.mu.Unlock()
	for _, d := range degraded {
		fresh, err := d.obj.MakeSnapshot()
		if err != nil {
			return fmt.Errorf("core: re-replicating read-only object: %w", err)
		}
		s.mu.Lock()
		if s.readOnly[d.obj] != d.snap {
			// Raced with another refresh; keep theirs.
			s.mu.Unlock()
			fresh.Destroy()
			continue
		}
		s.readOnly[d.obj] = fresh
		if s.committed != nil && s.committed[d.obj] == d.snap {
			s.committed[d.obj] = fresh
		}
		if s.pending != nil && s.pending[d.obj] == d.snap {
			s.pending[d.obj] = fresh
		}
		s.roRefresh.Inc()
		s.mu.Unlock()
		d.snap.Destroy()
	}
	return nil
}

// HasSnapshot reports whether a checkpoint has been committed.
func (s *AppResilientStore) HasSnapshot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed != nil
}

package core

import (
	"runtime/debug"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/dist"
)

// TestCheckpointCycleReusesBuffers pins the buffer-recycling contract of
// the double-buffered checkpoint cycle: Commit destroys the superseded
// snapshot, which returns its payload buffers to the codec pool, and the
// next checkpoint's encoders draw those buffers back out. GC is paused so
// sync.Pool cannot drop buffers mid-test.
func TestCheckpointCycleReusesBuffers(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	rt, err := apgas.NewRuntime(apgas.Config{Places: 4, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	m, err := dist.MakeDistBlockMatrix(rt, block.Dense, 256, 256, 2, 2, 2, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 { return float64(i + j) }); err != nil {
		t.Fatal(err)
	}

	st := NewAppResilientStore()
	checkpoint := func() {
		t.Helper()
		if err := st.StartNewSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := st.Save(m); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoints 1 and 2 populate both slots of the double buffer; from
	// checkpoint 3 on, every Commit returns the superseded snapshot's four
	// block buffers and every Save reuses them.
	checkpoint()
	checkpoint()
	gets0, hits0, puts0 := codec.PoolStats()
	const steady = 4
	for i := 0; i < steady; i++ {
		checkpoint()
	}
	gets, hits, puts := codec.PoolStats()

	blocks := uint64(m.Grid().NumBlocks())
	if wantGets := steady * blocks; gets-gets0 != wantGets {
		t.Fatalf("steady-state checkpoints drew %d buffers, want %d", gets-gets0, wantGets)
	}
	if puts-puts0 < steady*blocks {
		t.Fatalf("steady-state commits returned %d buffers, want >= %d", puts-puts0, steady*blocks)
	}
	if hits-hits0 < blocks {
		t.Fatalf("steady-state checkpoints hit the pool %d times, want >= %d", hits-hits0, blocks)
	}
}

package core

import (
	"runtime/debug"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/dist"
)

// TestCheckpointCycleReusesBuffers pins the buffer-recycling contract of
// the double-buffered checkpoint cycle: Commit destroys the superseded
// snapshot, which returns its payload buffers to the codec pool, and the
// next checkpoint's encoders draw those buffers back out. GC is paused so
// sync.Pool cannot drop buffers mid-test.
func TestCheckpointCycleReusesBuffers(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	rt, err := apgas.New(apgas.WithPlaces(4), apgas.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	m, err := dist.MakeDistBlockMatrix(rt, block.Dense, 256, 256, 2, 2, 2, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 { return float64(i + j) }); err != nil {
		t.Fatal(err)
	}

	st := NewAppResilientStore()
	checkpoint := func() {
		t.Helper()
		if err := st.StartNewSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := st.Save(m); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoints 1 and 2 populate both slots of the double buffer; from
	// checkpoint 3 on, every Commit returns the superseded snapshot's four
	// block buffers and every Save reuses them.
	checkpoint()
	checkpoint()
	gets0, hits0, puts0 := codec.PoolStats()
	const steady = 4
	for i := 0; i < steady; i++ {
		checkpoint()
	}
	gets, hits, puts := codec.PoolStats()

	blocks := uint64(m.Grid().NumBlocks())
	if wantGets := steady * blocks; gets-gets0 != wantGets {
		t.Fatalf("steady-state checkpoints drew %d buffers, want %d", gets-gets0, wantGets)
	}
	if puts-puts0 < steady*blocks {
		t.Fatalf("steady-state commits returned %d buffers, want >= %d", puts-puts0, steady*blocks)
	}
	if hits-hits0 < blocks {
		t.Fatalf("steady-state checkpoints hit the pool %d times, want >= %d", hits-hits0, blocks)
	}
}

// TestRestoreThenCheckpointReusesBuffers extends the cycle contract across
// a restore: the same-grid restore decodes into the blocks' existing
// payload allocations, so it draws nothing from the pool and — crucially —
// never installs a snapshot entry's buffer into a live block. If it
// aliased instead of copying, the commits that follow would recycle
// payload buffers the matrix still reads, and the final restore below
// would see scribbled data.
func TestRestoreThenCheckpointReusesBuffers(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	rt, err := apgas.New(apgas.WithPlaces(4), apgas.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	m, err := dist.MakeDistBlockMatrix(rt, block.Dense, 256, 256, 2, 2, 2, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 { return float64(i + 2*j) }); err != nil {
		t.Fatal(err)
	}

	st := NewAppResilientStore()
	checkpoint := func() {
		t.Helper()
		if err := st.StartNewSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := st.Save(m); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	checkpoint()
	checkpoint()
	// A full restore decodes in place: zero pool draws.
	gets0, _, _ := codec.PoolStats()
	if err := st.Restore(); err != nil {
		t.Fatal(err)
	}
	if gets, _, _ := codec.PoolStats(); gets != gets0 {
		t.Fatalf("restore drew %d pooled buffers, want 0", gets-gets0)
	}

	// The checkpoint cycle after the restore is indistinguishable from the
	// undisturbed steady state.
	gets0, hits0, puts0 := codec.PoolStats()
	const steady = 3
	for i := 0; i < steady; i++ {
		checkpoint()
	}
	gets, hits, puts := codec.PoolStats()
	blocks := uint64(m.Grid().NumBlocks())
	if wantGets := steady * blocks; gets-gets0 != wantGets {
		t.Fatalf("post-restore checkpoints drew %d buffers, want %d", gets-gets0, wantGets)
	}
	if puts-puts0 < steady*blocks {
		t.Fatalf("post-restore commits returned %d buffers, want >= %d", puts-puts0, steady*blocks)
	}
	if hits-hits0 < blocks {
		t.Fatalf("post-restore checkpoints hit the pool %d times, want >= %d", hits-hits0, blocks)
	}

	// The committed snapshot still restores the original content: the
	// recycled buffers never belonged to a live snapshot entry.
	if err := st.Restore(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][2]int{{0, 0}, {17, 200}, {255, 255}} {
		i, j := probe[0], probe[1]
		if got.At(i, j) != float64(i+2*j) {
			t.Fatalf("restored[%d,%d] = %v, want %v", i, j, got.At(i, j), float64(i+2*j))
		}
	}
}

package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/snapshot"
)

// fakeObj is a Snapshottable that records calls; its snapshots are nil-safe
// stand-ins (Snapshot.Destroy on a zero-value snapshot is a no-op).
type fakeObj struct {
	mu         sync.Mutex
	makes      int
	restores   int
	restoreErr error
}

func (f *fakeObj) MakeSnapshot() (*snapshot.Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.makes++
	return &snapshot.Snapshot{}, nil
}

func (f *fakeObj) RestoreSnapshot(*snapshot.Snapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.restores++
	return f.restoreErr
}

func TestStoreLifecycle(t *testing.T) {
	s := NewAppResilientStore()
	obj := &fakeObj{}
	if s.HasSnapshot() {
		t.Fatal("fresh store has a snapshot")
	}
	if err := s.Save(obj); !errors.Is(err, ErrNoSnapshotStarted) {
		t.Fatalf("Save before start = %v", err)
	}
	if err := s.Commit(); !errors.Is(err, ErrNoSnapshotStarted) {
		t.Fatalf("Commit before start = %v", err)
	}
	s.SetIteration(7)
	if err := s.StartNewSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.StartNewSnapshot(); !errors.Is(err, ErrSnapshotInProgress) {
		t.Fatalf("double start = %v", err)
	}
	if err := s.Save(obj); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !s.HasSnapshot() || s.SnapshotIter() != 7 {
		t.Fatalf("committed iter = %d", s.SnapshotIter())
	}
	if obj.makes != 1 {
		t.Fatalf("makes = %d", obj.makes)
	}
	if err := s.Restore(); err != nil {
		t.Fatal(err)
	}
	if obj.restores != 1 {
		t.Fatalf("restores = %d", obj.restores)
	}
}

func TestStoreRestoreWithoutCommit(t *testing.T) {
	s := NewAppResilientStore()
	if err := s.Restore(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Restore = %v", err)
	}
}

// slowObj stalls MakeSnapshot so a concurrent Commit/CancelSnapshot can
// close the checkpoint window while the snapshot is in flight.
type slowObj struct {
	fakeObj
	delay time.Duration
}

func (o *slowObj) MakeSnapshot() (*snapshot.Snapshot, error) {
	time.Sleep(o.delay)
	return o.fakeObj.MakeSnapshot()
}

// TestStoreSaveCancelRace is the regression test for the lost-window race:
// Save used to drop the mutex while snapshotting and then write into
// s.pending unconditionally, panicking on the nil map left behind by a
// concurrent CancelSnapshot. A late Save must either land in the window or
// report ErrNoSnapshotStarted — never panic.
func TestStoreSaveCancelRace(t *testing.T) {
	s := NewAppResilientStore()
	obj := &slowObj{delay: 100 * time.Microsecond}
	for i := 0; i < 200; i++ {
		if err := s.StartNewSnapshot(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- s.Save(obj) }()
		s.CancelSnapshot()
		if err := <-done; err != nil && !errors.Is(err, ErrNoSnapshotStarted) {
			t.Fatalf("Save = %v", err)
		}
		// Drain a window the Save may have won, so the next round starts
		// clean.
		s.CancelSnapshot()
	}
}

// TestStoreConcurrentSaveStress hammers one checkpoint window with
// concurrent Save/SaveReadOnly from many goroutines racing a Commit, under
// -race. Every error must be ErrNoSnapshotStarted (a cleanly refused late
// save).
func TestStoreConcurrentSaveStress(t *testing.T) {
	s := NewAppResilientStore()
	const savers = 8
	for round := 0; round < 50; round++ {
		if err := s.StartNewSnapshot(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, savers)
		for i := 0; i < savers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				obj := &slowObj{delay: time.Duration(i%3) * 10 * time.Microsecond}
				if i%2 == 0 {
					errs <- s.Save(obj)
				} else {
					errs <- s.SaveReadOnly(obj)
				}
			}()
		}
		if round%2 == 0 {
			s.CancelSnapshot()
		} else if err := s.Commit(); err != nil && !errors.Is(err, ErrNoSnapshotStarted) {
			t.Fatal(err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil && !errors.Is(err, ErrNoSnapshotStarted) {
				t.Fatalf("save = %v", err)
			}
		}
		s.CancelSnapshot()
	}
}

func TestStoreCancel(t *testing.T) {
	s := NewAppResilientStore()
	obj := &fakeObj{}
	_ = s.StartNewSnapshot()
	_ = s.Save(obj)
	s.CancelSnapshot()
	if s.HasSnapshot() {
		t.Fatal("cancelled snapshot became committed")
	}
	// Cancelling with nothing pending is a no-op.
	s.CancelSnapshot()
	// A new snapshot can start after cancel.
	if err := s.StartNewSnapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreReadOnlyReuse(t *testing.T) {
	s := NewAppResilientStore()
	ro := &fakeObj{}
	mut := &fakeObj{}
	for i := 0; i < 3; i++ {
		s.SetIteration(int64(i))
		if err := s.StartNewSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := s.SaveReadOnly(ro); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(mut); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// The read-only object was serialized exactly once; the mutable one
	// every checkpoint.
	if ro.makes != 1 {
		t.Errorf("read-only makes = %d, want 1", ro.makes)
	}
	if mut.makes != 3 {
		t.Errorf("mutable makes = %d, want 3", mut.makes)
	}
}

func TestStoreRestoreAggregatesErrors(t *testing.T) {
	s := NewAppResilientStore()
	bad := &fakeObj{restoreErr: errors.New("broken")}
	good := &fakeObj{}
	_ = s.StartNewSnapshot()
	_ = s.Save(bad)
	_ = s.Save(good)
	_ = s.Commit()
	if err := s.Restore(); err == nil {
		t.Fatal("expected restore error")
	}
	if good.restores != 1 {
		t.Error("good object not restored")
	}
}

func TestYoungInterval(t *testing.T) {
	// sqrt(2 * 1s * 50s) = 10s.
	got := YoungInterval(time.Second, 50*time.Second)
	if got < 9999*time.Millisecond || got > 10001*time.Millisecond {
		t.Errorf("YoungInterval = %v, want 10s", got)
	}
	if YoungInterval(0, time.Second) != 0 || YoungInterval(time.Second, 0) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestRestoreModeString(t *testing.T) {
	want := map[RestoreMode]string{
		Shrink:           "shrink",
		ShrinkRebalance:  "shrink-rebalance",
		ReplaceRedundant: "replace-redundant",
		ReplaceElastic:   "replace-elastic",
		RestoreMode(9):   "RestoreMode(9)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

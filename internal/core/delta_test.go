package core_test

import (
	"math"
	"sync"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// deltaApp is counterApp plus an immutable input: each step adds x to v
// element-wise, so after k successful iterations v = k*x. Checkpoints save
// v with plain Save every interval, and x either with plain Save too (the
// worst case for full checkpointing, the carry-forward case for delta) or
// with SaveReadOnly.
type deltaApp struct {
	rt       *apgas.Runtime
	pg       apgas.PlaceGroup
	iter     int64
	maxIters int64
	v, x     *dist.DistVector
	readOnly bool
}

func xVal(i int) float64 { return float64(i%7) + 1 }

// newObsRT is newRT with an observability registry attached to the
// runtime, so snapshot- and dist-layer counters (which record into
// apgas.Config.Obs) are visible through exec.Registry().
func newObsRT(t *testing.T, places int) *apgas.Runtime {
	t.Helper()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true), apgas.WithObs(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func newDeltaApp(t *testing.T, rt *apgas.Runtime, pg apgas.PlaceGroup, n int, iters int64, readOnly bool) *deltaApp {
	t.Helper()
	v, err := dist.MakeDistVector(rt, n, pg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dist.MakeDistVector(rt, n, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return xVal(i) }); err != nil {
		t.Fatal(err)
	}
	return &deltaApp{rt: rt, pg: pg.Clone(), maxIters: iters, v: v, x: x, readOnly: readOnly}
}

func (a *deltaApp) IsFinished() bool { return a.iter >= a.maxIters }

func (a *deltaApp) Step() error {
	err := a.v.ZipApplyLocal(a.x, func(dst, src la.Vector, off int) {
		for i := range dst {
			dst[i] += src[i]
		}
	})
	if err != nil {
		return err
	}
	a.iter++
	return nil
}

func (a *deltaApp) Checkpoint(store *core.AppResilientStore) error {
	if err := store.StartNewSnapshot(); err != nil {
		return err
	}
	if a.readOnly {
		if err := store.SaveReadOnly(a.x); err != nil {
			return err
		}
	} else if err := store.Save(a.x); err != nil {
		return err
	}
	if err := store.Save(a.v); err != nil {
		return err
	}
	return store.Commit()
}

func (a *deltaApp) Restore(newPG apgas.PlaceGroup, store *core.AppResilientStore, snapshotIter int64, rebalance bool) error {
	if err := a.v.Remake(newPG); err != nil {
		return err
	}
	if err := a.x.Remake(newPG); err != nil {
		return err
	}
	if err := store.Restore(); err != nil {
		return err
	}
	a.pg = newPG.Clone()
	a.iter = snapshotIter
	return nil
}

// weights gathers v for verification.
func (a *deltaApp) weights(t *testing.T) la.Vector {
	t.Helper()
	got, err := a.v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// verifyDelta checks every element of v equals maxIters * x[i].
func verifyDelta(t *testing.T, a *deltaApp) {
	t.Helper()
	for i, got := range a.weights(t) {
		if want := float64(a.maxIters) * xVal(i); got != want {
			t.Fatalf("element %d = %v, want %v", i, got, want)
		}
	}
}

// TestExecutorDeltaCarryForwardChaosCommitKill runs the same
// failure-and-recovery workload twice — full checkpointing and delta
// checkpointing, each with a chaos kill inside a commit window between two
// delta commits — and checks that delta (a) carries the unchanged input
// forward instead of re-shipping it, (b) ships strictly fewer checkpoint
// bytes, and (c) converges to bit-identical final state.
func TestExecutorDeltaCarryForwardChaosCommitKill(t *testing.T) {
	run := func(t *testing.T, delta bool) (la.Vector, *obs.Registry) {
		rt := newObsRT(t, 5)
		eng, err := chaos.New(rt, chaos.MustParse("kill(point=commit,iter=6,place=1)"))
		if err != nil {
			t.Fatal(err)
		}
		exec, err := core.New(rt,
			core.WithCheckpointInterval(3),
			core.WithRestoreMode(core.ReplaceRedundant),
			core.WithSpares(1),
			core.WithDelta(delta),
			core.WithChaos(eng),
		)
		if err != nil {
			t.Fatal(err)
		}
		app := newDeltaApp(t, rt, exec.ActiveGroup(), 16, 12, false)
		if err := exec.Run(app); err != nil {
			t.Fatal(err)
		}
		verifyDelta(t, app)
		if got := exec.Metrics().Restores; got != 1 {
			t.Fatalf("Restores = %d, want 1", got)
		}
		if len(eng.Kills()) != 1 {
			t.Fatalf("kills = %v, want one commit kill", eng.Kills())
		}
		return app.weights(t), exec.Registry()
	}

	wFull, regFull := run(t, false)
	wDelta, regDelta := run(t, true)

	if len(wFull) != len(wDelta) {
		t.Fatalf("weight lengths differ: %d vs %d", len(wFull), len(wDelta))
	}
	for i := range wFull {
		if math.Float64bits(wFull[i]) != math.Float64bits(wDelta[i]) {
			t.Fatalf("element %d differs bitwise: full %v, delta %v", i, wFull[i], wDelta[i])
		}
	}

	// Full mode never exercises the delta machinery.
	if got := regFull.Counter("snapshot.delta.carried").Value(); got != 0 {
		t.Errorf("full-mode delta.carried = %d, want 0", got)
	}
	// Delta mode carries the unchanged input across commits (the kill in
	// the middle does not break the chain: after the restore the next
	// delta commit carries forward from the just-restored checkpoint).
	if got := regDelta.Counter("snapshot.delta.carried").Value(); got < 2 {
		t.Errorf("delta.carried = %d, want >= 2", got)
	}
	if got := regDelta.Counter("snapshot.delta.bytes.skipped").Value(); got <= 0 {
		t.Errorf("delta.bytes.skipped = %d, want > 0", got)
	}
	if got := regDelta.Counter("core.store.delta_saves").Value(); got <= 0 {
		t.Errorf("core.store.delta_saves = %d, want > 0", got)
	}
	full := regFull.Counter("snapshot.save.bytes").Value()
	del := regDelta.Counter("snapshot.save.bytes").Value()
	if del >= full {
		t.Errorf("delta shipped %d checkpoint bytes, full %d: want a reduction", del, full)
	}

	// Both runs recover through the partial path (it is unconditional on a
	// non-empty dead set): one place lost out of four, two objects.
	for name, reg := range map[string]*obs.Registry{"full": regFull, "delta": regDelta} {
		kept := reg.Counter("dist.restore.partial.kept").Value()
		loaded := reg.Counter("dist.restore.partial.loaded").Value()
		if kept+loaded != 8 {
			t.Errorf("%s: partial kept %d + loaded %d = %d, want 8 segments", name, kept, loaded, kept+loaded)
		}
		// The immutable input's three surviving segments always validate.
		if kept < 3 {
			t.Errorf("%s: partial kept = %d, want >= 3", name, kept)
		}
		if loaded < 1 {
			t.Errorf("%s: partial loaded = %d, want >= 1", name, loaded)
		}
	}
}

// TestExecutorPartialRestoreLoadsOnlyDeadOwner pins the partial-restore
// traffic exactly: a failure between checkpoints rolls v back (its
// survivors diverged from the checkpoint and must re-load) while the
// immutable x is re-loaded only at the replacement place — and the
// snapshot store serves exactly those five segment payloads.
func TestExecutorPartialRestoreLoadsOnlyDeadOwner(t *testing.T) {
	rt := newObsRT(t, 5)
	victim := rt.Place(1)
	exec, err := core.New(rt,
		core.WithCheckpointInterval(5),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithSpares(1),
		core.WithAfterStep(killAt(t, rt, victim, 7)),
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	app := newDeltaApp(t, rt, exec.ActiveGroup(), n, 12, false)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verifyDelta(t, app)
	if got := exec.Metrics().Restores; got != 1 {
		t.Fatalf("Restores = %d, want 1", got)
	}

	reg := exec.Registry()
	// Remake retains 3 surviving segments for each of the two vectors.
	if got := reg.Counter("dist.remake.segments.retained").Value(); got != 6 {
		t.Errorf("remake.segments.retained = %d, want 6", got)
	}
	// x: 3 survivors validate against the digest and are kept; its dead
	// segment loads. v: all 4 segments load (survivors advanced past the
	// checkpoint, so their digests mismatch).
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != 3 {
		t.Errorf("partial.kept = %d, want 3", got)
	}
	if got := reg.Counter("dist.restore.partial.loaded").Value(); got != 5 {
		t.Errorf("partial.loaded = %d, want 5", got)
	}
	// Byte-exact: five segment payloads of n/4 elements each crossed the
	// store; the three kept segments cost zero load bytes.
	segBytes := int64(codec.SizeFloat64s(n / 4))
	if got := reg.Counter("snapshot.load.bytes").Value(); got != 5*segBytes {
		t.Errorf("snapshot.load.bytes = %d, want %d (5 segments)", got, 5*segBytes)
	}
	if got := reg.Counter("dist.restore.partial.bytes.kept").Value(); got != 3*segBytes {
		t.Errorf("partial.bytes.kept = %d, want %d (3 segments)", got, 3*segBytes)
	}
}

// TestExecutorReadOnlyRefreshSurvivesSecondFailure is the regression test
// for the stale read-only replica bug: the victims are adjacent in the
// original group, so without the post-restore re-replication the cached
// read-only snapshot of x would lose both replicas of one entry at the
// second failure and the run could not recover.
func TestExecutorReadOnlyRefreshSurvivesSecondFailure(t *testing.T) {
	rt := newObsRT(t, 4)
	var once1, once2 sync.Once
	hook := func(iter int64) {
		if iter == 4 {
			once1.Do(func() { _ = rt.Kill(rt.Place(1)) })
		}
		if iter == 9 {
			once2.Do(func() { _ = rt.Kill(rt.Place(2)) })
		}
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(3),
		core.WithRestoreMode(core.Shrink),
		core.WithAfterStep(hook),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newDeltaApp(t, rt, exec.ActiveGroup(), 16, 12, true)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verifyDelta(t, app)
	m := exec.Metrics()
	if m.Restores != 2 {
		t.Errorf("Restores = %d, want 2", m.Restores)
	}
	if app.pg.Size() != 2 {
		t.Errorf("final group = %v, want 2 survivors", app.pg)
	}
	// Each restore found the cached read-only snapshot degraded (its
	// snapshot-time group named a dead place) and re-replicated it over
	// the surviving group.
	reg := exec.Registry()
	if got := reg.Counter("core.store.readonly_refreshes").Value(); got != 2 {
		t.Errorf("readonly_refreshes = %d, want 2", got)
	}
	// The read-only snapshot was still reused between checkpoints (the
	// refresh replaces the cache entry, it does not disable the cache).
	if got := reg.Counter("core.store.readonly_reuses").Value(); got <= 0 {
		t.Errorf("readonly_reuses = %d, want > 0", got)
	}
}

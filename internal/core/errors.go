package core

import (
	"errors"

	"github.com/rgml/rgml/internal/apgas"
)

// The package's error taxonomy. Callers branch on these with errors.Is;
// every error the store and executor return wraps exactly one of them (or
// an apgas error such as DeadPlaceError), never a bare formatted string.
var (
	// ErrNoSnapshot is returned by Restore — and by a recovery attempt —
	// when no checkpoint has been committed yet.
	ErrNoSnapshot = errors.New("core: no committed application snapshot")

	// ErrSnapshotInProgress is returned when StartNewSnapshot is called
	// twice without an intervening Commit or CancelSnapshot.
	ErrSnapshotInProgress = errors.New("core: a snapshot is already in progress")

	// ErrNoSnapshotStarted is returned by Save/SaveReadOnly/Commit outside
	// a StartNewSnapshot..Commit window.
	ErrNoSnapshotStarted = errors.New("core: StartNewSnapshot has not been called")

	// ErrGroupExhausted reports that a restoration plan found no surviving
	// non-spare place to restore onto: the schedule of failures ate the
	// whole group and recovery is impossible.
	ErrGroupExhausted = errors.New("core: no surviving places")

	// ErrRestoreBudget reports that recovery was abandoned because the
	// per-run restore attempt budget (Config.MaxRestores) was exhausted by
	// a failure storm.
	ErrRestoreBudget = errors.New("core: restore attempt budget exhausted")

	// ErrCanceled reports that RunContext stopped because its context was
	// canceled. It aliases apgas.ErrCanceled, so errors.Is matches either
	// package's sentinel.
	ErrCanceled = apgas.ErrCanceled
)

package core_test

import (
	"errors"
	"testing"

	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
)

// TestOptionsBuildMatchesConfig checks that the functional-options
// constructor behaves exactly like the Config shim it fronts.
func TestOptionsBuildMatchesConfig(t *testing.T) {
	rt := newRT(t, 4)
	exec, err := core.New(rt, core.WithCheckpointInterval(10))
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 20, 30)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	m := exec.Metrics()
	if m.Steps != 30 || m.Checkpoints != 3 {
		t.Errorf("Steps = %d, Checkpoints = %d, want 30, 3", m.Steps, m.Checkpoints)
	}
}

// TestOptionsValidation checks that option-built executors hit the same
// validation as Config-built ones.
func TestOptionsValidation(t *testing.T) {
	rt := newRT(t, 3)
	if _, err := core.New(rt, core.WithSpares(3)); err == nil {
		t.Error("WithSpares(world size) must fail")
	}
	if _, err := core.New(rt, core.WithFallback(core.ReplaceRedundant)); err == nil {
		t.Error("replace-redundant fallback must fail")
	}
}

// TestChaosCommitKillRecovers drives a schedule that kills a place inside
// the checkpoint commit window: the commit still promotes (it is a
// place-zero-local operation), the next step observes the death, and the
// run recovers from the checkpoint that was just committed.
func TestChaosCommitKillRecovers(t *testing.T) {
	rt := newRT(t, 4)
	eng, err := chaos.New(rt, chaos.MustParse("kill(point=commit,iter=2,place=1)"))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(2),
		core.WithRestoreMode(core.Shrink),
		core.WithChaos(eng),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 12, 6)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	kills := eng.Kills()
	if len(kills) != 1 || kills[0].Point != chaos.PointCommit || kills[0].Iteration != 2 {
		t.Fatalf("kills = %v, want one commit kill at iteration 2", kills)
	}
	m := exec.Metrics()
	if m.Restores != 1 {
		t.Errorf("Restores = %d, want 1", m.Restores)
	}
	if app.pg.Size() != 3 {
		t.Errorf("final group = %v, want 3 survivors", app.pg)
	}
}

// TestChaosRestoreKillForcesRetry layers a mid-restore kill on top of a
// step kill: the first recovery attempt plans a group that the restore
// rule then breaks, so the attempt fails and the retry completes on the
// remaining survivors. Victims 1 and 3 are non-adjacent, so every
// snapshot entry keeps a live replica throughout.
func TestChaosRestoreKillForcesRetry(t *testing.T) {
	rt := newRT(t, 4)
	eng, err := chaos.New(rt, chaos.MustParse("kill(place=1,iter=3);kill(point=restore,place=3)"))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(2),
		core.WithRestoreMode(core.Shrink),
		core.WithChaos(eng),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 12, 6)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	if got := eng.Signature(); got != "3@step:p1,3@restore:p3" {
		t.Fatalf("signature = %q", got)
	}
	m := exec.Metrics()
	if m.RestoreAttempts != 2 || m.Restores != 1 {
		t.Errorf("RestoreAttempts = %d, Restores = %d, want 2, 1", m.RestoreAttempts, m.Restores)
	}
	if app.pg.Size() != 2 {
		t.Errorf("final group = %v, want 2 survivors", app.pg)
	}
}

// TestChaosDisarmedAfterRun checks the engine's arming is scoped to the
// run: once RunContext returns, schedule rules with remaining budget can
// no longer fire.
func TestChaosDisarmedAfterRun(t *testing.T) {
	rt := newRT(t, 3)
	eng, err := chaos.New(rt, chaos.MustParse("kill(place=1,iter=100)"))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.New(rt, core.WithCheckpointInterval(5), core.WithChaos(eng))
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 6, 4)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	// The rule never matched (run was 4 iterations) and the engine is now
	// disarmed, so its fault points are inert.
	if err := eng.At(chaos.PointStep); err != nil {
		t.Fatal(err)
	}
	if len(eng.Kills()) != 0 {
		t.Fatalf("kills after run = %v, want none", eng.Kills())
	}
}

// TestErrorTaxonomy checks that the facade's sentinels are matched with
// errors.Is through the store's and executor's real failure paths.
func TestErrorTaxonomy(t *testing.T) {
	store := core.NewAppResilientStore()
	if err := store.Commit(); !errors.Is(err, core.ErrNoSnapshotStarted) {
		t.Errorf("Commit outside window = %v, want ErrNoSnapshotStarted", err)
	}
	if err := store.StartNewSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := store.StartNewSnapshot(); !errors.Is(err, core.ErrSnapshotInProgress) {
		t.Errorf("double StartNewSnapshot = %v, want ErrSnapshotInProgress", err)
	}
	if err := store.Restore(); !errors.Is(err, core.ErrNoSnapshot) {
		t.Errorf("Restore without commit = %v, want ErrNoSnapshot", err)
	}

	// With checkpointing disabled a failure is unrecoverable, typed as
	// ErrNoSnapshot.
	rt := newRT(t, 3)
	exec, err := core.New(rt, core.WithAfterStep(func(iter int64) {
		if iter == 2 {
			_ = rt.Kill(rt.Place(1))
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 6, 8)
	if err := exec.Run(app); !errors.Is(err, core.ErrNoSnapshot) {
		t.Errorf("unrecoverable run = %v, want ErrNoSnapshot", err)
	}
}

package core_test

import (
	"strings"
	"sync"
	"testing"

	"github.com/rgml/rgml/internal/core"
)

// TestExecutorFailureDuringCheckpoint kills a place so that the *next*
// scheduled checkpoint (not a step) observes the failure; the executor
// must cancel the broken checkpoint, keep the previous one valid, and
// recover from it.
func TestExecutorFailureDuringCheckpoint(t *testing.T) {
	rt := newRT(t, 4)
	var once sync.Once
	exec, err := core.New(rt,
		core.WithCheckpointInterval(5),
		core.WithRestoreMode(core.Shrink),
		core.WithAfterStep(func(iter int64) {
			// Fires after iteration 5 completes; the checkpoint before
			// iteration 5 already committed, so the one before iteration
			// 10 is the first operation to hit the dead place... unless a
			// step notices first — either path must recover.
			if iter == 5 {
				once.Do(func() { _ = rt.Kill(rt.Place(3)) })
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 12, 12)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	m := exec.Metrics()
	if m.Restores != 1 {
		t.Fatalf("Restores = %d", m.Restores)
	}
	// The snapshot at iteration 5 must have been the recovery point.
	if exec.Store().SnapshotIter() < 5 {
		t.Fatalf("recovered from iteration %d, want >= 5", exec.Store().SnapshotIter())
	}
}

// TestExecutorImmediateFailureRecoversFromInitialCheckpoint kills a place
// during the very first iteration: recovery must come from the checkpoint
// taken before iteration 0.
func TestExecutorImmediateFailureRecoversFromInitialCheckpoint(t *testing.T) {
	rt := newRT(t, 3)
	var once sync.Once
	exec, err := core.New(rt,
		core.WithCheckpointInterval(10),
		core.WithAfterStep(func(iter int64) {
			if iter == 1 {
				once.Do(func() { _ = rt.Kill(rt.Place(1)) })
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 9, 6)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verify(t, app)
	if exec.Store().SnapshotIter() != 0 {
		t.Fatalf("recovered from iteration %d, want 0", exec.Store().SnapshotIter())
	}
}

// TestExecutorGiveUpAfterMaxRestores verifies the failure-storm guard.
func TestExecutorGiveUpAfterMaxRestores(t *testing.T) {
	rt := newRT(t, 6)
	next := 1
	exec, err := core.New(rt,
		core.WithCheckpointInterval(2),
		core.WithRestoreMode(core.Shrink),
		core.WithMaxRestores(2),
		core.WithAfterStep(func(iter int64) {
			// Kill another place after every iteration: recovery can never
			// outrun the failures.
			if next < 5 {
				_ = rt.Kill(rt.Place(next))
				next++
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 12, 40)
	err = exec.Run(app)
	if err == nil {
		t.Fatal("expected the executor to give up")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err = %v", err)
	}
}

// TestExecutorMetricsTimings sanity-checks the time accounting the
// Table IV percentages are derived from.
func TestExecutorMetricsTimings(t *testing.T) {
	rt := newRT(t, 3)
	var once sync.Once
	exec, err := core.New(rt,
		core.WithCheckpointInterval(3),
		core.WithAfterStep(func(iter int64) {
			if iter == 4 {
				once.Do(func() { _ = rt.Kill(rt.Place(2)) })
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 9, 9)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	m := exec.Metrics()
	if m.Total <= 0 || m.StepTime <= 0 || m.CheckpointTime <= 0 || m.RestoreTime <= 0 {
		t.Fatalf("missing timings: %+v", m)
	}
	if m.StepTime+m.CheckpointTime+m.RestoreTime > m.Total {
		t.Fatalf("component times exceed total: %+v", m)
	}
}

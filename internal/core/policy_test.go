package core_test

import (
	"errors"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/snapshot"
)

// newStoreRT is newObsRT with a snapshot redundancy policy installed on
// the runtime, the way rgmlrun's -placement/-redundancy flags do it.
func newStoreRT(t *testing.T, places int, pol apgas.StorePolicy) *apgas.Runtime {
	t.Helper()
	rt, err := apgas.New(
		apgas.WithPlaces(places),
		apgas.WithResilient(true),
		apgas.WithObs(obs.NewRegistry()),
		apgas.WithStorePolicy(pol),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

// TestExecutorRepairClosesDroppedReplicaWindow is the satellite
// regression for the double-failure hole: a transient fault storm drops
// every backup replica of the iteration-2 checkpoint, the same commit's
// repair pass re-replicates them, and the subsequent owner death restores
// from the repaired copies instead of dying with ErrDataLost.
//
// The flake budget is exact: 4 entries × 4 put attempts = 16 transient
// faults, so every save-path put exhausts its retries (all 4 entries
// degrade) and the 17th injection — the first repair put — succeeds.
func TestExecutorRepairClosesDroppedReplicaWindow(t *testing.T) {
	rt := newObsRT(t, 4)
	eng, err := chaos.New(rt, chaos.MustParse("flake(iter=2,times=16);kill(place=1,iter=3)"))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(2),
		core.WithRestoreMode(core.Shrink),
		core.WithChaos(eng),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 12, 6)
	if err := exec.Run(app); err != nil {
		t.Fatalf("run with repaired checkpoint: %v", err)
	}
	verify(t, app)

	reg := exec.Registry()
	if got := eng.Flakes(); got != 16 {
		t.Fatalf("flakes = %d, want 16 (exact retry-budget drain)", got)
	}
	if got := reg.Counter("snapshot.replicas.dropped").Value(); got != 4 {
		t.Fatalf("replicas.dropped = %d, want 4 (every entry degraded)", got)
	}
	// 6 = the 4 dropped-put heals at the iteration-2 commit, plus 2
	// death-driven heals at restore time (the entries that held a copy at
	// dead place 1 are re-replicated to a substitute before the run goes
	// on).
	if got := reg.Counter("snapshot.replicas.repaired").Value(); got != 6 {
		t.Fatalf("replicas.repaired = %d, want 6 (4 commit + 2 restore heals)", got)
	}
	if got := reg.Counter("core.store.repairs").Value(); got != 6 {
		t.Fatalf("core.store.repairs = %d, want 6", got)
	}
	if got := reg.Gauge("snapshot.replicas.degraded").Value(); got != 0 {
		t.Fatalf("degraded gauge = %d, want 0 at end of run", got)
	}
	if m := exec.Metrics(); m.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", m.Restores)
	}
}

// TestExecutorDeltaRefusesDegradedCarry pins the delta carry-forward rule
// for dropped replicas end to end: the iteration-2 checkpoint degrades
// fully (the fault storm outlasts both the save retries AND the repair
// pass), so the iteration-4 delta checkpoint must re-save the unchanged
// input x at full redundancy instead of carrying the owner-only entries —
// which is what makes the iteration-5 owner kill survivable.
func TestExecutorDeltaRefusesDegradedCarry(t *testing.T) {
	rt := newObsRT(t, 4)
	eng, err := chaos.New(rt, chaos.MustParse("flake(iter=2,times=-1);kill(place=1,iter=5)"))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(2),
		core.WithRestoreMode(core.Shrink),
		core.WithDelta(true),
		core.WithChaos(eng),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newDeltaApp(t, rt, exec.ActiveGroup(), 16, 8, false)
	if err := exec.Run(app); err != nil {
		t.Fatalf("run: %v", err)
	}
	verifyDelta(t, app)

	reg := exec.Registry()
	// Checkpoint timeline: the initial (iteration-0) checkpoint is
	// healthy, so iteration 2 carries x's 4 entries — and the fault storm
	// drops their carry reference puts, degrading the iteration-2
	// snapshot. Iteration 4 must therefore REFUSE to carry x (0 carries)
	// and re-save it at full redundancy, which is what makes the
	// iteration-5 owner kill survivable: had the degraded entries been
	// carried, x's place-1 fragment would have no surviving copy and the
	// restore would die with ErrDataLost. After the restore the group
	// changes (no carry at 6), then iteration 8 carries x's 3 entries on
	// the shrunken group. Total: 4 + 3.
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 7 {
		t.Fatalf("delta.carried = %d, want 7 (healthy carries only)", got)
	}
	// 16 drops: x's 4 carry puts + v's 4 save puts at iteration 2, then
	// the same 8 again when the commit's repair pass retries under the
	// still-active storm and fails (the entries stay degraded, which is
	// the refusal trigger).
	if got := reg.Counter("snapshot.replicas.dropped").Value(); got != 16 {
		t.Fatalf("replicas.dropped = %d, want 16", got)
	}
	// The restore-time repair pass heals keys 0 and 1 of both iteration-4
	// snapshots (the entries that kept a copy at dead place 1).
	if got := reg.Counter("snapshot.replicas.repaired").Value(); got != 4 {
		t.Fatalf("replicas.repaired = %d, want 4 (restore-time heals)", got)
	}
	if m := exec.Metrics(); m.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", m.Restores)
	}
}

// TestExecutorDoubleKillSweep is the PR's acceptance matrix: a correlated
// kill of places 1 and 2 — an entry's owner and its adjacent backup — in
// the same inter-checkpoint window. k=2 (the paper's pair scheme) must
// fail loudly with ErrDataLost, never silently corrupt; k=3 and erasure
// (d=3,p=2) must recover and converge to the exact expected state.
func TestExecutorDoubleKillSweep(t *testing.T) {
	const schedule = "kill(iter=3,place=1,span=2)"
	run := func(t *testing.T, pol apgas.StorePolicy) (*counterApp, error) {
		rt := newStoreRT(t, 6, pol)
		eng, err := chaos.New(rt, chaos.MustParse(schedule))
		if err != nil {
			t.Fatal(err)
		}
		exec, err := core.New(rt,
			core.WithCheckpointInterval(2),
			core.WithRestoreMode(core.Shrink),
			core.WithChaos(eng),
		)
		if err != nil {
			t.Fatal(err)
		}
		app := newCounterApp(t, rt, exec.ActiveGroup(), 18, 10)
		runErr := exec.Run(app)
		if got, want := eng.Signature(), "3@step:p1,3@step:p2"; got != want {
			t.Fatalf("kill signature = %q, want %q", got, want)
		}
		return app, runErr
	}

	t.Run("k2-loud-loss", func(t *testing.T) {
		_, err := run(t, apgas.ReplicateStore(2))
		if !errors.Is(err, snapshot.ErrDataLost) {
			t.Fatalf("run err = %v, want ErrDataLost", err)
		}
	})
	t.Run("k3-survives", func(t *testing.T) {
		app, err := run(t, apgas.ReplicateStore(3))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		verify(t, app)
	})
	t.Run("erasure-survives", func(t *testing.T) {
		app, err := run(t, apgas.ErasureStore(3, 2))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		verify(t, app)
	})
}

// TestExecutorNoBackupDeltaRuns covers the DisableBackup ablation
// (k=1 via ReplicateStore(1)) crossed with delta checkpointing: carries
// work with zero replicas in a failure-free run, and an owner death makes
// the next restore fail loudly with ErrDataLost rather than fabricating
// state.
func TestExecutorNoBackupDeltaRuns(t *testing.T) {
	t.Run("failure-free", func(t *testing.T) {
		rt := newStoreRT(t, 4, apgas.ReplicateStore(1))
		exec, err := core.New(rt, core.WithCheckpointInterval(2), core.WithDelta(true))
		if err != nil {
			t.Fatal(err)
		}
		app := newDeltaApp(t, rt, exec.ActiveGroup(), 16, 8, false)
		if err := exec.Run(app); err != nil {
			t.Fatal(err)
		}
		verifyDelta(t, app)
		reg := exec.Registry()
		if got := reg.Counter("snapshot.delta.carried").Value(); got == 0 {
			t.Fatal("k=1 delta run carried nothing; carry must not require replicas")
		}
		if got := reg.Counter("snapshot.replicas").Value(); got != 0 {
			t.Fatalf("replicas = %d, want 0 with backups disabled", got)
		}
	})
	t.Run("owner-death-is-loud", func(t *testing.T) {
		rt := newStoreRT(t, 4, apgas.ReplicateStore(1))
		eng, err := chaos.New(rt, chaos.MustParse("kill(place=1,iter=3)"))
		if err != nil {
			t.Fatal(err)
		}
		exec, err := core.New(rt,
			core.WithCheckpointInterval(2),
			core.WithRestoreMode(core.Shrink),
			core.WithDelta(true),
			core.WithChaos(eng),
		)
		if err != nil {
			t.Fatal(err)
		}
		app := newDeltaApp(t, rt, exec.ActiveGroup(), 16, 8, false)
		if err := exec.Run(app); !errors.Is(err, snapshot.ErrDataLost) {
			t.Fatalf("run err = %v, want ErrDataLost (no redundancy to recover from)", err)
		}
	})
}

// TestExecutorPartialRestoreWithSpareAndDelta crosses the spare-replace
// partial restore with delta checkpointing under a non-default policy:
// the dead place's fragments are restored onto the spare while survivors
// keep their state, and the run converges exactly.
func TestExecutorPartialRestoreWithSpareAndDelta(t *testing.T) {
	rt := newStoreRT(t, 5, apgas.ReplicateStore(3))
	eng, err := chaos.New(rt, chaos.MustParse("kill(place=1,iter=3)"))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := core.New(rt,
		core.WithCheckpointInterval(2),
		core.WithRestoreMode(core.ReplaceRedundant),
		core.WithSpares(1),
		core.WithDelta(true),
		core.WithChaos(eng),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newDeltaApp(t, rt, exec.ActiveGroup(), 16, 8, false)
	if err := exec.Run(app); err != nil {
		t.Fatal(err)
	}
	verifyDelta(t, app)
	if m := exec.Metrics(); m.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", m.Restores)
	}
	if got := app.pg.Size(); got != 4 {
		t.Fatalf("final group size = %d, want 4 (spare replaced the victim)", got)
	}
}

// TestExecutorSinglePlaceRun pins the size-1 corner at the executor
// layer: a one-place world checkpoints, carries deltas and finishes under
// any policy (all of which clamp to a single local copy).
func TestExecutorSinglePlaceRun(t *testing.T) {
	for _, pol := range []apgas.StorePolicy{
		{},
		apgas.ReplicateStore(3),
		apgas.ErasureStore(3, 2),
	} {
		rt := newStoreRT(t, 1, pol)
		exec, err := core.New(rt, core.WithCheckpointInterval(2), core.WithDelta(true))
		if err != nil {
			t.Fatal(err)
		}
		app := newDeltaApp(t, rt, exec.ActiveGroup(), 6, 6, false)
		if err := exec.Run(app); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		verifyDelta(t, app)
		if got := exec.Registry().Counter("snapshot.replicas").Value(); got != 0 {
			t.Fatalf("policy %v: replicas = %d, want 0 on one place", pol, got)
		}
	}
}

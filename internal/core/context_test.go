package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/core"
)

// TestRunContextCancelStopsBetweenIterations checks that cancellation
// surfaces as a typed ErrCanceled between iterations instead of the run
// continuing to completion (or hanging).
func TestRunContextCancelStopsBetweenIterations(t *testing.T) {
	rt := newRT(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exec, err := core.New(rt,
		core.WithCheckpointInterval(100),
		core.WithAfterStep(func(iter int64) {
			if iter == 3 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	app := newCounterApp(t, rt, exec.ActiveGroup(), 12, 1000)
	err = exec.RunContext(ctx, app)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("RunContext = %v, want ErrCanceled", err)
	}
	// core.ErrCanceled aliases the runtime's sentinel; both must match.
	if !errors.Is(err, apgas.ErrCanceled) {
		t.Fatalf("RunContext = %v, want apgas.ErrCanceled too", err)
	}
	if got := exec.Metrics().Steps; got != 3 {
		t.Fatalf("Steps = %d, want 3 (cancel observed before step 4)", got)
	}
}

// TestRunContextAlreadyCanceled checks that a dead-on-arrival context does
// no work at all.
func TestRunContextAlreadyCanceled(t *testing.T) {
	rt := newRT(t, 2)
	exec, err := core.New(rt, core.WithCheckpointInterval(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	app := newCounterApp(t, rt, exec.ActiveGroup(), 4, 10)
	if err := exec.RunContext(ctx, app); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("RunContext = %v, want ErrCanceled", err)
	}
	if got := exec.Metrics().Steps; got != 0 {
		t.Fatalf("Steps = %d, want 0", got)
	}
}

// TestRunContextDeadline checks the timeout form, the one campaign runs
// use to bound each chaos run.
func TestRunContextDeadline(t *testing.T) {
	rt := newRT(t, 2)
	exec, err := core.New(rt, core.WithCheckpointInterval(1000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	app := &slowApp{counterApp: newCounterApp(t, rt, exec.ActiveGroup(), 4, 1_000_000)}
	if err := exec.RunContext(ctx, app); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("RunContext = %v, want ErrCanceled", err)
	}
}

// slowApp pads each step so a short deadline expires mid-run.
type slowApp struct {
	*counterApp
}

func (a *slowApp) Step() error {
	time.Sleep(time.Millisecond)
	return a.counterApp.Step()
}

package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/grid"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// DistVector partitions a length-n vector into contiguous segments, one
// per place of a group (x10.matrix.dist.DistVector). Segment sizes follow
// the near-even Split rule, so redistributing over a different group size
// re-segments the vector.
type DistVector struct {
	rt       *apgas.Runtime
	n        int
	pg       apgas.PlaceGroup
	segSizes []int
	segOffs  []int // len = pg.Size()+1
	plh      apgas.PlaceLocalHandle[la.Vector]
	// ver is the vector's content version for delta checkpointing: every
	// collective that may write the segments bumps it (MarkDirty for
	// direct Local mutation). Segments are mutated collectively, so one
	// object-level version covers all of them.
	ver uint64
	// retained[idx] marks a segment whose storage survived a Remake at
	// the same place and group index; partial restore validates it
	// against the snapshot digest instead of re-loading it.
	retained []bool
	// compressible carries the per-object checkpoint-compression
	// override and lossy opt-in (SetCompression, AllowLossyCheckpoint).
	compressible
}

// MakeDistVector creates a zeroed distributed vector of length n over pg.
func MakeDistVector(rt *apgas.Runtime, n int, pg apgas.PlaceGroup) (*DistVector, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: MakeDistVector(%d): %w", n, ErrShapeMismatch)
	}
	if pg.Size() == 0 || pg.Size() > n {
		return nil, fmt.Errorf("dist: MakeDistVector(%d) over %d places", n, pg.Size())
	}
	v := &DistVector{rt: rt, n: n, pg: pg.Clone()}
	v.segSizes = grid.Split(n, pg.Size())
	v.segOffs = grid.Offsets(v.segSizes)
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) la.Vector {
		return la.NewVector(v.segSizes[idx])
	})
	if err != nil {
		return nil, err
	}
	v.plh = plh
	return v, nil
}

// Size returns the vector length.
func (v *DistVector) Size() int { return v.n }

// Group returns the place group the vector is distributed over.
func (v *DistVector) Group() apgas.PlaceGroup { return v.pg }

// SegmentOf returns the offset and size of the segment owned by group
// index idx.
func (v *DistVector) SegmentOf(idx int) (off, size int) {
	return v.segOffs[idx], v.segSizes[idx]
}

// Local returns the calling place's segment. Code that writes into it
// directly must call MarkDirty, or delta checkpoints fall back to (and
// depend on) the CRC comparison.
func (v *DistVector) Local(ctx *apgas.Ctx) la.Vector { return v.plh.Local(ctx) }

// MarkDirty records that segment contents were mutated outside the
// vector's own collectives, forcing the next delta checkpoint to
// re-examine them.
func (v *DistVector) MarkDirty() { v.ver++ }

// Init sets element i to fn(i) at its owning place.
func (v *DistVector) Init(fn func(i int) float64) error {
	v.ver++
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		seg := v.plh.Local(ctx)
		off := v.segOffs[idx]
		for i := range seg {
			seg[i] = fn(off + i)
		}
	})
}

// ApplyLocal runs fn on every segment in parallel, passing the segment's
// global offset.
func (v *DistVector) ApplyLocal(fn func(seg la.Vector, off int)) error {
	v.ver++
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		fn(v.plh.Local(ctx), v.segOffs[idx])
	})
}

// Scale multiplies every element by a.
func (v *DistVector) Scale(a float64) error {
	return v.ApplyLocal(func(seg la.Vector, _ int) { seg.Scale(a) })
}

// ZipApplyLocal runs fn(segA, segB, off) on the conformal segments of v
// and w in parallel (for element-wise combinations such as residual
// computation).
func (v *DistVector) ZipApplyLocal(w *DistVector, fn func(a, b la.Vector, off int)) error {
	if !sameGroups(v.pg, w.pg) {
		return fmt.Errorf("dist: ZipApplyLocal: %w", ErrGroupMismatch)
	}
	if v.n != w.n {
		return fmt.Errorf("dist: ZipApplyLocal %d vs %d: %w", v.n, w.n, ErrShapeMismatch)
	}
	v.ver++
	w.ver++
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		fn(v.plh.Local(ctx), w.plh.Local(ctx), v.segOffs[idx])
	})
}

// ZipDup runs fn(seg, dupSeg, off) on each segment of v together with the
// corresponding slice of a duplicated vector of the same length.
func (v *DistVector) ZipDup(w *DupVector, fn func(seg, dupSeg la.Vector, off int)) error {
	if !sameGroups(v.pg, w.pg) {
		return fmt.Errorf("dist: ZipDup: %w", ErrGroupMismatch)
	}
	if v.n != w.n {
		return fmt.Errorf("dist: ZipDup %d vs %d: %w", v.n, w.n, ErrShapeMismatch)
	}
	v.ver++
	w.ver++
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		off := v.segOffs[idx]
		seg := v.plh.Local(ctx)
		dup := w.Local(ctx)
		fn(seg, dup[off:off+len(seg)], off)
	})
}

// DotDup computes the inner product of v with a duplicated vector of the
// same length and group (paper Listing 2: U.dot(P)). Per-place partial
// products are reduced in group order for determinism.
func (v *DistVector) DotDup(w *DupVector) (float64, error) {
	if !sameGroups(v.pg, w.pg) {
		return 0, fmt.Errorf("dist: DotDup: %w", ErrGroupMismatch)
	}
	if v.n != w.n {
		return 0, fmt.Errorf("dist: DotDup %d vs %d: %w", v.n, w.n, ErrShapeMismatch)
	}
	partials := make([]float64, v.pg.Size())
	err := apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		seg := v.plh.Local(ctx)
		off := v.segOffs[idx]
		dup := w.Local(ctx)
		partials[idx] = seg.Dot(dup[off : off+len(seg)])
		ctx.Transfer(v.pg[0], 8)
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return sum, nil
}

// Dot computes the inner product of two conformal distributed vectors.
func (v *DistVector) Dot(w *DistVector) (float64, error) {
	if !sameGroups(v.pg, w.pg) {
		return 0, fmt.Errorf("dist: Dot: %w", ErrGroupMismatch)
	}
	if v.n != w.n {
		return 0, fmt.Errorf("dist: Dot %d vs %d: %w", v.n, w.n, ErrShapeMismatch)
	}
	partials := make([]float64, v.pg.Size())
	err := apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		partials[idx] = v.plh.Local(ctx).Dot(w.plh.Local(ctx))
		ctx.Transfer(v.pg[0], 8)
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return sum, nil
}

// FoldLocal maps fn over every segment in parallel and sums the per-place
// results in group order (a deterministic reduction, e.g. for norms and
// objective values).
func (v *DistVector) FoldLocal(fn func(seg la.Vector, off int) float64) (float64, error) {
	partials := make([]float64, v.pg.Size())
	err := apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		partials[idx] = fn(v.plh.Local(ctx), v.segOffs[idx])
		ctx.Transfer(v.pg[0], 8)
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return sum, nil
}

// FoldZip is FoldLocal over the conformal segments of two distributed
// vectors.
func (v *DistVector) FoldZip(w *DistVector, fn func(a, b la.Vector, off int) float64) (float64, error) {
	if !sameGroups(v.pg, w.pg) {
		return 0, fmt.Errorf("dist: FoldZip: %w", ErrGroupMismatch)
	}
	if v.n != w.n {
		return 0, fmt.Errorf("dist: FoldZip %d vs %d: %w", v.n, w.n, ErrShapeMismatch)
	}
	partials := make([]float64, v.pg.Size())
	err := apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		partials[idx] = fn(v.plh.Local(ctx), w.plh.Local(ctx), v.segOffs[idx])
		ctx.Transfer(v.pg[0], 8)
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return sum, nil
}

// GatherTo collects the segments into the root duplicate of dup (paper
// Listing 2: GP.copyTo(P.local()) — the gather before the broadcast). The
// caller follows up with dup.Sync().
func (v *DistVector) GatherTo(dup *DupVector) error {
	if v.n != dup.n {
		return fmt.Errorf("dist: GatherTo %d into %d: %w", v.n, dup.n, ErrShapeMismatch)
	}
	if !sameGroups(v.pg, dup.pg) {
		return fmt.Errorf("dist: GatherTo: %w", ErrGroupMismatch)
	}
	dup.ver++
	return v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(root *apgas.Ctx) {
			dst := dup.Local(root)
			for idx := 0; idx < v.pg.Size(); idx++ {
				off, size := v.segOffs[idx], v.segSizes[idx]
				seg := apgas.Eval(root, v.pg[idx], func(c *apgas.Ctx) la.Vector {
					s := v.plh.Local(c).Clone()
					c.Transfer(v.pg[0], s.Bytes())
					return s
				})
				dst[off : off+size].CopyFrom(seg)
			}
		})
	})
}

// ToVector collects the whole distributed vector into one local vector at
// the main activity (for result extraction and tests).
func (v *DistVector) ToVector() (la.Vector, error) {
	out := la.NewVector(v.n)
	err := v.rt.Finish(func(ctx *apgas.Ctx) {
		for idx := 0; idx < v.pg.Size(); idx++ {
			off, size := v.segOffs[idx], v.segSizes[idx]
			seg := apgas.Eval(ctx, v.pg[idx], func(c *apgas.Ctx) la.Vector {
				s := v.plh.Local(c).Clone()
				c.Transfer(ctx.Here, s.Bytes())
				return s
			})
			out[off : off+size].CopyFrom(seg)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Remake redistributes the vector over a new place group, recomputing
// the segmentation (classes that assign one segment per place must
// recalculate their data grid when the group changes — paper section
// IV-A2). When the new group has the same size, segments whose owning
// place is unchanged are carried over with their contents and marked
// retained, so a following partial restore can validate them against the
// checkpoint instead of re-loading; all other segments come up zeroed.
// The caller is expected to restore or overwrite the vector before
// reading it.
func (v *DistVector) Remake(newPG apgas.PlaceGroup) error {
	if newPG.Size() == 0 || newPG.Size() > v.n {
		return fmt.Errorf("dist: DistVector.Remake over %d places", newPG.Size())
	}
	oldPLH, oldPG := v.plh, v.pg
	segSizes := grid.Split(v.n, newPG.Size())
	retained := make([]bool, newPG.Size())
	sameSize := newPG.Size() == oldPG.Size()
	retCtr := v.rt.Obs().Counter("dist.remake.segments.retained")
	plh, err := apgas.NewPlaceLocalHandle(v.rt, newPG, func(ctx *apgas.Ctx, idx int) la.Vector {
		if sameSize && newPG[idx] == oldPG[idx] {
			if old, ok := oldPLH.TryLocal(ctx); ok && len(old) == segSizes[idx] {
				retained[idx] = true
				retCtr.Inc()
				return old
			}
		}
		return la.NewVector(segSizes[idx])
	})
	if err != nil {
		return err
	}
	oldPLH.Destroy(oldPG)
	v.pg = newPG.Clone()
	v.segSizes = segSizes
	v.segOffs = grid.Offsets(segSizes)
	v.plh = plh
	v.retained = retained
	return nil
}

// MakeSnapshot implements snapshot.Snapshottable: each place saves its
// segment under its group index; the descriptor records the snapshot-time
// segmentation.
func (v *DistVector) MakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := snapshot.New(v.rt, v.pg)
	if err != nil {
		return nil, err
	}
	comp, spec := v.newCompressor(v.rt)
	meta := appendCompressMeta(nil, spec)
	meta = codec.AppendInt(meta, v.n)
	meta = codec.AppendInts(meta, v.segSizes)
	s.SetMeta(meta)
	err = apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		saveVector(ctx, s, idx, v.plh.Local(ctx), comp)
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// MakeDeltaSnapshot implements snapshot.DirtyTracker: segments whose
// version is unchanged since prev (or whose bytes compare equal) are
// carried forward by reference instead of re-encoded and re-shipped.
// Falls back to a full snapshot when prev does not cover the current
// place group, or was written under a different compression policy
// (carried-forward frames must decode under this snapshot's codec).
func (v *DistVector) MakeDeltaSnapshot(prev *snapshot.Snapshot) (*snapshot.Snapshot, error) {
	if prev == nil || !prev.Group().Equal(v.pg) {
		return v.MakeSnapshot()
	}
	comp, spec := v.newCompressor(v.rt)
	if prevSpec, _, err := splitCompressMeta(prev.Meta()); err != nil || prevSpec != spec {
		return v.MakeSnapshot()
	}
	s, err := snapshot.New(v.rt, v.pg)
	if err != nil {
		return nil, err
	}
	meta := appendCompressMeta(nil, spec)
	meta = codec.AppendInt(meta, v.n)
	meta = codec.AppendInts(meta, v.segSizes)
	s.SetMeta(meta)
	ver := v.ver
	err = apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		saveVectorDelta(ctx, s, prev, idx, ver, v.plh.Local(ctx), comp)
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// RestoreSnapshot implements snapshot.Snapshottable. When the current
// segmentation matches the snapshot's (restore onto the same number of
// places), each place loads its whole segment — the fast block-by-block
// path. Otherwise each place reassembles its new segment from the
// overlapping old segments (the re-partitioned path).
func (v *DistVector) RestoreSnapshot(s *snapshot.Snapshot) error {
	comp, objMeta, err := compressorForMeta(s.Meta())
	if err != nil {
		return fmt.Errorf("dist: DistVector restore meta: %w", err)
	}
	n, rest, err := codec.Int(objMeta)
	if err != nil {
		return fmt.Errorf("dist: DistVector restore meta: %w", err)
	}
	oldSizes, _, err := codec.Ints(rest)
	if err != nil {
		return fmt.Errorf("dist: DistVector restore meta: %w", err)
	}
	if n != v.n {
		return fmt.Errorf("dist: DistVector restore length %d, want %d: %w", n, v.n, ErrShapeMismatch)
	}
	oldOffs := grid.Offsets(oldSizes)

	sameSeg := len(oldSizes) == v.pg.Size()
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		if idx < len(v.retained) {
			v.retained[idx] = false
		}
		seg := v.plh.Local(ctx)
		if sameSeg {
			// Same segmentation: decode straight into the existing
			// segment storage.
			data, err := s.Load(ctx, idx, idx)
			if err != nil {
				apgas.Throw(err)
			}
			old, err := decodeVectorInto(seg, data, comp)
			if err != nil {
				apgas.Throw(err)
			}
			seg.CopyFrom(old)
			return
		}
		// Re-segmented: copy the overlapping parts of each old segment.
		off := v.segOffs[idx]
		end := off + len(seg)
		for oldIdx := 0; oldIdx < len(oldSizes); oldIdx++ {
			o0, o1 := oldOffs[oldIdx], oldOffs[oldIdx+1]
			lo, hi := max(off, o0), min(end, o1)
			if hi <= lo {
				continue
			}
			data, err := s.Load(ctx, oldIdx, oldIdx)
			if err != nil {
				apgas.Throw(err)
			}
			old, err := decodeVector(data, comp)
			if err != nil {
				apgas.Throw(err)
			}
			copy(seg[lo-off:hi-off], old[lo-o0:hi-o0])
		}
	})
}

// RestoreSnapshotPartial implements snapshot.PartialRestorer: on a
// same-segmentation restore, segments retained through the preceding
// Remake are validated against the checkpoint digest (a local re-encode
// whose CRC must match the stored sum) and kept in place when they
// match; only segments whose owner died — or whose survivor state
// diverged from the checkpoint — are loaded from the store. Falls back
// to the full restore when the segmentation changed.
func (v *DistVector) RestoreSnapshotPartial(s *snapshot.Snapshot, dead []apgas.Place) error {
	comp, objMeta, err := compressorForMeta(s.Meta())
	if err != nil {
		return fmt.Errorf("dist: DistVector restore meta: %w", err)
	}
	n, rest, err := codec.Int(objMeta)
	if err != nil {
		return fmt.Errorf("dist: DistVector restore meta: %w", err)
	}
	oldSizes, _, err := codec.Ints(rest)
	if err != nil {
		return fmt.Errorf("dist: DistVector restore meta: %w", err)
	}
	if n != v.n {
		return fmt.Errorf("dist: DistVector restore length %d, want %d: %w", n, v.n, ErrShapeMismatch)
	}
	if len(oldSizes) != v.pg.Size() {
		return v.RestoreSnapshot(s)
	}
	reg := v.rt.Obs()
	kept := reg.Counter("dist.restore.partial.kept")
	keptBytes := reg.Counter("dist.restore.partial.bytes.kept")
	loaded := reg.Counter("dist.restore.partial.loaded")
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		seg := v.plh.Local(ctx)
		if idx < len(v.retained) && v.retained[idx] {
			v.retained[idx] = false
			if validateRetainedVector(ctx, s, idx, idx, seg, comp) {
				kept.Inc()
				keptBytes.Add(int64(codec.SizeFloat64s(len(seg))))
				return
			}
		}
		data, err := s.Load(ctx, idx, idx)
		if err != nil {
			apgas.Throw(err)
		}
		old, err := decodeVectorInto(seg, data, comp)
		if err != nil {
			apgas.Throw(err)
		}
		seg.CopyFrom(old)
		loaded.Inc()
	})
}

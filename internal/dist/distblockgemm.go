package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
)

// Distributed matrix-matrix operations, used by factorization workloads
// (GNMF). They require *row-striped conformal* operands: both matrices
// partitioned over the same place group with the same single-column block
// grid, so that corresponding row blocks are co-located and all products
// reduce along the replicated (duplicated) dimension. Row striping is how
// the factorization applications construct their matrices; general 2D
// grids would need a transpose-capable redistribution, which GML also did
// not provide for these products.

// conformalRows verifies that m and other are row-striped over identical
// partitions of the same place group.
func (m *DistBlockMatrix) conformalRows(other *DistBlockMatrix) error {
	if m.g.ColBlocks != 1 || other.g.ColBlocks != 1 {
		return fmt.Errorf("dist: matrix-matrix ops need row-striped operands (colBlocks==1): %w", ErrShapeMismatch)
	}
	if m.rows != other.rows || m.g.RowBlocks != other.g.RowBlocks {
		return fmt.Errorf("dist: row partitions differ (%d/%d rows, %d/%d blocks): %w",
			m.rows, other.rows, m.g.RowBlocks, other.g.RowBlocks, ErrShapeMismatch)
	}
	if !sameGroups(m.pg, other.pg) {
		return ErrGroupMismatch
	}
	for id := range m.dg.PlaceOf {
		if m.dg.PlaceOf[id] != other.dg.PlaceOf[id] {
			return fmt.Errorf("dist: block %d owned by different places: %w", id, ErrGroupMismatch)
		}
	}
	return nil
}

// matScratch returns the cached per-place partial-matrix maps used by the
// reductions, allocated lazily (rebuilt on Remake alongside the vector
// scratch).
func (m *DistBlockMatrix) matScratch() (apgas.PlaceLocalHandle[map[int]*la.DenseMatrix], error) {
	if !m.matScratchOK {
		plh, err := apgas.NewPlaceLocalHandle(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) map[int]*la.DenseMatrix {
			return make(map[int]*la.DenseMatrix)
		})
		if err != nil {
			return apgas.PlaceLocalHandle[map[int]*la.DenseMatrix]{}, err
		}
		m.matScratchH = plh
		m.matScratchOK = true
	}
	return m.matScratchH, nil
}

// TransMultMatrix computes out = mᵀ · other, reducing the co-located
// per-row-block partial products in canonical block order and broadcasting
// the K×M result to every duplicate of out. m must be dense (the factor);
// other may be dense or sparse (the data).
//
// Phase 1 fans each place's row blocks across the kernel pool, writing
// into scratch matrices reused across calls. Phase 2 concatenates the
// per-block partials up a binomial tree to the group root (no arithmetic
// on the way up), which then adds them in canonical row-block order and
// broadcasts via the tree Sync — O(log P) critical-path rounds each way.
func (m *DistBlockMatrix) TransMultMatrix(other *DistBlockMatrix, out *DupDenseMatrix) error {
	if m.kind != block.Dense {
		return fmt.Errorf("dist: TransMultMatrix: left operand must be dense")
	}
	if err := m.conformalRows(other); err != nil {
		return fmt.Errorf("dist: TransMultMatrix: %w", err)
	}
	if out.Rows() != m.cols || out.Cols() != other.cols {
		return fmt.Errorf("dist: TransMultMatrix out %dx%d, want %dx%d: %w",
			out.Rows(), out.Cols(), m.cols, other.cols, ErrShapeMismatch)
	}
	if !sameGroups(m.pg, out.Group()) {
		return fmt.Errorf("dist: TransMultMatrix: %w", ErrGroupMismatch)
	}
	out.MarkDirty()
	scratch, err := m.matScratch()
	if err != nil {
		return err
	}
	gath, err := m.matGatherScratch()
	if err != nil {
		return err
	}
	// Phase 1: per-row-block partials Aᵣᵀ·Bᵣ at each owner, fanned across
	// the kernel pool into reused scratch matrices, then registered in the
	// gather map for phase 2.
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		gm := gath.Local(ctx)
		clear(gm)
		part := scratch.Local(ctx)
		mine := m.plh.Local(ctx)
		theirs := other.plh.Local(ctx)
		mine.Each(func(id int, a *block.MatrixBlock) {
			if p := part[id]; p == nil || p.Rows != m.cols || p.Cols != other.cols {
				part[id] = la.NewDense(m.cols, other.cols)
			}
		})
		mine.EachPar(func(id int, a *block.MatrixBlock) {
			b := theirs.Find(id)
			if b == nil {
				apgas.Throw(fmt.Errorf("dist: TransMultMatrix: block %d missing in right operand", id))
			}
			p := part[id]
			p.Zero()
			if b.Dense != nil {
				la.AccumTransDenseDense(a.Dense, b.Dense, p)
			} else {
				la.AccumTransDenseSparse(a.Dense, b.Sparse, p)
			}
		})
		mine.Each(func(id int, a *block.MatrixBlock) {
			gm[id] = part[id]
		})
	})
	if err != nil {
		return err
	}
	// Phase 2a: binomial up-sweep of the partial maps (see
	// DistBlockMatrix.TransMultVec).
	p := m.pg.Size()
	for stride := 1; stride < p; stride *= 2 {
		st := stride
		err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
			if idx%(2*st) != 0 || idx+st >= p {
				return
			}
			src := m.pg[idx+st]
			origin := ctx.Here
			got := apgas.Eval(ctx, src, func(c *apgas.Ctx) map[int]*la.DenseMatrix {
				sub := gath.Local(c)
				out := make(map[int]*la.DenseMatrix, len(sub))
				bytes := 0
				for id, v := range sub {
					out[id] = v.Clone()
					bytes += v.Bytes()
				}
				c.Transfer(origin, bytes)
				return out
			})
			gm := gath.Local(ctx)
			for id, v := range got {
				gm[id] = v
			}
		})
		if err != nil {
			return err
		}
	}
	// Phase 2b: canonical-order reduction at the group root, then broadcast.
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(root *apgas.Ctx) {
			dst := out.Local(root)
			dst.Zero()
			gm := gath.Local(root)
			for rb := 0; rb < m.g.RowBlocks; rb++ {
				dst.CellAdd(gm[m.g.BlockID(rb, 0)])
			}
		})
	})
	if err != nil {
		return err
	}
	return out.Sync()
}

// MultDupMatrix computes out = m · h for a dense row-striped m (N×K) and a
// duplicated h (K×M); out is a conformal dense row-striped N×M matrix.
// The product is embarrassingly parallel: every place multiplies its row
// blocks against its local duplicate of h.
func (m *DistBlockMatrix) MultDupMatrix(h *DupDenseMatrix, out *DistBlockMatrix) error {
	if m.kind != block.Dense || out.kind != block.Dense {
		return fmt.Errorf("dist: MultDupMatrix: operands must be dense")
	}
	if err := m.conformalRows(out); err != nil {
		return fmt.Errorf("dist: MultDupMatrix: %w", err)
	}
	if h.Rows() != m.cols || h.Cols() != out.cols {
		return fmt.Errorf("dist: MultDupMatrix h %dx%d, want %dx%d: %w",
			h.Rows(), h.Cols(), m.cols, out.cols, ErrShapeMismatch)
	}
	if !sameGroups(m.pg, h.Group()) {
		return fmt.Errorf("dist: MultDupMatrix: %w", ErrGroupMismatch)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		hl := h.Local(ctx)
		outs := out.plh.Local(ctx)
		m.plh.Local(ctx).EachPar(func(id int, a *block.MatrixBlock) {
			o := outs.Find(id)
			if o == nil {
				apgas.Throw(fmt.Errorf("dist: MultDupMatrix: block %d missing in out", id))
			}
			a.Dense.Mult(hl, o.Dense)
			o.Touch()
		})
	})
}

// MultDupTranspose computes out = m · hᵀ for a sparse row-striped m (N×M)
// and a duplicated h (K×M); out is a conformal dense row-striped N×K
// matrix. Like MultDupMatrix, no communication is needed.
func (m *DistBlockMatrix) MultDupTranspose(h *DupDenseMatrix, out *DistBlockMatrix) error {
	if m.kind != block.Sparse || out.kind != block.Dense {
		return fmt.Errorf("dist: MultDupTranspose: want sparse · denseᵀ -> dense")
	}
	if err := m.conformalRows(out); err != nil {
		return fmt.Errorf("dist: MultDupTranspose: %w", err)
	}
	if h.Cols() != m.cols || h.Rows() != out.cols {
		return fmt.Errorf("dist: MultDupTranspose h %dx%d, want %dx%d: %w",
			h.Rows(), h.Cols(), out.cols, m.cols, ErrShapeMismatch)
	}
	if !sameGroups(m.pg, h.Group()) {
		return fmt.Errorf("dist: MultDupTranspose: %w", ErrGroupMismatch)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		hl := h.Local(ctx)
		outs := out.plh.Local(ctx)
		m.plh.Local(ctx).EachPar(func(id int, v *block.MatrixBlock) {
			o := outs.Find(id)
			if o == nil {
				apgas.Throw(fmt.Errorf("dist: MultDupTranspose: block %d missing in out", id))
			}
			o.Dense.Zero()
			la.AccumSparseMultDenseT(v.Sparse, hl, o.Dense)
			o.Touch()
		})
	})
}

// ZipBlocks applies fn(dstBlock, aBlock, bBlock) to every co-located block
// triple of three conformal row-striped matrices — the element-wise
// multiply/divide updates of multiplicative factorization algorithms.
func ZipBlocks(dst, a, b *DistBlockMatrix, fn func(dst, a, b *block.MatrixBlock)) error {
	if err := dst.conformalRows(a); err != nil {
		return fmt.Errorf("dist: ZipBlocks: %w", err)
	}
	if err := dst.conformalRows(b); err != nil {
		return fmt.Errorf("dist: ZipBlocks: %w", err)
	}
	return apgas.ForEachPlace(dst.rt, dst.pg, func(ctx *apgas.Ctx, idx int) {
		ds := dst.plh.Local(ctx)
		as := a.plh.Local(ctx)
		bs := b.plh.Local(ctx)
		ds.Each(func(id int, d *block.MatrixBlock) {
			ab, bb := as.Find(id), bs.Find(id)
			if ab == nil || bb == nil {
				apgas.Throw(fmt.Errorf("dist: ZipBlocks: block %d missing", id))
			}
			fn(d, ab, bb)
			d.Touch()
		})
	})
}

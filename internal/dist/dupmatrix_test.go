package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/la"
)

func readDupDenseAt(t *testing.T, m *DupDenseMatrix, idx int) *la.DenseMatrix {
	t.Helper()
	var out *la.DenseMatrix
	err := m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[idx], func(c *apgas.Ctx) {
			out = m.Local(c).Clone()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDupDenseMatrixInitAndAccessors(t *testing.T) {
	rt := newRT(t, 3)
	m, err := MakeDupDenseMatrix(rt, 4, 3, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 4 || m.Cols() != 3 || m.Group().Size() != 3 {
		t.Fatal("accessors wrong")
	}
	if err := m.Init(func(i, j int) float64 { return float64(i*10 + j) }); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 3; idx++ {
		local := readDupDenseAt(t, m, idx)
		if local.At(2, 1) != 21 {
			t.Fatalf("duplicate %d: (2,1) = %v", idx, local.At(2, 1))
		}
	}
}

func TestDupDenseMatrixValidation(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := MakeDupDenseMatrix(rt, 0, 3, rt.World()); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := MakeDupDenseMatrix(rt, 3, 3, nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := MakeDupSparseMatrix(rt, 3, 0, rt.World()); err == nil {
		t.Error("zero cols accepted")
	}
	if _, err := MakeDupSparseMatrix(rt, 3, 3, nil); err == nil {
		t.Error("empty group accepted")
	}
}

func TestDupDenseMatrixSync(t *testing.T) {
	rt := newRT(t, 3)
	m, err := MakeDupDenseMatrix(rt, 2, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	// Mutate only the root copy.
	err = rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(rt.Place(0), func(c *apgas.Ctx) {
			m.Local(c).Set(1, 1, 9)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := readDupDenseAt(t, m, 2); got.At(1, 1) != 0 {
		t.Fatal("non-root changed before Sync")
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readDupDenseAt(t, m, 2); got.At(1, 1) != 9 {
		t.Fatal("Sync did not propagate")
	}
}

func TestDupDenseMatrixSnapshotRestoreAfterFailure(t *testing.T) {
	rt := newRT(t, 4)
	m, err := MakeDupDenseMatrix(rt, 3, 3, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(func(i, j int) float64 { return float64(i + j) }); err != nil {
		t.Fatal(err)
	}
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remake(rt.World()); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 3; idx++ {
		local := readDupDenseAt(t, m, idx)
		if local.At(2, 2) != 4 {
			t.Fatalf("duplicate %d not restored", idx)
		}
	}
	// One logical copy is stored, so restoring onto a larger group works.
	big, err := MakeDupDenseMatrix(rt, 3, 3, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	small := apgas.PlaceGroup{rt.Place(0), rt.Place(2)}
	v, err := MakeDupDenseMatrix(rt, 3, 3, small)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i, j int) float64 { return 7 }); err != nil {
		t.Fatal(err)
	}
	s2, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Destroy()
	if err := big.RestoreSnapshot(s2); err != nil {
		t.Fatal(err)
	}
	if got := readDupDenseAt(t, big, 2); got.At(0, 0) != 7 {
		t.Fatal("restore onto larger group did not propagate data")
	}
}

func TestDupDenseMatrixAllApply(t *testing.T) {
	rt := newRT(t, 2)
	m, err := MakeDupDenseMatrix(rt, 2, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AllApply(func(local *la.DenseMatrix) { local.Set(0, 0, 5) }); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 2; idx++ {
		if readDupDenseAt(t, m, idx).At(0, 0) != 5 {
			t.Fatal("AllApply did not reach every duplicate")
		}
	}
}

func TestDupSparseMatrixLifecycle(t *testing.T) {
	rt := newRT(t, 3)
	m, err := MakeDupSparseMatrix(rt, 6, 6, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 6 || m.Cols() != 6 || m.Group().Size() != 3 {
		t.Fatal("accessors wrong")
	}
	gen := func(j int) ([]int, []float64) {
		return []int{j, (j + 1) % 6}, []float64{1, 2}
	}
	if err := m.InitColumns(gen); err != nil {
		t.Fatal(err)
	}
	// Verify content at each place.
	err = apgas.ForEachPlace(rt, rt.World(), func(ctx *apgas.Ctx, idx int) {
		local := m.Local(ctx)
		if local.At(3, 3) != 1 || local.At(4, 3) != 2 {
			apgas.Throw(errDupSparseContent)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot, kill, shrink, restore.
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remake(rt.World()); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	err = apgas.ForEachPlace(rt, rt.World(), func(ctx *apgas.Ctx, idx int) {
		if m.Local(ctx).At(3, 3) != 1 {
			apgas.Throw(errDupSparseContent)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

var errDupSparseContent = errShape("dup sparse content wrong")

type errShape string

func (e errShape) Error() string { return string(e) }

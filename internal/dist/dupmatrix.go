package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// DupDenseMatrix duplicates a dense matrix at every place of a group
// (x10.matrix.dist.DupDenseMatrix).
type DupDenseMatrix struct {
	rt         *apgas.Runtime
	rows, cols int
	pg         apgas.PlaceGroup
	plh        apgas.PlaceLocalHandle[*la.DenseMatrix]
	// ver is the logical content version for delta checkpointing (see
	// DupVector: the snapshot stores one copy, so ver tracks the logical
	// value; MarkDirty covers direct Local mutation).
	ver uint64
	// retained[idx] marks a duplicate whose storage survived a Remake at
	// the same place (see DupVector.retained).
	retained []bool
	// compressible carries the per-object checkpoint-compression
	// override and lossy opt-in (SetCompression, AllowLossyCheckpoint).
	compressible
}

// MakeDupDenseMatrix creates a zeroed duplicated rows×cols dense matrix.
func MakeDupDenseMatrix(rt *apgas.Runtime, rows, cols int, pg apgas.PlaceGroup) (*DupDenseMatrix, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("dist: MakeDupDenseMatrix(%d, %d): %w", rows, cols, ErrShapeMismatch)
	}
	if pg.Size() == 0 {
		return nil, fmt.Errorf("dist: MakeDupDenseMatrix: empty place group")
	}
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) *la.DenseMatrix {
		return la.NewDense(rows, cols)
	})
	if err != nil {
		return nil, err
	}
	return &DupDenseMatrix{rt: rt, rows: rows, cols: cols, pg: pg.Clone(), plh: plh}, nil
}

// Rows returns the row count.
func (m *DupDenseMatrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *DupDenseMatrix) Cols() int { return m.cols }

// Group returns the place group.
func (m *DupDenseMatrix) Group() apgas.PlaceGroup { return m.pg }

// Local returns the calling place's duplicate. Code that writes into it
// directly must call MarkDirty, or delta checkpoints fall back to (and
// depend on) the CRC comparison.
func (m *DupDenseMatrix) Local(ctx *apgas.Ctx) *la.DenseMatrix { return m.plh.Local(ctx) }

// MarkDirty records that the matrix's logical value was mutated outside
// its own collectives, forcing the next delta checkpoint to re-examine
// it.
func (m *DupDenseMatrix) MarkDirty() { m.ver++ }

// Init fills every duplicate with fn(i, j), evaluated redundantly at each
// place.
func (m *DupDenseMatrix) Init(fn func(i, j int) float64) error {
	m.ver++
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		local := m.plh.Local(ctx)
		for j := 0; j < m.cols; j++ {
			for i := 0; i < m.rows; i++ {
				local.Set(i, j, fn(i, j))
			}
		}
	})
}

// AllApply runs fn on the duplicate at every place; fn must be
// deterministic to keep the duplicates identical.
func (m *DupDenseMatrix) AllApply(fn func(local *la.DenseMatrix)) error {
	m.ver++
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		fn(m.plh.Local(ctx))
	})
}

// Root reads the root duplicate into a fresh matrix (for result
// extraction by the main activity).
func (m *DupDenseMatrix) Root() (*la.DenseMatrix, error) {
	var out *la.DenseMatrix
	err := m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(c *apgas.Ctx) {
			out = m.Local(c).Clone()
		})
	})
	return out, err
}

// ZipAll runs fn(local, xLocal) at every place of the shared group; fn
// must be deterministic so the duplicates stay identical.
func (m *DupDenseMatrix) ZipAll(x *DupDenseMatrix, fn func(a, b *la.DenseMatrix)) error {
	if !sameGroups(m.pg, x.pg) {
		return fmt.Errorf("dist: DupDenseMatrix.ZipAll: %w", ErrGroupMismatch)
	}
	m.ver++
	x.ver++
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		fn(m.plh.Local(ctx), x.plh.Local(ctx))
	})
}

// ZipAll2 is ZipAll with two additional operands (the three-matrix
// update rule of multiplicative factorizations).
func (m *DupDenseMatrix) ZipAll2(x, y *DupDenseMatrix, fn func(a, b, c *la.DenseMatrix)) error {
	if !sameGroups(m.pg, x.pg) || !sameGroups(m.pg, y.pg) {
		return fmt.Errorf("dist: DupDenseMatrix.ZipAll2: %w", ErrGroupMismatch)
	}
	m.ver++
	x.ver++
	y.ver++
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		fn(m.plh.Local(ctx), x.plh.Local(ctx), y.plh.Local(ctx))
	})
}

// Sync broadcasts the root duplicate to every other place along a
// binomial tree over the group index (the DupVector.Sync scheme): same
// total volume as the flat broadcast, O(log P) critical-path sends.
func (m *DupDenseMatrix) Sync() error {
	if m.pg.Size() <= 1 {
		return nil
	}
	return m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(root *apgas.Ctx) {
			src := m.plh.Local(root).Clone()
			m.bcast(root, 0, m.pg.Size(), src)
		})
	})
}

// bcast relays src — already present at group index idx — to the group
// index range [idx, idx+span); see DupVector.bcast.
func (m *DupDenseMatrix) bcast(c *apgas.Ctx, idx, span int, src *la.DenseMatrix) {
	for span > 1 {
		h := span / 2
		mid := idx + span - h
		p := m.pg[mid]
		sub := src
		c.Transfer(p, sub.Bytes())
		c.AsyncAt(p, func(cc *apgas.Ctx) {
			local := m.plh.Local(cc)
			copy(local.Data, sub.Data)
			m.bcast(cc, mid, h, local)
		})
		span -= h
	}
}

// Remake reallocates the duplicated matrix over a new group. Duplicates
// at places present in both groups are carried over with their contents
// and marked retained (see DupVector.Remake); new places come up zeroed.
// The caller is expected to restore or overwrite the matrix before
// reading it.
func (m *DupDenseMatrix) Remake(newPG apgas.PlaceGroup) error {
	if newPG.Size() == 0 {
		return fmt.Errorf("dist: DupDenseMatrix.Remake: empty place group")
	}
	oldPLH, oldPG := m.plh, m.pg
	retained := make([]bool, newPG.Size())
	retCtr := m.rt.Obs().Counter("dist.remake.segments.retained")
	plh, err := apgas.NewPlaceLocalHandle(m.rt, newPG, func(ctx *apgas.Ctx, idx int) *la.DenseMatrix {
		if old, ok := oldPLH.TryLocal(ctx); ok && old != nil && old.Rows == m.rows && old.Cols == m.cols {
			retained[idx] = true
			retCtr.Inc()
			return old
		}
		return la.NewDense(m.rows, m.cols)
	})
	if err != nil {
		return err
	}
	oldPLH.Destroy(oldPG)
	m.pg = newPG.Clone()
	m.plh = plh
	m.retained = retained
	return nil
}

// bcastList relays src — already present at group index idxs[0] — to the
// remaining indices along a binomial halving (see DupVector.bcastList).
func (m *DupDenseMatrix) bcastList(c *apgas.Ctx, idxs []int, src *la.DenseMatrix) {
	for len(idxs) > 1 {
		h := len(idxs) / 2
		rest := idxs[len(idxs)-h:]
		p := m.pg[rest[0]]
		sub := src
		c.Transfer(p, sub.Bytes())
		c.AsyncAt(p, func(cc *apgas.Ctx) {
			local := m.plh.Local(cc)
			copy(local.Data, sub.Data)
			m.bcastList(cc, rest, local)
		})
		idxs = idxs[:len(idxs)-h]
	}
}

// dupBlock wraps a duplicate as a single block for snapshot serialization.
func dupDenseBlock(d *la.DenseMatrix) *block.MatrixBlock {
	return &block.MatrixBlock{Rows: d.Rows, Cols: d.Cols, Dense: d}
}

func dupSparseBlock(sp *la.SparseCSC) *block.MatrixBlock {
	return &block.MatrixBlock{Rows: sp.Rows, Cols: sp.Cols, Sparse: sp}
}

// MakeSnapshot implements snapshot.Snapshottable: one logical copy is
// saved by the group root (all duplicates are identical; see
// DupVector.MakeSnapshot).
func (m *DupDenseMatrix) MakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := snapshot.New(m.rt, m.pg)
	if err != nil {
		return nil, err
	}
	comp, spec := m.newCompressor(m.rt)
	if meta := appendCompressMeta(nil, spec); len(meta) > 0 {
		s.SetMeta(meta)
	}
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(c *apgas.Ctx) {
			saveBlock(c, s, 0, dupDenseBlock(m.plh.Local(c)), comp)
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// MakeDeltaSnapshot implements snapshot.DirtyTracker: the single stored
// copy is carried forward by reference when the matrix's version is
// unchanged since prev (or its bytes compare equal). Falls back to a
// full snapshot when prev does not cover the current place group, or
// was written under a different compression policy.
func (m *DupDenseMatrix) MakeDeltaSnapshot(prev *snapshot.Snapshot) (*snapshot.Snapshot, error) {
	if prev == nil || !prev.Group().Equal(m.pg) {
		return m.MakeSnapshot()
	}
	comp, spec := m.newCompressor(m.rt)
	if prevSpec, _, err := splitCompressMeta(prev.Meta()); err != nil || prevSpec != spec {
		return m.MakeSnapshot()
	}
	s, err := snapshot.New(m.rt, m.pg)
	if err != nil {
		return nil, err
	}
	if meta := appendCompressMeta(nil, spec); len(meta) > 0 {
		s.SetMeta(meta)
	}
	ver := m.ver
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(c *apgas.Ctx) {
			saveDupBlockDelta(c, s, prev, ver, dupDenseBlock(m.plh.Local(c)), comp)
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// saveDupBlockDelta is saveBlockDelta keyed by the duplicated object's
// own version rather than the wrapper block's (the wrapper is rebuilt on
// every checkpoint, so its Ver is always zero).
func saveDupBlockDelta(ctx *apgas.Ctx, s, prev *snapshot.Snapshot, ver uint64, b *block.MatrixBlock, comp codec.Compressor) {
	s.SaveDelta(ctx, 0, ver, prev, func() *codec.Encoder {
		return encodeBlock(s, b, comp)
	})
}

// RestoreSnapshot implements snapshot.Snapshottable.
func (m *DupDenseMatrix) RestoreSnapshot(s *snapshot.Snapshot) error {
	comp, _, err := compressorForMeta(s.Meta())
	if err != nil {
		return fmt.Errorf("dist: DupDenseMatrix restore meta: %w", err)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		if idx < len(m.retained) {
			m.retained[idx] = false
		}
		data, err := s.Load(ctx, 0, 0)
		if err != nil {
			apgas.Throw(err)
		}
		if err := block.DecodeIntoC(dupDenseBlock(m.plh.Local(ctx)), data, comp); err != nil {
			apgas.Throw(fmt.Errorf("dist: DupDenseMatrix restore: %w", err))
		}
	})
}

// RestoreSnapshotPartial implements snapshot.PartialRestorer (see
// DupVector.RestoreSnapshotPartial): one validated survivor supplies the
// data, re-broadcast along a binomial tree to just the places that lost
// it; with no valid survivor, falls back to the full restore.
func (m *DupDenseMatrix) RestoreSnapshotPartial(s *snapshot.Snapshot, dead []apgas.Place) error {
	comp, _, err := compressorForMeta(s.Meta())
	if err != nil {
		return fmt.Errorf("dist: DupDenseMatrix restore meta: %w", err)
	}
	valid := make([]bool, m.pg.Size())
	if len(m.retained) == m.pg.Size() {
		err := apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
			if !m.retained[idx] {
				return
			}
			m.retained[idx] = false
			valid[idx] = validateRetainedBlock(ctx, s, 0, 0, dupDenseBlock(m.plh.Local(ctx)), comp)
		})
		if err != nil {
			return err
		}
	}
	src := -1
	for idx, ok := range valid {
		if ok {
			src = idx
			break
		}
	}
	if src < 0 {
		return m.RestoreSnapshot(s)
	}
	reg := m.rt.Obs()
	encSize := 7*codec.SizeInt + codec.SizeFloat64s(m.rows*m.cols)
	idxs := []int{src}
	for idx, ok := range valid {
		if ok {
			reg.Counter("dist.restore.partial.kept").Inc()
			reg.Counter("dist.restore.partial.bytes.kept").Add(int64(encSize))
		} else {
			idxs = append(idxs, idx)
		}
	}
	if len(idxs) == 1 {
		return nil
	}
	reg.Counter("dist.restore.partial.bcast").Add(int64(len(idxs) - 1))
	return m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[src], func(c *apgas.Ctx) {
			m.bcastList(c, idxs, m.plh.Local(c).Clone())
		})
	})
}

// DupSparseMatrix duplicates a sparse matrix at every place of a group
// (x10.matrix.dist.DupSparseMatrix).
type DupSparseMatrix struct {
	rt         *apgas.Runtime
	rows, cols int
	pg         apgas.PlaceGroup
	plh        apgas.PlaceLocalHandle[*la.SparseCSC]
	// compressible carries the per-object checkpoint-compression
	// override and lossy opt-in (SetCompression, AllowLossyCheckpoint).
	compressible
}

// MakeDupSparseMatrix creates an empty duplicated rows×cols sparse matrix.
func MakeDupSparseMatrix(rt *apgas.Runtime, rows, cols int, pg apgas.PlaceGroup) (*DupSparseMatrix, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("dist: MakeDupSparseMatrix(%d, %d): %w", rows, cols, ErrShapeMismatch)
	}
	if pg.Size() == 0 {
		return nil, fmt.Errorf("dist: MakeDupSparseMatrix: empty place group")
	}
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) *la.SparseCSC {
		return la.NewSparseCSC(rows, cols)
	})
	if err != nil {
		return nil, err
	}
	return &DupSparseMatrix{rt: rt, rows: rows, cols: cols, pg: pg.Clone(), plh: plh}, nil
}

// Rows returns the row count.
func (m *DupSparseMatrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *DupSparseMatrix) Cols() int { return m.cols }

// Group returns the place group.
func (m *DupSparseMatrix) Group() apgas.PlaceGroup { return m.pg }

// Local returns the calling place's duplicate.
func (m *DupSparseMatrix) Local(ctx *apgas.Ctx) *la.SparseCSC { return m.plh.Local(ctx) }

// InitColumns fills every duplicate from a per-column generator (see
// DistBlockMatrix.InitSparseColumns), evaluated redundantly at each place.
func (m *DupSparseMatrix) InitColumns(fn func(j int) (rows []int, vals []float64)) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		var ts []la.Triplet
		for j := 0; j < m.cols; j++ {
			rows, vals := fn(j)
			for k, i := range rows {
				ts = append(ts, la.Triplet{Row: i, Col: j, Val: vals[k]})
			}
		}
		sp := la.NewSparseCSCFromTriplets(m.rows, m.cols, ts)
		h := m.plh.Local(ctx)
		h.ColPtr, h.RowIdx, h.Vals = sp.ColPtr, sp.RowIdx, sp.Vals
	})
}

// Remake reallocates the duplicated matrix (empty) over a new group.
func (m *DupSparseMatrix) Remake(newPG apgas.PlaceGroup) error {
	if newPG.Size() == 0 {
		return fmt.Errorf("dist: DupSparseMatrix.Remake: empty place group")
	}
	m.plh.Destroy(m.pg)
	plh, err := apgas.NewPlaceLocalHandle(m.rt, newPG, func(ctx *apgas.Ctx, idx int) *la.SparseCSC {
		return la.NewSparseCSC(m.rows, m.cols)
	})
	if err != nil {
		return err
	}
	m.pg = newPG.Clone()
	m.plh = plh
	return nil
}

// MakeSnapshot implements snapshot.Snapshottable: one logical copy is
// saved by the group root (all duplicates are identical; see
// DupVector.MakeSnapshot).
func (m *DupSparseMatrix) MakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := snapshot.New(m.rt, m.pg)
	if err != nil {
		return nil, err
	}
	comp, spec := m.newCompressor(m.rt)
	if meta := appendCompressMeta(nil, spec); len(meta) > 0 {
		s.SetMeta(meta)
	}
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(c *apgas.Ctx) {
			saveBlock(c, s, 0, dupSparseBlock(m.plh.Local(c)), comp)
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// RestoreSnapshot implements snapshot.Snapshottable.
func (m *DupSparseMatrix) RestoreSnapshot(s *snapshot.Snapshot) error {
	comp, _, err := compressorForMeta(s.Meta())
	if err != nil {
		return fmt.Errorf("dist: DupSparseMatrix restore meta: %w", err)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		data, err := s.Load(ctx, 0, 0)
		if err != nil {
			apgas.Throw(err)
		}
		b, err := block.DecodeC(data, comp)
		if err != nil {
			apgas.Throw(err)
		}
		if b.Sparse == nil || b.Rows != m.rows || b.Cols != m.cols {
			apgas.Throw(fmt.Errorf("dist: DupSparseMatrix restore shape mismatch"))
		}
		h := m.plh.Local(ctx)
		h.ColPtr, h.RowIdx, h.Vals = b.Sparse.ColPtr, b.Sparse.RowIdx, b.Sparse.Vals
	})
}

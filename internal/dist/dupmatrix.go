package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// DupDenseMatrix duplicates a dense matrix at every place of a group
// (x10.matrix.dist.DupDenseMatrix).
type DupDenseMatrix struct {
	rt         *apgas.Runtime
	rows, cols int
	pg         apgas.PlaceGroup
	plh        apgas.PlaceLocalHandle[*la.DenseMatrix]
}

// MakeDupDenseMatrix creates a zeroed duplicated rows×cols dense matrix.
func MakeDupDenseMatrix(rt *apgas.Runtime, rows, cols int, pg apgas.PlaceGroup) (*DupDenseMatrix, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("dist: MakeDupDenseMatrix(%d, %d): %w", rows, cols, ErrShapeMismatch)
	}
	if pg.Size() == 0 {
		return nil, fmt.Errorf("dist: MakeDupDenseMatrix: empty place group")
	}
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) *la.DenseMatrix {
		return la.NewDense(rows, cols)
	})
	if err != nil {
		return nil, err
	}
	return &DupDenseMatrix{rt: rt, rows: rows, cols: cols, pg: pg.Clone(), plh: plh}, nil
}

// Rows returns the row count.
func (m *DupDenseMatrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *DupDenseMatrix) Cols() int { return m.cols }

// Group returns the place group.
func (m *DupDenseMatrix) Group() apgas.PlaceGroup { return m.pg }

// Local returns the calling place's duplicate.
func (m *DupDenseMatrix) Local(ctx *apgas.Ctx) *la.DenseMatrix { return m.plh.Local(ctx) }

// Init fills every duplicate with fn(i, j), evaluated redundantly at each
// place.
func (m *DupDenseMatrix) Init(fn func(i, j int) float64) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		local := m.plh.Local(ctx)
		for j := 0; j < m.cols; j++ {
			for i := 0; i < m.rows; i++ {
				local.Set(i, j, fn(i, j))
			}
		}
	})
}

// AllApply runs fn on the duplicate at every place; fn must be
// deterministic to keep the duplicates identical.
func (m *DupDenseMatrix) AllApply(fn func(local *la.DenseMatrix)) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		fn(m.plh.Local(ctx))
	})
}

// Root reads the root duplicate into a fresh matrix (for result
// extraction by the main activity).
func (m *DupDenseMatrix) Root() (*la.DenseMatrix, error) {
	var out *la.DenseMatrix
	err := m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(c *apgas.Ctx) {
			out = m.Local(c).Clone()
		})
	})
	return out, err
}

// ZipAll runs fn(local, xLocal) at every place of the shared group; fn
// must be deterministic so the duplicates stay identical.
func (m *DupDenseMatrix) ZipAll(x *DupDenseMatrix, fn func(a, b *la.DenseMatrix)) error {
	if !sameGroups(m.pg, x.pg) {
		return fmt.Errorf("dist: DupDenseMatrix.ZipAll: %w", ErrGroupMismatch)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		fn(m.plh.Local(ctx), x.plh.Local(ctx))
	})
}

// ZipAll2 is ZipAll with two additional operands (the three-matrix
// update rule of multiplicative factorizations).
func (m *DupDenseMatrix) ZipAll2(x, y *DupDenseMatrix, fn func(a, b, c *la.DenseMatrix)) error {
	if !sameGroups(m.pg, x.pg) || !sameGroups(m.pg, y.pg) {
		return fmt.Errorf("dist: DupDenseMatrix.ZipAll2: %w", ErrGroupMismatch)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		fn(m.plh.Local(ctx), x.plh.Local(ctx), y.plh.Local(ctx))
	})
}

// Sync broadcasts the root duplicate to every other place along a
// binomial tree over the group index (the DupVector.Sync scheme): same
// total volume as the flat broadcast, O(log P) critical-path sends.
func (m *DupDenseMatrix) Sync() error {
	if m.pg.Size() <= 1 {
		return nil
	}
	return m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(root *apgas.Ctx) {
			src := m.plh.Local(root).Clone()
			m.bcast(root, 0, m.pg.Size(), src)
		})
	})
}

// bcast relays src — already present at group index idx — to the group
// index range [idx, idx+span); see DupVector.bcast.
func (m *DupDenseMatrix) bcast(c *apgas.Ctx, idx, span int, src *la.DenseMatrix) {
	for span > 1 {
		h := span / 2
		mid := idx + span - h
		p := m.pg[mid]
		sub := src
		c.Transfer(p, sub.Bytes())
		c.AsyncAt(p, func(cc *apgas.Ctx) {
			local := m.plh.Local(cc)
			copy(local.Data, sub.Data)
			m.bcast(cc, mid, h, local)
		})
		span -= h
	}
}

// Remake reallocates the duplicated matrix (zeroed) over a new group.
func (m *DupDenseMatrix) Remake(newPG apgas.PlaceGroup) error {
	if newPG.Size() == 0 {
		return fmt.Errorf("dist: DupDenseMatrix.Remake: empty place group")
	}
	m.plh.Destroy(m.pg)
	plh, err := apgas.NewPlaceLocalHandle(m.rt, newPG, func(ctx *apgas.Ctx, idx int) *la.DenseMatrix {
		return la.NewDense(m.rows, m.cols)
	})
	if err != nil {
		return err
	}
	m.pg = newPG.Clone()
	m.plh = plh
	return nil
}

// dupBlock wraps a duplicate as a single block for snapshot serialization.
func dupDenseBlock(d *la.DenseMatrix) *block.MatrixBlock {
	return &block.MatrixBlock{Rows: d.Rows, Cols: d.Cols, Dense: d}
}

func dupSparseBlock(sp *la.SparseCSC) *block.MatrixBlock {
	return &block.MatrixBlock{Rows: sp.Rows, Cols: sp.Cols, Sparse: sp}
}

// MakeSnapshot implements snapshot.Snapshottable: one logical copy is
// saved by the group root (all duplicates are identical; see
// DupVector.MakeSnapshot).
func (m *DupDenseMatrix) MakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := snapshot.New(m.rt, m.pg)
	if err != nil {
		return nil, err
	}
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(c *apgas.Ctx) {
			saveBlock(c, s, 0, dupDenseBlock(m.plh.Local(c)))
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	return s, nil
}

// RestoreSnapshot implements snapshot.Snapshottable.
func (m *DupDenseMatrix) RestoreSnapshot(s *snapshot.Snapshot) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		data, err := s.Load(ctx, 0, 0)
		if err != nil {
			apgas.Throw(err)
		}
		b, err := block.Decode(data)
		if err != nil {
			apgas.Throw(err)
		}
		if b.Dense == nil || b.Rows != m.rows || b.Cols != m.cols {
			apgas.Throw(fmt.Errorf("dist: DupDenseMatrix restore shape mismatch"))
		}
		copy(m.plh.Local(ctx).Data, b.Dense.Data)
	})
}

// DupSparseMatrix duplicates a sparse matrix at every place of a group
// (x10.matrix.dist.DupSparseMatrix).
type DupSparseMatrix struct {
	rt         *apgas.Runtime
	rows, cols int
	pg         apgas.PlaceGroup
	plh        apgas.PlaceLocalHandle[*la.SparseCSC]
}

// MakeDupSparseMatrix creates an empty duplicated rows×cols sparse matrix.
func MakeDupSparseMatrix(rt *apgas.Runtime, rows, cols int, pg apgas.PlaceGroup) (*DupSparseMatrix, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("dist: MakeDupSparseMatrix(%d, %d): %w", rows, cols, ErrShapeMismatch)
	}
	if pg.Size() == 0 {
		return nil, fmt.Errorf("dist: MakeDupSparseMatrix: empty place group")
	}
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) *la.SparseCSC {
		return la.NewSparseCSC(rows, cols)
	})
	if err != nil {
		return nil, err
	}
	return &DupSparseMatrix{rt: rt, rows: rows, cols: cols, pg: pg.Clone(), plh: plh}, nil
}

// Rows returns the row count.
func (m *DupSparseMatrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *DupSparseMatrix) Cols() int { return m.cols }

// Group returns the place group.
func (m *DupSparseMatrix) Group() apgas.PlaceGroup { return m.pg }

// Local returns the calling place's duplicate.
func (m *DupSparseMatrix) Local(ctx *apgas.Ctx) *la.SparseCSC { return m.plh.Local(ctx) }

// InitColumns fills every duplicate from a per-column generator (see
// DistBlockMatrix.InitSparseColumns), evaluated redundantly at each place.
func (m *DupSparseMatrix) InitColumns(fn func(j int) (rows []int, vals []float64)) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		var ts []la.Triplet
		for j := 0; j < m.cols; j++ {
			rows, vals := fn(j)
			for k, i := range rows {
				ts = append(ts, la.Triplet{Row: i, Col: j, Val: vals[k]})
			}
		}
		sp := la.NewSparseCSCFromTriplets(m.rows, m.cols, ts)
		h := m.plh.Local(ctx)
		h.ColPtr, h.RowIdx, h.Vals = sp.ColPtr, sp.RowIdx, sp.Vals
	})
}

// Remake reallocates the duplicated matrix (empty) over a new group.
func (m *DupSparseMatrix) Remake(newPG apgas.PlaceGroup) error {
	if newPG.Size() == 0 {
		return fmt.Errorf("dist: DupSparseMatrix.Remake: empty place group")
	}
	m.plh.Destroy(m.pg)
	plh, err := apgas.NewPlaceLocalHandle(m.rt, newPG, func(ctx *apgas.Ctx, idx int) *la.SparseCSC {
		return la.NewSparseCSC(m.rows, m.cols)
	})
	if err != nil {
		return err
	}
	m.pg = newPG.Clone()
	m.plh = plh
	return nil
}

// MakeSnapshot implements snapshot.Snapshottable: one logical copy is
// saved by the group root (all duplicates are identical; see
// DupVector.MakeSnapshot).
func (m *DupSparseMatrix) MakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := snapshot.New(m.rt, m.pg)
	if err != nil {
		return nil, err
	}
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(c *apgas.Ctx) {
			saveBlock(c, s, 0, dupSparseBlock(m.plh.Local(c)))
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	return s, nil
}

// RestoreSnapshot implements snapshot.Snapshottable.
func (m *DupSparseMatrix) RestoreSnapshot(s *snapshot.Snapshot) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		data, err := s.Load(ctx, 0, 0)
		if err != nil {
			apgas.Throw(err)
		}
		b, err := block.Decode(data)
		if err != nil {
			apgas.Throw(err)
		}
		if b.Sparse == nil || b.Rows != m.rows || b.Cols != m.cols {
			apgas.Throw(fmt.Errorf("dist: DupSparseMatrix restore shape mismatch"))
		}
		h := m.plh.Local(ctx)
		h.ColPtr, h.RowIdx, h.Vals = b.Sparse.ColPtr, b.Sparse.RowIdx, b.Sparse.Vals
	})
}

package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
)

// Collective matrix-vector operations.
//
// Both operations are two-phase: every place first computes one partial
// vector per *block* it owns, then the consumers combine the per-block
// partials in canonical block order (ascending row-block, then ascending
// column-block). Reducing per block — rather than per place — makes the
// floating-point summation order independent of the block→place mapping,
// so a matrix redistributed by any restoration mode still produces
// bit-identical results. The recovery tests verify exactly that.
//
// Phase 1 fans each place's blocks across the intra-place kernel pool
// (block partials are disjoint, so any interleaving yields the same
// bits), and the per-block scratch vectors live in a place-local map
// reused across calls. The map serves both collectives: MultVec partials
// (length block-rows) sit under even keys, TransMultVec partials (length
// block-cols) under odd keys, and the gathered-x buffer under xbufKey,
// so the per-iteration MultVec/TransMultVec pair of the solvers never
// reallocates.

// rowPartKey returns block id's scratch key for M·x partials.
func rowPartKey(id int) int { return 2 * id }

// colPartKey returns block id's scratch key for Mᵀ·x partials.
func colPartKey(id int) int { return 2*id + 1 }

// xbufKey indexes the place-local gathered-x buffer of TransMultVec.
const xbufKey = -1

// MultVec computes y = M·x where x is duplicated and y is distributed over
// the same group (paper Listing 2: GP.mult(G, P)).
func (m *DistBlockMatrix) MultVec(x *DupVector, y *DistVector) error {
	if x.Size() != m.cols || y.Size() != m.rows {
		return fmt.Errorf("dist: MultVec (%dx%d)·%d -> %d: %w", m.rows, m.cols, x.Size(), y.Size(), ErrShapeMismatch)
	}
	if !sameGroups(m.pg, x.Group()) || !sameGroups(m.pg, y.Group()) {
		return fmt.Errorf("dist: MultVec: %w", ErrGroupMismatch)
	}
	y.MarkDirty()
	scratch, err := m.scratchPartials()
	if err != nil {
		return err
	}

	// Phase 1: per-block partials B_{rb,cb} · x[cols(cb)] at each owner.
	// Scratch vectors are sized serially (map writes), then the blocks fan
	// across the kernel pool, each overwriting its own partial.
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		xloc := x.Local(ctx)
		part := scratch.Local(ctx)
		bs := m.plh.Local(ctx)
		bs.Each(func(id int, b *block.MatrixBlock) {
			if len(part[rowPartKey(id)]) != b.Rows {
				part[rowPartKey(id)] = la.NewVector(b.Rows)
			}
		})
		if ctx.KernelDispatch() && m.multVecKernel(ctx, x, xloc, part, bs) {
			return
		}
		bs.EachPar(func(id int, b *block.MatrixBlock) {
			b.MultVecAssign(xloc, part[rowPartKey(id)])
		})
	})
	if err != nil {
		return err
	}

	// Phase 2: each y owner combines the overlapping block partials in
	// canonical order.
	g := m.g
	return apgas.ForEachPlace(m.rt, y.pg, func(ctx *apgas.Ctx, idx int) {
		seg := y.Local(ctx).Zero()
		off, size := y.SegmentOf(idx)
		end := off + size
		firstRB := g.FindRowBlock(off)
		lastRB := g.FindRowBlock(end - 1)
		for rb := firstRB; rb <= lastRB; rb++ {
			rbOff := g.RowOffsets[rb]
			lo := max(off, rbOff)
			hi := min(end, g.RowOffsets[rb+1])
			for cb := 0; cb < g.ColBlocks; cb++ {
				id := g.BlockID(rb, cb)
				ownerIdx := m.dg.PlaceOf[id]
				owner := m.pg[ownerIdx]
				origin := ctx.Here
				var slice la.Vector
				if owner.ID == ctx.Here.ID {
					slice = scratch.Local(ctx)[rowPartKey(id)][lo-rbOff : hi-rbOff]
				} else {
					slice = apgas.Eval(ctx, owner, func(c *apgas.Ctx) la.Vector {
						s := scratch.Local(c)[rowPartKey(id)][lo-rbOff : hi-rbOff].Clone()
						c.Transfer(origin, s.Bytes())
						return s
					})
				}
				seg[lo-off : hi-off].Add(slice)
			}
		}
	})
}

// TransMultVec computes z = Mᵀ·x where x is distributed and z is
// duplicated over the same group (the X·w / Xᵀ·r pattern of the LinReg and
// LogReg benchmarks). The per-block partials climb a binomial tree to the
// group root — concatenation only, no arithmetic, so the combine order
// stays canonical and redistribution-independent — where they are reduced
// in canonical block order; the result is then broadcast (another
// binomial tree, inside Sync), leaving every duplicate of z consistent.
func (m *DistBlockMatrix) TransMultVec(x *DistVector, z *DupVector) error {
	if x.Size() != m.rows || z.Size() != m.cols {
		return fmt.Errorf("dist: TransMultVec (%dx%d)ᵀ·%d -> %d: %w", m.rows, m.cols, x.Size(), z.Size(), ErrShapeMismatch)
	}
	if !sameGroups(m.pg, x.Group()) || !sameGroups(m.pg, z.Group()) {
		return fmt.Errorf("dist: TransMultVec: %w", ErrGroupMismatch)
	}
	z.MarkDirty()
	scratch, err := m.scratchPartials()
	if err != nil {
		return err
	}
	gath, err := m.gatherScratch()
	if err != nil {
		return err
	}

	// Phase 1: gather the needed x rows, then compute per-block partials
	// B_{rb,cb}ᵀ · x[rows(rb)], fanned across the kernel pool. The place's
	// gather map is seeded with its own partials for phase 2.
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		gm := gath.Local(ctx)
		clear(gm)
		bs := m.plh.Local(ctx)
		if bs.Len() == 0 {
			return
		}
		// Bounding row range of this place's blocks.
		minR, maxR := m.rows, 0
		bs.Each(func(id int, b *block.MatrixBlock) {
			if b.Row0 < minR {
				minR = b.Row0
			}
			if b.Row0+b.Rows > maxR {
				maxR = b.Row0 + b.Rows
			}
		})
		part := scratch.Local(ctx)
		xbuf := part[xbufKey]
		if len(xbuf) != m.rows {
			xbuf = la.NewVector(m.rows)
			part[xbufKey] = xbuf
		}
		for segIdx := 0; segIdx < x.Group().Size(); segIdx++ {
			s0, sz := x.SegmentOf(segIdx)
			lo, hi := max(s0, minR), min(s0+sz, maxR)
			if hi <= lo {
				continue
			}
			owner := x.Group()[segIdx]
			origin := ctx.Here
			var seg la.Vector
			if owner.ID == ctx.Here.ID {
				seg = x.Local(ctx)[lo-s0 : hi-s0]
			} else {
				seg = apgas.Eval(ctx, owner, func(c *apgas.Ctx) la.Vector {
					s := x.Local(c)[lo-s0 : hi-s0].Clone()
					c.Transfer(origin, s.Bytes())
					return s
				})
			}
			copy(xbuf[lo:hi], seg)
		}
		bs.Each(func(id int, b *block.MatrixBlock) {
			if len(part[colPartKey(id)]) != b.Cols {
				part[colPartKey(id)] = la.NewVector(b.Cols)
			}
		})
		bs.EachPar(func(id int, b *block.MatrixBlock) {
			b.TransMultVecAssign(xbuf, part[colPartKey(id)])
		})
		bs.Each(func(id int, b *block.MatrixBlock) {
			gm[id] = part[colPartKey(id)]
		})
	})
	if err != nil {
		return err
	}

	// Phase 2a: binomial up-sweep. At stride s every group index divisible
	// by 2s pulls the aggregated partial map of index+s; after ⌈log₂P⌉
	// rounds the root holds every block's partial. Entries are only
	// concatenated on the way up, so the arithmetic below stays in
	// canonical block order.
	p := m.pg.Size()
	for stride := 1; stride < p; stride *= 2 {
		st := stride
		err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
			if idx%(2*st) != 0 || idx+st >= p {
				return
			}
			src := m.pg[idx+st]
			origin := ctx.Here
			got := apgas.Eval(ctx, src, func(c *apgas.Ctx) map[int]la.Vector {
				sub := gath.Local(c)
				out := make(map[int]la.Vector, len(sub))
				bytes := 0
				for id, v := range sub {
					out[id] = v.Clone()
					bytes += v.Bytes()
				}
				c.Transfer(origin, bytes)
				return out
			})
			gm := gath.Local(ctx)
			for id, v := range got {
				gm[id] = v
			}
		})
		if err != nil {
			return err
		}
	}

	// Phase 2b: canonical-order reduction at the group root, then
	// broadcast.
	g := m.g
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(root *apgas.Ctx) {
			dst := z.Local(root).Zero()
			gm := gath.Local(root)
			for cb := 0; cb < g.ColBlocks; cb++ {
				cOff := g.ColOffsets[cb]
				cSz := g.ColSizes[cb]
				for rb := 0; rb < g.RowBlocks; rb++ {
					dst[cOff : cOff+cSz].Add(gm[g.BlockID(rb, cb)])
				}
			}
		})
	})
	if err != nil {
		return err
	}
	return z.Sync()
}

package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
)

// Collective matrix-vector operations.
//
// Both operations are two-phase: every place first computes one partial
// vector per *block* it owns, then the consumers combine the per-block
// partials in canonical block order (ascending row-block, then ascending
// column-block). Reducing per block — rather than per place — makes the
// floating-point summation order independent of the block→place mapping,
// so a matrix redistributed by any restoration mode still produces
// bit-identical results. The recovery tests verify exactly that.

// MultVec computes y = M·x where x is duplicated and y is distributed over
// the same group (paper Listing 2: GP.mult(G, P)).
func (m *DistBlockMatrix) MultVec(x *DupVector, y *DistVector) error {
	if x.Size() != m.cols || y.Size() != m.rows {
		return fmt.Errorf("dist: MultVec (%dx%d)·%d -> %d: %w", m.rows, m.cols, x.Size(), y.Size(), ErrShapeMismatch)
	}
	if !sameGroups(m.pg, x.Group()) || !sameGroups(m.pg, y.Group()) {
		return fmt.Errorf("dist: MultVec: %w", ErrGroupMismatch)
	}
	scratch, err := m.scratchPartials()
	if err != nil {
		return err
	}

	// Phase 1: per-block partials B_{rb,cb} · x[cols(cb)] at each owner.
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		xloc := x.Local(ctx)
		part := scratch.Local(ctx)
		m.plh.Local(ctx).Each(func(id int, b *block.MatrixBlock) {
			pv := la.NewVector(b.Rows)
			b.MultVecInto(xloc, pv, b.Row0)
			part[id] = pv
		})
	})
	if err != nil {
		return err
	}

	// Phase 2: each y owner combines the overlapping block partials in
	// canonical order.
	g := m.g
	return apgas.ForEachPlace(m.rt, y.pg, func(ctx *apgas.Ctx, idx int) {
		seg := y.Local(ctx).Zero()
		off, size := y.SegmentOf(idx)
		end := off + size
		firstRB := g.FindRowBlock(off)
		lastRB := g.FindRowBlock(end - 1)
		for rb := firstRB; rb <= lastRB; rb++ {
			rbOff := g.RowOffsets[rb]
			lo := max(off, rbOff)
			hi := min(end, g.RowOffsets[rb+1])
			for cb := 0; cb < g.ColBlocks; cb++ {
				id := g.BlockID(rb, cb)
				ownerIdx := m.dg.PlaceOf[id]
				owner := m.pg[ownerIdx]
				origin := ctx.Here
				var slice la.Vector
				if owner.ID == ctx.Here.ID {
					slice = scratch.Local(ctx)[id][lo-rbOff : hi-rbOff]
				} else {
					slice = apgas.Eval(ctx, owner, func(c *apgas.Ctx) la.Vector {
						s := scratch.Local(c)[id][lo-rbOff : hi-rbOff].Clone()
						c.Transfer(origin, s.Bytes())
						return s
					})
				}
				seg[lo-off : hi-off].Add(slice)
			}
		}
	})
}

// TransMultVec computes z = Mᵀ·x where x is distributed and z is
// duplicated over the same group (the X·w / Xᵀ·r pattern of the LinReg and
// LogReg benchmarks). The per-block partials are reduced at the group root
// in canonical order and the result is broadcast, leaving every duplicate
// of z consistent.
func (m *DistBlockMatrix) TransMultVec(x *DistVector, z *DupVector) error {
	if x.Size() != m.rows || z.Size() != m.cols {
		return fmt.Errorf("dist: TransMultVec (%dx%d)ᵀ·%d -> %d: %w", m.rows, m.cols, x.Size(), z.Size(), ErrShapeMismatch)
	}
	if !sameGroups(m.pg, x.Group()) || !sameGroups(m.pg, z.Group()) {
		return fmt.Errorf("dist: TransMultVec: %w", ErrGroupMismatch)
	}
	scratch, err := m.scratchPartials()
	if err != nil {
		return err
	}

	// Phase 1: gather the needed x rows, then compute per-block partials
	// B_{rb,cb}ᵀ · x[rows(rb)].
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		bs := m.plh.Local(ctx)
		if bs.Len() == 0 {
			return
		}
		// Bounding row range of this place's blocks.
		minR, maxR := m.rows, 0
		bs.Each(func(id int, b *block.MatrixBlock) {
			if b.Row0 < minR {
				minR = b.Row0
			}
			if b.Row0+b.Rows > maxR {
				maxR = b.Row0 + b.Rows
			}
		})
		xbuf := la.NewVector(m.rows)
		for segIdx := 0; segIdx < x.Group().Size(); segIdx++ {
			s0, sz := x.SegmentOf(segIdx)
			lo, hi := max(s0, minR), min(s0+sz, maxR)
			if hi <= lo {
				continue
			}
			owner := x.Group()[segIdx]
			origin := ctx.Here
			var part la.Vector
			if owner.ID == ctx.Here.ID {
				part = x.Local(ctx)[lo-s0 : hi-s0]
			} else {
				part = apgas.Eval(ctx, owner, func(c *apgas.Ctx) la.Vector {
					s := x.Local(c)[lo-s0 : hi-s0].Clone()
					c.Transfer(origin, s.Bytes())
					return s
				})
			}
			copy(xbuf[lo:hi], part)
		}
		part := scratch.Local(ctx)
		bs.Each(func(id int, b *block.MatrixBlock) {
			pv := la.NewVector(b.Cols)
			xSeg := xbuf[b.Row0 : b.Row0+b.Rows]
			if b.Dense != nil {
				b.Dense.TransMultVec(xSeg, pv)
			} else {
				b.Sparse.TransMultVec(xSeg, pv)
			}
			part[id] = pv
		})
	})
	if err != nil {
		return err
	}

	// Phase 2: canonical-order reduction at the group root, then broadcast.
	g := m.g
	err = m.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(m.pg[0], func(root *apgas.Ctx) {
			dst := z.Local(root).Zero()
			for cb := 0; cb < g.ColBlocks; cb++ {
				cOff := g.ColOffsets[cb]
				cSz := g.ColSizes[cb]
				for rb := 0; rb < g.RowBlocks; rb++ {
					id := g.BlockID(rb, cb)
					ownerIdx := m.dg.PlaceOf[id]
					owner := m.pg[ownerIdx]
					var pv la.Vector
					if owner.ID == root.Here.ID {
						pv = scratch.Local(root)[id]
					} else {
						pv = apgas.Eval(root, owner, func(c *apgas.Ctx) la.Vector {
							s := scratch.Local(c)[id].Clone()
							c.Transfer(m.pg[0], s.Bytes())
							return s
						})
					}
					dst[cOff : cOff+cSz].Add(pv)
				}
			}
		})
	})
	if err != nil {
		return err
	}
	return z.Sync()
}

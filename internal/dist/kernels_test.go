package dist

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/apgas/transport"
	"github.com/rgml/rgml/internal/la"
)

// execTransport is a minimal in-process transport with a data plane: it
// executes dispatched kernels against real per-place stores, exactly as a
// tcp worker would, so the dist kernels can be driven end-to-end without
// spawning processes. It records per-dispatch blob counts for the
// ship-once assertions.
type execTransport struct {
	mu      sync.Mutex
	stores  map[int]*kernel.Store
	tasks   []string
	shipped []int
}

func (e *execTransport) Name() string                                { return "exec-fake" }
func (e *execTransport) Start(places int, h transport.Handler) error { return nil }
func (e *execTransport) Send(from, to int, class transport.Class, size int, payload []byte) (time.Duration, error) {
	return 0, nil
}
func (e *execTransport) Kill(place int) error { return nil }
func (e *execTransport) Grow(n int) error     { return nil }
func (e *execTransport) Close() error         { return nil }

func (e *execTransport) Exec(t *kernel.Task) (*kernel.Result, error) {
	if t == nil {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stores == nil {
		e.stores = make(map[int]*kernel.Store)
	}
	place := int(t.Place)
	st := e.stores[place]
	if st == nil {
		st = kernel.NewStore()
		e.stores[place] = st
	}
	e.tasks = append(e.tasks, t.Name)
	e.shipped = append(e.shipped, len(t.Puts))
	return kernel.Run(&kernel.Exec{Place: place, Store: st}, t), nil
}

func (e *execTransport) dispatches() (names []string, shipped []int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.tasks...), append([]int(nil), e.shipped...)
}

func newExecRT(t *testing.T, places int) (*apgas.Runtime, *execTransport) {
	t.Helper()
	et := &execTransport{}
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true), apgas.WithTransport(et))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt, et
}

// multVecOn runs an iterated y = m·x / RootApply / Sync program on rt and
// returns the final y. Every backend runs the identical program; a
// data-plane backend must produce bitwise-equal output.
func multVecOn(t *testing.T, rt *apgas.Runtime, iters int) la.Vector {
	t.Helper()
	const rows, cols = 24, 9
	pg := rt.World()
	m := makeDenseDBM(t, rt, rows, cols, 8, 3, 4, 1, pg)
	x, err := MakeDupVector(rt, cols, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return float64(i)*0.375 + 1 }); err != nil {
		t.Fatal(err)
	}
	y, err := MakeDistVector(rt, rows, pg)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		if err := m.MultVec(x, y); err != nil {
			t.Fatal(err)
		}
		// Update x the way the solvers do — at the root, then Sync — so
		// later iterations exercise the forced-put republish path.
		if err := x.RootApply(func(local la.Vector) {
			for i := range local {
				local[i] += 1.0 / float64(it+3)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := x.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := y.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestMultVecKernelBitIdenticalToClosurePath pins the data plane's core
// correctness contract: the same MultVec/RootApply/Sync program produces
// bitwise-identical results whether blocks multiply in the coordinator
// (local backend) or inside worker-side kernel bodies — the float64
// codec roundtrip and the shared MultVecAssign arithmetic leave no room
// for drift.
func TestMultVecKernelBitIdenticalToClosurePath(t *testing.T) {
	local := multVecOn(t, newRT(t, 4), 3)
	rtE, et := newExecRT(t, 4)
	dispatched := multVecOn(t, rtE, 3)
	if len(local) != len(dispatched) {
		t.Fatalf("result lengths differ: %d vs %d", len(local), len(dispatched))
	}
	for i := range local {
		if local[i] != dispatched[i] {
			t.Fatalf("y[%d]: local %v != dispatched %v (bitwise)", i, local[i], dispatched[i])
		}
	}
	names, _ := et.dispatches()
	mv := 0
	for _, n := range names {
		if n == multVecKernelName {
			mv++
		}
	}
	// 4 iterations × 3 non-coordinator places.
	if mv != 12 {
		t.Fatalf("multvec kernel dispatched %d times, want 12 (names: %v)", mv, names)
	}
	if got := rtE.Stats().WorkerTasks; got == 0 {
		t.Fatal("WorkerTasks = 0 on the data-plane backend")
	}
}

// TestMultVecKernelShipsBlocksOnce pins the mirror economics: the matrix
// blocks cross the data plane on the first MultVec only; with x unchanged
// a repeat MultVec ships zero blobs, and after a RootApply+Sync only the
// one-vector x (as a forced warm put plus nothing else) re-crosses.
func TestMultVecKernelShipsBlocksOnce(t *testing.T) {
	rt, et := newExecRT(t, 2)
	const rows, cols = 8, 4
	pg := rt.World()
	m := makeDenseDBM(t, rt, rows, cols, 2, 1, 2, 1, pg)
	x, err := MakeDupVector(rt, cols, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return float64(i) }); err != nil {
		t.Fatal(err)
	}
	y, err := MakeDistVector(rt, rows, pg)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	_, shipped := et.dispatches()
	first := len(shipped)
	if first == 0 {
		t.Fatal("no dispatches on a data-plane backend")
	}
	var coldBlobs int
	for _, n := range shipped {
		coldBlobs += n
	}
	if coldBlobs == 0 {
		t.Fatal("cold MultVec shipped no blobs")
	}

	// Same x version: everything is cached worker-side.
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	_, shipped = et.dispatches()
	for i := first; i < len(shipped); i++ {
		if shipped[i] != 0 {
			t.Fatalf("warm MultVec dispatch %d shipped %d blobs, want 0", i, shipped[i])
		}
	}
	warm := len(shipped)

	// Root update + Sync bumps x across the plane (forced warm puts), but
	// the blocks — unchanged — must not re-ship: every post-Sync dispatch
	// carries at most the single x blob.
	if err := x.RootApply(func(local la.Vector) { local[0] += 1 }); err != nil {
		t.Fatal(err)
	}
	if err := x.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	names, shipped := et.dispatches()
	for i := warm; i < len(shipped); i++ {
		if shipped[i] > 1 {
			t.Fatalf("post-Sync dispatch %d (%s) shipped %d blobs; blocks re-shipped", i, names[i], shipped[i])
		}
	}
}

// TestDupVectorRestoreBumpsVersion guards the restore/cache-staleness
// hazard: restoring a checkpoint rewinds content, so the version must
// move or a worker cache would keep serving the diverged value at the
// old version.
func TestDupVectorRestoreBumpsVersion(t *testing.T) {
	rt := newRT(t, 2)
	x, err := MakeDupVector(rt, 4, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return float64(i) }); err != nil {
		t.Fatal(err)
	}
	snap, err := x.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Destroy()
	before := x.ver
	if err := x.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if x.ver == before {
		t.Fatal("RestoreSnapshot left ver unchanged")
	}
	before = x.ver
	if err := x.RestoreSnapshotPartial(snap, nil); err != nil {
		t.Fatal(err)
	}
	if x.ver == before {
		t.Fatal("RestoreSnapshotPartial left ver unchanged")
	}
}

// TestMultVecKernelSurvivesExecFailure verifies the degraded path: an
// executor that fails every dispatch — the data plane is "up" (the probe
// succeeds) but no kernel ever lands remotely — must leave MultVec
// correct through silent coordinator-resident re-execution.
func TestMultVecKernelSurvivesExecFailure(t *testing.T) {
	rt, err := apgas.New(apgas.WithPlaces(2), apgas.WithTransport(&failingExec{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	const rows, cols = 8, 4
	m := makeDenseDBM(t, rt, rows, cols, 2, 1, 2, 1, rt.World())
	x, err := MakeDupVector(rt, cols, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return float64(i) + 1 }); err != nil {
		t.Fatal(err)
	}
	y, err := MakeDistVector(rt, rows, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	got, err := y.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	dense, _ := m.ToDense()
	xv := la.NewVector(cols)
	for i := range xv {
		xv[i] = float64(i) + 1
	}
	want := la.NewVector(rows)
	dense.MultVec(xv, want)
	if !got.EqualApprox(want, 0) {
		t.Fatalf("MultVec under dispatch failure: got %v want %v", got, want)
	}
	if rt.Stats().WorkerTasks != 0 {
		t.Fatal("failing executor still counted worker tasks")
	}
}

// failingExec has a data plane that always fails dispatches.
type failingExec struct{ execTransport }

func (f *failingExec) Exec(t *kernel.Task) (*kernel.Result, error) {
	if t == nil {
		return nil, nil
	}
	return nil, errDispatch
}

var errDispatch = errors.New("dist test: injected dispatch failure")

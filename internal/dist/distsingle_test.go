package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/la"
)

func TestDistDenseMatrixOneBlockPerPlace(t *testing.T) {
	rt := newRT(t, 4)
	m, err := MakeDistDenseMatrix(rt, 16, 6, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	// One block per place: 4 row blocks over 4 places.
	if m.Grid().RowBlocks != 4 || m.Grid().ColBlocks != 1 {
		t.Fatalf("grid = %v", m.Grid())
	}
	for p := 0; p < 4; p++ {
		if got := len(m.Dist().BlocksOf(p)); got != 1 {
			t.Fatalf("place %d owns %d blocks", p, got)
		}
	}
	if err := m.InitDense(denseInit); err != nil {
		t.Fatal(err)
	}
	got, err := m.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if got.At(7, 3) != denseInit(7, 3) {
		t.Fatal("content wrong")
	}
}

func TestDistDenseMatrixRemakeAlwaysRegrids(t *testing.T) {
	rt := newRT(t, 4)
	m, err := MakeDistDenseMatrix(rt, 16, 6, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(denseInit); err != nil {
		t.Fatal(err)
	}
	want, _ := m.ToDense()
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remake(rt.World()); err != nil {
		t.Fatal(err)
	}
	// Still exactly one block per place after shrinking: the data grid was
	// recalculated (there is no keep-grid option for this class).
	if m.Grid().RowBlocks != 3 {
		t.Fatalf("regrid RowBlocks = %d, want 3", m.Grid().RowBlocks)
	}
	for p := 0; p < 3; p++ {
		if got := len(m.Dist().BlocksOf(p)); got != 1 {
			t.Fatalf("place %d owns %d blocks", p, got)
		}
	}
	// The overlap restore path reassembles the data.
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ToDense()
	if !got.EqualApprox(want, 0) {
		t.Fatal("restore after regrid mismatch")
	}
}

func TestDistSparseMatrixLifecycle(t *testing.T) {
	rt := newRT(t, 4)
	n := 20
	m, err := MakeDistSparseMatrix(rt, n, n, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	gen := sparseColInit(n)
	if err := m.InitSparseColumns(gen); err != nil {
		t.Fatal(err)
	}
	want, _ := m.ToDense()

	// MultVec works through the embedded DistBlockMatrix.
	x, _ := MakeDupVector(rt, n, rt.World())
	_ = x.Init(func(i int) float64 { return 1 })
	y, _ := MakeDistVector(rt, n, rt.World())
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	got, _ := y.ToVector()
	ref := la.NewVector(n)
	want.MultVec(la.NewVector(n).Fill(1), ref)
	if !got.EqualApprox(ref, 1e-10) {
		t.Fatal("DistSparseMatrix MultVec mismatch")
	}

	// Snapshot / kill / remake (always regrids) / restore.
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remake(rt.World()); err != nil {
		t.Fatal(err)
	}
	if m.Grid().RowBlocks != 3 {
		t.Fatalf("regrid RowBlocks = %d", m.Grid().RowBlocks)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	after, _ := m.ToDense()
	if !after.EqualApprox(want, 0) {
		t.Fatal("sparse one-block restore mismatch")
	}
}

func TestDistSingleValidation(t *testing.T) {
	rt := newRT(t, 3)
	// Fewer rows than places: the one-block-per-place grid is impossible.
	if _, err := MakeDistDenseMatrix(rt, 2, 5, rt.World()); err == nil {
		t.Error("2 rows over 3 places accepted")
	}
	if _, err := MakeDistSparseMatrix(rt, 2, 5, rt.World()); err == nil {
		t.Error("2 rows over 3 places accepted")
	}
}

func TestDistBlockRemakeEmptyGroup(t *testing.T) {
	rt := newRT(t, 2)
	m := makeDenseDBM(t, rt, 8, 4, 2, 1, 2, 1, rt.World())
	if err := m.Remake(nil, true); err == nil {
		t.Error("empty group accepted")
	}
	d, err := MakeDistDenseMatrix(rt, 8, 4, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Remake(apgas.PlaceGroup{}); err == nil {
		t.Error("empty group accepted")
	}
}

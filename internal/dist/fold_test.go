package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/la"
)

func TestFoldLocal(t *testing.T) {
	rt := newRT(t, 3)
	v, err := MakeDistVector(rt, 9, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	_ = v.Init(func(i int) float64 { return float64(i) })
	// Sum of squares via FoldLocal.
	got, err := v.FoldLocal(func(seg la.Vector, off int) float64 {
		var s float64
		for _, x := range seg {
			s += x * x
		}
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 9; i++ {
		want += float64(i * i)
	}
	if got != want {
		t.Fatalf("FoldLocal = %v, want %v", got, want)
	}
	// Offsets are passed correctly.
	sumOff, err := v.FoldLocal(func(seg la.Vector, off int) float64 { return float64(off) })
	if err != nil {
		t.Fatal(err)
	}
	if sumOff != 0+3+6 {
		t.Fatalf("offset sum = %v", sumOff)
	}
}

func TestFoldZip(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	v, _ := MakeDistVector(rt, 7, pg)
	w, _ := MakeDistVector(rt, 7, pg)
	_ = v.Init(func(i int) float64 { return float64(i) })
	_ = w.Init(func(i int) float64 { return 2 })
	got, err := v.FoldZip(w, func(a, b la.Vector, off int) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*21 {
		t.Fatalf("FoldZip = %v, want 42", got)
	}
	// Validation paths.
	other, _ := MakeDistVector(rt, 7, apgas.PlaceGroup{rt.Place(0), rt.Place(1)})
	if _, err := v.FoldZip(other, func(a, b la.Vector, off int) float64 { return 0 }); err == nil {
		t.Error("group mismatch accepted")
	}
	short, _ := MakeDistVector(rt, 6, pg)
	if _, err := v.FoldZip(short, func(a, b la.Vector, off int) float64 { return 0 }); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestZipApplyLocalAndZipDup(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	v, _ := MakeDistVector(rt, 6, pg)
	w, _ := MakeDistVector(rt, 6, pg)
	_ = v.Init(func(i int) float64 { return float64(i) })
	_ = w.Init(func(i int) float64 { return 10 })
	err := v.ZipApplyLocal(w, func(a, b la.Vector, off int) { a.Add(b) })
	if err != nil {
		t.Fatal(err)
	}
	got, _ := v.ToVector()
	for i := range got {
		if got[i] != float64(i)+10 {
			t.Fatalf("ZipApplyLocal[%d] = %v", i, got[i])
		}
	}
	d, _ := MakeDupVector(rt, 6, pg)
	_ = d.Init(func(i int) float64 { return float64(i * 2) })
	err = v.ZipDup(d, func(seg, dupSeg la.Vector, off int) { seg.CopyFrom(dupSeg) })
	if err != nil {
		t.Fatal(err)
	}
	got, _ = v.ToVector()
	for i := range got {
		if got[i] != float64(i*2) {
			t.Fatalf("ZipDup[%d] = %v", i, got[i])
		}
	}
	// Validation.
	bad, _ := MakeDupVector(rt, 5, pg)
	if err := v.ZipDup(bad, func(a, b la.Vector, off int) {}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestDupVectorDotValidation(t *testing.T) {
	rt := newRT(t, 2)
	pg := rt.World()
	a, _ := MakeDupVector(rt, 4, pg)
	b, _ := MakeDupVector(rt, 5, pg)
	if _, err := a.Dot(b); err == nil {
		t.Error("shape mismatch accepted")
	}
	c, _ := MakeDupVector(rt, 4, apgas.PlaceGroup{rt.Place(0)})
	if _, err := a.Dot(c); err == nil {
		t.Error("group mismatch accepted")
	}
	_ = a.Init(func(i int) float64 { return 2 })
	d, _ := MakeDupVector(rt, 4, pg)
	_ = d.Init(func(i int) float64 { return 3 })
	got, err := a.Dot(d)
	if err != nil {
		t.Fatal(err)
	}
	if got != 24 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDupDenseZipAllValidation(t *testing.T) {
	rt := newRT(t, 2)
	pg := rt.World()
	a, _ := MakeDupDenseMatrix(rt, 2, 2, pg)
	b, _ := MakeDupDenseMatrix(rt, 2, 2, apgas.PlaceGroup{rt.Place(0)})
	if err := a.ZipAll(b, func(x, y *la.DenseMatrix) {}); err == nil {
		t.Error("group mismatch accepted")
	}
	if err := a.ZipAll2(b, b, func(x, y, z *la.DenseMatrix) {}); err == nil {
		t.Error("group mismatch accepted")
	}
}

package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/grid"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// MakeSnapshot implements snapshot.Snapshottable: each place saves every
// block it owns under the block's ID; the descriptor records the
// snapshot-time grid and block→place mapping so restores can locate each
// block's replicas.
func (m *DistBlockMatrix) MakeSnapshot() (*snapshot.Snapshot, error) {
	return m.MakeSnapshotWithOptions(snapshot.Options{})
}

// MakeSnapshotWithOptions is MakeSnapshot with explicit snapshot Options
// (e.g. the DisableBackup ablation knob).
func (m *DistBlockMatrix) MakeSnapshotWithOptions(opts snapshot.Options) (*snapshot.Snapshot, error) {
	s, err := snapshot.NewWithOptions(m.rt, m.pg, opts)
	if err != nil {
		return nil, err
	}
	meta := codec.AppendInt(make([]byte, 0, 5*codec.SizeInt+codec.SizeInts(len(m.dg.PlaceOf))), int(m.kind))
	meta = codec.AppendInt(meta, m.rows)
	meta = codec.AppendInt(meta, m.cols)
	meta = codec.AppendInt(meta, m.g.RowBlocks)
	meta = codec.AppendInt(meta, m.g.ColBlocks)
	meta = codec.AppendInts(meta, m.dg.PlaceOf)
	s.SetMeta(meta)
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		bs := m.plh.Local(ctx)
		if bs.Len() <= 1 {
			bs.Each(func(id int, b *block.MatrixBlock) { saveBlock(ctx, s, id, b) })
			return
		}
		// A place holding several blocks encodes them in parallel tasks;
		// each task's backup put overlaps the other encodes.
		bs.Each(func(id int, b *block.MatrixBlock) {
			ctx.AsyncAt(ctx.Here, func(c *apgas.Ctx) { saveBlock(c, s, id, b) })
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	return s, nil
}

// saveBlock runs the checkpoint fast path for one block: encode into a
// pooled, exactly-sized buffer with the CRC-32C folded into the encode
// pass, then hand the buffer to the snapshot store.
func saveBlock(ctx *apgas.Ctx, s *snapshot.Snapshot, id int, b *block.MatrixBlock) {
	enc := codec.NewEncoder(b.EncodedSize())
	b.EncodeInto(&enc)
	s.SaveEncoded(ctx, id, &enc)
}

// snapMeta is the decoded snapshot descriptor.
type snapMeta struct {
	kind       block.Kind
	rows, cols int
	oldGrid    *grid.Grid
	placeOf    []int
}

func decodeSnapMeta(meta []byte) (*snapMeta, error) {
	var (
		kind, rows, cols, rb, cb int
		err                      error
	)
	rd := meta
	for _, dst := range []*int{&kind, &rows, &cols, &rb, &cb} {
		if *dst, rd, err = codec.Int(rd); err != nil {
			return nil, fmt.Errorf("dist: snapshot meta: %w", err)
		}
	}
	placeOf, _, err := codec.Ints(rd)
	if err != nil {
		return nil, fmt.Errorf("dist: snapshot meta: %w", err)
	}
	g, err := grid.New(rows, cols, rb, cb)
	if err != nil {
		return nil, fmt.Errorf("dist: snapshot meta grid: %w", err)
	}
	if len(placeOf) != g.NumBlocks() {
		return nil, fmt.Errorf("dist: snapshot meta: %d owners for %d blocks", len(placeOf), g.NumBlocks())
	}
	return &snapMeta{kind: block.Kind(kind), rows: rows, cols: cols, oldGrid: g, placeOf: placeOf}, nil
}

// RestoreSnapshot implements snapshot.Snapshottable. If the current data
// grid equals the snapshot's, every place copies its blocks whole from the
// store (the fast block-by-block path, used by the shrink and
// replace-redundant modes). If the grid changed (shrink-rebalance), every
// place reassembles each of its new blocks from the overlapping regions of
// the old blocks; sparse blocks additionally run the nonzero-counting pass
// over the overlaps before allocating (paper section IV-B2).
func (m *DistBlockMatrix) RestoreSnapshot(s *snapshot.Snapshot) error {
	meta, err := decodeSnapMeta(s.Meta())
	if err != nil {
		return err
	}
	if meta.kind != m.kind || meta.rows != m.rows || meta.cols != m.cols {
		return fmt.Errorf("dist: restore %v %dx%d from snapshot of %v %dx%d: %w",
			m.kind, m.rows, m.cols, meta.kind, meta.rows, meta.cols, ErrShapeMismatch)
	}
	if meta.oldGrid.Equal(m.g) {
		return m.restoreSameGrid(s, meta)
	}
	return m.restoreRegrid(s, meta)
}

// restoreSameGrid copies whole blocks: each place loads every block it now
// owns directly from the snapshot replica of the block's old owner.
func (m *DistBlockMatrix) restoreSameGrid(s *snapshot.Snapshot, meta *snapMeta) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		m.plh.Local(ctx).Each(func(id int, b *block.MatrixBlock) {
			data, err := s.Load(ctx, id, meta.placeOf[id])
			if err != nil {
				apgas.Throw(err)
			}
			old, err := block.Decode(data)
			if err != nil {
				apgas.Throw(err)
			}
			if old.Rows != b.Rows || old.Cols != b.Cols {
				apgas.Throw(fmt.Errorf("dist: restored block %d is %dx%d, want %dx%d",
					id, old.Rows, old.Cols, b.Rows, b.Cols))
			}
			b.Dense, b.Sparse = old.Dense, old.Sparse
		})
	})
}

// restoreRegrid reassembles each new block from the overlapping regions of
// old blocks. Old blocks fetched once per place are cached — decoded form,
// cached only after a successful decode so a corrupt replica's fallback
// path (Load retries the backup on the next call) is never short-circuited
// by a poisoned cache slot.
func (m *DistBlockMatrix) restoreRegrid(s *snapshot.Snapshot, meta *snapMeta) error {
	oldG := meta.oldGrid
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		cache := make(map[int]*block.MatrixBlock)
		loadOld := func(rb, cb int) *block.MatrixBlock {
			id := oldG.BlockID(rb, cb)
			if b, ok := cache[id]; ok {
				return b
			}
			data, err := s.Load(ctx, id, meta.placeOf[id])
			if err != nil {
				apgas.Throw(err)
			}
			b, err := block.Decode(data)
			if err != nil {
				apgas.Throw(err)
			}
			cache[id] = b
			return b
		}
		m.plh.Local(ctx).Each(func(id int, nb *block.MatrixBlock) {
			overlaps := m.g.Overlaps(oldG, nb.RB, nb.CB)
			if m.kind == block.Dense {
				for _, ov := range overlaps {
					old := loadOld(ov.OldRB, ov.OldCB)
					sub := old.Dense.ExtractSub(ov.Row0-old.Row0, ov.Col0-old.Col0, ov.Rows, ov.Cols)
					nb.Dense.PasteSub(ov.Row0-nb.Row0, ov.Col0-nb.Col0, sub)
				}
				return
			}
			// Sparse: count the nonzeros of every overlap first to size
			// the new block (the extra pass the paper charges to sparse
			// re-grid restores), then assemble by merging the overlap
			// columns in order. g.Overlaps returns overlaps column-major
			// (old column-block outer, old row-block inner), so for any
			// column of the new block the contributing runs arrive in
			// ascending row order and the merge is a straight copy.
			nnz := 0
			subs := make([]*la.SparseCSC, len(overlaps))
			for i, ov := range overlaps {
				old := loadOld(ov.OldRB, ov.OldCB)
				// One counting pass per overlap (the extra pass the paper
				// charges to sparse re-grid restores); its result sizes
				// both the merged block and the sub-extraction, which
				// previously re-counted internally.
				n := old.Sparse.CountSubNNZ(ov.Row0-old.Row0, ov.Col0-old.Col0, ov.Rows, ov.Cols)
				nnz += n
				subs[i] = old.Sparse.ExtractSubPresized(ov.Row0-old.Row0, ov.Col0-old.Col0, ov.Rows, ov.Cols, n)
			}
			sp := la.NewSparseCSC(nb.Rows, nb.Cols)
			sp.RowIdx = make([]int, 0, nnz)
			sp.Vals = make([]float64, 0, nnz)
			for j := 0; j < nb.Cols; j++ {
				col := j + nb.Col0
				for i, ov := range overlaps {
					if col < ov.Col0 || col >= ov.Col0+ov.Cols {
						continue
					}
					sub := subs[i]
					sj := col - ov.Col0
					rowOff := ov.Row0 - nb.Row0
					for k := sub.ColPtr[sj]; k < sub.ColPtr[sj+1]; k++ {
						sp.RowIdx = append(sp.RowIdx, sub.RowIdx[k]+rowOff)
						sp.Vals = append(sp.Vals, sub.Vals[k])
					}
				}
				sp.ColPtr[j+1] = len(sp.Vals)
			}
			nb.Sparse = sp
		})
	})
}

package dist

import (
	"fmt"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/grid"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// MakeSnapshot implements snapshot.Snapshottable: each place saves every
// block it owns under the block's ID; the descriptor records the
// snapshot-time grid and block→place mapping so restores can locate each
// block's replicas.
func (m *DistBlockMatrix) MakeSnapshot() (*snapshot.Snapshot, error) {
	return m.MakeSnapshotWithOptions(snapshot.Options{})
}

// MakeSnapshotWithOptions is MakeSnapshot with explicit snapshot Options
// (e.g. the DisableBackup ablation knob).
func (m *DistBlockMatrix) MakeSnapshotWithOptions(opts snapshot.Options) (*snapshot.Snapshot, error) {
	s, err := snapshot.NewWithOptions(m.rt, m.pg, opts)
	if err != nil {
		return nil, err
	}
	comp, spec := m.newCompressor(m.rt)
	meta := appendCompressMeta(make([]byte, 0, 8*codec.SizeInt+codec.SizeInts(len(m.dg.PlaceOf))), spec)
	meta = codec.AppendInt(meta, int(m.kind))
	meta = codec.AppendInt(meta, m.rows)
	meta = codec.AppendInt(meta, m.cols)
	meta = codec.AppendInt(meta, m.g.RowBlocks)
	meta = codec.AppendInt(meta, m.g.ColBlocks)
	meta = codec.AppendInts(meta, m.dg.PlaceOf)
	s.SetMeta(meta)
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		bs := m.plh.Local(ctx)
		if bs.Len() <= 1 {
			bs.Each(func(id int, b *block.MatrixBlock) { saveBlock(ctx, s, id, b, comp) })
			return
		}
		// A place holding several blocks encodes them in parallel tasks;
		// each task's backup put overlaps the other encodes.
		bs.Each(func(id int, b *block.MatrixBlock) {
			ctx.AsyncAt(ctx.Here, func(c *apgas.Ctx) { saveBlock(c, s, id, b, comp) })
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// encodeBlock encodes one block into a pooled encoder, through comp when
// set (the CRC-32C then covers the compressed frame), recording the
// compression instrumentation on s.
func encodeBlock(s *snapshot.Snapshot, b *block.MatrixBlock, comp codec.Compressor) *codec.Encoder {
	if comp == nil {
		enc := codec.NewEncoder(b.EncodedSize())
		b.EncodeInto(&enc)
		return &enc
	}
	start := time.Now()
	enc := codec.NewEncoderC(b.EncodedSize(), comp)
	b.EncodeInto(&enc)
	s.NoteCompression(b.EncodedSize(), enc.Len(), time.Since(start))
	return &enc
}

// saveBlock runs the checkpoint fast path for one block: encode into a
// pooled, exactly-sized buffer with the CRC-32C folded into the encode
// pass, then hand the buffer to the snapshot store.
func saveBlock(ctx *apgas.Ctx, s *snapshot.Snapshot, id int, b *block.MatrixBlock, comp codec.Compressor) {
	enc := encodeBlock(s, b, comp)
	s.SaveEncoded(ctx, id, enc)
}

// saveBlockDelta is saveBlock against a previous checkpoint: the block is
// re-encoded (and re-shipped) only if its content version moved since
// prev recorded it, with the store's CRC comparison as the backstop for
// unversioned mutations.
func saveBlockDelta(ctx *apgas.Ctx, s, prev *snapshot.Snapshot, id int, b *block.MatrixBlock, comp codec.Compressor) {
	s.SaveDelta(ctx, id, b.Ver, prev, func() *codec.Encoder {
		return encodeBlock(s, b, comp)
	})
}

// MakeDeltaSnapshot implements snapshot.DirtyTracker: blocks unchanged
// since prev (same content version, or identical bytes) are carried into
// the new snapshot by reference instead of being re-encoded and
// re-shipped. Applicable only when prev describes the same group, grid,
// distribution, and compression policy (carried-forward frames must
// decode under this snapshot's codec); anything else degrades to a full
// MakeSnapshot.
func (m *DistBlockMatrix) MakeDeltaSnapshot(prev *snapshot.Snapshot) (*snapshot.Snapshot, error) {
	comp, spec := m.newCompressor(m.rt)
	if !m.deltaApplicable(prev, spec) {
		return m.MakeSnapshot()
	}
	s, err := snapshot.NewWithOptions(m.rt, m.pg, snapshot.Options{})
	if err != nil {
		return nil, err
	}
	s.SetMeta(prev.Meta())
	err = apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		bs := m.plh.Local(ctx)
		if bs.Len() <= 1 {
			bs.Each(func(id int, b *block.MatrixBlock) { saveBlockDelta(ctx, s, prev, id, b, comp) })
			return
		}
		bs.Each(func(id int, b *block.MatrixBlock) {
			ctx.AsyncAt(ctx.Here, func(c *apgas.Ctx) { saveBlockDelta(c, s, prev, id, b, comp) })
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// deltaApplicable reports whether prev can serve as the baseline of a
// delta snapshot under the resolved compression spec: same group, same
// grid, the same block→place mapping (a carried entry must keep its
// owner, or restores would look up replicas at the wrong places), and
// the same compression policy.
func (m *DistBlockMatrix) deltaApplicable(prev *snapshot.Snapshot, spec codec.Spec) bool {
	if prev == nil || !prev.Group().Equal(m.pg) {
		return false
	}
	meta, err := decodeSnapMeta(prev.Meta())
	if err != nil || meta.kind != m.kind || !meta.oldGrid.Equal(m.g) || meta.spec != spec {
		return false
	}
	for id, p := range meta.placeOf {
		if p != m.dg.PlaceOf[id] {
			return false
		}
	}
	return true
}

// RestoreSnapshotPartial implements snapshot.PartialRestorer: on the
// same-grid path, blocks whose payload survived the Remake (retained at
// a surviving place) are kept if a local re-encode matches the
// snapshot's digest — only blocks owned by fresh places, or whose
// content moved past the checkpoint, are loaded from the store. Regrid
// restores always rebuild everything.
func (m *DistBlockMatrix) RestoreSnapshotPartial(s *snapshot.Snapshot, dead []apgas.Place) error {
	meta, err := decodeSnapMeta(s.Meta())
	if err != nil {
		return err
	}
	if meta.kind != m.kind || meta.rows != m.rows || meta.cols != m.cols {
		return fmt.Errorf("dist: restore %v %dx%d from snapshot of %v %dx%d: %w",
			m.kind, m.rows, m.cols, meta.kind, meta.rows, meta.cols, ErrShapeMismatch)
	}
	if !meta.oldGrid.Equal(m.g) {
		return m.restoreRegrid(s, meta)
	}
	reg := m.rt.Obs()
	kept := reg.Counter("dist.restore.partial.kept")
	keptBytes := reg.Counter("dist.restore.partial.bytes.kept")
	loaded := reg.Counter("dist.restore.partial.loaded")
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		m.plh.Local(ctx).Each(func(id int, b *block.MatrixBlock) {
			if b.Retained && m.validateRetained(ctx, s, meta, id, b) {
				b.Retained = false
				kept.Inc()
				keptBytes.Add(int64(b.EncodedSize()))
				return
			}
			if err := m.loadBlock(ctx, s, meta, id, b); err != nil {
				apgas.Throw(err)
			}
			b.Retained = false
			loaded.Inc()
		})
	})
}

// validateRetained checks a surviving block's in-memory payload against
// the snapshot: sizes first (free; skipped under compression, whose
// frame sizes are not predictable from the shape), then a local
// re-encode whose CRC must equal the stored digest. A survivor whose
// state advanced past the checkpoint fails the comparison and is
// re-loaded like any lost block. A lossy codec rejects outright (see
// validateRetainedVector): a quantizing re-encode cannot tell the
// checkpointed payload from newer state in the same bucket.
func (m *DistBlockMatrix) validateRetained(ctx *apgas.Ctx, s *snapshot.Snapshot, meta *snapMeta, id int, b *block.MatrixBlock) bool {
	if meta.spec.Mode == codec.CompressLossy {
		return false
	}
	sum, size, err := s.Digest(ctx, id, meta.placeOf[id])
	if err != nil || (meta.comp == nil && size != b.EncodedSize()) {
		return false
	}
	enc := codec.NewEncoderC(b.EncodedSize(), meta.comp)
	b.EncodeInto(&enc)
	ok := enc.Len() == size && enc.Sum() == sum
	codec.PutBuffer(enc.Bytes())
	return ok
}

// snapMeta is the decoded snapshot descriptor.
type snapMeta struct {
	kind       block.Kind
	rows, cols int
	oldGrid    *grid.Grid
	placeOf    []int
	// spec and comp record the compression policy the snapshot's frames
	// were written under (zero/nil for an uncompressed snapshot).
	spec codec.Spec
	comp codec.Compressor
}

func decodeSnapMeta(meta []byte) (*snapMeta, error) {
	spec, rd, err := splitCompressMeta(meta)
	if err != nil {
		return nil, err
	}
	comp, err := codec.NewCompressor(spec)
	if err != nil {
		return nil, fmt.Errorf("dist: snapshot meta: %w", err)
	}
	var kind, rows, cols, rb, cb int
	for _, dst := range []*int{&kind, &rows, &cols, &rb, &cb} {
		if *dst, rd, err = codec.Int(rd); err != nil {
			return nil, fmt.Errorf("dist: snapshot meta: %w", err)
		}
	}
	placeOf, _, err := codec.Ints(rd)
	if err != nil {
		return nil, fmt.Errorf("dist: snapshot meta: %w", err)
	}
	g, err := grid.New(rows, cols, rb, cb)
	if err != nil {
		return nil, fmt.Errorf("dist: snapshot meta grid: %w", err)
	}
	if len(placeOf) != g.NumBlocks() {
		return nil, fmt.Errorf("dist: snapshot meta: %d owners for %d blocks", len(placeOf), g.NumBlocks())
	}
	return &snapMeta{kind: block.Kind(kind), rows: rows, cols: cols, oldGrid: g, placeOf: placeOf, spec: spec, comp: comp}, nil
}

// RestoreSnapshot implements snapshot.Snapshottable. If the current data
// grid equals the snapshot's, every place copies its blocks whole from the
// store (the fast block-by-block path, used by the shrink and
// replace-redundant modes). If the grid changed (shrink-rebalance), every
// place reassembles each of its new blocks from the overlapping regions of
// the old blocks; sparse blocks additionally run the nonzero-counting pass
// over the overlaps before allocating (paper section IV-B2).
func (m *DistBlockMatrix) RestoreSnapshot(s *snapshot.Snapshot) error {
	meta, err := decodeSnapMeta(s.Meta())
	if err != nil {
		return err
	}
	if meta.kind != m.kind || meta.rows != m.rows || meta.cols != m.cols {
		return fmt.Errorf("dist: restore %v %dx%d from snapshot of %v %dx%d: %w",
			m.kind, m.rows, m.cols, meta.kind, meta.rows, meta.cols, ErrShapeMismatch)
	}
	if meta.oldGrid.Equal(m.g) {
		return m.restoreSameGrid(s, meta)
	}
	return m.restoreRegrid(s, meta)
}

// restoreSameGrid copies whole blocks: each place loads every block it now
// owns directly from the snapshot replica of the block's old owner,
// decoding into the block's existing payload allocation (DecodeInto).
// Installing the decoded slices instead would drop the block's pooled
// backing — the first checkpoint after every restore would then allocate
// every payload afresh — and would alias the regrid decode cache's
// buffers into live blocks.
func (m *DistBlockMatrix) restoreSameGrid(s *snapshot.Snapshot, meta *snapMeta) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		m.plh.Local(ctx).Each(func(id int, b *block.MatrixBlock) {
			if err := m.loadBlock(ctx, s, meta, id, b); err != nil {
				apgas.Throw(err)
			}
			b.Retained = false
		})
	})
}

// loadBlock fetches block id from the snapshot and overwrites b's payload
// in place.
func (m *DistBlockMatrix) loadBlock(ctx *apgas.Ctx, s *snapshot.Snapshot, meta *snapMeta, id int, b *block.MatrixBlock) error {
	data, err := s.Load(ctx, id, meta.placeOf[id])
	if err != nil {
		return err
	}
	if err := block.DecodeIntoC(b, data, meta.comp); err != nil {
		return fmt.Errorf("dist: restoring block %d: %w", id, err)
	}
	return nil
}

// restoreRegrid reassembles each new block from the overlapping regions of
// old blocks. Old blocks fetched once per place are cached — decoded form,
// cached only after a successful decode so a corrupt replica's fallback
// path (Load retries the backup on the next call) is never short-circuited
// by a poisoned cache slot.
func (m *DistBlockMatrix) restoreRegrid(s *snapshot.Snapshot, meta *snapMeta) error {
	oldG := meta.oldGrid
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		cache := make(map[int]*block.MatrixBlock)
		loadOld := func(rb, cb int) *block.MatrixBlock {
			id := oldG.BlockID(rb, cb)
			if b, ok := cache[id]; ok {
				return b
			}
			data, err := s.Load(ctx, id, meta.placeOf[id])
			if err != nil {
				apgas.Throw(err)
			}
			b, err := block.DecodeC(data, meta.comp)
			if err != nil {
				apgas.Throw(err)
			}
			cache[id] = b
			return b
		}
		m.plh.Local(ctx).Each(func(id int, nb *block.MatrixBlock) {
			nb.Retained = false
			nb.Touch()
			overlaps := m.g.Overlaps(oldG, nb.RB, nb.CB)
			if m.kind == block.Dense {
				for _, ov := range overlaps {
					old := loadOld(ov.OldRB, ov.OldCB)
					sub := old.Dense.ExtractSub(ov.Row0-old.Row0, ov.Col0-old.Col0, ov.Rows, ov.Cols)
					nb.Dense.PasteSub(ov.Row0-nb.Row0, ov.Col0-nb.Col0, sub)
				}
				return
			}
			// Sparse: count the nonzeros of every overlap first to size
			// the new block (the extra pass the paper charges to sparse
			// re-grid restores), then assemble by merging the overlap
			// columns in order. g.Overlaps returns overlaps column-major
			// (old column-block outer, old row-block inner), so for any
			// column of the new block the contributing runs arrive in
			// ascending row order and the merge is a straight copy.
			nnz := 0
			subs := make([]*la.SparseCSC, len(overlaps))
			for i, ov := range overlaps {
				old := loadOld(ov.OldRB, ov.OldCB)
				// One counting pass per overlap (the extra pass the paper
				// charges to sparse re-grid restores); its result sizes
				// both the merged block and the sub-extraction, which
				// previously re-counted internally.
				n := old.Sparse.CountSubNNZ(ov.Row0-old.Row0, ov.Col0-old.Col0, ov.Rows, ov.Cols)
				nnz += n
				subs[i] = old.Sparse.ExtractSubPresized(ov.Row0-old.Row0, ov.Col0-old.Col0, ov.Rows, ov.Cols, n)
			}
			sp := la.NewSparseCSC(nb.Rows, nb.Cols)
			sp.RowIdx = make([]int, 0, nnz)
			sp.Vals = make([]float64, 0, nnz)
			for j := 0; j < nb.Cols; j++ {
				col := j + nb.Col0
				for i, ov := range overlaps {
					if col < ov.Col0 || col >= ov.Col0+ov.Cols {
						continue
					}
					sub := subs[i]
					sj := col - ov.Col0
					rowOff := ov.Row0 - nb.Row0
					for k := sub.ColPtr[sj]; k < sub.ColPtr[sj+1]; k++ {
						sp.RowIdx = append(sp.RowIdx, sub.RowIdx[k]+rowOff)
						sp.Vals = append(sp.Vals, sub.Vals[k])
					}
				}
				sp.ColPtr[j+1] = len(sp.Vals)
			}
			nb.Sparse = sp
		})
	})
}

package dist

import (
	"math"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/la"
)

func TestDistVectorSegmentation(t *testing.T) {
	rt := newRT(t, 3)
	v, err := MakeDistVector(rt, 10, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	// 10 over 3: segments 4,3,3 at offsets 0,4,7.
	wantOff := []int{0, 4, 7}
	wantSz := []int{4, 3, 3}
	for i := 0; i < 3; i++ {
		off, sz := v.SegmentOf(i)
		if off != wantOff[i] || sz != wantSz[i] {
			t.Fatalf("SegmentOf(%d) = %d,%d", i, off, sz)
		}
	}
}

func TestDistVectorValidation(t *testing.T) {
	rt := newRT(t, 3)
	if _, err := MakeDistVector(rt, 0, rt.World()); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := MakeDistVector(rt, 2, rt.World()); err == nil {
		t.Error("more places than elements accepted")
	}
	if _, err := MakeDistVector(rt, 5, nil); err == nil {
		t.Error("empty group accepted")
	}
}

func TestDistVectorInitAndToVector(t *testing.T) {
	rt := newRT(t, 3)
	v, err := MakeDistVector(rt, 7, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(i) }); err != nil {
		t.Fatal(err)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(la.Vector{0, 1, 2, 3, 4, 5, 6}, 0) {
		t.Fatalf("ToVector = %v", got)
	}
}

func TestDistVectorScaleAndApply(t *testing.T) {
	rt := newRT(t, 2)
	v, err := MakeDistVector(rt, 4, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := v.Scale(5); err != nil {
		t.Fatal(err)
	}
	if err := v.ApplyLocal(func(seg la.Vector, off int) { seg.CellAdd(float64(off)) }); err != nil {
		t.Fatal(err)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	// 4 over 2 places: offsets 0 and 2.
	if !got.EqualApprox(la.Vector{5, 5, 7, 7}, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestDistVectorDots(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	v, err := MakeDistVector(rt, 6, pg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := MakeDistVector(rt, 6, pg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MakeDupVector(rt, 6, pg)
	if err != nil {
		t.Fatal(err)
	}
	_ = v.Init(func(i int) float64 { return float64(i + 1) })
	_ = w.Init(func(i int) float64 { return 2 })
	_ = d.Init(func(i int) float64 { return float64(i) })
	got, err := v.Dot(w)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*21 {
		t.Errorf("Dot = %v, want 42", got)
	}
	got, err = v.DotDup(d)
	if err != nil {
		t.Fatal(err)
	}
	// sum (i+1)*i for i=0..5 = 0+2+6+12+20+30 = 70.
	if got != 70 {
		t.Errorf("DotDup = %v, want 70", got)
	}
}

func TestDistVectorDotMismatch(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	v, _ := MakeDistVector(rt, 6, pg)
	w, _ := MakeDistVector(rt, 6, apgas.PlaceGroup{rt.Place(0), rt.Place(1)})
	if _, err := v.Dot(w); err == nil {
		t.Error("group mismatch accepted")
	}
	d, _ := MakeDupVector(rt, 5, pg)
	if _, err := v.DotDup(d); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestDistVectorGatherTo(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	v, _ := MakeDistVector(rt, 5, pg)
	d, _ := MakeDupVector(rt, 5, pg)
	_ = v.Init(func(i int) float64 { return float64(i * 10) })
	if err := v.GatherTo(d); err != nil {
		t.Fatal(err)
	}
	root, err := d.Root()
	if err != nil {
		t.Fatal(err)
	}
	if !root.EqualApprox(la.Vector{0, 10, 20, 30, 40}, 0) {
		t.Fatalf("gathered root = %v", root)
	}
	// Mirrors the paper's PageRank line 15-17: gather then sync.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readDupAt(t, d, 2); !got.EqualApprox(root, 0) {
		t.Fatalf("after sync copy = %v", got)
	}
}

func TestDistVectorRemakeResegments(t *testing.T) {
	rt := newRT(t, 4)
	v, err := MakeDistVector(rt, 8, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(3)}
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	// 8 over 3: 3,3,2.
	if off, sz := v.SegmentOf(2); off != 6 || sz != 2 {
		t.Fatalf("SegmentOf(2) = %d,%d", off, sz)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sum() != 0 {
		t.Fatal("remade vector not zeroed")
	}
}

func TestDistVectorSnapshotRestoreSameSegmentation(t *testing.T) {
	rt := newRT(t, 3)
	v, err := MakeDistVector(rt, 7, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	_ = v.Init(func(i int) float64 { return float64(i) * 1.5 })
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	_ = v.Scale(0)
	if err := v.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, _ := v.ToVector()
	for i := range got {
		if got[i] != float64(i)*1.5 {
			t.Fatalf("restored[%d] = %v", i, got[i])
		}
	}
}

func TestDistVectorSnapshotRestoreResegmented(t *testing.T) {
	rt := newRT(t, 4)
	v, err := MakeDistVector(rt, 11, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	_ = v.Init(func(i int) float64 { return float64(i + 100) })
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	// Kill place 2 and shrink onto 3 places: segmentation 4,4,3 vs old
	// 3,3,3,2 — the overlap path.
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	if err := v.Remake(rt.World()); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float64(i+100) {
			t.Fatalf("restored[%d] = %v", i, got[i])
		}
	}
}

func TestDistVectorRestoreWrongLength(t *testing.T) {
	rt := newRT(t, 2)
	v, _ := MakeDistVector(rt, 6, rt.World())
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	w, _ := MakeDistVector(rt, 7, rt.World())
	if err := w.RestoreSnapshot(s); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDistVectorNormViaDot(t *testing.T) {
	rt := newRT(t, 2)
	v, _ := MakeDistVector(rt, 4, rt.World())
	_ = v.Init(func(i int) float64 { return 2 })
	d2, err := v.Dot(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Sqrt(d2)-4) > 1e-12 {
		t.Errorf("norm = %v", math.Sqrt(d2))
	}
}

package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// newInstrumentedRT is newRT with an obs registry attached, so the delta
// and partial-restore tests can assert traffic counters.
func newInstrumentedRT(t *testing.T, places int) (*apgas.Runtime, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true), apgas.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt, reg
}

// TestDistBlockMatrixDeltaSnapshotPerBlock checks delta granularity is per
// block: after touching a single block, the next delta checkpoint re-ships
// exactly that block and carries the rest, and restoring from the delta
// chain reproduces the current content even after the baselines are gone.
func TestDistBlockMatrixDeltaSnapshotPerBlock(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 4)
	m, err := MakeDistBlockMatrix(rt, block.Dense, 8, 8, 2, 2, 2, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 { return float64(10*i + j) }); err != nil {
		t.Fatal(err)
	}
	s1, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Nothing changed: all four blocks carry.
	s2, err := m.MakeDeltaSnapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 4 {
		t.Fatalf("delta.carried = %d, want 4", got)
	}
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 0 {
		t.Fatalf("delta.saved = %d, want 0", got)
	}

	// Mutate one block (through LocalBlocks, bumping its version): the
	// next delta re-ships only that block.
	err = apgas.ForEachPlace(rt, m.Group(), func(ctx *apgas.Ctx, idx int) {
		m.LocalBlocks(ctx).Each(func(id int, b *block.MatrixBlock) {
			if id == 0 {
				b.Dense.Set(1, 1, -99)
				b.Touch()
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := m.MakeDeltaSnapshot(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 7 {
		t.Fatalf("delta.carried = %d, want 7 (4 + 3)", got)
	}
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 1 {
		t.Fatalf("delta.saved = %d, want 1", got)
	}

	// The delta chain stands alone: destroy the baselines, scribble over
	// the matrix, restore from the newest snapshot.
	s1.Destroy()
	s2.Destroy()
	if err := m.Scale(0); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s3); err != nil {
		t.Fatal(err)
	}
	got, err := m.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := float64(10*i + j)
			if i == 1 && j == 1 {
				want = -99
			}
			if got.At(i, j) != want {
				t.Fatalf("restored[%d,%d] = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
	s3.Destroy()
}

// TestDistBlockMatrixPartialRestoreRetained checks the surviving-place
// path: after an in-position replacement, blocks retained through Remake
// are kept when their digest matches the checkpoint, a survivor whose
// content moved past the checkpoint is rolled back, and only those two
// block payloads are loaded from the store.
func TestDistBlockMatrixPartialRestoreRetained(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 5)
	pg := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(2), rt.Place(3)}
	m, err := MakeDistBlockMatrix(rt, block.Dense, 8, 8, 2, 2, 2, 2, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 { return float64(i + j) }); err != nil {
		t.Fatal(err)
	}
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()

	// One survivor (place 3's block) advances past the checkpoint.
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		if idx != 3 {
			return
		}
		m.LocalBlocks(ctx).Each(func(id int, b *block.MatrixBlock) {
			b.Dense.Set(0, 0, 123)
			b.Touch()
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill place 1, replace it in-position by the spare (place 4).
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(4), rt.Place(2), rt.Place(3)}
	if err := m.Remake(newPG, true); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.remake.blocks.retained").Value(); got != 3 {
		t.Fatalf("remake.blocks.retained = %d, want 3", got)
	}

	loadBytes0 := reg.Counter("snapshot.load.bytes").Value()
	if err := m.RestoreSnapshotPartial(s, []apgas.Place{rt.Place(1)}); err != nil {
		t.Fatal(err)
	}
	// Places 0 and 2 keep their blocks; the spare's block and the diverged
	// survivor's block load.
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != 2 {
		t.Errorf("partial.kept = %d, want 2", got)
	}
	if got := reg.Counter("dist.restore.partial.loaded").Value(); got != 2 {
		t.Errorf("partial.loaded = %d, want 2", got)
	}
	if got := reg.Counter("snapshot.load.bytes").Value() - loadBytes0; got <= 0 || got > 2*int64(4*4*8+7*8+64) {
		t.Errorf("snapshot.load.bytes = %d, want two block payloads", got)
	}

	// The content is the checkpoint's everywhere — including the diverged
	// survivor, whose mutation was rolled back.
	got, err := m.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if got.At(i, j) != float64(i+j) {
				t.Fatalf("restored[%d,%d] = %v, want %v", i, j, got.At(i, j), float64(i+j))
			}
		}
	}
}

// TestDistVectorDeltaAndPartialRestore checks the DistVector delta path
// (object-level version) and its surviving-place partial restore.
func TestDistVectorDeltaAndPartialRestore(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 5)
	pg := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(2), rt.Place(3)}
	v, err := MakeDistVector(rt, 12, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(i) + 0.5 }); err != nil {
		t.Fatal(err)
	}
	s1, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Unchanged vector: every segment carries.
	s2, err := v.MakeDeltaSnapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 4 {
		t.Fatalf("delta.carried = %d, want 4", got)
	}
	// A collective mutation bumps the version: everything re-ships.
	if err := v.Scale(2); err != nil {
		t.Fatal(err)
	}
	s3, err := v.MakeDeltaSnapshot(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 4 {
		t.Fatalf("delta.saved = %d, want 4", got)
	}
	s1.Destroy()
	s2.Destroy()
	defer s3.Destroy()

	// Kill place 1, replace in-position, restore partially: three
	// survivors keep their segments, only the replacement loads.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(4), rt.Place(2), rt.Place(3)}
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.remake.segments.retained").Value(); got != 3 {
		t.Fatalf("remake.segments.retained = %d, want 3", got)
	}
	if err := v.RestoreSnapshotPartial(s3, []apgas.Place{rt.Place(1)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != 3 {
		t.Errorf("partial.kept = %d, want 3", got)
	}
	if got := reg.Counter("dist.restore.partial.loaded").Value(); got != 1 {
		t.Errorf("partial.loaded = %d, want 1", got)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := 2 * (float64(i) + 0.5); got[i] != want {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// TestDupVectorPartialRestoreBroadcasts checks the duplicated-object
// partial restore: one validated survivor re-broadcasts to the places
// that lost their duplicate, with zero snapshot loads — even when the
// dead place is the snapshot's root saver.
func TestDupVectorPartialRestoreBroadcasts(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 5)
	// The group starts at place 1 so the root saver (pg[0]) is mortal;
	// place 0 stands by as the replacement.
	pg := apgas.PlaceGroup{rt.Place(1), rt.Place(2), rt.Place(3), rt.Place(4)}
	v, err := MakeDupVector(rt, 6, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(i * i) }); err != nil {
		t.Fatal(err)
	}
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()

	// Kill the root saver itself: validation must probe the digest via the
	// backup replica, and the broadcast source is a surviving duplicate.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(2), rt.Place(3), rt.Place(4)}
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	loads0 := reg.Counter("snapshot.loads").Value()
	if err := v.RestoreSnapshotPartial(s, []apgas.Place{rt.Place(1)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != 3 {
		t.Errorf("partial.kept = %d, want 3", got)
	}
	if got := reg.Counter("dist.restore.partial.bcast").Value(); got != 1 {
		t.Errorf("partial.bcast = %d, want 1", got)
	}
	if got := reg.Counter("snapshot.loads").Value(); got != loads0 {
		t.Errorf("partial dup restore performed %d snapshot loads, want 0", got-loads0)
	}
	want := la.Vector{0, 1, 4, 9, 16, 25}
	for idx := range newPG {
		if got := readDupAt(t, v, idx); !got.EqualApprox(want, 0) {
			t.Fatalf("duplicate at index %d = %v, want %v", idx, got, want)
		}
	}
}

// TestDupVectorDeltaAndDivergedSurvivorFallback checks the DupVector delta
// carry and that a partial restore with no valid survivor (every retained
// duplicate diverged from the checkpoint) falls back to the full restore.
func TestDupVectorDeltaAndDivergedSurvivorFallback(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 5)
	pg := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(2), rt.Place(3)}
	v, err := MakeDupVector(rt, 6, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(i + 1) }); err != nil {
		t.Fatal(err)
	}
	s1, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := v.MakeDeltaSnapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	// One logical copy stored: exactly one entry carries.
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 1 {
		t.Fatalf("delta.carried = %d, want 1", got)
	}
	s1.Destroy()
	defer s2.Destroy()

	// Every duplicate advances past the checkpoint, then a failure hits:
	// no survivor validates, so the partial restore degrades to loading
	// duplicates from the store — and still lands on the checkpoint value.
	if err := v.AllApply(func(local la.Vector) { local.CellAdd(10) }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(4), rt.Place(2), rt.Place(3)}
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	kept0 := reg.Counter("dist.restore.partial.kept").Value()
	if err := v.RestoreSnapshotPartial(s2, []apgas.Place{rt.Place(1)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != kept0 {
		t.Errorf("partial.kept moved by %d, want 0 (no survivor validates)", got-kept0)
	}
	want := la.Vector{1, 2, 3, 4, 5, 6}
	for idx := range newPG {
		if got := readDupAt(t, v, idx); !got.EqualApprox(want, 0) {
			t.Fatalf("duplicate at index %d = %v, want %v", idx, got, want)
		}
	}
}

// TestDupDenseMatrixDeltaAndPartialRestore checks the duplicated dense
// matrix delta carry and survivor-broadcast partial restore.
func TestDupDenseMatrixDeltaAndPartialRestore(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 5)
	pg := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(2), rt.Place(3)}
	m, err := MakeDupDenseMatrix(rt, 3, 2, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(func(i, j int) float64 { return float64(10*i + j) }); err != nil {
		t.Fatal(err)
	}
	s1, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.MakeDeltaSnapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 1 {
		t.Fatalf("delta.carried = %d, want 1", got)
	}
	s1.Destroy()
	defer s2.Destroy()

	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(4), rt.Place(3)}
	if err := m.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	loads0 := reg.Counter("snapshot.loads").Value()
	if err := m.RestoreSnapshotPartial(s2, []apgas.Place{rt.Place(2)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != 3 {
		t.Errorf("partial.kept = %d, want 3", got)
	}
	if got := reg.Counter("dist.restore.partial.bcast").Value(); got != 1 {
		t.Errorf("partial.bcast = %d, want 1", got)
	}
	if got := reg.Counter("snapshot.loads").Value(); got != loads0 {
		t.Errorf("partial dup restore performed %d snapshot loads, want 0", got-loads0)
	}
	for idx := range newPG {
		got := readDupDenseAt(t, m, idx)
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				if got.At(i, j) != float64(10*i+j) {
					t.Fatalf("duplicate %d at [%d,%d] = %v, want %v", idx, i, j, got.At(i, j), float64(10*i+j))
				}
			}
		}
	}
}

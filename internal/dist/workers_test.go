package dist

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/par"
)

// distWorkerCounts exercises the deterministic-kernel contract at the
// distributed level: serial, even, odd, prime, and the machine's default.
var distWorkerCounts = []int{1, 2, 3, 7, runtime.NumCPU()}

// underWorkers runs compute at every worker count and asserts the result
// is bit-identical to the workers=1 reference. compute must rebuild its
// state from scratch each call (fresh runtime, fresh data).
func underWorkers(t *testing.T, compute func(t *testing.T) la.Vector) {
	t.Helper()
	old := par.Workers()
	defer par.SetWorkers(old)

	par.SetWorkers(1)
	want := compute(t)
	for _, w := range distWorkerCounts[1:] {
		par.SetWorkers(w)
		got := compute(t)
		if !bitsEqualVec(got, want) {
			t.Fatalf("workers=%d result differs from workers=1", w)
		}
	}
}

// bitsEqualVec compares two vectors for exact bit equality — the kernel
// engine's contract is bitwise reproducibility, not approximate equality.
func bitsEqualVec(a, b la.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestDistMultVecWorkerInvariance(t *testing.T) {
	for _, cfg := range []struct {
		name               string
		rows, cols, rb, cb int
		rp, cp             int
	}{
		{"row-striped", 40, 16, 4, 1, 4, 1},
		{"2d-grid", 36, 20, 4, 2, 2, 2},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			underWorkers(t, func(t *testing.T) la.Vector {
				rt := newRT(t, 4)
				pg := rt.World()
				m := makeDenseDBM(t, rt, cfg.rows, cfg.cols, cfg.rb, cfg.cb, cfg.rp, cfg.cp, pg)
				x, err := MakeDupVector(rt, cfg.cols, pg)
				if err != nil {
					t.Fatal(err)
				}
				_ = x.Init(func(i int) float64 { return float64(i)*0.375 + 1 })
				y, err := MakeDistVector(rt, cfg.rows, pg)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.MultVec(x, y); err != nil {
					t.Fatal(err)
				}
				out, err := y.ToVector()
				if err != nil {
					t.Fatal(err)
				}
				return out
			})
		})
	}
}

func TestDistMultVecSparseWorkerInvariance(t *testing.T) {
	underWorkers(t, func(t *testing.T) la.Vector {
		rt := newRT(t, 4)
		pg := rt.World()
		n := 48
		m, err := MakeDistBlockMatrix(rt, block.Sparse, n, n, 4, 2, 2, 2, pg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.InitSparseColumns(sparseColInit(n)); err != nil {
			t.Fatal(err)
		}
		x, _ := MakeDupVector(rt, n, pg)
		_ = x.Init(func(i int) float64 { return float64(i%9) - 2.5 })
		y, _ := MakeDistVector(rt, n, pg)
		if err := m.MultVec(x, y); err != nil {
			t.Fatal(err)
		}
		out, err := y.ToVector()
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
}

func TestDistTransMultVecWorkerInvariance(t *testing.T) {
	// The result is duplicated; every copy at every worker count must be
	// bit-identical to the workers=1 root.
	underWorkers(t, func(t *testing.T) la.Vector {
		rt := newRT(t, 4)
		pg := rt.World()
		m := makeDenseDBM(t, rt, 32, 12, 4, 2, 2, 2, pg)
		x, _ := MakeDistVector(rt, 32, pg)
		_ = x.Init(func(i int) float64 { return float64(i%7) - 3 })
		z, _ := MakeDupVector(rt, 12, pg)
		if err := m.TransMultVec(x, z); err != nil {
			t.Fatal(err)
		}
		ref := readDupAt(t, z, 0)
		for idx := 1; idx < pg.Size(); idx++ {
			if !bitsEqualVec(readDupAt(t, z, idx), ref) {
				t.Fatalf("duplicate %d differs from root", idx)
			}
		}
		return ref
	})
}

func TestTransMultMatrixWorkerInvariance(t *testing.T) {
	underWorkers(t, func(t *testing.T) la.Vector {
		rt := newRT(t, 4)
		n, mcols, k := 28, 9, 4
		v, w, _ := gemmFixture(t, rt, n, mcols, k)
		out, err := MakeDupDenseMatrix(rt, k, mcols, rt.World())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.TransMultMatrix(v, out); err != nil {
			t.Fatal(err)
		}
		root, err := out.Root()
		if err != nil {
			t.Fatal(err)
		}
		return la.Vector(root.Data).Clone()
	})
}

func TestFrobNormWorkerInvariance(t *testing.T) {
	underWorkers(t, func(t *testing.T) la.Vector {
		rt := newRT(t, 4)
		pg := rt.World()
		dense := makeDenseDBM(t, rt, 36, 20, 4, 2, 2, 2, pg)
		sparse, err := MakeDistBlockMatrix(rt, block.Sparse, 40, 40, 4, 2, 2, 2, pg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sparse.InitSparseColumns(sparseColInit(40)); err != nil {
			t.Fatal(err)
		}
		dn, err := dense.FrobNorm()
		if err != nil {
			t.Fatal(err)
		}
		sn, err := sparse.FrobNorm()
		if err != nil {
			t.Fatal(err)
		}
		return la.Vector{dn, sn}
	})
}

// TestDupVectorTreeSyncOddGroups drives the binomial broadcast through
// group sizes that exercise uneven tree splits: every duplicate must hold
// the root's exact bytes after Sync.
func TestDupVectorTreeSyncOddGroups(t *testing.T) {
	for _, places := range []int{2, 3, 5, 7} {
		t.Run(fmt.Sprintf("places=%d", places), func(t *testing.T) {
			rt := newRT(t, places)
			v, err := MakeDupVector(rt, 13, rt.World())
			if err != nil {
				t.Fatal(err)
			}
			if err := v.RootApply(func(local la.Vector) {
				for i := range local {
					local[i] = float64(i)*1.0625 + 0.3
				}
			}); err != nil {
				t.Fatal(err)
			}
			if err := v.Sync(); err != nil {
				t.Fatal(err)
			}
			want := readDupAt(t, v, 0)
			for idx := 1; idx < places; idx++ {
				if got := readDupAt(t, v, idx); !bitsEqualVec(got, want) {
					t.Fatalf("duplicate %d = %v, want %v", idx, got, want)
				}
			}
		})
	}
}

// TestDupMatrixTreeSyncOddGroups is the matrix-broadcast analogue.
func TestDupMatrixTreeSyncOddGroups(t *testing.T) {
	for _, places := range []int{2, 3, 5, 7} {
		t.Run(fmt.Sprintf("places=%d", places), func(t *testing.T) {
			rt := newRT(t, places)
			m, err := MakeDupDenseMatrix(rt, 5, 4, rt.World())
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Finish(func(ctx *apgas.Ctx) {
				ctx.At(m.Group()[0], func(c *apgas.Ctx) {
					local := m.Local(c)
					for i := range local.Data {
						local.Data[i] = float64(i)*0.875 - 2
					}
				})
			}); err != nil {
				t.Fatal(err)
			}
			if err := m.Sync(); err != nil {
				t.Fatal(err)
			}
			var want la.Vector
			if err := rt.Finish(func(ctx *apgas.Ctx) {
				ctx.At(m.Group()[0], func(c *apgas.Ctx) {
					want = la.Vector(m.Local(c).Data).Clone()
				})
			}); err != nil {
				t.Fatal(err)
			}
			for idx := 1; idx < places; idx++ {
				var got la.Vector
				if err := rt.Finish(func(ctx *apgas.Ctx) {
					ctx.At(m.Group()[idx], func(c *apgas.Ctx) {
						got = la.Vector(m.Local(c).Data).Clone()
					})
				}); err != nil {
					t.Fatal(err)
				}
				if !bitsEqualVec(got, want) {
					t.Fatalf("duplicate %d differs from root", idx)
				}
			}
		})
	}
}

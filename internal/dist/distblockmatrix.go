package dist

import (
	"fmt"
	"math"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/grid"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

// DistBlockMatrix partitions a matrix into a data grid of blocks and
// assigns one or more blocks to each place of a group
// (x10.matrix.distblock.DistBlockMatrix). Holding a *set* of blocks per
// place is what allows the shrink restoration mode to remap existing
// blocks onto surviving places without repartitioning (paper section
// III-A); the trade-off against repartitioning is Fig. 1-b vs 1-c.
type DistBlockMatrix struct {
	rt         *apgas.Runtime
	kind       block.Kind
	rows, cols int
	g          *grid.Grid
	dg         *grid.DistGrid
	pg         apgas.PlaceGroup
	// bppRow is the make-time row-blocks-per-place-row ratio; the
	// rebalance policy preserves it when repartitioning for a new group
	// size (Fig. 1-c keeps two blocks per place as places shrink).
	bppRow int
	plh    apgas.PlaceLocalHandle[*block.BlockSet]

	// scratch holds the per-place, per-block partial vectors reused by
	// MultVec / TransMultVec, allocated lazily and rebuilt on Remake.
	// Collective operations on one matrix must not overlap (GML's
	// sequential-style programming model guarantees this).
	scratch   apgas.PlaceLocalHandle[map[int]la.Vector]
	scratchOK bool
	// matScratchH is the matrix-product analogue used by TransMultMatrix.
	matScratchH  apgas.PlaceLocalHandle[map[int]*la.DenseMatrix]
	matScratchOK bool
	// gatherH holds each place's per-block aggregation map for the
	// binomial tree gather of TransMultVec phase 2; matGatherH is the
	// matrix analogue for TransMultMatrix.
	gatherH     apgas.PlaceLocalHandle[map[int]la.Vector]
	gatherOK    bool
	matGatherH  apgas.PlaceLocalHandle[map[int]*la.DenseMatrix]
	matGatherOK bool

	// compressible carries the per-object checkpoint-compression
	// override and lossy opt-in (SetCompression, AllowLossyCheckpoint).
	compressible
}

// MakeDistBlockMatrix creates a zeroed rows×cols matrix cut into
// rowBlocks×colBlocks blocks, distributed over a rowPlaces×colPlaces place
// grid drawn from pg (the factory DistBlockMatrix.make of paper Listing 2,
// extended with an arbitrary place group per section IV-A). rowBlocks must
// be divisible by rowPlaces and colBlocks by colPlaces so that every place
// receives the same number of blocks.
func MakeDistBlockMatrix(rt *apgas.Runtime, kind block.Kind, rows, cols, rowBlocks, colBlocks, rowPlaces, colPlaces int, pg apgas.PlaceGroup) (*DistBlockMatrix, error) {
	if rowPlaces*colPlaces != pg.Size() {
		return nil, fmt.Errorf("dist: place grid %dx%d does not cover %d places",
			rowPlaces, colPlaces, pg.Size())
	}
	if rowPlaces < 1 || colPlaces < 1 || rowBlocks%rowPlaces != 0 || colBlocks%colPlaces != 0 {
		return nil, fmt.Errorf("dist: block grid %dx%d not divisible by place grid %dx%d",
			rowBlocks, colBlocks, rowPlaces, colPlaces)
	}
	g, err := grid.New(rows, cols, rowBlocks, colBlocks)
	if err != nil {
		return nil, err
	}
	dg, err := grid.NewDistGrid(g, rowPlaces, colPlaces)
	if err != nil {
		return nil, err
	}
	m := &DistBlockMatrix{
		rt: rt, kind: kind, rows: rows, cols: cols,
		g: g, dg: dg, pg: pg.Clone(),
		bppRow: rowBlocks / rowPlaces,
	}
	if err := m.alloc(); err != nil {
		return nil, err
	}
	return m, nil
}

// alloc (re)allocates the per-place block sets for the current grid and
// distribution.
func (m *DistBlockMatrix) alloc() error {
	return m.allocReusing(apgas.PlaceLocalHandle[*block.BlockSet]{}, nil)
}

// allocReusing allocates the per-place block sets, moving blocks out of
// old (the handle from before a Remake) wherever a surviving place still
// owns the same block of the same grid. Retained blocks keep their
// payload allocations and are flagged for partial restore, which
// validates them against the snapshot instead of re-loading them. Fresh
// places, and blocks whose owner changed, get zeroed blocks as before.
func (m *DistBlockMatrix) allocReusing(old apgas.PlaceLocalHandle[*block.BlockSet], retained *obs.Counter) error {
	reuse := old.Valid()
	plh, err := apgas.NewPlaceLocalHandle(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) *block.BlockSet {
		bs := block.NewBlockSet()
		var prev *block.BlockSet
		if reuse {
			prev, _ = old.TryLocal(ctx)
		}
		for _, id := range m.dg.BlocksOf(idx) {
			rb, cb := m.g.BlockCoords(id)
			if prev != nil {
				if ob := prev.Find(id); ob != nil && ob.RB == rb && ob.CB == cb {
					ob.Retained = true
					retained.Inc()
					bs.Add(id, ob)
					continue
				}
			}
			if m.kind == block.Dense {
				bs.Add(id, block.NewDenseBlock(m.g, rb, cb))
			} else {
				bs.Add(id, block.NewSparseBlock(m.g, rb, cb))
			}
		}
		return bs
	})
	if err != nil {
		return err
	}
	m.plh = plh
	return nil
}

// Rows returns the matrix row count.
func (m *DistBlockMatrix) Rows() int { return m.rows }

// Cols returns the matrix column count.
func (m *DistBlockMatrix) Cols() int { return m.cols }

// Kind returns the block storage format.
func (m *DistBlockMatrix) Kind() block.Kind { return m.kind }

// Grid returns the current data grid.
func (m *DistBlockMatrix) Grid() *grid.Grid { return m.g }

// Dist returns the current block→place mapping.
func (m *DistBlockMatrix) Dist() *grid.DistGrid { return m.dg }

// Group returns the place group the matrix is distributed over.
func (m *DistBlockMatrix) Group() apgas.PlaceGroup { return m.pg }

// LocalBlocks returns the calling place's block set. Code that writes
// into the blocks' payloads directly must bump their versions — either
// per block via MatrixBlock.Touch or wholesale via MarkDirty — or delta
// checkpoints fall back to (and depend on) the CRC comparison.
func (m *DistBlockMatrix) LocalBlocks(ctx *apgas.Ctx) *block.BlockSet { return m.plh.Local(ctx) }

// MarkDirty bumps every block's content version, forcing the next delta
// checkpoint to re-examine (and, if changed, re-ship) the whole matrix.
// It is the coarse hook for code that mutated blocks through LocalBlocks
// without calling Touch on each one.
func (m *DistBlockMatrix) MarkDirty() error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		m.plh.Local(ctx).Each(func(id int, b *block.MatrixBlock) { b.Touch() })
	})
}

// Bytes returns the total payload bytes of all blocks (via the grid, not a
// collective: dense payloads are fully determined by geometry; for sparse
// matrices it sums the current nonzeros and requires a collective).
func (m *DistBlockMatrix) Bytes() (int, error) {
	total := 0
	counts := make([]int, m.pg.Size())
	err := apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		counts[idx] = m.plh.Local(ctx).Bytes()
	})
	if err != nil {
		return 0, err
	}
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// InitDense fills a dense matrix with fn(i, j) evaluated at global
// coordinates by each owning place. Because fn sees global coordinates,
// the matrix content is independent of the distribution — a property the
// redistribution tests rely on.
func (m *DistBlockMatrix) InitDense(fn func(i, j int) float64) error {
	if m.kind != block.Dense {
		return fmt.Errorf("dist: InitDense on a %v matrix", m.kind)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		m.plh.Local(ctx).Each(func(id int, b *block.MatrixBlock) {
			for j := 0; j < b.Cols; j++ {
				for i := 0; i < b.Rows; i++ {
					b.Dense.Set(i, j, fn(b.Row0+i, b.Col0+j))
				}
			}
			b.Touch()
		})
	})
}

// InitSparseColumns fills a sparse matrix column by column: fn(j) returns
// the global row indices and values of column j's nonzeros. Each place
// evaluates fn for the columns of its blocks and keeps the entries falling
// into its row ranges, so the content is again distribution-independent.
func (m *DistBlockMatrix) InitSparseColumns(fn func(j int) (rows []int, vals []float64)) error {
	if m.kind != block.Sparse {
		return fmt.Errorf("dist: InitSparseColumns on a %v matrix", m.kind)
	}
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		bs := m.plh.Local(ctx)
		// Group this place's blocks by column-block to evaluate fn once
		// per (column-block, column) pair.
		byCB := make(map[int][]*block.MatrixBlock)
		bs.Each(func(id int, b *block.MatrixBlock) {
			byCB[b.CB] = append(byCB[b.CB], b)
		})
		for cb, blocks := range byCB {
			c0 := m.g.ColOffsets[cb]
			c1 := m.g.ColOffsets[cb+1]
			triplets := make(map[*block.MatrixBlock][]la.Triplet)
			for j := c0; j < c1; j++ {
				rows, vals := fn(j)
				if len(rows) != len(vals) {
					apgas.Throw(fmt.Errorf("dist: InitSparseColumns(%d): %d rows, %d vals", j, len(rows), len(vals)))
				}
				for k, i := range rows {
					for _, b := range blocks {
						if i >= b.Row0 && i < b.Row0+b.Rows {
							triplets[b] = append(triplets[b], la.Triplet{
								Row: i - b.Row0, Col: j - b.Col0, Val: vals[k],
							})
							break
						}
					}
				}
			}
			for _, b := range blocks {
				b.Sparse = la.NewSparseCSCFromTriplets(b.Rows, b.Cols, triplets[b])
				b.Touch()
			}
		}
	})
}

// Scale multiplies every element by a, fanning each place's blocks
// across the kernel worker pool.
func (m *DistBlockMatrix) Scale(a float64) error {
	return apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		m.plh.Local(ctx).EachPar(func(id int, b *block.MatrixBlock) { b.Scale(a) })
	})
}

// ToDense gathers the whole matrix into one local dense matrix at the main
// activity (for verification and tests; not a scalable operation).
func (m *DistBlockMatrix) ToDense() (*la.DenseMatrix, error) {
	out := la.NewDense(m.rows, m.cols)
	err := m.rt.Finish(func(ctx *apgas.Ctx) {
		for idx := 0; idx < m.pg.Size(); idx++ {
			encoded := apgas.Eval(ctx, m.pg[idx], func(c *apgas.Ctx) [][]byte {
				var out [][]byte
				m.plh.Local(c).Each(func(id int, b *block.MatrixBlock) {
					out = append(out, b.Encode())
				})
				return out
			})
			for _, enc := range encoded {
				b, err := block.Decode(enc)
				if err != nil {
					apgas.Throw(err)
				}
				if b.Dense != nil {
					out.PasteSub(b.Row0, b.Col0, b.Dense)
				} else {
					out.PasteSub(b.Row0, b.Col0, b.Sparse.ToDense())
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scratchPartials returns the cached per-place partial-vector maps,
// allocating them on first use.
func (m *DistBlockMatrix) scratchPartials() (apgas.PlaceLocalHandle[map[int]la.Vector], error) {
	if !m.scratchOK {
		plh, err := apgas.NewPlaceLocalHandle(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) map[int]la.Vector {
			return make(map[int]la.Vector)
		})
		if err != nil {
			return apgas.PlaceLocalHandle[map[int]la.Vector]{}, err
		}
		m.scratch = plh
		m.scratchOK = true
	}
	return m.scratch, nil
}

// gatherScratch returns the cached per-place tree-gather maps, allocating
// them on first use.
func (m *DistBlockMatrix) gatherScratch() (apgas.PlaceLocalHandle[map[int]la.Vector], error) {
	if !m.gatherOK {
		plh, err := apgas.NewPlaceLocalHandle(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) map[int]la.Vector {
			return make(map[int]la.Vector)
		})
		if err != nil {
			return apgas.PlaceLocalHandle[map[int]la.Vector]{}, err
		}
		m.gatherH = plh
		m.gatherOK = true
	}
	return m.gatherH, nil
}

// matGatherScratch returns the cached per-place tree-gather maps for
// matrix partials, allocating them on first use.
func (m *DistBlockMatrix) matGatherScratch() (apgas.PlaceLocalHandle[map[int]*la.DenseMatrix], error) {
	if !m.matGatherOK {
		plh, err := apgas.NewPlaceLocalHandle(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) map[int]*la.DenseMatrix {
			return make(map[int]*la.DenseMatrix)
		})
		if err != nil {
			return apgas.PlaceLocalHandle[map[int]*la.DenseMatrix]{}, err
		}
		m.matGatherH = plh
		m.matGatherOK = true
	}
	return m.matGatherH, nil
}

// FrobNorm returns the Frobenius norm, with per-block partial sums reduced
// in canonical block order (deterministic across redistributions). The
// per-block sums of squares run on the kernel engine, and the blocks of
// one place fan across it.
func (m *DistBlockMatrix) FrobNorm() (float64, error) {
	partials := make([]float64, m.g.NumBlocks())
	err := apgas.ForEachPlace(m.rt, m.pg, func(ctx *apgas.Ctx, idx int) {
		m.plh.Local(ctx).EachPar(func(id int, b *block.MatrixBlock) {
			var s float64
			if b.Dense != nil {
				s = la.SumSquares(b.Dense.Data)
			} else {
				s = la.SumSquares(b.Sparse.Vals)
			}
			partials[id] = s
			ctx.Transfer(m.pg[0], 8)
		})
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range partials {
		sum += p
	}
	return math.Sqrt(sum), nil
}

// Remake redistributes the matrix (zeroed) over a new place group (paper
// section IV-A). With keepGrid the data grid is preserved and the existing
// blocks are remapped round-robin onto the new group — the fast path that
// can leave load imbalance (Fig. 1-b, shrink mode). Without keepGrid the
// matrix is repartitioned: the row-block count is rescaled to keep the
// make-time blocks-per-place ratio and blocks are assigned contiguously —
// even load, but restores must then reassemble blocks from overlaps
// (Fig. 1-c, shrink-rebalance mode).
func (m *DistBlockMatrix) Remake(newPG apgas.PlaceGroup, keepGrid bool) error {
	if newPG.Size() == 0 {
		return fmt.Errorf("dist: DistBlockMatrix.Remake: empty place group")
	}
	// With keepGrid, blocks that stay at a surviving place are moved into
	// the new handle instead of being re-zeroed (allocReusing): their
	// payloads survive for partial restore to validate, and the restore
	// that follows a Remake overwrites whatever it does not validate. The
	// old handle is destroyed only after the new one is built.
	oldPLH, oldPG := m.plh, m.pg
	if !keepGrid {
		oldPLH = apgas.PlaceLocalHandle[*block.BlockSet]{}
		m.plh.Destroy(m.pg)
	}
	if m.scratchOK {
		m.scratch.Destroy(m.pg)
		m.scratchOK = false
	}
	if m.matScratchOK {
		m.matScratchH.Destroy(m.pg)
		m.matScratchOK = false
	}
	if m.gatherOK {
		m.gatherH.Destroy(m.pg)
		m.gatherOK = false
	}
	if m.matGatherOK {
		m.matGatherH.Destroy(m.pg)
		m.matGatherOK = false
	}
	if keepGrid {
		dg, err := grid.Remap(m.g, newPG.Size())
		if err != nil {
			return err
		}
		m.dg = dg
	} else {
		rowBlocks := m.bppRow * newPG.Size()
		if rowBlocks > m.rows {
			rowBlocks = m.rows
		}
		if rowBlocks < newPG.Size() {
			rowBlocks = newPG.Size()
		}
		g, err := grid.New(m.rows, m.cols, rowBlocks, m.g.ColBlocks)
		if err != nil {
			return err
		}
		dg, err := grid.NewDistGrid(g, newPG.Size(), 1)
		if err != nil {
			return err
		}
		m.g = g
		m.dg = dg
	}
	m.pg = newPG.Clone()
	reg := m.rt.Obs()
	if err := m.allocReusing(oldPLH, reg.Counter("dist.remake.blocks.retained")); err != nil {
		return err
	}
	if oldPLH.Valid() {
		oldPLH.Destroy(oldPG)
	}
	reg.Counter("dist.matrix.remakes").Inc()
	kept := int64(0)
	if keepGrid {
		kept = 1
	}
	reg.Trace("dist.matrix.remake", int64(newPG.Size()), kept)
	return nil
}

package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
)

// Distributed kernel benchmarks backing BENCH_kernels.json
// (`make bench-kernels`): the per-iteration MultVec/TransMultVec pair that
// dominates the LinReg/LogReg/PageRank step time.

func benchMatVec(b *testing.B, rows, cols, places int) (*apgas.Runtime, *DistBlockMatrix, *DupVector, *DistVector) {
	b.Helper()
	rt, err := apgas.New(apgas.WithPlaces(places))
	if err != nil {
		b.Fatal(err)
	}
	m, err := MakeDistBlockMatrix(rt, block.Dense, rows, cols, places, 1, places, 1, rt.World())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 {
		return float64((i*31+j*17)%97) / 97
	}); err != nil {
		b.Fatal(err)
	}
	x, err := MakeDupVector(rt, cols, rt.World())
	if err != nil {
		b.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return float64(i%13) / 13 }); err != nil {
		b.Fatal(err)
	}
	y, err := MakeDistVector(rt, rows, rt.World())
	if err != nil {
		b.Fatal(err)
	}
	return rt, m, x, y
}

func BenchmarkKernelDistMultVec(b *testing.B) {
	const rows, cols, places = 2048, 2048, 4
	rt, m, x, y := benchMatVec(b, rows, cols, places)
	defer rt.Shutdown()
	b.SetBytes(8 * int64(rows*cols))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MultVec(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelDistTransMultVec(b *testing.B) {
	const rows, cols, places = 2048, 2048, 4
	rt, m, _, y := benchMatVec(b, rows, cols, places)
	defer rt.Shutdown()
	z, err := MakeDupVector(rt, cols, rt.World())
	if err != nil {
		b.Fatal(err)
	}
	if err := y.Init(func(i int) float64 { return float64(i%7) / 7 }); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 * int64(rows*cols))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.TransMultVec(y, z); err != nil {
			b.Fatal(err)
		}
	}
}

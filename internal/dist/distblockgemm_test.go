package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
)

// gemmFixture builds a conformal trio: V sparse N×M, W dense N×K, both
// row-striped over the world, plus the duplicated H K×M.
func gemmFixture(t *testing.T, rt *apgas.Runtime, n, mcols, k int) (v, w *DistBlockMatrix, h *DupDenseMatrix) {
	t.Helper()
	pg := rt.World()
	p := pg.Size()
	var err error
	v, err = MakeDistBlockMatrix(rt, block.Sparse, n, mcols, p, 1, p, 1, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.InitSparseColumns(sparseColInit(n)); err != nil {
		t.Fatal(err)
	}
	w, err = MakeDistBlockMatrix(rt, block.Dense, n, k, p, 1, p, 1, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.InitDense(func(i, j int) float64 { return denseInit(i, j) / 10 }); err != nil {
		t.Fatal(err)
	}
	h, err = MakeDupDenseMatrix(rt, k, mcols, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Init(func(i, j int) float64 { return float64(i+j)/7 + 0.1 }); err != nil {
		t.Fatal(err)
	}
	return v, w, h
}

func TestTransMultMatrixAgainstDense(t *testing.T) {
	rt := newRT(t, 4)
	n, mcols, k := 20, 9, 3
	v, w, _ := gemmFixture(t, rt, n, mcols, k)
	out, err := MakeDupDenseMatrix(rt, k, mcols, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.TransMultMatrix(v, out); err != nil {
		t.Fatal(err)
	}
	wd, _ := w.ToDense()
	vd, _ := v.ToDense()
	want := la.NewDense(k, mcols)
	la.AccumTransDenseDense(wd, vd, want)
	root, err := out.Root()
	_ = root
	if err != nil {
		t.Fatal(err)
	}
	// Every duplicate must hold the broadcast result.
	err = apgas.ForEachPlace(rt, rt.World(), func(ctx *apgas.Ctx, idx int) {
		if !out.Local(ctx).EqualApprox(want, 1e-9) {
			apgas.Throw(errShape("TransMultMatrix duplicate mismatch"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransMultMatrixGram(t *testing.T) {
	rt := newRT(t, 3)
	n, k := 15, 4
	_, w, _ := gemmFixture(t, rt, n, 6, k)
	gram, err := MakeDupDenseMatrix(rt, k, k, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.TransMultMatrix(w, gram); err != nil {
		t.Fatal(err)
	}
	wd, _ := w.ToDense()
	want := la.NewDense(k, k)
	la.AccumTransDenseDense(wd, wd, want)
	got, err := gram.Root()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("Gram mismatch")
	}
}

func TestMultDupMatrixAgainstDense(t *testing.T) {
	rt := newRT(t, 4)
	n, mcols, k := 16, 5, 3
	_, w, _ := gemmFixture(t, rt, n, mcols, k)
	hh, err := MakeDupDenseMatrix(rt, k, k, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := hh.Init(func(i, j int) float64 { return float64(i*j + 1) }); err != nil {
		t.Fatal(err)
	}
	out, err := MakeDistBlockMatrix(rt, block.Dense, n, k, 4, 1, 4, 1, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.MultDupMatrix(hh, out); err != nil {
		t.Fatal(err)
	}
	wd, _ := w.ToDense()
	hhRoot, _ := hh.Root()
	want := la.NewDense(n, k)
	wd.Mult(hhRoot, want)
	got, _ := out.ToDense()
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("MultDupMatrix mismatch")
	}
}

func TestMultDupTransposeAgainstDense(t *testing.T) {
	rt := newRT(t, 4)
	n, mcols, k := 16, 7, 3
	v, _, h := gemmFixture(t, rt, n, mcols, k)
	out, err := MakeDistBlockMatrix(rt, block.Dense, n, k, 4, 1, 4, 1, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.MultDupTranspose(h, out); err != nil {
		t.Fatal(err)
	}
	vd, _ := v.ToDense()
	hRoot, _ := h.Root()
	want := la.NewDense(n, k)
	for i := 0; i < n; i++ {
		for kk := 0; kk < k; kk++ {
			var sum float64
			for j := 0; j < mcols; j++ {
				sum += vd.At(i, j) * hRoot.At(kk, j)
			}
			want.Set(i, kk, sum)
		}
	}
	got, _ := out.ToDense()
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("MultDupTranspose mismatch")
	}
}

func TestZipBlocks(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	mk := func() *DistBlockMatrix {
		m, err := MakeDistBlockMatrix(rt, block.Dense, 9, 4, 3, 1, 3, 1, pg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	dst, a, b := mk(), mk(), mk()
	_ = a.InitDense(func(i, j int) float64 { return 2 })
	_ = b.InitDense(func(i, j int) float64 { return 3 })
	_ = dst.InitDense(func(i, j int) float64 { return 1 })
	err := ZipBlocks(dst, a, b, func(d, x, y *block.MatrixBlock) {
		for i := range d.Dense.Data {
			d.Dense.Data[i] = d.Dense.Data[i]*x.Dense.Data[i] + y.Dense.Data[i]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dst.ToDense()
	for _, v := range got.Data {
		if v != 5 {
			t.Fatalf("ZipBlocks element = %v, want 5", v)
		}
	}
}

func TestGemmValidation(t *testing.T) {
	rt := newRT(t, 4)
	pg := rt.World()
	v, w, h := gemmFixture(t, rt, 16, 6, 3)
	// Sparse left operand rejected for TransMultMatrix.
	out, _ := MakeDupDenseMatrix(rt, 6, 6, pg)
	if err := v.TransMultMatrix(v, out); err == nil {
		t.Error("sparse left operand accepted")
	}
	// Wrong out shape.
	bad, _ := MakeDupDenseMatrix(rt, 2, 2, pg)
	if err := w.TransMultMatrix(v, bad); err == nil {
		t.Error("wrong out shape accepted")
	}
	// Non-conformal (different row-block count).
	other, err := MakeDistBlockMatrix(rt, block.Sparse, 16, 6, 8, 1, 4, 1, pg)
	if err != nil {
		t.Fatal(err)
	}
	okOut, _ := MakeDupDenseMatrix(rt, 3, 6, pg)
	if err := w.TransMultMatrix(other, okOut); err == nil {
		t.Error("non-conformal operand accepted")
	}
	// MultDupTranspose wants sparse·denseᵀ.
	dOut, _ := MakeDistBlockMatrix(rt, block.Dense, 16, 3, 4, 1, 4, 1, pg)
	if err := w.MultDupTranspose(h, dOut); err == nil {
		t.Error("dense left operand accepted for MultDupTranspose")
	}
}

// Package dist implements GML's multi-place vector and matrix classes over
// the apgas substrate (paper Table I):
//
//	           Duplicated        Distributed
//	Vectors    DupVector         DistVector
//	Matrices   DupDenseMatrix    DistDenseMatrix
//	           DupSparseMatrix   DistSparseMatrix
//	                             DistBlockMatrix
//
// Every class supports construction over an arbitrary PlaceGroup, dynamic
// redistribution via Remake (paper section IV-A), and the Snapshottable
// snapshot/restore protocol (section IV-B), including the block-by-block
// fast path when the partitioning is unchanged and the overlap-based
// sub-block path (with the extra nonzero-counting pass for sparse data)
// when the data grid changed.
//
// Collective operations are deterministic: reductions combine per-place
// contributions in place-group order, so a computation replayed after a
// failure reproduces the failure-free result exactly. The resilience tests
// rely on this.
package dist

import (
	"errors"
	"fmt"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// ErrGroupMismatch reports an operation between objects distributed over
// different place groups.
var ErrGroupMismatch = errors.New("dist: objects distributed over different place groups")

// ErrShapeMismatch reports an operation between objects of incompatible
// dimensions.
var ErrShapeMismatch = errors.New("dist: shape mismatch")

// encodeVector serializes a vector fragment for snapshot storage.
func encodeVector(v la.Vector) []byte {
	return codec.AppendFloat64s(make([]byte, 0, codec.SizeFloat64s(len(v))), v)
}

// saveVector runs the checkpoint fast path for one vector fragment:
// encode into a pooled, exactly-sized buffer with the CRC-32C folded into
// the encode pass (over the compressed bytes when comp is set), then hand
// the buffer to the snapshot store.
func saveVector(ctx *apgas.Ctx, s *snapshot.Snapshot, key int, v la.Vector, comp codec.Compressor) {
	if comp == nil {
		enc := encodeVectorPooled(v, nil)
		s.SaveEncoded(ctx, key, enc)
		return
	}
	start := time.Now()
	enc := encodeVectorPooled(v, comp)
	s.NoteCompression(codec.SizeFloat64s(len(v)), enc.Len(), time.Since(start))
	s.SaveEncoded(ctx, key, enc)
}

// encodeVectorPooled encodes a vector fragment into a pooled encoder.
func encodeVectorPooled(v la.Vector, comp codec.Compressor) *codec.Encoder {
	enc := codec.NewEncoderC(codec.SizeFloat64s(len(v)), comp)
	enc.PutFloat64s(v)
	return &enc
}

// saveVectorDelta is saveVector against a previous checkpoint (see
// Snapshot.SaveDelta): the fragment is re-encoded and re-shipped only if
// ver moved since prev recorded it, or its bytes actually changed. With a
// deterministic compressor, the store's byte comparison operates on
// compressed frames and stays exact.
func saveVectorDelta(ctx *apgas.Ctx, s, prev *snapshot.Snapshot, key int, ver uint64, v la.Vector, comp codec.Compressor) {
	s.SaveDelta(ctx, key, ver, prev, func() *codec.Encoder {
		if comp == nil {
			return encodeVectorPooled(v, nil)
		}
		start := time.Now()
		enc := encodeVectorPooled(v, comp)
		s.NoteCompression(codec.SizeFloat64s(len(v)), enc.Len(), time.Since(start))
		return enc
	})
}

// validateRetainedVector checks a surviving place's in-memory fragment
// against the snapshot digest for key: sizes first, then a local
// re-encode whose CRC must match the stored sum. Used by the partial
// restore paths to keep survivor state instead of re-loading it. With a
// lossless compressor the size precheck is skipped (compressed sizes are
// not predictable from the shape) and the deterministic re-encode carries
// the comparison alone. A lossy compressor rejects outright: its
// re-encode cannot distinguish the checkpointed value from any later
// value in the same quantization bucket, so content validation would let
// survivors keep post-checkpoint state and dodge the rollback — under a
// lossy codec every place reloads, keeping the post-restore state the
// checkpoint state (up to the error bound), never a mixture of
// checkpoint and newer survivor state.
func validateRetainedVector(ctx *apgas.Ctx, s *snapshot.Snapshot, key, ownerIdx int, v la.Vector, comp codec.Compressor) bool {
	if comp != nil && comp.Spec().Mode == codec.CompressLossy {
		return false
	}
	sum, size, err := s.Digest(ctx, key, ownerIdx)
	if err != nil || (comp == nil && size != codec.SizeFloat64s(len(v))) {
		return false
	}
	enc := encodeVectorPooled(v, comp)
	ok := enc.Len() == size && enc.Sum() == sum
	codec.PutBuffer(enc.Bytes())
	return ok
}

// validateRetainedBlock checks a surviving place's in-memory block
// against the snapshot digest for key: sizes first (skipped under
// compression), then a local re-encode whose CRC must match the stored
// sum. Lossy codecs reject outright — see validateRetainedVector.
func validateRetainedBlock(ctx *apgas.Ctx, s *snapshot.Snapshot, key, ownerIdx int, b *block.MatrixBlock, comp codec.Compressor) bool {
	if comp != nil && comp.Spec().Mode == codec.CompressLossy {
		return false
	}
	sum, size, err := s.Digest(ctx, key, ownerIdx)
	if err != nil || (comp == nil && size != b.EncodedSize()) {
		return false
	}
	enc := codec.NewEncoderC(b.EncodedSize(), comp)
	b.EncodeInto(&enc)
	ok := enc.Len() == size && enc.Sum() == sum
	codec.PutBuffer(enc.Bytes())
	return ok
}

// decodeVectorInto deserializes a vector fragment into dst's backing
// storage when the lengths match (the same-segmentation restore path),
// avoiding a fresh allocation.
func decodeVectorInto(dst la.Vector, b []byte, comp codec.Compressor) (la.Vector, error) {
	vs, _, err := codec.Float64sIntoC(comp, dst, b)
	if err != nil {
		return nil, fmt.Errorf("dist: decode vector: %w", err)
	}
	return vs, nil
}

// decodeVector deserializes a vector fragment.
func decodeVector(b []byte, comp codec.Compressor) (la.Vector, error) {
	vs, _, err := codec.Float64sIntoC(comp, nil, b)
	if err != nil {
		return nil, fmt.Errorf("dist: decode vector: %w", err)
	}
	return vs, nil
}

// sameGroups reports whether two objects share a place group.
func sameGroups(a, b apgas.PlaceGroup) bool { return a.Equal(b) }

package dist

import (
	"bytes"
	"math"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/obs"
)

var (
	losslessSpec = codec.Spec{Mode: codec.CompressLossless}
	lossySpec    = codec.Spec{Mode: codec.CompressLossy, ErrorBound: 1e-6}
)

// newCompressedRT is newRT with a runtime-wide compression policy.
func newCompressedRT(t *testing.T, places int, spec codec.Spec, extra ...apgas.Option) (*apgas.Runtime, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts := append([]apgas.Option{
		apgas.WithPlaces(places),
		apgas.WithResilient(true),
		apgas.WithObs(reg),
		apgas.WithCompression(spec),
	}, extra...)
	rt, err := apgas.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt, reg
}

// TestCompressMetaRoundTrip pins the descriptor prefix format: mode none
// adds nothing (the pre-compression descriptor bytes, so legacy
// snapshots and `-compress none` interoperate), other modes round-trip
// through split, legacy descriptors pass through untouched, and a
// corrupt prefix is rejected rather than misread as object metadata.
func TestCompressMetaRoundTrip(t *testing.T) {
	legacy := codec.AppendInt(codec.AppendInt(nil, 12), 4) // plausible object meta
	if got := appendCompressMeta(append([]byte(nil), legacy...), codec.Spec{}); !bytes.Equal(got, legacy) {
		t.Fatal("mode none changed the descriptor bytes")
	}
	for _, spec := range []codec.Spec{losslessSpec, lossySpec} {
		meta := appendCompressMeta(nil, spec)
		meta = append(meta, legacy...)
		got, rest, err := splitCompressMeta(meta)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if got != spec {
			t.Fatalf("spec round-trip: got %+v, want %+v", got, spec)
		}
		if !bytes.Equal(rest, legacy) {
			t.Fatalf("%v: object meta mangled: %x", spec, rest)
		}
	}
	// A legacy descriptor (no sentinel) splits to the zero spec with the
	// bytes untouched; so do empty and short descriptors.
	for _, meta := range [][]byte{legacy, nil, {0x01}} {
		spec, rest, err := splitCompressMeta(meta)
		if err != nil || !spec.IsZero() || !bytes.Equal(rest, meta) {
			t.Fatalf("legacy split(%x) = %+v, %x, %v", meta, spec, rest, err)
		}
	}
	// Sentinel followed by garbage must error, not fall back silently.
	full := appendCompressMeta(nil, lossySpec)
	for cut := codec.SizeInt; cut < len(full); cut++ {
		if _, _, err := splitCompressMeta(full[:cut]); err == nil {
			t.Fatalf("truncated prefix (%d bytes) accepted", cut)
		}
	}
	// A prefix advertising mode none is contradictory.
	bad := codec.AppendInt(nil, compressMetaSentinel)
	bad = codec.AppendInt(bad, int(codec.CompressNone))
	bad = codec.AppendUint64(bad, 0)
	if _, _, err := splitCompressMeta(bad); err == nil {
		t.Fatal("prefixed mode-none descriptor accepted")
	}
}

// TestSnapshotCompressionPerClass runs snapshot → scribble → restore for
// each distributed class under both compression modes. Lossless must be
// bit-exact; lossy (opted in) must stay within the error bound; lossy
// without the per-object opt-in silently degrades to lossless and stays
// bit-exact.
func TestSnapshotCompressionPerClass(t *testing.T) {
	type variant struct {
		name    string
		spec    codec.Spec
		optIn   bool
		withinE float64 // 0 means bit-exact required
	}
	variants := []variant{
		{"lossless", losslessSpec, false, 0},
		{"lossyOptIn", lossySpec, true, lossySpec.ErrorBound},
		{"lossyNoOptIn", lossySpec, false, 0},
	}
	for _, v := range variants {
		t.Run("DupVector/"+v.name, func(t *testing.T) {
			rt, _ := newCompressedRT(t, 3, v.spec)
			dv, err := MakeDupVector(rt, 300, rt.World())
			if err != nil {
				t.Fatal(err)
			}
			dv.AllowLossyCheckpoint(v.optIn)
			if err := dv.Init(func(i int) float64 { return math.Sin(float64(i)) }); err != nil {
				t.Fatal(err)
			}
			want := readDupAt(t, dv, 0)
			s, err := dv.MakeSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Destroy()
			if err := dv.AllApply(func(local la.Vector) { local.Fill(-7) }); err != nil {
				t.Fatal(err)
			}
			if err := dv.RestoreSnapshot(s); err != nil {
				t.Fatal(err)
			}
			for idx := 0; idx < 3; idx++ {
				checkVector(t, readDupAt(t, dv, idx), want, v.withinE)
			}
		})
		t.Run("DistVector/"+v.name, func(t *testing.T) {
			rt, _ := newCompressedRT(t, 3, v.spec)
			dv, err := MakeDistVector(rt, 301, rt.World())
			if err != nil {
				t.Fatal(err)
			}
			dv.AllowLossyCheckpoint(v.optIn)
			if err := dv.Init(func(i int) float64 { return math.Cos(float64(i) / 3) }); err != nil {
				t.Fatal(err)
			}
			want, err := dv.ToVector()
			if err != nil {
				t.Fatal(err)
			}
			s, err := dv.MakeSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Destroy()
			if err := dv.Scale(0); err != nil {
				t.Fatal(err)
			}
			if err := dv.RestoreSnapshot(s); err != nil {
				t.Fatal(err)
			}
			got, err := dv.ToVector()
			if err != nil {
				t.Fatal(err)
			}
			checkVector(t, got, want, v.withinE)
		})
		for _, kind := range []block.Kind{block.Dense, block.Sparse} {
			kname := "Dense"
			if kind == block.Sparse {
				kname = "Sparse"
			}
			t.Run("DistBlockMatrix"+kname+"/"+v.name, func(t *testing.T) {
				rt, _ := newCompressedRT(t, 4, v.spec)
				m, err := MakeDistBlockMatrix(rt, kind, 24, 24, 2, 2, 2, 2, rt.World())
				if err != nil {
					t.Fatal(err)
				}
				m.AllowLossyCheckpoint(v.optIn)
				if kind == block.Dense {
					err = m.InitDense(func(i, j int) float64 { return math.Sin(float64(3*i + j)) })
				} else {
					err = m.InitSparseColumns(func(j int) ([]int, []float64) {
						return []int{j, (j + 7) % 24}, []float64{1 + float64(j)/24, -0.5}
					})
				}
				if err != nil {
					t.Fatal(err)
				}
				want, err := m.ToDense()
				if err != nil {
					t.Fatal(err)
				}
				s, err := m.MakeSnapshot()
				if err != nil {
					t.Fatal(err)
				}
				defer s.Destroy()
				if err := m.Scale(0); err != nil {
					t.Fatal(err)
				}
				if err := m.RestoreSnapshot(s); err != nil {
					t.Fatal(err)
				}
				got, err := m.ToDense()
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 24; i++ {
					for j := 0; j < 24; j++ {
						g, w := got.At(i, j), want.At(i, j)
						if v.withinE == 0 && g != w {
							t.Fatalf("(%d,%d) = %v, want exactly %v", i, j, g, w)
						}
						if math.Abs(g-w) > v.withinE {
							t.Fatalf("(%d,%d) = %v, want %v within %g", i, j, g, w, v.withinE)
						}
					}
				}
			})
		}
	}
}

// checkVector asserts got equals want bit-exactly (eps 0) or within eps.
func checkVector(t *testing.T, got, want la.Vector, eps float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if eps == 0 {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("element %d = %v, want bit-identical %v", i, got[i], want[i])
			}
		} else if math.Abs(got[i]-want[i]) > eps {
			t.Fatalf("element %d = %v, want %v within %g", i, got[i], want[i], eps)
		}
	}
}

// TestCompressedDeltaCarryForward checks the delta layer composes with
// compression: unchanged fragments carry (the content comparison runs on
// compressed frames), changed fragments re-ship, and the delta chain
// restores exactly after the baselines are destroyed.
func TestCompressedDeltaCarryForward(t *testing.T) {
	rt, reg := newCompressedRT(t, 4, losslessSpec)
	v, err := MakeDistVector(rt, 4000, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return math.Sin(float64(i) / 100) }); err != nil {
		t.Fatal(err)
	}
	s1, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := v.MakeDeltaSnapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 4 {
		t.Fatalf("delta.carried = %d, want 4", got)
	}
	if err := v.Scale(2); err != nil {
		t.Fatal(err)
	}
	s3, err := v.MakeDeltaSnapshot(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 4 {
		t.Fatalf("delta.saved = %d, want 4", got)
	}
	// Compression actually engaged: the traffic counters saw fewer bytes
	// out than in.
	in, out := reg.Counter("snapshot.compress.bytes_in").Value(), reg.Counter("snapshot.compress.bytes_out").Value()
	if in == 0 || out >= in {
		t.Fatalf("compress bytes_out/bytes_in = %d/%d, want a reduction", out, in)
	}
	s1.Destroy()
	s2.Destroy()
	defer s3.Destroy()
	if err := v.Scale(0); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshot(s3); err != nil {
		t.Fatal(err)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := 2 * math.Sin(float64(i)/100); got[i] != want {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// TestCompressedPartialRestoreLossless: under a lossless codec the
// survivor validation still works — the deterministic re-encode of a
// survivor's fragment matches the stored compressed CRC, so survivors
// keep their state and only the replacement loads.
func TestCompressedPartialRestoreLossless(t *testing.T) {
	rt, reg := newCompressedRT(t, 5, losslessSpec)
	pg := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(2), rt.Place(3)}
	v, err := MakeDistVector(rt, 2000, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return math.Sin(float64(i) / 10) }); err != nil {
		t.Fatal(err)
	}
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(4), rt.Place(2), rt.Place(3)}
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshotPartial(s, []apgas.Place{rt.Place(1)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != 3 {
		t.Errorf("partial.kept = %d, want 3", got)
	}
	if got := reg.Counter("dist.restore.partial.loaded").Value(); got != 1 {
		t.Errorf("partial.loaded = %d, want 1", got)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := math.Sin(float64(i) / 10); got[i] != want {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// TestCompressedPartialRestoreLossyReloadsAll: a lossy codec cannot
// content-validate survivors (any state in the same quantization bucket
// re-encodes identically), so the partial restore must reject retained
// fragments and reload every place from the checkpoint — otherwise a
// rollback could keep post-checkpoint survivor state (the bug the
// compress benchmark originally exposed).
func TestCompressedPartialRestoreLossyReloadsAll(t *testing.T) {
	rt, reg := newCompressedRT(t, 5, lossySpec)
	pg := apgas.PlaceGroup{rt.Place(0), rt.Place(1), rt.Place(2), rt.Place(3)}
	v, err := MakeDistVector(rt, 2000, pg)
	if err != nil {
		t.Fatal(err)
	}
	v.AllowLossyCheckpoint(true)
	if err := v.Init(func(i int) float64 { return math.Sin(float64(i) / 10) }); err != nil {
		t.Fatal(err)
	}
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	// Survivors advance beyond the checkpoint — but by less than the
	// quantization bucket, the adversarial case for content validation.
	err = v.ApplyLocal(func(seg la.Vector, off int) {
		for i := range seg {
			seg[i] += 1e-9
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(4), rt.Place(2), rt.Place(3)}
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshotPartial(s, []apgas.Place{rt.Place(1)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dist.restore.partial.kept").Value(); got != 0 {
		t.Errorf("partial.kept = %d, want 0 under a lossy codec", got)
	}
	if got := reg.Counter("dist.restore.partial.loaded").Value(); got != 4 {
		t.Errorf("partial.loaded = %d, want 4 under a lossy codec", got)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	// Every element is the checkpointed value up to the bound — not the
	// survivors' advanced value, which would show as a consistent +1e-9
	// only on kept segments.
	for i := range got {
		if want := math.Sin(float64(i) / 10); math.Abs(got[i]-want) > lossySpec.ErrorBound {
			t.Fatalf("restored[%d] = %v, want %v within %g", i, got[i], want, lossySpec.ErrorBound)
		}
	}
}

// TestCompressedErasureRestore composes compression with Reed-Solomon
// snapshot placement: the shards are cut from compressed frames, a place
// loss stays within the parity budget, and the restore is bit-exact.
func TestCompressedErasureRestore(t *testing.T) {
	rt, _ := newCompressedRT(t, 5, losslessSpec, apgas.WithStorePolicy(apgas.ErasureStore(3, 2)))
	v, err := MakeDupVector(rt, 500, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return math.Sin(float64(i) / 7) }); err != nil {
		t.Fatal(err)
	}
	want := readDupAt(t, v, 0)
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	if err := v.Remake(rt.World()); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < rt.World().Size(); idx++ {
		checkVector(t, readDupAt(t, v, idx), want, 0)
	}
}

// TestPerObjectCompressionOverride: an object-level SetCompression beats
// the runtime policy, and descriptors written under `none` stay
// byte-identical whether or not the compression seam is configured
// elsewhere in the runtime.
func TestPerObjectCompressionOverride(t *testing.T) {
	rt, reg := newCompressedRT(t, 3, losslessSpec)
	v, err := MakeDistVector(rt, 1000, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.SetCompression(codec.Spec{}); err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(i) }); err != nil {
		t.Fatal(err)
	}
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	// The override disabled compression for this object: no compressed
	// bytes were accounted.
	if got := reg.Counter("snapshot.compress.bytes_in").Value(); got != 0 {
		t.Fatalf("compress.bytes_in = %d, want 0 with a none override", got)
	}
	if err := v.SetCompression(codec.Spec{Mode: codec.CompressLossy, ErrorBound: -1}); err == nil {
		t.Fatal("SetCompression accepted an invalid spec")
	}
	if err := v.Scale(0); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, err := v.ToVector()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("restored[%d] = %v", i, got[i])
		}
	}
}

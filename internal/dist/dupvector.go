package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// DupVector duplicates a length-n vector at every place of a group
// (x10.matrix.dist.DupVector). Iterative solvers keep their small model
// vectors duplicated so that large distributed operands can consume them
// without communication; after local updates, Sync re-broadcasts the root
// copy (paper Listing 2, line 17).
type DupVector struct {
	rt  *apgas.Runtime
	n   int
	pg  apgas.PlaceGroup
	plh apgas.PlaceLocalHandle[la.Vector]
}

// MakeDupVector creates a zeroed duplicated vector of length n over pg
// (the factory method DupVector.make).
func MakeDupVector(rt *apgas.Runtime, n int, pg apgas.PlaceGroup) (*DupVector, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: MakeDupVector(%d): %w", n, ErrShapeMismatch)
	}
	if pg.Size() == 0 {
		return nil, fmt.Errorf("dist: MakeDupVector: empty place group")
	}
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) la.Vector {
		return la.NewVector(n)
	})
	if err != nil {
		return nil, err
	}
	return &DupVector{rt: rt, n: n, pg: pg.Clone(), plh: plh}, nil
}

// Size returns the vector length.
func (v *DupVector) Size() int { return v.n }

// Group returns the place group the vector is duplicated over.
func (v *DupVector) Group() apgas.PlaceGroup { return v.pg }

// Local returns the calling place's duplicate.
func (v *DupVector) Local(ctx *apgas.Ctx) la.Vector { return v.plh.Local(ctx) }

// Init sets every duplicate to the values of fn(i), identically at every
// place (no communication: fn is evaluated redundantly, which is how GML
// initializes duplicated objects deterministically).
func (v *DupVector) Init(fn func(i int) float64) error {
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		local := v.plh.Local(ctx)
		for i := range local {
			local[i] = fn(i)
		}
	})
}

// AllApply runs fn on the duplicate at every place. fn must be
// deterministic so the duplicates stay identical (the standard GML idiom
// for duplicated-operand arithmetic: every place redundantly performs the
// same cheap update instead of broadcasting).
func (v *DupVector) AllApply(fn func(local la.Vector)) error {
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		fn(v.plh.Local(ctx))
	})
}

// ZipAll runs fn(va, vb) on the duplicates of v and w at every place of
// their shared group. Both vectors must be duplicated over the same group.
// fn must be deterministic so the duplicates stay identical — the GML
// idiom for duplicated-operand arithmetic (e.g. w += α·p in CG).
func (v *DupVector) ZipAll(w *DupVector, fn func(a, b la.Vector)) error {
	if !sameGroups(v.pg, w.pg) {
		return fmt.Errorf("dist: ZipAll: %w", ErrGroupMismatch)
	}
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		fn(v.plh.Local(ctx), w.plh.Local(ctx))
	})
}

// Dot computes the inner product of two duplicated vectors. Because both
// operands are duplicated, the product is evaluated locally at the group
// root without communication.
func (v *DupVector) Dot(w *DupVector) (float64, error) {
	if !sameGroups(v.pg, w.pg) {
		return 0, fmt.Errorf("dist: DupVector.Dot: %w", ErrGroupMismatch)
	}
	if v.n != w.n {
		return 0, fmt.Errorf("dist: DupVector.Dot %d vs %d: %w", v.n, w.n, ErrShapeMismatch)
	}
	var out float64
	err := v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			out = v.plh.Local(c).Dot(w.plh.Local(c))
		})
	})
	return out, err
}

// RootApply runs fn on the root (group index 0) duplicate only. Callers
// follow up with Sync to publish the change to the other places.
func (v *DupVector) RootApply(fn func(local la.Vector)) error {
	return v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			fn(v.plh.Local(c))
		})
	})
}

// Root reads the root duplicate into a fresh vector (for result
// extraction by the main activity).
func (v *DupVector) Root() (la.Vector, error) {
	var out la.Vector
	err := v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			out = v.plh.Local(c).Clone()
		})
	})
	return out, err
}

// Sync broadcasts the root copy to every other place of the group (paper
// Listing 2: P.sync()) along a binomial tree over the group index: the
// root hands the upper half of the index range to its midpoint, which
// relays within that half concurrently while the root recurses on the
// lower half. Every edge charges the network model for one full payload,
// so the total volume matches the flat broadcast but the critical path is
// O(log P) sends instead of O(P).
func (v *DupVector) Sync() error {
	if v.pg.Size() <= 1 {
		return nil
	}
	return v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(root *apgas.Ctx) {
			src := v.plh.Local(root).Clone()
			v.bcast(root, 0, v.pg.Size(), src)
		})
	})
}

// bcast relays src — already present at group index idx — to the group
// index range [idx, idx+span). Each iteration peels off the upper half of
// the remaining range and forwards it to that half's first index, whose
// async relays the sub-range in parallel with the sender's next peels.
func (v *DupVector) bcast(c *apgas.Ctx, idx, span int, src la.Vector) {
	for span > 1 {
		h := span / 2
		mid := idx + span - h
		p := v.pg[mid]
		sub := src
		c.Transfer(p, sub.Bytes())
		c.AsyncAt(p, func(cc *apgas.Ctx) {
			local := v.plh.Local(cc).CopyFrom(sub)
			v.bcast(cc, mid, h, local)
		})
		span -= h
	}
}

// Remake reallocates the vector (zeroed) over a new place group (paper
// section IV-A: remake(newPlaces)). The old storage on surviving places is
// released.
func (v *DupVector) Remake(newPG apgas.PlaceGroup) error {
	if newPG.Size() == 0 {
		return fmt.Errorf("dist: DupVector.Remake: empty place group")
	}
	v.plh.Destroy(v.pg)
	plh, err := apgas.NewPlaceLocalHandle(v.rt, newPG, func(ctx *apgas.Ctx, idx int) la.Vector {
		return la.NewVector(v.n)
	})
	if err != nil {
		return err
	}
	v.pg = newPG.Clone()
	v.plh = plh
	return nil
}

// MakeSnapshot implements snapshot.Snapshottable. All duplicates are
// identical, so one logical copy is saved: the group root stores it (with
// the usual next-place backup). Saving P redundant copies would make
// checkpointing a duplicated object O(P²) in data volume — the paper's
// checkpoint times (Table III: PageRank, whose mutable state is one
// DupVector, checkpoints in a fraction of LinReg's time) show the
// implementation saves duplicated state once.
func (v *DupVector) MakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := snapshot.New(v.rt, v.pg)
	if err != nil {
		return nil, err
	}
	err = v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			saveVector(c, s, 0, v.plh.Local(c))
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	return s, nil
}

// RestoreSnapshot implements snapshot.Snapshottable: every place of the
// vector's *current* group (which may be smaller, equal, or — with
// elastic replacement — differently composed than the snapshot group)
// concurrently loads a duplicate (paper section IV-B2).
func (v *DupVector) RestoreSnapshot(s *snapshot.Snapshot) error {
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		data, err := s.Load(ctx, 0, 0)
		if err != nil {
			apgas.Throw(err)
		}
		vec, err := decodeVector(data)
		if err != nil {
			apgas.Throw(err)
		}
		if len(vec) != v.n {
			apgas.Throw(fmt.Errorf("dist: DupVector restore length %d, want %d", len(vec), v.n))
		}
		v.plh.Local(ctx).CopyFrom(vec)
	})
}

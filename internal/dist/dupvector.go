package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/snapshot"
)

// DupVector duplicates a length-n vector at every place of a group
// (x10.matrix.dist.DupVector). Iterative solvers keep their small model
// vectors duplicated so that large distributed operands can consume them
// without communication; after local updates, Sync re-broadcasts the root
// copy (paper Listing 2, line 17).
type DupVector struct {
	rt  *apgas.Runtime
	n   int
	pg  apgas.PlaceGroup
	plh apgas.PlaceLocalHandle[la.Vector]
	// ver is the logical content version for delta checkpointing. The
	// snapshot stores one copy (the root's), so ver tracks the logical
	// value: every collective that changes it bumps ver (MarkDirty for
	// direct Local mutation). Sync republishes the root value without
	// changing it, so it does not bump.
	ver uint64
	// retained[idx] marks a duplicate whose storage survived a Remake at
	// the same place; partial restore validates one survivor against the
	// checkpoint digest and re-broadcasts from it instead of loading at
	// every place.
	retained []bool
	// compressible carries the per-object checkpoint-compression
	// override and lossy opt-in (SetCompression, AllowLossyCheckpoint).
	compressible
}

// MakeDupVector creates a zeroed duplicated vector of length n over pg
// (the factory method DupVector.make).
func MakeDupVector(rt *apgas.Runtime, n int, pg apgas.PlaceGroup) (*DupVector, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: MakeDupVector(%d): %w", n, ErrShapeMismatch)
	}
	if pg.Size() == 0 {
		return nil, fmt.Errorf("dist: MakeDupVector: empty place group")
	}
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) la.Vector {
		return la.NewVector(n)
	})
	if err != nil {
		return nil, err
	}
	return &DupVector{rt: rt, n: n, pg: pg.Clone(), plh: plh}, nil
}

// Size returns the vector length.
func (v *DupVector) Size() int { return v.n }

// Group returns the place group the vector is duplicated over.
func (v *DupVector) Group() apgas.PlaceGroup { return v.pg }

// Local returns the calling place's duplicate. Code that writes into it
// directly must call MarkDirty, or delta checkpoints fall back to (and
// depend on) the CRC comparison.
func (v *DupVector) Local(ctx *apgas.Ctx) la.Vector { return v.plh.Local(ctx) }

// MarkDirty records that the vector's logical value was mutated outside
// its own collectives, forcing the next delta checkpoint to re-examine
// it.
func (v *DupVector) MarkDirty() { v.ver++ }

// Init sets every duplicate to the values of fn(i), identically at every
// place (no communication: fn is evaluated redundantly, which is how GML
// initializes duplicated objects deterministically).
func (v *DupVector) Init(fn func(i int) float64) error {
	v.ver++
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		local := v.plh.Local(ctx)
		for i := range local {
			local[i] = fn(i)
		}
	})
}

// AllApply runs fn on the duplicate at every place. fn must be
// deterministic so the duplicates stay identical (the standard GML idiom
// for duplicated-operand arithmetic: every place redundantly performs the
// same cheap update instead of broadcasting).
func (v *DupVector) AllApply(fn func(local la.Vector)) error {
	v.ver++
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		fn(v.plh.Local(ctx))
	})
}

// ZipAll runs fn(va, vb) on the duplicates of v and w at every place of
// their shared group. Both vectors must be duplicated over the same group.
// fn must be deterministic so the duplicates stay identical — the GML
// idiom for duplicated-operand arithmetic (e.g. w += α·p in CG).
func (v *DupVector) ZipAll(w *DupVector, fn func(a, b la.Vector)) error {
	if !sameGroups(v.pg, w.pg) {
		return fmt.Errorf("dist: ZipAll: %w", ErrGroupMismatch)
	}
	v.ver++
	w.ver++
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		fn(v.plh.Local(ctx), w.plh.Local(ctx))
	})
}

// Dot computes the inner product of two duplicated vectors. Because both
// operands are duplicated, the product is evaluated locally at the group
// root without communication.
func (v *DupVector) Dot(w *DupVector) (float64, error) {
	if !sameGroups(v.pg, w.pg) {
		return 0, fmt.Errorf("dist: DupVector.Dot: %w", ErrGroupMismatch)
	}
	if v.n != w.n {
		return 0, fmt.Errorf("dist: DupVector.Dot %d vs %d: %w", v.n, w.n, ErrShapeMismatch)
	}
	var out float64
	err := v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			out = v.plh.Local(c).Dot(w.plh.Local(c))
		})
	})
	return out, err
}

// RootApply runs fn on the root (group index 0) duplicate only. Callers
// follow up with Sync to publish the change to the other places.
func (v *DupVector) RootApply(fn func(local la.Vector)) error {
	v.ver++
	return v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			fn(v.plh.Local(c))
		})
	})
}

// Root reads the root duplicate into a fresh vector (for result
// extraction by the main activity).
func (v *DupVector) Root() (la.Vector, error) {
	var out la.Vector
	err := v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			out = v.plh.Local(c).Clone()
		})
	})
	return out, err
}

// Sync broadcasts the root copy to every other place of the group (paper
// Listing 2: P.sync()) along a binomial tree over the group index: the
// root hands the upper half of the index range to its midpoint, which
// relays within that half concurrently while the root recurses on the
// lower half. Every edge charges the network model for one full payload,
// so the total volume matches the flat broadcast but the critical path is
// O(log P) sends instead of O(P).
func (v *DupVector) Sync() error {
	if v.pg.Size() <= 1 {
		return nil
	}
	return v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(root *apgas.Ctx) {
			src := v.plh.Local(root).Clone()
			v.bcast(root, 0, v.pg.Size(), src)
		})
	})
}

// bcast relays src — already present at group index idx — to the group
// index range [idx, idx+span). Each iteration peels off the upper half of
// the remaining range and forwards it to that half's first index, whose
// async relays the sub-range in parallel with the sender's next peels.
func (v *DupVector) bcast(c *apgas.Ctx, idx, span int, src la.Vector) {
	for span > 1 {
		h := span / 2
		mid := idx + span - h
		p := v.pg[mid]
		sub := src
		c.Transfer(p, sub.Bytes())
		c.AsyncAt(p, func(cc *apgas.Ctx) {
			local := v.plh.Local(cc).CopyFrom(sub)
			v.warm(cc, local)
			v.bcast(cc, mid, h, local)
		})
		span -= h
	}
}

// bcastList is bcast over an arbitrary list of group indices: src is
// already present at idxs[0] and is relayed to the remaining indices
// along the same binomial halving, O(log n) critical-path rounds. Used
// by the partial restore to reach only the places that lost their
// duplicate.
func (v *DupVector) bcastList(c *apgas.Ctx, idxs []int, src la.Vector) {
	for len(idxs) > 1 {
		h := len(idxs) / 2
		rest := idxs[len(idxs)-h:]
		p := v.pg[rest[0]]
		sub := src
		c.Transfer(p, sub.Bytes())
		c.AsyncAt(p, func(cc *apgas.Ctx) {
			local := v.plh.Local(cc).CopyFrom(sub)
			v.bcastList(cc, rest, local)
		})
		idxs = idxs[:len(idxs)-h]
	}
}

// Remake reallocates the vector over a new place group (paper section
// IV-A: remake(newPlaces)). Duplicates at places present in both groups
// are carried over with their contents and marked retained, so a
// following partial restore can validate one survivor against the
// checkpoint and re-broadcast from it; duplicates at new places come up
// zeroed. The caller is expected to restore or overwrite the vector
// before reading it.
func (v *DupVector) Remake(newPG apgas.PlaceGroup) error {
	if newPG.Size() == 0 {
		return fmt.Errorf("dist: DupVector.Remake: empty place group")
	}
	oldPLH, oldPG := v.plh, v.pg
	retained := make([]bool, newPG.Size())
	retCtr := v.rt.Obs().Counter("dist.remake.segments.retained")
	plh, err := apgas.NewPlaceLocalHandle(v.rt, newPG, func(ctx *apgas.Ctx, idx int) la.Vector {
		if old, ok := oldPLH.TryLocal(ctx); ok && len(old) == v.n {
			retained[idx] = true
			retCtr.Inc()
			return old
		}
		return la.NewVector(v.n)
	})
	if err != nil {
		return err
	}
	oldPLH.Destroy(oldPG)
	v.pg = newPG.Clone()
	v.plh = plh
	v.retained = retained
	return nil
}

// MakeSnapshot implements snapshot.Snapshottable. All duplicates are
// identical, so one logical copy is saved: the group root stores it (with
// the usual next-place backup). Saving P redundant copies would make
// checkpointing a duplicated object O(P²) in data volume — the paper's
// checkpoint times (Table III: PageRank, whose mutable state is one
// DupVector, checkpoints in a fraction of LinReg's time) show the
// implementation saves duplicated state once.
func (v *DupVector) MakeSnapshot() (*snapshot.Snapshot, error) {
	s, err := snapshot.New(v.rt, v.pg)
	if err != nil {
		return nil, err
	}
	comp, spec := v.newCompressor(v.rt)
	if meta := appendCompressMeta(nil, spec); len(meta) > 0 {
		s.SetMeta(meta)
	}
	err = v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			saveVector(c, s, 0, v.plh.Local(c), comp)
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// MakeDeltaSnapshot implements snapshot.DirtyTracker: the single stored
// copy is carried forward by reference when the vector's version is
// unchanged since prev (or its bytes compare equal). Falls back to a
// full snapshot when prev does not cover the current place group, or
// was written under a different compression policy.
func (v *DupVector) MakeDeltaSnapshot(prev *snapshot.Snapshot) (*snapshot.Snapshot, error) {
	if prev == nil || !prev.Group().Equal(v.pg) {
		return v.MakeSnapshot()
	}
	comp, spec := v.newCompressor(v.rt)
	if prevSpec, _, err := splitCompressMeta(prev.Meta()); err != nil || prevSpec != spec {
		return v.MakeSnapshot()
	}
	s, err := snapshot.New(v.rt, v.pg)
	if err != nil {
		return nil, err
	}
	if meta := appendCompressMeta(nil, spec); len(meta) > 0 {
		s.SetMeta(meta)
	}
	ver := v.ver
	err = v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[0], func(c *apgas.Ctx) {
			saveVectorDelta(c, s, prev, 0, ver, v.plh.Local(c), comp)
		})
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	noteLossyErr(s, comp)
	return s, nil
}

// RestoreSnapshot implements snapshot.Snapshottable: every place of the
// vector's *current* group (which may be smaller, equal, or — with
// elastic replacement — differently composed than the snapshot group)
// concurrently loads a duplicate (paper section IV-B2).
func (v *DupVector) RestoreSnapshot(s *snapshot.Snapshot) error {
	// The logical value rewinds to the checkpoint, so the version must move:
	// worker-side kernel caches may hold the diverged pre-restore content
	// under the current version, and the next delta checkpoint must
	// re-examine the vector either way.
	v.ver++
	comp, _, err := compressorForMeta(s.Meta())
	if err != nil {
		return fmt.Errorf("dist: DupVector restore meta: %w", err)
	}
	return apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
		if idx < len(v.retained) {
			v.retained[idx] = false
		}
		data, err := s.Load(ctx, 0, 0)
		if err != nil {
			apgas.Throw(err)
		}
		vec, err := decodeVector(data, comp)
		if err != nil {
			apgas.Throw(err)
		}
		if len(vec) != v.n {
			apgas.Throw(fmt.Errorf("dist: DupVector restore length %d, want %d", len(vec), v.n))
		}
		v.plh.Local(ctx).CopyFrom(vec)
	})
}

// RestoreSnapshotPartial implements snapshot.PartialRestorer: duplicates
// retained through the preceding Remake are validated against the
// checkpoint digest; if at least one survivor matches, it alone supplies
// the data, re-broadcast along a binomial tree to just the places that
// lost (or diverged from) the checkpointed value — no snapshot loads at
// all. With no valid survivor, falls back to the full restore.
func (v *DupVector) RestoreSnapshotPartial(s *snapshot.Snapshot, dead []apgas.Place) error {
	// Same version bump as RestoreSnapshot (which this may fall back to):
	// the rewind invalidates any kernel-cache entry shipped at the old
	// version.
	v.ver++
	comp, _, err := compressorForMeta(s.Meta())
	if err != nil {
		return fmt.Errorf("dist: DupVector restore meta: %w", err)
	}
	valid := make([]bool, v.pg.Size())
	if len(v.retained) == v.pg.Size() {
		err := apgas.ForEachPlace(v.rt, v.pg, func(ctx *apgas.Ctx, idx int) {
			if !v.retained[idx] {
				return
			}
			v.retained[idx] = false
			local := v.plh.Local(ctx)
			valid[idx] = len(local) == v.n && validateRetainedVector(ctx, s, 0, 0, local, comp)
		})
		if err != nil {
			return err
		}
	}
	src := -1
	for idx, ok := range valid {
		if ok {
			src = idx
			break
		}
	}
	if src < 0 {
		return v.RestoreSnapshot(s)
	}
	reg := v.rt.Obs()
	idxs := []int{src}
	for idx, ok := range valid {
		if ok {
			reg.Counter("dist.restore.partial.kept").Inc()
			reg.Counter("dist.restore.partial.bytes.kept").Add(int64(codec.SizeFloat64s(v.n)))
		} else {
			idxs = append(idxs, idx)
		}
	}
	if len(idxs) == 1 {
		return nil
	}
	reg.Counter("dist.restore.partial.bcast").Add(int64(len(idxs) - 1))
	return v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[src], func(c *apgas.Ctx) {
			v.bcastList(c, idxs, v.plh.Local(c).Clone())
		})
	})
}

package dist

import (
	"fmt"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/snapshot"
)

// benchBlockMatrix builds the benchmark workload: a 1024x1024 matrix cut
// into four 512x512 blocks over four places (one block per place), the
// "dense 512x512 block set" checkpoint target of the checkpoint fast-path
// work. Sparse uses the same geometry with ~1% density.
func benchBlockMatrix(b *testing.B, kind block.Kind) (*apgas.Runtime, *DistBlockMatrix) {
	b.Helper()
	rt, err := apgas.New(apgas.WithPlaces(4), apgas.WithResilient(true))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Shutdown)
	m, err := MakeDistBlockMatrix(rt, kind, 1024, 1024, 2, 2, 2, 2, rt.World())
	if err != nil {
		b.Fatal(err)
	}
	if kind == block.Dense {
		err = m.InitDense(func(i, j int) float64 { return float64(i ^ j) })
	} else {
		err = m.InitSparseColumns(func(j int) (rows []int, vals []float64) {
			for i := j % 97; i < 1024; i += 97 {
				rows = append(rows, i)
				vals = append(vals, float64(i+j))
			}
			return rows, vals
		})
	}
	if err != nil {
		b.Fatal(err)
	}
	return rt, m
}

func BenchmarkSnapshotSave(b *testing.B) {
	for _, kind := range []block.Kind{block.Dense, block.Sparse} {
		for _, backup := range []bool{true, false} {
			name := fmt.Sprintf("%s/backup=%v", kind, backup)
			b.Run(name, func(b *testing.B) {
				_, m := benchBlockMatrix(b, kind)
				payload, err := m.Bytes()
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(payload))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := m.MakeSnapshotWithOptions(snapshot.Options{DisableBackup: !backup})
					if err != nil {
						b.Fatal(err)
					}
					s.Destroy()
				}
			})
		}
	}
}

// BenchmarkSnapshotSaveRestore measures the full checkpoint+recover cycle
// on the same-grid path, where load-time CRC verification dominates the
// restore side.
func BenchmarkSnapshotSaveRestore(b *testing.B) {
	_, m := benchBlockMatrix(b, block.Dense)
	payload, err := m.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(payload))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := m.MakeSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.RestoreSnapshot(s); err != nil {
			b.Fatal(err)
		}
		s.Destroy()
	}
}

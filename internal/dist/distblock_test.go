package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
)

// denseInit is a distribution-independent element generator.
func denseInit(i, j int) float64 {
	return float64(i*31+j*17%13) + 0.25
}

// sparseColInit deterministically generates a few nonzeros per column.
func sparseColInit(n int) func(j int) ([]int, []float64) {
	return func(j int) ([]int, []float64) {
		rng := la.NewRNG(uint64(j)*0x9e37 + 11)
		d := 1 + rng.Intn(3)
		rows := make([]int, 0, d)
		seen := map[int]bool{}
		for len(rows) < d {
			r := rng.Intn(n)
			if !seen[r] {
				seen[r] = true
				rows = append(rows, r)
			}
		}
		vals := make([]float64, d)
		for k := range vals {
			vals[k] = rng.Float64() + 0.1
		}
		return rows, vals
	}
}

func makeDenseDBM(t *testing.T, rt *apgas.Runtime, rows, cols, rb, cb, rp, cp int, pg apgas.PlaceGroup) *DistBlockMatrix {
	t.Helper()
	m, err := MakeDistBlockMatrix(rt, block.Dense, rows, cols, rb, cb, rp, cp, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(denseInit); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMakeValidation(t *testing.T) {
	rt := newRT(t, 4)
	pg := rt.World()
	// Place grid must cover the group exactly.
	if _, err := MakeDistBlockMatrix(rt, block.Dense, 8, 8, 4, 1, 2, 1, pg); err == nil {
		t.Error("place grid smaller than group accepted")
	}
	// Blocks must divide evenly among places.
	if _, err := MakeDistBlockMatrix(rt, block.Dense, 9, 8, 3, 2, 4, 1, pg); err == nil {
		t.Error("non-divisible block grid accepted")
	}
	// Invalid grid.
	if _, err := MakeDistBlockMatrix(rt, block.Dense, 2, 2, 4, 1, 4, 1, pg); err == nil {
		t.Error("more blocks than rows accepted")
	}
}

func TestInitDenseAndToDense(t *testing.T) {
	rt := newRT(t, 4)
	m := makeDenseDBM(t, rt, 10, 6, 4, 2, 2, 2, rt.World())
	got, err := m.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 6; j++ {
			if got.At(i, j) != denseInit(i, j) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), denseInit(i, j))
			}
		}
	}
	if m.Kind() != block.Dense || m.Rows() != 10 || m.Cols() != 6 {
		t.Error("accessors wrong")
	}
}

func TestInitDenseOnSparseRejected(t *testing.T) {
	rt := newRT(t, 2)
	m, err := MakeDistBlockMatrix(rt, block.Sparse, 8, 8, 2, 1, 2, 1, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(denseInit); err == nil {
		t.Error("InitDense on sparse accepted")
	}
	d, err := MakeDistBlockMatrix(rt, block.Dense, 8, 8, 2, 1, 2, 1, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitSparseColumns(sparseColInit(8)); err == nil {
		t.Error("InitSparseColumns on dense accepted")
	}
}

func TestInitSparseColumns(t *testing.T) {
	rt := newRT(t, 4)
	n := 12
	m, err := MakeDistBlockMatrix(rt, block.Sparse, n, n, 4, 2, 2, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	gen := sparseColInit(n)
	if err := m.InitSparseColumns(gen); err != nil {
		t.Fatal(err)
	}
	got, err := m.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	want := la.NewDense(n, n)
	for j := 0; j < n; j++ {
		rows, vals := gen(j)
		for k, i := range rows {
			want.Set(i, j, vals[k])
		}
	}
	if !got.EqualApprox(want, 0) {
		t.Fatal("sparse init disagrees with generator")
	}
}

func TestMultVecAgainstReference(t *testing.T) {
	for _, cfg := range []struct {
		name               string
		rows, cols, rb, cb int
		rp, cp             int
	}{
		{"row-striped", 20, 8, 4, 1, 4, 1},
		{"2d-grid", 18, 10, 4, 2, 2, 2},
		{"multi-block", 24, 9, 8, 3, 4, 1},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rt := newRT(t, 4)
			pg := rt.World()
			m := makeDenseDBM(t, rt, cfg.rows, cfg.cols, cfg.rb, cfg.cb, cfg.rp, cfg.cp, pg)
			x, err := MakeDupVector(rt, cfg.cols, pg)
			if err != nil {
				t.Fatal(err)
			}
			_ = x.Init(func(i int) float64 { return float64(i)*0.5 + 1 })
			y, err := MakeDistVector(rt, cfg.rows, pg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.MultVec(x, y); err != nil {
				t.Fatal(err)
			}
			got, err := y.ToVector()
			if err != nil {
				t.Fatal(err)
			}
			dense, _ := m.ToDense()
			xv := la.NewVector(cfg.cols)
			for i := range xv {
				xv[i] = float64(i)*0.5 + 1
			}
			want := la.NewVector(cfg.rows)
			dense.MultVec(xv, want)
			if !got.EqualApprox(want, 1e-9) {
				t.Fatalf("MultVec mismatch: got %v want %v", got[:4], want[:4])
			}
		})
	}
}

func TestMultVecSparse(t *testing.T) {
	rt := newRT(t, 4)
	pg := rt.World()
	n := 16
	m, err := MakeDistBlockMatrix(rt, block.Sparse, n, n, 4, 2, 2, 2, pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitSparseColumns(sparseColInit(n)); err != nil {
		t.Fatal(err)
	}
	x, _ := MakeDupVector(rt, n, pg)
	_ = x.Init(func(i int) float64 { return float64(i%5) + 1 })
	y, _ := MakeDistVector(rt, n, pg)
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	got, _ := y.ToVector()
	dense, _ := m.ToDense()
	xv := la.NewVector(n)
	for i := range xv {
		xv[i] = float64(i%5) + 1
	}
	want := la.NewVector(n)
	dense.MultVec(xv, want)
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("sparse MultVec mismatch")
	}
}

func TestTransMultVecAgainstReference(t *testing.T) {
	for _, cfg := range []struct {
		name               string
		rows, cols, rb, cb int
		rp, cp             int
	}{
		{"row-striped", 20, 6, 4, 1, 4, 1},
		{"2d-grid", 16, 10, 4, 2, 2, 2},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rt := newRT(t, 4)
			pg := rt.World()
			m := makeDenseDBM(t, rt, cfg.rows, cfg.cols, cfg.rb, cfg.cb, cfg.rp, cfg.cp, pg)
			x, _ := MakeDistVector(rt, cfg.rows, pg)
			_ = x.Init(func(i int) float64 { return float64(i%7) - 3 })
			z, _ := MakeDupVector(rt, cfg.cols, pg)
			if err := m.TransMultVec(x, z); err != nil {
				t.Fatal(err)
			}
			dense, _ := m.ToDense()
			xv := la.NewVector(cfg.rows)
			for i := range xv {
				xv[i] = float64(i%7) - 3
			}
			want := la.NewVector(cfg.cols)
			dense.TransMultVec(xv, want)
			// Every duplicate must hold the result (TransMultVec syncs).
			for idx := 0; idx < pg.Size(); idx++ {
				if got := readDupAt(t, z, idx); !got.EqualApprox(want, 1e-9) {
					t.Fatalf("duplicate %d mismatch", idx)
				}
			}
		})
	}
}

func TestOpsShapeAndGroupChecks(t *testing.T) {
	rt := newRT(t, 2)
	pg := rt.World()
	m := makeDenseDBM(t, rt, 8, 4, 2, 1, 2, 1, pg)
	xBad, _ := MakeDupVector(rt, 5, pg)
	y, _ := MakeDistVector(rt, 8, pg)
	if err := m.MultVec(xBad, y); err == nil {
		t.Error("shape mismatch accepted")
	}
	x, _ := MakeDupVector(rt, 4, pg)
	yBad, _ := MakeDistVector(rt, 8, apgas.PlaceGroup{rt.Place(0)})
	if err := m.MultVec(x, yBad); err == nil {
		t.Error("group mismatch accepted")
	}
	zBad, _ := MakeDupVector(rt, 9, pg)
	xd, _ := MakeDistVector(rt, 8, pg)
	if err := m.TransMultVec(xd, zBad); err == nil {
		t.Error("TransMultVec shape mismatch accepted")
	}
}

func TestScaleAndBytes(t *testing.T) {
	rt := newRT(t, 2)
	m := makeDenseDBM(t, rt, 6, 4, 2, 1, 2, 1, rt.World())
	if err := m.Scale(2); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ToDense()
	if got.At(1, 1) != 2*denseInit(1, 1) {
		t.Error("Scale failed")
	}
	n, err := m.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6*4*8 {
		t.Errorf("Bytes = %d", n)
	}
}

func TestRemakeKeepGridShrink(t *testing.T) {
	rt := newRT(t, 4)
	m := makeDenseDBM(t, rt, 16, 8, 8, 1, 4, 1, rt.World())
	oldGrid := m.Grid()
	if err := rt.Kill(rt.Place(3)); err != nil {
		t.Fatal(err)
	}
	newPG := rt.World() // 3 places
	if err := m.Remake(newPG, true); err != nil {
		t.Fatal(err)
	}
	if !m.Grid().Equal(oldGrid) {
		t.Fatal("keepGrid changed the data grid")
	}
	if !m.Group().Equal(newPG) {
		t.Fatal("group not updated")
	}
	// 8 blocks round-robin over 3 places: 3,3,2.
	if len(m.Dist().BlocksOf(0)) != 3 || len(m.Dist().BlocksOf(2)) != 2 {
		t.Fatalf("block distribution: %v %v %v",
			m.Dist().BlocksOf(0), m.Dist().BlocksOf(1), m.Dist().BlocksOf(2))
	}
}

func TestRemakeRebalance(t *testing.T) {
	rt := newRT(t, 4)
	// bppRow = 8/4 = 2.
	m := makeDenseDBM(t, rt, 16, 8, 8, 1, 4, 1, rt.World())
	if err := rt.Kill(rt.Place(3)); err != nil {
		t.Fatal(err)
	}
	newPG := rt.World()
	if err := m.Remake(newPG, false); err != nil {
		t.Fatal(err)
	}
	// Rebalanced: 2 blocks per place × 3 places = 6 row blocks.
	if m.Grid().RowBlocks != 6 {
		t.Fatalf("rebalanced RowBlocks = %d, want 6", m.Grid().RowBlocks)
	}
	for p := 0; p < 3; p++ {
		if len(m.Dist().BlocksOf(p)) != 2 {
			t.Fatalf("place %d owns %d blocks", p, len(m.Dist().BlocksOf(p)))
		}
	}
	// 16 rows over 3 places cannot be perfectly even; the best possible
	// max is ceil(16/3) = 6 rows (×8 cols) on one place.
	counts := m.Dist().ElementsPerPlace(m.Grid())
	for p, c := range counts {
		if c > 6*8 {
			t.Errorf("place %d owns %d elements, want <= 48", p, c)
		}
	}
}

func TestSnapshotRestoreSameGrid(t *testing.T) {
	rt := newRT(t, 4)
	m := makeDenseDBM(t, rt, 12, 6, 4, 2, 2, 2, rt.World())
	want, _ := m.ToDense()
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	_ = m.Scale(0)
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ToDense()
	if !got.EqualApprox(want, 0) {
		t.Fatal("same-grid restore mismatch")
	}
}

func TestSnapshotRestoreAfterShrinkKeepGrid(t *testing.T) {
	rt := newRT(t, 4)
	m := makeDenseDBM(t, rt, 16, 8, 8, 1, 4, 1, rt.World())
	want, _ := m.ToDense()
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remake(rt.World(), true); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ToDense()
	if !got.EqualApprox(want, 0) {
		t.Fatal("shrink keep-grid restore mismatch")
	}
}

func TestSnapshotRestoreAfterRebalanceDense(t *testing.T) {
	rt := newRT(t, 4)
	m := makeDenseDBM(t, rt, 17, 9, 8, 1, 4, 1, rt.World())
	want, _ := m.ToDense()
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	// Rebalance: new grid (6 row blocks) differs from old (8) — overlap path.
	if err := m.Remake(rt.World(), false); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ToDense()
	if !got.EqualApprox(want, 0) {
		t.Fatal("regrid dense restore mismatch")
	}
}

func TestSnapshotRestoreAfterRebalanceSparse(t *testing.T) {
	rt := newRT(t, 4)
	n := 19
	m, err := MakeDistBlockMatrix(rt, block.Sparse, n, n, 8, 1, 4, 1, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitSparseColumns(sparseColInit(n)); err != nil {
		t.Fatal(err)
	}
	want, _ := m.ToDense()
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := rt.Kill(rt.Place(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Remake(rt.World(), false); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ToDense()
	if !got.EqualApprox(want, 0) {
		t.Fatal("regrid sparse restore mismatch")
	}
}

func TestSnapshotRestoreReplaceRedundant(t *testing.T) {
	// 5 places: 4 active + 1 spare. Kill an active, replace in-position.
	rt := newRT(t, 5)
	world := rt.World()
	active := apgas.PlaceGroup(world[:4])
	spare := world[4]
	m := makeDenseDBM(t, rt, 16, 4, 8, 1, 4, 1, active)
	want, _ := m.ToDense()
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	victim := rt.Place(2)
	if err := rt.Kill(victim); err != nil {
		t.Fatal(err)
	}
	newPG, err := active.Replace([]apgas.Place{victim}, []apgas.Place{spare})
	if err != nil {
		t.Fatal(err)
	}
	// Same group size: grid unchanged, block-by-block restore.
	if err := m.Remake(newPG, true); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ToDense()
	if !got.EqualApprox(want, 0) {
		t.Fatal("replace-redundant restore mismatch")
	}
}

// The central determinism guarantee: MultVec results are bit-identical
// before and after any redistribution, because reductions run in canonical
// block order.
func TestMultVecDeterministicAcrossRedistribution(t *testing.T) {
	rt := newRT(t, 4)
	pg := rt.World()
	n, d := 24, 10
	m := makeDenseDBM(t, rt, n, d, 8, 1, 4, 1, pg)
	x, _ := MakeDupVector(rt, d, pg)
	_ = x.Init(func(i int) float64 { return 1 / float64(i+3) })
	y, _ := MakeDistVector(rt, n, pg)
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	before, _ := y.ToVector()

	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	_ = rt.Kill(rt.Place(3))
	newPG := rt.World()
	if err := m.Remake(newPG, true); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	_ = x.Remake(newPG)
	_ = x.Init(func(i int) float64 { return 1 / float64(i+3) })
	_ = y.Remake(newPG)
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	after, _ := y.ToVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("element %d differs bitwise: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestFrobNorm(t *testing.T) {
	rt := newRT(t, 4)
	m := makeDenseDBM(t, rt, 12, 6, 4, 2, 2, 2, rt.World())
	got, err := m.FrobNorm()
	if err != nil {
		t.Fatal(err)
	}
	dense, _ := m.ToDense()
	if want := dense.FrobNorm(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("FrobNorm = %v, want %v", got, want)
	}
	// Sparse path.
	n := 16
	sp, err := MakeDistBlockMatrix(rt, block.Sparse, n, n, 4, 1, 4, 1, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.InitSparseColumns(sparseColInit(n)); err != nil {
		t.Fatal(err)
	}
	gotSp, err := sp.FrobNorm()
	if err != nil {
		t.Fatal(err)
	}
	dsp, _ := sp.ToDense()
	if want := dsp.FrobNorm(); gotSp < want-1e-9 || gotSp > want+1e-9 {
		t.Fatalf("sparse FrobNorm = %v, want %v", gotSp, want)
	}
}

func TestScratchReuseAcrossOps(t *testing.T) {
	// Two MultVecs and a TransMultVec share the cached scratch; a Remake
	// invalidates it and the next op still works.
	rt := newRT(t, 3)
	pg := rt.World()
	m := makeDenseDBM(t, rt, 12, 6, 3, 1, 3, 1, pg)
	x, _ := MakeDupVector(rt, 6, pg)
	_ = x.Init(func(i int) float64 { return float64(i) })
	y, _ := MakeDistVector(rt, 12, pg)
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	first, _ := y.ToVector()
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	second, _ := y.ToVector()
	if !first.EqualApprox(second, 0) {
		t.Fatal("repeated MultVec with cached scratch differs")
	}
	z, _ := MakeDupVector(rt, 6, pg)
	xd, _ := MakeDistVector(rt, 12, pg)
	_ = xd.Init(func(i int) float64 { return 1 })
	if err := m.TransMultVec(xd, z); err != nil {
		t.Fatal(err)
	}
	// Shrink and reuse.
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	newPG := rt.World()
	if err := m.Remake(newPG, true); err != nil {
		t.Fatal(err)
	}
	if err := m.InitDense(denseInit); err != nil {
		t.Fatal(err)
	}
	_ = x.Remake(newPG)
	_ = x.Init(func(i int) float64 { return float64(i) })
	_ = y.Remake(newPG)
	if err := m.MultVec(x, y); err != nil {
		t.Fatal(err)
	}
	third, _ := y.ToVector()
	if !third.EqualApprox(first, 0) {
		t.Fatal("MultVec after Remake differs")
	}
}

func TestRestoreShapeMismatchRejected(t *testing.T) {
	rt := newRT(t, 2)
	m := makeDenseDBM(t, rt, 8, 4, 2, 1, 2, 1, rt.World())
	s, err := m.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	other := makeDenseDBM(t, rt, 8, 6, 2, 1, 2, 1, rt.World())
	if err := other.RestoreSnapshot(s); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	sp, err := MakeDistBlockMatrix(rt, block.Sparse, 8, 4, 2, 1, 2, 1, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.RestoreSnapshot(s); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

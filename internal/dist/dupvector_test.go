package dist

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/la"
)

func newRT(t *testing.T, places int) *apgas.Runtime {
	t.Helper()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

// readDupAt reads the duplicate of v held at group index idx.
func readDupAt(t *testing.T, v *DupVector, idx int) la.Vector {
	t.Helper()
	var out la.Vector
	err := v.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(v.pg[idx], func(c *apgas.Ctx) {
			out = v.Local(c).Clone()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDupVectorMakeAndInit(t *testing.T) {
	rt := newRT(t, 4)
	v, err := MakeDupVector(rt, 5, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 5 || v.Group().Size() != 4 {
		t.Fatal("shape wrong")
	}
	if err := v.Init(func(i int) float64 { return float64(i * i) }); err != nil {
		t.Fatal(err)
	}
	want := la.Vector{0, 1, 4, 9, 16}
	for idx := 0; idx < 4; idx++ {
		if got := readDupAt(t, v, idx); !got.EqualApprox(want, 0) {
			t.Fatalf("duplicate at %d = %v", idx, got)
		}
	}
}

func TestDupVectorValidation(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := MakeDupVector(rt, 0, rt.World()); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := MakeDupVector(rt, 3, nil); err == nil {
		t.Error("empty group accepted")
	}
}

func TestDupVectorSyncBroadcastsRoot(t *testing.T) {
	rt := newRT(t, 3)
	v, err := MakeDupVector(rt, 4, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.RootApply(func(local la.Vector) { local.Fill(7) }); err != nil {
		t.Fatal(err)
	}
	// Before sync, non-root copies are still zero.
	if got := readDupAt(t, v, 1); got.Sum() != 0 {
		t.Fatal("non-root copy changed before Sync")
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 3; idx++ {
		if got := readDupAt(t, v, idx); got.Sum() != 28 {
			t.Fatalf("after Sync duplicate %d = %v", idx, got)
		}
	}
}

func TestDupVectorAllApply(t *testing.T) {
	rt := newRT(t, 3)
	v, err := MakeDupVector(rt, 2, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.AllApply(func(local la.Vector) { local.Fill(3).Scale(2) }); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 3; idx++ {
		if got := readDupAt(t, v, idx); !got.EqualApprox(la.Vector{6, 6}, 0) {
			t.Fatalf("duplicate %d = %v", idx, got)
		}
	}
	root, err := v.Root()
	if err != nil {
		t.Fatal(err)
	}
	if !root.EqualApprox(la.Vector{6, 6}, 0) {
		t.Fatalf("Root = %v", root)
	}
}

func TestDupVectorRemake(t *testing.T) {
	rt := newRT(t, 4)
	v, err := MakeDupVector(rt, 3, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	newPG := apgas.PlaceGroup{rt.Place(0), rt.Place(2)}
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	if !v.Group().Equal(newPG) {
		t.Fatal("group not updated")
	}
	// Duplicates at places present in both groups are retained with their
	// contents (a following restore validates or overwrites them).
	if got := readDupAt(t, v, 1); got.Sum() != 3 {
		t.Fatalf("remade copy = %v", got)
	}
	if err := v.Remake(nil); err == nil {
		t.Error("empty remake accepted")
	}
}

func TestDupVectorSnapshotRestoreSameGroup(t *testing.T) {
	rt := newRT(t, 3)
	v, err := MakeDupVector(rt, 4, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(i) + 0.5 }); err != nil {
		t.Fatal(err)
	}
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	// Wreck the live data, then restore.
	if err := v.AllApply(func(local la.Vector) { local.Fill(-1) }); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	want := la.Vector{0.5, 1.5, 2.5, 3.5}
	for idx := 0; idx < 3; idx++ {
		if got := readDupAt(t, v, idx); !got.EqualApprox(want, 0) {
			t.Fatalf("restored duplicate %d = %v", idx, got)
		}
	}
}

func TestDupVectorSnapshotSurvivesFailureAndShrink(t *testing.T) {
	rt := newRT(t, 4)
	v, err := MakeDupVector(rt, 3, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(10 + i) }); err != nil {
		t.Fatal(err)
	}
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	victim := rt.Place(2)
	if err := rt.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// Shrink onto the survivors and restore.
	newPG := rt.World()
	if err := v.Remake(newPG); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	want := la.Vector{10, 11, 12}
	for idx := 0; idx < newPG.Size(); idx++ {
		if got := readDupAt(t, v, idx); !got.EqualApprox(want, 0) {
			t.Fatalf("restored duplicate %d = %v", idx, got)
		}
	}
}

func TestDupVectorRestoreOntoLargerGroup(t *testing.T) {
	// A duplicated object stores one logical copy, so it can be restored
	// onto a larger group than it was snapshotted from (useful when
	// elastic places grow the computation back).
	rt := newRT(t, 4)
	small := apgas.PlaceGroup{rt.Place(0), rt.Place(1)}
	v, err := MakeDupVector(rt, 3, small)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Init(func(i int) float64 { return float64(i) + 1 }); err != nil {
		t.Fatal(err)
	}
	s, err := v.MakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if err := v.Remake(rt.World()); err != nil {
		t.Fatal(err)
	}
	if err := v.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 4; idx++ {
		if got := readDupAt(t, v, idx); !got.EqualApprox(la.Vector{1, 2, 3}, 0) {
			t.Fatalf("duplicate %d = %v", idx, got)
		}
	}
}

package dist

import (
	"fmt"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/la"
	"github.com/rgml/rgml/internal/par"
)

// Registered kernels: the dist-layer compute bodies that can execute
// inside a worker process on a data-plane backend (transport/tcp)
// instead of at the coordinator. Registration happens at package init —
// before main, therefore before tcp.MaybeWorker turns a re-exec'd child
// into a worker — so coordinator and workers always resolve the same
// names to the same code.
//
// The kernels are pure functions of their task and store entries and use
// the exact block arithmetic the closure path uses (MultVecAssign), so
// results are bit-identical wherever they run; vectors cross the wire
// through the exact float64 codec roundtrip.

// multVecKernelName is the per-place phase-1 body of MultVec: one
// partial vector per owned block.
const multVecKernelName = "dist.block.multvec"

func init() {
	apgas.RegisterKernel(multVecKernelName, multVecKernelBody)
}

// multVecKernelBody computes B·x for every block ref of the task.
// Refs[0] is the duplicated x; Refs[1:] are the place's blocks in
// ascending block-ID order. The result carries one encoded partial per
// block ref, in the same order. Blocks decode once per shipped version
// (Entry.Obj caches the object); x decodes once per shipped version too,
// which in the solvers means once per iteration.
func multVecKernelBody(ex *kernel.Exec, t *kernel.Task) (*kernel.Result, error) {
	if len(t.Refs) < 1 {
		return nil, fmt.Errorf("dist: %s: missing x ref", t.Name)
	}
	xe, err := ex.Ref(t.Refs[0])
	if err != nil {
		return nil, err
	}
	xobj, err := xe.Obj(func(data []byte) (any, error) {
		v, derr := decodeVector(data, nil)
		if derr != nil {
			return nil, derr
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	x := xobj.(la.Vector)

	// Resolve and decode every block first (serial: Obj takes the entry
	// lock), then fan the arithmetic across the intra-place kernel pool —
	// partials are disjoint, so any interleaving yields the same bits.
	blocks := make([]*block.MatrixBlock, len(t.Refs)-1)
	for i, r := range t.Refs[1:] {
		be, rerr := ex.Ref(r)
		if rerr != nil {
			return nil, rerr
		}
		obj, derr := be.Obj(func(data []byte) (any, error) { return block.Decode(data) })
		if derr != nil {
			return nil, derr
		}
		blocks[i] = obj.(*block.MatrixBlock)
	}
	frames := make([][]byte, len(blocks))
	var failed error
	par.For(len(blocks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := blocks[i]
			if len(x) < b.Col0+b.Cols {
				failed = fmt.Errorf("dist: %s: x length %d short of block needing %d", t.Name, len(x), b.Col0+b.Cols)
				return
			}
			out := la.NewVector(b.Rows)
			b.MultVecAssign(x, out)
			frames[i] = encodeVector(out)
		}
	})
	if failed != nil {
		return nil, failed
	}
	return &kernel.Result{Frames: frames}, nil
}

// multVecKernel runs MultVec's phase 1 for one place through the
// registered-kernel data plane: ship x (once per version) and any blocks
// the worker body does not hold yet, compute the partials there, and
// decode them into the place's scratch map. Returns false on any failure
// so the caller can fall back to the coordinator-resident block fan —
// the kernel purity contract makes the two paths bit-identical.
func (m *DistBlockMatrix) multVecKernel(ctx *apgas.Ctx, x *DupVector, xloc la.Vector, part map[int]la.Vector, bs *block.BlockSet) bool {
	if bs.Len() == 0 {
		return true
	}
	inputs := make([]kernel.Input, 0, bs.Len()+1)
	inputs = append(inputs, kernel.Input{
		Handle: x.plh.Handle(),
		Key:    0,
		Ver:    x.ver,
		Encode: func() []byte { return encodeVector(xloc) },
	})
	ids := make([]int, 0, bs.Len())
	bs.Each(func(id int, b *block.MatrixBlock) {
		ids = append(ids, id)
		inputs = append(inputs, kernel.Input{
			Handle: m.plh.Handle(),
			Key:    int64(id),
			Ver:    b.Ver,
			Encode: b.Encode,
		})
	})
	res, err := ctx.ExecKernel(&kernel.Task{Name: multVecKernelName}, inputs...)
	if err != nil || len(res.Frames) != len(ids) {
		return false
	}
	for i, id := range ids {
		v, err := decodeVector(res.Frames[i], nil)
		if err != nil || len(v) != len(part[rowPartKey(id)]) {
			return false
		}
		copy(part[rowPartKey(id)], v)
	}
	return true
}

// warm force-installs a duplicate's current bytes into the executing
// place's body through the data plane, so the next kernel referencing it
// at the current version finds it cached. A forced put (not a versioned
// input): Sync republishes content under an unchanged version, which a
// version-checked ship would wrongly skip. Failures are ignored — the
// warm is a cache optimization, and a version mismatch later degrades to
// a re-ship or coordinator fallback, never to wrong data.
func (v *DupVector) warm(c *apgas.Ctx, local la.Vector) {
	if !c.KernelDispatch() {
		return
	}
	t := &kernel.Task{Name: kernel.PutName, Puts: []kernel.Blob{{
		Handle: v.plh.Handle(),
		Key:    0,
		Ver:    v.ver,
		Data:   encodeVector(local),
	}}}
	_, _ = c.ExecKernel(t)
}

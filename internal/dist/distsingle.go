package dist

import (
	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/block"
)

// DistDenseMatrix is the one-block-per-place dense distributed matrix
// (x10.matrix.dist.DistDenseMatrix): the data grid always has exactly as
// many blocks as places, so redistributing over a different group size
// *must* recalculate the data grid (paper section IV-A2) — there is no
// keep-grid fast path, unlike DistBlockMatrix.
type DistDenseMatrix struct {
	*DistBlockMatrix
}

// MakeDistDenseMatrix creates a zeroed rows×cols dense matrix with one
// row-stripe block per place of pg.
func MakeDistDenseMatrix(rt *apgas.Runtime, rows, cols int, pg apgas.PlaceGroup) (*DistDenseMatrix, error) {
	m, err := MakeDistBlockMatrix(rt, block.Dense, rows, cols, pg.Size(), 1, pg.Size(), 1, pg)
	if err != nil {
		return nil, err
	}
	return &DistDenseMatrix{DistBlockMatrix: m}, nil
}

// Remake redistributes the matrix over a new group, recalculating the data
// grid so each place again holds exactly one block.
func (m *DistDenseMatrix) Remake(newPG apgas.PlaceGroup) error {
	return m.DistBlockMatrix.Remake(newPG, false)
}

// DistSparseMatrix is the one-block-per-place sparse distributed matrix
// (x10.matrix.dist.DistSparseMatrix).
type DistSparseMatrix struct {
	*DistBlockMatrix
}

// MakeDistSparseMatrix creates an empty rows×cols sparse matrix with one
// row-stripe block per place of pg.
func MakeDistSparseMatrix(rt *apgas.Runtime, rows, cols int, pg apgas.PlaceGroup) (*DistSparseMatrix, error) {
	m, err := MakeDistBlockMatrix(rt, block.Sparse, rows, cols, pg.Size(), 1, pg.Size(), 1, pg)
	if err != nil {
		return nil, err
	}
	return &DistSparseMatrix{DistBlockMatrix: m}, nil
}

// Remake redistributes the matrix over a new group, recalculating the data
// grid so each place again holds exactly one block.
func (m *DistSparseMatrix) Remake(newPG apgas.PlaceGroup) error {
	return m.DistBlockMatrix.Remake(newPG, false)
}

package dist

import (
	"fmt"
	"math"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/snapshot"
)

// compressMetaSentinel prefixes a snapshot descriptor whose payloads
// were written through a compressor. Every legacy descriptor either is
// empty or begins with a non-negative count/dimension, so a negative
// sentinel can never collide with one: old snapshots decode unchanged,
// and `-compress none` writes byte-identical descriptors.
const compressMetaSentinel = -0x434F4D50 // "COMP"

// compressible is embedded by every snapshottable dist class. It holds
// the object's checkpoint-compression override and its lossy opt-in;
// the runtime-wide policy (apgas.WithCompression) applies when no
// override is set. Lossy compression is strictly opt-in per object:
// without AllowLossyCheckpoint(true), a lossy policy is transparently
// downgraded to lossless, so read-only inputs and index structures are
// never quantized.
type compressible struct {
	spec    codec.Spec
	specSet bool
	lossyOK bool
}

// SetCompression overrides the runtime-wide checkpoint compression
// policy for this object. The zero Spec selects no compression.
func (c *compressible) SetCompression(spec codec.Spec) error {
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("dist: SetCompression: %w", err)
	}
	c.spec, c.specSet = spec, true
	return nil
}

// AllowLossyCheckpoint marks the object as tolerating error-bounded
// lossy checkpoints. Solvers set it on mutable model state they can
// re-converge from (à la lossy checkpointing for iterative methods);
// anything not marked is checkpointed losslessly even under a lossy
// policy.
func (c *compressible) AllowLossyCheckpoint(on bool) { c.lossyOK = on }

// resolveSpec computes the effective compression policy for a
// checkpoint of this object: per-object override beats the runtime
// default, and lossy degrades to lossless unless the object opted in.
func (c *compressible) resolveSpec(rt *apgas.Runtime) codec.Spec {
	spec := rt.Compression()
	if c.specSet {
		spec = c.spec
	}
	if spec.Mode == codec.CompressLossy && !c.lossyOK {
		spec = codec.Spec{Mode: codec.CompressLossless}
	}
	return spec
}

// newCompressor builds the save-side compressor for one checkpoint of
// this object (nil for an uncompressed checkpoint). A fresh compressor
// per snapshot keeps the lossy error tracking scoped to that snapshot.
func (c *compressible) newCompressor(rt *apgas.Runtime) (codec.Compressor, codec.Spec) {
	spec := c.resolveSpec(rt)
	comp, err := codec.NewCompressor(spec)
	if err != nil {
		// resolveSpec only yields validated specs; degrade to
		// uncompressed rather than failing the checkpoint.
		return nil, codec.Spec{}
	}
	return comp, spec
}

// appendCompressMeta prepends the compression descriptor prefix for
// spec. CompressNone appends nothing, keeping default-mode descriptors
// byte-identical to the pre-compression format.
func appendCompressMeta(meta []byte, spec codec.Spec) []byte {
	if spec.Mode == codec.CompressNone {
		return meta
	}
	meta = codec.AppendInt(meta, compressMetaSentinel)
	meta = codec.AppendInt(meta, int(spec.Mode))
	meta = codec.AppendUint64(meta, math.Float64bits(spec.ErrorBound))
	return meta
}

// splitCompressMeta peels the compression prefix off a snapshot
// descriptor, returning the recorded spec (zero for a legacy or
// uncompressed descriptor) and the remaining object metadata.
func splitCompressMeta(meta []byte) (codec.Spec, []byte, error) {
	if len(meta) < codec.SizeInt {
		return codec.Spec{}, meta, nil
	}
	v, rest, err := codec.Int(meta)
	if err != nil || v != compressMetaSentinel {
		return codec.Spec{}, meta, nil
	}
	mode, rest, err := codec.Int(rest)
	if err != nil {
		return codec.Spec{}, nil, fmt.Errorf("dist: compression meta: %w", err)
	}
	bits, rest, err := codec.Uint64(rest)
	if err != nil {
		return codec.Spec{}, nil, fmt.Errorf("dist: compression meta: %w", err)
	}
	spec := codec.Spec{Mode: codec.Compression(mode), ErrorBound: math.Float64frombits(bits)}
	if err := spec.Validate(); err != nil {
		return codec.Spec{}, nil, fmt.Errorf("dist: compression meta: %w", err)
	}
	if spec.Mode == codec.CompressNone {
		return codec.Spec{}, nil, fmt.Errorf("dist: compression meta: prefixed descriptor with mode none")
	}
	return spec, rest, nil
}

// compressorForMeta builds the decode-side compressor recorded in a
// snapshot descriptor (nil when the snapshot is uncompressed) and
// returns the remaining object metadata.
func compressorForMeta(meta []byte) (codec.Compressor, []byte, error) {
	spec, rest, err := splitCompressMeta(meta)
	if err != nil {
		return nil, nil, err
	}
	comp, err := codec.NewCompressor(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: compression meta: %w", err)
	}
	return comp, rest, nil
}

// noteLossyErr folds the compressor's observed quantization error into
// the snapshot's lossy-error gauge after a successful save pass.
func noteLossyErr(s *snapshot.Snapshot, comp codec.Compressor) {
	if comp != nil {
		s.NoteLossyMaxError(comp.MaxError())
	}
}

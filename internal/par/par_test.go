package par

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// workerCounts are the counts every determinism property is checked at.
var workerCounts = []int{1, 2, 3, 7, runtime.NumCPU()}

// withWorkers runs fn at each worker count and restores the default.
func withWorkers(t *testing.T, fn func(t *testing.T, w int)) {
	t.Helper()
	defer SetWorkers(0)
	for _, w := range workerCounts {
		SetWorkers(w)
		if got := Workers(); got != w {
			t.Fatalf("Workers() = %d after SetWorkers(%d)", got, w)
		}
		fn(t, w)
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	sizes := []struct{ n, grain int }{
		{1, 1}, {7, 3}, {100, 1}, {100, 7}, {100, 100}, {100, 1000}, {4096, 64},
	}
	withWorkers(t, func(t *testing.T, w int) {
		for _, s := range sizes {
			hits := make([]int32, s.n)
			For(s.n, s.grain, func(lo, hi int) {
				if lo < 0 || hi > s.n || lo >= hi {
					panic(fmt.Sprintf("bad chunk [%d, %d) of %d", lo, hi, s.n))
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", w, s.n, s.grain, i, h)
				}
			}
		}
	})
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-3, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For called fn for n <= 0")
	}
}

// TestChunkBoundariesIndependentOfWorkers pins the determinism contract:
// the exact multiset of (lo, hi) chunks is a function of (n, grain) only.
func TestChunkBoundariesIndependentOfWorkers(t *testing.T) {
	type chunk struct{ lo, hi int }
	collect := func(n, grain int) []chunk {
		var mu sync.Mutex
		var out []chunk
		For(n, grain, func(lo, hi int) {
			mu.Lock()
			out = append(out, chunk{lo, hi})
			mu.Unlock()
		})
		sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
		return out
	}
	defer SetWorkers(0)
	SetWorkers(1)
	want := collect(1000, 13)
	for _, w := range workerCounts[1:] {
		SetWorkers(w)
		got := collect(1000, 13)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d chunks, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: chunk %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

// TestReduceBitIdentical checks the floating-point sum of a fixed random
// vector is bit-identical at every worker count.
func TestReduceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 100_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * float64(1+i%17)
	}
	sum := func() float64 {
		return Reduce(len(xs), 1024, func(lo, hi int) float64 {
			var s float64
			for _, v := range xs[lo:hi] {
				s += v
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	}
	defer SetWorkers(0)
	SetWorkers(1)
	want := sum()
	for _, w := range workerCounts[1:] {
		SetWorkers(w)
		for rep := 0; rep < 10; rep++ {
			if got := sum(); got != want {
				t.Fatalf("workers=%d rep=%d: sum %x, want %x", w, rep, got, want)
			}
		}
	}
}

// TestReduceCombineOrder uses a non-commutative combine to prove partials
// fold in ascending chunk order.
func TestReduceCombineOrder(t *testing.T) {
	withWorkers(t, func(t *testing.T, w int) {
		got := Reduce(10, 2, func(lo, hi int) string {
			return fmt.Sprintf("[%d,%d)", lo, hi)
		}, func(a, b string) string { return a + b })
		want := "[0,2)[2,4)[4,6)[6,8)[8,10)"
		if got != want {
			t.Fatalf("workers=%d: combine order %q, want %q", w, got, want)
		}
	})
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 8, func(lo, hi int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("Reduce(0) = %d, want zero value", got)
	}
}

// TestNestedForNoDeadlock drives nested parallel regions hard enough to
// saturate the queue, exercising the caller-runs fallback.
func TestNestedForNoDeadlock(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			For(64, 1, func(lo, hi int) {
				For(64, 4, func(l2, h2 int) {
					total.Add(int64(h2 - l2))
				})
			})
		}()
	}
	wg.Wait()
	if want := int64(8 * 64 * 64); total.Load() != want {
		t.Fatalf("nested total = %d, want %d", total.Load(), want)
	}
}

// TestPanicPropagates checks a panic in a chunk resurfaces on the calling
// goroutine (apgas.Throw relies on this to abort the enclosing task).
func TestPanicPropagates(t *testing.T) {
	defer SetWorkers(0)
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		func() {
			defer func() {
				if r := recover(); r != boom {
					t.Fatalf("workers=%d: recovered %v, want %v", w, r, boom)
				}
			}()
			For(100, 1, func(lo, hi int) {
				if lo == 57 {
					panic(boom)
				}
			})
			t.Fatalf("workers=%d: For returned after panic", w)
		}()
	}
}

func TestWorkersFromEnv(t *testing.T) {
	cases := map[string]int{"": 0, "x": 0, "-2": 0, "0": 0, "1": 1, "12": 12}
	for in, want := range cases {
		if got := workersFromEnv(in); got != want {
			t.Errorf("workersFromEnv(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestSetWorkersResetToDefault(t *testing.T) {
	SetWorkers(5)
	SetWorkers(0)
	if got, want := Workers(), defaultWorkers(); got != want {
		t.Fatalf("Workers() = %d after reset, want %d", got, want)
	}
}

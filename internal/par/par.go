// Package par is the deterministic intra-place parallel kernel engine.
//
// All compute kernels of the framework (internal/la, and the per-place
// block fans of internal/dist) schedule their work through this package's
// For and Reduce. The contract that makes parallel execution safe for a
// resilient framework whose tests pin down bit-identical replay is:
//
//   - Work is decomposed into chunks whose boundaries are a function of
//     the problem size and the kernel's grain only — never of the worker
//     count, the pool state, or timing.
//   - For requires chunks to write disjoint outputs, so any execution
//     order yields the same bits.
//   - Reduce materializes one partial result per chunk and combines them
//     in ascending chunk order on the calling goroutine.
//
// Under this contract the results for workers=1..N are bit-identical, and
// the serial reference (workers=1) is the same code path minus the pool.
// The chaos campaigns replay runs and compare iterates bitwise; the
// workers-seq CI leg runs the whole suite with RGML_WORKERS=1 to keep the
// serial path honest.
//
// The pool itself is process-wide, bounded, and lazily started: no
// goroutine exists until a kernel actually has more than one chunk and
// more than one worker configured. The default worker count is
// runtime.NumCPU(), overridable by the RGML_WORKERS environment variable
// and by SetWorkers (wired to apgas.WithKernelWorkers / the -workers
// flags). Nested parallel regions (place task -> block fan -> chunked
// kernel) are deadlock-free by construction: helper jobs are
// fire-and-forget and a region only ever waits for chunks that some
// goroutine is actively running — in the worst case the calling
// goroutine runs every chunk itself.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/rgml/rgml/internal/obs"
)

// workers is the configured worker count (>= 1). The count bounds how
// many pool helpers a single For/Reduce enlists; it never influences
// chunk geometry.
var workers atomic.Int64

func init() {
	workers.Store(int64(defaultWorkers()))
}

// defaultWorkers resolves the initial worker count: RGML_WORKERS when set
// and valid, else runtime.NumCPU().
func defaultWorkers() int {
	if n := workersFromEnv(os.Getenv("RGML_WORKERS")); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// workersFromEnv parses an RGML_WORKERS value; 0 means "not set / invalid".
func workersFromEnv(s string) int {
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// Workers returns the configured worker count.
func Workers() int { return int(workers.Load()) }

// SetWorkers configures the worker count. n < 1 resets to the default
// (RGML_WORKERS or NumCPU). The count only bounds concurrency; chunk
// boundaries — and therefore results — do not depend on it.
func SetWorkers(n int) {
	if n < 1 {
		n = defaultWorkers()
	}
	workers.Store(int64(n))
	if in := instr.Load(); in != nil {
		in.configured.Set(int64(n))
	}
}

// jobs is the submission queue of the process-wide pool. The buffer
// bounds how much work can be outstanding before submitters fall back to
// running chunks themselves.
var jobs = make(chan func(), 256)

var (
	poolMu sync.Mutex
	live   int // workers started (they never exit)
)

// submit enqueues fn without blocking, waking a pool worker. It reports
// false when the queue is full; the caller then runs the work itself.
func submit(fn func()) bool {
	select {
	case jobs <- fn:
		ensureWorker()
		return true
	default:
		return false
	}
}

// ensureWorker lazily starts pool workers, at most Workers()-1 of them
// (the calling goroutine of every parallel region is always the extra
// worker). Workers block on the queue when idle and are never torn down;
// the bound can grow after SetWorkers.
func ensureWorker() {
	limit := Workers() - 1
	poolMu.Lock()
	if live < limit {
		live++
		n := live
		poolMu.Unlock()
		if in := instr.Load(); in != nil {
			in.liveWorkers.Set(int64(n))
		}
		go workerLoop()
		return
	}
	poolMu.Unlock()
}

func workerLoop() {
	for fn := range jobs {
		if in := instr.Load(); in != nil {
			in.busyWorkers.Add(1)
			fn()
			in.busyWorkers.Add(-1)
		} else {
			fn()
		}
	}
}

// chunks returns the deterministic chunk count for (n, grain): ceil(n/g)
// chunks of g elements each (last one short). grain < 1 is treated as 1.
func chunks(n, grain int) (nchunks, g int) {
	g = grain
	if g < 1 {
		g = 1
	}
	return (n + g - 1) / g, g
}

// run executes body(0..nchunks-1), each exactly once, possibly in
// parallel. Panics from pool workers (including apgas.Throw's task
// aborts) are re-raised on the calling goroutine so the enclosing task
// machinery observes them exactly as in serial execution.
//
// Deadlock freedom under nesting: the caller waits only for claimed
// chunks to COMPLETE, never for a queued helper job to start. Helper
// jobs are fire-and-forget — if every pool worker is busy (e.g. itself
// blocked inside a nested parallel region), the queued helpers simply
// never run and the calling goroutine drains all chunks itself. A
// helper that runs after the region finished finds no chunk left and
// returns immediately.
func run(nchunks int, body func(c int)) {
	helpers := Workers() - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
	in := instr.Load()
	if helpers <= 0 {
		if in != nil {
			in.runsSerial.Inc()
			in.chunksRun.Add(int64(nchunks))
		}
		for c := 0; c < nchunks; c++ {
			body(c)
		}
		return
	}
	if in != nil {
		in.runsParallel.Inc()
		in.chunksRun.Add(int64(nchunks))
	}
	st := &runState{nchunks: int64(nchunks), body: body, done: make(chan struct{})}
	for i := 0; i < helpers; i++ {
		if !submit(st.drain) {
			break
		}
	}
	st.drain()
	<-st.done
	if p := st.panic1.Load(); p != nil {
		panic(p.val)
	}
}

// runState is the shared state of one parallel region. Chunks are
// claimed via next and accounted via completed; the goroutine that
// completes the last chunk closes done.
type runState struct {
	next      atomic.Int64
	completed atomic.Int64
	nchunks   int64
	body      func(c int)
	done      chan struct{}
	panic1    atomic.Pointer[panicked]
}

// drain claims and runs chunks until none remain. Safe to call from any
// goroutine, any number of times, including after the region completed.
func (s *runState) drain() {
	for {
		c := s.next.Add(1) - 1
		if c >= s.nchunks {
			return
		}
		s.runChunk(int(c))
	}
}

// runChunk executes one chunk, capturing a panic instead of letting it
// kill a pool worker, and counts the chunk completed either way (a
// panicked chunk must not leave the region waiting forever).
func (s *runState) runChunk(c int) {
	defer func() {
		if r := recover(); r != nil {
			s.panic1.CompareAndSwap(nil, &panicked{val: r})
		}
		if s.completed.Add(1) == s.nchunks {
			close(s.done)
		}
	}()
	s.body(c)
}

// panicked carries a recovered panic value from a pool worker back to the
// submitting goroutine.
type panicked struct{ val any }

// For runs fn over the half-open chunks of [0, n) with the given grain.
// fn must write only outputs owned by its chunk; chunks of one call may
// execute concurrently and in any order. The chunk boundaries depend on
// (n, grain) only, so any per-chunk state (accumulators, tiling) produces
// identical bits at every worker count.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nchunks, g := chunks(n, grain)
	if nchunks == 1 {
		if in := instr.Load(); in != nil {
			in.runsSerial.Inc()
			in.chunksRun.Inc()
		}
		fn(0, n)
		return
	}
	run(nchunks, func(c int) {
		lo := c * g
		hi := lo + g
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Reduce computes part over every chunk of [0, n) and folds the partial
// results with combine in ascending chunk order on the calling goroutine:
// combine(...combine(combine(p0, p1), p2)..., pLast). Chunk boundaries
// depend on (n, grain) only, so the result is bit-identical for any
// worker count. n <= 0 returns the zero value of T.
func Reduce[T any](n, grain int, part func(lo, hi int) T, combine func(acc, v T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	nchunks, g := chunks(n, grain)
	if nchunks == 1 {
		if in := instr.Load(); in != nil {
			in.runsSerial.Inc()
			in.chunksRun.Inc()
		}
		return part(0, n)
	}
	parts := make([]T, nchunks)
	run(nchunks, func(c int) {
		lo := c * g
		hi := lo + g
		if hi > n {
			hi = n
		}
		parts[c] = part(lo, hi)
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = combine(acc, p)
	}
	return acc
}

// instruments holds the pool's observability handles, resolved once per
// SetObs so the hot paths pay one atomic pointer load.
type instruments struct {
	runsSerial   *obs.Counter // par.runs.serial
	runsParallel *obs.Counter // par.runs.parallel
	chunksRun    *obs.Counter // par.chunks
	configured   *obs.Gauge   // par.workers.configured
	liveWorkers  *obs.Gauge   // par.workers.live
	busyWorkers  *obs.Gauge   // par.workers.busy
}

var instr atomic.Pointer[instruments]

// SetObs wires the pool's instrumentation into reg: counters for serial
// and parallel kernel runs and total chunks, gauges for the configured,
// live and busy worker counts. The pool is process-wide, so the last
// registry wired wins; nil disables instrumentation.
func SetObs(reg *obs.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	in := &instruments{
		runsSerial:   reg.Counter("par.runs.serial"),
		runsParallel: reg.Counter("par.runs.parallel"),
		chunksRun:    reg.Counter("par.chunks"),
		configured:   reg.Gauge("par.workers.configured"),
		liveWorkers:  reg.Gauge("par.workers.live"),
		busyWorkers:  reg.Gauge("par.workers.busy"),
	}
	in.configured.Set(int64(Workers()))
	poolMu.Lock()
	in.liveWorkers.Set(int64(live))
	poolMu.Unlock()
	instr.Store(in)
}

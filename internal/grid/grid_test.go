package grid

import (
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, rows, cols, rb, cb int) *Grid {
	t.Helper()
	g, err := New(rows, cols, rb, cb)
	if err != nil {
		t.Fatalf("New(%d,%d,%d,%d): %v", rows, cols, rb, cb, err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][4]int{
		{0, 5, 1, 1}, {5, 0, 1, 1}, {5, 5, 0, 1}, {5, 5, 1, 0}, {5, 5, 6, 1}, {5, 5, 1, 6},
	} {
		if _, err := New(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("New(%v) should fail", bad)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{5, 5, []int{1, 1, 1, 1, 1}},
		{7, 1, []int{7}},
	}
	for _, c := range cases {
		got := Split(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Fatalf("Split(%d,%d) = %v", c.n, c.parts, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Split(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
				break
			}
		}
	}
}

// Property: Split covers n exactly, near-evenly, in non-increasing order.
func TestSplitProperty(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		nn := int(n)%1000 + 1
		pp := int(parts)%nn + 1
		sizes := Split(nn, pp)
		sum := 0
		for i, s := range sizes {
			sum += s
			if i > 0 && sizes[i-1] < s {
				return false // must be non-increasing
			}
			if s < nn/pp || s > nn/pp+1 {
				return false // near-even
			}
		}
		return sum == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridBlockGeometry(t *testing.T) {
	g := mustGrid(t, 10, 7, 3, 2)
	if g.NumBlocks() != 6 {
		t.Fatalf("NumBlocks = %d", g.NumBlocks())
	}
	// Rows split 4,3,3; cols split 4,3.
	if r, c := g.BlockDims(0, 0); r != 4 || c != 4 {
		t.Errorf("BlockDims(0,0) = %d,%d", r, c)
	}
	if r, c := g.BlockDims(2, 1); r != 3 || c != 3 {
		t.Errorf("BlockDims(2,1) = %d,%d", r, c)
	}
	if r0, c0 := g.BlockOrigin(2, 1); r0 != 7 || c0 != 4 {
		t.Errorf("BlockOrigin(2,1) = %d,%d", r0, c0)
	}
}

func TestBlockIDRoundtrip(t *testing.T) {
	g := mustGrid(t, 12, 12, 3, 4)
	for rb := 0; rb < 3; rb++ {
		for cb := 0; cb < 4; cb++ {
			id := g.BlockID(rb, cb)
			r2, c2 := g.BlockCoords(id)
			if r2 != rb || c2 != cb {
				t.Fatalf("roundtrip (%d,%d) -> %d -> (%d,%d)", rb, cb, id, r2, c2)
			}
		}
	}
	// Column-major: (1, 0) is id 1; (0, 1) is id 3.
	if g.BlockID(1, 0) != 1 || g.BlockID(0, 1) != 3 {
		t.Error("BlockID not column-major")
	}
}

func TestFindBlocks(t *testing.T) {
	g := mustGrid(t, 10, 7, 3, 2)
	// Row blocks cover [0,4), [4,7), [7,10).
	for r, want := range map[int]int{0: 0, 3: 0, 4: 1, 6: 1, 7: 2, 9: 2} {
		if got := g.FindRowBlock(r); got != want {
			t.Errorf("FindRowBlock(%d) = %d, want %d", r, got, want)
		}
	}
	for c, want := range map[int]int{0: 0, 3: 0, 4: 1, 6: 1} {
		if got := g.FindColBlock(c); got != want {
			t.Errorf("FindColBlock(%d) = %d, want %d", c, got, want)
		}
	}
}

// Property: every matrix cell belongs to exactly the block FindRowBlock /
// FindColBlock report, and block geometry tiles the matrix exactly.
func TestGridTilesExactly(t *testing.T) {
	f := func(seed uint32) bool {
		rows := int(seed%50) + 1
		cols := int(seed/50%50) + 1
		rb := int(seed/2500%7)%rows + 1
		cb := int(seed/17500%5)%cols + 1
		g, err := New(rows, cols, rb, cb)
		if err != nil {
			return false
		}
		// Offsets must be monotone and end at the matrix dims.
		if g.RowOffsets[len(g.RowOffsets)-1] != rows || g.ColOffsets[len(g.ColOffsets)-1] != cols {
			return false
		}
		area := 0
		for i := 0; i < rb; i++ {
			for j := 0; j < cb; j++ {
				r, c := g.BlockDims(i, j)
				area += r * c
				r0, c0 := g.BlockOrigin(i, j)
				if g.FindRowBlock(r0) != i || g.FindColBlock(c0) != j {
					return false
				}
				if g.FindRowBlock(r0+r-1) != i || g.FindColBlock(c0+c-1) != j {
					return false
				}
			}
		}
		return area == rows*cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGridEqual(t *testing.T) {
	a := mustGrid(t, 10, 10, 2, 5)
	b := mustGrid(t, 10, 10, 2, 5)
	c := mustGrid(t, 10, 10, 5, 2)
	if !a.Equal(b) {
		t.Error("identical grids unequal")
	}
	if a.Equal(c) {
		t.Error("different grids equal")
	}
}

func TestOverlapsSameGrid(t *testing.T) {
	g := mustGrid(t, 10, 8, 2, 2)
	for rb := 0; rb < 2; rb++ {
		for cb := 0; cb < 2; cb++ {
			ovs := g.Overlaps(g, rb, cb)
			if len(ovs) != 1 {
				t.Fatalf("same-grid overlaps = %d, want 1", len(ovs))
			}
			o := ovs[0]
			r0, c0 := g.BlockOrigin(rb, cb)
			r, c := g.BlockDims(rb, cb)
			if o.OldRB != rb || o.OldCB != cb || o.Row0 != r0 || o.Col0 != c0 || o.Rows != r || o.Cols != c {
				t.Fatalf("overlap = %+v", o)
			}
		}
	}
}

// Property: for random old/new grids over the same matrix, the overlaps of
// each new block tile that block exactly (cover every cell once).
func TestOverlapsTileNewBlocks(t *testing.T) {
	f := func(seed uint32) bool {
		rows := int(seed%30) + 2
		cols := int(seed/30%30) + 2
		oldG, err := New(rows, cols, int(seed%uint32(rows))+1, int(seed/7%uint32(cols))+1)
		if err != nil {
			return true // skip invalid combos
		}
		newG, err := New(rows, cols, int(seed/11%uint32(rows))+1, int(seed/13%uint32(cols))+1)
		if err != nil {
			return true
		}
		covered := make([][]int, rows)
		for i := range covered {
			covered[i] = make([]int, cols)
		}
		for rb := 0; rb < newG.RowBlocks; rb++ {
			for cb := 0; cb < newG.ColBlocks; cb++ {
				for _, o := range newG.Overlaps(oldG, rb, cb) {
					// The overlap must sit inside the old block it names.
					or0, oc0 := oldG.BlockOrigin(o.OldRB, o.OldCB)
					orr, occ := oldG.BlockDims(o.OldRB, o.OldCB)
					if o.Row0 < or0 || o.Col0 < oc0 || o.Row0+o.Rows > or0+orr || o.Col0+o.Cols > oc0+occ {
						return false
					}
					for i := o.Row0; i < o.Row0+o.Rows; i++ {
						for j := o.Col0; j < o.Col0+o.Cols; j++ {
							covered[i][j]++
						}
					}
				}
			}
		}
		for i := range covered {
			for j := range covered[i] {
				if covered[i][j] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDistGridAssignsEveryBlock(t *testing.T) {
	g := mustGrid(t, 20, 20, 4, 4)
	d, err := NewDistGrid(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPlaces() != 4 {
		t.Fatalf("NumPlaces = %d", d.NumPlaces())
	}
	seen := 0
	for p := 0; p < 4; p++ {
		blocks := d.BlocksOf(p)
		seen += len(blocks)
		for _, id := range blocks {
			if d.PlaceOf[id] != p {
				t.Fatalf("block %d: PlaceOf %d != %d", id, d.PlaceOf[id], p)
			}
		}
	}
	if seen != g.NumBlocks() {
		t.Fatalf("assigned %d blocks of %d", seen, g.NumBlocks())
	}
	// 4x4 blocks on 2x2 places: each place owns a 2x2 bundle.
	for p := 0; p < 4; p++ {
		if len(d.BlocksOf(p)) != 4 {
			t.Errorf("place %d owns %d blocks", p, len(d.BlocksOf(p)))
		}
	}
}

func TestDistGridValidation(t *testing.T) {
	g := mustGrid(t, 4, 4, 2, 2)
	if _, err := NewDistGrid(g, 3, 1); err == nil {
		t.Error("place grid larger than block grid should fail")
	}
	if _, err := NewDistGrid(g, 0, 1); err == nil {
		t.Error("zero place grid should fail")
	}
}

func TestRemapRoundRobin(t *testing.T) {
	g := mustGrid(t, 12, 12, 2, 3) // 6 blocks
	d, err := Remap(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks 0..5 dealt round-robin to 4 places: 0,1,2,3,0,1.
	want := []int{0, 1, 2, 3, 0, 1}
	for id, p := range d.PlaceOf {
		if p != want[id] {
			t.Fatalf("PlaceOf = %v, want %v", d.PlaceOf, want)
		}
	}
	if _, err := Remap(g, 7); err == nil {
		t.Error("remap with more places than blocks should fail")
	}
	if _, err := Remap(g, 0); err == nil {
		t.Error("remap to zero places should fail")
	}
}

func TestLoadImbalance(t *testing.T) {
	g := mustGrid(t, 8, 8, 2, 2) // 4 equal 4x4 blocks
	even, err := NewDistGrid(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if im := even.LoadImbalance(g); im != 1 {
		t.Errorf("even imbalance = %v, want 1", im)
	}
	// Remap 4 blocks onto 3 places: one place owns two blocks.
	skew, err := Remap(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if im := skew.LoadImbalance(g); im <= 1 {
		t.Errorf("skewed imbalance = %v, want > 1", im)
	}
	counts := skew.ElementsPerPlace(g)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 64 {
		t.Errorf("elements sum = %d, want 64", total)
	}
}

// Package grid implements GML's block partitioning machinery: the data
// grid (x10.matrix.block.Grid) that cuts an m×n matrix into row/column
// blocks, the block→place mapping (x10.matrix.distblock.DistGrid), and the
// overlap computation between two grids that drives the re-grid restore
// path (paper section IV-B2).
package grid

import "fmt"

// Grid partitions an m×n matrix into RowBlocks×ColBlocks rectangular
// blocks. Sizes are near-even: the first (m mod RowBlocks) row-blocks get
// one extra row, and likewise for columns — the same "even data
// distribution" rule GML applies when repartitioning for a new place group.
type Grid struct {
	Rows, Cols           int
	RowBlocks, ColBlocks int
	// RowSizes[i] is the height of row-block i; RowOffsets has length
	// RowBlocks+1 with RowOffsets[i] the first matrix row of row-block i.
	RowSizes, ColSizes     []int
	RowOffsets, ColOffsets []int
}

// New builds a grid cutting a rows×cols matrix into rowBlocks×colBlocks
// near-even blocks.
func New(rows, cols, rowBlocks, colBlocks int) (*Grid, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("grid: invalid matrix dims %dx%d", rows, cols)
	}
	if rowBlocks < 1 || colBlocks < 1 {
		return nil, fmt.Errorf("grid: invalid block counts %dx%d", rowBlocks, colBlocks)
	}
	if rowBlocks > rows || colBlocks > cols {
		return nil, fmt.Errorf("grid: more blocks (%dx%d) than elements (%dx%d)", rowBlocks, colBlocks, rows, cols)
	}
	g := &Grid{
		Rows: rows, Cols: cols,
		RowBlocks: rowBlocks, ColBlocks: colBlocks,
		RowSizes: Split(rows, rowBlocks),
		ColSizes: Split(cols, colBlocks),
	}
	g.RowOffsets = offsets(g.RowSizes)
	g.ColOffsets = offsets(g.ColSizes)
	return g, nil
}

// Split divides n elements into parts near-even segments (the first n mod
// parts segments get one extra element). It is also used directly for
// DistVector segmentation.
func Split(n, parts int) []int {
	sizes := make([]int, parts)
	base, extra := n/parts, n%parts
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

// Offsets returns the prefix sums of sizes, with a trailing total: the
// result has len(sizes)+1 entries.
func Offsets(sizes []int) []int { return offsets(sizes) }

func offsets(sizes []int) []int {
	out := make([]int, len(sizes)+1)
	for i, s := range sizes {
		out[i+1] = out[i] + s
	}
	return out
}

// NumBlocks returns the total number of blocks.
func (g *Grid) NumBlocks() int { return g.RowBlocks * g.ColBlocks }

// BlockID maps block coordinates to a linear id, column-major (GML's
// ordering: id = rb + cb*RowBlocks).
func (g *Grid) BlockID(rb, cb int) int {
	g.checkCoords(rb, cb)
	return rb + cb*g.RowBlocks
}

// BlockCoords inverts BlockID.
func (g *Grid) BlockCoords(id int) (rb, cb int) {
	if id < 0 || id >= g.NumBlocks() {
		panic(fmt.Sprintf("grid: block id %d out of %d", id, g.NumBlocks()))
	}
	return id % g.RowBlocks, id / g.RowBlocks
}

// BlockDims returns the dimensions of block (rb, cb).
func (g *Grid) BlockDims(rb, cb int) (rows, cols int) {
	g.checkCoords(rb, cb)
	return g.RowSizes[rb], g.ColSizes[cb]
}

// BlockOrigin returns the absolute matrix coordinates of block (rb, cb)'s
// top-left element.
func (g *Grid) BlockOrigin(rb, cb int) (row0, col0 int) {
	g.checkCoords(rb, cb)
	return g.RowOffsets[rb], g.ColOffsets[cb]
}

// FindRowBlock returns the row-block containing matrix row r.
func (g *Grid) FindRowBlock(r int) int {
	if r < 0 || r >= g.Rows {
		panic(fmt.Sprintf("grid: row %d out of %d", r, g.Rows))
	}
	return findSegment(g.RowOffsets, r)
}

// FindColBlock returns the column-block containing matrix column c.
func (g *Grid) FindColBlock(c int) int {
	if c < 0 || c >= g.Cols {
		panic(fmt.Sprintf("grid: col %d out of %d", c, g.Cols))
	}
	return findSegment(g.ColOffsets, c)
}

// findSegment returns i such that offs[i] <= x < offs[i+1], by binary
// search.
func findSegment(offs []int, x int) int {
	lo, hi := 0, len(offs)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if offs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Equal reports whether two grids describe the same partitioning.
func (g *Grid) Equal(h *Grid) bool {
	if g.Rows != h.Rows || g.Cols != h.Cols ||
		g.RowBlocks != h.RowBlocks || g.ColBlocks != h.ColBlocks {
		return false
	}
	for i := range g.RowSizes {
		if g.RowSizes[i] != h.RowSizes[i] {
			return false
		}
	}
	for i := range g.ColSizes {
		if g.ColSizes[i] != h.ColSizes[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("Grid(%dx%d in %dx%d blocks)", g.Rows, g.Cols, g.RowBlocks, g.ColBlocks)
}

func (g *Grid) checkCoords(rb, cb int) {
	if rb < 0 || rb >= g.RowBlocks || cb < 0 || cb >= g.ColBlocks {
		panic(fmt.Sprintf("grid: block (%d, %d) out of %dx%d", rb, cb, g.RowBlocks, g.ColBlocks))
	}
}

// Overlap describes the intersection of one block of an old grid with one
// block of a new grid, in absolute matrix coordinates. The re-grid restore
// path copies, for each new block, the data of every overlap from the old
// blocks in the snapshot.
type Overlap struct {
	// OldRB and OldCB are the old grid's block coordinates.
	OldRB, OldCB int
	// Row0, Col0, Rows, Cols bound the intersection in matrix coordinates.
	Row0, Col0, Rows, Cols int
}

// Overlaps returns the regions where new block (rb, cb) of g intersects
// the blocks of old. Both grids must partition the same matrix shape. The
// result is ordered by old block coordinates (column-major).
func (g *Grid) Overlaps(old *Grid, rb, cb int) []Overlap {
	if g.Rows != old.Rows || g.Cols != old.Cols {
		panic(fmt.Sprintf("grid: Overlaps between %v and %v", g, old))
	}
	r0, c0 := g.BlockOrigin(rb, cb)
	rows, cols := g.BlockDims(rb, cb)
	r1, c1 := r0+rows, c0+cols
	firstRB := old.FindRowBlock(r0)
	lastRB := old.FindRowBlock(r1 - 1)
	firstCB := old.FindColBlock(c0)
	lastCB := old.FindColBlock(c1 - 1)
	var out []Overlap
	for ocb := firstCB; ocb <= lastCB; ocb++ {
		for orb := firstRB; orb <= lastRB; orb++ {
			or0, oc0 := old.BlockOrigin(orb, ocb)
			orows, ocols := old.BlockDims(orb, ocb)
			ir0 := max(r0, or0)
			ic0 := max(c0, oc0)
			ir1 := min(r1, or0+orows)
			ic1 := min(c1, oc0+ocols)
			if ir1 <= ir0 || ic1 <= ic0 {
				continue
			}
			out = append(out, Overlap{
				OldRB: orb, OldCB: ocb,
				Row0: ir0, Col0: ic0,
				Rows: ir1 - ir0, Cols: ic1 - ic0,
			})
		}
	}
	return out
}

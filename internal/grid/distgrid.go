package grid

import "fmt"

// DistGrid maps the blocks of a Grid onto the places of a place grid, the
// counterpart of x10.matrix.distblock.DistGrid. Blocks are assigned
// contiguously: row-block rb goes to place-grid row floor(rb·rowPlaces /
// rowBlocks), and likewise for columns, so each place receives a
// rectangular bundle of neighbouring blocks. The mapping targets *place
// indices* (positions within a PlaceGroup), not place IDs, which is what
// lets the same matrix remap onto a different group after a failure.
type DistGrid struct {
	RowPlaces, ColPlaces int
	// PlaceOf[blockID] is the owning place index (column-major place grid:
	// place index = pr + pc*RowPlaces).
	PlaceOf []int
	// blocksOf[placeIdx] lists the block IDs owned by each place, in
	// ascending order.
	blocksOf [][]int
}

// NewDistGrid maps g's blocks onto a rowPlaces×colPlaces place grid. The
// place grid must not exceed the block grid (every place must receive at
// least one block — the same constraint DistBlockMatrix.make enforces).
func NewDistGrid(g *Grid, rowPlaces, colPlaces int) (*DistGrid, error) {
	if rowPlaces < 1 || colPlaces < 1 {
		return nil, fmt.Errorf("grid: invalid place grid %dx%d", rowPlaces, colPlaces)
	}
	if rowPlaces > g.RowBlocks || colPlaces > g.ColBlocks {
		return nil, fmt.Errorf("grid: place grid %dx%d exceeds block grid %dx%d",
			rowPlaces, colPlaces, g.RowBlocks, g.ColBlocks)
	}
	d := &DistGrid{
		RowPlaces: rowPlaces,
		ColPlaces: colPlaces,
		PlaceOf:   make([]int, g.NumBlocks()),
		blocksOf:  make([][]int, rowPlaces*colPlaces),
	}
	for cb := 0; cb < g.ColBlocks; cb++ {
		pc := cb * colPlaces / g.ColBlocks
		for rb := 0; rb < g.RowBlocks; rb++ {
			pr := rb * rowPlaces / g.RowBlocks
			id := g.BlockID(rb, cb)
			place := pr + pc*rowPlaces
			d.PlaceOf[id] = place
			d.blocksOf[place] = append(d.blocksOf[place], id)
		}
	}
	return d, nil
}

// NumPlaces returns the number of places in the place grid.
func (d *DistGrid) NumPlaces() int { return d.RowPlaces * d.ColPlaces }

// BlocksOf returns the block IDs owned by place index p, ascending.
func (d *DistGrid) BlocksOf(p int) []int {
	if p < 0 || p >= d.NumPlaces() {
		panic(fmt.Sprintf("grid: place index %d out of %d", p, d.NumPlaces()))
	}
	return d.blocksOf[p]
}

// Remap returns a new DistGrid distributing the same blocks over a
// different number of places, keeping the data grid unchanged — the
// "shrink" restoration path for DistBlockMatrix (paper Fig. 1-b: same
// blocks, new block-to-place mapping, possibly imbalanced). Blocks are
// dealt to places round-robin in block-ID order over a flat 1×newPlaces
// place grid.
func Remap(g *Grid, newPlaces int) (*DistGrid, error) {
	if newPlaces < 1 {
		return nil, fmt.Errorf("grid: remap to %d places", newPlaces)
	}
	if newPlaces > g.NumBlocks() {
		return nil, fmt.Errorf("grid: remap %d blocks to %d places leaves empty places",
			g.NumBlocks(), newPlaces)
	}
	d := &DistGrid{
		RowPlaces: 1,
		ColPlaces: newPlaces,
		PlaceOf:   make([]int, g.NumBlocks()),
		blocksOf:  make([][]int, newPlaces),
	}
	for id := 0; id < g.NumBlocks(); id++ {
		p := id % newPlaces
		d.PlaceOf[id] = p
		d.blocksOf[p] = append(d.blocksOf[p], id)
	}
	return d, nil
}

// ElementsPerPlace returns, for each place index, the number of matrix
// elements it owns under grid g.
func (d *DistGrid) ElementsPerPlace(g *Grid) []int {
	out := make([]int, d.NumPlaces())
	for id, p := range d.PlaceOf {
		rb, cb := g.BlockCoords(id)
		r, c := g.BlockDims(rb, cb)
		out[p] += r * c
	}
	return out
}

// LoadImbalance returns max/mean elements per place, a load-balance metric
// (1.0 is perfectly even). The paper's Fig. 1 discussion: keeping the data
// grid while shrinking the place group trades restore speed for imbalance;
// repartitioning restores balance at higher restore cost.
func (d *DistGrid) LoadImbalance(g *Grid) float64 {
	counts := d.ElementsPerPlace(g)
	maxC, sum := 0, 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(counts))
	return float64(maxC) / mean
}

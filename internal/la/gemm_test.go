package la

import (
	"testing"
	"testing/quick"
)

func TestAccumTransDenseSparseAgainstDense(t *testing.T) {
	rng := NewRNG(21)
	a := RandomDense(10, 4, rng)        // rows×k
	s := RandomSparseCSC(10, 6, 3, rng) // rows×m
	out := RandomDense(4, 6, rng)       // accumulate onto non-zero start
	base := out.Clone()
	AccumTransDenseSparse(a, s, out)
	// Reference: base + aᵀ·dense(s).
	want := base
	sd := s.ToDense()
	tmp := NewDense(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			var sum float64
			for r := 0; r < 10; r++ {
				sum += a.At(r, i) * sd.At(r, j)
			}
			tmp.Set(i, j, sum)
		}
	}
	want.CellAdd(tmp)
	if !out.EqualApprox(want, 1e-10) {
		t.Fatal("AccumTransDenseSparse mismatch")
	}
}

func TestAccumSparseMultDenseTAgainstDense(t *testing.T) {
	rng := NewRNG(22)
	s := RandomSparseCSC(8, 5, 2, rng) // rows×m
	h := RandomDense(3, 5, rng)        // k×m
	out := NewDense(8, 3)
	AccumSparseMultDenseT(s, h, out)
	sd := s.ToDense()
	want := NewDense(8, 3)
	for i := 0; i < 8; i++ {
		for k := 0; k < 3; k++ {
			var sum float64
			for j := 0; j < 5; j++ {
				sum += sd.At(i, j) * h.At(k, j)
			}
			want.Set(i, k, sum)
		}
	}
	if !out.EqualApprox(want, 1e-10) {
		t.Fatal("AccumSparseMultDenseT mismatch")
	}
}

func TestAccumTransDenseDenseAgainstDense(t *testing.T) {
	rng := NewRNG(23)
	a := RandomDense(7, 3, rng)
	b := RandomDense(7, 4, rng)
	out := NewDense(3, 4)
	AccumTransDenseDense(a, b, out)
	want := NewDense(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			var sum float64
			for r := 0; r < 7; r++ {
				sum += a.At(r, i) * b.At(r, j)
			}
			want.Set(i, j, sum)
		}
	}
	if !out.EqualApprox(want, 1e-10) {
		t.Fatal("AccumTransDenseDense mismatch")
	}
	// Gram matrix is symmetric.
	gram := NewDense(3, 3)
	AccumTransDenseDense(a, a, gram)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if gram.At(i, j) != gram.At(j, i) {
				t.Fatal("Gram matrix not symmetric")
			}
		}
	}
}

// Property: accumulation composes — running a kernel twice doubles the
// contribution.
func TestAccumKernelsAccumulate(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows := 2 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		a := RandomDense(rows, k, rng)
		s := RandomSparseCSC(rows, m, 1+rng.Intn(rows), rng)
		once := NewDense(k, m)
		AccumTransDenseSparse(a, s, once)
		twice := NewDense(k, m)
		AccumTransDenseSparse(a, s, twice)
		AccumTransDenseSparse(a, s, twice)
		return twice.EqualApprox(once.Clone().Scale(2), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAccumKernelDimPanics(t *testing.T) {
	a := NewDense(4, 2)
	s := NewSparseCSC(5, 3)
	out := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected dimension panic")
		}
	}()
	AccumTransDenseSparse(a, s, out)
}

package la

import (
	"fmt"
	"math"
	"sort"

	"github.com/rgml/rgml/internal/par"
)

// Triplet is one nonzero entry in coordinate form, used when assembling
// sparse matrices.
type Triplet struct {
	Row, Col int
	Val      float64
}

// SparseCSC is a compressed-sparse-column matrix, the counterpart of
// x10.matrix.sparse.SparseCSC. Column j's nonzeros occupy
// RowIdx[ColPtr[j]:ColPtr[j+1]] / Vals[ColPtr[j]:ColPtr[j+1]], with row
// indices sorted ascending within each column.
type SparseCSC struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Vals       []float64
}

// NewSparseCSC returns an empty rows×cols CSC matrix.
func NewSparseCSC(rows, cols int) *SparseCSC {
	checkDim(rows >= 0 && cols >= 0, "NewSparseCSC(%d, %d)", rows, cols)
	return &SparseCSC{Rows: rows, Cols: cols, ColPtr: make([]int, cols+1)}
}

// NewSparseCSCFromTriplets assembles a CSC matrix from coordinate entries.
// Duplicate (row, col) entries are summed.
func NewSparseCSCFromTriplets(rows, cols int, ts []Triplet) *SparseCSC {
	for _, t := range ts {
		checkDim(t.Row >= 0 && t.Row < rows && t.Col >= 0 && t.Col < cols,
			"triplet (%d, %d) out of %dx%d", t.Row, t.Col, rows, cols)
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Col != sorted[j].Col {
			return sorted[i].Col < sorted[j].Col
		}
		return sorted[i].Row < sorted[j].Row
	})
	m := NewSparseCSC(rows, cols)
	m.RowIdx = make([]int, 0, len(sorted))
	m.Vals = make([]float64, 0, len(sorted))
	col := 0
	for _, t := range sorted {
		n := len(m.Vals)
		if n > 0 && col == t.Col && m.RowIdx[n-1] == t.Row {
			m.Vals[n-1] += t.Val // duplicate entry: sum
			continue
		}
		// Close the ColPtr bounds of every column up to t.Col.
		for ; col < t.Col; col++ {
			m.ColPtr[col+1] = n
		}
		m.RowIdx = append(m.RowIdx, t.Row)
		m.Vals = append(m.Vals, t.Val)
		m.ColPtr[col+1] = len(m.Vals)
	}
	for ; col < cols; col++ {
		m.ColPtr[col+1] = len(m.Vals)
	}
	return m
}

// NNZ returns the number of stored nonzeros.
func (m *SparseCSC) NNZ() int { return len(m.Vals) }

// At returns element (i, j) (zero when not stored).
func (m *SparseCSC) At(i, j int) float64 {
	checkDim(i >= 0 && i < m.Rows && j >= 0 && j < m.Cols, "At(%d, %d) out of %dx%d", i, j, m.Rows, m.Cols)
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	k := lo + sort.SearchInts(m.RowIdx[lo:hi], i)
	if k < hi && m.RowIdx[k] == i {
		return m.Vals[k]
	}
	return 0
}

// Clone returns an independent copy.
func (m *SparseCSC) Clone() *SparseCSC {
	out := &SparseCSC{
		Rows: m.Rows, Cols: m.Cols,
		ColPtr: append([]int(nil), m.ColPtr...),
		RowIdx: append([]int(nil), m.RowIdx...),
		Vals:   append([]float64(nil), m.Vals...),
	}
	return out
}

// MultVec computes y = m · x. y has length m.Rows and is overwritten.
//
// The scatter across output rows is parallelized by output-row range:
// each chunk binary-searches every column's sorted row indices for its
// own sub-range (the AccumSparseMultDenseT scheme), preserving the naive
// loop's exact per-element accumulation order.
func (m *SparseCSC) MultVec(x, y Vector) {
	checkDim(len(x) == m.Cols, "MultVec: x len %d != cols %d", len(x), m.Cols)
	checkDim(len(y) == m.Rows, "MultVec: y len %d != rows %d", len(y), m.Rows)
	par.For(m.Rows, sdtRowGrain, func(lo, hi int) {
		seg := y[lo:hi]
		for i := range seg {
			seg[i] = 0
		}
		full := lo == 0 && hi == m.Rows
		for j := 0; j < m.Cols; j++ {
			xj := x[j]
			if xj == 0 {
				continue
			}
			ps, pe := m.ColPtr[j], m.ColPtr[j+1]
			if !full {
				idx := m.RowIdx[ps:pe]
				pe = ps + sort.SearchInts(idx, hi)
				ps += sort.SearchInts(idx, lo)
			}
			for k := ps; k < pe; k++ {
				y[m.RowIdx[k]] += m.Vals[k] * xj
			}
		}
	})
}

// TransMultVec computes y = mᵀ · x. y has length m.Cols and is overwritten.
// Parallel over columns; each column keeps the naive single-accumulator
// gather, so the result is bit-identical to the serial loop.
func (m *SparseCSC) TransMultVec(x, y Vector) {
	checkDim(len(x) == m.Rows, "TransMultVec: x len %d != rows %d", len(x), m.Rows)
	checkDim(len(y) == m.Cols, "TransMultVec: y len %d != cols %d", len(y), m.Cols)
	par.For(m.Cols, spColGrain, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			var s float64
			for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
				s += m.Vals[k] * x[m.RowIdx[k]]
			}
			y[j] = s
		}
	})
}

// Scale multiplies every stored value by a.
func (m *SparseCSC) Scale(a float64) *SparseCSC {
	for i := range m.Vals {
		m.Vals[i] *= a
	}
	return m
}

// ToDense expands m into a dense matrix.
func (m *SparseCSC) ToDense() *DenseMatrix {
	d := NewDense(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			d.Data[m.RowIdx[k]+j*m.Rows] = m.Vals[k]
		}
	}
	return d
}

// CountSubNNZ counts the nonzeros inside the rows×cols region anchored at
// (r0, c0). The re-grid restore path for sparse matrices needs this extra
// counting pass to size new blocks before copying (paper section IV-B2:
// "the non-zero elements for the overlapping regions must be counted to
// determine the space required for the new sparse block").
func (m *SparseCSC) CountSubNNZ(r0, c0, rows, cols int) int {
	checkDim(r0 >= 0 && c0 >= 0 && r0+rows <= m.Rows && c0+cols <= m.Cols,
		"CountSubNNZ(%d, %d, %d, %d) out of %dx%d", r0, c0, rows, cols, m.Rows, m.Cols)
	n := 0
	for j := c0; j < c0+cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		idx := m.RowIdx[lo:hi]
		n += sort.SearchInts(idx, r0+rows) - sort.SearchInts(idx, r0)
	}
	return n
}

// ExtractSub copies the rows×cols region anchored at (r0, c0) into a new
// CSC matrix (with indices rebased to the region's origin).
func (m *SparseCSC) ExtractSub(r0, c0, rows, cols int) *SparseCSC {
	return m.ExtractSubPresized(r0, c0, rows, cols, m.CountSubNNZ(r0, c0, rows, cols))
}

// ExtractSubPresized is ExtractSub with the region's nonzero count already
// known (from an earlier CountSubNNZ pass), so the regrid restore path
// counts each overlap once instead of re-counting inside the extraction.
func (m *SparseCSC) ExtractSubPresized(r0, c0, rows, cols, nnz int) *SparseCSC {
	out := NewSparseCSC(rows, cols)
	out.RowIdx = make([]int, 0, nnz)
	out.Vals = make([]float64, 0, nnz)
	for j := 0; j < cols; j++ {
		lo, hi := m.ColPtr[c0+j], m.ColPtr[c0+j+1]
		idx := m.RowIdx[lo:hi]
		from := lo + sort.SearchInts(idx, r0)
		to := lo + sort.SearchInts(idx, r0+rows)
		for k := from; k < to; k++ {
			out.RowIdx = append(out.RowIdx, m.RowIdx[k]-r0)
			out.Vals = append(out.Vals, m.Vals[k])
		}
		out.ColPtr[j+1] = len(out.Vals)
	}
	return out
}

// PasteSub merges sub into m with its top-left corner at (r0, c0),
// rebuilding the receiver's storage. Existing entries inside the region are
// replaced.
func (m *SparseCSC) PasteSub(r0, c0 int, sub *SparseCSC) {
	checkDim(r0 >= 0 && c0 >= 0 && r0+sub.Rows <= m.Rows && c0+sub.Cols <= m.Cols,
		"PasteSub(%d, %d) of %dx%d into %dx%d", r0, c0, sub.Rows, sub.Cols, m.Rows, m.Cols)
	var ts []Triplet
	for j := 0; j < m.Cols; j++ {
		inCols := j >= c0 && j < c0+sub.Cols
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			i := m.RowIdx[k]
			if inCols && i >= r0 && i < r0+sub.Rows {
				continue // replaced by the pasted region
			}
			ts = append(ts, Triplet{Row: i, Col: j, Val: m.Vals[k]})
		}
	}
	for j := 0; j < sub.Cols; j++ {
		for k := sub.ColPtr[j]; k < sub.ColPtr[j+1]; k++ {
			ts = append(ts, Triplet{Row: sub.RowIdx[k] + r0, Col: j + c0, Val: sub.Vals[k]})
		}
	}
	rebuilt := NewSparseCSCFromTriplets(m.Rows, m.Cols, ts)
	m.ColPtr, m.RowIdx, m.Vals = rebuilt.ColPtr, rebuilt.RowIdx, rebuilt.Vals
}

// Triplets returns the matrix's nonzeros in coordinate form (column-major
// order).
func (m *SparseCSC) Triplets() []Triplet {
	ts := make([]Triplet, 0, m.NNZ())
	for j := 0; j < m.Cols; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			ts = append(ts, Triplet{Row: m.RowIdx[k], Col: j, Val: m.Vals[k]})
		}
	}
	return ts
}

// EqualApprox reports whether m and b represent the same matrix within tol.
func (m *SparseCSC) EqualApprox(b *SparseCSC, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			if math.Abs(m.Vals[k]-b.At(m.RowIdx[k], j)) > tol {
				return false
			}
		}
		for k := b.ColPtr[j]; k < b.ColPtr[j+1]; k++ {
			if math.Abs(b.Vals[k]-m.At(b.RowIdx[k], j)) > tol {
				return false
			}
		}
	}
	return true
}

// Bytes returns the serialized payload size, for network-cost accounting:
// 8 bytes per value plus 8 per row index plus the column pointers.
func (m *SparseCSC) Bytes() int { return 16*m.NNZ() + 8*len(m.ColPtr) }

// String implements fmt.Stringer.
func (m *SparseCSC) String() string {
	return fmt.Sprintf("SparseCSC(%dx%d, nnz=%d)", m.Rows, m.Cols, m.NNZ())
}

// ToCSR converts m to compressed-sparse-row form.
func (m *SparseCSC) ToCSR() *SparseCSR {
	out := NewSparseCSR(m.Rows, m.Cols)
	counts := make([]int, m.Rows+1)
	for _, i := range m.RowIdx {
		counts[i+1]++
	}
	for i := 0; i < m.Rows; i++ {
		counts[i+1] += counts[i]
	}
	out.RowPtr = counts
	out.ColIdx = make([]int, m.NNZ())
	out.Vals = make([]float64, m.NNZ())
	next := append([]int(nil), out.RowPtr...)
	for j := 0; j < m.Cols; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			i := m.RowIdx[k]
			out.ColIdx[next[i]] = j
			out.Vals[next[i]] = m.Vals[k]
			next[i]++
		}
	}
	return out
}

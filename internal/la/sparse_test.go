package la

import (
	"math"
	"testing"
	"testing/quick"
)

func tripletsFor(t *testing.T) []Triplet {
	t.Helper()
	return []Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 2, Col: 0, Val: 2},
		{Row: 1, Col: 2, Val: 3},
		{Row: 3, Col: 2, Val: 4},
		{Row: 0, Col: 3, Val: 5},
	}
}

func TestCSCAssembly(t *testing.T) {
	m := NewSparseCSCFromTriplets(4, 4, tripletsFor(t))
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(0, 0) != 1 || m.At(2, 0) != 2 || m.At(1, 2) != 3 || m.At(3, 2) != 4 || m.At(0, 3) != 5 {
		t.Error("stored values wrong")
	}
	if m.At(1, 1) != 0 || m.At(3, 3) != 0 {
		t.Error("absent values should be zero")
	}
	// Column 1 is empty: ColPtr must still be monotone.
	if m.ColPtr[1] != 2 || m.ColPtr[2] != 2 {
		t.Errorf("ColPtr = %v", m.ColPtr)
	}
}

func TestCSCAssemblyUnsortedAndDuplicates(t *testing.T) {
	ts := []Triplet{
		{Row: 3, Col: 1, Val: 1},
		{Row: 0, Col: 1, Val: 2},
		{Row: 3, Col: 1, Val: 10}, // duplicate of first: summed
		{Row: 2, Col: 0, Val: 7},
	}
	m := NewSparseCSCFromTriplets(4, 2, ts)
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates merged)", m.NNZ())
	}
	if m.At(3, 1) != 11 {
		t.Errorf("duplicate sum = %v, want 11", m.At(3, 1))
	}
	// Rows sorted within column 1.
	if m.RowIdx[m.ColPtr[1]] != 0 {
		t.Error("rows not sorted within column")
	}
}

func TestCSCEmpty(t *testing.T) {
	m := NewSparseCSCFromTriplets(3, 3, nil)
	if m.NNZ() != 0 {
		t.Error("empty NNZ != 0")
	}
	y := NewVector(3)
	m.MultVec(Vector{1, 2, 3}, y)
	if y.Sum() != 0 {
		t.Error("empty matrix mult should be zero")
	}
}

func TestCSCMultVecAgainstDense(t *testing.T) {
	rng := NewRNG(11)
	s := RandomSparseCSC(20, 15, 4, rng)
	d := s.ToDense()
	x := RandomVector(15, rng)
	ys := NewVector(20)
	s.MultVec(x, ys)
	yd := NewVector(20)
	d.MultVec(x, yd)
	if !ys.EqualApprox(yd, 1e-12) {
		t.Error("sparse MultVec disagrees with dense")
	}
}

func TestCSCTransMultVecAgainstDense(t *testing.T) {
	rng := NewRNG(12)
	s := RandomSparseCSC(20, 15, 4, rng)
	d := s.ToDense()
	x := RandomVector(20, rng)
	ys := NewVector(15)
	s.TransMultVec(x, ys)
	yd := NewVector(15)
	d.TransMultVec(x, yd)
	if !ys.EqualApprox(yd, 1e-12) {
		t.Error("sparse TransMultVec disagrees with dense")
	}
}

func TestCSCCountSubNNZ(t *testing.T) {
	rng := NewRNG(13)
	s := RandomSparseCSC(12, 10, 3, rng)
	d := s.ToDense()
	for _, reg := range [][4]int{{0, 0, 12, 10}, {2, 3, 5, 4}, {11, 9, 1, 1}, {0, 0, 1, 10}} {
		want := 0
		for i := reg[0]; i < reg[0]+reg[2]; i++ {
			for j := reg[1]; j < reg[1]+reg[3]; j++ {
				if d.At(i, j) != 0 {
					want++
				}
			}
		}
		if got := s.CountSubNNZ(reg[0], reg[1], reg[2], reg[3]); got != want {
			t.Errorf("CountSubNNZ(%v) = %d, want %d", reg, got, want)
		}
	}
}

func TestCSCExtractSub(t *testing.T) {
	rng := NewRNG(14)
	s := RandomSparseCSC(12, 10, 3, rng)
	sub := s.ExtractSub(2, 3, 6, 5)
	want := s.ToDense().ExtractSub(2, 3, 6, 5)
	if !sub.ToDense().EqualApprox(want, 0) {
		t.Error("ExtractSub disagrees with dense path")
	}
	if sub.NNZ() != s.CountSubNNZ(2, 3, 6, 5) {
		t.Error("ExtractSub NNZ disagrees with CountSubNNZ")
	}
}

func TestCSCPasteSub(t *testing.T) {
	rng := NewRNG(15)
	s := RandomSparseCSC(10, 8, 3, rng)
	sub := RandomSparseCSC(4, 3, 2, rng)
	want := s.ToDense()
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			want.Set(i+5, j+4, sub.At(i, j))
		}
	}
	s.PasteSub(5, 4, sub)
	if !s.ToDense().EqualApprox(want, 0) {
		t.Error("PasteSub disagrees with dense path")
	}
}

func TestCSCCloneIndependent(t *testing.T) {
	m := NewSparseCSCFromTriplets(2, 2, []Triplet{{Row: 0, Col: 0, Val: 1}})
	c := m.Clone()
	c.Vals[0] = 9
	if m.Vals[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestCSCScaleAndTriplets(t *testing.T) {
	m := NewSparseCSCFromTriplets(4, 4, tripletsFor(t))
	m.Scale(2)
	if m.At(0, 3) != 10 {
		t.Error("Scale failed")
	}
	ts := m.Triplets()
	back := NewSparseCSCFromTriplets(4, 4, ts)
	if !back.EqualApprox(m, 0) {
		t.Error("Triplets roundtrip failed")
	}
}

func TestCSRBasics(t *testing.T) {
	m := NewSparseCSRFromTriplets(4, 4, tripletsFor(t))
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(2, 0) != 2 || m.At(3, 2) != 4 || m.At(1, 1) != 0 {
		t.Error("At wrong")
	}
	c := m.Clone()
	c.Vals[0] = 99
	if m.Vals[0] == 99 {
		t.Error("Clone shares storage")
	}
	m.Scale(3)
	if m.At(0, 0) != 3 {
		t.Error("Scale failed")
	}
}

func TestCSRMultVecAgainstDense(t *testing.T) {
	rng := NewRNG(16)
	csc := RandomSparseCSC(18, 14, 4, rng)
	csr := csc.ToCSR()
	d := csc.ToDense()
	x := RandomVector(14, rng)
	y1 := NewVector(18)
	csr.MultVec(x, y1)
	y2 := NewVector(18)
	d.MultVec(x, y2)
	if !y1.EqualApprox(y2, 1e-12) {
		t.Error("CSR MultVec disagrees with dense")
	}
	xt := RandomVector(18, rng)
	z1 := NewVector(14)
	csr.TransMultVec(xt, z1)
	z2 := NewVector(14)
	d.TransMultVec(xt, z2)
	if !z1.EqualApprox(z2, 1e-12) {
		t.Error("CSR TransMultVec disagrees with dense")
	}
}

func TestCSCCSRConversionRoundtrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		nnz := rng.Intn(rows + 1)
		m := RandomSparseCSC(rows, cols, nnz, rng)
		back := m.ToCSR().ToCSC()
		return back.EqualApprox(m, 0) && back.NNZ() == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCSRTripletsAndDense(t *testing.T) {
	m := NewSparseCSRFromTriplets(4, 4, tripletsFor(t))
	back := NewSparseCSRFromTriplets(4, 4, m.Triplets())
	if !back.EqualApprox(m, 0) {
		t.Error("CSR Triplets roundtrip failed")
	}
	if !m.ToDense().EqualApprox(m.ToCSC().ToDense(), 0) {
		t.Error("CSR/CSC ToDense mismatch")
	}
}

// Property: extract/paste roundtrip on sparse matrices preserves content.
func TestCSCExtractPasteProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows := 2 + rng.Intn(10)
		cols := 2 + rng.Intn(10)
		m := RandomSparseCSC(rows, cols, 1+rng.Intn(rows), rng)
		r0 := rng.Intn(rows)
		c0 := rng.Intn(cols)
		sr := 1 + rng.Intn(rows-r0)
		sc := 1 + rng.Intn(cols-c0)
		sub := m.ExtractSub(r0, c0, sr, sc)
		back := m.Clone()
		back.PasteSub(r0, c0, sub)
		return back.EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSparseBytesAndString(t *testing.T) {
	m := NewSparseCSCFromTriplets(4, 4, tripletsFor(t))
	if m.Bytes() != 16*5+8*5 {
		t.Errorf("CSC Bytes = %d", m.Bytes())
	}
	if m.String() != "SparseCSC(4x4, nnz=5)" {
		t.Errorf("String = %q", m.String())
	}
	r := m.ToCSR()
	if r.String() != "SparseCSR(4x4, nnz=5)" {
		t.Errorf("String = %q", r.String())
	}
	if r.Bytes() != 16*5+8*5 {
		t.Errorf("CSR Bytes = %d", r.Bytes())
	}
}

func TestLinkMatrixColumnStochastic(t *testing.T) {
	rng := NewRNG(77)
	g := LinkMatrix(50, 4, rng)
	if g.Rows != 50 || g.Cols != 50 || g.NNZ() != 200 {
		t.Fatalf("LinkMatrix shape %v nnz %d", g, g.NNZ())
	}
	// Each column sums to 1 (column-stochastic).
	ones := NewVector(50).Fill(1)
	sums := NewVector(50)
	g.TransMultVec(ones, sums)
	for j, s := range sums {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("column %d sums to %v", j, s)
		}
	}
}

func TestRandomSparseCSCShape(t *testing.T) {
	rng := NewRNG(5)
	m := RandomSparseCSC(30, 10, 7, rng)
	if m.NNZ() != 70 {
		t.Errorf("NNZ = %d, want 70", m.NNZ())
	}
	// Rows distinct and sorted per column.
	for j := 0; j < 10; j++ {
		for k := m.ColPtr[j] + 1; k < m.ColPtr[j+1]; k++ {
			if m.RowIdx[k] <= m.RowIdx[k-1] {
				t.Fatal("rows not sorted/distinct within column")
			}
		}
	}
}

func TestLabeledExamples(t *testing.T) {
	rng := NewRNG(6)
	x, y, yb := LabeledExamples(40, 8, 0.01, rng)
	if x.Rows != 40 || x.Cols != 8 || len(y) != 40 || len(yb) != 40 {
		t.Fatal("shapes wrong")
	}
	for _, b := range yb {
		if b != 0 && b != 1 {
			t.Fatalf("binary label %v", b)
		}
	}
	// Labels correlate with features via the planted model: y should not be
	// all zeros.
	if y.Norm2() == 0 {
		t.Error("labels are all zero")
	}
}

func TestTripletValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range triplet")
		}
	}()
	NewSparseCSCFromTriplets(2, 2, []Triplet{{Row: 5, Col: 0, Val: 1}})
}

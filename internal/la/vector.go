package la

import (
	"math"

	"github.com/rgml/rgml/internal/par"
)

// Vector is a dense column vector, the Go counterpart of x10.matrix.Vector.
// Methods mutate the receiver in place and return it where chaining is
// natural (GML style: GP.mult(G, P).scale(alpha)). The element-wise ops
// and the reductions run on the deterministic kernel engine
// (internal/par); reductions fold fixed-size chunk partials in ascending
// order, so results are bit-identical at every worker count.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom overwrites v with src. Lengths must match.
func (v Vector) CopyFrom(src Vector) Vector {
	checkDim(len(v) == len(src), "CopyFrom: len %d != %d", len(v), len(src))
	copy(v, src)
	return v
}

// Fill sets every element to a.
func (v Vector) Fill(a float64) Vector {
	par.For(len(v), vecGrain, func(lo, hi int) {
		seg := v[lo:hi]
		for i := range seg {
			seg[i] = a
		}
	})
	return v
}

// Zero sets every element to 0.
func (v Vector) Zero() Vector { return v.Fill(0) }

// Scale multiplies every element by a.
func (v Vector) Scale(a float64) Vector {
	par.For(len(v), vecGrain, func(lo, hi int) {
		seg := v[lo:hi]
		for i := range seg {
			seg[i] *= a
		}
	})
	return v
}

// CellAdd adds scalar a to every element (GML's cellAdd).
func (v Vector) CellAdd(a float64) Vector {
	par.For(len(v), vecGrain, func(lo, hi int) {
		seg := v[lo:hi]
		for i := range seg {
			seg[i] += a
		}
	})
	return v
}

// Add accumulates w into v element-wise.
func (v Vector) Add(w Vector) Vector {
	checkDim(len(v) == len(w), "Add: len %d != %d", len(v), len(w))
	par.For(len(v), vecGrain, func(lo, hi int) {
		dst, src := v[lo:hi], w[lo:hi]
		for i := range dst {
			dst[i] += src[i]
		}
	})
	return v
}

// Sub subtracts w from v element-wise.
func (v Vector) Sub(w Vector) Vector {
	checkDim(len(v) == len(w), "Sub: len %d != %d", len(v), len(w))
	par.For(len(v), vecGrain, func(lo, hi int) {
		dst, src := v[lo:hi], w[lo:hi]
		for i := range dst {
			dst[i] -= src[i]
		}
	})
	return v
}

// MulElem multiplies v by w element-wise.
func (v Vector) MulElem(w Vector) Vector {
	checkDim(len(v) == len(w), "MulElem: len %d != %d", len(v), len(w))
	par.For(len(v), vecGrain, func(lo, hi int) {
		dst, src := v[lo:hi], w[lo:hi]
		for i := range dst {
			dst[i] *= src[i]
		}
	})
	return v
}

// Axpy computes v += a*w.
func (v Vector) Axpy(a float64, w Vector) Vector {
	checkDim(len(v) == len(w), "Axpy: len %d != %d", len(v), len(w))
	par.For(len(v), vecGrain, func(lo, hi int) {
		dst, src := v[lo:hi], w[lo:hi]
		for i := range dst {
			dst[i] += a * src[i]
		}
	})
	return v
}

// Dot returns the inner product of v and w: a parallel chunked reduction
// with four accumulators per chunk (dot4); both the chunk boundaries and
// the unroll structure depend on the length only.
func (v Vector) Dot(w Vector) float64 {
	checkDim(len(v) == len(w), "Dot: len %d != %d", len(v), len(w))
	return par.Reduce(len(v), dotGrain,
		func(lo, hi int) float64 { return dot4(v[lo:hi], w[lo:hi]) },
		func(a, b float64) float64 { return a + b })
}

// Sum returns the sum of the elements (deterministic chunked reduction).
func (v Vector) Sum() float64 {
	return par.Reduce(len(v), dotGrain,
		func(lo, hi int) float64 { return sum4(v[lo:hi]) },
		func(a, b float64) float64 { return a + b })
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Apply replaces each element x by f(x) (element-wise map, used for
// sigmoids and other link functions). f may be called concurrently from
// pool workers and must be pure.
func (v Vector) Apply(f func(float64) float64) Vector {
	par.For(len(v), vecGrain, func(lo, hi int) {
		seg := v[lo:hi]
		for i := range seg {
			seg[i] = f(seg[i])
		}
	})
	return v
}

// EqualApprox reports whether v and w agree element-wise within tol.
func (v Vector) EqualApprox(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Bytes returns the serialized payload size of the vector, used for
// network-cost accounting.
func (v Vector) Bytes() int { return 8 * len(v) }

// Sigmoid is the logistic function, exported for the LogReg application.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

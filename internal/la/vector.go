package la

import "math"

// Vector is a dense column vector, the Go counterpart of x10.matrix.Vector.
// Methods mutate the receiver in place and return it where chaining is
// natural (GML style: GP.mult(G, P).scale(alpha)).
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom overwrites v with src. Lengths must match.
func (v Vector) CopyFrom(src Vector) Vector {
	checkDim(len(v) == len(src), "CopyFrom: len %d != %d", len(v), len(src))
	copy(v, src)
	return v
}

// Fill sets every element to a.
func (v Vector) Fill(a float64) Vector {
	for i := range v {
		v[i] = a
	}
	return v
}

// Zero sets every element to 0.
func (v Vector) Zero() Vector { return v.Fill(0) }

// Scale multiplies every element by a.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// CellAdd adds scalar a to every element (GML's cellAdd).
func (v Vector) CellAdd(a float64) Vector {
	for i := range v {
		v[i] += a
	}
	return v
}

// Add accumulates w into v element-wise.
func (v Vector) Add(w Vector) Vector {
	checkDim(len(v) == len(w), "Add: len %d != %d", len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub subtracts w from v element-wise.
func (v Vector) Sub(w Vector) Vector {
	checkDim(len(v) == len(w), "Sub: len %d != %d", len(v), len(w))
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// MulElem multiplies v by w element-wise.
func (v Vector) MulElem(w Vector) Vector {
	checkDim(len(v) == len(w), "MulElem: len %d != %d", len(v), len(w))
	for i := range v {
		v[i] *= w[i]
	}
	return v
}

// Axpy computes v += a*w.
func (v Vector) Axpy(a float64, w Vector) Vector {
	checkDim(len(v) == len(w), "Axpy: len %d != %d", len(v), len(w))
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	checkDim(len(v) == len(w), "Dot: len %d != %d", len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Sum returns the sum of the elements.
func (v Vector) Sum() float64 {
	var s float64
	for i := range v {
		s += v[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Apply replaces each element x by f(x) (element-wise map, used for
// sigmoids and other link functions).
func (v Vector) Apply(f func(float64) float64) Vector {
	for i := range v {
		v[i] = f(v[i])
	}
	return v
}

// EqualApprox reports whether v and w agree element-wise within tol.
func (v Vector) EqualApprox(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Bytes returns the serialized payload size of the vector, used for
// network-cost accounting.
func (v Vector) Bytes() int { return 8 * len(v) }

// Sigmoid is the logistic function, exported for the LogReg application.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

package la

// Workload builders. These generate the synthetic datasets that stand in
// for the paper's training sets: dense labeled examples for LinReg/LogReg
// and a random link network for PageRank (see DESIGN.md, substitutions).

// RandomVector returns a length-n vector of uniform values in [0, 1).
func RandomVector(n int, rng *RNG) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// RandomDense returns a rows×cols dense matrix of uniform values in [0, 1).
func RandomDense(rows, cols int, rng *RNG) *DenseMatrix {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// RandomSparseCSC returns a rows×cols CSC matrix where each column holds
// nnzPerCol distinct uniformly placed nonzeros with uniform values.
func RandomSparseCSC(rows, cols, nnzPerCol int, rng *RNG) *SparseCSC {
	checkDim(nnzPerCol >= 0 && nnzPerCol <= rows, "RandomSparseCSC: nnzPerCol %d of %d rows", nnzPerCol, rows)
	ts := make([]Triplet, 0, cols*nnzPerCol)
	seen := make(map[int]bool, nnzPerCol)
	for j := 0; j < cols; j++ {
		clear(seen)
		for len(seen) < nnzPerCol {
			i := rng.Intn(rows)
			if seen[i] {
				continue
			}
			seen[i] = true
			ts = append(ts, Triplet{Row: i, Col: j, Val: rng.Float64()})
		}
	}
	return NewSparseCSCFromTriplets(rows, cols, ts)
}

// LinkMatrix builds the n×n column-stochastic adjacency matrix G of a
// random link network with outDegree out-links per node: column j holds
// 1/outDegree at the rows node j links to. This is the structure PageRank
// iterates on (P = αGP + (1-α)·E·uᵀP); the paper generated networks sized
// as "2M edges per place".
func LinkMatrix(n, outDegree int, rng *RNG) *SparseCSC {
	checkDim(outDegree > 0 && outDegree <= n, "LinkMatrix: outDegree %d of %d nodes", outDegree, n)
	w := 1 / float64(outDegree)
	ts := make([]Triplet, 0, n*outDegree)
	seen := make(map[int]bool, outDegree)
	for j := 0; j < n; j++ {
		clear(seen)
		for len(seen) < outDegree {
			i := rng.Intn(n)
			if seen[i] {
				continue
			}
			seen[i] = true
			ts = append(ts, Triplet{Row: i, Col: j, Val: w})
		}
	}
	return NewSparseCSCFromTriplets(n, n, ts)
}

// LabeledExamples builds a synthetic regression/classification dataset:
// a rows×cols feature matrix X with uniform features, a planted weight
// vector w*, and labels y = X·w* + noise (for regression) plus binary
// labels yb = 1{sigmoid(X·w*) > 0.5} (for classification).
func LabeledExamples(rows, cols int, noise float64, rng *RNG) (x *DenseMatrix, y Vector, yb Vector) {
	x = RandomDense(rows, cols, rng)
	w := NewVector(cols)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	y = NewVector(rows)
	x.MultVec(w, y)
	yb = NewVector(rows)
	for i := range y {
		if Sigmoid(y[i]) > 0.5 {
			yb[i] = 1
		}
		y[i] += noise * rng.NormFloat64()
	}
	return x, y, yb
}

package la

import (
	"sync/atomic"
	"time"

	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/par"
)

// Kernel scheduling parameters. Grains are part of the determinism
// contract (see internal/par): chunk boundaries — and therefore any
// per-chunk accumulator state — are functions of these constants and the
// problem size only, never of the worker count. Changing a grain changes
// which problem sizes run in parallel, not the results.
const (
	// vecGrain chunks element-wise vector ops (disjoint writes).
	vecGrain = 8192
	// dotGrain chunks the dot/sum reductions; partials are folded in
	// ascending chunk order by par.Reduce.
	dotGrain = 8192
	// gemvRowGrain chunks MultVec output rows.
	gemvRowGrain = 512
	// tmvColGrain chunks TransMultVec output columns.
	tmvColGrain = 16
	// gemmColGrain chunks Mult output columns. It is a multiple of 4 so
	// the 4-wide register blocking stays globally aligned no matter how
	// chunks are executed.
	gemmColGrain = 32
	// gemmRowTile is the output-row strip height of the GEMM cache
	// tiling: a 4-column strip of C (gemmRowTile×4×8 B) stays resident
	// in L1 across the full k loop while the matching strip of A streams
	// from L2.
	gemmRowTile = 256
	// gramColGrain chunks AccumTransDenseDense output columns.
	gramColGrain = 8
	// spColGrain chunks AccumTransDenseSparse sparse columns (each owns
	// its output column).
	spColGrain = 64
	// sdtRowGrain chunks the row-partitioned sparse kernels
	// (AccumSparseMultDenseT, SparseCSC.MultVec) by output rows. Every
	// chunk walks every sparse column and binary-searches its row range,
	// so the per-chunk cost has a fixed component proportional to the
	// column count; the grain must be large enough that this overhead
	// stays small next to the O(nnz/chunk) useful work even for matrices
	// with only a handful of nonzeros per column.
	sdtRowGrain = 32768
)

// dot4 is the shared 4-accumulator dot product. The unroll structure is
// fixed, so the summation order is a function of the slice length only.
func dot4(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// sum4 is the 4-accumulator sum with the same fixed fold order as dot4.
func sum4(a []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i]
		s1 += a[i+1]
		s2 += a[i+2]
		s3 += a[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i]
	}
	return ((s0 + s1) + s2) + s3
}

// sumSquares4 is the 4-accumulator sum of squares (Frobenius norms).
func sumSquares4(a []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * a[i]
		s1 += a[i+1] * a[i+1]
		s2 += a[i+2] * a[i+2]
		s3 += a[i+3] * a[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * a[i]
	}
	return ((s0 + s1) + s2) + s3
}

// SumSquares returns the sum of squared elements of xs with the engine's
// deterministic chunked reduction (exported for the distributed
// Frobenius-norm partials).
func SumSquares(xs []float64) float64 {
	return par.Reduce(len(xs), dotGrain,
		func(lo, hi int) float64 { return sumSquares4(xs[lo:hi]) },
		func(a, b float64) float64 { return a + b })
}

// kinstr holds the per-kernel observability handles (µs histograms and
// tile counters), resolved once per SetObs; hot paths pay one atomic
// pointer load, and zero timing work when no registry is wired.
type kinstr struct {
	gemm  *obs.Histogram // la.kernel.gemm
	gemv  *obs.Histogram // la.kernel.gemv
	tgemv *obs.Histogram // la.kernel.tgemv
	gram  *obs.Histogram // la.kernel.gram
	tds   *obs.Histogram // la.kernel.accum_tds
	sdt   *obs.Histogram // la.kernel.accum_sdt
	tiles *obs.Counter   // la.gemm.tiles
}

var kins atomic.Pointer[kinstr]

// SetObs wires the kernel instrumentation into reg: one duration
// histogram per hot kernel (la.kernel.gemm, .gemv, .tgemv, .gram,
// .accum_tds, .accum_sdt) and the GEMM micro-tile counter
// (la.gemm.tiles). The kernels are package-level, so the last registry
// wired wins; nil disables instrumentation.
func SetObs(reg *obs.Registry) {
	if reg == nil {
		kins.Store(nil)
		return
	}
	kins.Store(&kinstr{
		gemm:  reg.Histogram("la.kernel.gemm"),
		gemv:  reg.Histogram("la.kernel.gemv"),
		tgemv: reg.Histogram("la.kernel.tgemv"),
		gram:  reg.Histogram("la.kernel.gram"),
		tds:   reg.Histogram("la.kernel.accum_tds"),
		sdt:   reg.Histogram("la.kernel.accum_sdt"),
		tiles: reg.Counter("la.gemm.tiles"),
	})
}

// kstart returns the kernel start time, or the zero time when
// uninstrumented (so the hot path skips the clock read entirely).
func kstart() time.Time {
	if kins.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

// kdone records the kernel duration into the selected histogram.
func kdone(sel func(*kinstr) *obs.Histogram, t0 time.Time) {
	if t0.IsZero() {
		return
	}
	if ki := kins.Load(); ki != nil {
		sel(ki).Observe(time.Since(t0))
	}
}

// addTiles accumulates the GEMM micro-tile counter.
func addTiles(n int64) {
	if ki := kins.Load(); ki != nil {
		ki.tiles.Add(n)
	}
}

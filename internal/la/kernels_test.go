package la

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/rgml/rgml/internal/par"
)

// kernelWorkerCounts are the pool sizes every parallel kernel is checked
// under. Results must be bit-identical across all of them (the package
// determinism contract): chunk geometry depends on problem size only.
var kernelWorkerCounts = []int{1, 2, 3, 7, runtime.NumCPU()}

// withWorkers runs f once per worker count and restores the default.
func withWorkers(t *testing.T, f func(t *testing.T, w int)) {
	t.Helper()
	defer par.SetWorkers(0)
	for _, w := range kernelWorkerCounts {
		par.SetWorkers(w)
		f(t, w)
	}
}

func testRandDense(rows, cols int, rng *rand.Rand) *DenseMatrix {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func testRandVec(n int, rng *rand.Rand) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func testRandSparse(rows, cols, nnzPerCol int, rng *rand.Rand) *SparseCSC {
	trips := make([]Triplet, 0, cols*nnzPerCol)
	for j := 0; j < cols; j++ {
		seen := map[int]bool{}
		for len(seen) < nnzPerCol {
			i := rng.Intn(rows)
			if !seen[i] {
				seen[i] = true
				trips = append(trips, Triplet{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewSparseCSCFromTriplets(rows, cols, trips)
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// checkWorkerInvariance runs compute at workers=1 for the reference and
// asserts every other worker count reproduces it bit for bit.
func checkWorkerInvariance(t *testing.T, name string, compute func() []float64) {
	t.Helper()
	defer par.SetWorkers(0)
	par.SetWorkers(1)
	ref := compute()
	for _, w := range kernelWorkerCounts[1:] {
		par.SetWorkers(w)
		got := compute()
		if !bitEqual(ref, got) {
			t.Fatalf("%s: result at workers=%d differs bitwise from workers=1", name, w)
		}
	}
}

func TestDenseMultVecWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sizes straddling the grain and the 4-column group width.
	for _, sz := range [][2]int{{1, 1}, {7, 5}, {100, 103}, {777, 1030}, {2048, 513}} {
		m := testRandDense(sz[0], sz[1], rng)
		x := testRandVec(sz[1], rng)
		checkWorkerInvariance(t, "DenseMatrix.MultVec", func() []float64 {
			y := NewVector(sz[0])
			m.MultVec(x, y)
			return y
		})
	}
}

// TestDenseMultVecMatchesNaive: the 4-column register blocking folds into
// y with left-to-right adds, which is the same per-element accumulation
// order as the naive column sweep — so the match is exact, not approximate.
func TestDenseMultVecMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := testRandDense(257, 130, rng)
	x := testRandVec(130, rng)
	y := NewVector(257)
	m.MultVec(x, y)
	ref := NewVector(257)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			ref[i] += m.Data[j*m.Rows+i] * x[j]
		}
	}
	if !bitEqual(y, ref) {
		t.Fatal("MultVec differs bitwise from naive column sweep")
	}
}

func TestDenseTransMultVecWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sz := range [][2]int{{5, 3}, {513, 771}, {2048, 100}} {
		m := testRandDense(sz[0], sz[1], rng)
		x := testRandVec(sz[0], rng)
		checkWorkerInvariance(t, "DenseMatrix.TransMultVec", func() []float64 {
			y := NewVector(sz[1])
			m.TransMultVec(x, y)
			return y
		})
	}
}

func TestDenseTransMultVecMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := testRandDense(301, 77, rng)
	x := testRandVec(301, rng)
	y := NewVector(77)
	m.TransMultVec(x, y)
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < m.Rows; i++ {
			s += m.Data[j*m.Rows+i] * x[i]
		}
		if math.Abs(y[j]-s) > 1e-9*(1+math.Abs(s)) {
			t.Fatalf("TransMultVec[%d] = %g, naive %g", j, y[j], s)
		}
	}
}

func TestDenseMultWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Shapes exercising the 4x4 micro-kernel remainders in i, j and k,
	// and chunk counts above and below the worker counts.
	for _, sz := range [][3]int{{1, 1, 1}, {5, 7, 3}, {64, 65, 66}, {130, 129, 131}, {256, 300, 67}} {
		a := testRandDense(sz[0], sz[1], rng)
		b := testRandDense(sz[1], sz[2], rng)
		checkWorkerInvariance(t, "DenseMatrix.Mult", func() []float64 {
			c := NewDense(sz[0], sz[2])
			a.Mult(b, c)
			return c.Data
		})
	}
}

// TestDenseMultMatchesNaive: the micro-kernel accumulates each c[i,j] in
// ascending-k order with left-to-right adds, matching the naive triple
// loop exactly.
func TestDenseMultMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := testRandDense(67, 45, rng)
	b := testRandDense(45, 38, rng)
	c := NewDense(67, 38)
	a.Mult(b, c)
	ref := NewDense(67, 38)
	for j := 0; j < b.Cols; j++ {
		for k := 0; k < a.Cols; k++ {
			bkj := b.Data[j*b.Rows+k]
			for i := 0; i < a.Rows; i++ {
				ref.Data[j*ref.Rows+i] += a.Data[k*a.Rows+i] * bkj
			}
		}
	}
	if !bitEqual(c.Data, ref.Data) {
		t.Fatal("Mult differs bitwise from naive triple loop")
	}
}

func TestAccumKernelsWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := testRandSparse(400, 300, 9, rng)
	a := testRandDense(400, 13, rng)
	h := testRandDense(13, 300, rng)
	bb := testRandDense(400, 21, rng)

	checkWorkerInvariance(t, "AccumTransDenseSparse", func() []float64 {
		out := NewDense(13, 300)
		AccumTransDenseSparse(a, s, out)
		return out.Data
	})
	checkWorkerInvariance(t, "AccumSparseMultDenseT", func() []float64 {
		out := NewDense(400, 13)
		AccumSparseMultDenseT(s, h, out)
		return out.Data
	})
	checkWorkerInvariance(t, "AccumTransDenseDense", func() []float64 {
		out := NewDense(13, 21)
		AccumTransDenseDense(a, bb, out)
		return out.Data
	})
}

// TestAccumSparseMultDenseTMatchesNaive: the row-range decomposition with
// binary-searched column sub-ranges must reproduce the naive loop bit for
// bit — every output element sees the identical accumulation sequence.
func TestAccumSparseMultDenseTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := testRandSparse(5000, 200, 7, rng)
	h := testRandDense(9, 200, rng)
	out := NewDense(5000, 9)
	AccumSparseMultDenseT(s, h, out)
	ref := NewDense(5000, 9)
	k := h.Rows
	for j := 0; j < s.Cols; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i, v := s.RowIdx[p], s.Vals[p]
			for kk := 0; kk < k; kk++ {
				ref.Data[i+kk*ref.Rows] += v * h.Data[j*k+kk]
			}
		}
	}
	if !bitEqual(out.Data, ref.Data) {
		t.Fatal("AccumSparseMultDenseT differs bitwise from naive loop")
	}
}

func TestSparseMultVecWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := testRandSparse(9001, 500, 8, rng)
	x := testRandVec(500, rng)
	checkWorkerInvariance(t, "SparseCSC.MultVec", func() []float64 {
		y := NewVector(9001)
		s.MultVec(x, y)
		return y
	})
	xr := testRandVec(9001, rng)
	checkWorkerInvariance(t, "SparseCSC.TransMultVec", func() []float64 {
		y := NewVector(500)
		s.TransMultVec(xr, y)
		return y
	})
}

// TestSparseMultVecMatchesNaive: row-range scatter must be bit-identical
// to the naive per-column scatter.
func TestSparseMultVecMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := testRandSparse(9001, 500, 8, rng)
	x := testRandVec(500, rng)
	x[3], x[100] = 0, 0 // exercise the xj==0 skip
	y := NewVector(9001)
	s.MultVec(x, y)
	ref := NewVector(9001)
	for j := 0; j < s.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := s.ColPtr[j]; k < s.ColPtr[j+1]; k++ {
			ref[s.RowIdx[k]] += s.Vals[k] * xj
		}
	}
	if !bitEqual(y, ref) {
		t.Fatal("SparseCSC.MultVec differs bitwise from naive scatter")
	}
}

func TestVectorOpsWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 1000, 100_000} {
		v := testRandVec(n, rng)
		w := testRandVec(n, rng)
		checkWorkerInvariance(t, "Vector.Dot", func() []float64 {
			return []float64{v.Dot(w)}
		})
		checkWorkerInvariance(t, "Vector.Sum", func() []float64 {
			return []float64{v.Sum()}
		})
		checkWorkerInvariance(t, "Vector.Norm2", func() []float64 {
			return []float64{v.Norm2()}
		})
		checkWorkerInvariance(t, "SumSquares", func() []float64 {
			return []float64{SumSquares(v)}
		})
		checkWorkerInvariance(t, "Vector.Axpy", func() []float64 {
			return v.Clone().Axpy(0.25, w)
		})
		checkWorkerInvariance(t, "Vector.Apply", func() []float64 {
			return v.Clone().Apply(Sigmoid)
		})
	}
}

func TestVectorDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	v := testRandVec(50_000, rng)
	w := testRandVec(50_000, rng)
	got := v.Dot(w)
	var ref float64
	for i := range v {
		ref += v[i] * w[i]
	}
	if math.Abs(got-ref) > 1e-8*(1+math.Abs(ref)) {
		t.Fatalf("Dot = %g, naive %g", got, ref)
	}
}

func TestFrobNormWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := testRandDense(333, 77, rng)
	checkWorkerInvariance(t, "DenseMatrix.FrobNorm", func() []float64 {
		return []float64{m.FrobNorm()}
	})
}

func TestKernelsUnderEveryWorkerCount(t *testing.T) {
	// Smoke: the full dense pipeline at each worker count agrees with
	// itself run twice (determinism within a fixed count, catching any
	// scheduling-dependent state).
	rng := rand.New(rand.NewSource(14))
	a := testRandDense(120, 80, rng)
	b := testRandDense(80, 60, rng)
	withWorkers(t, func(t *testing.T, w int) {
		c1 := NewDense(120, 60)
		a.Mult(b, c1)
		c2 := NewDense(120, 60)
		a.Mult(b, c2)
		if !bitEqual(c1.Data, c2.Data) {
			t.Fatalf("workers=%d: repeated Mult not deterministic", w)
		}
	})
}

package la

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel benchmarks backing BENCH_kernels.json (`make bench-kernels`).
// The sizes are chosen so the operands spill the L1/L2 caches, which is
// where the tiled kernels separate from the naive loops.

func randDense(rows, cols int, rng *rand.Rand) *DenseMatrix {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randVec(n int, rng *rand.Rand) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randSparse(rows, cols, nnzPerCol int, rng *rand.Rand) *SparseCSC {
	var ts []Triplet
	for j := 0; j < cols; j++ {
		for k := 0; k < nnzPerCol; k++ {
			ts = append(ts, Triplet{Row: rng.Intn(rows), Col: j, Val: rng.NormFloat64()})
		}
	}
	return NewSparseCSCFromTriplets(rows, cols, ts)
}

func BenchmarkKernelGEMM(b *testing.B) {
	const m, k, n = 512, 512, 256
	rng := rand.New(rand.NewSource(1))
	a := randDense(m, k, rng)
	x := randDense(k, n, rng)
	c := NewDense(m, n)
	b.SetBytes(8 * int64(m*k+k*n+m*n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Mult(x, c)
	}
	b.ReportMetric(2*float64(m)*float64(k)*float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "flops/ns")
}

func BenchmarkKernelGEMV(b *testing.B) {
	const rows, cols = 2048, 2048
	rng := rand.New(rand.NewSource(2))
	a := randDense(rows, cols, rng)
	x := randVec(cols, rng)
	y := NewVector(rows)
	b.SetBytes(8 * int64(rows*cols))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MultVec(x, y)
	}
}

func BenchmarkKernelTransGEMV(b *testing.B) {
	const rows, cols = 2048, 2048
	rng := rand.New(rand.NewSource(3))
	a := randDense(rows, cols, rng)
	x := randVec(rows, rng)
	y := NewVector(cols)
	b.SetBytes(8 * int64(rows*cols))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TransMultVec(x, y)
	}
}

func BenchmarkKernelGram(b *testing.B) {
	const rows, k = 4096, 64
	rng := rand.New(rand.NewSource(4))
	a := randDense(rows, k, rng)
	out := NewDense(k, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		AccumTransDenseDense(a, a, out)
	}
}

func BenchmarkKernelAccumSparseMultDenseT(b *testing.B) {
	const rows, cols, k, nnz = 8192, 8192, 8, 8
	rng := rand.New(rand.NewSource(5))
	s := randSparse(rows, cols, nnz, rng)
	h := randDense(k, cols, rng)
	out := NewDense(rows, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		AccumSparseMultDenseT(s, h, out)
	}
}

func BenchmarkKernelDot(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(6))
	v, w := randVec(n, rng), randVec(n, rng)
	b.SetBytes(16 * n)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += v.Dot(w)
	}
	_ = fmt.Sprint(sink)
}
